package c3

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"c3/internal/cpu"
	"c3/internal/litmus"
	"c3/internal/parallel"
	"c3/internal/stats"
	"c3/internal/workload"
)

// ExpOptions scales the experiment harness. The defaults regenerate the
// shapes quickly; cmd/c3bench exposes flags for larger runs.
type ExpOptions struct {
	// Workloads restricts the kernel set (default: all 33).
	Workloads []string
	// CoresPerCluster (default 4; the paper calibrates 8-30 total).
	CoresPerCluster int
	// OpsScale multiplies each kernel's op budget (default 1.0).
	OpsScale float64
	Seed     int64
	// Workers fans independent runs out across that many goroutines
	// (0 = GOMAXPROCS, 1 = serial). Each run owns a private kernel and
	// system and aggregation is job-ordered, so reports are
	// byte-identical for every worker count.
	Workers int
	// Progress, when non-nil, receives one line per completed run. It is
	// called serially and in deterministic run order regardless of
	// Workers, but possibly from a different goroutine than the caller's.
	Progress func(string)
}

func (o *ExpOptions) fill() {
	if len(o.Workloads) == 0 {
		o.Workloads = workload.Names()
	}
	if o.CoresPerCluster <= 0 {
		o.CoresPerCluster = 4
	}
	if o.OpsScale <= 0 {
		o.OpsScale = 1.0
	}
}

func (o *ExpOptions) progress(format string, args ...any) {
	if o.Progress != nil {
		o.Progress(fmt.Sprintf(format, args...))
	}
}

func runOne(name, global string, locals [2]string, mcms [2]MCM, o *ExpOptions) (stats.Run, error) {
	spec, ok := workload.ByName(name)
	if !ok {
		return stats.Run{}, fmt.Errorf("c3: unknown workload %q", name)
	}
	return workload.Run(workload.RunConfig{
		Spec: spec, Global: global, Locals: locals,
		MCMs:            [2]cpu.MCM{mcms[0], mcms[1]},
		CoresPerCluster: o.CoresPerCluster, OpsScale: o.OpsScale, Seed: o.Seed,
	})
}

// ---------------------------------------------------------------- Fig 9

// Fig9Report holds the MCM-mix comparison (Sec. VI-B): per-suite
// geometric-mean times for ARM-ARM, TSO-TSO and the heterogeneous
// ARM/TSO mix, normalized to ARM-ARM, for both a homogeneous
// (MESI-CXL-MESI) and a heterogeneous (MESI-CXL-MOESI) protocol setup.
type Fig9Report struct {
	// Norm[protoCombo][mcmCombo][suite] = geomean time / ARM-ARM geomean.
	Norm map[string]map[string]map[string]float64
}

// Fig9MCMCombos lists the figure's MCM configurations.
func Fig9MCMCombos() []string { return []string{"ARM-ARM", "ARM-TSO", "TSO-TSO"} }

// Fig9ProtoCombos lists the figure's protocol configurations.
func Fig9ProtoCombos() []string { return []string{"MESI-CXL-MESI", "MESI-CXL-MOESI"} }

// Fig9 regenerates Figure 9, fanning the independent runs across
// o.Workers goroutines.
func Fig9(o ExpOptions) (*Fig9Report, error) {
	o.fill()
	mcms := map[string][2]MCM{
		"ARM-ARM": {ARM, ARM},
		"ARM-TSO": {ARM, TSO},
		"TSO-TSO": {TSO, TSO},
	}
	protos := map[string][2]string{
		"MESI-CXL-MESI":  {"mesi", "mesi"},
		"MESI-CXL-MOESI": {"mesi", "moesi"},
	}
	type job struct{ pc, mc, name, suite string }
	var jobs []job
	for _, pc := range Fig9ProtoCombos() {
		for _, mc := range Fig9MCMCombos() {
			for _, name := range o.Workloads {
				spec, ok := workload.ByName(name)
				if !ok {
					return nil, fmt.Errorf("c3: unknown workload %q", name)
				}
				jobs = append(jobs, job{pc, mc, name, string(spec.Suite)})
			}
		}
	}
	runs, err := parallel.MapOrdered(context.Background(), o.Workers, len(jobs),
		func(i int) (stats.Run, error) {
			j := jobs[i]
			return runOne(j.name, "cxl", protos[j.pc], mcms[j.mc], &o)
		},
		func(i int, r stats.Run) {
			j := jobs[i]
			o.progress("fig9 %s %s %s: %d cycles", j.pc, j.mc, j.name, r.Time)
		})
	if err != nil {
		return nil, err
	}

	// series[pc][mc][suite], filled in job order.
	series := map[string]map[string]map[string]*stats.Series{}
	for i, j := range jobs {
		if series[j.pc] == nil {
			series[j.pc] = map[string]map[string]*stats.Series{}
		}
		if series[j.pc][j.mc] == nil {
			series[j.pc][j.mc] = map[string]*stats.Series{}
		}
		if series[j.pc][j.mc][j.suite] == nil {
			series[j.pc][j.mc][j.suite] = &stats.Series{}
		}
		series[j.pc][j.mc][j.suite].Add(runs[i])
	}
	rep := &Fig9Report{Norm: map[string]map[string]map[string]float64{}}
	for _, pc := range Fig9ProtoCombos() {
		rep.Norm[pc] = map[string]map[string]float64{}
		for _, mc := range Fig9MCMCombos() {
			rep.Norm[pc][mc] = map[string]float64{}
			for suite, s := range series[pc][mc] {
				base := series[pc]["ARM-ARM"][suite].GeoMeanTime()
				rep.Norm[pc][mc][suite] = s.GeoMeanTime() / base
			}
		}
	}
	return rep, nil
}

// Render prints the figure as a table.
func (r *Fig9Report) Render() string {
	var b strings.Builder
	suites := []string{"splash4", "parsec", "phoenix"}
	for _, pc := range Fig9ProtoCombos() {
		if r.Norm[pc] == nil {
			continue
		}
		fmt.Fprintf(&b, "Fig. 9 — %s (normalized to ARM-ARM)\n", pc)
		fmt.Fprintf(&b, "%-10s", "MCM")
		for _, s := range suites {
			fmt.Fprintf(&b, " %10s", s)
		}
		fmt.Fprintln(&b)
		for _, mc := range Fig9MCMCombos() {
			fmt.Fprintf(&b, "%-10s", mc)
			for _, s := range suites {
				fmt.Fprintf(&b, " %10.3f", r.Norm[pc][mc][s])
			}
			fmt.Fprintln(&b)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// --------------------------------------------------------------- Fig 10

// Fig10Report holds per-workload execution times for the protocol-mix
// comparison (Sec. VI-C), normalized to the MESI-MESI-MESI baseline.
type Fig10Report struct {
	// Norm[combo][workload] = time / baseline time.
	Norm map[string]map[string]float64
	// Mean[combo] = geometric-mean slowdown across workloads.
	Mean map[string]float64
	// Range[combo] = [min, max] slowdown.
	Range map[string][2]float64
}

// Fig10Combos lists the figure's CXL protocol combinations.
func Fig10Combos() []string {
	return []string{"MESI-CXL-MESI", "MESI-CXL-MOESI", "MESI-CXL-MESIF"}
}

type protoConfig struct {
	global string
	locals [2]string
}

// fig10Combos returns the run configurations in deterministic order
// (baseline first), so job lists, progress lines, and failure reports
// never depend on map iteration.
func fig10Combos() ([]string, map[string]protoConfig) {
	order := []string{"MESI-MESI-MESI", "MESI-CXL-MESI", "MESI-CXL-MOESI", "MESI-CXL-MESIF"}
	defs := map[string]protoConfig{
		"MESI-MESI-MESI": {"hmesi", [2]string{"mesi", "mesi"}},
		"MESI-CXL-MESI":  {"cxl", [2]string{"mesi", "mesi"}},
		"MESI-CXL-MOESI": {"cxl", [2]string{"mesi", "moesi"}},
		"MESI-CXL-MESIF": {"cxl", [2]string{"mesi", "mesif"}},
	}
	return order, defs
}

// Fig10 regenerates Figure 10, fanning the independent runs across
// o.Workers goroutines.
func Fig10(o ExpOptions) (*Fig10Report, error) {
	o.fill()
	order, defs := fig10Combos()
	mcms := [2]MCM{ARM, ARM} // fixed MCM, per Sec. VI-C
	type job struct{ combo, name string }
	var jobs []job
	for _, combo := range order {
		for _, name := range o.Workloads {
			jobs = append(jobs, job{combo, name})
		}
	}
	runs, err := parallel.MapOrdered(context.Background(), o.Workers, len(jobs),
		func(i int) (stats.Run, error) {
			j := jobs[i]
			c := defs[j.combo]
			return runOne(j.name, c.global, c.locals, mcms, &o)
		},
		func(i int, r stats.Run) {
			o.progress("fig10 %s %s: %d cycles", jobs[i].combo, jobs[i].name, r.Time)
		})
	if err != nil {
		return nil, err
	}
	times := map[string]map[string]float64{}
	for i, j := range jobs {
		if times[j.combo] == nil {
			times[j.combo] = map[string]float64{}
		}
		times[j.combo][j.name] = float64(runs[i].Time)
	}
	rep := &Fig10Report{
		Norm:  map[string]map[string]float64{},
		Mean:  map[string]float64{},
		Range: map[string][2]float64{},
	}
	for _, combo := range Fig10Combos() {
		rep.Norm[combo] = map[string]float64{}
		logSum, n := 0.0, 0
		lo, hi := 1e9, 0.0
		for _, name := range o.Workloads {
			v := times[combo][name] / times["MESI-MESI-MESI"][name]
			rep.Norm[combo][name] = v
			logSum += ln(v)
			n++
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		rep.Mean[combo] = exp(logSum / float64(n))
		rep.Range[combo] = [2]float64{lo, hi}
	}
	return rep, nil
}

// Render prints the figure as a table.
func (r *Fig10Report) Render() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Fig. 10 — execution time normalized to MESI-MESI-MESI")
	var names []string
	for n := range r.Norm[Fig10Combos()[0]] {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(&b, "%-18s", "workload")
	for _, c := range Fig10Combos() {
		fmt.Fprintf(&b, " %16s", c)
	}
	fmt.Fprintln(&b)
	for _, n := range names {
		fmt.Fprintf(&b, "%-18s", n)
		for _, c := range Fig10Combos() {
			fmt.Fprintf(&b, " %16.3f", r.Norm[c][n])
		}
		fmt.Fprintln(&b)
	}
	fmt.Fprintf(&b, "%-18s", "geomean")
	for _, c := range Fig10Combos() {
		fmt.Fprintf(&b, " %16.3f", r.Mean[c])
	}
	fmt.Fprintln(&b)
	fmt.Fprintf(&b, "%-18s", "range")
	for _, c := range Fig10Combos() {
		fmt.Fprintf(&b, "    %5.3f-%-6.3f", r.Range[c][0], r.Range[c][1])
	}
	fmt.Fprintln(&b)
	return b.String()
}

// --------------------------------------------------------------- Fig 11

// Fig11Report holds the miss-cycle breakdowns (Sec. VI-C1) for the
// selected workloads under the baseline and CXL.
type Fig11Report struct {
	// Breakdown[workload][config] = miss-cycle histogram.
	Breakdown map[string]map[string]stats.MissBreakdown
}

// Fig11Workloads returns the paper's selection: three CXL-sensitive
// kernels plus the insensitive vips.
func Fig11Workloads() []string {
	return []string{"histogram", "barnes", "lu-ncont", "vips"}
}

// fig11Configs returns the comparison configurations in deterministic
// order (baseline first).
func fig11Configs() ([]string, map[string]protoConfig) {
	order := []string{"MESI-MESI-MESI", "MESI-CXL-MESI"}
	defs := map[string]protoConfig{
		"MESI-MESI-MESI": {"hmesi", [2]string{"mesi", "mesi"}},
		"MESI-CXL-MESI":  {"cxl", [2]string{"mesi", "mesi"}},
	}
	return order, defs
}

// Fig11 regenerates Figure 11, fanning the independent runs across
// o.Workers goroutines.
func Fig11(o ExpOptions) (*Fig11Report, error) {
	o.fill()
	if len(o.Workloads) == 33 {
		o.Workloads = Fig11Workloads()
	}
	order, defs := fig11Configs()
	type job struct{ name, cfg string }
	var jobs []job
	for _, name := range o.Workloads {
		for _, cfg := range order {
			jobs = append(jobs, job{name, cfg})
		}
	}
	runs, err := parallel.MapOrdered(context.Background(), o.Workers, len(jobs),
		func(i int) (stats.Run, error) {
			j := jobs[i]
			c := defs[j.cfg]
			return runOne(j.name, c.global, c.locals, [2]MCM{ARM, ARM}, &o)
		},
		func(i int, r stats.Run) {
			o.progress("fig11 %s %s: %d miss cycles", jobs[i].name, jobs[i].cfg, r.Miss.TotalMissCycles())
		})
	if err != nil {
		return nil, err
	}
	rep := &Fig11Report{Breakdown: map[string]map[string]stats.MissBreakdown{}}
	for i, j := range jobs {
		if rep.Breakdown[j.name] == nil {
			rep.Breakdown[j.name] = map[string]stats.MissBreakdown{}
		}
		rep.Breakdown[j.name][j.cfg] = runs[i].Miss
	}
	return rep, nil
}

// Render prints the breakdowns.
func (r *Fig11Report) Render() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Fig. 11 — miss cycles by latency band and instruction type")
	var names []string
	for n := range r.Breakdown {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		for _, cfg := range []string{"MESI-MESI-MESI", "MESI-CXL-MESI"} {
			mb := r.Breakdown[n][cfg]
			fmt.Fprintf(&b, "\n%s / %s (total %d miss cycles, MPKI %.1f)\n",
				n, cfg, mb.TotalMissCycles(), mb.MPKI())
			b.WriteString(mb.Render())
		}
		base := r.Breakdown[n]["MESI-MESI-MESI"]
		cxl := r.Breakdown[n]["MESI-CXL-MESI"]
		if hb := base.BandCycles(stats.BandHigh); hb > 0 {
			fmt.Fprintf(&b, "high-band (cross-cluster) cycles: %.1f%% -> %.1f%% of misses (%.2fx growth)\n",
				100*float64(hb)/float64(base.TotalMissCycles()),
				100*float64(cxl.BandCycles(stats.BandHigh))/float64(cxl.TotalMissCycles()),
				float64(cxl.BandCycles(stats.BandHigh))/float64(hb))
		}
	}
	return b.String()
}

// -------------------------------------------------------------- Table IV

// TableIVReport holds the litmus matrix.
type TableIVReport struct {
	// Pass[protoCombo][mcmCombo][test] records a clean campaign.
	Pass map[string]map[string]map[string]bool
	// Details carries forbidden-outcome diagnostics on failure, in the
	// fixed (protoCombo, mcmCombo, test) cell order.
	Details []string
	Iters   int
}

// tableIVProtoOrder and tableIVMCMOrder fix the cell enumeration order so
// reports and diagnostics never depend on map iteration.
func tableIVProtoOrder() []string { return []string{"MESI-CXL-MESI", "MESI-CXL-MOESI"} }
func tableIVMCMOrder() []string   { return []string{"Arm-Arm", "TSO-Arm", "TSO-TSO"} }

// TableIV regenerates the litmus matrix of Table IV with the default
// worker count (GOMAXPROCS). iters configures executions per cell (the
// paper uses 100k; tests use less).
func TableIV(iters int, seed int64) (*TableIVReport, error) {
	return TableIVWorkers(iters, seed, 0)
}

// TableIVWorkers is TableIV with an explicit worker count (0 =
// GOMAXPROCS, 1 = serial). The 42 cells (7 tests x 2 protocol combos x
// 3 MCM combos) are independent campaigns and fan out across the pool;
// each cell runs its iterations serially (the cell fan-out already
// saturates the workers), and results merge in fixed cell order, so the
// report is byte-identical for every worker count.
func TableIVWorkers(iters int, seed int64, workers int) (*TableIVReport, error) {
	if iters <= 0 {
		iters = 100
	}
	protoCombos := map[string][2]string{
		"MESI-CXL-MESI":  {"mesi", "mesi"},
		"MESI-CXL-MOESI": {"mesi", "moesi"},
	}
	mcmCombos := map[string][2]MCM{
		"Arm-Arm": {ARM, ARM},
		"TSO-Arm": {TSO, ARM},
		"TSO-TSO": {TSO, TSO},
	}
	type cell struct{ pc, mc, test string }
	var cells []cell
	for _, pc := range tableIVProtoOrder() {
		for _, mc := range tableIVMCMOrder() {
			for _, test := range litmus.TableIVNames() {
				cells = append(cells, cell{pc, mc, test})
			}
		}
	}
	results, err := parallel.Map(context.Background(), workers, len(cells),
		func(i int) (*litmus.Result, error) {
			c := cells[i]
			locals := protoCombos[c.pc]
			mcms := mcmCombos[c.mc]
			tc, _ := litmus.ByName(c.test)
			return litmus.Run(tc, litmus.RunnerConfig{
				Locals: locals, Global: "cxl",
				MCMs:  [2]cpu.MCM{mcms[0], mcms[1]},
				Iters: iters, Sync: litmus.SyncFull, BaseSeed: seed,
				Workers: 1,
			})
		})
	if err != nil {
		return nil, err
	}
	rep := &TableIVReport{Pass: map[string]map[string]map[string]bool{}, Iters: iters}
	for i, c := range cells {
		if rep.Pass[c.pc] == nil {
			rep.Pass[c.pc] = map[string]map[string]bool{}
		}
		if rep.Pass[c.pc][c.mc] == nil {
			rep.Pass[c.pc][c.mc] = map[string]bool{}
		}
		res := results[i]
		ok := res.Forbidden == 0
		rep.Pass[c.pc][c.mc][c.test] = ok
		if !ok {
			rep.Details = append(rep.Details, fmt.Sprintf(
				"%s/%s/%s: %d forbidden (%s)", c.pc, c.mc, c.test,
				res.Forbidden, res.ForbiddenExample))
		}
	}
	return rep, nil
}

// AllPass reports whether every cell is clean.
func (r *TableIVReport) AllPass() bool { return len(r.Details) == 0 }

// Render prints the matrix in the paper's layout.
func (r *TableIVReport) Render() string {
	var b strings.Builder
	mcms := tableIVMCMOrder()
	protos := tableIVProtoOrder()
	fmt.Fprintf(&b, "Table IV — litmus results (%d iterations per cell)\n", r.Iters)
	fmt.Fprintf(&b, "%-10s", "Test")
	for range protos {
		for _, m := range mcms {
			fmt.Fprintf(&b, " %8s", m)
		}
		fmt.Fprint(&b, "  |")
	}
	fmt.Fprintf(&b, "   (%s | %s)\n", protos[0], protos[1])
	for _, test := range litmus.TableIVNames() {
		fmt.Fprintf(&b, "%-10s", test+"-sys")
		for _, p := range protos {
			for _, m := range mcms {
				mark := "x"
				if r.Pass[p][m][test] {
					mark = "ok"
				}
				fmt.Fprintf(&b, " %8s", mark)
			}
			fmt.Fprint(&b, "  |")
		}
		fmt.Fprintln(&b)
	}
	for _, d := range r.Details {
		fmt.Fprintf(&b, "FAIL: %s\n", d)
	}
	return b.String()
}

func ln(x float64) float64  { return math.Log(x) }
func exp(x float64) float64 { return math.Exp(x) }

// -------------------------------------------------- Hybrid (extension)

// HybridReport quantifies the hybrid memory configuration the paper
// notes but does not evaluate (Sec. IV-D4 / Sec. V: "a hybrid
// configuration, where only part of the data is remote, might be more
// practical"): per-core private data homed in cluster-local memory,
// only genuinely shared data in the CXL pool. Both columns are
// normalized to the same reference — the all-remote MESI-MESI-MESI
// baseline — so they are directly comparable.
type HybridReport struct {
	// Overhead[workload] = [all-remote CXL, hybrid CXL], both divided by
	// the all-remote baseline time.
	Overhead map[string][2]float64
}

// Hybrid runs the extension experiment on a subset of kernels, one
// worker per kernel (each kernel needs its three runs — baseline,
// all-remote, hybrid — for normalization, so the kernel is the natural
// fan-out unit).
func Hybrid(o ExpOptions) (*HybridReport, error) {
	o.fill()
	if len(o.Workloads) == 33 {
		o.Workloads = []string{"histogram", "barnes", "vips", "canneal", "fft", "kmeans"}
	}
	overheads, err := parallel.MapOrdered(context.Background(), o.Workers, len(o.Workloads),
		func(i int) ([2]float64, error) {
			name := o.Workloads[i]
			spec, ok := workload.ByName(name)
			if !ok {
				return [2]float64{}, fmt.Errorf("c3: unknown workload %q", name)
			}
			run := func(global string, hybrid bool) (float64, error) {
				r, err := workload.Run(workload.RunConfig{
					Spec: spec, Global: global, Locals: [2]string{"mesi", "mesi"},
					MCMs:            [2]cpu.MCM{cpu.WMO, cpu.WMO},
					CoresPerCluster: o.CoresPerCluster, OpsScale: o.OpsScale,
					Seed: o.Seed, Hybrid: hybrid,
				})
				return float64(r.Time), err
			}
			baseR, err := run("hmesi", false)
			if err != nil {
				return [2]float64{}, err
			}
			cxlR, err := run("cxl", false)
			if err != nil {
				return [2]float64{}, err
			}
			cxlH, err := run("cxl", true)
			if err != nil {
				return [2]float64{}, err
			}
			return [2]float64{cxlR / baseR, cxlH / baseR}, nil
		},
		func(i int, v [2]float64) {
			o.progress("hybrid %s: all-remote %.3f, hybrid %.3f", o.Workloads[i], v[0], v[1])
		})
	if err != nil {
		return nil, err
	}
	rep := &HybridReport{Overhead: map[string][2]float64{}}
	for i, name := range o.Workloads {
		rep.Overhead[name] = overheads[i]
	}
	return rep, nil
}

// Render prints the comparison.
func (r *HybridReport) Render() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Hybrid memory (extension) — time vs. the all-remote native baseline")
	fmt.Fprintf(&b, "%-14s %12s %12s\n", "workload", "CXL remote", "CXL hybrid")
	var names []string
	for n := range r.Overhead {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		v := r.Overhead[n]
		fmt.Fprintf(&b, "%-14s %12.3f %12.3f\n", n, v[0], v[1])
	}
	return b.String()
}
