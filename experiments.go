package c3

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"c3/internal/cpu"
	"c3/internal/litmus"
	"c3/internal/stats"
	"c3/internal/workload"
)

// ExpOptions scales the experiment harness. The defaults regenerate the
// shapes quickly; cmd/c3bench exposes flags for larger runs.
type ExpOptions struct {
	// Workloads restricts the kernel set (default: all 33).
	Workloads []string
	// CoresPerCluster (default 4; the paper calibrates 8-30 total).
	CoresPerCluster int
	// OpsScale multiplies each kernel's op budget (default 1.0).
	OpsScale float64
	Seed     int64
	// Progress, when non-nil, receives one line per completed run.
	Progress func(string)
}

func (o *ExpOptions) fill() {
	if len(o.Workloads) == 0 {
		o.Workloads = workload.Names()
	}
	if o.CoresPerCluster <= 0 {
		o.CoresPerCluster = 4
	}
	if o.OpsScale <= 0 {
		o.OpsScale = 1.0
	}
}

func (o *ExpOptions) progress(format string, args ...any) {
	if o.Progress != nil {
		o.Progress(fmt.Sprintf(format, args...))
	}
}

func runOne(name, global string, locals [2]string, mcms [2]MCM, o *ExpOptions) (stats.Run, error) {
	spec, ok := workload.ByName(name)
	if !ok {
		return stats.Run{}, fmt.Errorf("c3: unknown workload %q", name)
	}
	return workload.Run(workload.RunConfig{
		Spec: spec, Global: global, Locals: locals,
		MCMs:            [2]cpu.MCM{mcms[0], mcms[1]},
		CoresPerCluster: o.CoresPerCluster, OpsScale: o.OpsScale, Seed: o.Seed,
	})
}

// ---------------------------------------------------------------- Fig 9

// Fig9Report holds the MCM-mix comparison (Sec. VI-B): per-suite
// geometric-mean times for ARM-ARM, TSO-TSO and the heterogeneous
// ARM/TSO mix, normalized to ARM-ARM, for both a homogeneous
// (MESI-CXL-MESI) and a heterogeneous (MESI-CXL-MOESI) protocol setup.
type Fig9Report struct {
	// Norm[protoCombo][mcmCombo][suite] = geomean time / ARM-ARM geomean.
	Norm map[string]map[string]map[string]float64
}

// Fig9MCMCombos lists the figure's MCM configurations.
func Fig9MCMCombos() []string { return []string{"ARM-ARM", "ARM-TSO", "TSO-TSO"} }

// Fig9ProtoCombos lists the figure's protocol configurations.
func Fig9ProtoCombos() []string { return []string{"MESI-CXL-MESI", "MESI-CXL-MOESI"} }

// Fig9 regenerates Figure 9.
func Fig9(o ExpOptions) (*Fig9Report, error) {
	o.fill()
	mcms := map[string][2]MCM{
		"ARM-ARM": {ARM, ARM},
		"ARM-TSO": {ARM, TSO},
		"TSO-TSO": {TSO, TSO},
	}
	protos := map[string][2]string{
		"MESI-CXL-MESI":  {"mesi", "mesi"},
		"MESI-CXL-MOESI": {"mesi", "moesi"},
	}
	rep := &Fig9Report{Norm: map[string]map[string]map[string]float64{}}
	for _, pc := range Fig9ProtoCombos() {
		series := map[string]map[string]*stats.Series{} // mcm -> suite -> series
		for _, mc := range Fig9MCMCombos() {
			series[mc] = map[string]*stats.Series{}
			for _, name := range o.Workloads {
				spec, _ := workload.ByName(name)
				r, err := runOne(name, "cxl", protos[pc], mcms[mc], &o)
				if err != nil {
					return nil, err
				}
				suite := string(spec.Suite)
				if series[mc][suite] == nil {
					series[mc][suite] = &stats.Series{}
				}
				series[mc][suite].Add(r)
				o.progress("fig9 %s %s %s: %d cycles", pc, mc, name, r.Time)
			}
		}
		rep.Norm[pc] = map[string]map[string]float64{}
		for _, mc := range Fig9MCMCombos() {
			rep.Norm[pc][mc] = map[string]float64{}
			for suite, s := range series[mc] {
				base := series["ARM-ARM"][suite].GeoMeanTime()
				rep.Norm[pc][mc][suite] = s.GeoMeanTime() / base
			}
		}
	}
	return rep, nil
}

// Render prints the figure as a table.
func (r *Fig9Report) Render() string {
	var b strings.Builder
	suites := []string{"splash4", "parsec", "phoenix"}
	for _, pc := range Fig9ProtoCombos() {
		if r.Norm[pc] == nil {
			continue
		}
		fmt.Fprintf(&b, "Fig. 9 — %s (normalized to ARM-ARM)\n", pc)
		fmt.Fprintf(&b, "%-10s", "MCM")
		for _, s := range suites {
			fmt.Fprintf(&b, " %10s", s)
		}
		fmt.Fprintln(&b)
		for _, mc := range Fig9MCMCombos() {
			fmt.Fprintf(&b, "%-10s", mc)
			for _, s := range suites {
				fmt.Fprintf(&b, " %10.3f", r.Norm[pc][mc][s])
			}
			fmt.Fprintln(&b)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// --------------------------------------------------------------- Fig 10

// Fig10Report holds per-workload execution times for the protocol-mix
// comparison (Sec. VI-C), normalized to the MESI-MESI-MESI baseline.
type Fig10Report struct {
	// Norm[combo][workload] = time / baseline time.
	Norm map[string]map[string]float64
	// Mean[combo] = geometric-mean slowdown across workloads.
	Mean map[string]float64
	// Range[combo] = [min, max] slowdown.
	Range map[string][2]float64
}

// Fig10Combos lists the figure's CXL protocol combinations.
func Fig10Combos() []string {
	return []string{"MESI-CXL-MESI", "MESI-CXL-MOESI", "MESI-CXL-MESIF"}
}

// Fig10 regenerates Figure 10.
func Fig10(o ExpOptions) (*Fig10Report, error) {
	o.fill()
	combos := map[string]struct {
		global string
		locals [2]string
	}{
		"MESI-MESI-MESI": {"hmesi", [2]string{"mesi", "mesi"}},
		"MESI-CXL-MESI":  {"cxl", [2]string{"mesi", "mesi"}},
		"MESI-CXL-MOESI": {"cxl", [2]string{"mesi", "moesi"}},
		"MESI-CXL-MESIF": {"cxl", [2]string{"mesi", "mesif"}},
	}
	mcms := [2]MCM{ARM, ARM} // fixed MCM, per Sec. VI-C
	times := map[string]map[string]float64{}
	for combo, c := range combos {
		times[combo] = map[string]float64{}
		for _, name := range o.Workloads {
			r, err := runOne(name, c.global, c.locals, mcms, &o)
			if err != nil {
				return nil, err
			}
			times[combo][name] = float64(r.Time)
			o.progress("fig10 %s %s: %d cycles", combo, name, r.Time)
		}
	}
	rep := &Fig10Report{
		Norm:  map[string]map[string]float64{},
		Mean:  map[string]float64{},
		Range: map[string][2]float64{},
	}
	for _, combo := range Fig10Combos() {
		rep.Norm[combo] = map[string]float64{}
		logSum, n := 0.0, 0
		lo, hi := 1e9, 0.0
		for _, name := range o.Workloads {
			v := times[combo][name] / times["MESI-MESI-MESI"][name]
			rep.Norm[combo][name] = v
			logSum += ln(v)
			n++
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		rep.Mean[combo] = exp(logSum / float64(n))
		rep.Range[combo] = [2]float64{lo, hi}
	}
	return rep, nil
}

// Render prints the figure as a table.
func (r *Fig10Report) Render() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Fig. 10 — execution time normalized to MESI-MESI-MESI")
	var names []string
	for n := range r.Norm[Fig10Combos()[0]] {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(&b, "%-18s", "workload")
	for _, c := range Fig10Combos() {
		fmt.Fprintf(&b, " %16s", c)
	}
	fmt.Fprintln(&b)
	for _, n := range names {
		fmt.Fprintf(&b, "%-18s", n)
		for _, c := range Fig10Combos() {
			fmt.Fprintf(&b, " %16.3f", r.Norm[c][n])
		}
		fmt.Fprintln(&b)
	}
	fmt.Fprintf(&b, "%-18s", "geomean")
	for _, c := range Fig10Combos() {
		fmt.Fprintf(&b, " %16.3f", r.Mean[c])
	}
	fmt.Fprintln(&b)
	fmt.Fprintf(&b, "%-18s", "range")
	for _, c := range Fig10Combos() {
		fmt.Fprintf(&b, "    %5.3f-%-6.3f", r.Range[c][0], r.Range[c][1])
	}
	fmt.Fprintln(&b)
	return b.String()
}

// --------------------------------------------------------------- Fig 11

// Fig11Report holds the miss-cycle breakdowns (Sec. VI-C1) for the
// selected workloads under the baseline and CXL.
type Fig11Report struct {
	// Breakdown[workload][config] = miss-cycle histogram.
	Breakdown map[string]map[string]stats.MissBreakdown
}

// Fig11Workloads returns the paper's selection: three CXL-sensitive
// kernels plus the insensitive vips.
func Fig11Workloads() []string {
	return []string{"histogram", "barnes", "lu-ncont", "vips"}
}

// Fig11 regenerates Figure 11.
func Fig11(o ExpOptions) (*Fig11Report, error) {
	o.fill()
	if len(o.Workloads) == 33 {
		o.Workloads = Fig11Workloads()
	}
	rep := &Fig11Report{Breakdown: map[string]map[string]stats.MissBreakdown{}}
	configs := map[string]struct {
		global string
		locals [2]string
	}{
		"MESI-MESI-MESI": {"hmesi", [2]string{"mesi", "mesi"}},
		"MESI-CXL-MESI":  {"cxl", [2]string{"mesi", "mesi"}},
	}
	for _, name := range o.Workloads {
		rep.Breakdown[name] = map[string]stats.MissBreakdown{}
		for cfg, c := range configs {
			r, err := runOne(name, c.global, c.locals, [2]MCM{ARM, ARM}, &o)
			if err != nil {
				return nil, err
			}
			rep.Breakdown[name][cfg] = r.Miss
			o.progress("fig11 %s %s: %d miss cycles", name, cfg, r.Miss.TotalMissCycles())
		}
	}
	return rep, nil
}

// Render prints the breakdowns.
func (r *Fig11Report) Render() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Fig. 11 — miss cycles by latency band and instruction type")
	var names []string
	for n := range r.Breakdown {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		for _, cfg := range []string{"MESI-MESI-MESI", "MESI-CXL-MESI"} {
			mb := r.Breakdown[n][cfg]
			fmt.Fprintf(&b, "\n%s / %s (total %d miss cycles, MPKI %.1f)\n",
				n, cfg, mb.TotalMissCycles(), mb.MPKI())
			b.WriteString(mb.Render())
		}
		base := r.Breakdown[n]["MESI-MESI-MESI"]
		cxl := r.Breakdown[n]["MESI-CXL-MESI"]
		if hb := base.BandCycles(stats.BandHigh); hb > 0 {
			fmt.Fprintf(&b, "high-band (cross-cluster) cycles: %.1f%% -> %.1f%% of misses (%.2fx growth)\n",
				100*float64(hb)/float64(base.TotalMissCycles()),
				100*float64(cxl.BandCycles(stats.BandHigh))/float64(cxl.TotalMissCycles()),
				float64(cxl.BandCycles(stats.BandHigh))/float64(hb))
		}
	}
	return b.String()
}

// -------------------------------------------------------------- Table IV

// TableIVReport holds the litmus matrix.
type TableIVReport struct {
	// Pass[protoCombo][mcmCombo][test] records a clean campaign.
	Pass map[string]map[string]map[string]bool
	// Details carries forbidden-outcome diagnostics on failure.
	Details []string
	Iters   int
}

// TableIV regenerates the litmus matrix of Table IV. iters configures
// executions per cell (the paper uses 100k; tests use less).
func TableIV(iters int, seed int64) (*TableIVReport, error) {
	if iters <= 0 {
		iters = 100
	}
	protoCombos := map[string][2]string{
		"MESI-CXL-MESI":  {"mesi", "mesi"},
		"MESI-CXL-MOESI": {"mesi", "moesi"},
	}
	mcmCombos := map[string][2]MCM{
		"Arm-Arm": {ARM, ARM},
		"TSO-Arm": {TSO, ARM},
		"TSO-TSO": {TSO, TSO},
	}
	rep := &TableIVReport{Pass: map[string]map[string]map[string]bool{}, Iters: iters}
	for pcName, locals := range protoCombos {
		rep.Pass[pcName] = map[string]map[string]bool{}
		for mcName, mcms := range mcmCombos {
			rep.Pass[pcName][mcName] = map[string]bool{}
			for _, test := range litmus.TableIVNames() {
				tc, _ := litmus.ByName(test)
				res, err := litmus.Run(tc, litmus.RunnerConfig{
					Locals: locals, Global: "cxl",
					MCMs:  [2]cpu.MCM{mcms[0], mcms[1]},
					Iters: iters, Sync: litmus.SyncFull, BaseSeed: seed,
				})
				if err != nil {
					return nil, err
				}
				ok := res.Forbidden == 0
				rep.Pass[pcName][mcName][test] = ok
				if !ok {
					rep.Details = append(rep.Details, fmt.Sprintf(
						"%s/%s/%s: %d forbidden (%s)", pcName, mcName, test,
						res.Forbidden, res.ForbiddenExample))
				}
			}
		}
	}
	return rep, nil
}

// AllPass reports whether every cell is clean.
func (r *TableIVReport) AllPass() bool { return len(r.Details) == 0 }

// Render prints the matrix in the paper's layout.
func (r *TableIVReport) Render() string {
	var b strings.Builder
	mcms := []string{"Arm-Arm", "TSO-Arm", "TSO-TSO"}
	protos := []string{"MESI-CXL-MESI", "MESI-CXL-MOESI"}
	fmt.Fprintf(&b, "Table IV — litmus results (%d iterations per cell)\n", r.Iters)
	fmt.Fprintf(&b, "%-10s", "Test")
	for range protos {
		for _, m := range mcms {
			fmt.Fprintf(&b, " %8s", m)
		}
		fmt.Fprint(&b, "  |")
	}
	fmt.Fprintf(&b, "   (%s | %s)\n", protos[0], protos[1])
	for _, test := range litmus.TableIVNames() {
		fmt.Fprintf(&b, "%-10s", test+"-sys")
		for _, p := range protos {
			for _, m := range mcms {
				mark := "x"
				if r.Pass[p][m][test] {
					mark = "ok"
				}
				fmt.Fprintf(&b, " %8s", mark)
			}
			fmt.Fprint(&b, "  |")
		}
		fmt.Fprintln(&b)
	}
	for _, d := range r.Details {
		fmt.Fprintf(&b, "FAIL: %s\n", d)
	}
	return b.String()
}

func ln(x float64) float64  { return math.Log(x) }
func exp(x float64) float64 { return math.Exp(x) }

// -------------------------------------------------- Hybrid (extension)

// HybridReport quantifies the hybrid memory configuration the paper
// notes but does not evaluate (Sec. IV-D4 / Sec. V: "a hybrid
// configuration, where only part of the data is remote, might be more
// practical"): per-core private data homed in cluster-local memory,
// only genuinely shared data in the CXL pool. Both columns are
// normalized to the same reference — the all-remote MESI-MESI-MESI
// baseline — so they are directly comparable.
type HybridReport struct {
	// Overhead[workload] = [all-remote CXL, hybrid CXL], both divided by
	// the all-remote baseline time.
	Overhead map[string][2]float64
}

// Hybrid runs the extension experiment on a subset of kernels.
func Hybrid(o ExpOptions) (*HybridReport, error) {
	o.fill()
	if len(o.Workloads) == 33 {
		o.Workloads = []string{"histogram", "barnes", "vips", "canneal", "fft", "kmeans"}
	}
	rep := &HybridReport{Overhead: map[string][2]float64{}}
	for _, name := range o.Workloads {
		spec, ok := workload.ByName(name)
		if !ok {
			return nil, fmt.Errorf("c3: unknown workload %q", name)
		}
		run := func(global string, hybrid bool) (float64, error) {
			r, err := workload.Run(workload.RunConfig{
				Spec: spec, Global: global, Locals: [2]string{"mesi", "mesi"},
				MCMs:            [2]cpu.MCM{cpu.WMO, cpu.WMO},
				CoresPerCluster: o.CoresPerCluster, OpsScale: o.OpsScale,
				Seed: o.Seed, Hybrid: hybrid,
			})
			return float64(r.Time), err
		}
		baseR, err := run("hmesi", false)
		if err != nil {
			return nil, err
		}
		cxlR, err := run("cxl", false)
		if err != nil {
			return nil, err
		}
		cxlH, err := run("cxl", true)
		if err != nil {
			return nil, err
		}
		rep.Overhead[name] = [2]float64{cxlR / baseR, cxlH / baseR}
		o.progress("hybrid %s: all-remote %.3f, hybrid %.3f", name, cxlR/baseR, cxlH/baseR)
	}
	return rep, nil
}

// Render prints the comparison.
func (r *HybridReport) Render() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Hybrid memory (extension) — time vs. the all-remote native baseline")
	fmt.Fprintf(&b, "%-14s %12s %12s\n", "workload", "CXL remote", "CXL hybrid")
	var names []string
	for n := range r.Overhead {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		v := r.Overhead[n]
		fmt.Fprintf(&b, "%-14s %12.3f %12.3f\n", n, v[0], v[1])
	}
	return b.String()
}
