// Command c3litmus runs litmus-test campaigns on the simulated
// heterogeneous CXL system (Sec. VI-A of the paper).
//
// Usage:
//
//	c3litmus -table -iters 1000            # the full Table IV matrix
//	c3litmus -test MP -iters 5000          # one test
//	c3litmus -test SB -unsynced            # the paper's control runs
//	c3litmus -test IRIW -mcm0 tso -mcm1 arm -local1 moesi
//	c3litmus -test MP -crash 1@2500         # host 1 dies mid-run
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"c3"
)

// sortedKeys renders map output deterministically.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func main() {
	test := flag.String("test", "", "litmus test name (see -list)")
	list := flag.Bool("list", false, "list available tests")
	table := flag.Bool("table", false, "run the full Table IV matrix")
	iters := flag.Int("iters", 1000, "iterations per campaign (paper: 100000)")
	local0 := flag.String("local0", "mesi", "cluster 0 protocol")
	local1 := flag.String("local1", "mesi", "cluster 1 protocol")
	global := flag.String("global", "cxl", "global protocol: cxl|hmesi")
	mcm0 := flag.String("mcm0", "arm", "cluster 0 MCM: arm|tso|sc")
	mcm1 := flag.String("mcm1", "arm", "cluster 1 MCM: arm|tso|sc")
	unsynced := flag.Bool("unsynced", false, "strip all synchronization (control run)")
	seed := flag.Int64("seed", 1, "base random seed")
	trace := flag.Bool("trace", false, "print the coherence-message trace of the first iteration")
	traceJSON := flag.String("trace-json", "", "write the first iteration's protocol trace to this file (Chrome/Perfetto JSON)")
	workers := flag.Int("j", 0, "worker goroutines (0 = GOMAXPROCS, 1 = serial; results are identical)")
	flag.IntVar(workers, "workers", 0, "alias for -j")
	faults := flag.String("faults", "", "fault plan: preset name (light|noisy|stall|blackout|crash|crash-rejoin|crash-noisy) or drop=..,dup=.. spec")
	crash := flag.String("crash", "", "host crash: host@tick or host@tick:rejoin (';'-separated, layered over -faults)")
	flag.Parse()

	if *list {
		for _, n := range c3.LitmusTests() {
			fmt.Println(n)
		}
		return
	}
	if *table {
		rep, err := c3.TableIVWorkers(*iters, *seed, *workers)
		fail(err)
		fmt.Print(rep.Render())
		if !rep.AllPass() {
			os.Exit(1)
		}
		return
	}
	if *test == "" {
		fmt.Fprintln(os.Stderr, "c3litmus: -test, -table or -list required")
		os.Exit(2)
	}
	if !c3.ValidGlobalProtocol(*global) {
		fmt.Fprintf(os.Stderr, "c3litmus: unknown global protocol %q (want cxl|hmesi)\n", *global)
		os.Exit(2)
	}
	for _, l := range []struct{ flag, val string }{{"-local0", *local0}, {"-local1", *local1}} {
		if !c3.ValidLocalProtocol(l.val) {
			fmt.Fprintf(os.Stderr, "c3litmus: unknown %s protocol %q (want mesi|moesi|mesif|rcc)\n", l.flag, l.val)
			os.Exit(2)
		}
	}
	m0, err := c3.ParseMCM(*mcm0)
	failUsage(err)
	m1, err := c3.ParseMCM(*mcm1)
	failUsage(err)
	res, err := c3.RunLitmus(*test, c3.LitmusConfig{
		Locals:    [2]string{*local0, *local1},
		Global:    *global,
		MCMs:      [2]c3.MCM{m0, m1},
		Iters:     *iters,
		Unsynced:  *unsynced,
		Seed:      *seed,
		Trace:     *trace,
		TraceJSON: *traceJSON,
		Workers:   *workers,
		Faults:    *faults,
		Crash:     *crash,
	})
	fail(err)
	fmt.Printf("%s: %d iterations, %d distinct outcomes, %d forbidden\n",
		res.Test, res.Iters, res.Distinct, res.Forbidden)
	if *faults != "" || *crash != "" {
		fmt.Printf("faults: %d poisoned, %d crashed, %d hangs\n", res.Poisoned, res.Crashed, res.Hangs)
		for _, v := range sortedKeys(res.PoisonedVars) {
			fmt.Printf("poisoned var %s: %d iterations\n", v, res.PoisonedVars[v])
		}
	}
	if res.Forbidden > 0 {
		fmt.Printf("example forbidden outcome: %s\n", res.ForbiddenExample)
		if !*unsynced {
			os.Exit(1)
		}
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "c3litmus:", err)
		os.Exit(1)
	}
}

// failUsage exits 2 for configuration errors (bad flag values), keeping
// exit 1 for genuine run failures.
func failUsage(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "c3litmus:", err)
		os.Exit(2)
	}
}
