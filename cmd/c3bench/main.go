// Command c3bench regenerates the paper's evaluation artifacts:
//
//	c3bench -exp fig9    # MCM-mix comparison (Sec. VI-B)
//	c3bench -exp fig10   # protocol-mix comparison (Sec. VI-C)
//	c3bench -exp fig11   # miss-latency breakdowns (Sec. VI-C1)
//	c3bench -exp tab4    # the litmus matrix (Sec. VI-A)
//	c3bench -exp micro   # the perf-trajectory micro suite
//	c3bench -exp all
//
// Scale knobs: -scale multiplies kernel op budgets, -cores sets cores
// per cluster, -iters sets litmus iterations per cell, -j bounds the
// worker pool (results are identical for every worker count). The
// defaults complete in minutes; the paper-scale equivalents are
// documented in EXPERIMENTS.md.
//
// Perf trajectory: -exp micro runs the fixed-op micro benchmarks
// (kernel, network-send, checker-expand, soak-inner-loop) -runs times
// and aggregates (median wall, min allocs). -write-baseline commits the
// result as BENCH_c3.json; -baseline compares against a committed file
// and exits 1 on a >-tolerance wall regression or any alloc-count
// increase.
//
// Observability: -statusz serves a live run snapshot (JSON + pprof +
// expvar), -heartbeat prints progress to stderr, and every invocation
// appends a record to the run ledger (-ledger, default $C3_LEDGER or
// c3runs.jsonl; empty disables). None of these affect results.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"c3"
	"c3/internal/obs"
	"c3/internal/perf"
	"c3/internal/trace"
)

// benchStat is one entry of the -bench-json report: wall time and
// allocation cost per experiment, in `go test -bench` units.
type benchStat struct {
	NsOp     int64  `json:"ns_per_op"`
	AllocsOp uint64 `json:"allocs_per_op"`
	BytesOp  uint64 `json:"bytes_per_op"`
}

func main() {
	exp := flag.String("exp", "all", "experiment: fig9|fig10|fig11|tab4|hybrid|micro|all")
	scale := flag.Float64("scale", 1.0, "workload op-budget scale")
	cores := flag.Int("cores", 4, "cores per cluster")
	iters := flag.Int("iters", 400, "litmus iterations per Table IV cell")
	seed := flag.Int64("seed", 1, "random seed")
	workers := flag.Int("j", 0, "worker goroutines (0 = GOMAXPROCS, 1 = serial)")
	flag.IntVar(workers, "workers", 0, "alias for -j")
	verbose := flag.Bool("v", false, "per-run progress")
	out := flag.String("out", "", "also write each experiment's table to <out>/<exp>.txt")
	benchJSON := flag.String("bench-json", "", "write per-experiment timing/alloc stats (JSON) to this file")
	runs := flag.Int("runs", 1, "micro-suite repetitions to aggregate (CI uses 3: median wall, min allocs)")
	baseline := flag.String("baseline", "", "compare the micro suite against this committed baseline; exit 1 on regression")
	writeBaseline := flag.String("write-baseline", "", "write the micro suite's aggregate as a new baseline file")
	tolerance := flag.Float64("tolerance", perf.DefaultWallTolerance, "wall-time regression budget for -baseline (fraction)")
	statusz := flag.String("statusz", "", "serve live introspection (/statusz JSON, /metricsz, pprof, expvar) on this address, e.g. :8080 or 127.0.0.1:0")
	heartbeat := flag.Duration("heartbeat", 0, "print a progress line to stderr at this interval (0 = off)")
	ledger := flag.String("ledger", obs.DefaultLedgerPath(), "append a JSONL run record to this file (empty = off)")
	flag.Parse()

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "c3bench:", err)
			os.Exit(1)
		}
	}

	opts := c3.ExpOptions{CoresPerCluster: *cores, OpsScale: *scale, Seed: *seed, Workers: *workers}
	if *verbose {
		opts.Progress = func(s string) { fmt.Fprintln(os.Stderr, s) }
	}

	want := func(n string) bool { return *exp == "all" || *exp == n }
	// -baseline / -write-baseline imply the micro suite even under a
	// figure-only -exp, so the CI compare step composes with any run.
	wantMicro := want("micro") || *baseline != "" || *writeBaseline != ""

	type job struct {
		name string
		f    func() (interface{ Render() string }, error)
	}
	var jobs []job
	if want("tab4") {
		jobs = append(jobs, job{"Table IV", func() (interface{ Render() string }, error) {
			return c3.TableIVWorkers(*iters, *seed, *workers)
		}})
	}
	if want("fig9") {
		jobs = append(jobs, job{"Fig. 9", func() (interface{ Render() string }, error) { return c3.Fig9(opts) }})
	}
	if want("fig10") {
		jobs = append(jobs, job{"Fig. 10", func() (interface{ Render() string }, error) { return c3.Fig10(opts) }})
	}
	if want("fig11") {
		jobs = append(jobs, job{"Fig. 11", func() (interface{ Render() string }, error) { return c3.Fig11(opts) }})
	}
	if want("hybrid") {
		jobs = append(jobs, job{"Hybrid (extension)", func() (interface{ Render() string }, error) {
			return c3.Hybrid(opts)
		}})
	}

	labels := make([]string, 0, len(jobs)+1)
	for _, j := range jobs {
		labels = append(labels, j.name)
	}
	if wantMicro {
		labels = append(labels, "micro suite")
	}

	tracker := obs.NewTracker()
	tracker.Plan(labels)
	var done atomic.Uint64
	registry := trace.NewRegistry()
	registry.Counter("bench.experiments_done", done.Load)

	var server *obs.Server
	if *statusz != "" {
		var err error
		server, err = obs.StartStatusz(*statusz, "c3bench", tracker)
		if err != nil {
			fmt.Fprintln(os.Stderr, "c3bench:", err)
			os.Exit(2)
		}
		server.SetRegistry(registry)
		fmt.Fprintf(os.Stderr, "c3bench: statusz on http://%s/statusz\n", server.Addr())
	}
	var stopHeartbeat func()
	if *heartbeat > 0 {
		stopHeartbeat = obs.Heartbeat(context.Background(), os.Stderr, *heartbeat, "c3bench", tracker)
	}

	start := time.Now()
	extra := map[string]any{}
	// finish is the single exit path once observers are armed: it stops
	// them, appends the ledger record, and exits.
	finish := func(verdict string, exit int) {
		if stopHeartbeat != nil {
			stopHeartbeat()
		}
		if server != nil {
			server.Close()
		}
		if *ledger != "" {
			var metrics bytes.Buffer
			if err := registry.RenderJSON(&metrics); err != nil {
				metrics.Reset()
			}
			rec := &obs.Record{
				Tool:    "c3bench",
				Spec:    obs.SpecFromFlags("statusz", "heartbeat", "ledger"),
				Seeds:   []int64{*seed},
				Workers: *workers,
				Version: obs.Version(),
				Start:   start,
				WallMS:  time.Since(start).Milliseconds(),
				Verdict: verdict,
				Exit:    exit,
				Metrics: json.RawMessage(metrics.Bytes()),
				Extra:   extra,
			}
			if err := obs.AppendLedger(*ledger, rec); err != nil {
				fmt.Fprintf(os.Stderr, "c3bench: ledger: %v\n", err)
			}
		}
		os.Exit(exit)
	}

	stats := map[string]benchStat{}
	run := func(i int, name string, f func() (interface{ Render() string }, error)) {
		tracker.TaskStarted(i)
		var before, after runtime.MemStats
		if *benchJSON != "" {
			runtime.ReadMemStats(&before)
		}
		jobStart := time.Now()
		r, err := f()
		elapsed := time.Since(jobStart)
		tracker.TaskDone(i, err)
		if err != nil {
			fmt.Fprintf(os.Stderr, "c3bench %s: %v\n", name, err)
			extra["error"] = err.Error()
			finish(obs.VerdictError, 1)
		}
		done.Add(1)
		if *benchJSON != "" {
			runtime.ReadMemStats(&after)
			stats[name] = benchStat{
				NsOp:     elapsed.Nanoseconds(),
				AllocsOp: after.Mallocs - before.Mallocs,
				BytesOp:  after.TotalAlloc - before.TotalAlloc,
			}
		}
		body := r.Render()
		fmt.Printf("==== %s (%.1fs) ====\n%s\n", name, elapsed.Seconds(), body)
		if *out != "" {
			file := filepath.Join(*out, strings.ToLower(strings.ReplaceAll(
				strings.Fields(name)[0], ".", ""))+".txt")
			if err := os.WriteFile(file, []byte(body), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "c3bench:", err)
				finish(obs.VerdictError, 1)
			}
		}
	}

	for i, j := range jobs {
		run(i, j.name, j.f)
	}

	verdict := obs.VerdictPass
	exit := 0
	if wantMicro {
		i := len(jobs)
		tracker.TaskStarted(i)
		microStart := time.Now()
		micro := perf.MeasureAll(*runs)
		tracker.TaskDone(i, nil)
		done.Add(1)
		extra["micro"] = micro

		fmt.Printf("==== micro suite (%.1fs, %d run(s)) ====\n", time.Since(microStart).Seconds(), *runs)
		for _, name := range sortedStatNames(micro) {
			s := micro[name]
			fmt.Printf("%-18s %12d ns/op %8d allocs/op %10d B/op (x%d ops)\n",
				name, s.NsOp, s.AllocsOp, s.BytesOp, s.Ops)
			// Micro entries join the -bench-json report under micro/ names
			// so one file carries the whole invocation's perf data.
			stats["micro/"+name] = benchStat{NsOp: s.NsOp, AllocsOp: s.AllocsOp, BytesOp: s.BytesOp}
		}
		fmt.Println()

		if *writeBaseline != "" {
			if err := perf.SaveBaseline(*writeBaseline, perf.NewBaseline(micro)); err != nil {
				fmt.Fprintln(os.Stderr, "c3bench:", err)
				extra["error"] = err.Error()
				finish(obs.VerdictError, 1)
			}
			fmt.Fprintf(os.Stderr, "c3bench: wrote baseline %s\n", *writeBaseline)
		}
		if *baseline != "" {
			base, err := perf.LoadBaseline(*baseline)
			if err != nil {
				fmt.Fprintln(os.Stderr, "c3bench:", err)
				extra["error"] = err.Error()
				finish(obs.VerdictError, 1)
			}
			fmt.Print(perf.Summary(base, micro))
			if bad := perf.Compare(base, micro, *tolerance); len(bad) > 0 {
				for _, line := range bad {
					fmt.Fprintln(os.Stderr, "c3bench: REGRESSION:", line)
				}
				extra["regressions"] = bad
				verdict, exit = obs.VerdictFail, 1
			} else {
				fmt.Printf("perf trajectory OK: within +%.0f%% wall, no alloc growth (baseline %s)\n",
					100**tolerance, *baseline)
			}
		}
	}

	if *benchJSON != "" {
		data, err := json.MarshalIndent(stats, "", "  ")
		if err == nil {
			err = os.WriteFile(*benchJSON, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "c3bench:", err)
			extra["error"] = err.Error()
			finish(obs.VerdictError, 1)
		}
	}
	finish(verdict, exit)
}

func sortedStatNames(m map[string]perf.Stat) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}
