// Command c3bench regenerates the paper's evaluation artifacts:
//
//	c3bench -exp fig9    # MCM-mix comparison (Sec. VI-B)
//	c3bench -exp fig10   # protocol-mix comparison (Sec. VI-C)
//	c3bench -exp fig11   # miss-latency breakdowns (Sec. VI-C1)
//	c3bench -exp tab4    # the litmus matrix (Sec. VI-A)
//	c3bench -exp all
//
// Scale knobs: -scale multiplies kernel op budgets, -cores sets cores
// per cluster, -iters sets litmus iterations per cell. The defaults
// complete in minutes; the paper-scale equivalents are documented in
// EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"c3"
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig9|fig10|fig11|tab4|hybrid|all")
	scale := flag.Float64("scale", 1.0, "workload op-budget scale")
	cores := flag.Int("cores", 4, "cores per cluster")
	iters := flag.Int("iters", 400, "litmus iterations per Table IV cell")
	seed := flag.Int64("seed", 1, "random seed")
	verbose := flag.Bool("v", false, "per-run progress")
	out := flag.String("out", "", "also write each experiment's table to <out>/<exp>.txt")
	flag.Parse()

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "c3bench:", err)
			os.Exit(1)
		}
	}

	opts := c3.ExpOptions{CoresPerCluster: *cores, OpsScale: *scale, Seed: *seed}
	if *verbose {
		opts.Progress = func(s string) { fmt.Fprintln(os.Stderr, s) }
	}

	run := func(name string, f func() (interface{ Render() string }, error)) {
		start := time.Now()
		r, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "c3bench %s: %v\n", name, err)
			os.Exit(1)
		}
		body := r.Render()
		fmt.Printf("==== %s (%.1fs) ====\n%s\n", name, time.Since(start).Seconds(), body)
		if *out != "" {
			file := filepath.Join(*out, strings.ToLower(strings.ReplaceAll(
				strings.Fields(name)[0], ".", ""))+".txt")
			if err := os.WriteFile(file, []byte(body), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "c3bench:", err)
				os.Exit(1)
			}
		}
	}

	want := func(n string) bool { return *exp == "all" || *exp == n }
	if want("tab4") {
		run("Table IV", func() (interface{ Render() string }, error) {
			return c3.TableIV(*iters, *seed)
		})
	}
	if want("fig9") {
		run("Fig. 9", func() (interface{ Render() string }, error) { return c3.Fig9(opts) })
	}
	if want("fig10") {
		run("Fig. 10", func() (interface{ Render() string }, error) { return c3.Fig10(opts) })
	}
	if want("fig11") {
		run("Fig. 11", func() (interface{ Render() string }, error) { return c3.Fig11(opts) })
	}
	if want("hybrid") {
		run("Hybrid (extension)", func() (interface{ Render() string }, error) {
			return c3.Hybrid(opts)
		})
	}
}
