// Command c3bench regenerates the paper's evaluation artifacts:
//
//	c3bench -exp fig9    # MCM-mix comparison (Sec. VI-B)
//	c3bench -exp fig10   # protocol-mix comparison (Sec. VI-C)
//	c3bench -exp fig11   # miss-latency breakdowns (Sec. VI-C1)
//	c3bench -exp tab4    # the litmus matrix (Sec. VI-A)
//	c3bench -exp all
//
// Scale knobs: -scale multiplies kernel op budgets, -cores sets cores
// per cluster, -iters sets litmus iterations per cell, -j bounds the
// worker pool (results are identical for every worker count). The
// defaults complete in minutes; the paper-scale equivalents are
// documented in EXPERIMENTS.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"c3"
)

// benchStat is one entry of the -bench-json report: wall time and
// allocation cost per experiment, in `go test -bench` units.
type benchStat struct {
	NsOp     int64  `json:"ns_per_op"`
	AllocsOp uint64 `json:"allocs_per_op"`
	BytesOp  uint64 `json:"bytes_per_op"`
}

func main() {
	exp := flag.String("exp", "all", "experiment: fig9|fig10|fig11|tab4|hybrid|all")
	scale := flag.Float64("scale", 1.0, "workload op-budget scale")
	cores := flag.Int("cores", 4, "cores per cluster")
	iters := flag.Int("iters", 400, "litmus iterations per Table IV cell")
	seed := flag.Int64("seed", 1, "random seed")
	workers := flag.Int("j", 0, "worker goroutines (0 = GOMAXPROCS, 1 = serial)")
	flag.IntVar(workers, "workers", 0, "alias for -j")
	verbose := flag.Bool("v", false, "per-run progress")
	out := flag.String("out", "", "also write each experiment's table to <out>/<exp>.txt")
	benchJSON := flag.String("bench-json", "", "write per-experiment timing/alloc stats (JSON) to this file")
	flag.Parse()

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "c3bench:", err)
			os.Exit(1)
		}
	}

	opts := c3.ExpOptions{CoresPerCluster: *cores, OpsScale: *scale, Seed: *seed, Workers: *workers}
	if *verbose {
		opts.Progress = func(s string) { fmt.Fprintln(os.Stderr, s) }
	}

	stats := map[string]benchStat{}
	run := func(name string, f func() (interface{ Render() string }, error)) {
		var before, after runtime.MemStats
		if *benchJSON != "" {
			runtime.ReadMemStats(&before)
		}
		start := time.Now()
		r, err := f()
		elapsed := time.Since(start)
		if err != nil {
			fmt.Fprintf(os.Stderr, "c3bench %s: %v\n", name, err)
			os.Exit(1)
		}
		if *benchJSON != "" {
			runtime.ReadMemStats(&after)
			stats[name] = benchStat{
				NsOp:     elapsed.Nanoseconds(),
				AllocsOp: after.Mallocs - before.Mallocs,
				BytesOp:  after.TotalAlloc - before.TotalAlloc,
			}
		}
		body := r.Render()
		fmt.Printf("==== %s (%.1fs) ====\n%s\n", name, elapsed.Seconds(), body)
		if *out != "" {
			file := filepath.Join(*out, strings.ToLower(strings.ReplaceAll(
				strings.Fields(name)[0], ".", ""))+".txt")
			if err := os.WriteFile(file, []byte(body), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "c3bench:", err)
				os.Exit(1)
			}
		}
	}

	want := func(n string) bool { return *exp == "all" || *exp == n }
	if want("tab4") {
		run("Table IV", func() (interface{ Render() string }, error) {
			return c3.TableIVWorkers(*iters, *seed, *workers)
		})
	}
	if want("fig9") {
		run("Fig. 9", func() (interface{ Render() string }, error) { return c3.Fig9(opts) })
	}
	if want("fig10") {
		run("Fig. 10", func() (interface{ Render() string }, error) { return c3.Fig10(opts) })
	}
	if want("fig11") {
		run("Fig. 11", func() (interface{ Render() string }, error) { return c3.Fig11(opts) })
	}
	if want("hybrid") {
		run("Hybrid (extension)", func() (interface{ Render() string }, error) {
			return c3.Hybrid(opts)
		})
	}

	if *benchJSON != "" {
		data, err := json.MarshalIndent(stats, "", "  ")
		if err == nil {
			err = os.WriteFile(*benchJSON, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "c3bench:", err)
			os.Exit(1)
		}
	}
}
