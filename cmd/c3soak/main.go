// Command c3soak proves the coherence protocol survives an unreliable
// CXL link: it fans litmus campaigns across fault plans and seeds, each
// on a fabric that drops, duplicates, delays and stalls cross-cluster
// messages, and asserts that every run either passes its coherence
// checks or reports detected degradation (poisoned lines, classified
// watchdog hangs) — never a silent wrong value, never a panic.
//
// Usage:
//
//	c3soak                                     # Table IV x default presets x seed 1
//	c3soak -tests MP,SB -plans "light;blackout" -iters 50
//	c3soak -plans drop=0.02,dup=0.02 -seeds 1,2,3 -j 4
//	c3soak -plans "crash;crash-rejoin" -timeout 5m  # host-crash sweep
//	c3soak -statusz :8080 -heartbeat 10s            # live introspection
//	c3soak -list-plans
//
// -plans entries are separated by ';' (a plan spec itself uses commas).
//
// Observability: -statusz serves a JSON run snapshot (plus pprof and
// expvar) while the sweep runs, -heartbeat prints a progress line to
// stderr for headless CI, and every invocation appends a JSONL record
// to the run ledger (-ledger, default $C3_LEDGER or c3runs.jsonl;
// empty disables). None of these change the report: its bytes are
// identical with and without them, at any worker count.
//
// Exit status 0 means the soak contract held; 1 means a silent
// coherence violation, an aborted campaign, or a sweep timeout (the
// report shows which, and the ledger verdict distinguishes "timeout"
// from "fail").
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"c3"
	"c3/internal/litmus"
	"c3/internal/obs"
	"c3/internal/trace"
)

func main() {
	tests := flag.String("tests", "", "litmus tests, comma-separated (default: the Table IV set)")
	plans := flag.String("plans", "", "fault plans, ';'-separated: preset names and/or drop=..,dup=.. specs (default: all presets)")
	seeds := flag.String("seeds", "1", "campaign base seeds, comma-separated")
	iters := flag.Int("iters", 25, "iterations per campaign")
	local0 := flag.String("local0", "mesi", "cluster 0 protocol")
	local1 := flag.String("local1", "mesi", "cluster 1 protocol")
	global := flag.String("global", "cxl", "global protocol: cxl|hmesi")
	mcm0 := flag.String("mcm0", "arm", "cluster 0 MCM: arm|tso|sc")
	mcm1 := flag.String("mcm1", "arm", "cluster 1 MCM")
	workers := flag.Int("j", 0, "worker goroutines (0 = GOMAXPROCS; reports are identical for any count)")
	flag.IntVar(workers, "workers", 0, "alias for -j")
	timeout := flag.Duration("timeout", 0, "wall-clock bound for the whole sweep, e.g. 5m (0 = none)")
	listPlans := flag.Bool("list-plans", false, "list the named fault-plan presets")
	statusz := flag.String("statusz", "", "serve live introspection (/statusz JSON, /metricsz, pprof, expvar) on this address, e.g. :8080 or 127.0.0.1:0")
	heartbeat := flag.Duration("heartbeat", 0, "print a progress line to stderr at this interval (0 = off)")
	ledger := flag.String("ledger", obs.DefaultLedgerPath(), "append a JSONL run record to this file (empty = off)")
	flag.Parse()

	if *listPlans {
		for _, n := range c3.FaultPlans() {
			p, _ := c3.ParseFaultPlan(n)
			fmt.Printf("%-12s %s\n", n, p.String())
		}
		return
	}

	if *timeout < 0 {
		fmt.Fprintf(os.Stderr, "c3soak: -timeout must be non-negative (got %v)\n", *timeout)
		os.Exit(2)
	}

	if !c3.ValidGlobalProtocol(*global) {
		fmt.Fprintf(os.Stderr, "c3soak: unknown global protocol %q (want cxl|hmesi)\n", *global)
		os.Exit(2)
	}
	for _, l := range []struct{ flag, val string }{{"-local0", *local0}, {"-local1", *local1}} {
		if !c3.ValidLocalProtocol(l.val) {
			fmt.Fprintf(os.Stderr, "c3soak: unknown %s protocol %q (want mesi|moesi|mesif|rcc)\n", l.flag, l.val)
			os.Exit(2)
		}
	}
	m0, err := c3.ParseMCM(*mcm0)
	failUsage(err)
	m1, err := c3.ParseMCM(*mcm1)
	failUsage(err)

	cfg := c3.SoakConfig{
		Tests:   csv(*tests),
		Plans:   split(*plans, ";"),
		Iters:   *iters,
		Locals:  [2]string{*local0, *local1},
		Global:  *global,
		MCMs:    [2]c3.MCM{m0, m1},
		Workers: *workers,
		Timeout: *timeout,
	}
	for _, s := range csv(*seeds) {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "c3soak: bad seed %q\n", s)
			os.Exit(2)
		}
		cfg.Seeds = append(cfg.Seeds, v)
	}

	// Live introspection: the tracker follows the campaign pool, the
	// registry aggregates atomically maintained sweep counters (safe to
	// render from HTTP goroutines mid-run), and the optional server and
	// heartbeat read both. None of it touches the report.
	so := newSoakObserver()
	cfg.Observer = so
	var server *obs.Server
	if *statusz != "" {
		server, err = obs.StartStatusz(*statusz, "c3soak", so.Tracker)
		failUsage(err)
		server.SetRegistry(so.registry)
		fmt.Fprintf(os.Stderr, "c3soak: statusz on http://%s/statusz\n", server.Addr())
	}
	var stopHeartbeat func()
	if *heartbeat > 0 {
		stopHeartbeat = obs.Heartbeat(os.Stderr, *heartbeat, "c3soak", so.Tracker)
	}

	start := time.Now()
	rep, err := c3.RunSoak(cfg)
	if stopHeartbeat != nil {
		stopHeartbeat()
	}
	if server != nil {
		server.Close()
	}
	if err != nil {
		appendLedger(*ledger, so, cfg, start, obs.VerdictError, 2, map[string]any{"error": err.Error()})
		failUsage(err)
	}

	fmt.Print(rep.Render())
	exit := 0
	if !rep.OK() {
		exit = 1
	}
	appendLedger(*ledger, so, cfg, start, rep.Verdict(), exit, map[string]any{
		"campaigns": len(rep.Runs),
		"forbidden": so.forbidden.Load(),
		"poisoned":  so.poisoned.Load(),
		"crashed":   so.crashed.Load(),
		"hangs":     so.hangs.Load(),
		"timeouts":  so.timeouts.Load(),
	})
	os.Exit(exit)
}

// soakObserver aggregates the sweep live: the embedded Tracker follows
// pool scheduling, and the atomic tallies (fed by CampaignDone, read by
// the statusz registry) expose the robustness counters — including the
// watchdog firings — while the sweep runs.
type soakObserver struct {
	*obs.Tracker
	registry *trace.Registry

	forbidden atomic.Uint64
	poisoned  atomic.Uint64
	crashed   atomic.Uint64
	hangs     atomic.Uint64
	timeouts  atomic.Uint64
	errors    atomic.Uint64
}

func newSoakObserver() *soakObserver {
	o := &soakObserver{Tracker: obs.NewTracker(), registry: trace.NewRegistry()}
	o.registry.Counter("soak.forbidden", o.forbidden.Load)
	o.registry.Counter("soak.poisoned", o.poisoned.Load)
	o.registry.Counter("soak.crashed", o.crashed.Load)
	o.registry.Counter("soak.watchdog_firings", o.hangs.Load)
	o.registry.Counter("soak.timeouts", o.timeouts.Load)
	o.registry.Counter("soak.errors", o.errors.Load)
	return o
}

// CampaignDone implements litmus.SoakRowObserver; it runs concurrently
// from pool workers.
func (o *soakObserver) CampaignDone(_ int, row litmus.SoakRun) {
	o.forbidden.Add(uint64(row.Forbidden))
	o.poisoned.Add(uint64(row.Poisoned))
	o.crashed.Add(uint64(row.Crashed))
	o.hangs.Add(uint64(row.Hangs))
	if row.TimedOut {
		o.timeouts.Add(1)
	} else if row.Err != "" {
		o.errors.Add(1)
	}
}

// appendLedger writes this invocation's run-ledger record; ledger
// failures warn but never change the exit status (the sweep's verdict
// must not depend on a full disk).
func appendLedger(path string, so *soakObserver, cfg c3.SoakConfig, start time.Time, verdict string, exit int, extra map[string]any) {
	if path == "" {
		return
	}
	var metrics bytes.Buffer
	if err := so.registry.RenderJSON(&metrics); err != nil {
		metrics.Reset()
	}
	rec := &obs.Record{
		Tool:    "c3soak",
		Spec:    obs.SpecFromFlags("statusz", "heartbeat", "ledger"),
		Seeds:   cfg.Seeds,
		Workers: cfg.Workers,
		Version: obs.Version(),
		Start:   start,
		WallMS:  time.Since(start).Milliseconds(),
		Verdict: verdict,
		Exit:    exit,
		Metrics: json.RawMessage(metrics.Bytes()),
		Extra:   extra,
	}
	if err := obs.AppendLedger(path, rec); err != nil {
		fmt.Fprintf(os.Stderr, "c3soak: ledger: %v\n", err)
	}
}

func csv(s string) []string { return split(s, ",") }

func split(s, sep string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, f := range strings.Split(s, sep) {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func failUsage(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "c3soak:", err)
		os.Exit(2)
	}
}
