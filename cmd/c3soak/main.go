// Command c3soak proves the coherence protocol survives an unreliable
// CXL link: it fans litmus campaigns across fault plans and seeds, each
// on a fabric that drops, duplicates, delays and stalls cross-cluster
// messages, and asserts that every run either passes its coherence
// checks or reports detected degradation (poisoned lines, classified
// watchdog hangs) — never a silent wrong value, never a panic.
//
// Usage:
//
//	c3soak                                     # Table IV x default presets x seed 1
//	c3soak -tests MP,SB -plans "light;blackout" -iters 50
//	c3soak -plans drop=0.02,dup=0.02 -seeds 1,2,3 -j 4
//	c3soak -plans "crash;crash-rejoin" -timeout 5m  # host-crash sweep
//	c3soak -statusz :8080 -heartbeat 10s            # live introspection
//	c3soak -task-timeout 2m -retries 3              # per-campaign budgets
//	c3soak -resume                                  # skip checkpointed rows
//	c3soak -list-plans
//
// -plans entries are separated by ';' (a plan spec itself uses commas).
//
// Resilience: every completed campaign row is checkpointed to the run
// ledger as it finishes, so a sweep killed at any point — SIGKILL, OOM,
// power loss — finishes correctly on restart: -resume replays the
// ledger, skips every (spec, seed, code-version) row already verdicted,
// re-runs the rest, and emits a report byte-identical to an
// uninterrupted run. SIGINT/SIGTERM shut down gracefully: in-flight
// campaigns stop at their next poll, the partial report and ledger
// checkpoint flush, and the process exits 3 (resumable); a second
// signal kills immediately. -task-timeout bounds each campaign attempt,
// with -retries extra attempts under capped exponential backoff before
// the row is recorded as TIMEOUT. By default a failing campaign never
// cancels its siblings; -fail-fast restores first-error-cancel.
//
// Observability: -statusz serves a JSON run snapshot (plus pprof and
// expvar) while the sweep runs, -heartbeat prints a progress line to
// stderr for headless CI, and every invocation appends a JSONL record
// to the run ledger (-ledger, default $C3_LEDGER or c3runs.jsonl;
// empty disables). None of these change the report: its bytes are
// identical with and without them, at any worker count.
//
// Exit status: 0 the soak contract held; 1 a silent coherence
// violation, an aborted campaign, or a sweep timeout (the report shows
// which, and the ledger verdict distinguishes "timeout" from "fail");
// 2 usage error; 3 interrupted by SIGINT/SIGTERM with completed rows
// checkpointed — rerun with -resume to finish.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"c3"
	"c3/internal/campaign"
	"c3/internal/litmus"
	"c3/internal/obs"
	"c3/internal/trace"
)

func main() {
	tests := flag.String("tests", "", "litmus tests, comma-separated (default: the Table IV set)")
	plans := flag.String("plans", "", "fault plans, ';'-separated: preset names and/or drop=..,dup=.. specs (default: all presets)")
	seeds := flag.String("seeds", "1", "campaign base seeds, comma-separated")
	iters := flag.Int("iters", 25, "iterations per campaign")
	local0 := flag.String("local0", "mesi", "cluster 0 protocol")
	local1 := flag.String("local1", "mesi", "cluster 1 protocol")
	global := flag.String("global", "cxl", "global protocol: cxl|hmesi")
	mcm0 := flag.String("mcm0", "arm", "cluster 0 MCM: arm|tso|sc")
	mcm1 := flag.String("mcm1", "arm", "cluster 1 MCM")
	workers := flag.Int("j", 0, "worker goroutines (0 = GOMAXPROCS; reports are identical for any count)")
	flag.IntVar(workers, "workers", 0, "alias for -j")
	timeout := flag.Duration("timeout", 0, "wall-clock bound for the whole sweep, e.g. 5m (0 = none)")
	taskTimeout := flag.Duration("task-timeout", 0, "wall-clock bound per campaign attempt (0 = none); expired attempts retry, then the row records TIMEOUT")
	retries := flag.Int("retries", 2, "extra attempts a timed-out or panicked campaign gets (capped exponential backoff between attempts)")
	failFast := flag.Bool("fail-fast", false, "first campaign abort cancels the sweep (default: isolate failures as report rows)")
	resume := flag.Bool("resume", false, "skip campaigns already checkpointed in the ledger (same spec, seed and code version)")
	listPlans := flag.Bool("list-plans", false, "list the named fault-plan presets")
	statusz := flag.String("statusz", "", "serve live introspection (/statusz JSON, /metricsz, pprof, expvar) on this address, e.g. :8080 or 127.0.0.1:0")
	heartbeat := flag.Duration("heartbeat", 0, "print a progress line to stderr at this interval (0 = off)")
	ledger := flag.String("ledger", obs.DefaultLedgerPath(), "append JSONL run and row-checkpoint records to this file (empty = off)")
	compact := flag.Bool("compact-ledger", false, "rewrite the ledger keeping only the latest record per row key, then exit (resume output is unchanged)")
	flag.Parse()

	if *listPlans {
		for _, n := range c3.FaultPlans() {
			p, _ := c3.ParseFaultPlan(n)
			fmt.Printf("%-12s %s\n", n, p.String())
		}
		return
	}

	if *compact {
		if *ledger == "" {
			fmt.Fprintln(os.Stderr, "c3soak: -compact-ledger needs a ledger (-ledger)")
			os.Exit(obs.ExitUsage)
		}
		stats, err := obs.CompactLedger(*ledger)
		if err != nil {
			fmt.Fprintln(os.Stderr, "c3soak: compact:", err)
			os.Exit(obs.ExitFail)
		}
		fmt.Fprintf(os.Stderr, "c3soak: compact: %s: %d records -> %d (%d superseded row checkpoints dropped, %d torn)\n",
			*ledger, stats.In, stats.Out, stats.DroppedRows, stats.Torn)
		return
	}

	if *timeout < 0 || *taskTimeout < 0 {
		fmt.Fprintln(os.Stderr, "c3soak: -timeout and -task-timeout must be non-negative")
		os.Exit(obs.ExitUsage)
	}
	if *retries < 0 {
		fmt.Fprintln(os.Stderr, "c3soak: -retries must be non-negative")
		os.Exit(obs.ExitUsage)
	}
	if *resume && *ledger == "" {
		fmt.Fprintln(os.Stderr, "c3soak: -resume needs a ledger (-ledger)")
		os.Exit(obs.ExitUsage)
	}

	if !c3.ValidGlobalProtocol(*global) {
		fmt.Fprintf(os.Stderr, "c3soak: unknown global protocol %q (want cxl|hmesi)\n", *global)
		os.Exit(obs.ExitUsage)
	}
	for _, l := range []struct{ flag, val string }{{"-local0", *local0}, {"-local1", *local1}} {
		if !c3.ValidLocalProtocol(l.val) {
			fmt.Fprintf(os.Stderr, "c3soak: unknown %s protocol %q (want mesi|moesi|mesif|rcc)\n", l.flag, l.val)
			os.Exit(obs.ExitUsage)
		}
	}
	m0, err := c3.ParseMCM(*mcm0)
	failUsage(err)
	m1, err := c3.ParseMCM(*mcm1)
	failUsage(err)

	cfg := c3.SoakConfig{
		Tests:       csv(*tests),
		Plans:       split(*plans, ";"),
		Iters:       *iters,
		Locals:      [2]string{*local0, *local1},
		Global:      *global,
		MCMs:        [2]c3.MCM{m0, m1},
		Workers:     *workers,
		Timeout:     *timeout,
		TaskTimeout: *taskTimeout,
		Retries:     *retries,
		FailFast:    *failFast,
	}
	for _, s := range csv(*seeds) {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "c3soak: bad seed %q\n", s)
			os.Exit(obs.ExitUsage)
		}
		cfg.Seeds = append(cfg.Seeds, v)
	}

	// The row-checkpoint suffix scopes checkpoint keys to everything that
	// shapes a row's result: the run configuration and the code version.
	// A resumed sweep only trusts rows whose suffix matches its own, so
	// changing a flag or rebuilding at a different revision invalidates
	// the cache naturally. Shared with c3serve so coordinator journals
	// and c3soak checkpoint ledgers resume each other.
	suffix := campaign.RowSuffix(cfg.Locals, cfg.Global, cfg.MCMs, cfg.Iters)

	// Graceful shutdown: the first SIGINT/SIGTERM closes the interrupt
	// channel — in-flight campaigns stop at their next poll, the partial
	// report and checkpoints flush, and the exit code says "resumable".
	// signal.Stop restores default disposition, so a second signal kills.
	interrupt := make(chan struct{})
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig, ok := <-sigc
		if !ok {
			return
		}
		fmt.Fprintf(os.Stderr, "c3soak: %v: stopping gracefully, checkpointing completed rows (send again to kill)\n", sig)
		signal.Stop(sigc)
		close(interrupt)
	}()
	cfg.Interrupt = interrupt

	if *resume {
		completed, stats, err := campaign.LoadCheckpoints(*ledger, suffix)
		if err != nil {
			if os.IsNotExist(err) {
				fmt.Fprintf(os.Stderr, "c3soak: resume: no ledger at %s, starting fresh\n", *ledger)
			} else {
				fmt.Fprintf(os.Stderr, "c3soak: -resume: %v\n", err)
				os.Exit(obs.ExitUsage)
			}
		}
		for _, w := range stats.Warnings {
			fmt.Fprintln(os.Stderr, "c3soak: resume:", w)
		}
		if stats.Skipped > 0 {
			fmt.Fprintf(os.Stderr, "c3soak: resume: %d torn/corrupt ledger record(s) skipped\n", stats.Skipped)
		}
		fmt.Fprintf(os.Stderr, "c3soak: resume: %d completed rows loaded from %s\n", len(completed), *ledger)
		cfg.Completed = completed
	}

	// Live introspection: the tracker follows the campaign pool, the
	// registry aggregates atomically maintained sweep counters (safe to
	// render from HTTP goroutines mid-run), and the optional server and
	// heartbeat read both. None of it touches the report. The observer
	// also checkpoints each completed row to the ledger as it finishes.
	so := newSoakObserver(*ledger, suffix)
	cfg.Observer = so
	var server *obs.Server
	if *statusz != "" {
		server, err = obs.StartStatusz(*statusz, "c3soak", so.Tracker)
		failUsage(err)
		server.SetRegistry(so.registry)
		fmt.Fprintf(os.Stderr, "c3soak: statusz on http://%s/statusz\n", server.Addr())
	}
	var stopHeartbeat func()
	if *heartbeat > 0 {
		stopHeartbeat = obs.Heartbeat(context.Background(), os.Stderr, *heartbeat, "c3soak", so.Tracker)
	}

	start := time.Now()
	rep, err := c3.RunSoak(cfg)
	if stopHeartbeat != nil {
		stopHeartbeat()
	}
	if server != nil {
		server.Close()
	}
	signal.Stop(sigc)
	close(sigc)
	if err != nil {
		appendLedger(*ledger, so, cfg, start, obs.VerdictError, obs.ExitUsage, map[string]any{"error": err.Error()})
		failUsage(err)
	}

	fmt.Print(rep.Render())
	verdict := rep.Verdict()
	exit := obs.ExitPass
	switch verdict {
	case "pass":
	case obs.VerdictInterrupted:
		exit = obs.ExitResumable
	default:
		exit = obs.ExitFail
	}
	resumed := 0
	for _, r := range rep.Runs {
		if r.Resumed {
			resumed++
		}
	}
	appendLedger(*ledger, so, cfg, start, verdict, exit, map[string]any{
		"campaigns": len(rep.Runs),
		"resumed":   resumed,
		"forbidden": so.forbidden.Load(),
		"poisoned":  so.poisoned.Load(),
		"crashed":   so.crashed.Load(),
		"hangs":     so.hangs.Load(),
		"timeouts":  so.timeouts.Load(),
	})
	os.Exit(exit)
}

// soakObserver aggregates the sweep live: the embedded Tracker follows
// pool scheduling, and the atomic tallies (fed by CampaignDone, read by
// the statusz registry) expose the robustness counters — including the
// watchdog firings — while the sweep runs. When a ledger is configured
// it also checkpoints every completed row as a c3-run/v1 record, which
// is what -resume replays.
type soakObserver struct {
	*obs.Tracker
	registry *trace.Registry

	ledgerPath string
	rowSuffix  string

	forbidden atomic.Uint64
	poisoned  atomic.Uint64
	crashed   atomic.Uint64
	hangs     atomic.Uint64
	timeouts  atomic.Uint64
	errors    atomic.Uint64
}

func newSoakObserver(ledgerPath, rowSuffix string) *soakObserver {
	o := &soakObserver{
		Tracker: obs.NewTracker(), registry: trace.NewRegistry(),
		ledgerPath: ledgerPath, rowSuffix: rowSuffix,
	}
	o.registry.Counter("soak.forbidden", o.forbidden.Load)
	o.registry.Counter("soak.poisoned", o.poisoned.Load)
	o.registry.Counter("soak.crashed", o.crashed.Load)
	o.registry.Counter("soak.watchdog_firings", o.hangs.Load)
	o.registry.Counter("soak.timeouts", o.timeouts.Load)
	o.registry.Counter("soak.errors", o.errors.Load)
	return o
}

// CampaignDone implements litmus.SoakRowObserver; it runs concurrently
// from pool workers (AppendLedger's single O_APPEND write keeps
// concurrent checkpoints whole).
func (o *soakObserver) CampaignDone(_ int, row litmus.SoakRun) {
	o.forbidden.Add(uint64(row.Forbidden))
	o.poisoned.Add(uint64(row.Poisoned))
	o.crashed.Add(uint64(row.Crashed))
	o.hangs.Add(uint64(row.Hangs))
	if row.TimedOut {
		o.timeouts.Add(1)
	} else if row.Err != "" && !row.Interrupted {
		o.errors.Add(1)
	}
	// Checkpoint executed rows only: resumed rows are already in the
	// ledger, interrupted rows have no verdict to cache.
	if o.ledgerPath == "" || row.Resumed || row.Interrupted {
		return
	}
	rowKey := litmus.RowLabel(row.Test, row.Plan, row.Seed) + "|" + o.rowSuffix
	if err := campaign.AppendRowRecord(o.ledgerPath, "c3soak", rowKey, row); err != nil {
		fmt.Fprintf(os.Stderr, "c3soak: checkpoint: %v\n", err)
	}
}

// appendLedger writes this invocation's run-ledger record; ledger
// failures warn but never change the exit status (the sweep's verdict
// must not depend on a full disk).
func appendLedger(path string, so *soakObserver, cfg c3.SoakConfig, start time.Time, verdict string, exit int, extra map[string]any) {
	if path == "" {
		return
	}
	var metrics bytes.Buffer
	if err := so.registry.RenderJSON(&metrics); err != nil {
		metrics.Reset()
	}
	rec := &obs.Record{
		Tool:    "c3soak",
		Spec:    obs.SpecFromFlags("statusz", "heartbeat", "ledger", "resume"),
		Seeds:   cfg.Seeds,
		Workers: cfg.Workers,
		Version: obs.Version(),
		Start:   start,
		WallMS:  time.Since(start).Milliseconds(),
		Verdict: verdict,
		Exit:    exit,
		Metrics: json.RawMessage(metrics.Bytes()),
		Extra:   extra,
	}
	if err := obs.AppendLedger(path, rec); err != nil {
		fmt.Fprintf(os.Stderr, "c3soak: ledger: %v\n", err)
	}
}

func csv(s string) []string { return split(s, ",") }

func split(s, sep string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, f := range strings.Split(s, sep) {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func failUsage(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "c3soak:", err)
		os.Exit(obs.ExitUsage)
	}
}
