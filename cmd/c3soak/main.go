// Command c3soak proves the coherence protocol survives an unreliable
// CXL link: it fans litmus campaigns across fault plans and seeds, each
// on a fabric that drops, duplicates, delays and stalls cross-cluster
// messages, and asserts that every run either passes its coherence
// checks or reports detected degradation (poisoned lines, classified
// watchdog hangs) — never a silent wrong value, never a panic.
//
// Usage:
//
//	c3soak                                     # Table IV x default presets x seed 1
//	c3soak -tests MP,SB -plans "light;blackout" -iters 50
//	c3soak -plans drop=0.02,dup=0.02 -seeds 1,2,3 -j 4
//	c3soak -plans "crash;crash-rejoin" -timeout 5m  # host-crash sweep
//	c3soak -list-plans
//
// -plans entries are separated by ';' (a plan spec itself uses commas).
//
// Exit status 0 means the soak contract held; 1 means a silent
// coherence violation or an aborted campaign (the report shows which).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"c3"
)

func main() {
	tests := flag.String("tests", "", "litmus tests, comma-separated (default: the Table IV set)")
	plans := flag.String("plans", "", "fault plans, ';'-separated: preset names and/or drop=..,dup=.. specs (default: all presets)")
	seeds := flag.String("seeds", "1", "campaign base seeds, comma-separated")
	iters := flag.Int("iters", 25, "iterations per campaign")
	local0 := flag.String("local0", "mesi", "cluster 0 protocol")
	local1 := flag.String("local1", "mesi", "cluster 1 protocol")
	global := flag.String("global", "cxl", "global protocol: cxl|hmesi")
	mcm0 := flag.String("mcm0", "arm", "cluster 0 MCM: arm|tso|sc")
	mcm1 := flag.String("mcm1", "arm", "cluster 1 MCM")
	workers := flag.Int("j", 0, "worker goroutines (0 = GOMAXPROCS; reports are identical for any count)")
	flag.IntVar(workers, "workers", 0, "alias for -j")
	timeout := flag.Duration("timeout", 0, "wall-clock bound for the whole sweep, e.g. 5m (0 = none)")
	listPlans := flag.Bool("list-plans", false, "list the named fault-plan presets")
	flag.Parse()

	if *listPlans {
		for _, n := range c3.FaultPlans() {
			p, _ := c3.ParseFaultPlan(n)
			fmt.Printf("%-12s %s\n", n, p.String())
		}
		return
	}

	if *timeout < 0 {
		fmt.Fprintf(os.Stderr, "c3soak: -timeout must be non-negative (got %v)\n", *timeout)
		os.Exit(2)
	}

	if !c3.ValidGlobalProtocol(*global) {
		fmt.Fprintf(os.Stderr, "c3soak: unknown global protocol %q (want cxl|hmesi)\n", *global)
		os.Exit(2)
	}
	for _, l := range []struct{ flag, val string }{{"-local0", *local0}, {"-local1", *local1}} {
		if !c3.ValidLocalProtocol(l.val) {
			fmt.Fprintf(os.Stderr, "c3soak: unknown %s protocol %q (want mesi|moesi|mesif|rcc)\n", l.flag, l.val)
			os.Exit(2)
		}
	}
	m0, err := c3.ParseMCM(*mcm0)
	failUsage(err)
	m1, err := c3.ParseMCM(*mcm1)
	failUsage(err)

	cfg := c3.SoakConfig{
		Tests:   csv(*tests),
		Plans:   split(*plans, ";"),
		Iters:   *iters,
		Locals:  [2]string{*local0, *local1},
		Global:  *global,
		MCMs:    [2]c3.MCM{m0, m1},
		Workers: *workers,
		Timeout: *timeout,
	}
	for _, s := range csv(*seeds) {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "c3soak: bad seed %q\n", s)
			os.Exit(2)
		}
		cfg.Seeds = append(cfg.Seeds, v)
	}

	rep, err := c3.RunSoak(cfg)
	failUsage(err)
	fmt.Print(rep.Render())
	if !rep.OK() {
		os.Exit(1)
	}
}

func csv(s string) []string { return split(s, ",") }

func split(s, sep string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, f := range strings.Split(s, sep) {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func failUsage(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "c3soak:", err)
		os.Exit(2)
	}
}
