// Command c3serve is the distributed soak-campaign coordinator: it
// expands a sweep spec (litmus tests × fault plans × seeds) into a
// shard-by-seed job queue, hands shards to c3worker processes under
// time-bounded leases, tracks worker liveness via heartbeats, requeues
// shards whose workers die (capped backoff, quarantine after repeated
// failures), journals every accepted result to the c3-run/v1 ledger,
// and — when every shard is terminal — prints a report byte-identical
// to a single-process `c3soak` run of the same spec.
//
// Usage:
//
//	c3serve -addr 127.0.0.1:8423 -tests MP,SB -plans light -seeds 1,2,3
//	c3worker -coordinator http://127.0.0.1:8423 &   # × N, any machines
//	c3serve -addr :8423 -lease 10s -max-failures 3  # fleet tuning
//	c3serve -resume                                 # finish a dead coordinator's campaign
//
// Fault tolerance: a worker that is killed, hangs, or partitions simply
// stops heartbeating; its lease expires and the shard requeues with
// capped exponential backoff, quarantining as a loud error row after
// -max-failures expiries. Execution is at-least-once — a slow worker's
// late result is deduplicated through the content-addressed row key
// (spec, seed, code version), and seed determinism makes duplicates
// byte-identical, so correctness never depends on exactly-once
// delivery. The journal is the same O_APPEND ledger c3soak checkpoints
// into: `c3serve -resume` (or even `c3soak -resume`) finishes a
// campaign a dead coordinator started.
//
// Endpoints: /healthz (liveness probe), /statusz (queue + worker
// snapshot), /spec, /lease, /heartbeat, /result, /release, /results
// (streaming JSONL of accepted rows), /report.
//
// Exit status: 0 campaign passed; 1 a silent violation, an aborted or
// quarantined shard, or a sweep timeout; 2 usage error; 3 interrupted
// by SIGINT/SIGTERM with accepted rows journaled — rerun with -resume.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"c3"
	"c3/internal/campaign"
	"c3/internal/litmus"
	"c3/internal/obs"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8423", "coordinator listen address")
	tests := flag.String("tests", "", "litmus tests, comma-separated (default: the Table IV set)")
	plans := flag.String("plans", "", "fault plans, ';'-separated: preset names and/or drop=..,dup=.. specs (default: all presets)")
	seeds := flag.String("seeds", "1", "campaign base seeds, comma-separated")
	iters := flag.Int("iters", 25, "iterations per campaign")
	local0 := flag.String("local0", "mesi", "cluster 0 protocol")
	local1 := flag.String("local1", "mesi", "cluster 1 protocol")
	global := flag.String("global", "cxl", "global protocol: cxl|hmesi")
	mcm0 := flag.String("mcm0", "arm", "cluster 0 MCM: arm|tso|sc")
	mcm1 := flag.String("mcm1", "arm", "cluster 1 MCM")
	taskTimeout := flag.Duration("task-timeout", 0, "per-shard attempt budget applied by workers (0 = none)")
	retries := flag.Int("retries", 2, "extra attempts a timed-out or panicked shard gets on its worker")
	lease := flag.Duration("lease", campaign.DefaultLeaseTTL, "lease TTL: a worker silent this long loses its shard")
	maxFailures := flag.Int("max-failures", campaign.DefaultMaxFailures, "lease failures before a shard is quarantined as an error row")
	timeout := flag.Duration("timeout", 0, "wall-clock bound for the whole campaign (0 = none)")
	drain := flag.Duration("drain", 2*time.Second, "after completion, keep answering \"campaign complete\" this long so idle workers exit 0 instead of \"coordinator lost\"")
	ledger := flag.String("ledger", obs.DefaultLedgerPath(), "journal accepted rows and the run record to this file (empty = off)")
	resume := flag.Bool("resume", false, "replay the journal and queue only shards without checkpointed rows")
	flag.Parse()

	if *lease <= 0 || *maxFailures <= 0 {
		fmt.Fprintln(os.Stderr, "c3serve: -lease and -max-failures must be positive")
		os.Exit(obs.ExitUsage)
	}
	if *timeout < 0 || *taskTimeout < 0 || *retries < 0 {
		fmt.Fprintln(os.Stderr, "c3serve: -timeout, -task-timeout and -retries must be non-negative")
		os.Exit(obs.ExitUsage)
	}
	if *resume && *ledger == "" {
		fmt.Fprintln(os.Stderr, "c3serve: -resume needs a ledger (-ledger)")
		os.Exit(obs.ExitUsage)
	}
	if !c3.ValidGlobalProtocol(*global) {
		fmt.Fprintf(os.Stderr, "c3serve: unknown global protocol %q (want cxl|hmesi)\n", *global)
		os.Exit(obs.ExitUsage)
	}
	for _, l := range []struct{ flag, val string }{{"-local0", *local0}, {"-local1", *local1}} {
		if !c3.ValidLocalProtocol(l.val) {
			fmt.Fprintf(os.Stderr, "c3serve: unknown %s protocol %q (want mesi|moesi|mesif|rcc)\n", l.flag, l.val)
			os.Exit(obs.ExitUsage)
		}
	}
	m0, err := c3.ParseMCM(*mcm0)
	failUsage(err)
	m1, err := c3.ParseMCM(*mcm1)
	failUsage(err)

	var seedVals []int64
	for _, s := range csv(*seeds) {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "c3serve: bad seed %q\n", s)
			os.Exit(obs.ExitUsage)
		}
		seedVals = append(seedVals, v)
	}

	spec, err := campaign.NewSpec(csv(*tests), split(*plans, ";"), seedVals, *iters,
		[2]string{*local0, *local1}, *global, [2]c3.MCM{m0, m1}, *taskTimeout, *retries)
	failUsage(err)
	suffix, err := spec.Suffix()
	failUsage(err)

	// Journal replay: shards with checkpointed rows (from a previous
	// coordinator, or from a single-process c3soak of the same spec) are
	// born done and never leased.
	var completed map[string]litmus.SoakRun
	if *resume {
		var stats obs.LedgerStats
		completed, stats, err = campaign.LoadCheckpoints(*ledger, suffix)
		if err != nil {
			if os.IsNotExist(err) {
				fmt.Fprintf(os.Stderr, "c3serve: resume: no ledger at %s, starting fresh\n", *ledger)
			} else {
				fmt.Fprintf(os.Stderr, "c3serve: resume: %v\n", err)
				os.Exit(obs.ExitUsage)
			}
		}
		for _, w := range stats.Warnings {
			fmt.Fprintln(os.Stderr, "c3serve: resume:", w)
		}
		if stats.Skipped > 0 {
			fmt.Fprintf(os.Stderr, "c3serve: resume: %d torn/corrupt ledger record(s) skipped\n", stats.Skipped)
		}
		fmt.Fprintf(os.Stderr, "c3serve: resume: %d completed rows loaded from %s\n", len(completed), *ledger)
	}

	srv, err := campaign.StartServer(*addr, campaign.ServerConfig{
		Spec:        spec,
		LeaseTTL:    *lease,
		MaxFailures: *maxFailures,
		LedgerPath:  *ledger,
		Completed:   completed,
	})
	failUsage(err)
	fmt.Fprintf(os.Stderr, "c3serve: coordinating on http://%s (healthz/statusz/results), %d shards, lease %v\n",
		srv.Addr(), len(mustJobs(spec)), *lease)

	// Graceful shutdown: first SIGINT/SIGTERM stops handing out work and
	// flushes the partial report; accepted rows are already journaled, so
	// -resume finishes the campaign. A second signal kills.
	interrupt := make(chan struct{})
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig, ok := <-sigc
		if !ok {
			return
		}
		fmt.Fprintf(os.Stderr, "c3serve: %v: stopping gracefully; accepted rows are journaled (send again to kill)\n", sig)
		signal.Stop(sigc)
		close(interrupt)
	}()

	var timeoutC <-chan time.Time
	if *timeout > 0 {
		t := time.NewTimer(*timeout)
		defer t.Stop()
		timeoutC = t.C
	}

	start := time.Now()
	campaignDone, timedOut := false, false
	select {
	case <-srv.Done():
		campaignDone = true
	case <-interrupt:
		// Queue.Rows marks unfinished shards INTERRUPTED; the report
		// verdict (and exit 3) follow from that.
	case <-timeoutC:
		timedOut = true
		fmt.Fprintf(os.Stderr, "c3serve: campaign exceeded %v; flushing partial report\n", *timeout)
	}
	rep := srv.Report()
	signal.Stop(sigc)
	close(sigc)

	if timedOut {
		// Unfinished shards read TIMEOUT rather than INTERRUPTED: the
		// bound expired, nothing was gracefully stopped.
		for i := range rep.Runs {
			if rep.Runs[i].Interrupted {
				rep.Runs[i].Interrupted = false
				rep.Runs[i].TimedOut = true
				rep.Runs[i].Err = fmt.Sprintf("timeout: campaign exceeded %v before shard completed", *timeout)
			}
		}
	}

	fmt.Print(rep.Render())
	if campaignDone && *drain > 0 {
		// Linger with the campaign complete so idle workers see the
		// "done" answer (410) at their next lease poll and exit 0.
		time.Sleep(*drain)
	}
	srv.Close()
	verdict := rep.Verdict()
	exit := obs.ExitPass
	switch verdict {
	case "pass":
	case obs.VerdictInterrupted:
		exit = obs.ExitResumable
	default:
		exit = obs.ExitFail
	}
	if *ledger != "" {
		rec := &obs.Record{
			Tool:    "c3serve",
			Spec:    obs.SpecFromFlags("addr", "ledger", "resume", "lease", "max-failures"),
			Seeds:   spec.Seeds,
			Version: obs.Version(),
			Start:   start,
			WallMS:  time.Since(start).Milliseconds(),
			Verdict: verdict,
			Exit:    exit,
			Extra:   map[string]any{"shards": len(rep.Runs)},
		}
		if err := obs.AppendLedger(*ledger, rec); err != nil {
			fmt.Fprintf(os.Stderr, "c3serve: ledger: %v\n", err)
		}
	}
	os.Exit(exit)
}

func mustJobs(spec *campaign.Spec) []campaign.Job {
	jobs, err := spec.Jobs()
	failUsage(err)
	return jobs
}

func csv(s string) []string { return split(s, ",") }

func split(s, sep string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, f := range splitTrim(s, sep) {
		if f != "" {
			out = append(out, f)
		}
	}
	return out
}

func splitTrim(s, sep string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i:i+len(sep)] == sep {
			f := s[start:i]
			for len(f) > 0 && (f[0] == ' ' || f[0] == '\t') {
				f = f[1:]
			}
			for len(f) > 0 && (f[len(f)-1] == ' ' || f[len(f)-1] == '\t') {
				f = f[:len(f)-1]
			}
			out = append(out, f)
			start = i + len(sep)
		}
	}
	return out
}

func failUsage(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "c3serve:", err)
		os.Exit(obs.ExitUsage)
	}
}
