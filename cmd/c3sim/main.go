// Command c3sim runs one of the paper's 33 workload kernels on a
// simulated two-cluster heterogeneous CXL system and reports execution
// time and the Fig. 11-style miss breakdown.
//
// Usage:
//
//	c3sim -w histogram
//	c3sim -w barnes -global hmesi -cores 4
//	c3sim -w vips -local1 moesi -mcm0 tso
//	c3sim -list
package main

import (
	"flag"
	"fmt"
	"os"

	"c3"
	"c3/internal/workload"
)

func main() {
	w := flag.String("w", "", "workload name (see -list)")
	list := flag.Bool("list", false, "list the 33 kernels")
	global := flag.String("global", "cxl", "global protocol: cxl|hmesi")
	local0 := flag.String("local0", "mesi", "cluster 0 protocol")
	local1 := flag.String("local1", "mesi", "cluster 1 protocol")
	mcm0 := flag.String("mcm0", "arm", "cluster 0 MCM: arm|tso|sc")
	mcm1 := flag.String("mcm1", "arm", "cluster 1 MCM")
	cores := flag.Int("cores", 4, "cores per cluster")
	scale := flag.Float64("scale", 1.0, "op-budget scale")
	seed := flag.Int64("seed", 1, "random seed")
	hybrid := flag.Bool("hybrid", false, "home private data in cluster-local memory (Sec. IV-D4)")
	flag.Parse()

	if *list {
		for _, n := range c3.Workloads() {
			fmt.Println(n)
		}
		return
	}
	if *w == "" {
		fmt.Fprintln(os.Stderr, "c3sim: -w required (see -list)")
		os.Exit(2)
	}
	spec, ok := workload.ByName(*w)
	if !ok {
		fmt.Fprintf(os.Stderr, "c3sim: unknown workload %q\n", *w)
		os.Exit(1)
	}
	run, sys, err := workload.RunOn(workload.RunConfig{
		Spec:            spec,
		Global:          *global,
		Locals:          [2]string{*local0, *local1},
		MCMs:            [2]c3.MCM{mcm(*mcm0), mcm(*mcm1)},
		CoresPerCluster: *cores,
		OpsScale:        *scale,
		Seed:            *seed,
		Hybrid:          *hybrid,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "c3sim:", err)
		os.Exit(1)
	}
	fmt.Printf("workload  %s\nconfig    %s\ntime      %d cycles (%.2f us at 2 GHz)\n",
		run.Name, run.Config, run.Time, float64(run.Time)/2000.0)
	fmt.Printf("ops       %d (MPKI %.1f)\n", run.Miss.Ops, run.Miss.MPKI())
	fmt.Printf("\nmiss cycles by latency band and op type:\n%s", run.Miss.Render())

	fmt.Println("\ncontroller counters:")
	for ci, cl := range sys.Clusters {
		st := cl.C3.Stats
		fmt.Printf("  C3[%d] (%s): reqs=%d delegations=%d snoops=%d conflicts=%d(dir-first %d) evictions=%d writebacks=%d stalled=%d",
			ci, cl.Cfg.Protocol, st.LocalReqs, st.Delegations, st.SnoopsServed,
			st.Conflicts, st.ConflictsDirFirst, st.Evictions, st.Writebacks, st.Stalled)
		if st.LocalMemReads+st.LocalMemWrites > 0 {
			fmt.Printf(" localmem=%dR/%dW", st.LocalMemReads, st.LocalMemWrites)
		}
		fmt.Println()
	}
	if sys.DCOH != nil {
		d := sys.DCOH.Stats
		fmt.Printf("  DCOH: reads=%d writes=%d snoops=%d conflicts=%d stalls=%d\n",
			d.Reads, d.Writes, d.Snoops, d.Conflicts, d.Stalls)
	}
	if sys.HDir != nil {
		d := sys.HDir.Stats
		fmt.Printf("  HMESI dir: reads=%d writes=%d fwds=%d invs=%d stalls=%d\n",
			d.Reads, d.Writes, d.Fwds, d.Invs, d.Stalls)
	}
	fmt.Printf("  fabric: %d msgs, %d bytes\n", sys.Net.Stats.TotalMsgs(), sys.Net.Stats.TotalBytes())
}

func mcm(s string) c3.MCM {
	switch s {
	case "tso":
		return c3.TSO
	case "sc":
		return c3.SC
	default:
		return c3.ARM
	}
}
