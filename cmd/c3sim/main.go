// Command c3sim runs one of the paper's 33 workload kernels on a
// simulated two-cluster heterogeneous CXL system and reports execution
// time and the Fig. 11-style miss breakdown.
//
// Usage:
//
//	c3sim -w histogram
//	c3sim -w barnes -global hmesi -cores 4
//	c3sim -w vips -local1 moesi -mcm0 tso
//	c3sim -w histogram -trace /tmp/t.json     # Perfetto/Chrome trace
//	c3sim -w histogram -metrics json          # machine-readable counters
//	c3sim -w histogram -watchdog -1           # hang detection, default age
//	c3sim -w histogram,barnes,vips -j 4       # several kernels in parallel
//	c3sim -w all                              # the full kernel set
//	c3sim -list
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"c3"
	"c3/internal/parallel"
	"c3/internal/sim"
	"c3/internal/trace"
	"c3/internal/workload"
)

func main() {
	w := flag.String("w", "", "workload name, comma-separated list, or \"all\" (see -list)")
	list := flag.Bool("list", false, "list the 33 kernels")
	global := flag.String("global", "cxl", "global protocol: cxl|hmesi")
	local0 := flag.String("local0", "mesi", "cluster 0 protocol")
	local1 := flag.String("local1", "mesi", "cluster 1 protocol")
	mcm0 := flag.String("mcm0", "arm", "cluster 0 MCM: arm|tso|sc")
	mcm1 := flag.String("mcm1", "arm", "cluster 1 MCM")
	cores := flag.Int("cores", 4, "cores per cluster")
	scale := flag.Float64("scale", 1.0, "op-budget scale")
	seed := flag.Int64("seed", 1, "random seed")
	hybrid := flag.Bool("hybrid", false, "home private data in cluster-local memory (Sec. IV-D4)")
	traceOut := flag.String("trace", "", "write a Chrome/Perfetto trace-event JSON to this file")
	metrics := flag.String("metrics", "text", "metrics output format: text|json")
	watchdog := flag.Int64("watchdog", 0, "hang watchdog age in ns (0 = off, -1 = default)")
	workers := flag.Int("j", 0, "worker goroutines in multi-workload mode (0 = GOMAXPROCS)")
	flag.IntVar(workers, "workers", 0, "alias for -j")
	faultSpec := flag.String("faults", "", "fault plan: preset name (light|noisy|stall|blackout|crash|crash-rejoin|crash-noisy) or drop=..,dup=.. spec")
	crash := flag.String("crash", "", "host crash: host@tick or host@tick:rejoin (';'-separated, layered over -faults)")
	flag.Parse()

	if *list {
		for _, n := range c3.Workloads() {
			fmt.Println(n)
		}
		return
	}
	if *w == "" {
		fmt.Fprintln(os.Stderr, "c3sim: -w required (see -list)")
		os.Exit(2)
	}

	// Reject configuration typos before spending a run on them.
	if !c3.ValidGlobalProtocol(*global) {
		fmt.Fprintf(os.Stderr, "c3sim: unknown global protocol %q (want cxl|hmesi)\n", *global)
		os.Exit(2)
	}
	for _, l := range []struct{ flag, val string }{{"-local0", *local0}, {"-local1", *local1}} {
		if !c3.ValidLocalProtocol(l.val) {
			fmt.Fprintf(os.Stderr, "c3sim: unknown %s protocol %q (want mesi|moesi|mesif|rcc)\n", l.flag, l.val)
			os.Exit(2)
		}
	}
	m0, err := c3.ParseMCM(*mcm0)
	if err != nil {
		fmt.Fprintf(os.Stderr, "c3sim: -mcm0: %v\n", err)
		os.Exit(2)
	}
	m1, err := c3.ParseMCM(*mcm1)
	if err != nil {
		fmt.Fprintf(os.Stderr, "c3sim: -mcm1: %v\n", err)
		os.Exit(2)
	}
	if *metrics != "text" && *metrics != "json" {
		fmt.Fprintf(os.Stderr, "c3sim: -metrics %q (want text|json)\n", *metrics)
		os.Exit(2)
	}
	var plan *c3.FaultPlan
	if *faultSpec != "" {
		p, err := c3.ParseFaultPlan(*faultSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "c3sim: -faults: %v\n", err)
			os.Exit(2)
		}
		plan = &p
	}
	if *crash != "" {
		if plan == nil {
			plan = &c3.FaultPlan{}
		}
		for _, spec := range strings.Split(*crash, ";") {
			cp, err := c3.ParseFaultPlan("crash=" + strings.TrimSpace(spec))
			if err != nil {
				fmt.Fprintf(os.Stderr, "c3sim: -crash: %v\n", err)
				os.Exit(2)
			}
			plan.Crashes = append(plan.Crashes, cp.Crashes...)
		}
	}

	names := strings.Split(*w, ",")
	if *w == "all" {
		names = c3.Workloads()
	}
	if len(names) > 1 {
		// Multi-workload mode: fan the kernels across the pool. Tracing,
		// hang watchdogs and JSON metrics are single-run diagnostics —
		// their outputs would interleave — so reject the combination.
		if *traceOut != "" || *watchdog != 0 || *metrics == "json" {
			fmt.Fprintln(os.Stderr, "c3sim: -trace, -watchdog and -metrics json need a single workload")
			os.Exit(2)
		}
		specs := make([]workload.Spec, len(names))
		for i, n := range names {
			spec, ok := workload.ByName(n)
			if !ok {
				fmt.Fprintf(os.Stderr, "c3sim: unknown workload %q\n", n)
				os.Exit(1)
			}
			specs[i] = spec
		}
		_, err := parallel.MapOrdered(context.Background(), *workers, len(specs),
			func(i int) (stats, error) {
				run, err := workload.Run(workload.RunConfig{
					Spec:            specs[i],
					Global:          *global,
					Locals:          [2]string{*local0, *local1},
					MCMs:            [2]c3.MCM{m0, m1},
					CoresPerCluster: *cores,
					OpsScale:        *scale,
					Seed:            *seed,
					Hybrid:          *hybrid,
					Faults:          plan,
				})
				if err != nil {
					return stats{}, fmt.Errorf("%s: %w", specs[i].Name, err)
				}
				return stats{time: uint64(run.Time), ops: run.Miss.Ops, mpki: run.Miss.MPKI()}, nil
			},
			func(i int, s stats) {
				fmt.Printf("%-16s %12d cycles  %10d ops  MPKI %5.1f\n",
					names[i], s.time, s.ops, s.mpki)
			})
		if err != nil {
			fmt.Fprintln(os.Stderr, "c3sim:", err)
			os.Exit(1)
		}
		return
	}

	spec, ok := workload.ByName(*w)
	if !ok {
		fmt.Fprintf(os.Stderr, "c3sim: unknown workload %q\n", *w)
		os.Exit(1)
	}

	cfg := workload.RunConfig{
		Spec:            spec,
		Global:          *global,
		Locals:          [2]string{*local0, *local1},
		MCMs:            [2]c3.MCM{m0, m1},
		CoresPerCluster: *cores,
		OpsScale:        *scale,
		Seed:            *seed,
		Hybrid:          *hybrid,
		MissHist:        trace.NewLatencyHist(nil),
		Faults:          plan,
	}

	var chrome *trace.ChromeSink
	var traceFile *os.File
	if *traceOut != "" {
		traceFile, err = os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "c3sim:", err)
			os.Exit(1)
		}
		chrome = trace.NewChrome(traceFile)
	}
	if chrome != nil || *watchdog != 0 {
		tr := trace.New()
		if chrome != nil {
			chrome.Namer = tr.Label
			tr.AddSink(chrome)
		}
		cfg.Tracer = tr
		switch {
		case *watchdog < 0:
			cfg.WatchdogAge = trace.DefaultHangAge
		case *watchdog > 0:
			cfg.WatchdogAge = sim.NS(uint64(*watchdog))
		}
	}

	run, sys, err := workload.RunOn(cfg)
	if chrome != nil {
		// Flush the trace even on a watchdog abort: the trace of a hung
		// run is exactly what you want to open in Perfetto.
		if cerr := chrome.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "c3sim: trace:", cerr)
		}
		if cerr := traceFile.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "c3sim: trace:", cerr)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "c3sim:", err)
		os.Exit(1)
	}

	reg := sys.Metrics()
	reg.Counter("run.time_cycles", func() uint64 { return uint64(run.Time) })
	reg.Counter("run.ops", func() uint64 { return run.Miss.Ops })
	reg.Gauge("run.mpki", run.Miss.MPKI)
	reg.Histogram("miss_latency", cfg.MissHist)

	if *metrics == "json" {
		if err := reg.RenderJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "c3sim:", err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("workload  %s\nconfig    %s\ntime      %d cycles (%.2f us at 2 GHz)\n",
		run.Name, run.Config, run.Time, float64(run.Time)/2000.0)
	fmt.Printf("ops       %d (MPKI %.1f)\n", run.Miss.Ops, run.Miss.MPKI())
	fmt.Printf("\nmiss cycles by latency band and op type:\n%s", run.Miss.Render())
	if plan != nil {
		if lines := sys.PoisonedLines(); len(lines) > 0 {
			fmt.Printf("\nWARNING: %d line(s) completed poisoned under fault injection\n", len(lines))
		}
		if down := sys.CrashedClusters(); len(down) > 0 {
			fmt.Printf("\nWARNING: cluster(s) %v crashed and did not rejoin\n", down)
		}
	}
	fmt.Println("\nmetrics:")
	reg.RenderText(os.Stdout)
}

// stats is the compact per-run summary printed in multi-workload mode.
type stats struct {
	time uint64
	ops  uint64
	mpki float64
}
