// Command c3gen runs the C3 generator: it merges a local-protocol SSP
// spec with a global-protocol spec and prints the resulting compound
// translation table (the paper's Table II), its forbidden compound
// states, and the reachable stable-state set.
//
// Usage:
//
//	c3gen -local moesi -global cxl     # one pairing
//	c3gen -all                         # every embedded pairing
package main

import (
	"flag"
	"fmt"
	"os"

	"c3"
)

func main() {
	local := flag.String("local", "mesi", "local protocol: mesi|moesi|mesif|rcc")
	global := flag.String("global", "cxl", "global protocol: cxl|hmesi")
	all := flag.Bool("all", false, "generate every embedded pairing")
	flag.Parse()

	if *all {
		for _, l := range c3.LocalProtocols() {
			for _, g := range c3.GlobalProtocols() {
				dump(l, g)
			}
		}
		return
	}
	dump(*local, *global)
}

func dump(local, global string) {
	t, err := c3.GenerateTable(local, global)
	if err != nil {
		fmt.Fprintln(os.Stderr, "c3gen:", err)
		os.Exit(1)
	}
	fmt.Print(t.Render())
	fmt.Println()
}
