// Command c3check model-checks the C3 controllers: exhaustive
// exploration of message-delivery interleavings on a small two-cluster
// system, verifying deadlock freedom, the SWMR invariant, Rule I's
// forbidden compound states, and litmus outcomes — the paper's
// Murphi-based formal verification (Sec. VI-A), applied directly to the
// runtime controllers.
//
// Usage:
//
//	c3check                          # MP+SB+LB+S+R+2_2W on MESI-CXL-MESI
//	c3check -test IRIW -local1 moesi -max 2000000
//	c3check -tiny                    # force CXL-cache evictions (Fig. 7)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"c3"
)

func main() {
	test := flag.String("test", "", "litmus shape to check (default: standard set)")
	local0 := flag.String("local0", "mesi", "cluster 0 protocol (MESI family)")
	local1 := flag.String("local1", "mesi", "cluster 1 protocol (MESI family)")
	global := flag.String("global", "cxl", "global protocol: cxl|hmesi")
	mcm0 := flag.String("mcm0", "arm", "cluster 0 MCM")
	mcm1 := flag.String("mcm1", "arm", "cluster 1 MCM")
	tiny := flag.Bool("tiny", false, "tiny CXL cache: explore eviction flows")
	maxStates := flag.Uint64("max", 500_000, "state budget")
	workers := flag.Int("j", 0, "worker goroutines for successor expansion (0 = GOMAXPROCS, 1 = serial)")
	flag.IntVar(workers, "workers", 0, "alias for -j")
	flag.Parse()

	tests := []string{"MP", "SB", "LB", "S", "R", "2_2W"}
	if *test != "" {
		tests = []string{*test}
	}
	mcms := [2]c3.MCM{mcm(*mcm0), mcm(*mcm1)}
	ok := true
	for _, name := range tests {
		start := time.Now()
		rep, err := c3.Verify(name, c3.VerifyConfig{
			Locals:    [2]string{*local0, *local1},
			Global:    *global,
			MCMs:      mcms,
			TinyLLC:   *tiny,
			MaxStates: *maxStates,
			Workers:   *workers,
		})
		if err != nil {
			fmt.Printf("%-8s FAIL: %v\n", name, err)
			ok = false
			continue
		}
		status := "verified"
		if rep.Truncated {
			status = "bounded"
		}
		fmt.Printf("%-8s %s: %d states, %d terminal, %d outcomes (%.1fs)\n",
			name, status, rep.States, rep.Terminals, rep.Outcomes,
			time.Since(start).Seconds())
	}
	if !ok {
		os.Exit(1)
	}
}

func mcm(s string) c3.MCM {
	switch s {
	case "tso":
		return c3.TSO
	case "sc":
		return c3.SC
	default:
		return c3.ARM
	}
}
