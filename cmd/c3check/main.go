// Command c3check model-checks the C3 controllers: exhaustive
// exploration of message-delivery interleavings on a small two-cluster
// system, verifying deadlock freedom, the SWMR invariant, Rule I's
// forbidden compound states, and litmus outcomes — the paper's
// Murphi-based formal verification (Sec. VI-A), applied directly to the
// runtime controllers.
//
// On a violation, c3check prints a minimized witness — the sequence of
// delivery choices reproducing the failure — as a "witness:" line;
// -witness additionally decodes each delivered message, and
// -replay re-executes a witness step by step.
//
// Usage:
//
//	c3check                          # MP+SB+LB+S+R+2_2W on MESI-CXL-MESI
//	c3check -test IRIW -local1 moesi -max 2000000
//	c3check -tiny                    # force CXL-cache evictions (Fig. 7)
//	c3check -test MP -unsynced -witness   # witness a relaxed outcome
//	c3check -test MP -unsynced -replay 1,0,2
//	c3check -statusz :8080           # watch a long exploration live
//
// Observability: -statusz serves live exploration counters (states,
// frontier, depth) as JSON plus pprof/expvar, -heartbeat prints a
// progress line to stderr, and every invocation appends a record to the
// run ledger (-ledger, default $C3_LEDGER or c3runs.jsonl; empty
// disables). None of these affect exploration or its verdict.
//
// Exit status: 0 no violation (or -replay reproduced one), 1 violation
// found (or -replay failed to reproduce), 2 usage error.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"c3"
	"c3/internal/obs"
	"c3/internal/trace"
)

func main() {
	test := flag.String("test", "", "litmus shape to check (default: standard set)")
	local0 := flag.String("local0", "mesi", "cluster 0 protocol (MESI family)")
	local1 := flag.String("local1", "mesi", "cluster 1 protocol (MESI family)")
	global := flag.String("global", "cxl", "global protocol: cxl|hmesi")
	mcm0 := flag.String("mcm0", "arm", "cluster 0 MCM")
	mcm1 := flag.String("mcm1", "arm", "cluster 1 MCM")
	tiny := flag.Bool("tiny", false, "tiny CXL cache: explore eviction flows")
	maxStates := flag.Uint64("max", 500_000, "state budget")
	maxDepth := flag.Int("max-depth", 0, "depth bound before declaring livelock (0 = default 400)")
	workers := flag.Int("j", 0, "worker goroutines for successor expansion (0 = GOMAXPROCS, 1 = serial)")
	flag.IntVar(workers, "workers", 0, "alias for -j")
	unsynced := flag.Bool("unsynced", false,
		"strip fences and check the forbidden predicate anyway (witness demo on relaxed outcomes)")
	witness := flag.Bool("witness", false, "decode each witness step (delivered message) on violation")
	replay := flag.String("replay", "",
		"re-execute a comma-separated witness path against -test instead of exploring")
	replayRoot := flag.Bool("replay-from-root", false,
		"explore by prefix re-execution instead of snapshot cloning (cross-check mode)")
	statusz := flag.String("statusz", "", "serve live introspection (/statusz JSON, /metricsz, pprof, expvar) on this address, e.g. :8080 or 127.0.0.1:0")
	heartbeat := flag.Duration("heartbeat", 0, "print a progress line to stderr at this interval (0 = off)")
	ledger := flag.String("ledger", obs.DefaultLedgerPath(), "append a JSONL run record to this file (empty = off)")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "c3check: unexpected arguments: %v\n", flag.Args())
		os.Exit(2)
	}

	// Live exploration counters: Verify's OnProgress callback stores into
	// atomics, the statusz registry reads them — the checker itself never
	// blocks on an HTTP reader.
	co := newCheckObserver()
	cfg := c3.VerifyConfig{
		Locals:         [2]string{*local0, *local1},
		Global:         *global,
		MCMs:           [2]c3.MCM{mcm(*mcm0), mcm(*mcm1)},
		TinyLLC:        *tiny,
		MaxStates:      *maxStates,
		MaxDepth:       *maxDepth,
		Workers:        *workers,
		Unsynced:       *unsynced,
		CheckForbidden: *unsynced,
		ReplayFromRoot: *replayRoot,
		OnProgress:     co.progress,
	}

	if *replay != "" {
		if *test == "" {
			fmt.Fprintln(os.Stderr, "c3check: -replay requires -test")
			os.Exit(2)
		}
		path, err := parseWitness(*replay)
		if err != nil {
			fmt.Fprintf(os.Stderr, "c3check: bad -replay path: %v\n", err)
			os.Exit(2)
		}
		rr, err := c3.ReplayWitness(*test, cfg, path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "c3check: replay: %v\n", err)
			os.Exit(1)
		}
		for i, s := range rr.Steps {
			fmt.Printf("  step %3d  %s\n", i, s)
		}
		switch {
		case rr.Kind != "none":
			fmt.Printf("%-8s reproduced %s after %d steps: %s\n", rr.Test, rr.Kind, rr.FailedAt, rr.Msg)
			return // exit 0: the witness reproduces a violation
		case rr.Terminal:
			fmt.Printf("%-8s no violation: terminal outcome %s\n", rr.Test, rr.Outcome)
		default:
			fmt.Printf("%-8s no violation: %d actions still enabled after %d steps\n",
				rr.Test, rr.EnabledAtEnd, rr.FailedAt)
		}
		os.Exit(1)
	}

	tests := []string{"MP", "SB", "LB", "S", "R", "2_2W"}
	if *test != "" {
		tests = []string{*test}
	}
	co.Plan(tests)

	var server *obs.Server
	if *statusz != "" {
		var err error
		server, err = obs.StartStatusz(*statusz, "c3check", co.Tracker)
		if err != nil {
			fmt.Fprintln(os.Stderr, "c3check:", err)
			os.Exit(2)
		}
		server.SetRegistry(co.registry)
		fmt.Fprintf(os.Stderr, "c3check: statusz on http://%s/statusz\n", server.Addr())
	}
	var stopHeartbeat func()
	if *heartbeat > 0 {
		stopHeartbeat = obs.Heartbeat(os.Stderr, *heartbeat, "c3check", co.Tracker)
	}

	sweepStart := time.Now()
	ok := true
	for i, name := range tests {
		co.TaskStarted(i)
		start := time.Now()
		rep, err := c3.Verify(name, cfg)
		if err == nil {
			// Small explorations finish under the progress stride; fold the
			// final counts so the ledger's totals are never zero.
			co.progress(c3.CheckProgress{States: rep.States, Terminals: rep.Terminals,
				Builds: rep.Builds, Clones: rep.Clones})
		}
		co.TaskDone(i, err)
		if err != nil {
			ok = false
			fmt.Printf("%-8s FAIL: %v\n", name, err)
			if ve, isVE := err.(*c3.VerifyError); isVE {
				fmt.Printf("witness: %s\n", formatWitness(ve.Witness))
				fmt.Printf("  (%s; %d steps, minimized from %d; replay with: c3check -test %s%s -replay %s)\n",
					ve.Kind, len(ve.Witness), ve.OriginalLen, name, replayFlags(cfg), formatWitness(ve.Witness))
				if *witness {
					printSteps(name, cfg, ve.Witness)
				}
			}
			continue
		}
		status := "verified"
		if rep.Truncated {
			status = "bounded"
		}
		note := ""
		if rep.ForbiddenSkipped {
			note = " [forbidden predicate skipped: unsynced]"
		}
		fmt.Printf("%-8s %s: %d states, %d terminal, %d outcomes, %d builds + %d clones (%.1fs)%s\n",
			name, status, rep.States, rep.Terminals, rep.Outcomes, rep.Builds, rep.Clones,
			time.Since(start).Seconds(), note)
	}
	if stopHeartbeat != nil {
		stopHeartbeat()
	}
	if server != nil {
		server.Close()
	}

	verdict, exit := obs.VerdictPass, 0
	if !ok {
		verdict, exit = obs.VerdictViolation, 1
	}
	if *ledger != "" {
		var metrics bytes.Buffer
		if err := co.registry.RenderJSON(&metrics); err != nil {
			metrics.Reset()
		}
		rec := &obs.Record{
			Tool:    "c3check",
			Spec:    obs.SpecFromFlags("statusz", "heartbeat", "ledger"),
			Workers: *workers,
			Version: obs.Version(),
			Start:   sweepStart,
			WallMS:  time.Since(sweepStart).Milliseconds(),
			Verdict: verdict,
			Exit:    exit,
			Metrics: json.RawMessage(metrics.Bytes()),
			Extra: map[string]any{
				"tests":  tests,
				"states": co.states.Load(),
			},
		}
		if err := obs.AppendLedger(*ledger, rec); err != nil {
			fmt.Fprintf(os.Stderr, "c3check: ledger: %v\n", err)
		}
	}
	os.Exit(exit)
}

// checkObserver mirrors the checker's progress callbacks into atomics so
// the statusz registry can render them from HTTP goroutines while the
// exploration runs. Counters accumulate across the per-test runs (total
// work this invocation did); frontier and depth are instantaneous.
type checkObserver struct {
	*obs.Tracker
	registry *trace.Registry

	states, terminals, builds, clones atomic.Uint64
	frontier, depth                   atomic.Int64
	// base* carry the totals of completed tests, since each Verify call's
	// Progress counts restart from zero.
	baseStates, baseTerminals, baseBuilds, baseClones atomic.Uint64
}

func newCheckObserver() *checkObserver {
	o := &checkObserver{Tracker: obs.NewTracker(), registry: trace.NewRegistry()}
	o.registry.Counter("check.states", o.states.Load)
	o.registry.Counter("check.terminals", o.terminals.Load)
	o.registry.Counter("check.builds", o.builds.Load)
	o.registry.Counter("check.clones", o.clones.Load)
	o.registry.Gauge("check.frontier", func() float64 { return float64(o.frontier.Load()) })
	o.registry.Gauge("check.depth", func() float64 { return float64(o.depth.Load()) })
	return o
}

func (o *checkObserver) progress(p c3.CheckProgress) {
	o.states.Store(o.baseStates.Load() + p.States)
	o.terminals.Store(o.baseTerminals.Load() + p.Terminals)
	o.builds.Store(o.baseBuilds.Load() + p.Builds)
	o.clones.Store(o.baseClones.Load() + p.Clones)
	o.frontier.Store(int64(p.Frontier))
	o.depth.Store(int64(p.Depth))
}

// TaskDone folds the finished test's counts into the bases so the next
// test's restarted Progress values keep the totals monotonic.
func (o *checkObserver) TaskDone(i int, err error) {
	o.baseStates.Store(o.states.Load())
	o.baseTerminals.Store(o.terminals.Load())
	o.baseBuilds.Store(o.builds.Load())
	o.baseClones.Store(o.clones.Load())
	o.frontier.Store(0)
	o.Tracker.TaskDone(i, err)
}

// printSteps decodes a witness by replaying it.
func printSteps(test string, cfg c3.VerifyConfig, path []uint16) {
	rr, err := c3.ReplayWitness(test, cfg, path)
	if err != nil {
		fmt.Printf("  witness decode failed: %v\n", err)
		return
	}
	for i, s := range rr.Steps {
		fmt.Printf("  step %3d  %s\n", i, s)
	}
}

func formatWitness(path []uint16) string {
	parts := make([]string, len(path))
	for i, p := range path {
		parts[i] = strconv.Itoa(int(p))
	}
	return strings.Join(parts, ",")
}

// replayFlags renders the non-default flags a -replay invocation needs
// to rebuild the same model.
func replayFlags(cfg c3.VerifyConfig) string {
	var b strings.Builder
	if cfg.Locals[0] != "mesi" {
		fmt.Fprintf(&b, " -local0 %s", cfg.Locals[0])
	}
	if cfg.Locals[1] != "mesi" {
		fmt.Fprintf(&b, " -local1 %s", cfg.Locals[1])
	}
	if cfg.Global != "cxl" {
		fmt.Fprintf(&b, " -global %s", cfg.Global)
	}
	if cfg.TinyLLC {
		b.WriteString(" -tiny")
	}
	if cfg.Unsynced {
		b.WriteString(" -unsynced")
	}
	return b.String()
}

func parseWitness(s string) ([]uint16, error) {
	var path []uint16
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.ParseUint(f, 10, 16)
		if err != nil {
			return nil, err
		}
		path = append(path, uint16(v))
	}
	return path, nil
}

func mcm(s string) c3.MCM {
	switch s {
	case "tso":
		return c3.TSO
	case "sc":
		return c3.SC
	default:
		return c3.ARM
	}
}
