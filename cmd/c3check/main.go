// Command c3check model-checks the C3 controllers: exhaustive
// exploration of message-delivery interleavings on a small two-cluster
// system, verifying deadlock freedom, the SWMR invariant, Rule I's
// forbidden compound states, and litmus outcomes — the paper's
// Murphi-based formal verification (Sec. VI-A), applied directly to the
// runtime controllers.
//
// On a violation, c3check prints a minimized witness — the sequence of
// delivery choices reproducing the failure — as a "witness:" line;
// -witness additionally decodes each delivered message, and
// -replay re-executes a witness step by step.
//
// Usage:
//
//	c3check                          # MP+SB+LB+S+R+2_2W on MESI-CXL-MESI
//	c3check -test IRIW -local1 moesi -max 2000000
//	c3check -tiny                    # force CXL-cache evictions (Fig. 7)
//	c3check -test MP -unsynced -witness   # witness a relaxed outcome
//	c3check -test MP -unsynced -replay 1,0,2
//	c3check -statusz :8080           # watch a long exploration live
//	c3check -test MP+3W -max 10000   # reductions let this complete
//	c3check -canon=off -por=off      # legacy raw-dump hashing, no reductions
//	c3check -crosscheck -test MP     # audit the reductions' soundness
//	c3check -outcomes -test MP       # print the terminal-outcome set
//
// State-space reduction: the checker hashes a canonicalized state dump
// (bookkeeping excluded, interchangeable hosts and addresses renamed to
// a canonical form) and prunes interleavings of independent deliveries
// (partial-order reduction). -canon=off and -por=off disable the layers
// individually — with both off the checker reproduces the pre-reduction
// state counts exactly. -crosscheck runs every test both ways and fails
// on any disagreement; -outcomes prints the outcome sets it compares.
//
// Observability: -statusz serves live exploration counters (states,
// frontier, depth) as JSON plus pprof/expvar, -heartbeat prints a
// progress line to stderr, and every invocation appends a record to the
// run ledger (-ledger, default $C3_LEDGER or c3runs.jsonl; empty
// disables). None of these affect exploration or its verdict.
//
// Resilience: -task-timeout bounds each test's exploration wall clock,
// with -retries extra attempts before the test is recorded TIMEOUT
// (partial state counts still print). -mem-budget-mb sets a soft heap
// budget: the Go runtime gets it as a hard GC target
// (debug.SetMemoryLimit) and the checker starts shedding frontier
// snapshots at 80% of it — degrading to replay-from-root instead of
// OOMing, with the degradation reported per test. SIGINT/SIGTERM stop
// the exploration at its next poll, print the partial result, and exit
// 3; a second signal kills immediately.
//
// Exit status: 0 no violation (or -replay reproduced one), 1 violation
// found or a test timed out (or -replay failed to reproduce), 2 usage
// error, 3 interrupted by SIGINT/SIGTERM (partial results printed).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime/debug"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"c3"
	"c3/internal/obs"
	"c3/internal/trace"
)

func main() {
	test := flag.String("test", "", "litmus shape to check (default: standard set)")
	local0 := flag.String("local0", "mesi", "cluster 0 protocol (MESI family)")
	local1 := flag.String("local1", "mesi", "cluster 1 protocol (MESI family)")
	global := flag.String("global", "cxl", "global protocol: cxl|hmesi")
	mcm0 := flag.String("mcm0", "arm", "cluster 0 MCM")
	mcm1 := flag.String("mcm1", "arm", "cluster 1 MCM")
	tiny := flag.Bool("tiny", false, "tiny CXL cache: explore eviction flows")
	maxStates := flag.Uint64("max", 500_000, "state budget")
	maxDepth := flag.Int("max-depth", 0, "depth bound before declaring livelock (0 = default 400)")
	workers := flag.Int("j", 0, "worker goroutines for successor expansion (0 = GOMAXPROCS, 1 = serial)")
	flag.IntVar(workers, "workers", 0, "alias for -j")
	unsynced := flag.Bool("unsynced", false,
		"strip fences and check the forbidden predicate anyway (witness demo on relaxed outcomes)")
	witness := flag.Bool("witness", false, "decode each witness step (delivered message) on violation")
	replay := flag.String("replay", "",
		"re-execute a comma-separated witness path against -test instead of exploring")
	replayRoot := flag.Bool("replay-from-root", false,
		"explore by prefix re-execution instead of snapshot cloning (cross-check mode)")
	canon := flag.String("canon", "on",
		"canonical hashing + symmetry reduction: on|off (off = legacy raw-dump hashing, exact seed state counts)")
	por := flag.String("por", "on", "partial-order reduction: on|off")
	crossCheck := flag.Bool("crosscheck", false,
		"run each test reduced AND unreduced and fail unless verdicts agree and the reduced outcome set covers the unreduced one (soundness audit; slow)")
	outcomes := flag.Bool("outcomes", false,
		"print each test's sorted terminal-outcome set, one 'outcome:' line per outcome (for reduction-soundness diffs)")
	taskTimeout := flag.Duration("task-timeout", 0, "wall-clock bound per test exploration (0 = none); expired attempts retry, then the test records TIMEOUT")
	retries := flag.Int("retries", 1, "extra attempts a timed-out test exploration gets")
	memBudgetMB := flag.Int("mem-budget-mb", 0, "soft heap budget in MiB (0 = none): sets the runtime memory limit and sheds checker snapshots at 80% of it instead of OOMing")
	statusz := flag.String("statusz", "", "serve live introspection (/statusz JSON, /metricsz, pprof, expvar) on this address, e.g. :8080 or 127.0.0.1:0")
	heartbeat := flag.Duration("heartbeat", 0, "print a progress line to stderr at this interval (0 = off)")
	ledger := flag.String("ledger", obs.DefaultLedgerPath(), "append a JSONL run record to this file (empty = off)")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "c3check: unexpected arguments: %v\n", flag.Args())
		os.Exit(2)
	}

	if *taskTimeout < 0 || *retries < 0 || *memBudgetMB < 0 {
		fmt.Fprintln(os.Stderr, "c3check: -task-timeout, -retries and -mem-budget-mb must be non-negative")
		os.Exit(obs.ExitUsage)
	}
	if (*canon != "on" && *canon != "off") || (*por != "on" && *por != "off") {
		fmt.Fprintln(os.Stderr, "c3check: -canon and -por take on|off")
		os.Exit(obs.ExitUsage)
	}

	// Live exploration counters: Verify's OnProgress callback stores into
	// atomics, the statusz registry reads them — the checker itself never
	// blocks on an HTTP reader.
	co := newCheckObserver()
	cfg := c3.VerifyConfig{
		Locals:         [2]string{*local0, *local1},
		Global:         *global,
		MCMs:           [2]c3.MCM{mcm(*mcm0), mcm(*mcm1)},
		TinyLLC:        *tiny,
		MaxStates:      *maxStates,
		MaxDepth:       *maxDepth,
		Workers:        *workers,
		Unsynced:       *unsynced,
		CheckForbidden: *unsynced,
		ReplayFromRoot: *replayRoot,
		CanonOff:       *canon == "off",
		POROff:         *por == "off",
		CrossCheck:     *crossCheck,
		OnProgress:     co.progress,
	}

	// Memory-pressure degradation: the runtime gets the budget as a hard
	// GC target (it will collect aggressively rather than exceed it), and
	// the checker starts shedding snapshots at 80% so degradation kicks in
	// before the GC is forced into a death spiral.
	if *memBudgetMB > 0 {
		budget := int64(*memBudgetMB) << 20
		debug.SetMemoryLimit(budget)
		cfg.MemBudget = uint64(budget) * 8 / 10
	}

	// Graceful shutdown: the first SIGINT/SIGTERM closes the interrupt
	// channel — the exploration stops at its next poll and the partial
	// result prints. signal.Stop restores default disposition, so a
	// second signal kills.
	interruptc := make(chan struct{})
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig, ok := <-sigc
		if !ok {
			return
		}
		fmt.Fprintf(os.Stderr, "c3check: %v: stopping gracefully (send again to kill)\n", sig)
		signal.Stop(sigc)
		close(interruptc)
	}()
	defer signal.Stop(sigc)
	cfg.Interrupt = interruptc

	if *replay != "" {
		if *test == "" {
			fmt.Fprintln(os.Stderr, "c3check: -replay requires -test")
			os.Exit(2)
		}
		path, err := parseWitness(*replay)
		if err != nil {
			fmt.Fprintf(os.Stderr, "c3check: bad -replay path: %v\n", err)
			os.Exit(2)
		}
		rr, err := c3.ReplayWitness(*test, cfg, path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "c3check: replay: %v\n", err)
			os.Exit(1)
		}
		for i, s := range rr.Steps {
			fmt.Printf("  step %3d  %s\n", i, s)
		}
		switch {
		case rr.Kind != "none":
			fmt.Printf("%-8s reproduced %s after %d steps: %s\n", rr.Test, rr.Kind, rr.FailedAt, rr.Msg)
			return // exit 0: the witness reproduces a violation
		case rr.Terminal:
			fmt.Printf("%-8s no violation: terminal outcome %s\n", rr.Test, rr.Outcome)
		default:
			fmt.Printf("%-8s no violation: %d actions still enabled after %d steps\n",
				rr.Test, rr.EnabledAtEnd, rr.FailedAt)
		}
		os.Exit(1)
	}

	tests := []string{"MP", "SB", "LB", "S", "R", "2_2W"}
	if *test != "" {
		tests = []string{*test}
	}
	co.Plan(tests)

	var server *obs.Server
	if *statusz != "" {
		var err error
		server, err = obs.StartStatusz(*statusz, "c3check", co.Tracker)
		if err != nil {
			fmt.Fprintln(os.Stderr, "c3check:", err)
			os.Exit(2)
		}
		server.SetRegistry(co.registry)
		fmt.Fprintf(os.Stderr, "c3check: statusz on http://%s/statusz\n", server.Addr())
	}
	var stopHeartbeat func()
	if *heartbeat > 0 {
		stopHeartbeat = obs.Heartbeat(context.Background(), os.Stderr, *heartbeat, "c3check", co.Tracker)
	}

	sweepStart := time.Now()
	ok := true
	timedOut := false
	interrupted := false
	for i, name := range tests {
		if interrupted {
			fmt.Printf("%-8s INTERRUPTED before start\n", name)
			continue
		}
		co.TaskStarted(i)
		start := time.Now()
		var rep *c3.VerifyReport
		var err error
		// Per-test retry loop: only wall-clock cuts retry (violations and
		// interrupts are deterministic or deliberate).
		for attempt := 1; ; attempt++ {
			tcfg := cfg
			if *taskTimeout > 0 {
				tcfg.Deadline = time.Now().Add(*taskTimeout)
			}
			rep, err = c3.Verify(name, tcfg)
			if errors.Is(err, c3.ErrCheckDeadline) && attempt <= *retries {
				fmt.Fprintf(os.Stderr, "c3check: %s: attempt %d hit the %v budget, retrying\n",
					name, attempt, *taskTimeout)
				continue
			}
			break
		}
		if rep != nil {
			// Small explorations finish under the progress stride — and
			// aborted ones stop between strides; fold the final (possibly
			// partial) counts so the ledger's totals are never stale.
			co.progress(c3.CheckProgress{States: rep.States, Terminals: rep.Terminals,
				Builds: rep.Builds, Clones: rep.Clones,
				SymmetryMerges: rep.SymmetryMerges, PORSkips: rep.PORSkips})
		}
		co.TaskDone(i, err)
		switch {
		case err == nil:
			status := "verified"
			if rep.Truncated {
				status = "bounded"
			}
			note := ""
			if rep.ForbiddenSkipped {
				note = " [forbidden predicate skipped: unsynced]"
			}
			if rep.MemSheds > 0 {
				note += fmt.Sprintf(" [mem pressure: shed x%d, snapshot budget %d]",
					rep.MemSheds, rep.SnapshotBudgetEnd)
			}
			if rep.SymmetryMerges > 0 || rep.PORSkips > 0 {
				note += fmt.Sprintf(" [reduced: %d symmetry merges, %d POR skips]",
					rep.SymmetryMerges, rep.PORSkips)
			}
			fmt.Printf("%-8s %s: %d states, %d terminal, %d outcomes, %d builds + %d clones (%.1fs)%s\n",
				name, status, rep.States, rep.Terminals, rep.Outcomes, rep.Builds, rep.Clones,
				time.Since(start).Seconds(), note)
			if *outcomes {
				for _, o := range rep.OutcomeList {
					fmt.Printf("outcome: %s | %s\n", name, o)
				}
			}
		case errors.Is(err, c3.ErrCheckInterrupted):
			interrupted = true
			fmt.Printf("%-8s INTERRUPTED after %d states (%.1fs): partial, no verdict\n",
				name, rep.States, time.Since(start).Seconds())
		case errors.Is(err, c3.ErrCheckDeadline):
			timedOut = true
			fmt.Printf("%-8s TIMEOUT after %d states: every attempt exceeded the %v budget (%d attempts)\n",
				name, rep.States, *taskTimeout, *retries+1)
		default:
			ok = false
			fmt.Printf("%-8s FAIL: %v\n", name, err)
			if ve, isVE := err.(*c3.VerifyError); isVE {
				fmt.Printf("witness: %s\n", formatWitness(ve.Witness))
				fmt.Printf("  (%s; %d steps, minimized from %d; replay with: c3check -test %s%s -replay %s)\n",
					ve.Kind, len(ve.Witness), ve.OriginalLen, name, replayFlags(cfg), formatWitness(ve.Witness))
				if *witness {
					printSteps(name, cfg, ve.Witness)
				}
			}
		}
	}
	if stopHeartbeat != nil {
		stopHeartbeat()
	}
	if server != nil {
		server.Close()
	}

	// Verdict precedence: a found violation outranks the shutdown that
	// may have followed it; an interrupt outranks a timeout because its
	// result is deliberately partial, not a budget failure.
	verdict, exit := obs.VerdictPass, obs.ExitPass
	switch {
	case !ok:
		verdict, exit = obs.VerdictViolation, obs.ExitFail
	case interrupted:
		verdict, exit = obs.VerdictInterrupted, obs.ExitResumable
	case timedOut:
		verdict, exit = obs.VerdictTimeout, obs.ExitFail
	}
	if *ledger != "" {
		var metrics bytes.Buffer
		if err := co.registry.RenderJSON(&metrics); err != nil {
			metrics.Reset()
		}
		rec := &obs.Record{
			Tool:    "c3check",
			Spec:    obs.SpecFromFlags("statusz", "heartbeat", "ledger"),
			Workers: *workers,
			Version: obs.Version(),
			Start:   sweepStart,
			WallMS:  time.Since(sweepStart).Milliseconds(),
			Verdict: verdict,
			Exit:    exit,
			Metrics: json.RawMessage(metrics.Bytes()),
			Extra: map[string]any{
				"tests":           tests,
				"states":          co.states.Load(),
				"symmetry_merges": co.symmMerges.Load(),
				"por_skips":       co.porSkips.Load(),
			},
		}
		if err := obs.AppendLedger(*ledger, rec); err != nil {
			fmt.Fprintf(os.Stderr, "c3check: ledger: %v\n", err)
		}
	}
	os.Exit(exit)
}

// checkObserver mirrors the checker's progress callbacks into atomics so
// the statusz registry can render them from HTTP goroutines while the
// exploration runs. Counters accumulate across the per-test runs (total
// work this invocation did); frontier and depth are instantaneous.
type checkObserver struct {
	*obs.Tracker
	registry *trace.Registry

	states, terminals, builds, clones atomic.Uint64
	symmMerges, porSkips              atomic.Uint64
	frontier, depth                   atomic.Int64
	// base* carry the totals of completed tests, since each Verify call's
	// Progress counts restart from zero.
	baseStates, baseTerminals, baseBuilds, baseClones atomic.Uint64
	baseSymmMerges, basePorSkips                      atomic.Uint64
}

func newCheckObserver() *checkObserver {
	o := &checkObserver{Tracker: obs.NewTracker(), registry: trace.NewRegistry()}
	o.registry.Counter("check.states", o.states.Load)
	o.registry.Counter("check.terminals", o.terminals.Load)
	o.registry.Counter("check.builds", o.builds.Load)
	o.registry.Counter("check.clones", o.clones.Load)
	o.registry.Counter("check.symmetry_merges", o.symmMerges.Load)
	o.registry.Counter("check.por_skips", o.porSkips.Load)
	o.registry.Gauge("check.frontier", func() float64 { return float64(o.frontier.Load()) })
	o.registry.Gauge("check.depth", func() float64 { return float64(o.depth.Load()) })
	return o
}

func (o *checkObserver) progress(p c3.CheckProgress) {
	o.states.Store(o.baseStates.Load() + p.States)
	o.terminals.Store(o.baseTerminals.Load() + p.Terminals)
	o.builds.Store(o.baseBuilds.Load() + p.Builds)
	o.clones.Store(o.baseClones.Load() + p.Clones)
	o.symmMerges.Store(o.baseSymmMerges.Load() + p.SymmetryMerges)
	o.porSkips.Store(o.basePorSkips.Load() + p.PORSkips)
	o.frontier.Store(int64(p.Frontier))
	o.depth.Store(int64(p.Depth))
}

// TaskDone folds the finished test's counts into the bases so the next
// test's restarted Progress values keep the totals monotonic.
func (o *checkObserver) TaskDone(i int, err error) {
	o.baseStates.Store(o.states.Load())
	o.baseTerminals.Store(o.terminals.Load())
	o.baseBuilds.Store(o.builds.Load())
	o.baseClones.Store(o.clones.Load())
	o.baseSymmMerges.Store(o.symmMerges.Load())
	o.basePorSkips.Store(o.porSkips.Load())
	o.frontier.Store(0)
	o.Tracker.TaskDone(i, err)
}

// printSteps decodes a witness by replaying it.
func printSteps(test string, cfg c3.VerifyConfig, path []uint16) {
	rr, err := c3.ReplayWitness(test, cfg, path)
	if err != nil {
		fmt.Printf("  witness decode failed: %v\n", err)
		return
	}
	for i, s := range rr.Steps {
		fmt.Printf("  step %3d  %s\n", i, s)
	}
}

func formatWitness(path []uint16) string {
	parts := make([]string, len(path))
	for i, p := range path {
		parts[i] = strconv.Itoa(int(p))
	}
	return strings.Join(parts, ",")
}

// replayFlags renders the non-default flags a -replay invocation needs
// to rebuild the same model.
func replayFlags(cfg c3.VerifyConfig) string {
	var b strings.Builder
	if cfg.Locals[0] != "mesi" {
		fmt.Fprintf(&b, " -local0 %s", cfg.Locals[0])
	}
	if cfg.Locals[1] != "mesi" {
		fmt.Fprintf(&b, " -local1 %s", cfg.Locals[1])
	}
	if cfg.Global != "cxl" {
		fmt.Fprintf(&b, " -global %s", cfg.Global)
	}
	if cfg.TinyLLC {
		b.WriteString(" -tiny")
	}
	if cfg.Unsynced {
		b.WriteString(" -unsynced")
	}
	return b.String()
}

func parseWitness(s string) ([]uint16, error) {
	var path []uint16
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.ParseUint(f, 10, 16)
		if err != nil {
			return nil, err
		}
		path = append(path, uint16(v))
	}
	return path, nil
}

func mcm(s string) c3.MCM {
	switch s {
	case "tso":
		return c3.TSO
	case "sc":
		return c3.SC
	default:
		return c3.ARM
	}
}
