// Command c3worker executes soak-campaign shards for a c3serve
// coordinator: it probes the coordinator's /healthz, fetches the sweep
// spec, verifies its own code fingerprint matches (a mismatched binary
// must not contribute rows), then loops — lease a shard, run the
// (test, plan, seed) campaign in-process, stream the result row back —
// while a background heartbeat keeps its leases alive. Run as many
// workers as you like, on as many machines as reach the coordinator;
// the merged report is byte-identical at any worker count.
//
// Usage:
//
//	c3worker -coordinator http://127.0.0.1:8423
//	c3worker -coordinator http://10.0.0.1:8423 -j 4 -name rack2
//
// Fault tolerance: if this process is killed, its leases expire and the
// coordinator requeues the shards — nothing is lost but the wasted
// attempt. If the coordinator disappears, the worker re-probes /healthz
// for a grace period and exits 1 only when it stays down. SIGINT/
// SIGTERM release held leases back to the queue (no failure penalty)
// and exit 3.
//
// Exit status: 0 the campaign completed (no work left); 1 coordinator
// unreachable past the probe grace period, or an internal error;
// 2 usage error; 3 interrupted by SIGINT/SIGTERM with leases released.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"c3/internal/campaign"
	"c3/internal/obs"
)

func main() {
	coordinator := flag.String("coordinator", "http://127.0.0.1:8423", "coordinator base URL")
	name := flag.String("name", "", "worker name for leases and /statusz (default host:pid)")
	slots := flag.Int("j", 1, "shards to run concurrently")
	poll := flag.Duration("poll", 500*time.Millisecond, "idle poll interval when no shard is leasable")
	probeTimeout := flag.Duration("probe-timeout", 30*time.Second, "how long to re-probe an unreachable coordinator before exiting")
	flag.Parse()

	if *coordinator == "" || *slots <= 0 || *poll <= 0 || *probeTimeout <= 0 {
		fmt.Fprintln(os.Stderr, "c3worker: -coordinator, -j, -poll and -probe-timeout must be set and positive")
		os.Exit(obs.ExitUsage)
	}

	// Graceful shutdown: the first SIGINT/SIGTERM interrupts in-flight
	// shards at their next poll and releases held leases (no penalty);
	// a second signal kills.
	interrupt := make(chan struct{})
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig, ok := <-sigc
		if !ok {
			return
		}
		fmt.Fprintf(os.Stderr, "c3worker: %v: releasing leases and stopping (send again to kill)\n", sig)
		signal.Stop(sigc)
		close(interrupt)
	}()

	err := campaign.RunWorker(campaign.WorkerConfig{
		Coordinator:  *coordinator,
		Name:         *name,
		Slots:        *slots,
		Poll:         *poll,
		ProbeTimeout: *probeTimeout,
		Interrupt:    interrupt,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "c3worker: "+format+"\n", args...)
		},
	})
	signal.Stop(sigc)
	close(sigc)
	switch {
	case err == nil:
		os.Exit(obs.ExitPass)
	case errors.Is(err, campaign.ErrWorkerInterrupted):
		os.Exit(obs.ExitResumable)
	default:
		fmt.Fprintln(os.Stderr, "c3worker:", err)
		os.Exit(obs.ExitFail)
	}
}
