package c3

import (
	"fmt"
	"os"

	"c3/internal/cpu"
	"c3/internal/litmus"
	"c3/internal/trace"
	"c3/internal/verif"
)

// LitmusConfig parameterizes a litmus campaign.
type LitmusConfig struct {
	// Locals are the two clusters' protocols (default mesi/mesi).
	Locals [2]string
	// Global is "cxl" (default) or "hmesi".
	Global string
	// MCMs per cluster; threads are distributed round-robin.
	MCMs [2]MCM
	// Iters is the number of randomized executions (default 100).
	Iters int
	// Unsynced strips all fences/annotations (the paper's control runs);
	// otherwise fences are kept, refined per thread MCM (ArMOR-style).
	Unsynced bool
	Seed     int64
	// Trace prints the first iteration's coherence-message trace to
	// stdout (cmd/c3litmus -trace).
	Trace bool
	// TraceJSON, when non-empty, writes the first iteration's protocol
	// trace to this file in Chrome trace-event format (open in
	// ui.perfetto.dev).
	TraceJSON string
	// Workers shards iterations across goroutines (0 = GOMAXPROCS,
	// 1 = serial); results are identical for every worker count.
	Workers int
	// Faults arms the cross-cluster fault injector from a plan spec —
	// either a named preset ("light", "noisy", "stall", "blackout") or a
	// "drop=0.01,dup=0.01,stall=100:200,retries=8" string (see
	// ParseFaultPlan). Empty = perfect fabric.
	Faults string
}

// LitmusResult summarizes a campaign.
type LitmusResult struct {
	Test             string
	Iters            int
	Distinct         int
	Forbidden        int
	ForbiddenExample string
	// Poisoned counts iterations that completed with a poisoned line
	// (link-retry budget exhausted under fault injection); they are
	// detected degradation, not forbidden outcomes.
	Poisoned int
	// Hangs counts watchdog firings under fault injection, by class.
	Hangs       int
	HangClasses map[string]int
	// Outcomes histograms every observed outcome.
	Outcomes map[string]int
}

// LitmusTests lists the corpus (the first seven are Table IV's set).
func LitmusTests() []string {
	var out []string
	for _, t := range litmus.Tests() {
		out = append(out, t.Name)
	}
	return out
}

// RunLitmus executes one litmus campaign.
func RunLitmus(test string, cfg LitmusConfig) (*LitmusResult, error) {
	tc, ok := litmus.ByName(test)
	if !ok {
		return nil, fmt.Errorf("c3: unknown litmus test %q", test)
	}
	if cfg.Locals[0] == "" {
		cfg.Locals = [2]string{"mesi", "mesi"}
	}
	if cfg.Global == "" {
		cfg.Global = "cxl"
	}
	mode := litmus.SyncFull
	if cfg.Unsynced {
		mode = litmus.SyncNone
	}
	rcfg := litmus.RunnerConfig{
		Locals: cfg.Locals, Global: cfg.Global, MCMs: [2]cpu.MCM{cfg.MCMs[0], cfg.MCMs[1]},
		Iters: cfg.Iters, Sync: mode, BaseSeed: cfg.Seed, Workers: cfg.Workers,
	}
	if cfg.Faults != "" {
		plan, err := ParseFaultPlan(cfg.Faults)
		if err != nil {
			return nil, err
		}
		rcfg.Faults = &plan
		rcfg.HangWatch = true
	}
	if cfg.Trace {
		rcfg.TraceTo = os.Stdout
	}
	if cfg.TraceJSON != "" {
		f, err := os.Create(cfg.TraceJSON)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		chrome := trace.NewChrome(f)
		tr := trace.New(chrome)
		chrome.Namer = tr.Label
		rcfg.Tracer = tr
		defer chrome.Close()
	}
	res, err := litmus.Run(tc, rcfg)
	if err != nil {
		return nil, err
	}
	return &LitmusResult{
		Test: res.Test, Iters: res.Iters, Distinct: res.Distinct(),
		Forbidden: res.Forbidden, ForbiddenExample: res.ForbiddenExample,
		Poisoned: res.Poisoned, Hangs: res.Hangs, HangClasses: res.HangClasses,
		Outcomes: res.Outcomes,
	}, nil
}

// VerifyConfig parameterizes exhaustive model checking.
type VerifyConfig struct {
	Locals [2]string // MESI-family protocols (default mesi/mesi)
	Global string    // "cxl" (default) or "hmesi"
	MCMs   [2]MCM
	// TinyLLC forces CXL-cache evictions (Fig. 7 flows) into the
	// explored space.
	TinyLLC   bool
	MaxStates uint64
	// Workers parallelizes successor expansion (0 = GOMAXPROCS,
	// 1 = serial); reports are identical for every worker count.
	Workers int
}

// VerifyReport summarizes an exhaustive exploration.
type VerifyReport struct {
	Test      string
	States    uint64
	Terminals uint64
	Outcomes  int
	Truncated bool
}

// Verify exhaustively model-checks the named litmus shape on a small C3
// system, checking deadlock freedom, SWMR, Rule I's forbidden compound
// states, and the absence of forbidden outcomes.
func Verify(test string, cfg VerifyConfig) (*VerifyReport, error) {
	tc, ok := litmus.ByName(test)
	if !ok {
		return nil, fmt.Errorf("c3: unknown litmus test %q", test)
	}
	if cfg.Locals[0] == "" {
		cfg.Locals = [2]string{"mesi", "mesi"}
	}
	if cfg.Global == "" {
		cfg.Global = "cxl"
	}
	rep, err := verif.Check(verif.ModelConfig{
		Test:    tc,
		Locals:  cfg.Locals,
		Global:  cfg.Global,
		MCMs:    [2]cpu.MCM{cfg.MCMs[0], cfg.MCMs[1]},
		Sync:    litmus.SyncFull,
		TinyLLC: cfg.TinyLLC,
	}, verif.CheckerConfig{MaxStates: cfg.MaxStates, Workers: cfg.Workers})
	if err != nil {
		return nil, err
	}
	return &VerifyReport{
		Test: test, States: rep.States, Terminals: rep.Terminals,
		Outcomes: len(rep.Outcomes), Truncated: rep.Truncated,
	}, nil
}
