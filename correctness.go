package c3

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"c3/internal/cpu"
	"c3/internal/faults"
	"c3/internal/litmus"
	"c3/internal/trace"
	"c3/internal/verif"
)

// LitmusConfig parameterizes a litmus campaign.
type LitmusConfig struct {
	// Locals are the two clusters' protocols (default mesi/mesi).
	Locals [2]string
	// Global is "cxl" (default) or "hmesi".
	Global string
	// MCMs per cluster; threads are distributed round-robin.
	MCMs [2]MCM
	// Iters is the number of randomized executions (default 100).
	Iters int
	// Unsynced strips all fences/annotations (the paper's control runs);
	// otherwise fences are kept, refined per thread MCM (ArMOR-style).
	Unsynced bool
	Seed     int64
	// Trace prints the first iteration's coherence-message trace to
	// stdout (cmd/c3litmus -trace).
	Trace bool
	// TraceJSON, when non-empty, writes the first iteration's protocol
	// trace to this file in Chrome trace-event format (open in
	// ui.perfetto.dev).
	TraceJSON string
	// Workers shards iterations across goroutines (0 = GOMAXPROCS,
	// 1 = serial); results are identical for every worker count.
	Workers int
	// Faults arms the cross-cluster fault injector from a plan spec —
	// either a named preset ("light", "noisy", "stall", "blackout") or a
	// "drop=0.01,dup=0.01,stall=100:200,retries=8" string (see
	// ParseFaultPlan). Empty = perfect fabric.
	Faults string
	// Crash injects a host crash on top of the fault plan: a
	// "host@tick" or "host@tick:rejoin" spec (repeatable via ';').
	// Host 0 carries the collector and must survive. Equivalent to a
	// "crash=..." key inside Faults.
	Crash string
}

// LitmusResult summarizes a campaign.
type LitmusResult struct {
	Test             string
	Iters            int
	Distinct         int
	Forbidden        int
	ForbiddenExample string
	// Poisoned counts iterations that completed with a poisoned line
	// (link-retry budget exhausted under fault injection); they are
	// detected degradation, not forbidden outcomes.
	Poisoned int
	// Hangs counts watchdog firings under fault injection, by class.
	Hangs       int
	HangClasses map[string]int
	// Crashed counts iterations that lost a host to a crash plan; they
	// are excluded from forbidden-outcome checks (a dead thread's
	// registers are unconstrained) but still must converge.
	Crashed int
	// PoisonedVars histograms, per litmus variable, how often the
	// collector read it back poisoned (its only copy died with a host).
	PoisonedVars map[string]int
	// Outcomes histograms every observed outcome.
	Outcomes map[string]int
}

// LitmusTests lists the corpus (the first seven are Table IV's set).
func LitmusTests() []string {
	var out []string
	for _, t := range litmus.Tests() {
		out = append(out, t.Name)
	}
	return out
}

// RunLitmus executes one litmus campaign.
func RunLitmus(test string, cfg LitmusConfig) (*LitmusResult, error) {
	tc, ok := litmus.ByName(test)
	if !ok {
		return nil, fmt.Errorf("c3: unknown litmus test %q", test)
	}
	if cfg.Locals[0] == "" {
		cfg.Locals = [2]string{"mesi", "mesi"}
	}
	if cfg.Global == "" {
		cfg.Global = "cxl"
	}
	mode := litmus.SyncFull
	if cfg.Unsynced {
		mode = litmus.SyncNone
	}
	rcfg := litmus.RunnerConfig{
		Locals: cfg.Locals, Global: cfg.Global, MCMs: [2]cpu.MCM{cfg.MCMs[0], cfg.MCMs[1]},
		Iters: cfg.Iters, Sync: mode, BaseSeed: cfg.Seed, Workers: cfg.Workers,
	}
	var plan FaultPlan
	havePlan := false
	if cfg.Faults != "" {
		p, err := ParseFaultPlan(cfg.Faults)
		if err != nil {
			return nil, err
		}
		plan, havePlan = p, true
	}
	if cfg.Crash != "" {
		for _, spec := range strings.Split(cfg.Crash, ";") {
			cp, err := faults.ParsePlan("crash=" + strings.TrimSpace(spec))
			if err != nil {
				return nil, err
			}
			plan.Crashes = append(plan.Crashes, cp.Crashes...)
		}
		havePlan = true
	}
	if havePlan {
		rcfg.Faults = &plan
		rcfg.HangWatch = true
	}
	if cfg.Trace {
		rcfg.TraceTo = os.Stdout
	}
	if cfg.TraceJSON != "" {
		f, err := os.Create(cfg.TraceJSON)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		chrome := trace.NewChrome(f)
		tr := trace.New(chrome)
		chrome.Namer = tr.Label
		rcfg.Tracer = tr
		defer chrome.Close()
	}
	res, err := litmus.Run(tc, rcfg)
	if err != nil {
		return nil, err
	}
	return &LitmusResult{
		Test: res.Test, Iters: res.Iters, Distinct: res.Distinct(),
		Forbidden: res.Forbidden, ForbiddenExample: res.ForbiddenExample,
		Poisoned: res.Poisoned, Hangs: res.Hangs, HangClasses: res.HangClasses,
		Crashed: res.Crashed, PoisonedVars: res.PoisonedVars,
		Outcomes: res.Outcomes,
	}, nil
}

// VerifyConfig parameterizes exhaustive model checking.
type VerifyConfig struct {
	Locals [2]string // MESI-family protocols (default mesi/mesi)
	Global string    // "cxl" (default) or "hmesi"
	MCMs   [2]MCM
	// TinyLLC forces CXL-cache evictions (Fig. 7 flows) into the
	// explored space.
	TinyLLC   bool
	MaxStates uint64
	MaxDepth  int
	// Workers parallelizes successor expansion (0 = GOMAXPROCS,
	// 1 = serial); reports are identical for every worker count.
	Workers int
	// Unsynced strips all fences/annotations before checking, exploring
	// the relaxed executions the paper's control runs exercise. Forbidden
	// outcomes are then architecturally legal, so the predicate is skipped
	// (VerifyReport.ForbiddenSkipped) unless CheckForbidden is set.
	Unsynced bool
	// CheckForbidden evaluates the shape's forbidden-outcome predicate
	// even when Unsynced — the standard way to demonstrate witness
	// extraction on an outcome that is reachable by design.
	CheckForbidden bool
	// ReplayFromRoot reconstructs every state by re-executing its delivery
	// prefix instead of snapshot cloning (cross-check / low-memory mode).
	ReplayFromRoot bool
	// CanonOff disables canonical hashing and symmetry reduction, falling
	// back to the raw state dump the pre-reduction checker hashed
	// (c3check -canon=off). State counts then match the legacy checker
	// exactly.
	CanonOff bool
	// POROff disables the partial-order reduction (c3check -por=off):
	// every enabled delivery is expanded at every state.
	POROff bool
	// CrossCheck runs the exploration twice — reduced, then with both
	// reductions off — and fails unless the violation verdicts agree and
	// every unreduced outcome appears in the reduced outcome set. The
	// returned report is the reduced run's (with both runs' build/clone
	// costs folded in). Expensive; a soundness audit, not a normal mode.
	CrossCheck bool
	// OnProgress, when non-nil, receives a periodic exploration snapshot
	// (roughly every couple thousand states) from the checker loop — the
	// live-introspection feed behind c3check -statusz. It runs serially
	// on the exploration goroutine and cannot influence the exploration.
	OnProgress func(CheckProgress)
	// Deadline bounds the exploration's wall clock (zero = none): when it
	// passes, Verify returns the partial report so far alongside an error
	// wrapping ErrCheckDeadline.
	Deadline time.Time
	// Interrupt, when non-nil, requests graceful shutdown once closed:
	// Verify stops at the next poll and returns the partial report
	// alongside an error wrapping ErrCheckInterrupted.
	Interrupt <-chan struct{}
	// MemBudget is a soft heap budget in bytes (0 = none): over budget the
	// checker degrades — tightening its snapshot budget down to
	// replay-from-root — instead of OOMing. Degradation is recorded in
	// VerifyReport.MemSheds and never changes the exploration result.
	MemBudget uint64
}

// Abort sentinels Verify wraps when an exploration is cut short; both
// come back alongside the partial report accumulated so far.
var (
	ErrCheckDeadline    = verif.ErrCheckDeadline
	ErrCheckInterrupted = verif.ErrCheckInterrupted
)

// CheckProgress is a mid-exploration snapshot (VerifyConfig.OnProgress):
// states visited, terminals, snapshot builds/clones, frontier size, and
// the deepest expanded path so far.
type CheckProgress struct {
	States    uint64
	Terminals uint64
	Builds    uint64
	Clones    uint64
	Frontier  int
	Depth     int
	// SymmetryMerges / PORSkips are the state-space reduction counters so
	// far (zero when the reductions are disabled).
	SymmetryMerges uint64
	PORSkips       uint64
}

// VerifyReport summarizes an exhaustive exploration.
type VerifyReport struct {
	Test      string
	States    uint64
	Terminals uint64
	Outcomes  int
	Truncated bool
	// ForbiddenSkipped records that the shape declares a forbidden-outcome
	// predicate but it was not evaluated (Unsynced without CheckForbidden).
	ForbiddenSkipped bool
	// Builds counts full model constructions; Clones counts snapshot deep
	// copies (the snapshot checker's cost profile).
	Builds uint64
	Clones uint64
	// MemSheds counts memory-pressure degradation events (see
	// VerifyConfig.MemBudget); SnapshotBudgetEnd is the snapshot budget in
	// force when exploration ended (0 = the tail ran replay-from-root).
	MemSheds          uint64
	SnapshotBudgetEnd int
	// SymmetryMerges counts successors that folded onto a visited state
	// through a non-identity host/address renaming; PORSkips counts
	// successor expansions the partial-order reduction proved redundant.
	// Both are zero when the corresponding reduction is disabled.
	SymmetryMerges uint64
	PORSkips       uint64
	// OutcomeList is the sorted set of terminal litmus outcomes — the
	// basis of reduction-soundness diffs (c3check -outcomes).
	OutcomeList []string
}

// VerifyError is the structured violation Verify returns: the failure
// classification plus a minimized delivery-choice witness that
// ReplayWitness (or c3check -replay) re-executes deterministically.
// Extract it with errors.As.
type VerifyError struct {
	Test string
	// Kind is "invariant", "deadlock", "livelock", or "forbidden-outcome".
	Kind string
	// Msg is the underlying failure (invariant text, forbidden outcome).
	Msg string
	// Witness is the delivery path: at each quiescent state, the index
	// into the checker's canonically ordered enabled-action list.
	Witness []uint16
	// OriginalLen is the witness length before delta-debugging; Minimized
	// reports that minimization reproduced the failure.
	OriginalLen int
	Minimized   bool

	cex *verif.Counterexample
}

func (e *VerifyError) Error() string { return e.cex.Error() }
func (e *VerifyError) Unwrap() error { return e.cex }

func modelConfig(test string, cfg *VerifyConfig) (verif.ModelConfig, error) {
	tc, ok := litmus.ByName(test)
	if !ok {
		return verif.ModelConfig{}, fmt.Errorf("c3: unknown litmus test %q", test)
	}
	if cfg.Locals[0] == "" {
		cfg.Locals = [2]string{"mesi", "mesi"}
	}
	if cfg.Global == "" {
		cfg.Global = "cxl"
	}
	sync := litmus.SyncFull
	if cfg.Unsynced {
		sync = litmus.SyncNone
	}
	return verif.ModelConfig{
		Test:    tc,
		Locals:  cfg.Locals,
		Global:  cfg.Global,
		MCMs:    [2]cpu.MCM{cfg.MCMs[0], cfg.MCMs[1]},
		Sync:    sync,
		TinyLLC: cfg.TinyLLC,
	}, nil
}

// Verify exhaustively model-checks the named litmus shape on a small C3
// system, checking deadlock freedom, SWMR, Rule I's forbidden compound
// states, and the absence of forbidden outcomes. Violations come back as
// a *VerifyError carrying a minimized, replayable witness.
func Verify(test string, cfg VerifyConfig) (*VerifyReport, error) {
	mcfg, err := modelConfig(test, &cfg)
	if err != nil {
		return nil, err
	}
	ccfg := verif.CheckerConfig{
		MaxStates:      cfg.MaxStates,
		MaxDepth:       cfg.MaxDepth,
		Workers:        cfg.Workers,
		ReplayFromRoot: cfg.ReplayFromRoot,
		CanonOff:       cfg.CanonOff,
		POROff:         cfg.POROff,
		CrossCheck:     cfg.CrossCheck,
		CheckForbidden: cfg.CheckForbidden,
		Deadline:       cfg.Deadline,
		Interrupt:      cfg.Interrupt,
		MemBudget:      cfg.MemBudget,
	}
	if cfg.OnProgress != nil {
		hook := cfg.OnProgress
		ccfg.OnProgress = func(p verif.Progress) {
			hook(CheckProgress{
				States: p.States, Terminals: p.Terminals,
				Builds: p.Builds, Clones: p.Clones,
				Frontier: p.Frontier, Depth: p.Depth,
				SymmetryMerges: p.SymmetryMerges, PORSkips: p.PORSkips,
			})
		}
	}
	rep, err := verif.Check(mcfg, ccfg)
	if err != nil {
		var cex *verif.Counterexample
		if errors.As(err, &cex) {
			return nil, &VerifyError{
				Test: test, Kind: cex.Kind.String(), Msg: cex.Msg,
				Witness: cex.Path, OriginalLen: cex.OriginalLen,
				Minimized: cex.Minimized, cex: cex,
			}
		}
		// Deadline and interrupt aborts carry the partial exploration so
		// callers can still render what was covered before the cut.
		if rep != nil && (errors.Is(err, ErrCheckDeadline) || errors.Is(err, ErrCheckInterrupted)) {
			return verifyReport(test, rep), err
		}
		return nil, err
	}
	return verifyReport(test, rep), nil
}

func verifyReport(test string, rep *verif.Report) *VerifyReport {
	outs := make([]string, 0, len(rep.Outcomes))
	for o := range rep.Outcomes {
		outs = append(outs, o)
	}
	sort.Strings(outs)
	return &VerifyReport{
		Test: test, States: rep.States, Terminals: rep.Terminals,
		Outcomes: len(rep.Outcomes), Truncated: rep.Truncated,
		ForbiddenSkipped: rep.ForbiddenSkipped,
		Builds:           rep.Builds, Clones: rep.Clones,
		MemSheds:         rep.MemSheds, SnapshotBudgetEnd: rep.SnapshotBudgetEnd,
		SymmetryMerges:   rep.SymmetryMerges, PORSkips: rep.PORSkips,
		OutcomeList:      outs,
	}
}

// ReplayReport describes what re-executing a witness did.
type ReplayReport struct {
	Test string
	// Steps decodes each delivered coherence message in order.
	Steps []string
	// Kind is "none" when the replay completes without a violation;
	// otherwise the reproduced failure ("invariant", "deadlock",
	// "forbidden-outcome"), with Msg the detail.
	Kind string
	Msg  string
	// FailedAt is the number of messages delivered when the violation
	// fired (invariants can trip mid-path).
	FailedAt int
	// Terminal reports an all-retired, fabric-empty end state; Outcome is
	// then its litmus outcome rendering.
	Terminal bool
	Outcome  string
	// EnabledAtEnd counts still-deliverable messages at the end state.
	EnabledAtEnd int
}

// ReplayWitness re-executes a violation witness from Verify (or the
// c3check witness line) against a freshly built model and reports what
// happens, step by step. Replay is deterministic: the same witness and
// configuration always reproduce the same failure.
func ReplayWitness(test string, cfg VerifyConfig, witness []uint16) (*ReplayReport, error) {
	mcfg, err := modelConfig(test, &cfg)
	if err != nil {
		return nil, err
	}
	res, err := verif.Replay(mcfg, witness)
	if err != nil {
		return nil, err
	}
	rr := &ReplayReport{
		Test: test, Steps: res.Steps, Kind: res.Kind.String(), Msg: res.Msg,
		FailedAt: res.FailedAt, Terminal: res.Terminal,
		EnabledAtEnd: res.EnabledAtEnd,
	}
	if res.Terminal {
		rr.Outcome = res.Outcome.String()
	}
	return rr, nil
}
