package c3

import (
	"fmt"
	"time"

	"c3/internal/cpu"
	"c3/internal/faults"
	"c3/internal/litmus"
)

// FaultPlan describes a deterministic fault-injection plan for the
// cross-cluster CXL links (drop/duplication/delay rates, stall windows,
// retry budget). The zero value is a perfect fabric.
type FaultPlan = faults.Plan

// ParseFaultPlan resolves a fault-plan spec: a named preset ("light",
// "noisy", "stall", "blackout", "crash", "crash-rejoin", "crash-noisy"
// — see FaultPlans) or a key=value string such as
// "drop=0.01,dup=0.01,delay=0.1,delaymax=200,stall=100:900,
// retries=8,seed=7,crash=1@2500" (crash values are host@tick[:rejoin]).
func ParseFaultPlan(spec string) (FaultPlan, error) {
	if p, ok := litmus.PlanByName(spec); ok {
		return p.Plan, nil
	}
	return faults.ParsePlan(spec)
}

// FaultPlans lists the named fault-plan presets.
func FaultPlans() []string {
	var out []string
	for _, p := range litmus.DefaultPlans() {
		out = append(out, p.Name)
	}
	for _, p := range litmus.CrashPlans() {
		out = append(out, p.Name)
	}
	return out
}

// CrashPlans lists just the host-crash preset names (the crash sweep).
func CrashPlans() []string {
	var out []string
	for _, p := range litmus.CrashPlans() {
		out = append(out, p.Name)
	}
	return out
}

// SoakConfig parameterizes a soak campaign: litmus tests x fault plans x
// seeds, each run as a full campaign on the unreliable fabric with hang
// watchdogs armed. Zero values select the Table IV tests, all named
// presets, seed 1, 25 iterations.
type SoakConfig struct {
	Tests []string // litmus tests (default: Table IV set)
	Plans []string // plan names or specs (default: all presets)
	Seeds []int64  // campaign base seeds (default: {1})
	Iters int      // iterations per campaign (default 25)

	Locals  [2]string // cluster protocols (default mesi/mesi)
	Global  string    // "cxl" (default) or "hmesi"
	MCMs    [2]MCM
	Workers int           // campaign fan-out (0 = GOMAXPROCS); reports are identical
	Timeout time.Duration // wall-clock bound for the sweep (0 = none)
	// TaskTimeout bounds each campaign attempt's wall clock; expired
	// attempts are retried up to Retries times, then recorded as TIMEOUT
	// rows (0 = none).
	TaskTimeout time.Duration
	// Retries is how many extra attempts a timed-out or panicked campaign
	// gets before its row is recorded as TIMEOUT/ERROR. Attempts are
	// separated by capped exponential backoff.
	Retries int
	// FailFast restores first-error-cancel semantics: the first campaign
	// abort cancels the sweep and RunSoak returns the error. The default
	// is isolation — every campaign runs and errors become report rows.
	FailFast bool
	// Interrupt, when non-nil, requests graceful shutdown once closed:
	// running campaigns stop at their next poll, unstarted ones are
	// skipped, and the report marks the cut rows INTERRUPTED.
	Interrupt <-chan struct{}
	// Completed seeds the sweep with rows checkpointed by a previous run,
	// keyed by RowLabel — the c3soak -resume path. Matching campaigns are
	// not executed; the cached row lands in the report marked Resumed.
	Completed map[string]SoakRun
	// Observer, when non-nil, receives the campaign plan and lifecycle
	// events for live introspection (obs.Tracker implements it; see
	// c3soak -statusz). It can never affect the report.
	Observer SoakObserver
}

// SoakRun is one campaign row of a SoakReport.
type SoakRun = litmus.SoakRun

// RowLabel renders the stable identity of one campaign row
// ("MP/light/seed1") — the key of SoakConfig.Completed and the prefix of
// the ledger's row checkpoint keys.
func RowLabel(test, plan string, seed int64) string {
	return litmus.RowLabel(test, plan, seed)
}

// SoakObserver observes a soak sweep for live introspection: the
// campaign label plan up front, then concurrent start/done events from
// the worker pool.
type SoakObserver = litmus.SoakObserver

// SoakReport is the campaign result table: Render() is byte-identical
// for every worker count, OK() is the robustness verdict (every run
// passed coherence checks or reported detected degradation).
type SoakReport = litmus.SoakReport

// RunSoak executes the soak sweep.
func RunSoak(cfg SoakConfig) (*SoakReport, error) {
	var plans []litmus.NamedPlan
	for _, spec := range cfg.Plans {
		if p, ok := litmus.PlanByName(spec); ok {
			plans = append(plans, p)
			continue
		}
		plan, err := faults.ParsePlan(spec)
		if err != nil {
			return nil, fmt.Errorf("c3: fault plan %q: %w", spec, err)
		}
		plans = append(plans, litmus.NamedPlan{Name: spec, Plan: plan})
	}
	return litmus.RunSoak(litmus.SoakConfig{
		Tests:       cfg.Tests,
		Plans:       plans,
		Seeds:       cfg.Seeds,
		Iters:       cfg.Iters,
		Locals:      cfg.Locals,
		Global:      cfg.Global,
		MCMs:        [2]cpu.MCM{cfg.MCMs[0], cfg.MCMs[1]},
		Workers:     cfg.Workers,
		Timeout:     cfg.Timeout,
		TaskTimeout: cfg.TaskTimeout,
		Retries:     cfg.Retries,
		FailFast:    cfg.FailFast,
		Interrupt:   cfg.Interrupt,
		Completed:   cfg.Completed,
		Observer:    cfg.Observer,
	})
}
