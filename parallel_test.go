package c3_test

// Parallel == serial equivalence at the experiment level: the worker
// pool must never change a report, only how fast it arrives. These run
// the same experiments at Workers 1 and Workers 8 and require the
// reports — including their rendered text — to be identical.

import (
	"reflect"
	"testing"

	"c3"
)

func TestFig10ParallelMatchesSerial(t *testing.T) {
	opts := c3.ExpOptions{
		Workloads:       []string{"histogram", "vips", "fft", "kmeans"},
		CoresPerCluster: 2,
		OpsScale:        0.1,
		Seed:            7,
	}
	serial := opts
	serial.Workers = 1
	want, err := c3.Fig10(serial)
	if err != nil {
		t.Fatal(err)
	}
	par := opts
	par.Workers = 8
	got, err := c3.Fig10(par)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parallel Fig10 diverged:\n got %+v\nwant %+v", got, want)
	}
	if got.Render() != want.Render() {
		t.Fatalf("parallel Fig10 render diverged:\n%s\nvs\n%s", got.Render(), want.Render())
	}
}

func TestTableIVParallelMatchesSerial(t *testing.T) {
	iters := 12
	if testing.Short() {
		iters = 4
	}
	want, err := c3.TableIVWorkers(iters, 99, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c3.TableIVWorkers(iters, 99, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parallel TableIV diverged:\n got %+v\nwant %+v", got, want)
	}
	if got.Render() != want.Render() {
		t.Fatalf("parallel TableIV render diverged:\n%s\nvs\n%s", got.Render(), want.Render())
	}
}

// TestFig9UnknownWorkload: a bad workload name must surface as an error,
// not be silently skipped.
func TestFig9UnknownWorkload(t *testing.T) {
	_, err := c3.Fig9(c3.ExpOptions{
		Workloads:       []string{"histogram", "no-such-kernel"},
		CoresPerCluster: 2,
		OpsScale:        0.1,
	})
	if err == nil {
		t.Fatal("Fig9 accepted an unknown workload")
	}
}

// TestExpProgressDeterministic: progress lines arrive in run order for
// any worker count.
func TestExpProgressDeterministic(t *testing.T) {
	collect := func(workers int) []string {
		var lines []string
		_, err := c3.Fig10(c3.ExpOptions{
			Workloads:       []string{"histogram", "vips"},
			CoresPerCluster: 2,
			OpsScale:        0.1,
			Seed:            7,
			Workers:         workers,
			Progress:        func(s string) { lines = append(lines, s) },
		})
		if err != nil {
			t.Fatal(err)
		}
		return lines
	}
	want := collect(1)
	got := collect(8)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("progress diverged:\n got %v\nwant %v", got, want)
	}
}
