package c3_test

import (
	"errors"
	"strings"
	"testing"

	"c3"
)

func TestPublicProtocolLists(t *testing.T) {
	if len(c3.LocalProtocols()) != 4 || len(c3.GlobalProtocols()) != 2 {
		t.Fatalf("protocol lists: %v / %v", c3.LocalProtocols(), c3.GlobalProtocols())
	}
	if len(c3.Workloads()) != 33 {
		t.Fatalf("want 33 workloads, got %d", len(c3.Workloads()))
	}
	if len(c3.LitmusTests()) < 12 {
		t.Fatalf("litmus corpus too small: %d", len(c3.LitmusTests()))
	}
}

func TestGenerateTableAPI(t *testing.T) {
	tab, err := c3.GenerateTable("mesi", "cxl")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tab.Render(), "MESI-CXL") {
		t.Fatal("table render missing pairing name")
	}
	if _, err := c3.GenerateTable("nope", "cxl"); err == nil {
		t.Fatal("unknown local protocol should fail")
	}
	if _, err := c3.GenerateTable("mesi", "nope"); err == nil {
		t.Fatal("unknown global protocol should fail")
	}
}

func TestNewSystemAPI(t *testing.T) {
	s, err := c3.NewSystem(c3.Config{
		Clusters: []c3.Cluster{
			{Protocol: "mesi", MCM: c3.TSO, Cores: 2},
			{Protocol: "moesi", MCM: c3.ARM, Cores: 2},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Proto() != "MESI-CXL-MOESI" {
		t.Fatalf("Proto = %q", s.Proto())
	}
	if s.Raw() == nil {
		t.Fatal("Raw() should expose the underlying system")
	}
	if _, err := c3.NewSystem(c3.Config{}); err == nil {
		t.Fatal("empty config should fail")
	}
}

func TestRunWorkloadAPI(t *testing.T) {
	r, err := c3.RunWorkload("vips", c3.WorkloadConfig{
		CoresPerCluster: 2, OpsScale: 0.1, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Time == 0 || r.Miss.Ops == 0 {
		t.Fatalf("empty result: %+v", r)
	}
	if _, err := c3.RunWorkload("nope", c3.WorkloadConfig{}); err == nil {
		t.Fatal("unknown workload should fail")
	}
}

func TestRunLitmusAPI(t *testing.T) {
	res, err := c3.RunLitmus("MP", c3.LitmusConfig{
		MCMs: [2]c3.MCM{c3.TSO, c3.ARM}, Iters: 20, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Forbidden != 0 {
		t.Fatalf("MP violated: %s", res.ForbiddenExample)
	}
	if res.Distinct == 0 || len(res.Outcomes) != res.Distinct {
		t.Fatalf("outcome bookkeeping: %+v", res)
	}
	if _, err := c3.RunLitmus("nope", c3.LitmusConfig{}); err == nil {
		t.Fatal("unknown test should fail")
	}
}

func TestVerifyAPI(t *testing.T) {
	rep, err := c3.Verify("SB", c3.VerifyConfig{MCMs: [2]c3.MCM{c3.TSO, c3.TSO}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.States == 0 || rep.Terminals == 0 {
		t.Fatalf("empty verification: %+v", rep)
	}
	if _, err := c3.Verify("nope", c3.VerifyConfig{}); err == nil {
		t.Fatal("unknown test should fail")
	}
}

// TestVerifyWitnessRoundTrip: a violation surfaces as a *VerifyError
// whose witness ReplayWitness re-executes to the identical failure (the
// programmatic form of c3check -witness / -replay).
func TestVerifyWitnessRoundTrip(t *testing.T) {
	cfg := c3.VerifyConfig{Unsynced: true, CheckForbidden: true}
	_, err := c3.Verify("MP", cfg)
	if err == nil {
		t.Fatal("unsynced MP with the forbidden predicate armed must fail")
	}
	var ve *c3.VerifyError
	if !errors.As(err, &ve) {
		t.Fatalf("error is not a *VerifyError: %v", err)
	}
	if ve.Kind != "forbidden-outcome" || len(ve.Witness) == 0 || len(ve.Witness) > ve.OriginalLen {
		t.Fatalf("bad witness: %+v", ve)
	}
	rr, err := c3.ReplayWitness("MP", cfg, ve.Witness)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Kind != ve.Kind || rr.Msg != ve.Msg || len(rr.Steps) != len(ve.Witness) {
		t.Fatalf("replay reproduced %s %q in %d steps, want %s %q in %d",
			rr.Kind, rr.Msg, len(rr.Steps), ve.Kind, ve.Msg, len(ve.Witness))
	}
	// Without CheckForbidden the relaxed run records the skip instead.
	rep, err := c3.Verify("MP", c3.VerifyConfig{Unsynced: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.ForbiddenSkipped {
		t.Fatal("ForbiddenSkipped not recorded")
	}
}

// TestFig10Shape asserts the headline result at reduced scale: CXL costs
// a few percent on insensitive kernels, tens of percent on hot ones, and
// every combo's geomean slowdown stays modest.
func TestFig10Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep")
	}
	rep, err := c3.Fig10(c3.ExpOptions{
		Workloads:       []string{"histogram", "vips", "fft", "barnes"},
		CoresPerCluster: 2, OpsScale: 0.4, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, combo := range c3.Fig10Combos() {
		hist, vips := rep.Norm[combo]["histogram"], rep.Norm[combo]["vips"]
		if hist <= vips {
			t.Errorf("%s: histogram (%.3f) should exceed vips (%.3f)", combo, hist, vips)
		}
		if vips > 1.25 {
			t.Errorf("%s: vips slowdown %.3f too large", combo, vips)
		}
		if hist < 1.05 {
			t.Errorf("%s: histogram slowdown %.3f implausibly small", combo, hist)
		}
	}
}

// TestFig9Shape asserts the MCM ordering: ARM <= mixed <= TSO for every
// suite, with a nontrivial TSO penalty.
func TestFig9Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep")
	}
	rep, err := c3.Fig9(c3.ExpOptions{
		Workloads:       []string{"raytrace", "vips", "kmeans", "histogram"},
		CoresPerCluster: 2, OpsScale: 0.4, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, pc := range c3.Fig9ProtoCombos() {
		for suite, tso := range rep.Norm[pc]["TSO-TSO"] {
			arm := rep.Norm[pc]["ARM-ARM"][suite]
			mixed := rep.Norm[pc]["ARM-TSO"][suite]
			if !(arm <= mixed*1.05 && mixed <= tso*1.10) {
				t.Errorf("%s/%s: ordering violated arm=%.3f mixed=%.3f tso=%.3f",
					pc, suite, arm, mixed, tso)
			}
			if tso < 1.02 {
				t.Errorf("%s/%s: TSO penalty %.3f implausibly small", pc, suite, tso)
			}
		}
	}
}

// TestFig11Shape asserts the miss-cycle story of Sec. VI-C1: the
// CXL-sensitive kernels' high-latency band grows under CXL while vips
// barely moves.
func TestFig11Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep")
	}
	rep, err := c3.Fig11(c3.ExpOptions{CoresPerCluster: 2, OpsScale: 0.4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ratio := func(w string) float64 {
		base := rep.Breakdown[w]["MESI-MESI-MESI"]
		cxl := rep.Breakdown[w]["MESI-CXL-MESI"]
		return float64(cxl.TotalMissCycles()) / float64(base.TotalMissCycles())
	}
	if hist, vips := ratio("histogram"), ratio("vips"); hist <= vips {
		t.Errorf("miss-cycle growth: histogram %.2f should exceed vips %.2f", hist, vips)
	}
}

func TestTableIVSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("litmus matrix")
	}
	rep, err := c3.TableIV(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.AllPass() {
		t.Fatalf("matrix failures: %v", rep.Details)
	}
	r := rep.Render()
	if !strings.Contains(r, "MP-sys") || !strings.Contains(r, "ok") {
		t.Fatalf("render malformed:\n%s", r)
	}
}

// TestHybridShape: the extension experiment's headline — moving private
// data to cluster-local memory (Sec. IV-D4) makes the CXL system beat
// the all-remote baseline for private-heavy kernels.
func TestHybridShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep")
	}
	rep, err := c3.Hybrid(c3.ExpOptions{
		Workloads: []string{"vips", "histogram"}, CoresPerCluster: 2,
		OpsScale: 0.5, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for w, v := range rep.Overhead {
		if v[1] >= v[0] {
			t.Errorf("%s: hybrid (%.3f) should beat all-remote (%.3f)", w, v[1], v[0])
		}
	}
	if v := rep.Overhead["vips"]; v[1] > 0.7 {
		t.Errorf("vips hybrid should be far below the all-remote baseline, got %.3f", v[1])
	}
	if !strings.Contains(rep.Render(), "hybrid") {
		t.Error("render broken")
	}
}
