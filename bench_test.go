package c3_test

// The benchmark harness: one testing.B benchmark per table/figure of the
// paper's evaluation, each driving the same experiment code cmd/c3bench
// uses (at reduced scale — see EXPERIMENTS.md for paper-scale settings),
// plus protocol micro-benchmarks.
//
// Run with: go test -bench=. -benchmem

import (
	"testing"

	"c3"
)

// BenchmarkTableIV runs the litmus matrix of Table IV: 7 tests x
// {MESI-CXL-MESI, MESI-CXL-MOESI} x {Arm-Arm, TSO-Arm, TSO-TSO}.
func BenchmarkTableIV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := c3.TableIV(4, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if !rep.AllPass() {
			b.Fatalf("forbidden outcomes: %v", rep.Details)
		}
	}
}

// BenchmarkFig9 runs the MCM-mix comparison (ARM-ARM vs mixed vs
// TSO-TSO on homogeneous and heterogeneous protocol setups).
func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := c3.Fig9(c3.ExpOptions{
			CoresPerCluster: 2, OpsScale: 0.1, Seed: int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, pc := range c3.Fig9ProtoCombos() {
			if rep.Norm[pc]["TSO-TSO"] == nil {
				b.Fatal("missing TSO-TSO series")
			}
		}
	}
}

// BenchmarkFig10 runs all 33 workloads on the four protocol
// combinations and reports the normalized slowdowns.
func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := c3.Fig10(c3.ExpOptions{
			CoresPerCluster: 2, OpsScale: 0.1, Seed: int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, combo := range c3.Fig10Combos() {
				b.Logf("%s: geomean %.3f range %.3f-%.3f", combo,
					rep.Mean[combo], rep.Range[combo][0], rep.Range[combo][1])
			}
		}
	}
}

// BenchmarkFig11 runs the miss-latency breakdowns for the paper's
// selected workloads (histogram, barnes, lu-ncont, vips).
func BenchmarkFig11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := c3.Fig11(c3.ExpOptions{
			CoresPerCluster: 2, OpsScale: 0.2, Seed: int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Breakdown) != 4 {
			b.Fatalf("expected 4 workloads, got %d", len(rep.Breakdown))
		}
	}
}

// BenchmarkGenerate measures compound-FSM synthesis (the c3gen path).
func BenchmarkGenerate(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c3.GenerateTable("moesi", "cxl"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorkloadThroughput measures raw simulation speed on one
// representative kernel (simulated cycles per wall-clock run).
func BenchmarkWorkloadThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := c3.RunWorkload("canneal", c3.WorkloadConfig{
			CoresPerCluster: 2, OpsScale: 0.2, Seed: int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		if r.Time == 0 {
			b.Fatal("empty run")
		}
	}
}

// BenchmarkVerifyMP measures the model checker on the MP shape.
func BenchmarkVerifyMP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := c3.Verify("MP", c3.VerifyConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}
