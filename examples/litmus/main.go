// Litmus walks through the paper's correctness methodology on one test:
// store buffering (SB), the classic x86 relaxation.
//
//  1. Fully synchronized, the forbidden outcome (both loads read 0)
//     never appears — C3 preserves each cluster's consistency model.
//  2. With fences stripped (the paper's control), the outcome appears:
//     the tests are not passing vacuously.
//  3. Exhaustive model checking confirms the synchronized variant has no
//     reachable forbidden state at all.
//
// Run with: go run ./examples/litmus
package main

import (
	"fmt"
	"log"
	"sort"

	"c3"
)

func main() {
	cfg := c3.LitmusConfig{
		Locals: [2]string{"mesi", "mesi"},
		MCMs:   [2]c3.MCM{c3.TSO, c3.TSO},
		Iters:  400,
		Seed:   11,
	}

	fmt.Println("SB with store->load fences (TSO clusters):")
	res, err := c3.RunLitmus("SB", cfg)
	if err != nil {
		log.Fatal(err)
	}
	printOutcomes(res)
	if res.Forbidden != 0 {
		log.Fatal("forbidden outcome under full synchronization!")
	}

	fmt.Println("\nSB with fences stripped (control — TSO's store buffers show):")
	cfg.Unsynced = true
	res, err = c3.RunLitmus("SB", cfg)
	if err != nil {
		log.Fatal(err)
	}
	printOutcomes(res)
	if res.Forbidden == 0 {
		fmt.Println("(the relaxed outcome is timing-dependent; try more -iters)")
	} else {
		fmt.Printf("=> the relaxed outcome appeared %d times: the harness can\n", res.Forbidden)
		fmt.Println("   detect violations, so the clean run above is meaningful.")
	}

	fmt.Println("\nExhaustive model check of the synchronized variant:")
	rep, err := c3.Verify("SB", c3.VerifyConfig{MCMs: [2]c3.MCM{c3.TSO, c3.TSO}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("explored %d states, %d terminal outcomes — no forbidden state reachable.\n",
		rep.States, rep.Outcomes)
}

func printOutcomes(res *c3.LitmusResult) {
	var keys []string
	for k := range res.Outcomes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %6d  %s\n", res.Outcomes[k], k)
	}
}
