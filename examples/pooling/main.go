// Pooling demonstrates the paper's motivating scenario (Fig. 1 and
// Sec. IV-D2): heterogeneous compute — a CPU cluster with an
// invalidation-based protocol and a GPU-style cluster with
// release-consistency coherence (RCC) — sharing one cache-coherent CXL
// memory pool.
//
// A producer on the RCC cluster fills a buffer and publishes it with a
// store-release (Fig. 8's flow: C3 acquires global ownership before
// acking the release); a consumer on the MESI/TSO cluster spins on the
// flag and then reads the buffer. The example drives the system through
// the low-level API (System.Raw) to show how custom instruction sources
// plug in.
//
// Run with: go run ./examples/pooling
package main

import (
	"fmt"
	"log"

	"c3"
	"c3/internal/cpu"
	"c3/internal/mem"
)

const (
	bufBase  = mem.Addr(0x50000)
	bufWords = 16
	flagAddr = bufBase + bufWords*mem.LineBytes
)

func main() {
	sys, err := c3.NewSystem(c3.Config{
		Global: "cxl",
		Clusters: []c3.Cluster{
			{Protocol: "rcc", MCM: c3.ARM, Cores: 1},  // the accelerator
			{Protocol: "mesi", MCM: c3.TSO, Cores: 1}, // the host CPU
		},
		Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("machine: %s\n", sys.Proto())

	// Producer (RCC): write the buffer, then release-store the flag.
	var prog []cpu.Instr
	for i := 0; i < bufWords; i++ {
		prog = append(prog, cpu.Instr{Kind: cpu.Store,
			Addr: bufBase + mem.Addr(i)*mem.LineBytes, Val: uint64(100 + i)})
	}
	prog = append(prog, cpu.Instr{Kind: cpu.Store, Addr: flagAddr, Val: 1, Rel: true})
	producer := cpu.NewSliceSource(prog)

	// Consumer (MESI/TSO): acquire-spin on the flag, then read the
	// buffer back.
	var got []uint64
	stage := 0
	consumer := &cpu.FuncSource{
		NextFn: func() (cpu.Instr, bool) {
			switch {
			case stage == 0:
				return cpu.Instr{Kind: cpu.Load, Addr: flagAddr, Reg: 0, Acq: true,
					CtrlDep: true}, true
			case stage <= bufWords:
				return cpu.Instr{Kind: cpu.Load,
					Addr: bufBase + mem.Addr(stage-1)*mem.LineBytes, Reg: stage}, true
			}
			return cpu.Instr{}, false
		},
		CompleteFn: func(in cpu.Instr, v uint64) {
			switch {
			case stage == 0 && in.Reg == 0 && v == 1:
				stage = 1
			case stage >= 1 && in.Reg == stage:
				got = append(got, v)
				stage++
			}
		},
	}

	raw := sys.Raw()
	raw.AttachSource(0, 0, producer)
	raw.AttachSource(1, 0, consumer)
	if !raw.Run(50_000_000) {
		log.Fatal("system wedged")
	}

	fmt.Printf("consumer observed %d words after the release: %v...\n", len(got), got[:4])
	for i, v := range got {
		if v != uint64(100+i) {
			log.Fatalf("word %d: got %d, want %d — release visibility broken", i, v, 100+i)
		}
	}
	fmt.Println("every pre-release write was visible: C3 bridged RCC and MESI/TSO correctly.")
	fmt.Printf("finished at t=%d cycles; C3[rcc] delegated %d flows, C3[mesi] %d.\n",
		raw.Time(), raw.Clusters[0].C3.Stats.Delegations, raw.Clusters[1].C3.Stats.Delegations)
}
