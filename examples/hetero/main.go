// Hetero reproduces the paper's headline comparison in miniature: how
// much does CXL-based heterogeneous coherence cost relative to a native
// unified protocol?
//
// It runs a CXL-sensitive kernel (histogram) and an insensitive one
// (vips) on three machines — the MESI-MESI-MESI baseline, a homogeneous
// MESI-CXL-MESI system, and a fully heterogeneous MESI-CXL-MOESI system
// with mixed TSO/weak cores — and prints the slowdowns.
//
// Run with: go run ./examples/hetero
package main

import (
	"fmt"
	"log"

	"c3"
)

type machine struct {
	name   string
	global string
	locals [2]string
	mcms   [2]c3.MCM
}

func main() {
	machines := []machine{
		{"MESI-MESI-MESI (native baseline)", "hmesi", [2]string{"mesi", "mesi"}, [2]c3.MCM{c3.ARM, c3.ARM}},
		{"MESI-CXL-MESI (homogeneous CXL)", "cxl", [2]string{"mesi", "mesi"}, [2]c3.MCM{c3.ARM, c3.ARM}},
		{"MESI-CXL-MOESI + TSO/ARM (heterogeneous)", "cxl", [2]string{"mesi", "moesi"}, [2]c3.MCM{c3.TSO, c3.ARM}},
	}
	for _, w := range []string{"histogram", "vips"} {
		fmt.Printf("--- %s ---\n", w)
		var base float64
		for i, m := range machines {
			run, err := c3.RunWorkload(w, c3.WorkloadConfig{
				Global: m.global, Locals: m.locals, MCMs: m.mcms,
				CoresPerCluster: 2, OpsScale: 0.5, Seed: 3,
			})
			if err != nil {
				log.Fatal(err)
			}
			if i == 0 {
				base = float64(run.Time)
			}
			fmt.Printf("%-42s %9d cycles  (%.2fx)\n", m.name, run.Time, float64(run.Time)/base)
		}
		fmt.Println()
	}
	fmt.Println("histogram's hot cross-cluster lines pay CXL's longer, blocking")
	fmt.Println("directory flows; vips's private streaming barely notices.")
}
