// Quickstart: the three faces of the C3 library in one program.
//
//  1. Synthesize a C3 compound controller for a protocol pairing and
//     inspect its translation table (the paper's Table II).
//  2. Run one of the paper's workload kernels on a heterogeneous
//     two-cluster CXL system and read the performance counters.
//  3. Run a litmus test to see the memory-consistency guarantees hold.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"c3"
)

func main() {
	// --- 1. Protocol synthesis -------------------------------------
	table, err := c3.GenerateTable("moesi", "cxl")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("C3 compound controller for a MOESI host cluster on CXL:")
	for _, line := range strings.Split(table.Render(), "\n") {
		// Print the header and the BISnp rows (the device-initiated
		// flows of the paper's Table II).
		if strings.HasPrefix(line, "C3 ") || strings.Contains(line, "snp:") ||
			strings.HasPrefix(line, "Message") || strings.HasPrefix(line, "Forbidden") {
			fmt.Println(line)
		}
	}
	fmt.Println()

	// --- 2. Simulation ---------------------------------------------
	// A two-cluster machine: a MESI cluster and a MOESI cluster share
	// CXL-attached memory. Run the histogram kernel (hot shared bins).
	run, err := c3.RunWorkload("histogram", c3.WorkloadConfig{
		Global:          "cxl",
		Locals:          [2]string{"mesi", "moesi"},
		MCMs:            [2]c3.MCM{c3.TSO, c3.ARM},
		CoresPerCluster: 2,
		OpsScale:        0.25,
		Seed:            42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("histogram on %s: %d cycles, MPKI %.1f\n", run.Config, run.Time, run.Miss.MPKI())
	fmt.Printf("miss-cycle breakdown:\n%s\n", run.Miss.Render())

	// --- 3. Correctness ---------------------------------------------
	// Message passing between a TSO cluster and a weak (Arm-like)
	// cluster: the forbidden outcome must never appear when the code is
	// properly synchronized.
	res, err := c3.RunLitmus("MP", c3.LitmusConfig{
		Locals: [2]string{"mesi", "moesi"},
		MCMs:   [2]c3.MCM{c3.TSO, c3.ARM},
		Iters:  200,
		Seed:   7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("litmus MP: %d runs, %d distinct outcomes, %d forbidden\n",
		res.Iters, res.Distinct, res.Forbidden)
	if res.Forbidden != 0 {
		log.Fatalf("consistency violated: %s", res.ForbiddenExample)
	}
	fmt.Println("memory consistency preserved across the heterogeneous system.")
}
