package verif

import (
	"errors"
	"testing"
	"time"

	"c3/internal/litmus"
)

// TestCheckerMemShedEquivalence pins the degradation contract: under an
// impossible heap budget the checker sheds its way down to
// replay-from-root — and the exploration result (states, terminals,
// outcomes, depth) is identical to an unconstrained run. Degradation
// trades Builds for memory, never coverage.
func TestCheckerMemShedEquivalence(t *testing.T) {
	// The unsynced MP space is wide enough for the frontier to carry real
	// snapshot weight (the full-sync space is under 200 states).
	mcfg := mpCXL(t, litmus.SyncNone)
	base, err := Check(mcfg, CheckerConfig{MaxStates: 3_000, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if base.MemSheds != 0 {
		t.Fatalf("unconstrained run shed %d times", base.MemSheds)
	}
	if base.SnapshotBudgetEnd != 4096 {
		t.Fatalf("unconstrained run ended with budget %d, want the 4096 default", base.SnapshotBudgetEnd)
	}

	// 1 byte: every heap sample is over budget, so the checker sheds at
	// each sampling stride until the budget bottoms out at zero.
	shed, err := Check(mcfg, CheckerConfig{MaxStates: 3_000, Workers: 1, MemBudget: 1, MemSampleEvery: 16})
	if err != nil {
		t.Fatal(err)
	}
	if shed.MemSheds == 0 {
		t.Fatal("impossible memory budget triggered no shedding")
	}
	if shed.SnapshotBudgetEnd != 0 {
		t.Fatalf("budget ended at %d, want 0 (full replay-from-root degradation)", shed.SnapshotBudgetEnd)
	}
	if shed.Builds <= base.Builds {
		t.Fatalf("shedding did not shift cost to replays: %d builds vs %d unconstrained",
			shed.Builds, base.Builds)
	}
	reportsEqual(t, "mem-shed", base, shed)
}

// TestCheckerDeadline: a passed deadline aborts the exploration with a
// partial report and an error wrapping ErrCheckDeadline.
func TestCheckerDeadline(t *testing.T) {
	mcfg := mpCXL(t, litmus.SyncFull)
	rep, err := Check(mcfg, CheckerConfig{Deadline: time.Now().Add(-time.Second)})
	if !errors.Is(err, ErrCheckDeadline) {
		t.Fatalf("err = %v, want ErrCheckDeadline", err)
	}
	if rep == nil || rep.States == 0 {
		t.Fatalf("no partial report alongside the deadline error: %+v", rep)
	}
	full, err := Check(mcfg, CheckerConfig{MaxStates: 20_000, Deadline: time.Now().Add(time.Hour)})
	if err != nil {
		t.Fatalf("generous deadline aborted the run: %v", err)
	}
	if !full.Truncated && full.Terminals == 0 {
		t.Fatalf("exploration under a generous deadline went nowhere: %+v", full)
	}
}

// TestCheckerInterrupt: a closed interrupt channel stops the exploration
// at the next poll with a partial report and ErrCheckInterrupted.
func TestCheckerInterrupt(t *testing.T) {
	mcfg := mpCXL(t, litmus.SyncFull)
	stop := make(chan struct{})
	close(stop)
	rep, err := Check(mcfg, CheckerConfig{Interrupt: stop})
	if !errors.Is(err, ErrCheckInterrupted) {
		t.Fatalf("err = %v, want ErrCheckInterrupted", err)
	}
	if rep == nil {
		t.Fatal("no partial report alongside the interrupt error")
	}
	// An open channel must not disturb the run.
	open := make(chan struct{})
	if _, err := Check(mcfg, CheckerConfig{MaxStates: 3_000, Interrupt: open}); err != nil {
		t.Fatalf("open interrupt channel aborted the run: %v", err)
	}
}
