package verif

import (
	"fmt"
	"strings"

	"c3/internal/system"
)

// CheckHostIsolation verifies the post-crash isolation invariant: once
// the fabric has declared a host dead and its reclamation walk ran, no
// directory or snoop-filter entry may still name it. A violation means
// a surviving transaction could still wait on — or grant rights to — a
// host that will never answer.
func CheckHostIsolation(s *system.System) error {
	if v := s.DeadHostIsolationViolations(); len(v) > 0 {
		return fmt.Errorf("verif: dead-host isolation violated:\n  %s",
			strings.Join(v, "\n  "))
	}
	return nil
}
