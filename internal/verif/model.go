package verif

import (
	"fmt"
	"hash/fnv"
	"io"
	"sort"

	"c3/internal/cache"
	"c3/internal/core"
	"c3/internal/cpu"
	"c3/internal/gen"
	"c3/internal/litmus"
	"c3/internal/mem"
	"c3/internal/msg"
	"c3/internal/protocol/cxl"
	"c3/internal/protocol/hmesi"
	"c3/internal/protocol/hostproto"
	"c3/internal/sim"
	"c3/internal/ssp"
)

// ModelConfig describes the (small) system under verification.
type ModelConfig struct {
	Test   litmus.Test
	Locals [2]string
	Global string
	MCMs   [2]cpu.MCM
	Sync   litmus.SyncMode
	// TinyLLC forces CXL-cache evictions into the explored space.
	TinyLLC bool
}

// Model is one instantiated system plus the handles the explorer needs.
type Model struct {
	cfg    ModelConfig
	K      *sim.Kernel
	Fabric *ChoiceFabric

	cores []*cpu.Core
	srcs  []*cpu.SliceSource
	l1s   []*hostL1 // per thread
	c3s   []*core.C3
	dram  *mem.DRAM
	// one of:
	dcoh *cxl.DCOH
	hdir *hmesi.Dir

	dumpers []interface{ DumpState(io.Writer) }

	// addrLines caches the sorted line addresses of the test's variables.
	// Computed once at Build and shared (read-only) by every clone: the
	// invariant checks walk it for each expanded state.
	addrLines []mem.LineAddr

	// released makes Release idempotent and keeps the modelsLive pool
	// accounting exact even if a model reaches two release paths.
	released bool
}

type hostL1 struct {
	l1      *hostproto.L1
	cache   *cache.Cache
	cluster int
}

// Build instantiates a fresh model (deterministic).
func Build(cfg ModelConfig) (*Model, error) {
	gspec, ok := ssp.Global(cfg.Global)
	if !ok {
		return nil, fmt.Errorf("verif: unknown global %q", cfg.Global)
	}
	m := &Model{cfg: cfg, K: &sim.Kernel{}}

	const dirID = msg.NodeID(1)
	crossNode := func(id msg.NodeID) bool { return id == dirID || id == 2 || id == 3 }
	m.Fabric = NewChoiceFabric(func(mm *msg.Msg) bool {
		// The CXL fabric reorders requests and snoops between C3s and
		// the directory; responses and intra-cluster links stay FIFO.
		return mm.VNet != msg.VRsp && crossNode(mm.Src) && crossNode(mm.Dst)
	})
	m.Fabric.CrossFabric = func(mm *msg.Msg) bool {
		return crossNode(mm.Src) && crossNode(mm.Dst)
	}
	m.dram = mem.NewDRAM(m.K, mem.DRAMConfig{AccessLatency: 1, BytesPerCycle: 64})

	if gspec.Params.ConflictHandshake {
		d := newDCOH(dirID, m)
		m.dcoh = d
	} else {
		d := newHDir(dirID, m)
		m.hdir = d
	}

	// Node ids: 1 dir, 2..3 the two C3s, 4.. the L1s.
	next := msg.NodeID(4)
	perCluster := [2]int{}
	for i := range cfg.Test.Threads {
		perCluster[i%2]++
	}
	for ci := 0; ci < 2; ci++ {
		lspec, ok := ssp.Local(cfg.Locals[ci])
		if !ok {
			return nil, fmt.Errorf("verif: unknown local %q", cfg.Locals[ci])
		}
		table, err := gen.Generate(lspec, gspec)
		if err != nil {
			return nil, err
		}
		// Small structures keep replay cheap; litmus footprints are a
		// couple of lines. TinyLLC shrinks further to force Fig. 7
		// evictions into the explored space.
		llcSize := 8 * 1024
		if cfg.TinyLLC {
			llcSize = 2 * mem.LineBytes * 2 // 2 sets x 2 ways
		}
		c3 := core.New(core.Config{
			ID: msg.NodeID(2 + ci), GlobalDir: dirID, Kernel: m.K,
			LocalNet: m.Fabric, GlobalNet: m.Fabric, Table: table,
			LLCSize: llcSize, LLCWays: 2, Lat: 1,
		})
		m.Fabric.Register(msg.NodeID(2+ci), c3)
		m.c3s = append(m.c3s, c3)
		_ = next
	}
	// Threads round-robin across clusters, one L1 + core each.
	for ti, th := range cfg.Test.Threads {
		ci := ti % 2
		l1 := newL1For(cfg.Locals[ci], next, msg.NodeID(2+ci), m)
		m.Fabric.Register(next, l1)
		next++
		eff := th
		switch cfg.Sync {
		case litmus.SyncFull:
			eff = litmus.Refine(th, cfg.MCMs[ci])
		case litmus.SyncNone:
			eff = litmus.Strip(th)
		}
		src := cpu.NewSliceSource(toProgram(cfg.Test, eff))
		ccfg := cpu.DefaultConfig(cfg.MCMs[ci])
		c := cpu.New(ti, m.K, ccfg, l1, src, nil)
		m.cores = append(m.cores, c)
		m.srcs = append(m.srcs, src)
		m.l1s = append(m.l1s, &hostL1{l1: l1, cache: l1.Cache(), cluster: ci})
	}

	for _, c := range m.cores {
		m.dumpers = append(m.dumpers, c)
	}
	for _, l := range m.l1s {
		m.dumpers = append(m.dumpers, l.l1)
	}
	for _, c3 := range m.c3s {
		m.dumpers = append(m.dumpers, c3)
	}
	if m.dcoh != nil {
		m.dumpers = append(m.dumpers, m.dcoh)
	}
	if m.hdir != nil {
		m.dumpers = append(m.dumpers, m.hdir)
	}
	m.dumpers = append(m.dumpers, m.dram)
	for _, v := range cfg.Test.Vars {
		m.addrLines = append(m.addrLines, varAddrOf(cfg.Test, v).Line())
	}
	sort.Slice(m.addrLines, func(i, j int) bool { return m.addrLines[i] < m.addrLines[j] })
	modelsLive.Add(1)
	return m, nil
}

// Start launches cores and quiesces internal events.
func (m *Model) Start() {
	for _, c := range m.cores {
		c.Start()
	}
	m.Quiesce()
}

// Quiesce drains all kernel events (controller latencies, core pumps,
// DRAM callbacks). Message deliveries happen only through the fabric, so
// this always terminates.
func (m *Model) Quiesce() {
	if !m.K.RunLimit(1_000_000) {
		panic("verif: kernel did not quiesce")
	}
}

// Step delivers one fabric action and quiesces.
func (m *Model) Step(a Action) {
	m.Fabric.Deliver(a)
	m.Quiesce()
}

// AllFinished reports whether every core retired its program.
func (m *Model) AllFinished() bool {
	for _, c := range m.cores {
		if !c.Finished() {
			return false
		}
	}
	return true
}

// Hash fingerprints the full architectural state.
func (m *Model) Hash() uint64 {
	h := fnv.New64a()
	for _, d := range m.dumpers {
		d.DumpState(h)
	}
	m.Fabric.DumpState(h)
	return h.Sum64()
}

// Outcome gathers thread registers and final memory values. An error
// means the terminal state is incoherent (conflicting exclusive owners,
// a line still busy, or disagreeing shared copies) — the checker
// surfaces it as a VInvariant counterexample rather than panicking.
func (m *Model) Outcome() (litmus.Outcome, error) {
	o := litmus.Outcome{}
	for i, src := range m.srcs {
		for reg, val := range src.Regs {
			o[litmus.Key(i, reg)] = val
		}
	}
	for _, v := range m.cfg.Test.Vars {
		addr := varAddrOf(m.cfg.Test, v)
		val, err := m.finalValue(addr.Line())
		if err != nil {
			return nil, err
		}
		o[string(v)] = val.Word(addr.WordIndex())
	}
	return o, nil
}

// finalValue resolves the authoritative copy of a line at a terminal
// state and checks that all valid copies agree where they must.
func (m *Model) finalValue(a mem.LineAddr) (mem.Data, error) {
	// An exclusive host copy is authoritative.
	var owners []mem.Data
	var shared []mem.Data
	for _, l := range m.l1s {
		if e := l.cache.ProbeRO(a); e != nil {
			switch e.State {
			case 3, 4: // stM, stO (hostproto encoding)
				owners = append(owners, e.Data)
			case 1, 2, 5: // stS, stE, stF
				if e.State == 2 { // E may be silently dirty
					owners = append(owners, e.Data)
				} else {
					shared = append(shared, e.Data)
				}
			}
		}
	}
	if len(owners) > 1 {
		return mem.Data{}, fmt.Errorf("verif: %d exclusive owners of %v", len(owners), a)
	}
	if len(owners) == 1 {
		return owners[0], nil
	}
	// Next: a dirty CXL-cache copy.
	for _, c3 := range m.c3s {
		l, g, busy := c3.CompoundOf(a)
		_ = l
		if busy {
			return mem.Data{}, fmt.Errorf("verif: line %v busy at terminal state", a)
		}
		if g == ssp.ClsM || g == ssp.ClsE {
			if d, ok := c3.LLCData(a); ok {
				return d, nil
			}
		}
	}
	if len(shared) > 0 {
		for _, s := range shared[1:] {
			if s != shared[0] {
				return mem.Data{}, fmt.Errorf("verif: shared copies of %v disagree", a)
			}
		}
		return shared[0], nil
	}
	return m.dram.Peek(a), nil
}

func toProgram(t litmus.Test, th litmus.Thread) []cpu.Instr {
	prog := make([]cpu.Instr, 0, len(th))
	for _, op := range th {
		in := cpu.Instr{Kind: op.Kind, Val: op.Val, Reg: op.Reg, Acq: op.Acq, Rel: op.Rel}
		if op.Kind.IsMem() {
			in.Addr = varAddrOf(t, op.V)
		}
		prog = append(prog, in)
	}
	return prog
}

func varAddrOf(t litmus.Test, v litmus.Var) mem.Addr {
	for i, x := range t.Vars {
		if x == v {
			return mem.Addr(0x40000 + i*mem.LineBytes)
		}
	}
	panic("verif: unknown var")
}

// lines returns the sorted line addresses of interest (the test's
// variables), cached at Build and shared read-only across clones.
func (m *Model) lines() []mem.LineAddr { return m.addrLines }
