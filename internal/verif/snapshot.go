package verif

// Clone returns a deep copy of a quiescent model: an independent system
// whose every component — kernel clock, cores, store buffers, host
// caches, C3 controllers, global directory, DRAM, and in-flight fabric
// messages — is copied, so delivering a message to the clone leaves the
// original untouched. The checker uses it to expand a frontier state's
// successors without re-executing the delivery prefix from the root.
//
// Cloning is only defined at quiescent points (the only states the
// checker visits): the kernel queue must be empty, which guarantees no
// event closures reference the old graph. The one cross-component link
// that outlives quiescence — an L1's pending core completions — is
// rebuilt from request tokens (see cpu.Request.Token and cpu.Core.Resume).
//
// Clone is read-only on the receiver, so several successors of the same
// parent may be cloned concurrently.
func (m *Model) Clone() *Model {
	n := &Model{cfg: m.cfg, K: m.K.Clone()}
	n.Fabric = m.Fabric.Clone()
	n.dram = m.dram.Clone(n.K)
	if m.dcoh != nil {
		n.dcoh = m.dcoh.Clone(n.K, n.Fabric, n.dram)
		n.Fabric.Register(n.dcoh.ID(), n.dcoh)
	}
	if m.hdir != nil {
		n.hdir = m.hdir.Clone(n.K, n.Fabric, n.dram)
		n.Fabric.Register(n.hdir.ID(), n.hdir)
	}
	for _, c3 := range m.c3s {
		nc := c3.Clone(n.K, n.Fabric, n.Fabric)
		n.Fabric.Register(nc.ID(), nc)
		n.c3s = append(n.c3s, nc)
	}
	for i, c := range m.cores {
		src := m.srcs[i].Clone()
		nc := c.Clone(n.K, src)
		l1 := m.l1s[i].l1.Clone(n.K, n.Fabric, nc.Resume)
		nc.BindL1(l1)
		n.Fabric.Register(l1.ID(), l1)
		n.cores = append(n.cores, nc)
		n.srcs = append(n.srcs, src)
		n.l1s = append(n.l1s, &hostL1{l1: l1, cache: l1.Cache(), cluster: m.l1s[i].cluster})
	}
	// Dumpers in Build's order, so Hash sees states identically whether a
	// model was built or cloned.
	for _, c := range n.cores {
		n.dumpers = append(n.dumpers, c)
	}
	for _, l := range n.l1s {
		n.dumpers = append(n.dumpers, l.l1)
	}
	for _, c3 := range n.c3s {
		n.dumpers = append(n.dumpers, c3)
	}
	if n.dcoh != nil {
		n.dumpers = append(n.dumpers, n.dcoh)
	}
	if n.hdir != nil {
		n.dumpers = append(n.dumpers, n.hdir)
	}
	n.dumpers = append(n.dumpers, n.dram)
	return n
}
