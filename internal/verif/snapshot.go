package verif

import (
	"io"
	"sync/atomic"

	"c3/internal/core"
	"c3/internal/cpu"
)

// modelsLive counts models built or cloned and not yet released — the
// pool-accounting signal behind the leak regression tests: after a
// checker run returns (on any path, including violations and aborts),
// every model it created must have been released.
var modelsLive atomic.Int64

// ModelsLive reports the number of live (unreleased) models in the
// process. Test instrumentation.
func ModelsLive() int64 { return modelsLive.Load() }

// Clone returns a deep copy of a quiescent model: an independent system
// whose every component — kernel clock, cores, store buffers, host
// caches, C3 controllers, global directory, DRAM, and in-flight fabric
// messages — is copied, so delivering a message to the clone leaves the
// original untouched. The checker uses it to expand a frontier state's
// successors without re-executing the delivery prefix from the root.
//
// The big flat arrays — cache frame slabs and the DRAM line store —
// clone copy-on-write: the clone shares the parent's backing under a
// refcount and a private copy materializes only on the first mutating
// access (see cache.Cache and mem.DRAM). A successor that hashes to an
// already-visited state is therefore cloned, stepped, hashed, and
// discarded without ever copying the arrays its step left untouched.
//
// Cloning is only defined at quiescent points (the only states the
// checker visits): the kernel queue must be empty, which guarantees no
// event closures reference the old graph. The one cross-component link
// that outlives quiescence — an L1's pending core completions — is
// rebuilt from request tokens (see cpu.Request.Token and cpu.Core.Resume).
//
// Clone is read-only on the receiver except for the COW refcounts, so
// several successors of the same parent may be cloned concurrently.
func (m *Model) Clone() *Model {
	n := &Model{cfg: m.cfg, K: m.K.Clone(), addrLines: m.addrLines}
	n.Fabric = m.Fabric.Clone()
	n.dram = m.dram.Clone(n.K)
	if m.dcoh != nil {
		n.dcoh = m.dcoh.Clone(n.K, n.Fabric, n.dram)
		n.Fabric.Register(n.dcoh.ID(), n.dcoh)
	}
	if m.hdir != nil {
		n.hdir = m.hdir.Clone(n.K, n.Fabric, n.dram)
		n.Fabric.Register(n.hdir.ID(), n.hdir)
	}
	n.c3s = make([]*core.C3, 0, len(m.c3s))
	for _, c3 := range m.c3s {
		nc := c3.Clone(n.K, n.Fabric, n.Fabric)
		n.Fabric.Register(nc.ID(), nc)
		n.c3s = append(n.c3s, nc)
	}
	n.cores = make([]*cpu.Core, 0, len(m.cores))
	n.srcs = make([]*cpu.SliceSource, 0, len(m.srcs))
	n.l1s = make([]*hostL1, 0, len(m.l1s))
	hls := make([]hostL1, len(m.l1s))
	for i, c := range m.cores {
		src := m.srcs[i].Clone()
		nc := c.Clone(n.K, src)
		l1 := m.l1s[i].l1.Clone(n.K, n.Fabric, nc.Resume)
		nc.BindL1(l1)
		n.Fabric.Register(l1.ID(), l1)
		n.cores = append(n.cores, nc)
		n.srcs = append(n.srcs, src)
		hls[i] = hostL1{l1: l1, cache: l1.Cache(), cluster: m.l1s[i].cluster}
		n.l1s = append(n.l1s, &hls[i])
	}
	// Dumpers in Build's order, so Hash sees states identically whether a
	// model was built or cloned.
	n.dumpers = make([]interface{ DumpState(io.Writer) }, 0, len(m.dumpers))
	for _, c := range n.cores {
		n.dumpers = append(n.dumpers, c)
	}
	for _, l := range n.l1s {
		n.dumpers = append(n.dumpers, l.l1)
	}
	for _, c3 := range n.c3s {
		n.dumpers = append(n.dumpers, c3)
	}
	if n.dcoh != nil {
		n.dumpers = append(n.dumpers, n.dcoh)
	}
	if n.hdir != nil {
		n.dumpers = append(n.dumpers, n.hdir)
	}
	n.dumpers = append(n.dumpers, n.dram)
	modelsLive.Add(1)
	return n
}

// Release retires the model, dropping its references to the COW slabs
// behind every cache and the DRAM store so sole-owned backings recycle
// through their pools. The model must not be used afterwards. Calling
// Release is optional (unreleased backings are garbage collected); the
// checker releases expanded bases, duplicate successors, and
// budget-dropped snapshots to keep the clone hot path allocation-free.
func (m *Model) Release() {
	if m.released {
		return
	}
	m.released = true
	modelsLive.Add(-1)
	for _, l := range m.l1s {
		l.cache.Release()
	}
	for _, c3 := range m.c3s {
		c3.ReleaseLLC()
	}
	m.dram.Release()
}

// Materialize forces private copies of every COW backing now, turning a
// copy-on-write clone into the eager deep copy the pre-COW checker
// made. The deep-copy cross-check mode uses it to demonstrate the two
// strategies produce identical Reports.
func (m *Model) Materialize() {
	for _, l := range m.l1s {
		l.cache.Materialize()
	}
	for _, c3 := range m.c3s {
		c3.MaterializeLLC()
	}
	m.dram.Materialize()
}
