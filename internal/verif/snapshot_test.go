package verif

import (
	"testing"

	"c3/internal/cpu"
	"c3/internal/litmus"
)

// mpCXL is the canonical small configuration for snapshot tests.
func mpCXL(t testing.TB, sync litmus.SyncMode) ModelConfig {
	tc, ok := litmus.ByName("MP")
	if !ok {
		t.Fatal("no MP test")
	}
	return ModelConfig{
		Test:   tc,
		Locals: [2]string{"mesi", "mesi"},
		Global: "cxl",
		MCMs:   [2]cpu.MCM{cpu.WMO, cpu.WMO},
		Sync:   sync,
	}
}

// TestCloneIsolation: a clone hashes identically to its parent, and
// stepping either one leaves the other untouched.
func TestCloneIsolation(t *testing.T) {
	m, err := Build(mpCXL(t, litmus.SyncFull))
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	h0 := m.Hash()
	c := m.Clone()
	if c.Hash() != h0 {
		t.Fatal("clone hash differs from parent")
	}
	acts := c.Fabric.Enabled()
	if len(acts) == 0 {
		t.Fatal("no enabled actions at root")
	}
	c.Step(acts[0])
	if m.Hash() != h0 {
		t.Fatal("stepping the clone mutated the parent")
	}
	m.Step(m.Fabric.Enabled()[0])
	if m.Hash() != c.Hash() {
		t.Fatal("same delivery on parent and clone diverged")
	}
}

// TestCloneMatchesReplayDeepPath walks one delivery path two ways —
// snapshot-cloning at every step versus re-executing the grown prefix on
// a fresh model — and demands identical state hashes throughout. This is
// the per-step form of the snapshot/replay equivalence the checker
// relies on.
func TestCloneMatchesReplayDeepPath(t *testing.T) {
	mcfg := mpCXL(t, litmus.SyncFull)
	cur, err := Build(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	cur.Start()
	var path []uint16
	for step := 0; step < 12; step++ {
		acts := cur.Fabric.Enabled()
		if len(acts) == 0 {
			break
		}
		ai := step % len(acts)
		next := cur.Clone()
		next.Step(next.Fabric.Enabled()[ai])
		path = append(path, uint16(ai))

		fresh, err := Build(mcfg)
		if err != nil {
			t.Fatal(err)
		}
		fresh.Start()
		for _, pi := range path {
			fresh.Step(fresh.Fabric.Enabled()[pi])
		}
		if next.Hash() != fresh.Hash() {
			t.Fatalf("step %d (path %v): clone hash != replay hash", step, path)
		}
		cur = next
	}
}

func reportsEqual(t *testing.T, label string, a, b *Report) {
	t.Helper()
	if a.States != b.States || a.Terminals != b.Terminals ||
		a.Truncated != b.Truncated || a.MaxDepth != b.MaxDepth ||
		a.ForbiddenSkipped != b.ForbiddenSkipped || len(a.Outcomes) != len(b.Outcomes) {
		t.Fatalf("%s: reports differ:\n  %+v\n  %+v", label, a, b)
	}
	for o := range a.Outcomes {
		if !b.Outcomes[o] {
			t.Fatalf("%s: outcome %q missing", label, o)
		}
	}
}

// TestSnapshotMatchesReplayFromRoot: the snapshot checker and the
// replay-from-root checker must produce identical Reports (everything
// except the Builds/Clones cost counters) on the same configuration —
// including under truncation, relaxed sync, eviction pressure, a
// starved SnapshotBudget, and parallel expansion.
func TestSnapshotMatchesReplayFromRoot(t *testing.T) {
	configs := []struct {
		name string
		mcfg ModelConfig
		max  uint64
	}{
		{"MP-full", mpCXL(t, litmus.SyncFull), 60_000},
		{"MP-unsynced-truncated", mpCXL(t, litmus.SyncNone), 3_000},
	}
	{
		mcfg := mpCXL(t, litmus.SyncFull)
		mcfg.TinyLLC = true
		configs = append(configs, struct {
			name string
			mcfg ModelConfig
			max  uint64
		}{"MP-tinyllc", mcfg, 20_000})
	}
	for _, c := range configs {
		base, err := Check(c.mcfg, CheckerConfig{MaxStates: c.max, Workers: 1})
		if err != nil {
			t.Fatalf("%s snapshot: %v", c.name, err)
		}
		variants := []CheckerConfig{
			{MaxStates: c.max, Workers: 1, ReplayFromRoot: true},
			{MaxStates: c.max, Workers: 4, ReplayFromRoot: true},
			{MaxStates: c.max, Workers: 4},
			{MaxStates: c.max, Workers: 1, SnapshotBudget: 1},
			// Deep-copy cross-check: eagerly materializing every COW
			// backing must change nothing but cost.
			{MaxStates: c.max, Workers: 1, DeepCopySnapshots: true},
			{MaxStates: c.max, Workers: 8, DeepCopySnapshots: true},
			// COW under maximum sharing pressure: many workers cloning
			// the same parent concurrently.
			{MaxStates: c.max, Workers: 8},
		}
		for i, ccfg := range variants {
			got, err := Check(c.mcfg, ccfg)
			if err != nil {
				t.Fatalf("%s variant %d: %v", c.name, i, err)
			}
			reportsEqual(t, c.name, base, got)
		}
	}
}

// TestSnapshotBuildsFarFewer is the cost-profile gate: on the CXL MP
// shape the snapshot checker must do at least 5x fewer full model
// constructions per explored state than replay-from-root. (In practice
// it does exactly one Build — the root.)
func TestSnapshotBuildsFarFewer(t *testing.T) {
	mcfg := mpCXL(t, litmus.SyncFull)
	snap, err := Check(mcfg, CheckerConfig{MaxStates: 60_000})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Check(mcfg, CheckerConfig{MaxStates: 60_000, ReplayFromRoot: true})
	if err != nil {
		t.Fatal(err)
	}
	if snap.States != rep.States {
		t.Fatalf("strategies explored different spaces: %d vs %d states", snap.States, rep.States)
	}
	if snap.Builds == 0 || rep.Builds < 5*snap.Builds {
		t.Fatalf("snapshot checker built %d models vs %d for replay-from-root (want >=5x fewer)",
			snap.Builds, rep.Builds)
	}
	t.Logf("states=%d: snapshot %d builds + %d clones, replay-from-root %d builds",
		snap.States, snap.Builds, snap.Clones, rep.Builds)
}

// BenchmarkCheckerExpand measures exhaustive exploration of the CXL MP
// shape. Compare -bench with ReplayFromRoot (below) for the snapshot
// speedup; b.ReportMetric exposes the construction cost per state.
func BenchmarkCheckerExpand(b *testing.B) {
	benchCheck(b, CheckerConfig{MaxStates: 60_000, Workers: 1})
}

func BenchmarkCheckerExpandReplayFromRoot(b *testing.B) {
	benchCheck(b, CheckerConfig{MaxStates: 60_000, Workers: 1, ReplayFromRoot: true})
}

func benchCheck(b *testing.B, ccfg CheckerConfig) {
	mcfg := mpCXL(b, litmus.SyncFull)
	var rep *Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = Check(mcfg, ccfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	if rep != nil {
		b.ReportMetric(float64(rep.Builds)/float64(rep.States), "builds/state")
		b.ReportMetric(float64(rep.Clones)/float64(rep.States), "clones/state")
		b.ReportMetric(float64(rep.States), "states")
	}
}

// BenchmarkCloneSnapshot measures the clone+step+release primitive in
// isolation (the unit BenchmarkCheckerExpand multiplies). With COW
// backings a clone is O(dirty): the per-op allocations cover the
// component graph, never the cache frame slabs or the DRAM store.
func BenchmarkCloneSnapshot(b *testing.B) {
	m, err := Build(mpCXL(b, litmus.SyncFull))
	if err != nil {
		b.Fatal(err)
	}
	m.Start()
	for i := 0; i < 6; i++ {
		acts := m.Fabric.Enabled()
		if len(acts) == 0 {
			break
		}
		m.Step(acts[0])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := m.Clone()
		if acts := c.Fabric.Enabled(); len(acts) > 0 {
			c.Step(acts[0])
		}
		c.Release()
	}
}
