// Package verif is the formal-verification backend of the generator
// toolchain (Sec. VI-A): an explicit-state model checker in the style of
// the paper's Murphi methodology. It exhaustively explores the
// message-delivery interleavings of a small C3 system — the actual
// controller implementations, not an abstraction — checking at every
// reachable quiescent state:
//
//   - deadlock freedom (some action is always enabled until all cores
//     retire);
//   - the single-writer/multiple-reader invariant across all host caches
//     in all clusters;
//   - that no compound state forbidden by Rule I (e.g. (M, I), (S, I))
//     is ever reachable in any C3 instance;
//   - data-value agreement among valid copies, and at terminal states the
//     absence of litmus-forbidden outcomes.
//
// Exploration uses breadth-first search with state-hash deduplication;
// states are reconstructed by deterministic re-execution of the delivery
// prefix (components are event-driven and single-threaded, so a prefix
// uniquely determines the state).
package verif

import (
	"fmt"
	"sort"
	"strings"

	"c3/internal/mem"
	"c3/internal/msg"
	"c3/internal/network"
)

// chKey identifies one ordered channel.
type chKey struct {
	src, dst msg.NodeID
	vnet     msg.VNet
}

func (k chKey) less(o chKey) bool {
	if k.src != o.src {
		return k.src < o.src
	}
	if k.dst != o.dst {
		return k.dst < o.dst
	}
	return k.vnet < o.vnet
}

// channel is one ordered FIFO. Channels live in a slice kept sorted by
// key; a drained channel keeps its slot (the set of channels a litmus
// system ever uses is tiny and stable), so Enabled and DumpState walk
// an already-canonical order with no per-call sort.
type channel struct {
	key chKey
	q   []*msg.Msg
}

// ChoiceFabric is a network.Fabric whose delivery order is chosen by the
// explorer rather than by timestamps. Ordered channels (response vnets,
// intra-cluster links) expose only their head; unordered channels (the
// CXL fabric's request and snoop vnets) expose every in-flight message —
// exactly the reordering CXL's conflict handshake exists to survive.
type ChoiceFabric struct {
	// ports is indexed by NodeID (small and dense by construction).
	ports []network.Port
	chans []channel
	bag   []*msg.Msg
	// Unordered reports whether a message travels on an unordered
	// channel.
	Unordered func(m *msg.Msg) bool
	// CrossFabric marks messages on the global fabric; its ordered
	// channels (responses) stay per-vnet, while intra-cluster pairs
	// share one FIFO across vnets.
	CrossFabric func(m *msg.Msg) bool

	Delivered uint64
}

// NewChoiceFabric builds an empty fabric.
func NewChoiceFabric(unordered func(m *msg.Msg) bool) *ChoiceFabric {
	return &ChoiceFabric{Unordered: unordered}
}

// Register attaches a receiver.
func (f *ChoiceFabric) Register(id msg.NodeID, p network.Port) {
	for int(id) >= len(f.ports) {
		f.ports = append(f.ports, nil)
	}
	f.ports[id] = p
}

func (f *ChoiceFabric) port(id msg.NodeID) network.Port {
	if int(id) < 0 || int(id) >= len(f.ports) {
		return nil
	}
	return f.ports[id]
}

// findChan returns the channel for k, or nil if it does not exist.
func (f *ChoiceFabric) findChan(k chKey) *channel {
	i := sort.Search(len(f.chans), func(i int) bool { return !f.chans[i].key.less(k) })
	if i < len(f.chans) && f.chans[i].key == k {
		return &f.chans[i]
	}
	return nil
}

// Clone returns a copy of the fabric's in-flight messages for
// model-checker snapshots. Ports are NOT carried over — they reference
// the original component graph; the caller re-Registers the cloned
// components. The Unordered/CrossFabric classifiers are stateless pure
// functions of the message and are shared.
//
// Messages are immutable after Send (see msg.Msg), so the *msg.Msg
// pointers are shared with the original; only the slice backings are
// private. All queue backings come from one slab, full-capacity sliced
// so a post-clone Send reallocates instead of stomping a neighbour;
// the bag gets its own backing because Deliver compacts it in place.
func (f *ChoiceFabric) Clone() *ChoiceFabric {
	n := &ChoiceFabric{
		ports:       make([]network.Port, len(f.ports)),
		Unordered:   f.Unordered,
		CrossFabric: f.CrossFabric,
		Delivered:   f.Delivered,
	}
	total := 0
	for i := range f.chans {
		total += len(f.chans[i].q)
	}
	n.chans = make([]channel, len(f.chans))
	slab := make([]*msg.Msg, total)
	off := 0
	for i := range f.chans {
		c := &f.chans[i]
		end := off + len(c.q)
		nq := slab[off:end:end]
		copy(nq, c.q)
		off = end
		n.chans[i] = channel{key: c.key, q: nq}
	}
	if len(f.bag) > 0 {
		n.bag = append([]*msg.Msg(nil), f.bag...)
	}
	return n
}

// CrossPair, when non-nil, identifies directed pairs whose ordered
// vnets share one FIFO is the *inverse*: intra-cluster pairs (not
// cross-fabric) are point-to-point ordered across vnets, mirroring the
// timed network.
func (f *ChoiceFabric) channelOf(m *msg.Msg) chKey {
	if f.CrossFabric != nil && f.CrossFabric(m) {
		// Cross-fabric ordered channel (the FIFO response vnet).
		return chKey{m.Src, m.Dst, m.VNet}
	}
	// Intra-cluster: one physical channel for all vnets.
	return chKey{m.Src, m.Dst, 0}
}

// Send implements network.Fabric.
func (f *ChoiceFabric) Send(m *msg.Msg) {
	if f.port(m.Dst) == nil {
		panic(fmt.Sprintf("verif: no port for %v", m))
	}
	if f.Unordered != nil && f.Unordered(m) {
		f.bag = append(f.bag, m)
		return
	}
	k := f.channelOf(m)
	if c := f.findChan(k); c != nil {
		c.q = append(c.q, m)
		return
	}
	i := sort.Search(len(f.chans), func(i int) bool { return !f.chans[i].key.less(k) })
	f.chans = append(f.chans, channel{})
	copy(f.chans[i+1:], f.chans[i:])
	f.chans[i] = channel{key: k, q: []*msg.Msg{m}}
}

// Action identifies one deliverable message.
type Action struct {
	// FromBag selects bag[Index]; otherwise the head of Channel.
	FromBag bool
	Index   int
	Channel chKey
}

// Enabled lists deliverable actions in a canonical order (deterministic
// across re-executions of the same prefix).
func (f *ChoiceFabric) Enabled() []Action {
	nch := 0
	for i := range f.chans {
		if len(f.chans[i].q) > 0 {
			nch++
		}
	}
	acts := make([]Action, 0, nch+len(f.bag))
	for i := range f.chans {
		if len(f.chans[i].q) > 0 {
			acts = append(acts, Action{Channel: f.chans[i].key})
		}
	}
	for i := range f.bag {
		acts = append(acts, Action{FromBag: true, Index: i})
	}
	return acts
}

// Peek returns the message action a would deliver, without delivering
// it (witness decoding and minimization).
func (f *ChoiceFabric) Peek(a Action) *msg.Msg {
	if a.FromBag {
		return f.bag[a.Index]
	}
	return f.findChan(a.Channel).q[0]
}

// ActionKey renders the protocol-visible identity of the message action
// a would deliver. Witness minimization matches delivery choices across
// different prefixes by this key (indices shift when steps are dropped;
// the message identity does not).
func (f *ChoiceFabric) ActionKey(a Action) string {
	m := f.Peek(a)
	var b strings.Builder
	fmt.Fprintf(&b, "%d %x %d>%d n%d r%d k%d v%d w%d m%x %v%v",
		m.Type, uint64(m.Addr), m.Src, m.Dst, m.VNet, m.Req, m.Acks, m.Val,
		m.Word, m.Mask, m.Acq, m.Rel)
	if m.Data != nil {
		fmt.Fprintf(&b, " %v %v", *m.Data, m.Dirty)
	}
	return b.String()
}

// Deliver executes one action.
func (f *ChoiceFabric) Deliver(a Action) {
	var m *msg.Msg
	if a.FromBag {
		m = f.bag[a.Index]
		f.bag = append(f.bag[:a.Index], f.bag[a.Index+1:]...)
	} else {
		c := f.findChan(a.Channel)
		m = c.q[0]
		c.q = c.q[1:]
	}
	f.Delivered++
	f.ports[m.Dst].Recv(m)
}

// Empty reports whether nothing is in flight.
func (f *ChoiceFabric) Empty() bool {
	if len(f.bag) > 0 {
		return false
	}
	for i := range f.chans {
		if len(f.chans[i].q) > 0 {
			return false
		}
	}
	return true
}

// DumpState renders in-flight messages canonically for hashing. Drained
// channels are skipped, so the rendering matches the pre-slice code
// that deleted them.
func (f *ChoiceFabric) DumpState(w writerTo) {
	fmt.Fprint(w, "NET")
	for i := range f.chans {
		c := &f.chans[i]
		if len(c.q) == 0 {
			continue
		}
		fmt.Fprintf(w, "[%d>%d.%d", c.key.src, c.key.dst, c.key.vnet)
		for _, m := range c.q {
			dumpMsg(w, m)
		}
		fmt.Fprint(w, "]")
	}
	// The bag is order-insensitive: dump sorted renderings.
	var rs []string
	for _, m := range f.bag {
		rs = append(rs, m.String())
	}
	sort.Strings(rs)
	fmt.Fprintf(w, "bag%v\n", rs)
}

// DumpCanon renders in-flight messages for the canonical hash: line
// addresses go through rnLine and node ids through rnNode, channels are
// re-sorted by their renamed key, and every protocol-visible field is
// included (VNet, Word, Mask, Acq/Rel, Poisoned — fields the raw dump
// omits; the canonical hash must be at least as fine as real state).
func (f *ChoiceFabric) DumpCanon(w writerTo, rnLine func(mem.LineAddr) mem.LineAddr, rnNode func(msg.NodeID) msg.NodeID) {
	fmt.Fprint(w, "NET")
	type rch struct {
		key chKey
		q   []*msg.Msg
	}
	rcs := make([]rch, 0, len(f.chans))
	for i := range f.chans {
		c := &f.chans[i]
		if len(c.q) == 0 {
			continue
		}
		rcs = append(rcs, rch{chKey{rnNode(c.key.src), rnNode(c.key.dst), c.key.vnet}, c.q})
	}
	sort.Slice(rcs, func(i, j int) bool { return rcs[i].key.less(rcs[j].key) })
	for _, c := range rcs {
		fmt.Fprintf(w, "[%d>%d.%d", c.key.src, c.key.dst, c.key.vnet)
		for _, m := range c.q {
			dumpMsgCanon(w, m, rnLine, rnNode)
		}
		fmt.Fprint(w, "]")
	}
	var rs []string
	for _, m := range f.bag {
		var b strings.Builder
		dumpMsgCanon(&b, m, rnLine, rnNode)
		rs = append(rs, b.String())
	}
	sort.Strings(rs)
	fmt.Fprintf(w, "bag%v\n", rs)
}

// ForEachInFlight visits every in-flight message (channel entries and
// bag). The partial-order reduction uses it to count per-line traffic.
func (f *ChoiceFabric) ForEachInFlight(fn func(m *msg.Msg)) {
	for i := range f.chans {
		for _, m := range f.chans[i].q {
			fn(m)
		}
	}
	for _, m := range f.bag {
		fn(m)
	}
}

func dumpMsgCanon(w writerTo, m *msg.Msg, rnLine func(mem.LineAddr) mem.LineAddr, rnNode func(msg.NodeID) msg.NodeID) {
	fmt.Fprintf(w, "{%d %x %d>%d.%d", m.Type, uint64(rnLine(m.Addr)), rnNode(m.Src),
		rnNode(m.Dst), m.VNet)
	if m.Data != nil {
		fmt.Fprintf(w, " %v %v", *m.Data, m.Dirty)
	}
	fmt.Fprintf(w, " r%d a%d v%d w%d m%x %v%v %v}", rnNode(m.Req), m.Acks, m.Val,
		m.Word, m.Mask, m.Acq, m.Rel, m.Poisoned)
}

type writerTo interface {
	Write(p []byte) (int, error)
}

func dumpMsg(w writerTo, m *msg.Msg) {
	fmt.Fprintf(w, "{%d %x %d>%d", m.Type, uint64(m.Addr), m.Src, m.Dst)
	if m.Data != nil {
		fmt.Fprintf(w, " %v %v", *m.Data, m.Dirty)
	}
	fmt.Fprintf(w, " r%d a%d v%d}", m.Req, m.Acks, m.Val)
}
