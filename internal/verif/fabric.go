// Package verif is the formal-verification backend of the generator
// toolchain (Sec. VI-A): an explicit-state model checker in the style of
// the paper's Murphi methodology. It exhaustively explores the
// message-delivery interleavings of a small C3 system — the actual
// controller implementations, not an abstraction — checking at every
// reachable quiescent state:
//
//   - deadlock freedom (some action is always enabled until all cores
//     retire);
//   - the single-writer/multiple-reader invariant across all host caches
//     in all clusters;
//   - that no compound state forbidden by Rule I (e.g. (M, I), (S, I))
//     is ever reachable in any C3 instance;
//   - data-value agreement among valid copies, and at terminal states the
//     absence of litmus-forbidden outcomes.
//
// Exploration uses breadth-first search with state-hash deduplication;
// states are reconstructed by deterministic re-execution of the delivery
// prefix (components are event-driven and single-threaded, so a prefix
// uniquely determines the state).
package verif

import (
	"fmt"
	"sort"
	"strings"

	"c3/internal/msg"
	"c3/internal/network"
)

// chKey identifies one ordered channel.
type chKey struct {
	src, dst msg.NodeID
	vnet     msg.VNet
}

func (k chKey) less(o chKey) bool {
	if k.src != o.src {
		return k.src < o.src
	}
	if k.dst != o.dst {
		return k.dst < o.dst
	}
	return k.vnet < o.vnet
}

// ChoiceFabric is a network.Fabric whose delivery order is chosen by the
// explorer rather than by timestamps. Ordered channels (response vnets,
// intra-cluster links) expose only their head; unordered channels (the
// CXL fabric's request and snoop vnets) expose every in-flight message —
// exactly the reordering CXL's conflict handshake exists to survive.
type ChoiceFabric struct {
	ports   map[msg.NodeID]network.Port
	ordered map[chKey][]*msg.Msg
	bag     []*msg.Msg
	// Unordered reports whether a message travels on an unordered
	// channel.
	Unordered func(m *msg.Msg) bool
	// CrossFabric marks messages on the global fabric; its ordered
	// channels (responses) stay per-vnet, while intra-cluster pairs
	// share one FIFO across vnets.
	CrossFabric func(m *msg.Msg) bool

	Delivered uint64
}

// NewChoiceFabric builds an empty fabric.
func NewChoiceFabric(unordered func(m *msg.Msg) bool) *ChoiceFabric {
	return &ChoiceFabric{
		ports:     make(map[msg.NodeID]network.Port),
		ordered:   make(map[chKey][]*msg.Msg),
		Unordered: unordered,
	}
}

// Register attaches a receiver.
func (f *ChoiceFabric) Register(id msg.NodeID, p network.Port) { f.ports[id] = p }

// Clone returns a deep copy of the fabric's in-flight messages for
// model-checker snapshots. Ports are NOT carried over — they reference
// the original component graph; the caller re-Registers the cloned
// components. The Unordered/CrossFabric classifiers are stateless pure
// functions of the message and are shared.
func (f *ChoiceFabric) Clone() *ChoiceFabric {
	n := &ChoiceFabric{
		ports:       make(map[msg.NodeID]network.Port, len(f.ports)),
		ordered:     make(map[chKey][]*msg.Msg, len(f.ordered)),
		Unordered:   f.Unordered,
		CrossFabric: f.CrossFabric,
		Delivered:   f.Delivered,
	}
	for k, q := range f.ordered {
		nq := make([]*msg.Msg, len(q))
		for i, m := range q {
			nq[i] = m.Clone()
		}
		n.ordered[k] = nq
	}
	for _, m := range f.bag {
		n.bag = append(n.bag, m.Clone())
	}
	return n
}

// CrossPair, when non-nil, identifies directed pairs whose ordered
// vnets share one FIFO is the *inverse*: intra-cluster pairs (not
// cross-fabric) are point-to-point ordered across vnets, mirroring the
// timed network.
func (f *ChoiceFabric) channelOf(m *msg.Msg) chKey {
	if f.CrossFabric != nil && f.CrossFabric(m) {
		// Cross-fabric ordered channel (the FIFO response vnet).
		return chKey{m.Src, m.Dst, m.VNet}
	}
	// Intra-cluster: one physical channel for all vnets.
	return chKey{m.Src, m.Dst, 0}
}

// Send implements network.Fabric.
func (f *ChoiceFabric) Send(m *msg.Msg) {
	if f.ports[m.Dst] == nil {
		panic(fmt.Sprintf("verif: no port for %v", m))
	}
	if f.Unordered != nil && f.Unordered(m) {
		f.bag = append(f.bag, m)
		return
	}
	f.ordered[f.channelOf(m)] = append(f.ordered[f.channelOf(m)], m)
}

// Action identifies one deliverable message.
type Action struct {
	// FromBag selects bag[Index]; otherwise the head of Channel.
	FromBag bool
	Index   int
	Channel chKey
}

// Enabled lists deliverable actions in a canonical order (deterministic
// across re-executions of the same prefix).
func (f *ChoiceFabric) Enabled() []Action {
	var keys []chKey
	for k, q := range f.ordered {
		if len(q) > 0 {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].less(keys[j]) })
	acts := make([]Action, 0, len(keys)+len(f.bag))
	for _, k := range keys {
		acts = append(acts, Action{Channel: k})
	}
	for i := range f.bag {
		acts = append(acts, Action{FromBag: true, Index: i})
	}
	return acts
}

// Peek returns the message action a would deliver, without delivering
// it (witness decoding and minimization).
func (f *ChoiceFabric) Peek(a Action) *msg.Msg {
	if a.FromBag {
		return f.bag[a.Index]
	}
	return f.ordered[a.Channel][0]
}

// ActionKey renders the protocol-visible identity of the message action
// a would deliver. Witness minimization matches delivery choices across
// different prefixes by this key (indices shift when steps are dropped;
// the message identity does not).
func (f *ChoiceFabric) ActionKey(a Action) string {
	m := f.Peek(a)
	var b strings.Builder
	fmt.Fprintf(&b, "%d %x %d>%d n%d r%d k%d v%d w%d m%x %v%v",
		m.Type, uint64(m.Addr), m.Src, m.Dst, m.VNet, m.Req, m.Acks, m.Val,
		m.Word, m.Mask, m.Acq, m.Rel)
	if m.Data != nil {
		fmt.Fprintf(&b, " %v %v", *m.Data, m.Dirty)
	}
	return b.String()
}

// Deliver executes one action.
func (f *ChoiceFabric) Deliver(a Action) {
	var m *msg.Msg
	if a.FromBag {
		m = f.bag[a.Index]
		f.bag = append(f.bag[:a.Index], f.bag[a.Index+1:]...)
	} else {
		q := f.ordered[a.Channel]
		m = q[0]
		if len(q) == 1 {
			delete(f.ordered, a.Channel)
		} else {
			f.ordered[a.Channel] = q[1:]
		}
	}
	f.Delivered++
	f.ports[m.Dst].Recv(m)
}

// Empty reports whether nothing is in flight.
func (f *ChoiceFabric) Empty() bool {
	if len(f.bag) > 0 {
		return false
	}
	for _, q := range f.ordered {
		if len(q) > 0 {
			return false
		}
	}
	return true
}

// DumpState renders in-flight messages canonically for hashing.
func (f *ChoiceFabric) DumpState(w writerTo) {
	var keys []chKey
	for k, q := range f.ordered {
		if len(q) > 0 {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].less(keys[j]) })
	fmt.Fprint(w, "NET")
	for _, k := range keys {
		fmt.Fprintf(w, "[%d>%d.%d", k.src, k.dst, k.vnet)
		for _, m := range f.ordered[k] {
			dumpMsg(w, m)
		}
		fmt.Fprint(w, "]")
	}
	// The bag is order-insensitive: dump sorted renderings.
	var rs []string
	for _, m := range f.bag {
		rs = append(rs, m.String())
	}
	sort.Strings(rs)
	fmt.Fprintf(w, "bag%v\n", rs)
}

type writerTo interface {
	Write(p []byte) (int, error)
}

func dumpMsg(w writerTo, m *msg.Msg) {
	fmt.Fprintf(w, "{%d %x %d>%d", m.Type, uint64(m.Addr), m.Src, m.Dst)
	if m.Data != nil {
		fmt.Fprintf(w, " %v %v", *m.Data, m.Dirty)
	}
	fmt.Fprintf(w, " r%d a%d v%d}", m.Req, m.Acks, m.Val)
}
