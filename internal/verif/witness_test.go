package verif

import (
	"errors"
	"strings"
	"testing"

	"c3/internal/litmus"
	"c3/internal/mem"
	"c3/internal/msg"
)

// setRootMutate installs the test seam that perturbs every freshly
// built model, and removes it when the test ends. Tests using it must
// not run in parallel.
func setRootMutate(t *testing.T, fn func(*Model)) {
	t.Helper()
	if testRootMutate != nil {
		t.Fatal("testRootMutate already set")
	}
	testRootMutate = fn
	t.Cleanup(func() { testRootMutate = nil })
}

func asCex(t *testing.T, err error) *Counterexample {
	t.Helper()
	var cex *Counterexample
	if !errors.As(err, &cex) {
		t.Fatalf("error is not a *Counterexample: %v", err)
	}
	return cex
}

// TestForbiddenWitnessReplays: checking the forbidden predicate on
// unsynced MP must fail with a minimized witness that Replay re-executes
// to the identical forbidden outcome — and the witness must be the same
// whether the checker snapshots or replays from the root.
func TestForbiddenWitnessReplays(t *testing.T) {
	mcfg := mpCXL(t, litmus.SyncNone)
	_, err := Check(mcfg, CheckerConfig{MaxStates: 150_000, CheckForbidden: true})
	if err == nil {
		t.Fatal("expected a forbidden-outcome violation")
	}
	cex := asCex(t, err)
	if cex.Kind != VForbidden {
		t.Fatalf("kind = %v, want forbidden", cex.Kind)
	}
	if cex.Msg != "1:r0=1 1:r1=0 x=1 y=1" {
		t.Fatalf("forbidden outcome = %q", cex.Msg)
	}
	if !strings.Contains(err.Error(), "verif: forbidden outcome reachable:") {
		t.Fatalf("error string changed: %q", err.Error())
	}
	if len(cex.Path) == 0 || len(cex.Path) > cex.OriginalLen {
		t.Fatalf("witness length %d vs original %d", len(cex.Path), cex.OriginalLen)
	}

	res, rerr := Replay(mcfg, cex.Path)
	if rerr != nil {
		t.Fatalf("replay: %v", rerr)
	}
	if res.Kind != VForbidden || res.Msg != cex.Msg {
		t.Fatalf("replay reproduced %v %q, want %v %q", res.Kind, res.Msg, cex.Kind, cex.Msg)
	}
	if len(res.Steps) != len(cex.Path) || !res.Terminal {
		t.Fatalf("replay: %d steps, terminal=%v", len(res.Steps), res.Terminal)
	}
	for _, s := range res.Steps {
		if s == "" {
			t.Fatal("undecoded witness step")
		}
	}

	// Same witness from the replay-from-root strategy.
	_, err2 := Check(mcfg, CheckerConfig{MaxStates: 150_000, CheckForbidden: true, ReplayFromRoot: true})
	cex2 := asCex(t, err2)
	if len(cex2.Path) != len(cex.Path) {
		t.Fatalf("strategies found different witnesses: %v vs %v", cex2.Path, cex.Path)
	}
	for i := range cex.Path {
		if cex.Path[i] != cex2.Path[i] {
			t.Fatalf("strategies found different witnesses: %v vs %v", cex2.Path, cex.Path)
		}
	}
}

// TestForbiddenSkippedWhenUnsynced: without CheckForbidden the relaxed
// run must not flag the (architecturally legal) outcome, but the Report
// must record that the predicate went unevaluated. This also pins the
// SyncFull comparison: a SyncFull run of the same shape leaves
// ForbiddenSkipped unset.
func TestForbiddenSkippedWhenUnsynced(t *testing.T) {
	rep, err := Check(mpCXL(t, litmus.SyncNone), CheckerConfig{MaxStates: 150_000})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.ForbiddenSkipped {
		t.Fatal("ForbiddenSkipped not recorded on an unsynced run")
	}
	rep, err = Check(mpCXL(t, litmus.SyncFull), CheckerConfig{MaxStates: 60_000})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ForbiddenSkipped {
		t.Fatal("ForbiddenSkipped set on a SyncFull run")
	}
}

// TestDeadlockWitness forces the deadlock branch by discarding every
// in-flight message at the root: the cores have issued requests and wait
// on replies that no longer exist.
func TestDeadlockWitness(t *testing.T) {
	setRootMutate(t, func(m *Model) {
		m.Fabric.bag = nil
		m.Fabric.chans = nil
	})
	mcfg := mpCXL(t, litmus.SyncFull)
	_, err := Check(mcfg, CheckerConfig{MaxStates: 1000})
	if err == nil {
		t.Fatal("expected a deadlock")
	}
	cex := asCex(t, err)
	if cex.Kind != VDeadlock {
		t.Fatalf("kind = %v, want deadlock", cex.Kind)
	}
	if !strings.Contains(err.Error(), "verif: deadlock at depth 0: cores stuck with empty fabric") {
		t.Fatalf("error string changed: %q", err.Error())
	}
	res, rerr := Replay(mcfg, cex.Path)
	if rerr != nil {
		t.Fatalf("replay: %v", rerr)
	}
	if res.Kind != VDeadlock {
		t.Fatalf("replay reproduced %v, want deadlock", res.Kind)
	}
}

// TestInvariantWitness forces the SWMR branch by installing two modified
// copies of the same line at the root; the checker must fail immediately
// and the witness must replay to the identical invariant error.
func TestInvariantWitness(t *testing.T) {
	line := mem.Addr(0x40000).Line()
	setRootMutate(t, func(m *Model) {
		for i := 0; i < 2; i++ {
			e := m.l1s[i].cache.Probe(line)
			if e == nil {
				e = m.l1s[i].cache.Install(line)
			}
			e.State = 3 // stM
		}
	})
	mcfg := mpCXL(t, litmus.SyncFull)
	_, err := Check(mcfg, CheckerConfig{MaxStates: 1000})
	if err == nil {
		t.Fatal("expected an SWMR violation")
	}
	cex := asCex(t, err)
	if cex.Kind != VInvariant {
		t.Fatalf("kind = %v, want invariant", cex.Kind)
	}
	if !strings.Contains(cex.Msg, "SWMR violated") {
		t.Fatalf("msg = %q", cex.Msg)
	}
	res, rerr := Replay(mcfg, cex.Path)
	if rerr != nil {
		t.Fatalf("replay: %v", rerr)
	}
	if res.Kind != VInvariant || res.Msg != cex.Msg {
		t.Fatalf("replay reproduced %v %q, want %v %q", res.Kind, res.Msg, cex.Kind, cex.Msg)
	}
}

// TestLivelockDepthBound: a depth bound below the shortest terminal
// execution must trip the livelock branch with a witness exactly as long
// as the bound, and replaying it must land in a live (non-deadlocked,
// non-terminal) state — distinguishing a bound hit from a dead end.
func TestLivelockDepthBound(t *testing.T) {
	mcfg := mpCXL(t, litmus.SyncFull)
	_, err := Check(mcfg, CheckerConfig{MaxStates: 100_000, MaxDepth: 3})
	if err == nil {
		t.Fatal("expected a depth-bound violation")
	}
	cex := asCex(t, err)
	if cex.Kind != VLivelock {
		t.Fatalf("kind = %v, want livelock", cex.Kind)
	}
	if len(cex.Path) != 3 {
		t.Fatalf("livelock witness has %d steps, want the bound (3)", len(cex.Path))
	}
	if !strings.Contains(err.Error(), "verif: depth bound 3 exceeded (livelock?)") {
		t.Fatalf("error string changed: %q", err.Error())
	}
	res, rerr := Replay(mcfg, cex.Path)
	if rerr != nil {
		t.Fatalf("replay: %v", rerr)
	}
	if res.Kind != VNone || res.Terminal || res.EnabledAtEnd == 0 {
		t.Fatalf("livelock witness should end live: kind=%v terminal=%v enabled=%d",
			res.Kind, res.Terminal, res.EnabledAtEnd)
	}
}

// TestTruncatedEarlyReturn: hitting MaxStates is a bounded result, not a
// violation.
func TestTruncatedEarlyReturn(t *testing.T) {
	rep, err := Check(mpCXL(t, litmus.SyncFull), CheckerConfig{MaxStates: 2})
	if err != nil {
		t.Fatalf("truncation must not be an error: %v", err)
	}
	if !rep.Truncated {
		t.Fatal("Truncated not set")
	}
}

// TestActionCountOverflow: the path encoding holds 65536 choices per
// step; a state offering more must be an explicit error, not a silent
// uint16 wrap. The fabricated fabric injects the excess directly into
// the unordered bag.
func TestActionCountOverflow(t *testing.T) {
	setRootMutate(t, func(m *Model) {
		for i := 0; i < 66_000; i++ {
			m.Fabric.bag = append(m.Fabric.bag, &msg.Msg{
				Addr: 0x40000, Src: 4, Dst: 5, VNet: msg.VReq, Val: uint64(i),
			})
		}
	})
	_, err := Check(mpCXL(t, litmus.SyncFull), CheckerConfig{MaxStates: 1000})
	if err == nil {
		t.Fatal("expected an action-count overflow error")
	}
	if errors.As(err, new(*Counterexample)) {
		t.Fatalf("overflow must not masquerade as a violation: %v", err)
	}
	if !strings.Contains(err.Error(), "exceed") || !strings.Contains(err.Error(), "65536") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestReplayDiverged: an index past the enabled-action list is a replay
// error, not a panic.
func TestReplayDiverged(t *testing.T) {
	_, err := Replay(mpCXL(t, litmus.SyncFull), []uint16{9999})
	if err == nil || !strings.Contains(err.Error(), "replay diverged") {
		t.Fatalf("want divergence error, got %v", err)
	}
}
