package verif

import (
	"c3/internal/mem"
	"c3/internal/msg"
)

// Partial-order reduction: when delivering one message provably commutes
// with every other enabled delivery, exploring just that delivery first
// (a singleton ample set) reaches the same states, terminals, and
// violations as the full expansion — the skipped interleavings are
// permutations of independent steps.
//
// Independence rests on the system being per-line outside the cores:
// every controller (L1 request/evict TBEs, C3 local directories and
// TBEs, DCOH/hmesi directory lines) keys its state and queues by line
// address, and cache-set conflicts — the one cross-line coupling inside
// a cache — are excluded by the same gate as the symmetry reduction
// (≤16 variables, no TinyLLC). The cores are the remaining coupling:
// delivering on line L can complete an access and let a core issue its
// next (possibly other-line) operation. A delivery on L is therefore
// ample only if every core that will ever touch L again touches nothing
// but L (see ampleAction). Crash/fault artifacts (poisoned deliveries)
// disable the reduction conservatively, preserving fault coverage.
//
// The checker guards the cycle proviso separately: an ample successor
// that hashes to an already-visited state forces full expansion, so no
// enabled delivery can be ignored forever around a cycle.

// ampleAction returns the index into acts of a delivery valid as a
// singleton ample set, or -1 to require full expansion. Deterministic:
// it scans acts in canonical order and depends only on model state.
func (m *Model) ampleAction(sym *symmetry, acts []Action) int {
	if !sym.porOK {
		return -1
	}
	// Per-line in-flight message counts. A message on an unknown line or
	// carrying poison makes every delivery non-ample.
	nv := len(sym.varLines)
	counts := make([]int, nv)
	ok := true
	m.Fabric.ForEachInFlight(func(mm *msg.Msg) {
		if !ok {
			return
		}
		if mm.Poisoned {
			ok = false
			return
		}
		i, found := sym.lineIdx[mm.Addr]
		if !found {
			ok = false
			return
		}
		counts[i]++
	})
	if !ok {
		return -1
	}
	// Per-core future-line masks: window and store-buffer entries plus
	// unfetched program (nv ≤ 16, so a word of bits suffices).
	masks := make([]uint32, len(m.cores))
	bad := false
	for ci, c := range m.cores {
		var mask uint32
		add := func(a mem.LineAddr) {
			if i, found := sym.lineIdx[a]; found {
				mask |= 1 << uint(i)
			} else {
				bad = true
			}
		}
		c.FutureLines(add)
		m.srcs[ci].FutureLines(add)
		if bad {
			return -1
		}
		masks[ci] = mask
	}
	for ai := range acts {
		li, found := sym.lineIdx[m.Fabric.Peek(acts[ai]).Addr]
		if !found {
			continue
		}
		// The delivery must be the only traffic on its line (FIFO order
		// behind it, or a racing same-line delivery, is a dependence)...
		if counts[li] != 1 {
			continue
		}
		// ...and no core may couple the line to another: any core whose
		// future touches li must touch only li.
		bit := uint32(1) << uint(li)
		good := true
		for _, mask := range masks {
			if mask&bit != 0 && mask != bit {
				good = false
				break
			}
		}
		if good {
			return ai
		}
	}
	return -1
}
