package verif

import (
	"testing"

	"c3/internal/cpu"
	"c3/internal/faults"
	"c3/internal/mem"
	"c3/internal/system"
)

// TestCheckHostIsolation drives a real crash through a two-cluster
// system and checks the invariant wrapper: clean before and after a
// completed reclamation, and a named violation if state were to survive.
func TestCheckHostIsolation(t *testing.T) {
	plan := &faults.Plan{}
	plan.CrashHost(1, 2000)
	s, err := system.New(system.Config{
		Global: "cxl",
		Faults: plan,
		Clusters: []system.ClusterConfig{
			{Protocol: "mesi", MCM: cpu.WMO, Cores: 1},
			{Protocol: "mesi", MCM: cpu.WMO, Cores: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckHostIsolation(s); err != nil {
		t.Fatalf("pre-crash system violates isolation: %v", err)
	}
	line := mem.Addr(0x20000)
	// The victim takes the line Modified and spins on it.
	stored := false
	s.AttachSource(1, 0, &cpu.FuncSource{
		NextFn: func() (cpu.Instr, bool) {
			if !stored {
				stored = true
				return cpu.Instr{Kind: cpu.Store, Addr: line, Val: 9}, true
			}
			return cpu.Instr{Kind: cpu.Load, Addr: line, Reg: 1, CtrlDep: true}, true
		},
	})
	// The survivor spins until the declaration lands.
	spinning := true
	s.AttachSource(0, 0, &cpu.FuncSource{
		NextFn: func() (cpu.Instr, bool) {
			if !spinning {
				return cpu.Instr{}, false
			}
			return cpu.Instr{Kind: cpu.Load, Addr: line + mem.LineBytes, Reg: 1, CtrlDep: true}, true
		},
		CompleteFn: func(cpu.Instr, uint64) {
			if s.Recovery.PeersDeclaredDead > 0 {
				spinning = false
			}
		},
	})
	if !s.Run(50_000_000) {
		t.Fatal("system wedged")
	}
	if s.Recovery.PeersDeclaredDead != 1 {
		t.Fatalf("declaration not processed: %+v", s.Recovery)
	}
	if err := CheckHostIsolation(s); err != nil {
		t.Fatalf("post-reclamation isolation violated: %v", err)
	}
}
