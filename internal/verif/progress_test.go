package verif

import (
	"testing"

	"c3/internal/litmus"
)

// TestCheckerProgress: the OnProgress callback streams monotonic
// exploration counts while Check runs, and wiring it changes nothing
// about the exploration's result.
func TestCheckerProgress(t *testing.T) {
	mcfg := mpCXL(t, litmus.SyncFull)
	base, err := Check(mcfg, CheckerConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	var calls int
	var last Progress
	rep, err := Check(mcfg, CheckerConfig{
		Workers:       1,
		ProgressEvery: 64,
		OnProgress: func(p Progress) {
			if p.States < last.States {
				t.Fatalf("states went backwards: %d after %d", p.States, last.States)
			}
			if p.Frontier < 0 || p.Depth < 0 {
				t.Fatalf("negative frontier/depth: %+v", p)
			}
			last = p
			calls++
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("OnProgress never called")
	}
	if last.States == 0 || last.States > rep.States {
		t.Fatalf("last progress states = %d, final = %d", last.States, rep.States)
	}
	if rep.States != base.States || rep.Terminals != base.Terminals || len(rep.Outcomes) != len(base.Outcomes) {
		t.Fatalf("progress callback changed exploration: %+v vs %+v", rep, base)
	}
}

// TestCheckerProgressDefaultStride: a zero ProgressEvery gets the
// default stride rather than firing per state.
func TestCheckerProgressDefaultStride(t *testing.T) {
	mcfg := mpCXL(t, litmus.SyncFull)
	var calls int
	rep, err := Check(mcfg, CheckerConfig{
		Workers:    1,
		OnProgress: func(Progress) { calls++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if max := int(rep.States/2048) + 1; calls > max {
		t.Fatalf("%d calls for %d states, want <= %d (default 2048 stride)", calls, rep.States, max)
	}
}
