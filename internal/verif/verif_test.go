package verif

import (
	"testing"

	"c3/internal/cpu"
	"c3/internal/litmus"
)

func mp(t *testing.T) litmus.Test {
	t.Helper()
	tc, ok := litmus.ByName("MP")
	if !ok {
		t.Fatal("no MP test")
	}
	return tc
}

func TestCheckMPCXL(t *testing.T) {
	rep, err := Check(ModelConfig{
		Test:   mp(t),
		Locals: [2]string{"mesi", "mesi"},
		Global: "cxl",
		MCMs:   [2]cpu.MCM{cpu.WMO, cpu.WMO},
		Sync:   litmus.SyncFull,
	}, CheckerConfig{MaxStates: 60_000})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("MP/CXL: %d states, %d terminals, %d outcomes, truncated=%v",
		rep.States, rep.Terminals, len(rep.Outcomes), rep.Truncated)
	if rep.Terminals == 0 && !rep.Truncated {
		t.Fatal("no terminal states reached")
	}
}

func byName(t *testing.T, name string) litmus.Test {
	t.Helper()
	tc, ok := litmus.ByName(name)
	if !ok {
		t.Fatalf("no %s test", name)
	}
	return tc
}

// TestCheckParallelMatchesSerial: the exploration report must be
// identical for every worker count — the parallel expansion merges
// successors in canonical action order, so visit order is preserved.
func TestCheckParallelMatchesSerial(t *testing.T) {
	mcfg := ModelConfig{
		Test:   mp(t),
		Locals: [2]string{"mesi", "mesi"},
		Global: "cxl",
		MCMs:   [2]cpu.MCM{cpu.WMO, cpu.WMO},
		Sync:   litmus.SyncFull,
	}
	budget := uint64(20_000)
	if testing.Short() {
		budget = 4_000
	}
	want, err := Check(mcfg, CheckerConfig{MaxStates: budget, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		got, err := Check(mcfg, CheckerConfig{MaxStates: budget, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if got.States != want.States || got.Terminals != want.Terminals ||
			got.Truncated != want.Truncated || got.MaxDepth != want.MaxDepth ||
			len(got.Outcomes) != len(want.Outcomes) {
			t.Fatalf("workers=%d: report %+v, serial %+v", workers, got, want)
		}
		for o := range want.Outcomes {
			if !got.Outcomes[o] {
				t.Fatalf("workers=%d: outcome %q missing", workers, o)
			}
		}
	}
}

// TestCheckShapesCXL exhaustively verifies the Table IV shapes on the
// CXL global protocol with both homogeneous and mixed MCMs.
func TestCheckShapesCXL(t *testing.T) {
	shapes := []string{"MP", "SB", "LB", "S", "R", "2_2W", "CoRR"}
	if testing.Short() {
		shapes = shapes[:2]
	}
	for _, name := range shapes {
		for _, mcms := range [][2]cpu.MCM{{cpu.WMO, cpu.WMO}, {cpu.TSO, cpu.WMO}} {
			rep, err := Check(ModelConfig{
				Test:   byName(t, name),
				Locals: [2]string{"mesi", "mesi"},
				Global: "cxl",
				MCMs:   mcms,
				Sync:   litmus.SyncFull,
			}, CheckerConfig{MaxStates: 150_000})
			if err != nil {
				t.Fatalf("%s %v: %v", name, mcms, err)
			}
			if rep.Terminals == 0 && !rep.Truncated {
				t.Fatalf("%s %v: no terminals", name, mcms)
			}
			t.Logf("%s %v: %d states, %d outcomes, truncated=%v",
				name, mcms, rep.States, len(rep.Outcomes), rep.Truncated)
		}
	}
}

// TestCheckHeteroProtocols verifies MP and S across MESI/MOESI/MESIF
// cluster pairings (the compound-state machinery differs per pairing).
func TestCheckHeteroProtocols(t *testing.T) {
	pairs := [][2]string{{"mesi", "moesi"}, {"moesi", "mesif"}, {"mesif", "mesi"}}
	for _, p := range pairs {
		for _, name := range []string{"MP", "S"} {
			rep, err := Check(ModelConfig{
				Test:   byName(t, name),
				Locals: p,
				Global: "cxl",
				MCMs:   [2]cpu.MCM{cpu.WMO, cpu.WMO},
				Sync:   litmus.SyncFull,
			}, CheckerConfig{MaxStates: 150_000})
			if err != nil {
				t.Fatalf("%s on %v: %v", name, p, err)
			}
			if rep.Terminals == 0 && !rep.Truncated {
				t.Fatalf("%s on %v: no terminals", name, p)
			}
		}
	}
}

// TestCheckHMESI verifies the baseline global protocol too.
func TestCheckHMESI(t *testing.T) {
	for _, name := range []string{"MP", "SB"} {
		rep, err := Check(ModelConfig{
			Test:   byName(t, name),
			Locals: [2]string{"mesi", "mesi"},
			Global: "hmesi",
			MCMs:   [2]cpu.MCM{cpu.WMO, cpu.WMO},
			Sync:   litmus.SyncFull,
		}, CheckerConfig{MaxStates: 150_000})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rep.Terminals == 0 && !rep.Truncated {
			t.Fatalf("%s: no terminals", name)
		}
	}
}

// TestCheckEvictions forces Fig. 7 cross-domain evictions into the
// explored space with a 4-line CXL cache.
func TestCheckEvictions(t *testing.T) {
	rep, err := Check(ModelConfig{
		Test:    byName(t, "MP"),
		Locals:  [2]string{"mesi", "mesi"},
		Global:  "cxl",
		MCMs:    [2]cpu.MCM{cpu.WMO, cpu.WMO},
		Sync:    litmus.SyncFull,
		TinyLLC: true,
	}, CheckerConfig{MaxStates: 150_000})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Terminals == 0 && !rep.Truncated {
		t.Fatal("no terminals")
	}
}

// TestUnsyncedRelaxedOutcomeReachable: with synchronization stripped the
// checker must find the relaxed outcome among the terminals — evidence
// the exploration is genuinely exhaustive.
func TestUnsyncedRelaxedOutcomeReachable(t *testing.T) {
	tc := byName(t, "MP")
	rep, err := Check(ModelConfig{
		Test:   tc,
		Locals: [2]string{"mesi", "mesi"},
		Global: "cxl",
		MCMs:   [2]cpu.MCM{cpu.WMO, cpu.WMO},
		Sync:   litmus.SyncNone,
	}, CheckerConfig{MaxStates: 150_000})
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruct outcomes and look for the forbidden (relaxed) one.
	found := false
	for o := range rep.Outcomes {
		if o == "1:r0=1 1:r1=0 x=1 y=1" {
			found = true
		}
	}
	if !found {
		t.Fatalf("relaxed MP outcome not among %d terminal outcomes (truncated=%v)",
			len(rep.Outcomes), rep.Truncated)
	}
}

// TestCheckMOESIEvictions: eviction flows explored exhaustively on the
// protocol whose O state makes reclaim nontrivial.
func TestCheckMOESIEvictions(t *testing.T) {
	rep, err := Check(ModelConfig{
		Test:    byName(t, "S"),
		Locals:  [2]string{"moesi", "moesi"},
		Global:  "cxl",
		MCMs:    [2]cpu.MCM{cpu.WMO, cpu.WMO},
		Sync:    litmus.SyncFull,
		TinyLLC: true,
	}, CheckerConfig{MaxStates: 200_000})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Terminals == 0 && !rep.Truncated {
		t.Fatal("no terminals")
	}
}

// TestCheckCoWW: same-location store ordering verified exhaustively.
func TestCheckCoWW(t *testing.T) {
	rep, err := Check(ModelConfig{
		Test:   byName(t, "CoWW"),
		Locals: [2]string{"mesi", "mesi"},
		Global: "cxl",
		MCMs:   [2]cpu.MCM{cpu.TSO, cpu.TSO},
		Sync:   litmus.SyncFull,
	}, CheckerConfig{MaxStates: 50_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Outcomes) != 1 {
		t.Fatalf("CoWW should have exactly one outcome, got %d", len(rep.Outcomes))
	}
}

// TestCheckWRCBounded: a three-thread causality shape under bounded
// exhaustive search (the state space is larger; the bound keeps CI fast
// while cmd/c3check can run it to exhaustion).
func TestCheckWRCBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("larger exploration")
	}
	rep, err := Check(ModelConfig{
		Test:   byName(t, "WRC"),
		Locals: [2]string{"mesi", "mesi"},
		Global: "cxl",
		MCMs:   [2]cpu.MCM{cpu.WMO, cpu.WMO},
		Sync:   litmus.SyncFull,
	}, CheckerConfig{MaxStates: 30_000})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("WRC: %d states, %d terminals, truncated=%v", rep.States, rep.Terminals, rep.Truncated)
	if rep.States == 0 {
		t.Fatal("no exploration")
	}
}

// TestCheckIRIWExhaustive: four threads across two clusters — the
// multi-copy-atomicity shape — verified to exhaustion.
func TestCheckIRIWExhaustive(t *testing.T) {
	if testing.Short() {
		t.Skip("~10s exploration")
	}
	rep, err := Check(ModelConfig{
		Test:   byName(t, "IRIW"),
		Locals: [2]string{"mesi", "mesi"},
		Global: "cxl",
		MCMs:   [2]cpu.MCM{cpu.WMO, cpu.WMO},
		Sync:   litmus.SyncFull,
	}, CheckerConfig{MaxStates: 400_000})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Truncated {
		t.Fatalf("IRIW should exhaust within the bound (%d states)", rep.States)
	}
	t.Logf("IRIW: %d states, %d terminal outcomes", rep.States, len(rep.Outcomes))
}
