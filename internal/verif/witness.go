package verif

import (
	"fmt"
	"math"

	"c3/internal/litmus"
)

// ViolationKind classifies what a counterexample demonstrates.
type ViolationKind uint8

const (
	VNone      ViolationKind = iota
	VInvariant               // SWMR / Rule-I compound-state violation
	VDeadlock                // cores stuck with an empty fabric
	VLivelock                // depth bound exceeded with actions enabled
	VForbidden               // litmus-forbidden terminal outcome
)

func (k ViolationKind) String() string {
	switch k {
	case VNone:
		return "none"
	case VInvariant:
		return "invariant"
	case VDeadlock:
		return "deadlock"
	case VLivelock:
		return "livelock"
	case VForbidden:
		return "forbidden-outcome"
	}
	return fmt.Sprintf("ViolationKind(%d)", uint8(k))
}

// Counterexample is a reproducible violation witness: the sequence of
// delivery choices (indices into Enabled(), in order) that drives a
// fresh model from the initial state to the failure. Check returns one
// as its error on every violation path; extract it with errors.As and
// re-execute it with Replay. Except for livelock witnesses — where the
// path's length IS the failure — the path has been shrunk by
// delta-debugging and is never longer than the original.
type Counterexample struct {
	Kind ViolationKind
	// Msg is the underlying failure: the invariant error text, the
	// forbidden outcome rendering, or the deadlock description.
	Msg string
	// Path replays the violation: at each step deliver Enabled()[i].
	Path []uint16
	// OriginalLen is the path length before minimization.
	OriginalLen int
	// Minimized reports that delta-debugging ran (and reproduced the
	// violation at least once).
	Minimized bool
}

func (c *Counterexample) Error() string {
	d := len(c.Path)
	switch c.Kind {
	case VInvariant:
		return fmt.Sprintf("%s (depth %d)", c.Msg, d)
	case VDeadlock:
		return fmt.Sprintf("verif: deadlock at depth %d: %s", d, c.Msg)
	case VLivelock:
		return fmt.Sprintf("verif: depth bound %d exceeded (livelock?)", d)
	case VForbidden:
		return fmt.Sprintf("verif: forbidden outcome reachable: %s", c.Msg)
	}
	return c.Msg
}

// newModel builds and starts a fresh model. testRootMutate, when
// non-nil, perturbs every freshly built model after Start — a test seam
// for forcing failure branches (deadlock, action-count overflow) that
// well-formed configurations cannot reach. It must be deterministic:
// exploration, minimization, and replay all rebuild through here and
// must see the same root.
func newModel(mcfg ModelConfig) (*Model, error) {
	m, err := Build(mcfg)
	if err != nil {
		return nil, err
	}
	m.Start()
	if testRootMutate != nil {
		testRootMutate(m)
	}
	return m, nil
}

var testRootMutate func(*Model)

// minimizeBudget caps model re-executions per minimization, keeping the
// delta-debugging cost bounded on deep witnesses.
const minimizeBudget = 600

// minimizeWitness shrinks cex.Path by delta debugging: greedily drop
// chunks of delivery steps while the same violation still reproduces.
// Because dropping a step renumbers every later Enabled() index, steps
// are matched by message identity (ActionKey) rather than by index, and
// the surviving subsequence is converted back to an index path at the
// end. Guarantees: the result reproduces the identical failure (same
// Kind and Msg — for invariants it may fire at a shallower depth along
// the way, which truncates the tail for free), and is never longer than
// the original. On any budget exhaustion or non-reproduction the
// original path is kept.
func minimizeWitness(mcfg ModelConfig, sym *symmetry, cex *Counterexample, rep *Report) {
	if len(cex.Path) == 0 {
		return
	}
	budget := minimizeBudget
	keys, err := pathKeys(mcfg, cex.Path, rep)
	if err != nil {
		return
	}
	// Sanity: replaying the full key sequence must reproduce the failure
	// (it re-executes the original path by identity).
	best, ok := reproduces(mcfg, sym, keys, cex, rep, &budget)
	if !ok {
		return
	}
	cex.Minimized = true
	sz := len(keys) / 2
	if sz < 1 {
		sz = 1
	}
	for budget > 0 {
		removed := false
		for start := 0; start+sz <= len(keys) && budget > 0; {
			cand := make([]string, 0, len(keys)-sz)
			cand = append(cand, keys[:start]...)
			cand = append(cand, keys[start+sz:]...)
			if p, ok := reproduces(mcfg, sym, cand, cex, rep, &budget); ok {
				keys, best, removed = cand, p, true
			} else {
				start += sz
			}
		}
		if !removed {
			if sz == 1 {
				break
			}
			sz /= 2
		}
	}
	if len(best) <= len(cex.Path) {
		cex.Path = best
	}
}

// pathKeys renders the message identity of each step of path.
func pathKeys(mcfg ModelConfig, path []uint16, rep *Report) ([]string, error) {
	m, err := newModel(mcfg)
	if err != nil {
		return nil, err
	}
	defer m.Release()
	rep.Builds++
	keys := make([]string, 0, len(path))
	for i, ai := range path {
		acts := m.Fabric.Enabled()
		if int(ai) >= len(acts) {
			return nil, fmt.Errorf("verif: witness diverged at step %d", i)
		}
		keys = append(keys, m.Fabric.ActionKey(acts[ai]))
		m.Step(acts[ai])
	}
	return keys, nil
}

// reproduces replays the delivery steps identified by keys (matched by
// message identity, first match in canonical order) and reports whether
// the same violation fires, returning the corresponding index path.
// Invariant violations may fire before all keys are consumed; the
// shorter prefix is returned.
func reproduces(mcfg ModelConfig, sym *symmetry, keys []string, cex *Counterexample, rep *Report, budget *int) ([]uint16, bool) {
	if *budget <= 0 {
		return nil, false
	}
	*budget--
	m, err := newModel(mcfg)
	if err != nil {
		return nil, false
	}
	defer m.Release()
	rep.Builds++
	path := make([]uint16, 0, len(keys))
	for _, key := range keys {
		acts := m.Fabric.Enabled()
		ai := -1
		for i, a := range acts {
			if m.Fabric.ActionKey(a) == key {
				ai = i
				break
			}
		}
		if ai < 0 || ai > math.MaxUint16 {
			return nil, false
		}
		m.Step(acts[ai])
		path = append(path, uint16(ai))
		if cex.Kind == VInvariant {
			if err := m.checkInvariants(); err != nil && err.Error() == cex.Msg {
				return path, true
			}
		}
	}
	switch cex.Kind {
	case VInvariant:
		// Not reproduced mid-path above: the remaining VInvariant source
		// is an incoherent terminal outcome (Model.Outcome error).
		if len(m.Fabric.Enabled()) == 0 && m.AllFinished() {
			if _, oerr := m.Outcome(); oerr != nil && oerr.Error() == cex.Msg {
				return path, true
			}
		}
		return nil, false
	case VDeadlock:
		return path, len(m.Fabric.Enabled()) == 0 && !m.AllFinished()
	case VForbidden:
		if len(m.Fabric.Enabled()) != 0 || !m.AllFinished() {
			return nil, false
		}
		o, oerr := m.Outcome()
		if oerr != nil {
			return nil, false
		}
		// The recorded outcome may be an orbit image of the one this
		// path concretely produces (the checker records all images of a
		// merged terminal), so match up to the symmetry group.
		if o.String() == cex.Msg {
			return path, true
		}
		if sym != nil {
			for _, oo := range sym.outcomeOrbit(o) {
				if oo.String() == cex.Msg {
					return path, true
				}
			}
		}
		return nil, false
	}
	return nil, false
}

// ReplayResult reports what replaying a delivery path does to a fresh
// model.
type ReplayResult struct {
	// Steps decodes each delivered message in order.
	Steps []string
	// Kind/Msg describe the violation the path reproduces; VNone if the
	// replay completes without one.
	Kind ViolationKind
	Msg  string
	// FailedAt is the number of steps delivered when the violation fired
	// (== len(Steps) unless an invariant tripped mid-path).
	FailedAt int
	// Terminal reports an all-retired, fabric-empty final state; Outcome
	// is then valid.
	Terminal bool
	Outcome  litmus.Outcome
	// EnabledAtEnd counts deliverable actions at the final state (>0 with
	// !Terminal on a livelock witness: the bound was hit, not a dead end).
	EnabledAtEnd int
}

// Replay deterministically re-executes a counterexample path against a
// fresh model, checking invariants after every delivery. It is the
// c3check -replay backend and the reproduction guarantee behind every
// witness Check returns.
func Replay(mcfg ModelConfig, path []uint16) (*ReplayResult, error) {
	m, err := newModel(mcfg)
	if err != nil {
		return nil, err
	}
	defer m.Release()
	res := &ReplayResult{}
	if err := m.checkInvariants(); err != nil {
		res.Kind, res.Msg = VInvariant, err.Error()
		return res, nil
	}
	for _, ai := range path {
		acts := m.Fabric.Enabled()
		if int(ai) >= len(acts) {
			return nil, fmt.Errorf("verif: replay diverged: action %d of %d enabled after step %d",
				ai, len(acts), len(res.Steps))
		}
		res.Steps = append(res.Steps, m.Fabric.Peek(acts[ai]).String())
		m.Step(acts[ai])
		if err := m.checkInvariants(); err != nil {
			res.Kind, res.Msg, res.FailedAt = VInvariant, err.Error(), len(res.Steps)
			return res, nil
		}
	}
	res.FailedAt = len(res.Steps)
	res.EnabledAtEnd = len(m.Fabric.Enabled())
	if res.EnabledAtEnd == 0 {
		if !m.AllFinished() {
			res.Kind, res.Msg = VDeadlock, "cores stuck with empty fabric"
			return res, nil
		}
		o, oerr := m.Outcome()
		if oerr != nil {
			res.Kind, res.Msg, res.FailedAt = VInvariant, oerr.Error(), len(res.Steps)
			return res, nil
		}
		res.Terminal = true
		res.Outcome = o
		if mcfg.Test.Forbidden != nil && mcfg.Test.Forbidden(res.Outcome) {
			res.Kind, res.Msg = VForbidden, res.Outcome.String()
		}
	}
	return res, nil
}
