package verif

import (
	"fmt"
	"hash/fnv"
	"io"
	"sort"

	"c3/internal/cpu"
	"c3/internal/litmus"
	"c3/internal/mem"
	"c3/internal/msg"
)

// This file implements the checker's state-space reductions: canonical
// hashing (states differing only in transient bookkeeping merge) and
// symmetry reduction (states differing only by a renaming of
// interchangeable hosts and line addresses merge). Both act purely at
// fingerprint time — the explored models are untouched, so witnesses,
// invariant messages, and replays always describe concrete states.
//
// Soundness of the symmetry group (see DESIGN.md §14): a candidate
// renaming pairs a permutation of threads with a permutation of
// variables, and is admitted only if it is an automorphism of the
// instantiated system —
//
//   - threads permute only within their cluster (clusters may differ in
//     local protocol and MCM, so a cross-cluster swap is not an
//     isomorphism);
//   - pinned threads (any thread holding a register, i.e. with a load or
//     RMW) never move: litmus outcomes key registers by thread index, so
//     permuting a register-bearing thread would relabel outcomes;
//   - per thread t, renaming the variables of t's effective program must
//     reproduce, op for op, the program of the thread whose slot t takes.
//
// The admitted set is closed under composition and inversion (it is the
// automorphism group of the labeled program structure), so taking the
// minimum fingerprint over it picks one canonical representative per
// orbit. Variable permutations (and the invalid-frame dropping in the
// canonical dumps) additionally require that distinct variables can
// never contend for a cache set — guaranteed when the test has at most
// 16 variables (the L1 set count; LLC has 64 sets) and the LLC is not
// shrunk by TinyLLC; otherwise variables stay pinned.

// symPerm is one admitted renaming. perms[0] is always the identity.
type symPerm struct {
	identity bool
	tperm    []int // original thread -> canonical slot
	threadAt []int // canonical slot -> original thread
	vperm    []int // original var index -> canonical var index
	varAt    []int // canonical var index -> original var index
}

// symmetry carries the admitted renaming group plus the line-address
// tables the renamings (and the partial-order reduction) index by.
type symmetry struct {
	perms    []symPerm
	lineIdx  map[mem.LineAddr]int // variable line -> var index
	varLines []mem.LineAddr      // var index -> line
	vars     []litmus.Var
	nThreads int
	// porOK gates the partial-order reduction and the invalid-frame /
	// variable-permutation reductions: false when set conflicts could
	// couple distinct lines (TinyLLC, or more variables than L1 sets).
	porOK bool
}

// maxSymCandidates bounds the renaming candidates enumerated; past it
// the group degenerates to the identity (correct, just unreduced).
const maxSymCandidates = 4096

// newSymmetry computes the admitted renaming group for a model config.
func newSymmetry(mcfg ModelConfig) *symmetry {
	t := mcfg.Test
	n := len(t.Threads)
	s := &symmetry{
		nThreads: n,
		vars:     t.Vars,
		lineIdx:  make(map[mem.LineAddr]int, len(t.Vars)),
	}
	for i, v := range t.Vars {
		l := varAddrOf(t, v).Line()
		s.varLines = append(s.varLines, l)
		s.lineIdx[l] = i
	}
	s.porOK = !mcfg.TinyLLC && len(t.Vars) <= 16

	// Effective programs exactly as Build instantiates them — symmetry
	// must hold on what runs, not on the nominal test.
	eff := make([]litmus.Thread, n)
	for ti, th := range t.Threads {
		switch mcfg.Sync {
		case litmus.SyncFull:
			eff[ti] = litmus.Refine(th, mcfg.MCMs[ti%2])
		case litmus.SyncNone:
			eff[ti] = litmus.Strip(th)
		default:
			eff[ti] = th
		}
	}
	pinned := make([]bool, n)
	for ti, th := range eff {
		for _, op := range th {
			if op.Kind == cpu.Load || op.Kind.IsRMW() {
				pinned[ti] = true
				break
			}
		}
	}
	vidx := make(map[litmus.Var]int, len(t.Vars))
	for i, v := range t.Vars {
		vidx[v] = i
	}
	// Free variables may permute: referenced by no pinned thread (a
	// pinned thread's program could never match under the renaming
	// anyway) and only when set conflicts are impossible.
	varFree := make([]bool, len(t.Vars))
	if s.porOK {
		for i := range varFree {
			varFree[i] = true
		}
		for ti, th := range eff {
			if !pinned[ti] {
				continue
			}
			for _, op := range th {
				if op.Kind.IsMem() {
					varFree[vidx[op.V]] = false
				}
			}
		}
	}

	var uc [2][]int // unpinned threads per cluster
	for ti := 0; ti < n; ti++ {
		if !pinned[ti] {
			uc[ti%2] = append(uc[ti%2], ti)
		}
	}
	var freeV []int
	for i, f := range varFree {
		if f {
			freeV = append(freeV, i)
		}
	}
	if fact(len(uc[0]))*fact(len(uc[1]))*fact(len(freeV)) > maxSymCandidates {
		uc[0], uc[1], freeV = nil, nil, nil
	}

	identPerm := func() symPerm {
		p := symPerm{
			tperm: make([]int, n), threadAt: make([]int, n),
			vperm: make([]int, len(t.Vars)), varAt: make([]int, len(t.Vars)),
		}
		for i := 0; i < n; i++ {
			p.tperm[i], p.threadAt[i] = i, i
		}
		for i := range t.Vars {
			p.vperm[i], p.varAt[i] = i, i
		}
		return p
	}
	id := identPerm()
	id.identity = true
	s.perms = append(s.perms, id)

	for _, p0 := range permutations(len(uc[0])) {
		for _, p1 := range permutations(len(uc[1])) {
			for _, pv := range permutations(len(freeV)) {
				cand := identPerm()
				for k, ti := range uc[0] {
					cand.tperm[ti] = uc[0][p0[k]]
				}
				for k, ti := range uc[1] {
					cand.tperm[ti] = uc[1][p1[k]]
				}
				for k, vi := range freeV {
					cand.vperm[vi] = freeV[pv[k]]
				}
				ident := true
				for i, v := range cand.tperm {
					cand.threadAt[v] = i
					if v != i {
						ident = false
					}
				}
				for i, v := range cand.vperm {
					cand.varAt[v] = i
					if v != i {
						ident = false
					}
				}
				if ident {
					continue // already have the identity at perms[0]
				}
				// Admit only automorphisms: thread t's program, with its
				// variables renamed, must equal the program of the thread
				// whose slot it takes.
				valid := true
			check:
				for ti := 0; ti < n; ti++ {
					a, b := eff[ti], eff[cand.tperm[ti]]
					if len(a) != len(b) {
						valid = false
						break
					}
					for oi := range a {
						op := a[oi]
						if op.Kind.IsMem() {
							op.V = t.Vars[cand.vperm[vidx[op.V]]]
						}
						if op != b[oi] {
							valid = false
							break check
						}
					}
				}
				if valid {
					s.perms = append(s.perms, cand)
				}
			}
		}
	}
	return s
}

func fact(n int) int {
	f := 1
	for i := 2; i <= n; i++ {
		f *= i
	}
	return f
}

// permutations enumerates all permutations of [0,n) deterministically.
func permutations(n int) [][]int {
	cur := make([]int, n)
	for i := range cur {
		cur[i] = i
	}
	var out [][]int
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for i := k; i < n; i++ {
			cur[k], cur[i] = cur[i], cur[k]
			rec(k + 1)
			cur[k], cur[i] = cur[i], cur[k]
		}
	}
	rec(0)
	return out
}

// identityNode and identityLine avoid per-dump closure allocations for
// the (overwhelmingly common) identity renaming.
func identityNode(id msg.NodeID) msg.NodeID   { return id }
func identityLine(a mem.LineAddr) mem.LineAddr { return a }

func (s *symmetry) rnNodeFn(p *symPerm) func(msg.NodeID) msg.NodeID {
	if p.identity {
		return identityNode
	}
	return func(id msg.NodeID) msg.NodeID {
		if t := int(id) - 4; t >= 0 && t < s.nThreads {
			return msg.NodeID(4 + p.tperm[t])
		}
		return id
	}
}

func (s *symmetry) rnLineFn(p *symPerm) func(mem.LineAddr) mem.LineAddr {
	if p.identity {
		return identityLine
	}
	return func(a mem.LineAddr) mem.LineAddr {
		if i, ok := s.lineIdx[a]; ok {
			return s.varLines[p.vperm[i]]
		}
		return a
	}
}

// HashCanon fingerprints the canonical representative of the model's
// symmetry orbit: the minimum canonical-dump hash over the admitted
// renaming group. The second return reports whether the minimum came
// from a non-identity renaming — i.e. whether this state folded onto a
// symmetric sibling rather than hashing as its own canonical form.
func (m *Model) HashCanon(s *symmetry) (uint64, bool) {
	h := fnv.New64a()
	m.dumpCanon(h, s, &s.perms[0])
	best := h.Sum64()
	renamed := false
	for i := 1; i < len(s.perms); i++ {
		h := fnv.New64a()
		m.dumpCanon(h, s, &s.perms[i])
		if v := h.Sum64(); v < best {
			best, renamed = v, true
		}
	}
	return best, renamed
}

// dumpCanon renders the model's canonical dump under one renaming, in
// Build's component order. Differences from the raw DumpState path:
//
//   - components render through the renaming (thread slots, node ids in
//     sharer vectors and messages, line addresses);
//   - pure bookkeeping is excluded (default directory entries,
//     invalid cache frames where set conflicts are impossible, stale
//     payloads of !DataValid frames);
//   - protocol-relevant state the raw dump omits is ADDED — register
//     files, source fetch positions, message VNet/Word/Mask/Acq/Rel/
//     Poisoned — so the canonical hash is never coarser than real
//     state where it matters.
func (m *Model) dumpCanon(w io.Writer, s *symmetry, p *symPerm) {
	rnLine := s.rnLineFn(p)
	rnNode := s.rnNodeFn(p)
	rnAddr := func(a mem.Addr) mem.Addr {
		l := a.Line()
		return mem.Addr(rnLine(l)) + (a - mem.Addr(l))
	}
	// Invalid-frame dropping is per-level: L1s have 16 sets, the LLC 64
	// (unless TinyLLC shrinks it), so each gate needs set conflicts
	// impossible at that level.
	skipL1 := len(s.vars) <= 16
	skipLLC := !m.cfg.TinyLLC && len(s.vars) <= 16
	for slot := 0; slot < s.nThreads; slot++ {
		ti := p.threadAt[slot]
		m.cores[ti].DumpCanon(w, slot, rnAddr)
		src := m.srcs[ti]
		regs := make([]int, 0, len(src.Regs))
		for r := range src.Regs {
			regs = append(regs, r)
		}
		sort.Ints(regs)
		fmt.Fprintf(w, "REG[%d]", slot)
		for _, r := range regs {
			fmt.Fprintf(w, "r%d=%d;", r, src.Regs[r])
		}
		fmt.Fprintf(w, "p%d\n", src.Pos())
	}
	for slot := 0; slot < s.nThreads; slot++ {
		m.l1s[p.threadAt[slot]].l1.DumpCanon(w, msg.NodeID(4+slot), rnLine, skipL1)
	}
	for _, c3 := range m.c3s {
		c3.DumpCanon(w, rnLine, rnNode, skipLLC)
	}
	if m.dcoh != nil {
		m.dcoh.DumpCanon(w, rnLine, rnNode)
	}
	if m.hdir != nil {
		m.hdir.DumpCanon(w, rnLine, rnNode)
	}
	// DRAM renders per canonical variable slot via Peek, which
	// normalizes "line absent" and "line holding zeroes" — the raw dump
	// distinguishes them even though reads cannot.
	fmt.Fprint(w, "DRAM")
	for slot := range s.varLines {
		fmt.Fprintf(w, "%d:%v;", slot, m.dram.Peek(s.varLines[p.varAt[slot]]))
	}
	fmt.Fprintln(w)
	m.Fabric.DumpCanon(w, rnLine, rnNode)
}

// outcomeOrbit returns the images of a terminal outcome under every
// non-identity renaming in the group. When the checker merges symmetric
// states it visits only one representative terminal per orbit; recording
// the orbit images keeps Report.Outcomes (and the Forbidden evaluation)
// identical to an unreduced exploration. Register keys are invariant —
// only register-free threads permute — so only variable keys move.
func (s *symmetry) outcomeOrbit(o litmus.Outcome) []litmus.Outcome {
	if len(s.perms) == 1 {
		return nil
	}
	out := make([]litmus.Outcome, 0, len(s.perms)-1)
	for i := 1; i < len(s.perms); i++ {
		p := &s.perms[i]
		no := make(litmus.Outcome, len(o))
		for k, v := range o {
			no[k] = v
		}
		for vi := range s.vars {
			if val, ok := o[string(s.vars[vi])]; ok {
				no[string(s.vars[p.vperm[vi]])] = val
			}
		}
		out = append(out, no)
	}
	return out
}
