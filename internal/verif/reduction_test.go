package verif

import (
	"errors"
	"testing"
	"time"

	"c3/internal/cpu"
	"c3/internal/litmus"
	"c3/internal/mem"
)

// wmoCXL builds the canonical reduction-test configuration: mesi hosts,
// cxl global protocol, weakly ordered cores, full synchronization.
func wmoCXL(t testing.TB, name string, sync litmus.SyncMode) ModelConfig {
	tc, ok := litmus.ByName(name)
	if !ok {
		t.Fatalf("no %s test", name)
	}
	return ModelConfig{
		Test:   tc,
		Locals: [2]string{"mesi", "mesi"},
		Global: "cxl",
		MCMs:   [2]cpu.MCM{cpu.WMO, cpu.WMO},
		Sync:   sync,
	}
}

// TestReductionEquivalenceCorpus runs the cross-check mode over the full
// litmus corpus on the canonical configuration: the reduced checker
// (canonical hashing + symmetry + POR) must reach a superset of the
// unreduced checker's outcomes and agree on every violation verdict.
// CrossCheck performs both runs and the comparison internally.
func TestReductionEquivalenceCorpus(t *testing.T) {
	for _, lt := range litmus.Tests() {
		lt := lt
		t.Run(lt.Name, func(t *testing.T) {
			mcfg := wmoCXL(t, lt.Name, litmus.SyncFull)
			_, err := Check(mcfg, CheckerConfig{Workers: 1, MaxStates: 100_000, CrossCheck: true})
			var cex *Counterexample
			if err != nil && !errors.As(err, &cex) {
				t.Fatalf("cross-check failed: %v", err)
			}
		})
	}
}

// TestReductionEquivalenceVariants cross-checks the reduction on
// configurations that exercise its gating and fallback logic: an hmesi
// global directory with mixed host protocols and MCMs (pre-existing
// invariant violations — both sides must report the same kind), a
// TinyLLC host (variable permutations and POR must disable themselves;
// thread symmetry stays sound), and unsynchronized runs with forbidden
// checking on (forbidden verdicts must agree). Both serial and parallel
// expansions run to pin worker independence of the comparison.
func TestReductionEquivalenceVariants(t *testing.T) {
	type variant struct {
		name           string
		locals         [2]string
		global         string
		mcms           [2]cpu.MCM
		sync           litmus.SyncMode
		tiny           bool
		checkForbidden bool
	}
	variants := []variant{
		{"hmesi-mixed", [2]string{"moesi", "mesif"}, "hmesi", [2]cpu.MCM{cpu.TSO, cpu.WMO}, litmus.SyncFull, false, false},
		{"tiny-llc", [2]string{"mesi", "mesi"}, "cxl", [2]cpu.MCM{cpu.WMO, cpu.WMO}, litmus.SyncFull, true, false},
		{"unsynced-forbidden", [2]string{"mesi", "mesi"}, "cxl", [2]cpu.MCM{cpu.WMO, cpu.WMO}, litmus.SyncNone, false, true},
	}
	for _, v := range variants {
		for _, name := range []string{"MP", "SB"} {
			for _, workers := range []int{1, 8} {
				v, name, workers := v, name, workers
				t.Run(v.name+"/"+name, func(t *testing.T) {
					lt, ok := litmus.ByName(name)
					if !ok {
						t.Fatalf("no %s test", name)
					}
					mcfg := ModelConfig{Test: lt, Locals: v.locals, Global: v.global,
						MCMs: v.mcms, Sync: v.sync, TinyLLC: v.tiny}
					ccfg := CheckerConfig{Workers: workers, MaxStates: 100_000,
						CheckForbidden: v.checkForbidden, CrossCheck: true}
					_, err := Check(mcfg, ccfg)
					var cex *Counterexample
					if err != nil && !errors.As(err, &cex) {
						t.Fatalf("cross-check failed (workers=%d): %v", workers, err)
					}
				})
			}
		}
	}
}

// TestCanonOffReproducesLegacyCounts pins the -canon=off -por=off escape
// hatch: with both reductions disabled the checker must reproduce the
// pre-reduction state counts exactly — same hash function, same visit
// order, same truncation behavior as the seed checker.
func TestCanonOffReproducesLegacyCounts(t *testing.T) {
	want := map[string]uint64{
		"MP":    198,
		"SB":    219,
		"WRC":   1180,
		"IRIW":  6245,
		"CoRR2": 1589,
	}
	for name, states := range want {
		mcfg := wmoCXL(t, name, litmus.SyncFull)
		rep, err := Check(mcfg, CheckerConfig{Workers: 1, MaxStates: 100_000, CanonOff: true, POROff: true})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rep.States != states {
			t.Errorf("%s: canon=off por=off visited %d states, want legacy count %d", name, rep.States, states)
		}
		if rep.SymmetryMerges != 0 || rep.PORSkips != 0 {
			t.Errorf("%s: reduction counters nonzero with reductions off: symm=%d por=%d",
				name, rep.SymmetryMerges, rep.PORSkips)
		}
	}
}

// TestReductionCompletesFormerlyTruncated is the acceptance check from
// the issue: MP+3W under a 10k-state budget truncates unreduced (22014
// states exist) but completes exhaustively reduced, with both symmetry
// and POR contributing, and the reduced run still reaches every outcome
// the truncated unreduced run saw.
func TestReductionCompletesFormerlyTruncated(t *testing.T) {
	mcfg := wmoCXL(t, "MP+3W", litmus.SyncFull)
	const budget = 10_000

	raw, err := Check(mcfg, CheckerConfig{Workers: 1, MaxStates: budget, CanonOff: true, POROff: true})
	if err != nil {
		t.Fatalf("unreduced: %v", err)
	}
	if !raw.Truncated {
		t.Fatalf("unreduced run was expected to truncate at %d states (visited %d)", budget, raw.States)
	}

	red, err := Check(mcfg, CheckerConfig{Workers: 1, MaxStates: budget})
	if err != nil {
		t.Fatalf("reduced: %v", err)
	}
	if red.Truncated {
		t.Fatalf("reduced run still truncated: %d states", red.States)
	}
	if red.SymmetryMerges == 0 {
		t.Error("reduced run reports no symmetry merges; MP+3W has interchangeable writer threads")
	}
	if red.PORSkips == 0 {
		t.Error("reduced run reports no POR skips; MP+3W has independent single-store lines")
	}
	for o := range raw.Outcomes {
		if !red.Outcomes[o] {
			t.Errorf("outcome %q reached by the truncated unreduced run but not the reduced run", o)
		}
	}
	t.Logf("unreduced truncated at %d states; reduced completed at %d (symm=%d, por=%d)",
		raw.States, red.States, red.SymmetryMerges, red.PORSkips)
}

// TestReducedCheckerWorkerIndependence: the reduced checker's Report —
// including the new reduction counters — must be identical at any worker
// count, exactly like the unreduced checker's.
func TestReducedCheckerWorkerIndependence(t *testing.T) {
	mcfg := wmoCXL(t, "MP+3W", litmus.SyncFull)
	want, err := Check(mcfg, CheckerConfig{Workers: 1, MaxStates: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		got, err := Check(mcfg, CheckerConfig{Workers: workers, MaxStates: 100_000})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got.States != want.States || got.Terminals != want.Terminals ||
			got.MaxDepth != want.MaxDepth || got.Truncated != want.Truncated ||
			got.SymmetryMerges != want.SymmetryMerges || got.PORSkips != want.PORSkips {
			t.Errorf("workers=%d diverged: got states=%d terminals=%d depth=%d symm=%d por=%d, want %d/%d/%d/%d/%d",
				workers, got.States, got.Terminals, got.MaxDepth, got.SymmetryMerges, got.PORSkips,
				want.States, want.Terminals, want.MaxDepth, want.SymmetryMerges, want.PORSkips)
		}
		if len(got.Outcomes) != len(want.Outcomes) {
			t.Errorf("workers=%d: %d outcomes, want %d", workers, len(got.Outcomes), len(want.Outcomes))
		}
		for o := range want.Outcomes {
			if !got.Outcomes[o] {
				t.Errorf("workers=%d missing outcome %q", workers, o)
			}
		}
	}
}

// TestSymmetryGroups pins the admitted renaming groups: MP has no
// nontrivial symmetry (both threads are register-bearing and pinned),
// while MP+3W admits exactly one nontrivial renaming — swapping the two
// interchangeable cluster-0 writer threads t2/t4 — and TinyLLC keeps
// the thread swap while disabling variable permutations and POR.
func TestSymmetryGroups(t *testing.T) {
	for _, tc := range []struct {
		name  string
		tiny  bool
		perms int
		porOK bool
	}{
		{"MP", false, 1, true},
		{"CoRR2", false, 1, true},
		{"MP+3W", false, 2, true},
		{"MP+3W", true, 2, false},
	} {
		mcfg := wmoCXL(t, tc.name, litmus.SyncFull)
		mcfg.TinyLLC = tc.tiny
		sym := newSymmetry(mcfg)
		if len(sym.perms) != tc.perms {
			t.Errorf("%s (tiny=%v): %d admitted renamings, want %d", tc.name, tc.tiny, len(sym.perms), tc.perms)
		}
		if sym.porOK != tc.porOK {
			t.Errorf("%s (tiny=%v): porOK=%v, want %v", tc.name, tc.tiny, sym.porOK, tc.porOK)
		}
	}
}

// TestCheckReleasesAllModels pins the snapshot-pool accounting across
// every early-return path: violations, truncation, deadline, livelock,
// and replay-from-root mode must all leave zero live models behind.
// Before the leak fixes, each counterexample path abandoned the frontier
// tail and the unmerged successor clones.
func TestCheckReleasesAllModels(t *testing.T) {
	base := ModelsLive()
	run := func(name string, mcfg ModelConfig, ccfg CheckerConfig) {
		t.Helper()
		_, err := Check(mcfg, ccfg)
		var cex *Counterexample
		if err != nil && !errors.As(err, &cex) &&
			!errors.Is(err, ErrCheckDeadline) {
			t.Fatalf("%s: unexpected error: %v", name, err)
		}
		if n := ModelsLive(); n != base {
			t.Errorf("%s: %d models leaked", name, n-base)
		}
	}

	// Forbidden-outcome counterexample (VForbidden early return).
	run("forbidden", wmoCXL(t, "MP", litmus.SyncNone),
		CheckerConfig{Workers: 4, MaxStates: 100_000, CheckForbidden: true})
	// Invariant violation mid-exploration (hmesi mixed config).
	run("invariant", ModelConfig{Test: mustTest(t, "MP"), Locals: [2]string{"moesi", "mesif"},
		Global: "hmesi", MCMs: [2]cpu.MCM{cpu.TSO, cpu.WMO}, Sync: litmus.SyncFull},
		CheckerConfig{Workers: 4, MaxStates: 100_000})
	// Truncation with a live frontier.
	run("truncated", wmoCXL(t, "IRIW", litmus.SyncFull),
		CheckerConfig{Workers: 4, MaxStates: 200})
	// Livelock detector (depth bound).
	run("livelock", wmoCXL(t, "MP", litmus.SyncFull),
		CheckerConfig{Workers: 1, MaxStates: 100_000, MaxDepth: 4})
	// Deadline already expired: immediate partial return.
	run("deadline", wmoCXL(t, "MP", litmus.SyncFull),
		CheckerConfig{Workers: 1, MaxStates: 100_000, Deadline: time.Now().Add(-time.Second)})
	// Replay-from-root mode (kids carry rebuilt models that must release).
	run("replay-from-root", wmoCXL(t, "MP", litmus.SyncFull),
		CheckerConfig{Workers: 4, MaxStates: 100_000, ReplayFromRoot: true})
	run("replay-truncated", wmoCXL(t, "MP", litmus.SyncFull),
		CheckerConfig{Workers: 4, MaxStates: 50, ReplayFromRoot: true})
}

func mustTest(t *testing.T, name string) litmus.Test {
	t.Helper()
	lt, ok := litmus.ByName(name)
	if !ok {
		t.Fatalf("no %s test", name)
	}
	return lt
}

// TestOutcomeConflictIsInvariantNotPanic: a terminal state whose caches
// hold irreconcilable copies (here: two shared-state frames with
// different data, which passes SWMR) must surface as a VInvariant
// counterexample with a replayable path — the Outcome computation used
// to panic on it and take the whole checker process down.
func TestOutcomeConflictIsInvariantNotPanic(t *testing.T) {
	lt := litmus.Test{
		Name:    "terminal-conflict",
		Vars:    []litmus.Var{"x"},
		Threads: []litmus.Thread{{}, {}},
	}
	mcfg := ModelConfig{Test: lt, Locals: [2]string{"mesi", "mesi"}, Global: "cxl",
		MCMs: [2]cpu.MCM{cpu.WMO, cpu.WMO}, Sync: litmus.SyncFull}
	addr := mem.LineAddr(0x40000)
	setRootMutate(t, func(m *Model) {
		for i := 0; i < 2; i++ {
			e := m.l1s[i].cache.Install(addr)
			e.State = 1 // stS: two shared copies keep SWMR happy...
			e.Data = mem.Data{uint64(i + 1)}
			e.DataValid = true // ...but their payloads disagree.
		}
	})

	_, err := Check(mcfg, CheckerConfig{Workers: 1, MaxStates: 1000})
	cex := asCex(t, err)
	if cex.Kind != VInvariant {
		t.Fatalf("kind = %v, want VInvariant", cex.Kind)
	}
	if want := "shared copies"; !contains(cex.Msg, want) {
		t.Fatalf("message %q does not mention %q", cex.Msg, want)
	}

	// The minimized witness must replay to the same verdict.
	res, err := Replay(mcfg, cex.Path)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != VInvariant || res.Msg != cex.Msg {
		t.Fatalf("replay = (%v, %q), want (VInvariant, %q)", res.Kind, res.Msg, cex.Msg)
	}
	if n := ModelsLive(); n != 0 {
		t.Errorf("%d models leaked through the Outcome-error path", n)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
