package verif

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"time"

	"c3/internal/litmus"
	"c3/internal/parallel"
)

// Abort sentinels: Check wraps these when an exploration is cut short by
// its wall-clock budget or a graceful shutdown. Both returns carry the
// partial Report accumulated so far, so callers can render what was
// explored before the cut.
var (
	// ErrCheckDeadline: CheckerConfig.Deadline passed mid-exploration.
	ErrCheckDeadline = errors.New("check deadline exceeded")
	// ErrCheckInterrupted: CheckerConfig.Interrupt closed mid-exploration.
	ErrCheckInterrupted = errors.New("check interrupted")
)

// Report summarizes one exhaustive exploration.
type Report struct {
	States    uint64 // distinct states visited
	Terminals uint64 // terminal (all-retired, fabric-empty) states
	Outcomes  map[string]bool
	Truncated bool // MaxStates reached before exhaustion
	MaxDepth  int
	// ForbiddenSkipped records that the test declares a Forbidden
	// predicate but the checker did not evaluate it because the model ran
	// with relaxed synchronization (Sync != SyncFull) — relaxed outcomes
	// the predicate names are then architecturally legal. Set
	// CheckerConfig.CheckForbidden to evaluate it anyway.
	ForbiddenSkipped bool
	// Builds counts full model constructions (Build + Start + prefix
	// re-execution); Clones counts snapshot deep copies. Together they
	// expose the cost profile: snapshot exploration does O(states) cheap
	// Clones and O(1) Builds, replay-from-root does O(states·depth) work
	// through Builds.
	Builds uint64
	Clones uint64
	// MemSheds counts memory-pressure degradation events: each time the
	// sampled heap crossed CheckerConfig.MemBudget the checker halved its
	// snapshot budget and released frontier snapshots instead of risking
	// an OOM kill. Shedding trades CPU (prefix replays) for memory; the
	// exploration result is unaffected.
	MemSheds uint64
	// SnapshotBudgetEnd is the snapshot budget in force when exploration
	// ended — equal to the configured budget unless shedding tightened it
	// (0 = the tail ran in replay-from-root mode).
	SnapshotBudgetEnd int
}

// CheckerConfig bounds the exploration.
type CheckerConfig struct {
	MaxStates uint64 // 0 -> 200k
	MaxDepth  int    // 0 -> 400
	// Workers parallelizes successor expansion (0 = GOMAXPROCS, 1 =
	// serial). Successor branches are independent by construction; hashes
	// and invariant results merge in canonical action order, keeping the
	// visit order — and therefore the Report — identical to a serial
	// exploration.
	Workers int
	// ReplayFromRoot disables snapshotting: every state is reconstructed
	// by re-executing its delivery prefix on a freshly built model, as the
	// original checker did. Kept as a cross-check (snapshot and replay
	// exploration must produce identical Reports) and as a low-memory
	// fallback.
	ReplayFromRoot bool
	// SnapshotBudget caps live frontier snapshots (0 -> 4096). Frontier
	// entries beyond the budget drop their model and are rebuilt by prefix
	// replay when popped, bounding memory on wide state spaces.
	SnapshotBudget int
	// CheckForbidden evaluates the test's Forbidden predicate even under
	// relaxed synchronization, where it is normally skipped (see
	// Report.ForbiddenSkipped). Used to demonstrate witness extraction on
	// outcomes that are reachable by design.
	CheckForbidden bool
	// OnProgress, when non-nil, receives a periodic exploration snapshot
	// about every ProgressEvery visited states — the live-introspection
	// feed behind c3check -statusz. It runs serially on the exploration
	// goroutine between expansions (never concurrently); implementations
	// that republish to other goroutines must synchronize. The hook
	// cannot influence exploration.
	OnProgress func(Progress)
	// ProgressEvery is the OnProgress period in states (0 -> 2048).
	ProgressEvery uint64
	// DeepCopySnapshots forces every successor clone to materialize all
	// copy-on-write backings eagerly (Model.Materialize), reproducing the
	// pre-COW checker's deep copies. Kept as a cross-check: COW and
	// deep-copy exploration must produce identical Reports.
	DeepCopySnapshots bool
	// Deadline bounds the exploration's wall clock (zero = none). When it
	// passes, Check returns the partial Report with an error wrapping
	// ErrCheckDeadline.
	Deadline time.Time
	// Interrupt, when non-nil, requests graceful shutdown once closed:
	// Check stops at the next poll and returns the partial Report with an
	// error wrapping ErrCheckInterrupted.
	Interrupt <-chan struct{}
	// MemBudget is a soft heap budget in bytes (0 = none). The checker
	// samples the heap periodically; over budget it degrades instead of
	// OOMing — halving SnapshotBudget, releasing frontier snapshots from
	// the tail, and falling back to replay-from-root when the budget
	// reaches zero. Degradation is recorded in Report.MemSheds and never
	// changes States/Terminals/Outcomes, only the Builds/Clones cost
	// profile.
	MemBudget uint64
	// MemSampleEvery is the heap sampling period in frontier pops
	// (0 -> 256). Sampling stops the world, so it is strided; small
	// values are for tests and tiny state spaces.
	MemSampleEvery int
}

// Progress is a mid-exploration snapshot for live introspection.
type Progress struct {
	// States / Terminals / Builds / Clones mirror the Report counters so
	// far; Frontier is the current BFS queue length; Depth the deepest
	// path expanded yet.
	States    uint64
	Terminals uint64
	Builds    uint64
	Clones    uint64
	Frontier  int
	Depth     int
}

// Check exhaustively explores mcfg's state space and verifies all
// invariants. On a violation the returned error is a *Counterexample
// whose Path replays the failure via Replay (witnesses other than
// livelocks are first minimized by delta-debugging).
//
// States are expanded by deep-copying the frontier snapshot
// (Model.Clone) and delivering one message to each copy; the delivery
// prefix is re-executed from the root only for entries whose snapshot
// was dropped (SnapshotBudget) or when ReplayFromRoot is set.
func Check(mcfg ModelConfig, ccfg CheckerConfig) (*Report, error) {
	if ccfg.MaxStates == 0 {
		ccfg.MaxStates = 200_000
	}
	if ccfg.MaxDepth == 0 {
		ccfg.MaxDepth = 400
	}
	if ccfg.SnapshotBudget == 0 {
		ccfg.SnapshotBudget = 4096
	}
	rep := &Report{Outcomes: map[string]bool{}}
	// visited dedups states by their 64-bit FNV-1a fingerprint. Caveat:
	// two distinct states that collide in 64 bits would silently merge,
	// pruning part of the space — with ~10^6 states the collision odds
	// are ~(states^2)/2^65 ≈ 10^-8, accepted for the memory savings of
	// not retaining canonical state strings.
	visited := make(map[uint64]struct{})

	checkForbidden := mcfg.Test.Forbidden != nil &&
		(mcfg.Sync == litmus.SyncFull || ccfg.CheckForbidden)
	if mcfg.Test.Forbidden != nil && !checkForbidden {
		rep.ForbiddenSkipped = true
	}

	// fail wraps a violation into a replayable, minimized witness.
	fail := func(kind ViolationKind, msgStr string, path []uint16) error {
		cex := &Counterexample{
			Kind: kind, Msg: msgStr,
			Path:        append([]uint16(nil), path...),
			OriginalLen: len(path),
		}
		if kind != VLivelock { // a livelock's path length is the failure
			minimizeWitness(mcfg, cex, rep)
		}
		return cex
	}

	// replayPath reconstructs the state after a delivery prefix. Callers
	// account rep.Builds serially (this also runs inside parallel.Map).
	replayPath := func(path []uint16) (*Model, error) {
		m, err := newModel(mcfg)
		if err != nil {
			return nil, err
		}
		for _, ai := range path {
			acts := m.Fabric.Enabled()
			if int(ai) >= len(acts) {
				return nil, fmt.Errorf("verif: replay diverged (action %d of %d)", ai, len(acts))
			}
			m.Step(acts[ai])
		}
		return m, nil
	}

	// The frontier carries each state's path always and its snapshot when
	// the budget allows; live tracks retained snapshots.
	type frontierEntry struct {
		path []uint16
		m    *Model
	}
	var frontier []frontierEntry
	live := 0

	m0, err := replayPath(nil)
	if err != nil {
		return nil, err
	}
	rep.Builds++
	visited[m0.Hash()] = struct{}{}
	rep.States++
	if err := m0.checkInvariants(); err != nil {
		return rep, fail(VInvariant, err.Error(), nil)
	}
	if ccfg.ReplayFromRoot {
		frontier = append(frontier, frontierEntry{})
	} else {
		frontier = append(frontier, frontierEntry{m: m0})
		live++
	}

	progressEvery := ccfg.ProgressEvery
	if progressEvery == 0 {
		progressEvery = 2048
	}
	var lastProgress uint64

	// SnapshotBudgetEnd reflects the budget in force at exit on every
	// return path, including violations and aborts.
	defer func() { rep.SnapshotBudgetEnd = ccfg.SnapshotBudget }()

	// Memory pressure is sampled on a stride because ReadMemStats stops
	// the world; deadline and interrupt polls are O(ns) per pop (vDSO
	// clock read + non-blocking select), negligible next to an expansion.
	memSampleStride := ccfg.MemSampleEvery
	if memSampleStride <= 0 {
		memSampleStride = 256
	}
	popsSinceSample := 0

	for len(frontier) > 0 {
		if ccfg.Interrupt != nil {
			select {
			case <-ccfg.Interrupt:
				return rep, fmt.Errorf("verif: %s: %w after %d states",
					mcfg.Test.Name, ErrCheckInterrupted, rep.States)
			default:
			}
		}
		if !ccfg.Deadline.IsZero() && time.Now().After(ccfg.Deadline) {
			return rep, fmt.Errorf("verif: %s: %w after %d states",
				mcfg.Test.Name, ErrCheckDeadline, rep.States)
		}
		if ccfg.MemBudget > 0 {
			if popsSinceSample++; popsSinceSample >= memSampleStride {
				popsSinceSample = 0
				var ms runtime.MemStats
				runtime.ReadMemStats(&ms)
				// Shed while there is still something to shed: each event
				// halves the snapshot budget (to zero below 32 — at that
				// point replaying beats thrashing) and strips frontier
				// snapshots from the tail, where entries wait longest
				// before being popped. The exploration itself is untouched:
				// stripped entries rebuild by prefix replay when popped.
				if ms.HeapAlloc > ccfg.MemBudget && (ccfg.SnapshotBudget > 0 || live > 0) {
					rep.MemSheds++
					ccfg.SnapshotBudget /= 2
					if ccfg.SnapshotBudget < 32 {
						ccfg.SnapshotBudget = 0
					}
					for i := len(frontier) - 1; i >= 0 && live > ccfg.SnapshotBudget; i-- {
						if frontier[i].m != nil {
							frontier[i].m.Release()
							frontier[i].m = nil
							live--
						}
					}
					runtime.GC()
				}
			}
		}
		if ccfg.OnProgress != nil && rep.States-lastProgress >= progressEvery {
			lastProgress = rep.States
			ccfg.OnProgress(Progress{
				States: rep.States, Terminals: rep.Terminals,
				Builds: rep.Builds, Clones: rep.Clones,
				Frontier: len(frontier), Depth: rep.MaxDepth,
			})
		}
		ent := frontier[0]
		frontier[0] = frontierEntry{}
		frontier = frontier[1:]
		path := ent.path
		if len(path) > rep.MaxDepth {
			rep.MaxDepth = len(path)
		}
		base := ent.m
		if base != nil {
			live--
		} else {
			base, err = replayPath(path)
			if err != nil {
				return rep, err
			}
			rep.Builds++
		}
		acts := base.Fabric.Enabled()
		if len(acts) == 0 {
			if !base.AllFinished() {
				return rep, fail(VDeadlock, "cores stuck with empty fabric", path)
			}
			rep.Terminals++
			o := base.Outcome()
			rep.Outcomes[o.String()] = true
			if checkForbidden && mcfg.Test.Forbidden(o) {
				return rep, fail(VForbidden, o.String(), path)
			}
			base.Release()
			continue
		}
		if len(path) >= ccfg.MaxDepth {
			return rep, fail(VLivelock, fmt.Sprintf("depth bound %d exceeded", ccfg.MaxDepth), path)
		}
		if len(acts) > math.MaxUint16+1 {
			return rep, fmt.Errorf("verif: %d enabled actions at depth %d exceed the %d-entry path encoding",
				len(acts), len(path), math.MaxUint16+1)
		}
		// Expand all successors in parallel: each branch deep-copies the
		// frontier snapshot (or, under ReplayFromRoot, re-executes the
		// prefix on a fresh model) and delivers one message. Clone is
		// read-only on the parent, so branches are independent. The merge
		// below runs serially in canonical action order, so visited-set
		// updates, state counts, truncation, and the frontier are
		// byte-identical to a serial exploration — and identical between
		// the snapshot and replay strategies, which reach the same states.
		// Invariants are pure functions of the state, so checking them
		// eagerly here (even for states the merge will skip as already
		// visited) changes nothing observable.
		type successor struct {
			hash   uint64
			invErr error
			m      *Model
		}
		kids, err := parallel.Map(context.Background(), ccfg.Workers, len(acts),
			func(ai int) (successor, error) {
				var m *Model
				if ccfg.ReplayFromRoot {
					var err error
					if m, err = replayPath(path); err != nil {
						return successor{}, err
					}
				} else {
					m = base.Clone()
					if ccfg.DeepCopySnapshots {
						m.Materialize()
					}
				}
				m.Step(m.Fabric.Enabled()[ai])
				s := successor{hash: m.Hash(), invErr: m.checkInvariants()}
				if !ccfg.ReplayFromRoot {
					s.m = m
				}
				return s, nil
			})
		if err != nil {
			return rep, err
		}
		if ccfg.ReplayFromRoot {
			rep.Builds += uint64(len(acts))
		} else {
			rep.Clones += uint64(len(acts))
		}
		// The base is fully expanded: recycle its COW backings. Each kid
		// holds its own references, so releasing the parent never frees
		// a slab a successor still shares.
		base.Release()
		for ai, kid := range kids {
			if _, seen := visited[kid.hash]; seen {
				if kid.m != nil {
					kid.m.Release()
				}
				continue
			}
			visited[kid.hash] = struct{}{}
			rep.States++
			np := make([]uint16, len(path)+1)
			copy(np, path)
			np[len(path)] = uint16(ai)
			if kid.invErr != nil {
				return rep, fail(VInvariant, kid.invErr.Error(), np)
			}
			if rep.States >= ccfg.MaxStates {
				rep.Truncated = true
				return rep, nil
			}
			ent := frontierEntry{path: np}
			if kid.m != nil {
				if live < ccfg.SnapshotBudget {
					ent.m = kid.m
					live++
				} else {
					// Over budget: drop the snapshot (the entry replays
					// its prefix when popped) and recycle its backings.
					kid.m.Release()
				}
			}
			frontier = append(frontier, ent)
		}
	}
	return rep, nil
}

// checkInvariants runs the per-state checks.
func (m *Model) checkInvariants() error {
	if err := m.checkSWMR(); err != nil {
		return err
	}
	return m.checkCompound()
}

// checkSWMR: at most one host cache system-wide holds write permission
// for a line, and never alongside other valid copies.
func (m *Model) checkSWMR() error {
	for _, a := range m.lines() {
		writers, readers := 0, 0
		for _, l := range m.l1s {
			e := l.cache.ProbeRO(a)
			if e == nil {
				continue
			}
			switch e.State {
			case 2, 3, 4: // stE, stM, stO: write permission or dirty
				if e.State == 4 {
					// MOESI O: dirty but read-only; counts as reader.
					readers++
				} else {
					writers++
				}
			case 1, 5: // stS, stF
				readers++
			}
		}
		if writers > 1 {
			return fmt.Errorf("verif: SWMR violated on %v: %d writers", a, writers)
		}
		if writers == 1 && readers > 0 {
			return fmt.Errorf("verif: SWMR violated on %v: writer with %d readers", a, readers)
		}
	}
	return nil
}

// checkCompound: Rule I's forbidden compound states must be unreachable
// in every C3 (checked only for lines with no transaction in flight —
// transient states are by construction intermediate).
func (m *Model) checkCompound() error {
	for _, c3 := range m.c3s {
		tab := c3.Table()
		for _, a := range m.lines() {
			l, g, busy := c3.CompoundOf(a)
			if busy {
				continue
			}
			for _, f := range tab.Forbidden {
				if f.L == l && f.G == g {
					return fmt.Errorf("verif: C3 %d reached forbidden compound state (%s,%s) on %v",
						c3.ID(), l, g, a)
				}
			}
		}
	}
	return nil
}
