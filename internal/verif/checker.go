package verif

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"time"

	"c3/internal/litmus"
	"c3/internal/parallel"
)

// Abort sentinels: Check wraps these when an exploration is cut short by
// its wall-clock budget or a graceful shutdown. Both returns carry the
// partial Report accumulated so far, so callers can render what was
// explored before the cut.
var (
	// ErrCheckDeadline: CheckerConfig.Deadline passed mid-exploration.
	ErrCheckDeadline = errors.New("check deadline exceeded")
	// ErrCheckInterrupted: CheckerConfig.Interrupt closed mid-exploration.
	ErrCheckInterrupted = errors.New("check interrupted")
)

// Report summarizes one exhaustive exploration.
type Report struct {
	States    uint64 // distinct states visited
	Terminals uint64 // terminal (all-retired, fabric-empty) states
	Outcomes  map[string]bool
	Truncated bool // MaxStates reached before exhaustion
	MaxDepth  int
	// ForbiddenSkipped records that the test declares a Forbidden
	// predicate but the checker did not evaluate it because the model ran
	// with relaxed synchronization (Sync != SyncFull) — relaxed outcomes
	// the predicate names are then architecturally legal. Set
	// CheckerConfig.CheckForbidden to evaluate it anyway.
	ForbiddenSkipped bool
	// Builds counts full model constructions (Build + Start + prefix
	// re-execution); Clones counts snapshot deep copies. Together they
	// expose the cost profile: snapshot exploration does O(states) cheap
	// Clones and O(1) Builds, replay-from-root does O(states·depth) work
	// through Builds.
	Builds uint64
	Clones uint64
	// MemSheds counts memory-pressure degradation events: each time the
	// sampled heap crossed CheckerConfig.MemBudget the checker halved its
	// snapshot budget and released frontier snapshots instead of risking
	// an OOM kill. Shedding trades CPU (prefix replays) for memory; the
	// exploration result is unaffected.
	MemSheds uint64
	// SnapshotBudgetEnd is the snapshot budget in force when exploration
	// ended — equal to the configured budget unless shedding tightened it
	// (0 = the tail ran in replay-from-root mode).
	SnapshotBudgetEnd int
	// SymmetryMerges counts successor states that folded onto an
	// already-visited state through a non-identity symmetry renaming —
	// the observable yield of the symmetry reduction.
	SymmetryMerges uint64
	// PORSkips counts successor expansions the partial-order reduction
	// skipped (enabled deliveries proven independent of the chosen
	// ample delivery).
	PORSkips uint64
}

// CheckerConfig bounds the exploration.
type CheckerConfig struct {
	MaxStates uint64 // 0 -> 200k
	MaxDepth  int    // 0 -> 400
	// Workers parallelizes successor expansion (0 = GOMAXPROCS, 1 =
	// serial). Successor branches are independent by construction; hashes
	// and invariant results merge in canonical action order, keeping the
	// visit order — and therefore the Report — identical to a serial
	// exploration.
	Workers int
	// ReplayFromRoot disables snapshotting: every state is reconstructed
	// by re-executing its delivery prefix on a freshly built model, as the
	// original checker did. Kept as a cross-check (snapshot and replay
	// exploration must produce identical Reports) and as a low-memory
	// fallback.
	ReplayFromRoot bool
	// SnapshotBudget caps live frontier snapshots (0 -> 4096). Frontier
	// entries beyond the budget drop their model and are rebuilt by prefix
	// replay when popped, bounding memory on wide state spaces.
	SnapshotBudget int
	// CheckForbidden evaluates the test's Forbidden predicate even under
	// relaxed synchronization, where it is normally skipped (see
	// Report.ForbiddenSkipped). Used to demonstrate witness extraction on
	// outcomes that are reachable by design.
	CheckForbidden bool
	// OnProgress, when non-nil, receives a periodic exploration snapshot
	// about every ProgressEvery visited states — the live-introspection
	// feed behind c3check -statusz. It runs serially on the exploration
	// goroutine between expansions (never concurrently); implementations
	// that republish to other goroutines must synchronize. The hook
	// cannot influence exploration.
	OnProgress func(Progress)
	// ProgressEvery is the OnProgress period in states (0 -> 2048).
	ProgressEvery uint64
	// DeepCopySnapshots forces every successor clone to materialize all
	// copy-on-write backings eagerly (Model.Materialize), reproducing the
	// pre-COW checker's deep copies. Kept as a cross-check: COW and
	// deep-copy exploration must produce identical Reports.
	DeepCopySnapshots bool
	// Deadline bounds the exploration's wall clock (zero = none). When it
	// passes, Check returns the partial Report with an error wrapping
	// ErrCheckDeadline.
	Deadline time.Time
	// Interrupt, when non-nil, requests graceful shutdown once closed:
	// Check stops at the next poll and returns the partial Report with an
	// error wrapping ErrCheckInterrupted.
	Interrupt <-chan struct{}
	// MemBudget is a soft heap budget in bytes (0 = none). The checker
	// samples the heap periodically; over budget it degrades instead of
	// OOMing — halving SnapshotBudget, releasing frontier snapshots from
	// the tail, and falling back to replay-from-root when the budget
	// reaches zero. Degradation is recorded in Report.MemSheds and never
	// changes States/Terminals/Outcomes, only the Builds/Clones cost
	// profile.
	MemBudget uint64
	// MemSampleEvery is the heap sampling period in frontier pops
	// (0 -> 256). Sampling stops the world, so it is strided; small
	// values are for tests and tiny state spaces.
	MemSampleEvery int
	// CanonOff disables canonical hashing and symmetry reduction,
	// fingerprinting states with the raw DumpState hash exactly as the
	// pre-reduction checker did (the -canon=off escape hatch).
	CanonOff bool
	// POROff disables the partial-order reduction, expanding every
	// enabled delivery at every state.
	POROff bool
	// CrossCheck runs the reduced and unreduced explorations back to
	// back and errors unless their Outcomes and violation verdicts
	// match — the DeepCopySnapshots-style proof harness for the
	// reduction layer. Cost: both explorations run in full.
	CrossCheck bool
}

// Progress is a mid-exploration snapshot for live introspection.
type Progress struct {
	// States / Terminals / Builds / Clones mirror the Report counters so
	// far; Frontier is the current BFS queue length; Depth the deepest
	// path expanded yet.
	States    uint64
	Terminals uint64
	Builds    uint64
	Clones    uint64
	Frontier  int
	Depth     int
	// SymmetryMerges / PORSkips mirror the Report's reduction counters so
	// far (zero when the reductions are disabled).
	SymmetryMerges uint64
	PORSkips       uint64
}

// Check exhaustively explores mcfg's state space and verifies all
// invariants. On a violation the returned error is a *Counterexample
// whose Path replays the failure via Replay (witnesses other than
// livelocks are first minimized by delta-debugging).
//
// States are expanded by deep-copying the frontier snapshot
// (Model.Clone) and delivering one message to each copy; the delivery
// prefix is re-executed from the root only for entries whose snapshot
// was dropped (SnapshotBudget) or when ReplayFromRoot is set.
func Check(mcfg ModelConfig, ccfg CheckerConfig) (*Report, error) {
	if ccfg.MaxStates == 0 {
		ccfg.MaxStates = 200_000
	}
	if ccfg.MaxDepth == 0 {
		ccfg.MaxDepth = 400
	}
	if ccfg.SnapshotBudget == 0 {
		ccfg.SnapshotBudget = 4096
	}
	if ccfg.CrossCheck {
		return crossCheck(mcfg, ccfg)
	}
	// sym is the admitted renaming group (identity-only for asymmetric
	// tests); the POR shares its line index and set-conflict gate.
	sym := newSymmetry(mcfg)
	// hashOf fingerprints a state: the canonical orbit-minimum hash, or
	// the raw DumpState hash under -canon=off. The second return reports
	// a non-identity renaming produced the minimum (a symmetry fold).
	hashOf := func(m *Model) (uint64, bool) {
		if ccfg.CanonOff {
			return m.Hash(), false
		}
		return m.HashCanon(sym)
	}
	rep := &Report{Outcomes: map[string]bool{}}
	// visited dedups states by their 64-bit FNV-1a fingerprint. Caveat:
	// two distinct states that collide in 64 bits would silently merge,
	// pruning part of the space — with ~10^6 states the collision odds
	// are ~(states^2)/2^65 ≈ 10^-8, accepted for the memory savings of
	// not retaining canonical state strings.
	visited := make(map[uint64]struct{})

	checkForbidden := mcfg.Test.Forbidden != nil &&
		(mcfg.Sync == litmus.SyncFull || ccfg.CheckForbidden)
	if mcfg.Test.Forbidden != nil && !checkForbidden {
		rep.ForbiddenSkipped = true
	}

	// fail wraps a violation into a replayable, minimized witness. The
	// symmetry group rides along so minimization can match forbidden
	// outcomes up to renaming (the recorded outcome may be an orbit
	// image of the one the witness path concretely produces).
	fail := func(kind ViolationKind, msgStr string, path []uint16) error {
		cex := &Counterexample{
			Kind: kind, Msg: msgStr,
			Path:        append([]uint16(nil), path...),
			OriginalLen: len(path),
		}
		if kind != VLivelock { // a livelock's path length is the failure
			minimizeWitness(mcfg, sym, cex, rep)
		}
		return cex
	}

	// replayPath reconstructs the state after a delivery prefix. Callers
	// account rep.Builds serially (this also runs inside parallel.Map).
	replayPath := func(path []uint16) (*Model, error) {
		m, err := newModel(mcfg)
		if err != nil {
			return nil, err
		}
		for _, ai := range path {
			acts := m.Fabric.Enabled()
			if int(ai) >= len(acts) {
				return nil, fmt.Errorf("verif: replay diverged (action %d of %d)", ai, len(acts))
			}
			m.Step(acts[ai])
		}
		return m, nil
	}

	// The frontier carries each state's path always and its snapshot when
	// the budget allows; live tracks retained snapshots.
	type frontierEntry struct {
		path []uint16
		m    *Model
	}
	var frontier []frontierEntry
	live := 0
	// Pool accounting: whatever path Check returns on — violation,
	// truncation, deadline, interrupt — the snapshots still parked in
	// the frontier must go back to their pools (frontier is captured by
	// reference, so the closure sees the final slice).
	defer func() {
		for i := range frontier {
			if frontier[i].m != nil {
				frontier[i].m.Release()
			}
		}
	}()

	m0, err := replayPath(nil)
	if err != nil {
		return nil, err
	}
	rep.Builds++
	h0, _ := hashOf(m0)
	visited[h0] = struct{}{}
	rep.States++
	if err := m0.checkInvariants(); err != nil {
		m0.Release()
		return rep, fail(VInvariant, err.Error(), nil)
	}
	if ccfg.ReplayFromRoot {
		m0.Release()
		frontier = append(frontier, frontierEntry{})
	} else {
		frontier = append(frontier, frontierEntry{m: m0})
		live++
	}

	progressEvery := ccfg.ProgressEvery
	if progressEvery == 0 {
		progressEvery = 2048
	}
	var lastProgress uint64

	// SnapshotBudgetEnd reflects the budget in force at exit on every
	// return path, including violations and aborts.
	defer func() { rep.SnapshotBudgetEnd = ccfg.SnapshotBudget }()

	// Memory pressure is sampled on a stride because ReadMemStats stops
	// the world; deadline and interrupt polls are O(ns) per pop (vDSO
	// clock read + non-blocking select), negligible next to an expansion.
	memSampleStride := ccfg.MemSampleEvery
	if memSampleStride <= 0 {
		memSampleStride = 256
	}
	popsSinceSample := 0

	for len(frontier) > 0 {
		if ccfg.Interrupt != nil {
			select {
			case <-ccfg.Interrupt:
				return rep, fmt.Errorf("verif: %s: %w after %d states",
					mcfg.Test.Name, ErrCheckInterrupted, rep.States)
			default:
			}
		}
		if !ccfg.Deadline.IsZero() && time.Now().After(ccfg.Deadline) {
			return rep, fmt.Errorf("verif: %s: %w after %d states",
				mcfg.Test.Name, ErrCheckDeadline, rep.States)
		}
		if ccfg.MemBudget > 0 {
			if popsSinceSample++; popsSinceSample >= memSampleStride {
				popsSinceSample = 0
				var ms runtime.MemStats
				runtime.ReadMemStats(&ms)
				// Shed while there is still something to shed: each event
				// halves the snapshot budget (to zero below 32 — at that
				// point replaying beats thrashing) and strips frontier
				// snapshots from the tail, where entries wait longest
				// before being popped. The exploration itself is untouched:
				// stripped entries rebuild by prefix replay when popped.
				if ms.HeapAlloc > ccfg.MemBudget && (ccfg.SnapshotBudget > 0 || live > 0) {
					rep.MemSheds++
					ccfg.SnapshotBudget /= 2
					if ccfg.SnapshotBudget < 32 {
						ccfg.SnapshotBudget = 0
					}
					for i := len(frontier) - 1; i >= 0 && live > ccfg.SnapshotBudget; i-- {
						if frontier[i].m != nil {
							frontier[i].m.Release()
							frontier[i].m = nil
							live--
						}
					}
					runtime.GC()
				}
			}
		}
		if ccfg.OnProgress != nil && rep.States-lastProgress >= progressEvery {
			lastProgress = rep.States
			ccfg.OnProgress(Progress{
				States: rep.States, Terminals: rep.Terminals,
				Builds: rep.Builds, Clones: rep.Clones,
				Frontier: len(frontier), Depth: rep.MaxDepth,
				SymmetryMerges: rep.SymmetryMerges, PORSkips: rep.PORSkips,
			})
		}
		ent := frontier[0]
		frontier[0] = frontierEntry{}
		frontier = frontier[1:]
		path := ent.path
		if len(path) > rep.MaxDepth {
			rep.MaxDepth = len(path)
		}
		base := ent.m
		if base != nil {
			live--
		} else {
			base, err = replayPath(path)
			if err != nil {
				return rep, err
			}
			rep.Builds++
		}
		acts := base.Fabric.Enabled()
		if len(acts) == 0 {
			if !base.AllFinished() {
				base.Release()
				return rep, fail(VDeadlock, "cores stuck with empty fabric", path)
			}
			rep.Terminals++
			o, oerr := base.Outcome()
			if oerr != nil {
				// An incoherent terminal (conflicting exclusive owners,
				// busy line, disagreeing copies) is an invariant breach
				// the per-state checks cannot see — witness it instead
				// of panicking.
				base.Release()
				return rep, fail(VInvariant, oerr.Error(), path)
			}
			base.Release()
			// Under symmetry reduction this terminal stands in for every
			// terminal in its orbit: record the orbit images too, so the
			// outcome set (and the Forbidden verdict) matches an
			// unreduced exploration.
			outs := []litmus.Outcome{o}
			if !ccfg.CanonOff {
				outs = append(outs, sym.outcomeOrbit(o)...)
			}
			for _, oo := range outs {
				rep.Outcomes[oo.String()] = true
				if checkForbidden && mcfg.Test.Forbidden(oo) {
					return rep, fail(VForbidden, oo.String(), path)
				}
			}
			continue
		}
		if len(path) >= ccfg.MaxDepth {
			base.Release()
			return rep, fail(VLivelock, fmt.Sprintf("depth bound %d exceeded", ccfg.MaxDepth), path)
		}
		if len(acts) > math.MaxUint16+1 {
			base.Release()
			return rep, fmt.Errorf("verif: %d enabled actions at depth %d exceed the %d-entry path encoding",
				len(acts), len(path), math.MaxUint16+1)
		}
		// Partial-order reduction: when one enabled delivery provably
		// commutes with every other (see ampleAction), expand it alone.
		// The ample successor must be new — an already-visited successor
		// would let a cycle ignore the other deliveries forever (the
		// cycle proviso), so that case falls through to full expansion.
		// The probe is serial and deterministic, so reports stay
		// byte-identical at every worker count.
		if !ccfg.POROff && len(acts) > 1 {
			if ample := base.ampleAction(sym, acts); ample >= 0 {
				probe := base.Clone()
				if ccfg.DeepCopySnapshots {
					probe.Materialize()
				}
				rep.Clones++
				probe.Step(acts[ample])
				h, _ := hashOf(probe)
				if _, seen := visited[h]; !seen {
					rep.PORSkips += uint64(len(acts) - 1)
					visited[h] = struct{}{}
					rep.States++
					np := make([]uint16, len(path)+1)
					copy(np, path)
					np[len(path)] = uint16(ample)
					if err := probe.checkInvariants(); err != nil {
						probe.Release()
						base.Release()
						return rep, fail(VInvariant, err.Error(), np)
					}
					if rep.States >= ccfg.MaxStates {
						probe.Release()
						base.Release()
						rep.Truncated = true
						return rep, nil
					}
					ent := frontierEntry{path: np}
					if !ccfg.ReplayFromRoot && live < ccfg.SnapshotBudget {
						ent.m = probe
						live++
					} else {
						probe.Release()
					}
					frontier = append(frontier, ent)
					base.Release()
					continue
				}
				probe.Release()
			}
		}
		// Expand all successors in parallel: each branch deep-copies the
		// frontier snapshot (or, under ReplayFromRoot, re-executes the
		// prefix on a fresh model) and delivers one message. Clone is
		// read-only on the parent, so branches are independent. The merge
		// below runs serially in canonical action order, so visited-set
		// updates, state counts, truncation, and the frontier are
		// byte-identical to a serial exploration — and identical between
		// the snapshot and replay strategies, which reach the same states.
		// Invariants are pure functions of the state, so checking them
		// eagerly here (even for states the merge will skip as already
		// visited) changes nothing observable.
		type successor struct {
			hash    uint64
			renamed bool
			invErr  error
			m       *Model
		}
		kids, err := parallel.Map(context.Background(), ccfg.Workers, len(acts),
			func(ai int) (successor, error) {
				var m *Model
				if ccfg.ReplayFromRoot {
					var err error
					if m, err = replayPath(path); err != nil {
						return successor{}, err
					}
				} else {
					m = base.Clone()
					if ccfg.DeepCopySnapshots {
						m.Materialize()
					}
				}
				m.Step(m.Fabric.Enabled()[ai])
				s := successor{invErr: m.checkInvariants()}
				s.hash, s.renamed = hashOf(m)
				if ccfg.ReplayFromRoot {
					m.Release()
				} else {
					s.m = m
				}
				return s, nil
			})
		if err != nil {
			base.Release()
			return rep, err
		}
		if ccfg.ReplayFromRoot {
			rep.Builds += uint64(len(acts))
		} else {
			rep.Clones += uint64(len(acts))
		}
		// The base is fully expanded: recycle its COW backings. Each kid
		// holds its own references, so releasing the parent never frees
		// a slab a successor still shares.
		base.Release()
		// releaseKids drains un-merged successors on an early return;
		// merged entries hand their snapshot to the frontier (or release
		// it themselves) and are nilled out, so the sweep is exact.
		releaseKids := func(from int) {
			for i := from; i < len(kids); i++ {
				if kids[i].m != nil {
					kids[i].m.Release()
				}
			}
		}
		for ai := range kids {
			kid := kids[ai]
			kids[ai].m = nil
			if _, seen := visited[kid.hash]; seen {
				if kid.renamed {
					// The fold came from a non-identity renaming: this
					// successor merged with a symmetric sibling.
					rep.SymmetryMerges++
				}
				if kid.m != nil {
					kid.m.Release()
				}
				continue
			}
			visited[kid.hash] = struct{}{}
			rep.States++
			np := make([]uint16, len(path)+1)
			copy(np, path)
			np[len(path)] = uint16(ai)
			if kid.invErr != nil {
				if kid.m != nil {
					kid.m.Release()
				}
				releaseKids(ai + 1)
				return rep, fail(VInvariant, kid.invErr.Error(), np)
			}
			if rep.States >= ccfg.MaxStates {
				if kid.m != nil {
					kid.m.Release()
				}
				releaseKids(ai + 1)
				rep.Truncated = true
				return rep, nil
			}
			ent := frontierEntry{path: np}
			if kid.m != nil {
				if live < ccfg.SnapshotBudget {
					ent.m = kid.m
					live++
				} else {
					// Over budget: drop the snapshot (the entry replays
					// its prefix when popped) and recycle its backings.
					kid.m.Release()
				}
			}
			frontier = append(frontier, ent)
		}
	}
	return rep, nil
}

// crossCheck runs the reduced and unreduced explorations back to back
// and verifies the reduction lost nothing: every unreduced outcome must
// appear in the reduced outcome set, and violations must agree in kind.
// The reduced set may be a strict superset — the raw fingerprint omits
// register files and fetch positions, so the unreduced checker can
// merge states that differ only in loaded values and lose their
// terminals (CoRR2 is the canonical example: 8 raw outcomes vs 18
// real ones); the canonical hash includes both and recovers them.
// Truncated runs are not comparable (the two checkers truncate at
// different points of the space) and skip the comparison. The returned
// Report is the reduced one with the unreduced run's build/clone costs
// folded in.
func crossCheck(mcfg ModelConfig, ccfg CheckerConfig) (*Report, error) {
	red := ccfg
	red.CrossCheck = false
	unred := red
	unred.CanonOff, unred.POROff = true, true
	repR, errR := Check(mcfg, red)
	repU, errU := Check(mcfg, unred)
	if repR != nil && repU != nil {
		repR.Builds += repU.Builds
		repR.Clones += repU.Clones
	}
	// Aborts (deadline/interrupt) are not verdicts; surface them as-is.
	for _, err := range []error{errR, errU} {
		if errors.Is(err, ErrCheckDeadline) || errors.Is(err, ErrCheckInterrupted) {
			return repR, err
		}
	}
	var cexR, cexU *Counterexample
	okR := errors.As(errR, &cexR)
	okU := errors.As(errU, &cexU)
	switch {
	case errR != nil && !okR:
		return repR, errR
	case errU != nil && !okU:
		return repR, errU
	case okR != okU:
		return repR, fmt.Errorf("verif: cross-check mismatch on %s: reduced says %v, unreduced says %v",
			mcfg.Test.Name, errR, errU)
	case okR && okU:
		if cexR.Kind != cexU.Kind {
			return repR, fmt.Errorf("verif: cross-check mismatch on %s: reduced violation %v, unreduced %v",
				mcfg.Test.Name, cexR.Kind, cexU.Kind)
		}
		return repR, errR
	}
	if repR.Truncated || repU.Truncated {
		return repR, nil
	}
	for o := range repU.Outcomes {
		if !repR.Outcomes[o] {
			return repR, fmt.Errorf("verif: cross-check mismatch on %s: unreduced outcome %q missing from reduced set",
				mcfg.Test.Name, o)
		}
	}
	return repR, nil
}

// checkInvariants runs the per-state checks.
func (m *Model) checkInvariants() error {
	if err := m.checkSWMR(); err != nil {
		return err
	}
	return m.checkCompound()
}

// checkSWMR: at most one host cache system-wide holds write permission
// for a line, and never alongside other valid copies.
func (m *Model) checkSWMR() error {
	for _, a := range m.lines() {
		writers, readers := 0, 0
		for _, l := range m.l1s {
			e := l.cache.ProbeRO(a)
			if e == nil {
				continue
			}
			switch e.State {
			case 2, 3, 4: // stE, stM, stO: write permission or dirty
				if e.State == 4 {
					// MOESI O: dirty but read-only; counts as reader.
					readers++
				} else {
					writers++
				}
			case 1, 5: // stS, stF
				readers++
			}
		}
		if writers > 1 {
			return fmt.Errorf("verif: SWMR violated on %v: %d writers", a, writers)
		}
		if writers == 1 && readers > 0 {
			return fmt.Errorf("verif: SWMR violated on %v: writer with %d readers", a, readers)
		}
	}
	return nil
}

// checkCompound: Rule I's forbidden compound states must be unreachable
// in every C3 (checked only for lines with no transaction in flight —
// transient states are by construction intermediate).
func (m *Model) checkCompound() error {
	for _, c3 := range m.c3s {
		tab := c3.Table()
		for _, a := range m.lines() {
			l, g, busy := c3.CompoundOf(a)
			if busy {
				continue
			}
			for _, f := range tab.Forbidden {
				if f.L == l && f.G == g {
					return fmt.Errorf("verif: C3 %d reached forbidden compound state (%s,%s) on %v",
						c3.ID(), l, g, a)
				}
			}
		}
	}
	return nil
}
