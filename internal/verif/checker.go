package verif

import (
	"context"
	"fmt"

	"c3/internal/mem"
	"c3/internal/parallel"
)

// Report summarizes one exhaustive exploration.
type Report struct {
	States    uint64 // distinct states visited
	Terminals uint64 // terminal (all-retired, fabric-empty) states
	Outcomes  map[string]bool
	Truncated bool // MaxStates reached before exhaustion
	MaxDepth  int
}

// CheckerConfig bounds the exploration.
type CheckerConfig struct {
	MaxStates uint64 // 0 -> 200k
	MaxDepth  int    // 0 -> 400
	// Workers parallelizes successor expansion (0 = GOMAXPROCS, 1 =
	// serial). Each successor is reconstructed by replaying its delivery
	// prefix on a private model, so branches are independent; hashes and
	// invariant results merge in canonical action order, keeping the
	// visit order — and therefore the Report — identical to a serial
	// exploration.
	Workers int
}

// Check exhaustively explores cfg's state space and verifies all
// invariants; it returns the exploration report or the first violation.
func Check(mcfg ModelConfig, ccfg CheckerConfig) (*Report, error) {
	if ccfg.MaxStates == 0 {
		ccfg.MaxStates = 200_000
	}
	if ccfg.MaxDepth == 0 {
		ccfg.MaxDepth = 400
	}
	rep := &Report{Outcomes: map[string]bool{}}
	visited := make(map[uint64]bool)

	// replay reconstructs the state after a delivery prefix.
	replay := func(path []uint16) (*Model, error) {
		m, err := Build(mcfg)
		if err != nil {
			return nil, err
		}
		m.Start()
		for _, ai := range path {
			acts := m.Fabric.Enabled()
			if int(ai) >= len(acts) {
				return nil, fmt.Errorf("verif: replay diverged (action %d of %d)", ai, len(acts))
			}
			m.Step(acts[ai])
		}
		return m, nil
	}

	var frontier [][]uint16
	m0, err := replay(nil)
	if err != nil {
		return nil, err
	}
	visited[m0.Hash()] = true
	rep.States++
	if err := m0.checkInvariants(); err != nil {
		return rep, err
	}
	frontier = append(frontier, nil)

	for len(frontier) > 0 {
		path := frontier[0]
		frontier = frontier[1:]
		if len(path) > rep.MaxDepth {
			rep.MaxDepth = len(path)
		}
		base, err := replay(path)
		if err != nil {
			return rep, err
		}
		acts := base.Fabric.Enabled()
		if len(acts) == 0 {
			if !base.AllFinished() {
				return rep, fmt.Errorf("verif: deadlock at depth %d: cores stuck with empty fabric", len(path))
			}
			rep.Terminals++
			o := base.Outcome()
			rep.Outcomes[o.String()] = true
			if mcfg.Test.Forbidden != nil && mcfg.Sync == 0 /* SyncFull */ && mcfg.Test.Forbidden(o) {
				return rep, fmt.Errorf("verif: forbidden outcome reachable: %s", o)
			}
			continue
		}
		if len(path) >= ccfg.MaxDepth {
			return rep, fmt.Errorf("verif: depth bound %d exceeded (livelock?)", ccfg.MaxDepth)
		}
		// Expand all successors in parallel: each branch replays the
		// prefix on its own model (independent by construction), then
		// hashes and invariant-checks the resulting state. The merge
		// below runs serially in canonical action order, so visited-set
		// updates, state counts, truncation, and the frontier are
		// byte-identical to a serial exploration. Invariants are pure
		// functions of the state, so checking them eagerly here (even
		// for states the merge will skip as already visited) changes
		// nothing observable.
		type successor struct {
			hash   uint64
			invErr error
		}
		kids, err := parallel.Map(context.Background(), ccfg.Workers, len(acts),
			func(ai int) (successor, error) {
				m, err := replay(path)
				if err != nil {
					return successor{}, err
				}
				m.Step(m.Fabric.Enabled()[ai])
				return successor{hash: m.Hash(), invErr: m.checkInvariants()}, nil
			})
		if err != nil {
			return rep, err
		}
		for ai, kid := range kids {
			if visited[kid.hash] {
				continue
			}
			visited[kid.hash] = true
			rep.States++
			if kid.invErr != nil {
				return rep, fmt.Errorf("%w (depth %d)", kid.invErr, len(path)+1)
			}
			if rep.States >= ccfg.MaxStates {
				rep.Truncated = true
				return rep, nil
			}
			np := make([]uint16, len(path)+1)
			copy(np, path)
			np[len(path)] = uint16(ai)
			frontier = append(frontier, np)
		}
	}
	return rep, nil
}

// checkInvariants runs the per-state checks.
func (m *Model) checkInvariants() error {
	if err := m.checkSWMR(); err != nil {
		return err
	}
	return m.checkCompound()
}

// checkSWMR: at most one host cache system-wide holds write permission
// for a line, and never alongside other valid copies.
func (m *Model) checkSWMR() error {
	for _, a := range m.lines() {
		writers, readers := 0, 0
		for _, l := range m.l1s {
			e := l.cache.Probe(a)
			if e == nil {
				continue
			}
			switch e.State {
			case 2, 3, 4: // stE, stM, stO: write permission or dirty
				if e.State == 4 {
					// MOESI O: dirty but read-only; counts as reader.
					readers++
				} else {
					writers++
				}
			case 1, 5: // stS, stF
				readers++
			}
		}
		if writers > 1 {
			return fmt.Errorf("verif: SWMR violated on %v: %d writers", a, writers)
		}
		if writers == 1 && readers > 0 {
			return fmt.Errorf("verif: SWMR violated on %v: writer with %d readers", a, readers)
		}
	}
	return nil
}

// checkCompound: Rule I's forbidden compound states must be unreachable
// in every C3 (checked only for lines with no transaction in flight —
// transient states are by construction intermediate).
func (m *Model) checkCompound() error {
	for _, c3 := range m.c3s {
		tab := c3.Table()
		for _, a := range m.lines() {
			l, g, busy := c3.CompoundOf(a)
			if busy {
				continue
			}
			for _, f := range tab.Forbidden {
				if f.L == l && f.G == g {
					return fmt.Errorf("verif: C3 %d reached forbidden compound state (%s,%s) on %v",
						c3.ID(), l, g, a)
				}
			}
		}
	}
	return nil
}

var _ = mem.LineAddr(0)
