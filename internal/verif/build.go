package verif

import (
	"fmt"
	"io"

	"c3/internal/msg"
	"c3/internal/network"
	"c3/internal/protocol/cxl"
	"c3/internal/protocol/hmesi"
	"c3/internal/protocol/hostproto"
)

// portDumper is a network endpoint the checker can hash.
type portDumper interface {
	network.Port
	DumpState(io.Writer)
}

func newDCOH(id msg.NodeID, m *Model) *cxl.DCOH {
	d := cxl.New(id, m.K, m.Fabric, m.dram)
	d.Lat = 1
	m.Fabric.Register(id, d)
	return d
}

func newHDir(id msg.NodeID, m *Model) *hmesi.Dir {
	d := hmesi.New(id, m.K, m.Fabric, m.dram)
	d.Lat = 1
	m.Fabric.Register(id, d)
	return d
}

// newL1For instantiates the host cache for a verification thread. The
// checker covers the invalidation-based (MESI-family) protocols; RCC's
// intentionally stale copies make the SWMR invariant inapplicable and
// are covered by the litmus runner instead.
func newL1For(proto string, id, dir msg.NodeID, m *Model) *hostproto.L1 {
	var v hostproto.Variant
	switch proto {
	case "mesi", "MESI":
		v = hostproto.MESI
	case "moesi", "MOESI":
		v = hostproto.MOESI
	case "mesif", "MESIF":
		v = hostproto.MESIF
	default:
		panic(fmt.Sprintf("verif: unsupported local protocol %q", proto))
	}
	cfg := hostproto.Config{Variant: v, SizeBytes: 4096, Ways: 4, HitLatency: 1}
	return hostproto.NewL1(id, dir, m.K, m.Fabric, cfg)
}
