package stats

import (
	"strings"
	"testing"

	"c3/internal/cpu"
	"c3/internal/sim"
)

func TestBandOf(t *testing.T) {
	cases := []struct {
		lat  sim.Time
		want Band
	}{
		{0, BandLow},
		{sim.NS(74), BandLow},
		{sim.NS(75), BandMed},
		{sim.NS(300), BandMed},
		{sim.NS(301), BandHigh},
		{sim.NS(2000), BandHigh},
	}
	for _, c := range cases {
		if got := BandOf(c.lat); got != c.want {
			t.Errorf("BandOf(%d) = %v, want %v", c.lat, got, c.want)
		}
	}
}

// TestBandBoundaries pins the band edges the Band doc comment promises:
// 75 ns starts the middle band, 300 ns is inclusive on the high side.
// Fig. 11 reproductions depend on these exact cut points; shifting either
// silently reclassifies misses between semantic categories.
func TestBandBoundaries(t *testing.T) {
	edges := []struct {
		ns   uint64
		want Band
	}{
		{74, BandLow}, {75, BandMed},
		{300, BandMed}, {301, BandHigh},
	}
	for _, e := range edges {
		if got := BandOf(sim.NS(e.ns)); got != e.want {
			t.Errorf("BandOf(NS(%d)) = %v, want %v", e.ns, got, e.want)
		}
	}
	// One cycle below the 75 ns edge is still low: the comparison is on
	// cycles, not whole nanoseconds.
	if got := BandOf(sim.NS(75) - 1); got != BandLow {
		t.Errorf("BandOf(NS(75)-1) = %v, want BandLow", got)
	}
	if got := BandOf(sim.NS(300) + 1); got != BandHigh {
		t.Errorf("BandOf(NS(300)+1) = %v, want BandHigh", got)
	}
	labels := map[Band]string{BandLow: "<75ns", BandMed: "75-300ns", BandHigh: ">300ns"}
	for b, want := range labels {
		if b.String() != want {
			t.Errorf("%d.String() = %q, want %q", b, b.String(), want)
		}
	}
}

func TestClassOf(t *testing.T) {
	if ClassOf(cpu.Load) != ClassLoad || ClassOf(cpu.Store) != ClassStore ||
		ClassOf(cpu.RMWAdd) != ClassRMW || ClassOf(cpu.RMWXchg) != ClassRMW {
		t.Fatal("ClassOf mapping wrong")
	}
}

func TestMissBreakdownAccounting(t *testing.T) {
	var m MissBreakdown
	m.Observe(cpu.OpStats{Kind: cpu.Load})                                        // hit
	m.Observe(cpu.OpStats{Kind: cpu.Load, Missed: true, Latency: sim.NS(50)})     // low
	m.Observe(cpu.OpStats{Kind: cpu.Store, Missed: true, Latency: sim.NS(200)})   // med
	m.Observe(cpu.OpStats{Kind: cpu.RMWAdd, Missed: true, Latency: sim.NS(1000)}) // high
	if m.Ops != 4 || m.Hits != 1 || m.TotalMisses() != 3 {
		t.Fatalf("counts: ops=%d hits=%d misses=%d", m.Ops, m.Hits, m.TotalMisses())
	}
	want := uint64(sim.NS(50) + sim.NS(200) + sim.NS(1000))
	if m.TotalMissCycles() != want {
		t.Fatalf("cycles = %d, want %d", m.TotalMissCycles(), want)
	}
	if m.BandCycles(BandHigh) != uint64(sim.NS(1000)) {
		t.Fatalf("high band = %d", m.BandCycles(BandHigh))
	}
	if mpki := m.MPKI(); mpki != 750 {
		t.Fatalf("MPKI = %v, want 750", mpki)
	}
	var o MissBreakdown
	o.Merge(&m)
	o.Merge(&m)
	if o.TotalMisses() != 6 || o.Ops != 8 {
		t.Fatalf("merge: %d/%d", o.TotalMisses(), o.Ops)
	}
	r := m.Render()
	for _, s := range []string{"load", "store", "rmw", "<75ns", ">300ns"} {
		if !strings.Contains(r, s) {
			t.Errorf("Render missing %q", s)
		}
	}
}

func TestSeriesGeoMeanAndNormalize(t *testing.T) {
	var base, s Series
	base.Add(Run{Name: "a", Time: 100})
	base.Add(Run{Name: "b", Time: 200})
	s.Add(Run{Name: "a", Time: 110})
	s.Add(Run{Name: "b", Time: 240})
	n := s.Normalized(&base)
	if n["a"] != 1.1 || n["b"] != 1.2 {
		t.Fatalf("normalized: %v", n)
	}
	gm := s.GeoMeanTime()
	if gm < 162 || gm > 163 { // sqrt(110*240) ~ 162.5
		t.Fatalf("geomean = %v", gm)
	}
	names := s.SortedNames()
	if len(names) != 2 || names[0] != "a" {
		t.Fatalf("names: %v", names)
	}
	var empty Series
	if empty.GeoMeanTime() != 0 {
		t.Fatal("empty geomean should be 0")
	}
}

func TestMPKIEmpty(t *testing.T) {
	var m MissBreakdown
	if m.MPKI() != 0 {
		t.Fatal("MPKI of empty breakdown should be 0")
	}
}
