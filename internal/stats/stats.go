// Package stats aggregates run telemetry into the quantities the paper
// reports: execution time (Figs. 9/10), miss-cycle breakdowns by latency
// band and instruction type (Fig. 11), and MPKI for workload calibration.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"c3/internal/cpu"
	"c3/internal/sim"
)

// Band classifies a miss by its round-trip latency, mirroring Fig. 11's
// three semantic categories: intra-cluster coherence, device memory
// access, and cross-cluster coherence. The paper draws the upper
// boundary at its 400 ns memory round trip; this simulator's plain
// device accesses finish faster (Table III latencies without the PCIe
// stack overheads gem5 adds), so the equivalent boundary here is
// 300 ns — multi-hop cross-cluster transactions land above it, plain
// device accesses below. The band edges (75 ns, 300 ns, inclusive on
// the high side) are pinned by TestBandBoundaries.
type Band uint8

const (
	BandLow  Band = iota // < 75 ns: intra-cluster transactions
	BandMed              // 75-300 ns: device memory access
	BandHigh             // > 300 ns: cross-cluster coherence
	NumBands
)

func (b Band) String() string {
	switch b {
	case BandLow:
		return "<75ns"
	case BandMed:
		return "75-300ns"
	case BandHigh:
		return ">300ns"
	}
	return fmt.Sprintf("Band(%d)", uint8(b))
}

// BandOf buckets a miss latency (in cycles at 2 GHz).
func BandOf(lat sim.Time) Band {
	switch {
	case lat < sim.NS(75):
		return BandLow
	case lat <= sim.NS(300):
		return BandMed
	default:
		return BandHigh
	}
}

// OpClass groups instruction kinds as Fig. 11 does: loads vs. stores vs.
// read-modify-writes.
type OpClass uint8

const (
	ClassLoad OpClass = iota
	ClassStore
	ClassRMW
	NumClasses
)

func (c OpClass) String() string {
	switch c {
	case ClassLoad:
		return "load"
	case ClassStore:
		return "store"
	case ClassRMW:
		return "rmw"
	}
	return fmt.Sprintf("OpClass(%d)", uint8(c))
}

// ClassOf maps a cpu op kind to its Fig. 11 class.
func ClassOf(k cpu.Kind) OpClass {
	switch k {
	case cpu.Load:
		return ClassLoad
	case cpu.Store:
		return ClassStore
	case cpu.RMWAdd, cpu.RMWXchg:
		return ClassRMW
	}
	return ClassLoad
}

// MissBreakdown accumulates total miss cycles per (class, band) — the
// Fig. 11 histogram — plus hit/miss counts for MPKI.
type MissBreakdown struct {
	Cycles [NumClasses][NumBands]uint64
	Misses [NumClasses][NumBands]uint64
	Ops    uint64
	Hits   uint64
}

// Observe is wired as cpu.Core.Observe.
func (m *MissBreakdown) Observe(s cpu.OpStats) {
	m.Ops++
	if !s.Missed {
		m.Hits++
		return
	}
	c, b := ClassOf(s.Kind), BandOf(s.Latency)
	m.Cycles[c][b] += uint64(s.Latency)
	m.Misses[c][b]++
}

// Merge folds o into m.
func (m *MissBreakdown) Merge(o *MissBreakdown) {
	for c := 0; c < int(NumClasses); c++ {
		for b := 0; b < int(NumBands); b++ {
			m.Cycles[c][b] += o.Cycles[c][b]
			m.Misses[c][b] += o.Misses[c][b]
		}
	}
	m.Ops += o.Ops
	m.Hits += o.Hits
}

// TotalMissCycles sums every bucket.
func (m *MissBreakdown) TotalMissCycles() uint64 {
	var t uint64
	for c := 0; c < int(NumClasses); c++ {
		for b := 0; b < int(NumBands); b++ {
			t += m.Cycles[c][b]
		}
	}
	return t
}

// TotalMisses counts all misses.
func (m *MissBreakdown) TotalMisses() uint64 {
	var t uint64
	for c := 0; c < int(NumClasses); c++ {
		for b := 0; b < int(NumBands); b++ {
			t += m.Misses[c][b]
		}
	}
	return t
}

// BandCycles sums one band across classes.
func (m *MissBreakdown) BandCycles(b Band) uint64 {
	var t uint64
	for c := 0; c < int(NumClasses); c++ {
		t += m.Cycles[c][b]
	}
	return t
}

// MPKI is misses per kilo-operation (the paper calibrates per
// kilo-instruction; memory ops are our instruction stream).
func (m *MissBreakdown) MPKI() float64 {
	if m.Ops == 0 {
		return 0
	}
	return 1000 * float64(m.TotalMisses()) / float64(m.Ops)
}

// Render prints the Fig. 11-style table.
func (m *MissBreakdown) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %12s %12s %12s\n", "", BandLow, BandMed, BandHigh)
	for c := OpClass(0); c < NumClasses; c++ {
		fmt.Fprintf(&b, "%-8s %12d %12d %12d\n", c,
			m.Cycles[c][BandLow], m.Cycles[c][BandMed], m.Cycles[c][BandHigh])
	}
	return b.String()
}

// Run is one experiment datapoint.
type Run struct {
	Name   string
	Config string
	Time   sim.Time
	Miss   MissBreakdown
}

// Series is a named collection of runs (one benchmark suite, one
// configuration sweep).
type Series struct {
	Runs []Run
}

// Add appends a run.
func (s *Series) Add(r Run) { s.Runs = append(s.Runs, r) }

// GeoMeanTime returns the geometric mean execution time, the aggregation
// Figs. 9/10 use per suite.
func (s *Series) GeoMeanTime() float64 {
	if len(s.Runs) == 0 {
		return 0
	}
	logSum := 0.0
	for _, r := range s.Runs {
		logSum += math.Log(float64(r.Time))
	}
	return math.Exp(logSum / float64(len(s.Runs)))
}

// Normalized returns per-run times normalized to base (matched by Name).
func (s *Series) Normalized(base *Series) map[string]float64 {
	bt := map[string]sim.Time{}
	for _, r := range base.Runs {
		bt[r.Name] = r.Time
	}
	out := map[string]float64{}
	for _, r := range s.Runs {
		if b, ok := bt[r.Name]; ok && b > 0 {
			out[r.Name] = float64(r.Time) / float64(b)
		}
	}
	return out
}

// SortedNames returns run names in stable order.
func (s *Series) SortedNames() []string {
	var names []string
	for _, r := range s.Runs {
		names = append(names, r.Name)
	}
	sort.Strings(names)
	return names
}
