package workload

import (
	"fmt"

	"c3/internal/cpu"
	"c3/internal/faults"
	"c3/internal/sim"
	"c3/internal/stats"
	"c3/internal/system"
	"c3/internal/trace"
)

// RunConfig describes one workload execution.
type RunConfig struct {
	Spec   Spec
	Global string    // "cxl" or "hmesi"
	Locals [2]string // cluster protocols
	MCMs   [2]cpu.MCM
	// CoresPerCluster; the paper calibrates 8-30 total cores per app,
	// we default to 4 per cluster.
	CoresPerCluster int
	// OpsScale multiplies Spec.Ops (benchmark harness uses small scales
	// for quick runs, cmd/c3bench larger ones).
	OpsScale float64
	Seed     int64
	// EventLimit aborts wedged runs (0 = 200M events).
	EventLimit uint64
	// Hybrid homes each core's private and streaming regions in its
	// cluster's local memory (the paper's Sec. IV-D4 hybrid
	// configuration); only shared, hot and sync lines stay in the CXL
	// pool.
	Hybrid bool
	// Tracer, when non-nil, observes the run (protocol trace +
	// retirement events).
	Tracer *trace.Tracer
	// WatchdogAge arms hang detection (cycles; 0 = off). Requires
	// Tracer. A detected hang aborts the run with the diagnostic report
	// as the error.
	WatchdogAge sim.Time
	// MissHist, when non-nil, receives every miss latency sample.
	MissHist *trace.LatencyHist
	// Faults arms the cross-cluster fault injector (nil = perfect
	// fabric). A run on a faulty fabric may complete with poisoned
	// lines; they surface in the returned Run and the system metrics.
	Faults *faults.Plan
}

// observer builds the per-core completion hook: the Fig. 11 breakdown
// always accumulates; the optional miss histogram and retirement trace
// ride along only when configured.
func observer(cfg *RunConfig, sys *system.System, cl, idx int, miss *stats.MissBreakdown) func(cpu.OpStats) {
	if cfg.Tracer == nil && cfg.MissHist == nil {
		return miss.Observe
	}
	node := system.CoreNode(cl, idx)
	tr, hist, k := cfg.Tracer, cfg.MissHist, sys.K
	return func(s cpu.OpStats) {
		miss.Observe(s)
		if hist != nil && s.Missed {
			hist.Observe(s.Latency)
		}
		if tr != nil {
			note := s.Kind.String()
			if s.Missed {
				note += " miss"
			}
			tr.Retire(k.Now(), node, s.Addr.Line(), note)
		}
	}
}

// Run executes one workload and returns its datapoint.
func Run(cfg RunConfig) (stats.Run, error) {
	r, _, err := RunOn(cfg)
	return r, err
}

// RunOn is Run plus the assembled system, for tools that report
// controller and directory counters after the run.
func RunOn(cfg RunConfig) (stats.Run, *system.System, error) {
	spec := cfg.Spec
	if err := spec.Validate(); err != nil {
		return stats.Run{}, nil, err
	}
	if cfg.CoresPerCluster <= 0 {
		cfg.CoresPerCluster = 4
	}
	if cfg.OpsScale > 0 {
		spec.Ops = int(float64(spec.Ops) * cfg.OpsScale)
		if spec.Ops < 1 {
			spec.Ops = 1
		}
	}
	if cfg.Global == "" {
		cfg.Global = "cxl"
	}
	if cfg.Locals[0] == "" {
		cfg.Locals = [2]string{"mesi", "mesi"}
	}
	limit := cfg.EventLimit
	if limit == 0 {
		limit = 200_000_000
	}

	clusters := []system.ClusterConfig{
		{Protocol: cfg.Locals[0], MCM: cfg.MCMs[0], Cores: cfg.CoresPerCluster},
		{Protocol: cfg.Locals[1], MCM: cfg.MCMs[1], Cores: cfg.CoresPerCluster},
	}
	if cfg.Hybrid {
		for ci := range clusters {
			clusters[ci].LocalRange = PrivateRangeOf(ci, cfg.CoresPerCluster)
		}
	}
	sys, err := system.New(system.Config{
		Global:      cfg.Global,
		Seed:        cfg.Seed,
		Clusters:    clusters,
		Tracer:      cfg.Tracer,
		WatchdogAge: cfg.WatchdogAge,
		Faults:      cfg.Faults,
	})
	if err != nil {
		return stats.Run{}, nil, err
	}
	var dog *trace.Watchdog
	if cfg.Tracer != nil {
		if dog = cfg.Tracer.Watchdog(); dog != nil {
			// Capture the report instead of panicking; Run aborts below.
			dog.OnHang = func(string) {}
		}
	}

	total := 2 * cfg.CoresPerCluster
	var miss stats.MissBreakdown
	id := 0
	for cl := 0; cl < 2; cl++ {
		for i := 0; i < cfg.CoresPerCluster; i++ {
			src := NewSource(&spec, id, total, cfg.Seed+101)
			c := sys.AttachSource(cl, i, src)
			c.Observe = observer(&cfg, sys, cl, i, &miss)
			id++
		}
	}
	completed := sys.Run(limit)
	if dog != nil && dog.Fired() {
		return stats.Run{}, sys, fmt.Errorf("workload %s (%s): watchdog hang\n%s",
			spec.Name, sys.Proto(), dog.Report())
	}
	if !completed {
		return stats.Run{}, sys, fmt.Errorf("workload %s (%s): wedged after %d events",
			spec.Name, sys.Proto(), limit)
	}
	return stats.Run{
		Name:   spec.Name,
		Config: fmt.Sprintf("%s/%v-%v", sys.Proto(), cfg.MCMs[0], cfg.MCMs[1]),
		Time:   sys.Time(),
		Miss:   miss,
	}, sys, nil
}
