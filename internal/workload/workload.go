// Package workload provides the 33 parallel kernels used in the paper's
// evaluation (Sec. V: Splash-4, PARSEC, Phoenix). The paper treats the
// original applications as coherence-traffic generators, scaling inputs
// and core counts "to achieve a similar number of misses per
// kilo-instructions (MPKI) as observed in real hardware"; accordingly
// each kernel here is a parameterized generator that reproduces that
// application's qualitative sharing pattern:
//
//   - a per-core private working set (sized against the L1 to set the
//     MPKI band),
//   - a read-mostly shared region (scene data, lookup tables),
//   - a hot read-write set (contended lines: histogram bins, tree nodes,
//     falsely-shared tiles), and
//   - synchronization density (barriers, spin locks, atomics).
//
// Workload programs execute on the cpu.Core model through the Source
// interface; barriers and locks are real coherence traffic (atomic
// fetch-and-add / exchange plus spin loads), not simulator magic.
package workload

import (
	"fmt"
	"math/rand/v2"

	"c3/internal/cpu"
	"c3/internal/mem"
)

// Suite identifies the benchmark suite a kernel mimics.
type Suite string

// The three suites of Sec. V.
const (
	Splash4 Suite = "splash4"
	PARSEC  Suite = "parsec"
	Phoenix Suite = "phoenix"
)

// Spec parameterizes one kernel.
type Spec struct {
	Name  string
	Suite Suite

	// Ops is the per-core operation budget (scaled by the runner).
	Ops int

	// Working-set shape, in cache lines.
	PrivateLines int // per-core private region
	SharedLines  int // read-mostly shared region
	HotLines     int // contended read-write set

	// Operation mix; the remainder of the probability mass is private
	// loads. Private stores model local updates; shared reads model
	// read-only data; hot ops model true/false sharing; Stream is the
	// fraction of accesses that touch fresh, never-revisited lines
	// (compulsory misses) — the knob that sets each kernel's MPKI band,
	// standing in for the paper's input-size calibration.
	PrivateStore float64
	SharedRead   float64
	HotRead      float64
	HotWrite     float64
	HotRMW       float64
	Stream       float64

	// BarrierEvery inserts a global barrier every N ops (0 = none);
	// LockEvery wraps a short critical section every N ops (0 = none).
	BarrierEvery int
	LockEvery    int

	// Stride is the private-region stride in lines (1 = streaming).
	Stride int
}

// Validate sanity-checks the mix.
func (s *Spec) Validate() error {
	sum := s.PrivateStore + s.SharedRead + s.HotRead + s.HotWrite + s.HotRMW + s.Stream
	if sum > 1.0001 {
		return fmt.Errorf("workload %s: mix sums to %.3f > 1", s.Name, sum)
	}
	if s.Ops <= 0 || s.PrivateLines <= 0 {
		return fmt.Errorf("workload %s: Ops and PrivateLines must be positive", s.Name)
	}
	if s.Stride <= 0 {
		return fmt.Errorf("workload %s: Stride must be positive", s.Name)
	}
	return nil
}

// Address-space layout: regions are carved from a fixed base so every
// configuration touches the same lines.
const (
	base        = mem.Addr(0x100_0000)
	syncBase    = mem.Addr(0x0_8000) // barrier/lock lines, far from data
	lineBytes   = mem.Addr(mem.LineBytes)
	maxPrivEach = 1 << 16 // lines reserved per core
)

func privateAddr(core, line int) mem.Addr {
	return base + mem.Addr(core)*maxPrivEach*lineBytes + mem.Addr(line)*lineBytes
}

// PrivateRangeOf returns a predicate accepting every line in the private
// (and streaming) bands of cluster ci's cores, for hybrid-memory
// configurations: these lines are only ever touched by that cluster.
func PrivateRangeOf(ci, coresPerCluster int) func(mem.LineAddr) bool {
	lo := privateAddr(ci*coresPerCluster, 0).Line()
	hi := privateAddr((ci+1)*coresPerCluster, 0).Line()
	return func(a mem.LineAddr) bool { return a >= lo && a < hi }
}

func sharedAddr(line int) mem.Addr {
	return base + 64*maxPrivEach*lineBytes + mem.Addr(line)*lineBytes
}

func hotAddr(line int) mem.Addr {
	return base + 80*maxPrivEach*lineBytes + mem.Addr(line)*lineBytes
}

// Barrier/lock/work-pool variable addresses.
func workPool() mem.Addr     { return syncBase + 8*lineBytes }
func barrierCount() mem.Addr { return syncBase }
func barrierGen() mem.Addr   { return syncBase + lineBytes }
func lockAddr(i int) mem.Addr {
	return syncBase + 2*lineBytes + mem.Addr(i)*lineBytes
}

// Source generates the instruction stream for one core. It implements
// cpu.Source with real spin-wait control flow for barriers and locks.
type Source struct {
	spec      *Spec
	core      int
	total     int // total cores across all clusters
	rng       *rand.Rand
	emitted   int
	privPos   int
	streamPos int

	// barrier/lock state machine
	mode     mode
	myGen    uint64
	lockID   int
	critLeft int

	// Dynamic work sharing (kernels without barriers): cores claim
	// chunks from a shared pool, so faster cores do more of the work —
	// the load balancing real task-parallel applications exhibit, which
	// is what keeps the paper's mixed-MCM runs close to the weak-only
	// runs (Fig. 9).
	dynamic   bool
	poolTotal int
	chunkSize int
	chunkLeft int
	exhausted bool

	// Done reports retirement for external observers.
	Done bool
}

type mode uint8

const (
	mRun mode = iota
	mBarrierArrive
	mBarrierReset
	mBarrierSpin
	mLockTry
	mCritical
	mUnlock
	mClaim
)

// NewSource builds the stream for core (of total) with a deterministic
// seed.
func NewSource(spec *Spec, core, total int, seed int64) *Source {
	return &Source{
		spec:      spec,
		core:      core,
		total:     total,
		rng:       rand.New(rand.NewPCG(uint64(seed), uint64(core+1)*0x9e37_79b9_7f4a_7c15)),
		dynamic:   spec.BarrierEvery == 0,
		poolTotal: spec.Ops * total,
		chunkSize: maxInt(256, spec.Ops/2),
	}
}

// Next implements cpu.Source.
func (s *Source) Next() (cpu.Instr, bool) {
	switch s.mode {
	case mBarrierArrive:
		// fetch-add the arrival counter; Complete decides what follows.
		return cpu.Instr{Kind: cpu.RMWAdd, Addr: barrierCount(), Val: 1, Reg: 1,
			CtrlDep: true}, true
	case mBarrierReset:
		s.mode = mRun
		// Last arriver resets the counter and bumps the generation.
		return cpu.Instr{Kind: cpu.RMWAdd, Addr: barrierGen(), Val: 1, Reg: 2}, true
	case mBarrierSpin:
		return cpu.Instr{Kind: cpu.Load, Addr: barrierGen(), Reg: 3, Acq: true,
			CtrlDep: true}, true
	case mLockTry:
		return cpu.Instr{Kind: cpu.RMWXchg, Addr: lockAddr(s.lockID), Val: 1, Reg: 4,
			CtrlDep: true}, true
	case mCritical:
		s.critLeft--
		if s.critLeft <= 0 {
			s.mode = mUnlock
		}
		h := s.rng.IntN(maxInt(s.spec.HotLines, 1))
		return cpu.Instr{Kind: cpu.Store, Addr: hotAddr(h), Val: uint64(s.core + 1)}, true
	case mUnlock:
		s.mode = mRun
		return cpu.Instr{Kind: cpu.Store, Addr: lockAddr(s.lockID), Val: 0, Rel: true}, true
	case mClaim:
		return cpu.Instr{Kind: cpu.RMWAdd, Addr: workPool(), Val: uint64(s.chunkSize), Reg: 9,
			CtrlDep: true}, true
	}

	if s.dynamic {
		if s.exhausted {
			return cpu.Instr{}, false
		}
		if s.chunkLeft == 0 {
			s.mode = mClaim
			return s.Next()
		}
		s.chunkLeft--
	} else if s.emitted >= s.spec.Ops {
		return cpu.Instr{}, false
	}
	s.emitted++

	if s.spec.BarrierEvery > 0 && s.emitted%s.spec.BarrierEvery == 0 {
		s.mode = mBarrierArrive
		s.myGen++
		return s.Next()
	}
	if s.spec.LockEvery > 0 && s.emitted%s.spec.LockEvery == 0 && s.spec.HotLines > 0 {
		s.mode = mLockTry
		s.lockID = s.rng.IntN(4)
		s.critLeft = 2
		return s.Next()
	}

	r := s.rng.Float64()
	sp := s.spec
	switch {
	case r < sp.HotRMW && sp.HotLines > 0:
		h := s.rng.IntN(sp.HotLines)
		return cpu.Instr{Kind: cpu.RMWAdd, Addr: hotAddr(h), Val: 1, Reg: 5}, true
	case r < sp.HotRMW+sp.HotWrite && sp.HotLines > 0:
		h := s.rng.IntN(sp.HotLines)
		// Distinct words per core within the hot line: false sharing.
		a := hotAddr(h) + mem.Addr(s.core%mem.LineWords)*8
		return cpu.Instr{Kind: cpu.Store, Addr: a, Val: uint64(s.emitted)}, true
	case r < sp.HotRMW+sp.HotWrite+sp.HotRead && sp.HotLines > 0:
		h := s.rng.IntN(sp.HotLines)
		return cpu.Instr{Kind: cpu.Load, Addr: hotAddr(h), Reg: 6}, true
	case r < sp.HotRMW+sp.HotWrite+sp.HotRead+sp.SharedRead && sp.SharedLines > 0:
		l := s.rng.IntN(sp.SharedLines)
		return cpu.Instr{Kind: cpu.Load, Addr: sharedAddr(l), Reg: 7}, true
	case r < sp.HotRMW+sp.HotWrite+sp.HotRead+sp.SharedRead+sp.Stream:
		// Compulsory miss: advance into untouched private space beyond
		// the resident working set.
		s.streamPos++
		return cpu.Instr{Kind: cpu.Load,
			Addr: privateAddr(s.core, sp.PrivateLines+s.streamPos%((maxPrivEach-1)-sp.PrivateLines)), Reg: 10}, true
	case r < sp.HotRMW+sp.HotWrite+sp.HotRead+sp.SharedRead+sp.Stream+sp.PrivateStore:
		return cpu.Instr{Kind: cpu.Store, Addr: s.nextPrivate(), Val: uint64(s.emitted)}, true
	default:
		return cpu.Instr{Kind: cpu.Load, Addr: s.nextPrivate(), Reg: 8}, true
	}
}

func (s *Source) nextPrivate() mem.Addr {
	a := privateAddr(s.core, s.privPos)
	s.privPos = (s.privPos + s.spec.Stride) % s.spec.PrivateLines
	return a
}

// Complete implements cpu.Source: barrier and lock control flow.
func (s *Source) Complete(in cpu.Instr, loaded uint64) {
	switch s.mode {
	case mBarrierArrive:
		if in.Kind == cpu.RMWAdd && in.Reg == 1 {
			// The counter increases monotonically; the last arriver of
			// each generation sees a count that completes a multiple of
			// the thread total.
			if (loaded+1)%uint64(s.total) == 0 {
				s.mode = mBarrierReset
			} else {
				s.mode = mBarrierSpin
			}
		}
	case mBarrierSpin:
		if in.Kind == cpu.Load && in.Reg == 3 && loaded >= s.myGen {
			s.mode = mRun
		}
	case mLockTry:
		if in.Kind == cpu.RMWXchg && in.Reg == 4 && loaded == 0 {
			s.mode = mCritical
		}
		// else: retry (stay in mLockTry)
	case mClaim:
		if in.Kind == cpu.RMWAdd && in.Reg == 9 {
			if loaded >= uint64(s.poolTotal) {
				s.exhausted = true
			} else {
				s.chunkLeft = s.chunkSize
			}
			s.mode = mRun
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
