package workload

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"c3/internal/cpu"
	"c3/internal/stats"
	"c3/internal/trace"
)

func TestSpecsWellFormed(t *testing.T) {
	specs := Specs()
	if len(specs) != 33 {
		t.Fatalf("got %d specs, want 33 (14 splash4 + 12 parsec + 7 phoenix)", len(specs))
	}
	counts := map[Suite]int{}
	seen := map[string]bool{}
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			t.Error(err)
		}
		if seen[s.Name] {
			t.Errorf("duplicate spec %q", s.Name)
		}
		seen[s.Name] = true
		counts[s.Suite]++
	}
	if counts[Splash4] != 14 || counts[PARSEC] != 12 || counts[Phoenix] != 7 {
		t.Fatalf("suite counts = %v", counts)
	}
	if _, ok := ByName("vips"); !ok {
		t.Error("ByName(vips) failed")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName should reject unknown kernels")
	}
	if len(Names()) != 33 || len(SuiteOf(Phoenix)) != 7 {
		t.Error("Names/SuiteOf mismatch")
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	bad := []Spec{
		{Name: "x", Ops: 100, PrivateLines: 10, Stride: 1, HotRMW: 0.9, SharedRead: 0.5},
		{Name: "x", Ops: 0, PrivateLines: 10, Stride: 1},
		{Name: "x", Ops: 10, PrivateLines: 10, Stride: 0},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}

func TestSourceDeterministic(t *testing.T) {
	spec, _ := ByName("barnes")
	a := NewSource(&spec, 0, 4, 42)
	b := NewSource(&spec, 0, 4, 42)
	for i := 0; i < 200; i++ {
		ia, oka := a.Next()
		ib, okb := b.Next()
		if oka != okb || ia != ib {
			t.Fatalf("divergence at op %d: %v vs %v", i, ia, ib)
		}
		if !oka {
			break
		}
		// Feed back neutral completions (no barrier/lock in first ops
		// before BarrierEvery).
		a.Complete(ia, 0)
		b.Complete(ib, 0)
	}
}

func TestAddressRegionsDisjoint(t *testing.T) {
	// Private regions of different cores, the shared region, and the hot
	// region must not overlap.
	pEnd := privateAddr(0, maxPrivEach-1)
	p1 := privateAddr(1, 0)
	if pEnd >= p1 {
		t.Fatal("private regions overlap")
	}
	if privateAddr(63, maxPrivEach-1) >= sharedAddr(0) {
		t.Fatal("private overlaps shared")
	}
	if sharedAddr(1<<14) >= hotAddr(0) {
		t.Fatal("shared overlaps hot")
	}
	if barrierGen() == barrierCount() || lockAddr(0) == barrierGen() {
		t.Fatal("sync vars collide")
	}
}

func TestRunSmallWorkload(t *testing.T) {
	spec, _ := ByName("vips")
	r, err := Run(RunConfig{
		Spec: spec, Global: "cxl", Locals: [2]string{"mesi", "mesi"},
		MCMs: [2]cpu.MCM{cpu.WMO, cpu.WMO}, CoresPerCluster: 2,
		OpsScale: 0.3, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Time == 0 || r.Miss.Ops == 0 {
		t.Fatalf("empty run result: %+v", r)
	}
	if r.Miss.TotalMisses() == 0 {
		t.Fatal("working set should overflow the L1 and miss")
	}
}

func TestRunWithBarriersAndLocks(t *testing.T) {
	// Kernels with barriers (kmeans) and locks (fluidanimate) must
	// terminate — the sync state machines make real progress.
	for _, name := range []string{"kmeans", "fluidanimate", "histogram"} {
		spec, _ := ByName(name)
		r, err := Run(RunConfig{
			Spec: spec, Global: "cxl", Locals: [2]string{"mesi", "moesi"},
			MCMs: [2]cpu.MCM{cpu.TSO, cpu.WMO}, CoresPerCluster: 2,
			OpsScale: 0.3, Seed: 3,
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if r.Time == 0 {
			t.Fatalf("%s: zero time", name)
		}
	}
}

func TestHotWorkloadsSlowerUnderCXL(t *testing.T) {
	// The Fig. 10/11 shape in miniature: histogram (hot cross-cluster
	// RMWs) must slow down more under CXL than vips (private streaming).
	ratio := func(name string) float64 {
		spec, _ := ByName(name)
		run := func(global string) stats.Run {
			r, err := Run(RunConfig{
				Spec: spec, Global: global, Locals: [2]string{"mesi", "mesi"},
				MCMs: [2]cpu.MCM{cpu.WMO, cpu.WMO}, CoresPerCluster: 2,
				OpsScale: 0.5, Seed: 11,
			})
			if err != nil {
				t.Fatal(err)
			}
			return r
		}
		return float64(run("cxl").Time) / float64(run("hmesi").Time)
	}
	hist := ratio("histogram")
	vips := ratio("vips")
	t.Logf("CXL/baseline slowdown: histogram %.3f, vips %.3f", hist, vips)
	if hist <= vips {
		t.Fatalf("histogram (%.3f) should be more CXL-sensitive than vips (%.3f)", hist, vips)
	}
	if vips > 1.2 {
		t.Fatalf("vips should be nearly CXL-insensitive, got %.3f", vips)
	}
}

// sinkFunc adapts a function to trace.Sink.
type sinkFunc func(trace.Event)

func (f sinkFunc) Emit(ev trace.Event) { f(ev) }

func TestRunWithTraceMetricsAndHistogram(t *testing.T) {
	// End-to-end observability: one traced run must feed every surface —
	// the ring sink sees all four event kinds, the Chrome sink emits
	// valid JSON, the miss histogram agrees with the Fig. 11 breakdown,
	// and the metrics registry's lazy counters read the post-run values.
	spec, _ := ByName("histogram")
	kinds := map[trace.Kind]int{}
	count := sinkFunc(func(ev trace.Event) { kinds[ev.Kind]++ })
	var buf bytes.Buffer
	chrome := trace.NewChrome(&buf)
	tr := trace.New(count, chrome)
	chrome.Namer = tr.Label
	hist := trace.NewLatencyHist(nil)
	r, sys, err := RunOn(RunConfig{
		Spec: spec, Global: "cxl", Locals: [2]string{"mesi", "moesi"},
		MCMs: [2]cpu.MCM{cpu.TSO, cpu.WMO}, CoresPerCluster: 2,
		OpsScale: 0.3, Seed: 5,
		Tracer: tr, MissHist: hist,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := chrome.Close(); err != nil {
		t.Fatal(err)
	}

	for _, k := range []trace.Kind{trace.KSend, trace.KDeliver, trace.KState, trace.KRetire} {
		if kinds[k] == 0 {
			t.Errorf("trace saw no %v events", k)
		}
	}
	if uint64(kinds[trace.KRetire]) != r.Miss.Ops {
		t.Errorf("retire events = %d, ops = %d", kinds[trace.KRetire], r.Miss.Ops)
	}

	var records []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &records); err != nil {
		t.Fatalf("chrome output is not valid JSON: %v", err)
	}
	if len(records) == 0 {
		t.Fatal("chrome output is empty")
	}

	if hist.N != r.Miss.TotalMisses() {
		t.Errorf("histogram saw %d misses, breakdown counted %d", hist.N, r.Miss.TotalMisses())
	}

	reg := sys.Metrics()
	var out bytes.Buffer
	if err := reg.RenderJSON(&out); err != nil {
		t.Fatal(err)
	}
	var m struct {
		Counters map[string]uint64 `json:"counters"`
	}
	if err := json.Unmarshal(out.Bytes(), &m); err != nil {
		t.Fatalf("metrics JSON invalid: %v", err)
	}
	if m.Counters["net.msgs.total"] == 0 {
		t.Error("net.msgs.total should be nonzero after a run")
	}
	var retired uint64
	for name, v := range m.Counters {
		if strings.HasPrefix(name, "core.") {
			retired += v
		}
	}
	if retired != r.Miss.Ops {
		t.Errorf("core.*.retired sums to %d, breakdown ops = %d", retired, r.Miss.Ops)
	}
}

func TestWatchdogCatchesStalledRun(t *testing.T) {
	// Force a "hang" by setting the watchdog age below any real
	// transaction latency: the first in-flight request trips it, and the
	// run must abort with the full diagnostic — stuck line, message
	// history, and controller DumpStates.
	spec, _ := ByName("vips")
	tr := trace.New()
	_, _, err := RunOn(RunConfig{
		Spec: spec, Global: "cxl", Locals: [2]string{"mesi", "mesi"},
		MCMs: [2]cpu.MCM{cpu.WMO, cpu.WMO}, CoresPerCluster: 2,
		OpsScale: 0.1, Seed: 9,
		Tracer: tr, WatchdogAge: 1,
	})
	if err == nil {
		t.Fatal("1-cycle watchdog should have tripped")
	}
	for _, want := range []string{
		"watchdog hang",
		"transaction hang on line",
		"message history of the hung line:",
		"controller state:",
		"-- DCOH --",
	} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("diagnostic missing %q\n%s", want, err.Error())
		}
	}
}
