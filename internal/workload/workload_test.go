package workload

import (
	"testing"

	"c3/internal/cpu"
	"c3/internal/stats"
)

func TestSpecsWellFormed(t *testing.T) {
	specs := Specs()
	if len(specs) != 33 {
		t.Fatalf("got %d specs, want 33 (14 splash4 + 12 parsec + 7 phoenix)", len(specs))
	}
	counts := map[Suite]int{}
	seen := map[string]bool{}
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			t.Error(err)
		}
		if seen[s.Name] {
			t.Errorf("duplicate spec %q", s.Name)
		}
		seen[s.Name] = true
		counts[s.Suite]++
	}
	if counts[Splash4] != 14 || counts[PARSEC] != 12 || counts[Phoenix] != 7 {
		t.Fatalf("suite counts = %v", counts)
	}
	if _, ok := ByName("vips"); !ok {
		t.Error("ByName(vips) failed")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName should reject unknown kernels")
	}
	if len(Names()) != 33 || len(SuiteOf(Phoenix)) != 7 {
		t.Error("Names/SuiteOf mismatch")
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	bad := []Spec{
		{Name: "x", Ops: 100, PrivateLines: 10, Stride: 1, HotRMW: 0.9, SharedRead: 0.5},
		{Name: "x", Ops: 0, PrivateLines: 10, Stride: 1},
		{Name: "x", Ops: 10, PrivateLines: 10, Stride: 0},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}

func TestSourceDeterministic(t *testing.T) {
	spec, _ := ByName("barnes")
	a := NewSource(&spec, 0, 4, 42)
	b := NewSource(&spec, 0, 4, 42)
	for i := 0; i < 200; i++ {
		ia, oka := a.Next()
		ib, okb := b.Next()
		if oka != okb || ia != ib {
			t.Fatalf("divergence at op %d: %v vs %v", i, ia, ib)
		}
		if !oka {
			break
		}
		// Feed back neutral completions (no barrier/lock in first ops
		// before BarrierEvery).
		a.Complete(ia, 0)
		b.Complete(ib, 0)
	}
}

func TestAddressRegionsDisjoint(t *testing.T) {
	// Private regions of different cores, the shared region, and the hot
	// region must not overlap.
	pEnd := privateAddr(0, maxPrivEach-1)
	p1 := privateAddr(1, 0)
	if pEnd >= p1 {
		t.Fatal("private regions overlap")
	}
	if privateAddr(63, maxPrivEach-1) >= sharedAddr(0) {
		t.Fatal("private overlaps shared")
	}
	if sharedAddr(1<<14) >= hotAddr(0) {
		t.Fatal("shared overlaps hot")
	}
	if barrierGen() == barrierCount() || lockAddr(0) == barrierGen() {
		t.Fatal("sync vars collide")
	}
}

func TestRunSmallWorkload(t *testing.T) {
	spec, _ := ByName("vips")
	r, err := Run(RunConfig{
		Spec: spec, Global: "cxl", Locals: [2]string{"mesi", "mesi"},
		MCMs: [2]cpu.MCM{cpu.WMO, cpu.WMO}, CoresPerCluster: 2,
		OpsScale: 0.3, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Time == 0 || r.Miss.Ops == 0 {
		t.Fatalf("empty run result: %+v", r)
	}
	if r.Miss.TotalMisses() == 0 {
		t.Fatal("working set should overflow the L1 and miss")
	}
}

func TestRunWithBarriersAndLocks(t *testing.T) {
	// Kernels with barriers (kmeans) and locks (fluidanimate) must
	// terminate — the sync state machines make real progress.
	for _, name := range []string{"kmeans", "fluidanimate", "histogram"} {
		spec, _ := ByName(name)
		r, err := Run(RunConfig{
			Spec: spec, Global: "cxl", Locals: [2]string{"mesi", "moesi"},
			MCMs: [2]cpu.MCM{cpu.TSO, cpu.WMO}, CoresPerCluster: 2,
			OpsScale: 0.3, Seed: 3,
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if r.Time == 0 {
			t.Fatalf("%s: zero time", name)
		}
	}
}

func TestHotWorkloadsSlowerUnderCXL(t *testing.T) {
	// The Fig. 10/11 shape in miniature: histogram (hot cross-cluster
	// RMWs) must slow down more under CXL than vips (private streaming).
	ratio := func(name string) float64 {
		spec, _ := ByName(name)
		run := func(global string) stats.Run {
			r, err := Run(RunConfig{
				Spec: spec, Global: global, Locals: [2]string{"mesi", "mesi"},
				MCMs: [2]cpu.MCM{cpu.WMO, cpu.WMO}, CoresPerCluster: 2,
				OpsScale: 0.5, Seed: 11,
			})
			if err != nil {
				t.Fatal(err)
			}
			return r
		}
		return float64(run("cxl").Time) / float64(run("hmesi").Time)
	}
	hist := ratio("histogram")
	vips := ratio("vips")
	t.Logf("CXL/baseline slowdown: histogram %.3f, vips %.3f", hist, vips)
	if hist <= vips {
		t.Fatalf("histogram (%.3f) should be more CXL-sensitive than vips (%.3f)", hist, vips)
	}
	if vips > 1.2 {
		t.Fatalf("vips should be nearly CXL-insensitive, got %.3f", vips)
	}
}
