package workload

// The 33 kernels of Sec. V, one per application in Splash-4 (14),
// PARSEC (12) and Phoenix (7). Parameters encode each application's
// qualitative coherence behaviour:
//
//   - PrivateLines is the resident per-core working set (fits the
//     128 KiB L1, so it hits after warm-up);
//   - Stream is the compulsory-miss fraction, the knob that sets the
//     MPKI band the paper calibrates per application;
//   - SharedRead touches a read-only region both clusters cache;
//   - Hot* touch the small contended read-write set whose cross-cluster
//     ping-pong is what CXL makes more expensive (Fig. 11);
//   - BarrierEvery/LockEvery add real synchronization traffic.
//
// The paper's Fig. 11 singles out histogram, barnes and lu-ncont as the
// most CXL-sensitive and vips as nearly insensitive; those shapes are
// encoded below.
func Specs() []Spec {
	return []Spec{
		// ---- Splash-4 ----
		{Name: "barnes", Suite: Splash4, Ops: 10000, PrivateLines: 512, SharedLines: 64,
			HotLines: 6, PrivateStore: 0.20, SharedRead: 0.18, Stream: 0.020,
			HotRead: 0.005, HotWrite: 0.0045, HotRMW: 0.0015, BarrierEvery: 3200, Stride: 3},
		{Name: "fmm", Suite: Splash4, Ops: 10000, PrivateLines: 512, SharedLines: 48,
			HotLines: 8, PrivateStore: 0.22, SharedRead: 0.15, Stream: 0.018,
			HotRead: 0.002, HotWrite: 0.001, BarrierEvery: 4000, Stride: 2},
		{Name: "ocean-cont", Suite: Splash4, Ops: 10000, PrivateLines: 640, SharedLines: 32,
			HotLines: 4, PrivateStore: 0.30, SharedRead: 0.10, Stream: 0.050,
			HotRead: 0.0015, HotWrite: 0.0005, BarrierEvery: 2000, Stride: 1},
		{Name: "ocean-ncont", Suite: Splash4, Ops: 10000, PrivateLines: 640, SharedLines: 32,
			HotLines: 6, PrivateStore: 0.30, SharedRead: 0.10, Stream: 0.055,
			HotRead: 0.002, HotWrite: 0.0015, BarrierEvery: 2000, Stride: 5},
		{Name: "radiosity", Suite: Splash4, Ops: 10000, PrivateLines: 512, SharedLines: 64,
			HotLines: 8, PrivateStore: 0.18, SharedRead: 0.22, Stream: 0.012,
			HotRead: 0.0015, HotWrite: 0.001, HotRMW: 0.0005, LockEvery: 1600, Stride: 2},
		{Name: "raytrace", Suite: Splash4, Ops: 10000, PrivateLines: 512, SharedLines: 128,
			HotLines: 4, PrivateStore: 0.10, SharedRead: 0.35, Stream: 0.010,
			HotRead: 0.001, LockEvery: 2800, Stride: 2},
		{Name: "volrend", Suite: Splash4, Ops: 10000, PrivateLines: 384, SharedLines: 128,
			HotLines: 4, PrivateStore: 0.08, SharedRead: 0.40, Stream: 0.008,
			HotRead: 0.001, Stride: 1},
		{Name: "water-nsq", Suite: Splash4, Ops: 10000, PrivateLines: 512, SharedLines: 48,
			HotLines: 4, PrivateStore: 0.25, SharedRead: 0.12, Stream: 0.012,
			HotRead: 0.001, HotWrite: 0.0005, BarrierEvery: 3200, LockEvery: 2400, Stride: 2},
		{Name: "water-sp", Suite: Splash4, Ops: 10000, PrivateLines: 512, SharedLines: 32,
			HotLines: 3, PrivateStore: 0.25, SharedRead: 0.10, Stream: 0.010,
			HotRead: 0.001, BarrierEvery: 3600, Stride: 2},
		{Name: "cholesky", Suite: Splash4, Ops: 10000, PrivateLines: 640, SharedLines: 64,
			HotLines: 5, PrivateStore: 0.28, SharedRead: 0.15, Stream: 0.025,
			HotRead: 0.001, HotWrite: 0.0005, LockEvery: 3600, Stride: 1},
		{Name: "fft", Suite: Splash4, Ops: 10000, PrivateLines: 768, SharedLines: 96,
			HotLines: 2, PrivateStore: 0.30, SharedRead: 0.20, Stream: 0.060,
			HotRead: 0.0005, BarrierEvery: 2800, Stride: 1},
		{Name: "lu-cont", Suite: Splash4, Ops: 10000, PrivateLines: 640, SharedLines: 64,
			HotLines: 3, PrivateStore: 0.30, SharedRead: 0.15, Stream: 0.020,
			HotRead: 0.001, HotWrite: 0.0005, BarrierEvery: 2800, Stride: 1},
		{Name: "lu-ncont", Suite: Splash4, Ops: 10000, PrivateLines: 640, SharedLines: 64,
			HotLines: 8, PrivateStore: 0.28, SharedRead: 0.12, Stream: 0.020,
			HotRead: 0.006, HotWrite: 0.0075, BarrierEvery: 2800, Stride: 7},
		{Name: "radix", Suite: Splash4, Ops: 10000, PrivateLines: 768, SharedLines: 32,
			HotLines: 4, PrivateStore: 0.40, SharedRead: 0.08, Stream: 0.070,
			HotRead: 0.001, HotWrite: 0.001, BarrierEvery: 3200, Stride: 3},

		// ---- PARSEC ----
		{Name: "blackscholes", Suite: PARSEC, Ops: 10000, PrivateLines: 384, SharedLines: 32,
			HotLines: 1, PrivateStore: 0.15, SharedRead: 0.10, Stream: 0.008, Stride: 1},
		{Name: "bodytrack", Suite: PARSEC, Ops: 10000, PrivateLines: 512, SharedLines: 96,
			HotLines: 4, PrivateStore: 0.15, SharedRead: 0.25, Stream: 0.015,
			HotRead: 0.001, HotRMW: 0.0005, BarrierEvery: 3600, Stride: 2},
		{Name: "canneal", Suite: PARSEC, Ops: 10000, PrivateLines: 640, SharedLines: 128,
			HotLines: 10, PrivateStore: 0.15, SharedRead: 0.25, Stream: 0.060,
			HotRead: 0.004, HotWrite: 0.0025, HotRMW: 0.0025, Stride: 11},
		{Name: "dedup", Suite: PARSEC, Ops: 10000, PrivateLines: 512, SharedLines: 64,
			HotLines: 6, PrivateStore: 0.25, SharedRead: 0.12, Stream: 0.030,
			HotRead: 0.001, HotRMW: 0.001, LockEvery: 2000, Stride: 2},
		{Name: "facesim", Suite: PARSEC, Ops: 10000, PrivateLines: 640, SharedLines: 64,
			HotLines: 3, PrivateStore: 0.25, SharedRead: 0.15, Stream: 0.030,
			HotRead: 0.0005, HotWrite: 0.0005, BarrierEvery: 4000, Stride: 1},
		{Name: "ferret", Suite: PARSEC, Ops: 10000, PrivateLines: 512, SharedLines: 128,
			HotLines: 5, PrivateStore: 0.15, SharedRead: 0.30, Stream: 0.015,
			HotRead: 0.001, HotRMW: 0.0005, LockEvery: 2800, Stride: 2},
		{Name: "fluidanimate", Suite: PARSEC, Ops: 10000, PrivateLines: 512, SharedLines: 48,
			HotLines: 8, PrivateStore: 0.22, SharedRead: 0.12, Stream: 0.015,
			HotRead: 0.002, HotWrite: 0.0015, LockEvery: 1200, Stride: 2},
		{Name: "freqmine", Suite: PARSEC, Ops: 10000, PrivateLines: 512, SharedLines: 96,
			HotLines: 4, PrivateStore: 0.20, SharedRead: 0.25, Stream: 0.020,
			HotRead: 0.001, HotRMW: 0.0005, Stride: 2},
		{Name: "streamcluster", Suite: PARSEC, Ops: 10000, PrivateLines: 640, SharedLines: 128,
			HotLines: 3, PrivateStore: 0.18, SharedRead: 0.35, Stream: 0.035,
			HotRead: 0.001, HotWrite: 0.0005, BarrierEvery: 2800, Stride: 1},
		{Name: "swaptions", Suite: PARSEC, Ops: 10000, PrivateLines: 384, SharedLines: 32,
			HotLines: 1, PrivateStore: 0.20, SharedRead: 0.05, Stream: 0.006, Stride: 1},
		{Name: "vips", Suite: PARSEC, Ops: 10000, PrivateLines: 448, SharedLines: 32,
			HotLines: 1, PrivateStore: 0.25, SharedRead: 0.06, Stream: 0.012, Stride: 1},
		{Name: "x264", Suite: PARSEC, Ops: 10000, PrivateLines: 512, SharedLines: 80,
			HotLines: 4, PrivateStore: 0.22, SharedRead: 0.20, Stream: 0.018,
			HotRead: 0.001, HotWrite: 0.0005, LockEvery: 3200, Stride: 2},

		// ---- Phoenix ----
		{Name: "histogram", Suite: Phoenix, Ops: 10000, PrivateLines: 512, SharedLines: 32,
			HotLines: 12, PrivateStore: 0.05, SharedRead: 0.05, Stream: 0.030,
			HotRead: 0.008, HotWrite: 0.005, HotRMW: 0.011, Stride: 1},
		{Name: "kmeans", Suite: Phoenix, Ops: 10000, PrivateLines: 512, SharedLines: 64,
			HotLines: 8, PrivateStore: 0.12, SharedRead: 0.30, Stream: 0.020,
			HotRead: 0.0015, HotRMW: 0.001, BarrierEvery: 2800, Stride: 1},
		{Name: "linear_regression", Suite: Phoenix, Ops: 10000, PrivateLines: 512,
			SharedLines: 32, HotLines: 1, PrivateStore: 0.10, SharedRead: 0.02,
			Stream: 0.025, Stride: 1},
		{Name: "matrix_multiply", Suite: Phoenix, Ops: 10000, PrivateLines: 640,
			SharedLines: 128, HotLines: 1, PrivateStore: 0.15, SharedRead: 0.35,
			Stream: 0.020, Stride: 1},
		{Name: "pca", Suite: Phoenix, Ops: 10000, PrivateLines: 512, SharedLines: 96,
			HotLines: 4, PrivateStore: 0.15, SharedRead: 0.30, Stream: 0.018,
			HotRead: 0.0005, HotRMW: 0.0005, BarrierEvery: 3600, Stride: 1},
		{Name: "string_match", Suite: Phoenix, Ops: 10000, PrivateLines: 448,
			SharedLines: 32, HotLines: 1, PrivateStore: 0.05, SharedRead: 0.10,
			Stream: 0.020, Stride: 1},
		{Name: "word_count", Suite: Phoenix, Ops: 10000, PrivateLines: 512, SharedLines: 32,
			HotLines: 10, PrivateStore: 0.10, SharedRead: 0.10, Stream: 0.018,
			HotRead: 0.003, HotWrite: 0.0015, HotRMW: 0.004, Stride: 1},
	}
}

// ByName finds a kernel spec.
func ByName(name string) (Spec, bool) {
	for _, s := range Specs() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// Names lists all kernel names in definition order.
func Names() []string {
	var out []string
	for _, s := range Specs() {
		out = append(out, s.Name)
	}
	return out
}

// SuiteOf groups the specs by suite.
func SuiteOf(s Suite) []Spec {
	var out []Spec
	for _, sp := range Specs() {
		if sp.Suite == s {
			out = append(out, sp)
		}
	}
	return out
}
