package system

import (
	"fmt"
	"testing"

	"c3/internal/cpu"
	"c3/internal/mem"
	"c3/internal/network"
	"c3/internal/sim"
)

// contendedRun executes a cross-cluster write-contention microbenchmark
// (two cores per cluster hammering one line with atomics) and returns
// the makespan and the number of BIConflict handshakes C3 initiated.
func contendedRun(b *testing.B, cross network.LinkConfig, seed int64) (t sim.Time, conflictsOut, dirFirst uint64) {
	b.Helper()
	cfg := Config{
		Global: "cxl",
		Seed:   seed,
		Cross:  cross,
		Clusters: []ClusterConfig{
			{Protocol: "mesi", MCM: cpu.WMO, Cores: 2},
			{Protocol: "mesi", MCM: cpu.WMO, Cores: 2},
		},
	}
	s, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for cl := 0; cl < 2; cl++ {
		for i := 0; i < 2; i++ {
			// Read-then-upgrade pattern over a small hot set: both
			// clusters repeatedly hold lines shared and race to
			// ownership — the request/snoop overlap that triggers the
			// Fig. 2 conflict handshake. Core-side jitter spreads issue
			// timing so the upgrade windows overlap across rounds.
			core := cpu.DefaultConfig(cpu.WMO)
			core.IssueJitter, core.DrainJitter = 400, 400
			core.Seed = seed*31 + int64(cl*2+i)
			cfg.Clusters[cl].Core = core
			var prog []cpu.Instr
			for n := 0; n < 40; n++ {
				line := mem.Addr(0x10000 + (n%4)*64)
				prog = append(prog, cpu.Instr{Kind: cpu.Load, Addr: line, Reg: 0})
				prog = append(prog, cpu.Instr{Kind: cpu.RMWAdd, Addr: line, Val: 1, Reg: 1})
			}
			s.AttachSource(cl, i, cpu.NewSliceSource(prog))
		}
	}
	if !s.Run(50_000_000) {
		b.Fatal("run wedged")
	}
	var conflicts uint64
	for _, cl := range s.Clusters {
		conflicts += cl.C3.Stats.Conflicts
		dirFirst += cl.C3.Stats.ConflictsDirFirst
	}
	return s.Time(), conflicts, dirFirst
}

// BenchmarkAblationFabricReordering compares the CXL fabric with and
// without message reordering. The BIConflict handshake exists precisely
// because the fabric reorders (Fig. 2); with an ordered fabric the race
// window narrows and handshakes all but disappear.
func BenchmarkAblationFabricReordering(b *testing.B) {
	unordered := network.CrossCluster()
	ordered := unordered
	ordered.Unordered = false
	ordered.JitterMax = 0

	for _, v := range []struct {
		name string
		cfg  network.LinkConfig
	}{{"unordered", unordered}, {"ordered", ordered}} {
		v := v
		b.Run(v.name, func(b *testing.B) {
			var total, dirFirst uint64
			var t sim.Time
			for i := 0; i < b.N; i++ {
				tt, c, df := contendedRun(b, v.cfg, int64(i+1))
				t, total, dirFirst = tt, total+c, dirFirst+df
			}
			b.ReportMetric(float64(t), "cycles")
			b.ReportMetric(float64(total)/float64(b.N), "conflicts/run")
			b.ReportMetric(float64(dirFirst)/float64(b.N), "dir-first/run")
		})
	}
}

// BenchmarkAblationSpecDepth sweeps the speculative-load window of the
// in-order-binding (TSO) cores on a streaming-load kernel with real
// caches and CXL-attached memory. This is the knob behind the Fig. 9
// TSO-vs-weak penalty: depth 1 serializes load misses; large depths
// approach weak-ordering throughput.
func BenchmarkAblationSpecDepth(b *testing.B) {
	run := func(b *testing.B, mcm cpu.MCM, depth int) sim.Time {
		core := cpu.DefaultConfig(mcm)
		if depth > 0 {
			core.SpecDepth = depth
		}
		s, err := New(Config{
			Global: "cxl", Seed: 1,
			Clusters: []ClusterConfig{
				{Protocol: "mesi", MCM: mcm, Cores: 1, Core: core},
				{Protocol: "mesi", MCM: mcm, Cores: 1, Core: core},
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		for cl := 0; cl < 2; cl++ {
			var prog []cpu.Instr
			for n := 0; n < 256; n++ {
				prog = append(prog, cpu.Instr{Kind: cpu.Load,
					Addr: mem.Addr(0x100000 + (cl*1000+n)*64), Reg: 0})
			}
			s.AttachSource(cl, 0, cpu.NewSliceSource(prog))
		}
		if !s.Run(50_000_000) {
			b.Fatal("wedged")
		}
		return s.Time()
	}
	for _, depth := range []int{1, 2, 4, 10, 24} {
		b.Run(fmt.Sprintf("tso-depth=%d", depth), func(b *testing.B) {
			var t sim.Time
			for i := 0; i < b.N; i++ {
				t = run(b, cpu.TSO, depth)
			}
			b.ReportMetric(float64(t), "cycles")
		})
	}
	b.Run("wmo", func(b *testing.B) {
		var t sim.Time
		for i := 0; i < b.N; i++ {
			t = run(b, cpu.WMO, 0)
		}
		b.ReportMetric(float64(t), "cycles")
	})
}

// BenchmarkAblationCXLLinkLatency sweeps the cross-cluster link latency
// (the paper calibrates 70 ns; real deployments vary) on the contended
// microbenchmark.
func BenchmarkAblationCXLLinkLatency(b *testing.B) {
	for _, ns := range []uint64{35, 70, 140, 280} {
		cfg := network.CrossCluster()
		cfg.Latency = sim.NS(ns)
		name := map[uint64]string{35: "35ns", 70: "70ns", 140: "140ns", 280: "280ns"}[ns]
		b.Run(name, func(b *testing.B) {
			var t sim.Time
			for i := 0; i < b.N; i++ {
				t, _, _ = contendedRun(b, cfg, int64(i+1))
			}
			b.ReportMetric(float64(t), "cycles")
		})
	}
}
