package system

import (
	"fmt"

	"c3/internal/msg"
	"c3/internal/protocol/hostproto"
	"c3/internal/trace"
)

// Metrics builds the unified registry over this system's counters. The
// registry holds lazy readers, not copies: register once, render any
// time (including mid-run). Names are hierarchical and stable —
// "c3.<cluster>.<counter>", "dcoh.<counter>" / "hdir.<counter>",
// "net.msgs.<vnet>", "l1.<cluster>.<core>.<counter>",
// "core.<cluster>.<core>.retired" — so downstream tooling can diff runs
// by key.
func (s *System) Metrics() *trace.Registry {
	r := trace.NewRegistry()

	for ci, cl := range s.Clusters {
		st := &cl.C3.Stats
		pre := fmt.Sprintf("c3.%d.", ci)
		r.Counter(pre+"local_reqs", func() uint64 { return st.LocalReqs })
		r.Counter(pre+"delegations", func() uint64 { return st.Delegations })
		r.Counter(pre+"snoops_served", func() uint64 { return st.SnoopsServed })
		r.Counter(pre+"conflicts", func() uint64 { return st.Conflicts })
		r.Counter(pre+"conflicts_dir_first", func() uint64 { return st.ConflictsDirFirst })
		r.Counter(pre+"evictions", func() uint64 { return st.Evictions })
		r.Counter(pre+"writebacks", func() uint64 { return st.Writebacks })
		r.Counter(pre+"stalled", func() uint64 { return st.Stalled })
		if s.LocalMems[ci] != nil {
			r.Counter(pre+"localmem_reads", func() uint64 { return st.LocalMemReads })
			r.Counter(pre+"localmem_writes", func() uint64 { return st.LocalMemWrites })
		}

		for i, p := range cl.L1s {
			lpre := fmt.Sprintf("l1.%d.%d.", ci, i)
			switch l1 := p.(type) {
			case *hostproto.L1:
				r.Counter(lpre+"accesses", func() uint64 { return l1.Accesses })
				r.Counter(lpre+"misses", func() uint64 { return l1.Misses })
			case *hostproto.RCCL1:
				r.Counter(lpre+"accesses", func() uint64 { return l1.Accesses })
				r.Counter(lpre+"misses", func() uint64 { return l1.Misses })
			}
		}

		// Cores attach after construction; read through the cluster so a
		// render sees whatever is attached by then.
		cluster, cc := cl, ci
		for i := 0; i < cl.Cfg.Cores; i++ {
			idx := i
			r.Counter(fmt.Sprintf("core.%d.%d.retired", cc, idx), func() uint64 {
				if idx < len(cluster.Cores) && cluster.Cores[idx] != nil {
					return cluster.Cores[idx].Retired
				}
				return 0
			})
		}
	}

	if s.DCOH != nil {
		st := &s.DCOH.Stats
		r.Counter("dcoh.reads", func() uint64 { return st.Reads })
		r.Counter("dcoh.writes", func() uint64 { return st.Writes })
		r.Counter("dcoh.snoops", func() uint64 { return st.Snoops })
		r.Counter("dcoh.conflicts", func() uint64 { return st.Conflicts })
		r.Counter("dcoh.stalls", func() uint64 { return st.Stalls })
	}
	if s.HDir != nil {
		st := &s.HDir.Stats
		r.Counter("hdir.reads", func() uint64 { return st.Reads })
		r.Counter("hdir.writes", func() uint64 { return st.Writes })
		r.Counter("hdir.fwds", func() uint64 { return st.Fwds })
		r.Counter("hdir.invs", func() uint64 { return st.Invs })
		r.Counter("hdir.stalls", func() uint64 { return st.Stalls })
	}

	ns := &s.Net.Stats
	for v := msg.VNet(0); v < msg.NumVNets; v++ {
		vn := v
		r.Counter("net.msgs."+v.String(), func() uint64 { return ns.Msgs[vn] })
		r.Counter("net.bytes."+v.String(), func() uint64 { return ns.Bytes[vn] })
	}
	r.Counter("net.msgs.total", ns.TotalMsgs)
	r.Counter("net.bytes.total", ns.TotalBytes)

	if s.crashAt != nil {
		rs := &s.Recovery
		r.Counter("recovery.hosts_crashed", func() uint64 { return rs.HostsCrashed })
		r.Counter("recovery.hosts_rejoined", func() uint64 { return rs.HostsRejoined })
		r.Counter("recovery.peers_declared_dead", func() uint64 { return rs.PeersDeclaredDead })
		r.Counter("recovery.lines_reclaimed", func() uint64 { return rs.LinesReclaimed })
		r.Counter("recovery.lines_poisoned", func() uint64 { return rs.LinesPoisoned })
		r.Counter("recovery.tx_naked", func() uint64 { return rs.TxNAKed })
		r.Counter("recovery.time_to_quiesce", func() uint64 { return rs.TimeToQuiesce })
	}

	if s.Tracer != nil {
		r.Counter("trace.dropped_events", s.Tracer.DroppedEvents)
	}

	if inj := s.Net.Injector(); inj != nil {
		fs := &inj.Stats
		r.Counter("faults.decisions", func() uint64 { return fs.Decisions })
		r.Counter("faults.drops", func() uint64 { return fs.Drops })
		r.Counter("faults.dups", func() uint64 { return fs.Dups })
		r.Counter("faults.delays", func() uint64 { return fs.Delays })
		r.Counter("faults.stall_drops", func() uint64 { return fs.StallDrops })
		r.Counter("faults.retries", func() uint64 { return fs.Retries })
		r.Counter("faults.poisoned", func() uint64 { return fs.Poisoned })
		r.Counter("faults.acks", func() uint64 { return fs.Acks })
		r.Counter("faults.ack_drops", func() uint64 { return fs.AckDrops })
		r.Counter("faults.poisoned_lines", func() uint64 { return uint64(len(inj.PoisonedLines())) })
	}

	return r
}
