package system

import (
	"fmt"

	"c3/internal/faults"
	"c3/internal/mem"
	"c3/internal/msg"
	"c3/internal/sim"
)

// RecoveryStats aggregates the host-crash recovery telemetry
// (recovery.* metrics).
type RecoveryStats struct {
	// HostsCrashed counts clusters taken down by a crash plan.
	HostsCrashed uint64
	// PeersDeclaredDead counts peer-dead declarations processed (one per
	// crashed cluster once the fabric escalates).
	PeersDeclaredDead uint64
	// LinesReclaimed counts directory/snoop-filter entries scrubbed of
	// the dead host.
	LinesReclaimed uint64
	// LinesPoisoned counts lines whose only copy died with the host.
	LinesPoisoned uint64
	// TxNAKed counts in-flight transactions terminated with a synthesized
	// NAK/poison completion (dead-host requests dropped at the home plus
	// surviving waits repaired).
	TxNAKed uint64
	// TimeToQuiesce is the cycles from the (latest) crash to the
	// completion of its reclamation walk.
	TimeToQuiesce uint64
	// HostsRejoined counts clusters brought back by a rejoin window.
	HostsRejoined uint64
}

// validateCrashes checks a crash plan against the machine shape. Cluster
// 0 is the anchor (litmus collector home and the convergence reference)
// and must survive.
func validateCrashes(crashes []faults.Crash, clusters int) error {
	for _, cr := range crashes {
		if cr.Host < 1 || cr.Host >= clusters {
			return fmt.Errorf("system: crash host %d out of range (want 1..%d; cluster 0 must survive)",
				cr.Host, clusters-1)
		}
		if cr.At <= 0 {
			return fmt.Errorf("system: crash tick %d must be positive", cr.At)
		}
		if cr.Rejoin != 0 && cr.Rejoin <= cr.At {
			return fmt.Errorf("system: rejoin tick %d must follow crash tick %d", cr.Rejoin, cr.At)
		}
	}
	return nil
}

// armCrashes schedules the plan's host crashes (and rejoins) and wires
// the fabric's peer-dead escalation into the reclamation walk. Called
// from New once the machine is assembled.
func (s *System) armCrashes(crashes []faults.Crash) {
	s.crashAt = make(map[msg.NodeID]sim.Time)
	s.Net.OnPeerDead = s.handlePeerDead
	for _, cr := range crashes {
		cr := cr
		s.K.Schedule(cr.At, func() { s.crashCluster(cr.Host) })
		if cr.Rejoin != 0 {
			s.K.Schedule(cr.Rejoin, func() { s.rejoinCluster(cr.Host) })
		}
	}
}

// clusterNodes returns the network endpoints of cluster ci (C3 first).
func (s *System) clusterNodes(ci int) []msg.NodeID {
	cl := s.Clusters[ci]
	ids := []msg.NodeID{cl.C3.ID()}
	for _, l1 := range cl.L1s {
		ids = append(ids, l1.ID())
	}
	return ids
}

// crashCluster models a surprise host failure: the cluster's cores halt
// mid-stream, every fabric link touching the cluster goes down, and the
// watchdog stops waiting for the dead host's open transactions. The
// coherence-state reclamation runs later, when the fabric escalates the
// silence to a peer-dead declaration (handlePeerDead).
func (s *System) crashCluster(ci int) {
	cl := s.Clusters[ci]
	if cl.crashed {
		return
	}
	cl.crashed = true
	s.Recovery.HostsCrashed++
	for _, c := range cl.Cores {
		if c != nil {
			c.Kill()
		}
	}
	ids := s.clusterNodes(ci)
	for _, id := range ids {
		s.Net.MarkNodeDown(id)
	}
	s.crashAt[cl.C3.ID()] = s.K.Now()
	if s.dog != nil {
		s.dog.DropNodes(ids...)
	}
	if s.Tracer != nil {
		s.Tracer.State(s.K.Now(), cl.C3.ID(), 0, "up", "down", fmt.Sprintf("host %d crashed", ci))
	}
}

// handlePeerDead runs the coherence-state reclamation walk once the
// fabric declares a crashed cluster's C3 dead: the home controller
// scrubs the dead host from every sharer vector, poisons lines whose
// only copy died with it, and synthesizes completions for surviving
// waiters; surviving C3s forgive invalidation acks the dead peer owed.
func (s *System) handlePeerDead(id msg.NodeID) {
	s.Recovery.PeersDeclaredDead++
	naked := 0
	if s.DCOH != nil {
		rec := s.DCOH.ReclaimHost(id)
		s.Recovery.LinesReclaimed += uint64(rec.Reclaimed)
		s.Recovery.LinesPoisoned += uint64(rec.Poisoned)
		naked += rec.NAKed
		s.recordPoison(rec.PoisonedLines)
	}
	if s.HDir != nil {
		rec := s.HDir.ReclaimHost(id)
		s.Recovery.LinesReclaimed += uint64(rec.Reclaimed)
		s.Recovery.LinesPoisoned += uint64(rec.Poisoned)
		naked += rec.NAKed
		s.recordPoison(rec.PoisonedLines)
	}
	for _, cl := range s.Clusters {
		if cl.C3.ID() != id && !cl.crashed {
			naked += cl.C3.PeerDead(id)
		}
	}
	s.Recovery.TxNAKed += uint64(naked)
	if at, ok := s.crashAt[id]; ok {
		s.Recovery.TimeToQuiesce = uint64(s.K.Now() - at)
	}
}

// recordPoison feeds crash-poisoned lines into the fault injector's
// poison set, unifying PoisonedLines(), the watchdog's poisoned-line
// classification and the faults.poisoned metric across both poison
// sources (retry exhaustion and host crash).
func (s *System) recordPoison(lines []mem.LineAddr) {
	inj := s.Net.Injector()
	if inj == nil {
		return
	}
	for _, a := range lines {
		inj.RecordPoison(a)
	}
}

// rejoinCluster brings a crashed cluster's fabric links back and
// re-admits its C3 at the home controller, cold: the C3 restarts with
// empty state and the cluster's cores stay halted (a crash loses the
// workload; rejoin restores the machine, not the program). Lines
// poisoned by the crash stay poisoned.
func (s *System) rejoinCluster(ci int) {
	cl := s.Clusters[ci]
	if !cl.crashed {
		return
	}
	cl.crashed = false
	s.Recovery.HostsRejoined++
	for _, id := range s.clusterNodes(ci) {
		s.Net.MarkNodeUp(id)
	}
	if s.DCOH != nil {
		s.DCOH.ReviveHost(cl.C3.ID())
	}
	if s.HDir != nil {
		s.HDir.ReviveHost(cl.C3.ID())
	}
	cl.C3.Reset()
	if s.Tracer != nil {
		s.Tracer.State(s.K.Now(), cl.C3.ID(), 0, "down", "up", fmt.Sprintf("host %d rejoined (cold)", ci))
	}
}

// CrashedClusters returns the indices of clusters currently down.
func (s *System) CrashedClusters() []int {
	var out []int
	for ci, cl := range s.Clusters {
		if cl.crashed {
			out = append(out, ci)
		}
	}
	return out
}

// DeadHostIsolationViolations checks the post-reclamation isolation
// invariant: no directory or snoop-filter entry may still name a host
// the fabric has declared dead. It returns one description per
// violation (empty means the invariant holds).
func (s *System) DeadHostIsolationViolations() []string {
	var out []string
	for _, id := range s.Net.DeadPeers() {
		if s.DCOH != nil && s.DCOH.ReferencesHost(id) {
			out = append(out, fmt.Sprintf("DCOH still references dead host %d", id))
		}
		if s.HDir != nil && s.HDir.ReferencesHost(id) {
			out = append(out, fmt.Sprintf("HDir still references dead host %d", id))
		}
	}
	return out
}
