package system

import (
	"strings"
	"testing"

	"c3/internal/cpu"
	"c3/internal/faults"
	"c3/internal/sim"
)

// crashConfig is twoClusters plus a host-1 crash at tick `at`
// (rejoin 0 = permanent).
func crashConfig(global string, at, rejoin int64, seed int64) Config {
	cfg := twoClusters("mesi", "mesi", global, 1, seed)
	plan := &faults.Plan{Seed: uint64(seed)}
	plan.CrashHost(1, sim.Time(at))
	if rejoin != 0 {
		plan.Crashes[0].Rejoin = sim.Time(rejoin)
	}
	cfg.Faults = plan
	return cfg
}

// busyProg keeps a core running well past the crash tick.
func busyProg(base, n int) []cpu.Instr {
	var prog []cpu.Instr
	for i := 0; i < n; i++ {
		prog = append(prog, cpu.Instr{Kind: cpu.RMWAdd, Addr: addr(base), Val: 1, Reg: i % 8})
	}
	return prog
}

// victimSource takes line `base` Modified, then spins on it forever —
// guaranteed to be mid-stream (holding the only copy) at any crash tick.
func victimSource(base int) *cpu.FuncSource {
	stored := false
	return &cpu.FuncSource{
		NextFn: func() (cpu.Instr, bool) {
			if !stored {
				stored = true
				return cpu.Instr{Kind: cpu.Store, Addr: addr(base), Val: 77}, true
			}
			return cpu.Instr{Kind: cpu.Load, Addr: addr(base), Reg: 1, CtrlDep: true}, true
		},
	}
}

func TestHostCrashReclaimsAndConverges(t *testing.T) {
	for _, global := range []string{"cxl", "hmesi"} {
		t.Run(global, func(t *testing.T) {
			s, err := New(crashConfig(global, 2000, 0, 5))
			if err != nil {
				t.Fatal(err)
			}
			// The victim cluster takes line 5 Modified and spins; it is
			// mid-stream at the crash tick, so its only copy dies.
			s.AttachSource(1, 0, victimSource(5))
			// The survivor spins on a disjoint line until the fabric has
			// declared the victim dead, then stops — keeping the kernel
			// alive through the declaration without depending on timing.
			spinning := true
			surv := &cpu.FuncSource{
				NextFn: func() (cpu.Instr, bool) {
					if !spinning {
						return cpu.Instr{}, false
					}
					return cpu.Instr{Kind: cpu.Load, Addr: addr(0), Reg: 1, CtrlDep: true}, true
				},
				CompleteFn: func(cpu.Instr, uint64) {
					if s.Recovery.PeersDeclaredDead > 0 {
						spinning = false
					}
				},
			}
			s.AttachSource(0, 0, surv)
			mustRun(t, s)

			if s.Recovery.HostsCrashed != 1 {
				t.Fatalf("HostsCrashed = %d, want 1", s.Recovery.HostsCrashed)
			}
			if s.Recovery.PeersDeclaredDead != 1 {
				t.Fatalf("PeersDeclaredDead = %d, want 1", s.Recovery.PeersDeclaredDead)
			}
			if s.Recovery.LinesReclaimed == 0 {
				t.Fatal("reclamation walk scrubbed nothing")
			}
			if s.Recovery.LinesPoisoned == 0 || len(s.PoisonedLines()) == 0 {
				t.Fatal("the victim's Modified line must be recorded poisoned")
			}
			if s.Recovery.TimeToQuiesce == 0 {
				t.Fatal("TimeToQuiesce not measured")
			}
			if got := s.CrashedClusters(); len(got) != 1 || got[0] != 1 {
				t.Fatalf("CrashedClusters = %v, want [1]", got)
			}
			if v := s.DeadHostIsolationViolations(); len(v) > 0 {
				t.Fatalf("isolation invariant violated: %v", v)
			}
		})
	}
}

func TestHostCrashRejoinColdRestart(t *testing.T) {
	s, err := New(crashConfig("cxl", 2000, 30_000, 5))
	if err != nil {
		t.Fatal(err)
	}
	s.AttachSource(1, 0, victimSource(5))
	// The survivor spins until the rejoin has happened, then stops.
	spinning := true
	surv := &cpu.FuncSource{
		NextFn: func() (cpu.Instr, bool) {
			if !spinning {
				return cpu.Instr{}, false
			}
			return cpu.Instr{Kind: cpu.Load, Addr: addr(0), Reg: 1, CtrlDep: true}, true
		},
		CompleteFn: func(cpu.Instr, uint64) {
			if s.Recovery.HostsRejoined > 0 {
				spinning = false
			}
		},
	}
	s.AttachSource(0, 0, surv)
	mustRun(t, s)

	if s.Recovery.HostsRejoined != 1 {
		t.Fatalf("HostsRejoined = %d, want 1", s.Recovery.HostsRejoined)
	}
	if got := s.CrashedClusters(); len(got) != 0 {
		t.Fatalf("CrashedClusters = %v after rejoin, want none", got)
	}
	if len(s.Net.DeadPeers()) != 0 {
		t.Fatal("rejoin left a dead-peer declaration")
	}
	// The crash still cost the workload its data: poison is sticky.
	if len(s.PoisonedLines()) == 0 {
		t.Fatal("rejoin must not launder crash-poisoned lines")
	}
}

func TestCrashPlanValidation(t *testing.T) {
	bad := []faults.Crash{
		{Host: 0, At: 100},              // cluster 0 must survive
		{Host: 2, At: 100},              // out of range for 2 clusters
		{Host: 1, At: 0},                // crash tick must be positive
		{Host: 1, At: 100, Rejoin: 50},  // rejoin before crash
		{Host: 1, At: 100, Rejoin: 100}, // rejoin at crash
	}
	for i, cr := range bad {
		cfg := twoClusters("mesi", "mesi", "cxl", 1, 1)
		cfg.Faults = &faults.Plan{Crashes: []faults.Crash{cr}}
		if _, err := New(cfg); err == nil {
			t.Fatalf("case %d: crash %+v accepted", i, cr)
		}
	}
}

// TestRecoveryMetricsGolden pins the recovery.* block of the metrics
// render: the keys, their order, and their presence exactly when a crash
// plan is armed. Downstream tooling diffs runs by these names.
func TestRecoveryMetricsGolden(t *testing.T) {
	s, err := New(crashConfig("cxl", 2000, 0, 5))
	if err != nil {
		t.Fatal(err)
	}
	s.AttachSource(1, 0, cpu.NewSliceSource(busyProg(5, 400)))
	s.AttachSource(0, 0, cpu.NewSliceSource(busyProg(0, 400)))
	mustRun(t, s)

	var b strings.Builder
	s.Metrics().RenderText(&b)
	var got []string
	for _, line := range strings.Split(b.String(), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "recovery.") {
			got = append(got, strings.Fields(line)[0])
		}
	}
	want := []string{
		"recovery.hosts_crashed",
		"recovery.hosts_rejoined",
		"recovery.lines_poisoned",
		"recovery.lines_reclaimed",
		"recovery.peers_declared_dead",
		"recovery.time_to_quiesce",
		"recovery.tx_naked",
	}
	if len(got) != len(want) {
		t.Fatalf("recovery block = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("recovery key %d = %q, want %q (render order is pinned)", i, got[i], want[i])
		}
	}

	// Without a crash plan the block must be absent entirely.
	s2, err := New(twoClusters("mesi", "mesi", "cxl", 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	s2.AttachSource(0, 0, cpu.NewSliceSource(busyProg(0, 4)))
	s2.AttachSource(1, 0, cpu.NewSliceSource(busyProg(1, 4)))
	mustRun(t, s2)
	var b2 strings.Builder
	s2.Metrics().RenderText(&b2)
	if strings.Contains(b2.String(), "recovery.") {
		t.Fatal("recovery.* rendered without a crash plan")
	}
}
