// Package system assembles complete simulated machines in the paper's
// topology (Fig. 1, Table III): two (or more) compute clusters, each with
// private per-core caches and a C3 controller in place of the LLC
// controller, joined through a star fabric to a CXL memory device (DCOH)
// or, for the baseline, a hierarchical-MESI global directory.
package system

import (
	"fmt"

	"c3/internal/cache"
	"c3/internal/core"
	"c3/internal/cpu"
	"c3/internal/faults"
	"c3/internal/gen"
	"c3/internal/mem"
	"c3/internal/msg"
	"c3/internal/network"
	"c3/internal/protocol/cxl"
	"c3/internal/protocol/hmesi"
	"c3/internal/protocol/hostproto"
	"c3/internal/sim"
	"c3/internal/ssp"
	"c3/internal/trace"
)

// ClusterConfig describes one compute node.
type ClusterConfig struct {
	// Protocol is the local coherence protocol: "mesi", "moesi",
	// "mesif", or "rcc".
	Protocol string
	// MCM is the memory consistency model of the cluster's cores.
	MCM cpu.MCM
	// Cores is the number of cores (each with a private cache).
	Cores int
	// L1 sizes the private caches (zero -> Table III defaults).
	L1 hostproto.Config
	// Core sizes the cores (zero -> cpu.DefaultConfig(MCM)).
	Core cpu.Config
	// LocalRange, when non-nil, enables the hybrid memory configuration
	// (Sec. IV-D4): lines it accepts are homed in this cluster's own
	// memory and never touch the global protocol.
	LocalRange func(mem.LineAddr) bool
}

// Config describes the whole machine.
type Config struct {
	// Global is the inter-cluster protocol: "cxl" or "hmesi".
	Global   string
	Clusters []ClusterConfig
	// Seed drives fabric jitter (per-run randomization for litmus).
	Seed int64
	// LLCSize/LLCWays size each cluster's CXL cache (Table III: 4 MiB).
	LLCSize, LLCWays int
	// Intra/Cross override the link configs (zero -> Table III).
	Intra, Cross network.LinkConfig
	DRAM         mem.DRAMConfig
	// Tracer, when non-nil, is attached to the fabric and every
	// controller; nil keeps the whole timed stack on its untraced path.
	Tracer *trace.Tracer
	// WatchdogAge, when non-zero (and Tracer is set), arms hang
	// detection: a line with an open transaction older than this many
	// cycles triggers a diagnostic report. Use trace.DefaultHangAge for
	// the 10x-cross-cluster-round-trip default.
	WatchdogAge sim.Time
	// Faults, when non-nil and enabled, makes the cross-cluster CXL
	// links unreliable per the plan and arms the network's
	// reliable-delivery shim (retry + dedup + poison). The intra-cluster
	// tier stays perfect.
	Faults *faults.Plan
}

// L1Port is the common face of the per-core private caches.
type L1Port interface {
	cpu.MemPort
	network.Port
	ID() msg.NodeID
}

// Cluster is one assembled compute node.
type Cluster struct {
	Cfg   ClusterConfig
	C3    *core.C3
	L1s   []L1Port
	Cores []*cpu.Core

	// crashed is set while the cluster is down (crash plan).
	crashed bool
}

// System is one assembled machine.
type System struct {
	K    *sim.Kernel
	Net  *network.Network
	DRAM *mem.DRAM
	// Exactly one of DCOH/HDir is set, per Config.Global.
	DCOH *cxl.DCOH
	HDir *hmesi.Dir

	Clusters []*Cluster

	// LocalMems holds each cluster's local memory in hybrid
	// configurations (nil entries otherwise).
	LocalMems []*mem.DRAM

	// Tracer mirrors Config.Tracer (nil when tracing is off).
	Tracer *trace.Tracer

	// Recovery aggregates host-crash recovery telemetry (crash.go);
	// meaningful only when the fault plan schedules crashes.
	Recovery RecoveryStats

	dog     *trace.Watchdog
	crashAt map[msg.NodeID]sim.Time

	finished int
	total    int
}

// CoreNode returns the synthetic trace node id for core (cluster, idx).
// Cores are not network endpoints, so their retire events use negative
// ids disjoint from every controller's.
func CoreNode(cluster, idx int) msg.NodeID {
	return msg.NodeID(-(1000*cluster + idx + 1))
}

// Proto returns "<local1>-<global>-<local2>" in the paper's notation,
// e.g. "MESI-CXL-MOESI".
func (s *System) Proto() string {
	g := "CXL"
	if s.HDir != nil {
		g = "MESI"
	}
	names := make([]string, 0, len(s.Clusters))
	for _, cl := range s.Clusters {
		names = append(names, cl.C3.Table().Local.Name)
	}
	if len(names) == 2 {
		return names[0] + "-" + g + "-" + names[1]
	}
	return fmt.Sprintf("%v-%s", names, g)
}

// New assembles a machine. Node ids: 1 = global directory, then one id
// per C3, then one per L1.
func New(cfg Config) (*System, error) {
	if len(cfg.Clusters) == 0 {
		return nil, fmt.Errorf("system: no clusters")
	}
	if cfg.Global == "" {
		cfg.Global = "cxl"
	}
	gspec, ok := ssp.Global(cfg.Global)
	if !ok {
		return nil, fmt.Errorf("system: unknown global protocol %q", cfg.Global)
	}
	k := &sim.Kernel{}
	net := network.New(k, cfg.Seed)
	if cfg.Faults != nil {
		net.EnableFaults(*cfg.Faults)
	}
	if cfg.DRAM == (mem.DRAMConfig{}) {
		cfg.DRAM = mem.DefaultDRAMConfig()
	}
	dram := mem.NewDRAM(k, cfg.DRAM)
	s := &System{K: k, Net: net, DRAM: dram, Tracer: cfg.Tracer}
	net.Tracer = cfg.Tracer

	var dog *trace.Watchdog
	if cfg.Tracer != nil && cfg.WatchdogAge != 0 {
		dog = trace.NewWatchdog(k, cfg.WatchdogAge, 0)
		cfg.Tracer.SetWatchdog(dog)
		if net.Injector() != nil {
			// With an unreliable fabric a silent line is not necessarily
			// a protocol deadlock: classify recovery-in-progress,
			// poisoned lines and dead hosts so reports (and the soak
			// harness) can tell them apart.
			dog.Classify = func(a mem.LineAddr) string {
				switch {
				case net.Injector().Poisoned(a):
					return "poisoned-line"
				case net.PendingRetries(a):
					return "link-retry"
				case len(net.DeadPeers()) > 0:
					return "dead-host"
				}
				return "protocol-hang"
			}
		}
	}
	s.dog = dog

	intra := cfg.Intra
	if intra == (network.LinkConfig{}) {
		intra = network.IntraCluster()
	}
	cross := cfg.Cross
	if cross == (network.LinkConfig{}) {
		cross = network.CrossCluster()
	}
	// The cross tier is the CXL fabric by definition; mark it so the
	// fault injector and reliable shim target it even under overrides.
	cross.Cross = true

	const dirID = msg.NodeID(1)
	if gspec.Params.ConflictHandshake {
		s.DCOH = cxl.New(dirID, k, net, dram)
		s.DCOH.Tracer = cfg.Tracer
		net.Register(dirID, s.DCOH)
		if cfg.Tracer != nil {
			cfg.Tracer.Name(dirID, "DCOH")
			if dog != nil {
				dog.AddDumper("DCOH", s.DCOH)
			}
		}
	} else {
		s.HDir = hmesi.New(dirID, k, net, dram)
		s.HDir.Tracer = cfg.Tracer
		net.Register(dirID, s.HDir)
		if cfg.Tracer != nil {
			cfg.Tracer.Name(dirID, "HDir")
			if dog != nil {
				dog.AddDumper("HDir", s.HDir)
			}
		}
	}

	next := msg.NodeID(2)
	var c3IDs []msg.NodeID
	for ci, cc := range cfg.Clusters {
		lspec, ok := ssp.Local(cc.Protocol)
		if !ok {
			return nil, fmt.Errorf("system: unknown local protocol %q", cc.Protocol)
		}
		table, err := gen.Generate(lspec, gspec)
		if err != nil {
			return nil, fmt.Errorf("system: cluster %d: %w", ci, err)
		}
		c3ID := next
		next++
		var localMem *mem.DRAM
		if cc.LocalRange != nil {
			localMem = mem.NewDRAM(k, cfg.DRAM)
		}
		s.LocalMems = append(s.LocalMems, localMem)
		c3 := core.New(core.Config{
			ID: c3ID, GlobalDir: dirID, Kernel: k,
			LocalNet: net, GlobalNet: net, Table: table,
			LLCSize: cfg.LLCSize, LLCWays: cfg.LLCWays,
			LocalRange: cc.LocalRange, LocalMem: localMem,
		})
		c3.Tracer = cfg.Tracer
		net.Register(c3ID, c3)
		if cfg.Tracer != nil {
			cfg.Tracer.Name(c3ID, fmt.Sprintf("C3[%d]", ci))
			if dog != nil {
				dog.AddDumper(fmt.Sprintf("C3[%d]", ci), c3)
			}
		}
		net.Connect(c3ID, dirID, cross)
		// Peer links for 3-hop data responses (hierarchical MESI); the
		// star topology routes them through the same fabric.
		for _, peer := range c3IDs {
			net.Connect(c3ID, peer, cross)
		}
		c3IDs = append(c3IDs, c3ID)

		cl := &Cluster{Cfg: cc, C3: c3}
		for i := 0; i < cc.Cores; i++ {
			l1ID := next
			next++
			var l1 L1Port
			switch cc.Protocol {
			case "rcc", "RCC":
				l1 = hostproto.NewRCC(l1ID, c3ID, k, net, cc.L1)
			default:
				l1cfg := cc.L1
				switch cc.Protocol {
				case "moesi", "MOESI":
					l1cfg.Variant = hostproto.MOESI
				case "mesif", "MESIF":
					l1cfg.Variant = hostproto.MESIF
				default:
					l1cfg.Variant = hostproto.MESI
				}
				l1 = hostproto.NewL1(l1ID, c3ID, k, net, l1cfg)
			}
			if mesiL1, ok := l1.(*hostproto.L1); ok {
				mesiL1.Tracer = cfg.Tracer
			}
			net.Register(l1ID, l1)
			if cfg.Tracer != nil {
				cfg.Tracer.Name(l1ID, fmt.Sprintf("L1[%d.%d]", ci, i))
				if dog != nil {
					if d, ok := l1.(trace.Dumper); ok {
						dog.AddDumper(fmt.Sprintf("L1[%d.%d]", ci, i), d)
					}
				}
			}
			net.Connect(l1ID, c3ID, intra)
			cl.L1s = append(cl.L1s, l1)
		}
		s.Clusters = append(s.Clusters, cl)
	}
	if err := net.Validate(); err != nil {
		return nil, fmt.Errorf("system: %w", err)
	}
	if cfg.Faults != nil && len(cfg.Faults.Crashes) > 0 {
		if err := validateCrashes(cfg.Faults.Crashes, len(cfg.Clusters)); err != nil {
			return nil, err
		}
		s.armCrashes(cfg.Faults.Crashes)
	}
	return s, nil
}

// PoisonedLines reports the lines whose data was poisoned by retry
// exhaustion on the faulty fabric (empty on a perfect fabric). A run
// that touched any of these completed by graceful degradation, not by
// coherent delivery.
func (s *System) PoisonedLines() []mem.LineAddr {
	if inj := s.Net.Injector(); inj != nil {
		return inj.PoisonedLines()
	}
	return nil
}

// AttachSource binds an instruction source to core slot (cluster, idx),
// creating the core. Call once per slot before Start.
func (s *System) AttachSource(cluster, idx int, src cpu.Source) *cpu.Core {
	cl := s.Clusters[cluster]
	if idx >= len(cl.L1s) {
		panic(fmt.Sprintf("system: cluster %d has %d cores", cluster, len(cl.L1s)))
	}
	ccfg := cl.Cfg.Core
	if ccfg.WindowSize == 0 {
		ccfg = cpu.DefaultConfig(cl.Cfg.MCM)
	}
	id := cluster*1000 + idx
	c := cpu.New(id, s.K, ccfg, cl.L1s[idx], src, func() { s.finished++ })
	if s.Tracer != nil {
		s.Tracer.Name(CoreNode(cluster, idx), fmt.Sprintf("core %d.%d", cluster, idx))
	}
	s.total++
	for len(cl.Cores) <= idx {
		cl.Cores = append(cl.Cores, nil)
	}
	cl.Cores[idx] = c
	return c
}

// Start launches every attached core.
func (s *System) Start() {
	for _, cl := range s.Clusters {
		for _, c := range cl.Cores {
			if c != nil {
				c.Start()
			}
		}
	}
}

// Done reports whether every attached core has drained.
func (s *System) Done() bool { return s.finished == s.total }

// Release retires the system, dropping its references to the pooled
// cache frame slabs and the DRAM line stores so they recycle (see
// cache.Release). The system must not be used afterwards. The litmus
// runner releases each iteration's private system, which removes the
// dominant per-iteration allocation (the multi-MiB CXL-cache arrays).
func (s *System) Release() {
	for _, cl := range s.Clusters {
		cl.C3.ReleaseLLC()
		for _, l1 := range cl.L1s {
			if c, ok := l1.(interface{ Cache() *cache.Cache }); ok {
				c.Cache().Release()
			}
		}
	}
	s.DRAM.Release()
	for _, lm := range s.LocalMems {
		if lm != nil {
			lm.Release()
		}
	}
}

// Run starts the cores and processes events until all cores finish or
// limit events elapse (0 = unlimited). It reports whether the run
// completed.
func (s *System) Run(limit uint64) bool {
	s.Start()
	start := s.K.Stepped
	for !s.Done() {
		if limit != 0 && s.K.Stepped-start >= limit {
			return false
		}
		if !s.K.Step() {
			return s.Done()
		}
	}
	return true
}

// Time returns the completion time of the slowest core (the execution
// time metric of Figs. 9/10).
func (s *System) Time() sim.Time {
	var t sim.Time
	for _, cl := range s.Clusters {
		for _, c := range cl.Cores {
			if c != nil && c.FinishedAt > t {
				t = c.FinishedAt
			}
		}
	}
	return t
}
