package system

import (
	"fmt"
	"testing"

	"c3/internal/cpu"
	"c3/internal/mem"
)

const evLimit = 50_000_000

func twoClusters(p1, p2, global string, cores int, seed int64) Config {
	return Config{
		Global: global,
		Seed:   seed,
		Clusters: []ClusterConfig{
			{Protocol: p1, MCM: cpu.WMO, Cores: cores},
			{Protocol: p2, MCM: cpu.WMO, Cores: cores},
		},
	}
}

func mustRun(t *testing.T, s *System) {
	t.Helper()
	if !s.Run(evLimit) {
		t.Fatalf("%s: system did not finish (deadlock?)", s.Proto())
	}
}

func addr(i int) mem.Addr { return mem.Addr(0x10000 + i*mem.LineBytes) }

func TestSingleCoreStoreLoad(t *testing.T) {
	s, err := New(Config{Global: "cxl",
		Clusters: []ClusterConfig{{Protocol: "mesi", MCM: cpu.TSO, Cores: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	src := cpu.NewSliceSource([]cpu.Instr{
		{Kind: cpu.Store, Addr: addr(0), Val: 123},
		{Kind: cpu.Load, Addr: addr(0), Reg: 1},
		{Kind: cpu.Load, Addr: addr(1), Reg: 2}, // cold line reads zero
	})
	s.AttachSource(0, 0, src)
	mustRun(t, s)
	if src.Regs[1] != 123 || src.Regs[2] != 0 {
		t.Fatalf("regs = %v, want r1=123 r2=0", src.Regs)
	}
}

func TestCrossClusterVisibility(t *testing.T) {
	// Core in cluster 0 writes; core in cluster 1 spins until it sees
	// the value (exercises GetM/BISnp flows end to end).
	for _, global := range []string{"cxl", "hmesi"} {
		t.Run(global, func(t *testing.T) {
			s, err := New(twoClusters("mesi", "mesi", global, 1, 42))
			if err != nil {
				t.Fatal(err)
			}
			w := cpu.NewSliceSource([]cpu.Instr{
				{Kind: cpu.Store, Addr: addr(0), Val: 7},
			})
			var got uint64
			spinning := true
			r := &cpu.FuncSource{
				NextFn: func() (cpu.Instr, bool) {
					if !spinning {
						return cpu.Instr{}, false
					}
					return cpu.Instr{Kind: cpu.Load, Addr: addr(0), Reg: 1, CtrlDep: true}, true
				},
				CompleteFn: func(in cpu.Instr, v uint64) {
					if in.Kind == cpu.Load && v == 7 {
						got = v
						spinning = false
					}
				},
			}
			s.AttachSource(0, 0, w)
			s.AttachSource(1, 0, r)
			mustRun(t, s)
			if got != 7 {
				t.Fatalf("reader never observed the write; got %d", got)
			}
		})
	}
}

func TestSharedCounterRMW(t *testing.T) {
	// Atomic increments from every core in both clusters must sum
	// exactly — the fundamental SWMR/atomicity test.
	combos := [][2]string{{"mesi", "mesi"}, {"mesi", "moesi"}, {"mesi", "mesif"}, {"moesi", "mesif"}}
	for _, global := range []string{"cxl", "hmesi"} {
		for _, c := range combos {
			name := fmt.Sprintf("%s-%s-%s", c[0], global, c[1])
			t.Run(name, func(t *testing.T) {
				const cores, incs = 2, 20
				s, err := New(twoClusters(c[0], c[1], global, cores, 7))
				if err != nil {
					t.Fatal(err)
				}
				var srcs []*cpu.SliceSource
				for cl := 0; cl < 2; cl++ {
					for i := 0; i < cores; i++ {
						var prog []cpu.Instr
						for n := 0; n < incs; n++ {
							prog = append(prog, cpu.Instr{Kind: cpu.RMWAdd, Addr: addr(0), Val: 1, Reg: n})
						}
						src := cpu.NewSliceSource(prog)
						srcs = append(srcs, src)
						s.AttachSource(cl, i, src)
					}
				}
				mustRun(t, s)
				// Read back the final value through a fresh check of memory:
				// every RMW returned a distinct old value 0..N-1.
				seen := map[uint64]bool{}
				for _, src := range srcs {
					for _, v := range src.Regs {
						if seen[v] {
							t.Fatalf("duplicate RMW ticket %d — atomicity violated", v)
						}
						seen[v] = true
					}
				}
				if len(seen) != 2*cores*incs {
					t.Fatalf("saw %d distinct tickets, want %d", len(seen), 2*cores*incs)
				}
			})
		}
	}
}

func TestDisjointLinesIntegrity(t *testing.T) {
	// Each core writes a private region through the shared memory, then
	// reads it back; all values must round-trip.
	for _, global := range []string{"cxl", "hmesi"} {
		t.Run(global, func(t *testing.T) {
			const cores, lines = 2, 24
			s, err := New(twoClusters("mesi", "moesi", global, cores, 3))
			if err != nil {
				t.Fatal(err)
			}
			var srcs []*cpu.SliceSource
			id := 0
			for cl := 0; cl < 2; cl++ {
				for i := 0; i < cores; i++ {
					base := 0x100 * (id + 1)
					var prog []cpu.Instr
					for n := 0; n < lines; n++ {
						prog = append(prog, cpu.Instr{Kind: cpu.Store, Addr: addr(base + n), Val: uint64(id*1000 + n)})
					}
					prog = append(prog, cpu.Instr{Kind: cpu.Fence})
					for n := 0; n < lines; n++ {
						prog = append(prog, cpu.Instr{Kind: cpu.Load, Addr: addr(base + n), Reg: n})
					}
					src := cpu.NewSliceSource(prog)
					srcs = append(srcs, src)
					s.AttachSource(cl, i, src)
					id++
				}
			}
			mustRun(t, s)
			for id, src := range srcs {
				for n := 0; n < lines; n++ {
					if src.Regs[n] != uint64(id*1000+n) {
						t.Fatalf("core %d line %d read %d, want %d", id, n, src.Regs[n], id*1000+n)
					}
				}
			}
		})
	}
}

func TestReadSharingAcrossClusters(t *testing.T) {
	// One writer publishes; readers in both clusters (one slot left for
	// the writer) spin until each observes the value — read sharing via
	// BISnpData and peer forwards.
	s, err := New(twoClusters("mesi", "mesif", "cxl", 2, 11))
	if err != nil {
		t.Fatal(err)
	}
	w := cpu.NewSliceSource([]cpu.Instr{
		{Kind: cpu.Store, Addr: addr(0), Val: 1},
	})
	s.AttachSource(0, 0, w)
	okCount := 0
	mkReader := func() *cpu.FuncSource {
		done := false
		return &cpu.FuncSource{
			NextFn: func() (cpu.Instr, bool) {
				if done {
					return cpu.Instr{}, false
				}
				return cpu.Instr{Kind: cpu.Load, Addr: addr(0), Reg: 0, CtrlDep: true}, true
			},
			CompleteFn: func(in cpu.Instr, v uint64) {
				if in.Kind == cpu.Load && v == 1 && !done {
					done = true
					okCount++
				}
			},
		}
	}
	s.AttachSource(0, 1, mkReader())
	s.AttachSource(1, 0, mkReader())
	s.AttachSource(1, 1, mkReader())
	mustRun(t, s)
	if okCount != 3 {
		t.Fatalf("%d readers observed the write, want 3", okCount)
	}
}

func TestLLCEvictionPressure(t *testing.T) {
	// A tiny CXL cache forces Fig. 7 cross-domain evictions constantly;
	// data must still round-trip.
	for _, global := range []string{"cxl", "hmesi"} {
		t.Run(global, func(t *testing.T) {
			cfg := twoClusters("mesi", "mesi", global, 1, 5)
			cfg.LLCSize = 2 * 1024 // 32 lines
			cfg.LLCWays = 2
			s, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			const lines = 200
			var prog []cpu.Instr
			for n := 0; n < lines; n++ {
				prog = append(prog, cpu.Instr{Kind: cpu.Store, Addr: addr(n), Val: uint64(n + 1)})
			}
			prog = append(prog, cpu.Instr{Kind: cpu.Fence})
			for n := 0; n < lines; n++ {
				prog = append(prog, cpu.Instr{Kind: cpu.Load, Addr: addr(n), Reg: n})
			}
			src := cpu.NewSliceSource(prog)
			s.AttachSource(0, 0, src)
			mustRun(t, s)
			for n := 0; n < lines; n++ {
				if src.Regs[n] != uint64(n+1) {
					t.Fatalf("line %d read %d, want %d", n, src.Regs[n], n+1)
				}
			}
			if s.Clusters[0].C3.Stats.Evictions == 0 {
				t.Fatal("expected CXL-cache evictions under pressure")
			}
		})
	}
}

func TestRCCProducerConsumer(t *testing.T) {
	// RCC producer writes data then release-stores a flag; MESI consumer
	// spins on the flag, then must see the data (Fig. 8 flow).
	s, err := New(Config{Global: "cxl", Seed: 9, Clusters: []ClusterConfig{
		{Protocol: "rcc", MCM: cpu.WMO, Cores: 1},
		{Protocol: "mesi", MCM: cpu.TSO, Cores: 1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	prod := cpu.NewSliceSource([]cpu.Instr{
		{Kind: cpu.Store, Addr: addr(0), Val: 41},
		{Kind: cpu.Store, Addr: addr(1), Val: 42},
		{Kind: cpu.Store, Addr: addr(2), Val: 1, Rel: true}, // release flag
	})
	var d0, d1 uint64
	stage := 0
	cons := &cpu.FuncSource{
		NextFn: func() (cpu.Instr, bool) {
			switch stage {
			case 0:
				return cpu.Instr{Kind: cpu.Load, Addr: addr(2), Reg: 0, Acq: true, CtrlDep: true}, true
			case 1:
				return cpu.Instr{Kind: cpu.Load, Addr: addr(0), Reg: 1}, true
			case 2:
				return cpu.Instr{Kind: cpu.Load, Addr: addr(1), Reg: 2}, true
			}
			return cpu.Instr{}, false
		},
		CompleteFn: func(in cpu.Instr, v uint64) {
			switch {
			case stage == 0 && in.Reg == 0 && v == 1:
				stage = 1
			case stage == 1 && in.Reg == 1:
				d0 = v
				stage = 2
			case stage == 2 && in.Reg == 2:
				d1 = v
				stage = 3
			}
		},
	}
	s.AttachSource(0, 0, prod)
	s.AttachSource(1, 0, cons)
	mustRun(t, s)
	if d0 != 41 || d1 != 42 {
		t.Fatalf("consumer read %d/%d, want 41/42 (release visibility broken)", d0, d1)
	}
}

func TestRCCAtomics(t *testing.T) {
	// RCC atomics execute at the C3 CXL cache; tickets must be unique
	// across an RCC and a MESI cluster.
	s, err := New(Config{Global: "cxl", Seed: 13, Clusters: []ClusterConfig{
		{Protocol: "rcc", MCM: cpu.WMO, Cores: 2},
		{Protocol: "mesi", MCM: cpu.WMO, Cores: 2},
	}})
	if err != nil {
		t.Fatal(err)
	}
	const incs = 10
	var srcs []*cpu.SliceSource
	for cl := 0; cl < 2; cl++ {
		for i := 0; i < 2; i++ {
			var prog []cpu.Instr
			for n := 0; n < incs; n++ {
				prog = append(prog, cpu.Instr{Kind: cpu.RMWAdd, Addr: addr(0), Val: 1, Reg: n})
			}
			src := cpu.NewSliceSource(prog)
			srcs = append(srcs, src)
			s.AttachSource(cl, i, src)
		}
	}
	mustRun(t, s)
	seen := map[uint64]bool{}
	for _, src := range srcs {
		for _, v := range src.Regs {
			if seen[v] {
				t.Fatalf("duplicate ticket %d", v)
			}
			seen[v] = true
		}
	}
	if len(seen) != 4*incs {
		t.Fatalf("got %d tickets, want %d", len(seen), 4*incs)
	}
}

func TestProtoString(t *testing.T) {
	s, err := New(twoClusters("mesi", "moesi", "cxl", 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if s.Proto() != "MESI-CXL-MOESI" {
		t.Fatalf("Proto() = %q", s.Proto())
	}
	s2, _ := New(twoClusters("mesi", "mesi", "hmesi", 1, 1))
	if s2.Proto() != "MESI-MESI-MESI" {
		t.Fatalf("Proto() = %q", s2.Proto())
	}
}

func TestBadConfigs(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config should fail")
	}
	if _, err := New(Config{Global: "bogus", Clusters: []ClusterConfig{{Protocol: "mesi", Cores: 1}}}); err == nil {
		t.Error("bad global should fail")
	}
	if _, err := New(Config{Global: "cxl", Clusters: []ClusterConfig{{Protocol: "bogus", Cores: 1}}}); err == nil {
		t.Error("bad local should fail")
	}
}

func TestHybridLocalLinesBypassGlobalProtocol(t *testing.T) {
	// With a local range configured, lines in it must produce zero
	// global-directory traffic and still round-trip data correctly.
	boundary := mem.Addr(0x100000)
	cfg := Config{
		Global: "cxl",
		Seed:   2,
		Clusters: []ClusterConfig{
			{Protocol: "mesi", MCM: cpu.WMO, Cores: 1,
				LocalRange: func(a mem.LineAddr) bool { return a.Addr() < boundary }},
			{Protocol: "mesi", MCM: cpu.WMO, Cores: 1},
		},
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var prog []cpu.Instr
	for i := 0; i < 16; i++ {
		prog = append(prog, cpu.Instr{Kind: cpu.Store, Addr: mem.Addr(0x8000 + i*64), Val: uint64(i + 1)})
	}
	prog = append(prog, cpu.Instr{Kind: cpu.Fence})
	for i := 0; i < 16; i++ {
		prog = append(prog, cpu.Instr{Kind: cpu.Load, Addr: mem.Addr(0x8000 + i*64), Reg: i})
	}
	src := cpu.NewSliceSource(prog)
	s.AttachSource(0, 0, src)
	s.AttachSource(1, 0, cpu.NewSliceSource(nil))
	mustRun(t, s)
	for i := 0; i < 16; i++ {
		if src.Regs[i] != uint64(i+1) {
			t.Fatalf("local line %d read %d", i, src.Regs[i])
		}
	}
	c3 := s.Clusters[0].C3
	if c3.Stats.Delegations != 0 {
		t.Fatalf("local lines delegated %d global flows", c3.Stats.Delegations)
	}
	if c3.Stats.LocalMemReads == 0 {
		t.Fatal("local memory never read")
	}
	if s.DCOH.Stats.Reads != 0 {
		t.Fatalf("DCOH saw %d reads for local-only traffic", s.DCOH.Stats.Reads)
	}
	if s.LocalMems[0] == nil || s.LocalMems[1] != nil {
		t.Fatal("local memory allocation wrong")
	}
}

func TestHybridEvictionWritesLocalMemory(t *testing.T) {
	boundary := mem.Addr(0x100000)
	cfg := Config{
		Global: "cxl", Seed: 3,
		LLCSize: 2 * 1024, LLCWays: 2, // tiny: force evictions
		Clusters: []ClusterConfig{
			{Protocol: "mesi", MCM: cpu.WMO, Cores: 1,
				LocalRange: func(a mem.LineAddr) bool { return a.Addr() < boundary }},
			{Protocol: "mesi", MCM: cpu.WMO, Cores: 1},
		},
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const lines = 120
	var prog []cpu.Instr
	for i := 0; i < lines; i++ {
		prog = append(prog, cpu.Instr{Kind: cpu.Store, Addr: mem.Addr(0x8000 + i*64), Val: uint64(i + 1)})
	}
	prog = append(prog, cpu.Instr{Kind: cpu.Fence})
	for i := 0; i < lines; i++ {
		prog = append(prog, cpu.Instr{Kind: cpu.Load, Addr: mem.Addr(0x8000 + i*64), Reg: i})
	}
	src := cpu.NewSliceSource(prog)
	s.AttachSource(0, 0, src)
	s.AttachSource(1, 0, cpu.NewSliceSource(nil))
	mustRun(t, s)
	for i := 0; i < lines; i++ {
		if src.Regs[i] != uint64(i+1) {
			t.Fatalf("line %d read %d after eviction round trip", i, src.Regs[i])
		}
	}
	c3 := s.Clusters[0].C3
	if c3.Stats.LocalMemWrites == 0 {
		t.Fatal("no local writebacks despite eviction pressure")
	}
	if s.DCOH.Stats.Writes != 0 {
		t.Fatal("local dirty lines written to the CXL pool")
	}
}

func TestThreeClusterCoherence(t *testing.T) {
	// CXL 3.0 multi-headed devices serve more than two hosts; three
	// heterogeneous clusters must still serialize a shared counter.
	s, err := New(Config{
		Global: "cxl", Seed: 21,
		Clusters: []ClusterConfig{
			{Protocol: "mesi", MCM: cpu.TSO, Cores: 1},
			{Protocol: "moesi", MCM: cpu.WMO, Cores: 1},
			{Protocol: "mesif", MCM: cpu.WMO, Cores: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	const incs = 15
	var srcs []*cpu.SliceSource
	for cl := 0; cl < 3; cl++ {
		var prog []cpu.Instr
		for n := 0; n < incs; n++ {
			prog = append(prog, cpu.Instr{Kind: cpu.RMWAdd, Addr: addr(0), Val: 1, Reg: n})
		}
		src := cpu.NewSliceSource(prog)
		srcs = append(srcs, src)
		s.AttachSource(cl, 0, src)
	}
	mustRun(t, s)
	seen := map[uint64]bool{}
	for _, src := range srcs {
		for _, v := range src.Regs {
			if seen[v] {
				t.Fatalf("duplicate ticket %d across three hosts", v)
			}
			seen[v] = true
		}
	}
	if len(seen) != 3*incs {
		t.Fatalf("tickets %d, want %d", len(seen), 3*incs)
	}
}

func TestFourClusterIRIW(t *testing.T) {
	// True multi-host IRIW: two writer hosts, two reader hosts, each on
	// its own cluster. With acquire loads the readers must agree on the
	// write order (multi-copy atomicity across four CXL hosts).
	for seed := int64(0); seed < 25; seed++ {
		s, err := New(Config{
			Global: "cxl", Seed: seed,
			Clusters: []ClusterConfig{
				{Protocol: "mesi", MCM: cpu.WMO, Cores: 1},
				{Protocol: "moesi", MCM: cpu.WMO, Cores: 1},
				{Protocol: "mesi", MCM: cpu.WMO, Cores: 1},
				{Protocol: "mesif", MCM: cpu.WMO, Cores: 1},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		x, y := addr(0), addr(1)
		s.AttachSource(0, 0, cpu.NewSliceSource([]cpu.Instr{{Kind: cpu.Store, Addr: x, Val: 1}}))
		s.AttachSource(1, 0, cpu.NewSliceSource([]cpu.Instr{{Kind: cpu.Store, Addr: y, Val: 1}}))
		r1 := cpu.NewSliceSource([]cpu.Instr{
			{Kind: cpu.Load, Addr: x, Reg: 0, Acq: true},
			{Kind: cpu.Load, Addr: y, Reg: 1},
		})
		r2 := cpu.NewSliceSource([]cpu.Instr{
			{Kind: cpu.Load, Addr: y, Reg: 0, Acq: true},
			{Kind: cpu.Load, Addr: x, Reg: 1},
		})
		s.AttachSource(2, 0, r1)
		s.AttachSource(3, 0, r2)
		mustRun(t, s)
		if r1.Regs[0] == 1 && r1.Regs[1] == 0 && r2.Regs[0] == 1 && r2.Regs[1] == 0 {
			t.Fatalf("seed %d: IRIW forbidden outcome across four hosts", seed)
		}
	}
}
