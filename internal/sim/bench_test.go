package sim

import "testing"

// BenchmarkKernelSchedule pins the freelist's steady state: after warmup,
// a schedule+fire round trip must not allocate (the event comes from the
// freelist and the static callback carries no captures). CI runs this at
// -benchtime=1x as a smoke test; run with -benchmem to see allocs/op.
func BenchmarkKernelSchedule(b *testing.B) {
	var k Kernel
	fn := func() {}
	// Warm the freelist and the heap's backing array.
	for i := 0; i < 64; i++ {
		k.Schedule(Time(i), fn)
	}
	k.RunLimit(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Schedule(k.Now()+1, fn)
		k.Step()
	}
}

// BenchmarkKernelChurn exercises the cancel/reschedule pattern the
// network and watchdog produce: a standing population of events with a
// rotating cancel + re-schedule, firing every few rounds. Steady state
// must stay at 0 allocs/op.
func BenchmarkKernelChurn(b *testing.B) {
	var k Kernel
	fn := func() {}
	var hs [64]Handle
	for i := range hs {
		hs[i] = k.Schedule(Time(i+1), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % 64
		k.Cancel(hs[j])
		hs[j] = k.Schedule(k.Now()+Time(j)+1, fn)
		if i%4 == 3 {
			k.Step()
		}
	}
}

// BenchmarkKernelScheduleArg measures the closure-free scheduling variant
// used by the network delivery hot path.
func BenchmarkKernelScheduleArg(b *testing.B) {
	var k Kernel
	fn := func(any) {}
	arg := new(int)
	for i := 0; i < 64; i++ {
		k.ScheduleArg(Time(i), fn, arg)
	}
	k.RunLimit(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.ScheduleArg(k.Now()+1, fn, arg)
		k.Step()
	}
}
