package sim

import (
	"math/rand/v2"
	"sort"
	"testing"
)

func TestKernelZeroValueUsable(t *testing.T) {
	var k Kernel
	if k.Now() != 0 {
		t.Fatalf("Now() = %d, want 0", k.Now())
	}
	if k.Step() {
		t.Fatal("Step on empty kernel should report false")
	}
}

func TestScheduleOrdering(t *testing.T) {
	var k Kernel
	var got []int
	k.Schedule(30, func() { got = append(got, 3) })
	k.Schedule(10, func() { got = append(got, 1) })
	k.Schedule(20, func() { got = append(got, 2) })
	k.Run(nil)
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got order %v, want %v", got, want)
		}
	}
	if k.Now() != 30 {
		t.Fatalf("Now() = %d, want 30", k.Now())
	}
}

func TestEqualTimeFIFO(t *testing.T) {
	var k Kernel
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		k.Schedule(5, func() { got = append(got, i) })
	}
	k.Run(nil)
	if !sort.IntsAreSorted(got) {
		t.Fatalf("equal-time events ran out of schedule order: %v", got)
	}
}

func TestAfterUsesCurrentTime(t *testing.T) {
	var k Kernel
	var fired Time
	k.Schedule(10, func() {
		k.After(5, func() { fired = k.Now() })
	})
	k.Run(nil)
	if fired != 15 {
		t.Fatalf("nested After fired at %d, want 15", fired)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	var k Kernel
	k.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past should panic")
			}
		}()
		k.Schedule(5, func() {})
	})
	k.Run(nil)
}

func TestCancel(t *testing.T) {
	var k Kernel
	fired := false
	e := k.Schedule(10, func() { fired = true })
	k.Cancel(e)
	k.Cancel(e) // double-cancel is a no-op
	k.Run(nil)
	if fired {
		t.Fatal("cancelled event fired")
	}
	if k.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", k.Pending())
	}
}

func TestCancelAfterFire(t *testing.T) {
	var k Kernel
	fired := 0
	e := k.Schedule(10, func() { fired++ })
	k.Schedule(20, func() {})
	if !k.Step() {
		t.Fatal("Step should fire the first event")
	}
	// The event already ran; cancelling its handle must neither panic nor
	// disturb the remaining queue.
	k.Cancel(e)
	k.Cancel(e)
	k.Run(nil)
	if fired != 1 {
		t.Fatalf("event fired %d times, want 1", fired)
	}
	if k.Now() != 20 {
		t.Fatalf("Now() = %d, want 20 (second event must survive)", k.Now())
	}
}

func TestCancelHeadOfHeap(t *testing.T) {
	var k Kernel
	var got []int
	head := k.Schedule(1, func() { got = append(got, 1) })
	k.Schedule(2, func() { got = append(got, 2) })
	k.Schedule(3, func() { got = append(got, 3) })
	k.Cancel(head)
	if k.Pending() != 2 {
		t.Fatalf("Pending() = %d, want 2", k.Pending())
	}
	k.Run(nil)
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("got %v, want [2 3]", got)
	}
	if k.Now() != 3 {
		t.Fatalf("Now() = %d, want 3", k.Now())
	}
}

func TestCancelMiddleOfHeap(t *testing.T) {
	var k Kernel
	var got []int
	var evs []Handle
	for i := 0; i < 10; i++ {
		i := i
		evs = append(evs, k.Schedule(Time(i+1), func() { got = append(got, i) }))
	}
	k.Cancel(evs[4])
	k.Cancel(evs[7])
	k.Run(nil)
	if len(got) != 8 {
		t.Fatalf("got %d events, want 8", len(got))
	}
	for _, v := range got {
		if v == 4 || v == 7 {
			t.Fatalf("cancelled event %d fired", v)
		}
	}
}

func TestRunUntil(t *testing.T) {
	var k Kernel
	n := 0
	for i := 1; i <= 10; i++ {
		k.Schedule(Time(i), func() { n++ })
	}
	k.Run(func() bool { return n >= 5 })
	if n != 5 {
		t.Fatalf("processed %d events, want 5", n)
	}
	if k.Pending() != 5 {
		t.Fatalf("Pending() = %d, want 5", k.Pending())
	}
}

func TestRunLimit(t *testing.T) {
	var k Kernel
	for i := 1; i <= 10; i++ {
		k.Schedule(Time(i), func() {})
	}
	if k.RunLimit(3) {
		t.Fatal("RunLimit(3) should not drain 10 events")
	}
	if !k.RunLimit(0) {
		t.Fatal("RunLimit(0) should drain the queue")
	}
}

func TestRandomizedOrdering(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 0))
	var k Kernel
	var got []Time
	for i := 0; i < 1000; i++ {
		t := Time(rng.IntN(500))
		k.Schedule(t, func() { got = append(got, t) })
	}
	k.Run(nil)
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("events out of time order at %d: %d after %d", i, got[i], got[i-1])
		}
	}
}

func TestNS(t *testing.T) {
	if NS(70) != 140 {
		t.Fatalf("NS(70) = %d, want 140 cycles at 2 GHz", NS(70))
	}
}

// TestStaleHandleAfterRecycle: once an event fires, its storage may be
// recycled for a later schedule; cancelling through the stale handle must
// not disturb the new event (the generation counter's whole job).
func TestStaleHandleAfterRecycle(t *testing.T) {
	var k Kernel
	firedA, firedB := false, false
	hA := k.Schedule(10, func() { firedA = true })
	if !k.Step() {
		t.Fatal("Step should fire A")
	}
	// B reuses A's freelisted event struct.
	hB := k.Schedule(20, func() { firedB = true })
	k.Cancel(hA) // stale: must be a no-op
	k.Run(nil)
	if !firedA || !firedB {
		t.Fatalf("firedA=%v firedB=%v, want both (stale cancel hit B?)", firedA, firedB)
	}
	if k.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", k.Pending())
	}
	_ = hB
}

// TestStaleHandleAfterCancelReuse: same as above but the slot is freed by
// Cancel rather than by firing.
func TestStaleHandleAfterCancelReuse(t *testing.T) {
	var k Kernel
	hA := k.Schedule(10, func() {})
	k.Cancel(hA)
	firedB := false
	k.Schedule(20, func() { firedB = true })
	k.Cancel(hA) // stale again
	k.Run(nil)
	if !firedB {
		t.Fatal("stale double-cancel killed the reused event")
	}
}

func TestCancelZeroHandle(t *testing.T) {
	var k Kernel
	k.Cancel(Handle{}) // must not panic
	if (Handle{}).Valid() {
		t.Fatal("zero Handle should not be Valid")
	}
	h := k.Schedule(1, func() {})
	if !h.Valid() {
		t.Fatal("scheduled Handle should be Valid")
	}
	k.Run(nil)
}

func TestScheduleArg(t *testing.T) {
	var k Kernel
	var got []int
	fn := func(a any) { got = append(got, *a.(*int)) }
	vals := []int{3, 1, 2}
	k.ScheduleArg(30, fn, &vals[0])
	k.ScheduleArg(10, fn, &vals[1])
	h := k.ScheduleArg(20, fn, &vals[2])
	k.Cancel(h)
	k.Run(nil)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("got %v, want [1 3]", got)
	}
}

func BenchmarkKernelScheduleStep(b *testing.B) {
	var k Kernel
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k.Schedule(k.Now()+Time(i%64), func() {})
		k.Step()
	}
}
