// Package sim provides the discrete-event simulation kernel used by every
// timed component in the C3 simulator: a deterministic event queue ordered
// by (time, sequence) and a simulated clock measured in core cycles.
//
// The kernel is single-threaded by design. Determinism matters twice over
// here: performance runs must be reproducible for the benchmark harness,
// and the litmus runner perturbs timing only through explicit, seeded
// jitter injected at the network layer (never through map iteration or
// scheduling races). Run-level parallelism (internal/parallel) gives each
// concurrent run its own Kernel, so nothing here needs locks.
//
// The hot path is allocation-free in steady state: fired and cancelled
// events are recycled through a per-kernel freelist, and the binary heap
// is sifted directly on []*event (no container/heap interface boxing).
// Components that schedule at high rate can avoid the per-call closure
// too, via ScheduleArg (see internal/network's delivery path).
package sim

// Time is a simulation timestamp in cycles of the global clock.
// With the paper's 2 GHz cores, 1 cycle = 0.5 ns.
type Time uint64

// CyclesPerNS converts between the paper's nanosecond figures and cycles.
const CyclesPerNS = 2

// NS returns the Time corresponding to n nanoseconds.
func NS(n uint64) Time { return Time(n * CyclesPerNS) }

// event is a scheduled callback. Exactly one of fn/afn is set; afn runs
// with arg (the closure-free variant used by hot senders). Events are
// owned by the kernel and recycled after they fire or are cancelled; the
// generation counter keeps stale Handles harmless.
type event struct {
	when Time
	fn   func()
	afn  func(any)
	arg  any

	seq   uint64 // tie-break so equal-time events run in schedule order
	gen   uint32 // bumped on recycle; Handles with an older gen are stale
	index int32  // heap bookkeeping; -1 when not queued
}

// Handle identifies a scheduled event for Cancel. The zero Handle is
// valid and cancels as a no-op, as does any Handle whose event already
// fired, was cancelled, or was recycled for a later schedule.
type Handle struct {
	e   *event
	gen uint32
}

// Valid reports whether the handle was obtained from Schedule/After (it
// does not imply the event is still pending).
func (h Handle) Valid() bool { return h.e != nil }

type eventHeap []*event

func (h eventHeap) less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = int32(i)
	h[j].index = int32(j)
}

func (h eventHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h eventHeap) down(i int) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && h.less(r, l) {
			m = r
		}
		if !h.less(m, i) {
			break
		}
		h.swap(i, m)
		i = m
	}
}

func (h *eventHeap) push(e *event) {
	e.index = int32(len(*h))
	*h = append(*h, e)
	h.up(len(*h) - 1)
}

// popMin removes and returns the earliest event.
func (h *eventHeap) popMin() *event {
	old := *h
	e := old[0]
	n := len(old) - 1
	old.swap(0, n)
	old[n] = nil
	*h = old[:n]
	if n > 0 {
		(*h).down(0)
	}
	e.index = -1
	return e
}

// remove deletes the event at heap position i.
func (h *eventHeap) remove(i int) {
	old := *h
	n := len(old) - 1
	e := old[i]
	if i != n {
		old.swap(i, n)
	}
	old[n] = nil
	*h = old[:n]
	if i < n {
		(*h).down(i)
		(*h).up(i)
	}
	e.index = -1
}

// Kernel is the event loop. The zero value is ready to use.
type Kernel struct {
	now    Time
	nextSq uint64
	events eventHeap
	free   []*event
	// Stepped counts processed events; useful as a progress/limit guard.
	Stepped uint64
}

// Now reports the current simulation time.
func (k *Kernel) Now() Time { return k.now }

// Clone returns a new kernel at the same simulated time and schedule
// sequence. Only a quiescent kernel (no pending events) can be cloned:
// queued events hold closures over the original component graph and
// cannot be rebound, so the model checker snapshots states only at
// quiescent points where the queue has drained.
func (k *Kernel) Clone() *Kernel {
	if len(k.events) != 0 {
		panic("sim: Clone of kernel with pending events")
	}
	return &Kernel{now: k.now, nextSq: k.nextSq, Stepped: k.Stepped}
}

// Pending reports how many events are queued.
func (k *Kernel) Pending() int { return len(k.events) }

// alloc takes an event from the freelist, or makes one.
func (k *Kernel) alloc(t Time) *event {
	if t < k.now {
		panic("sim: scheduling event in the past")
	}
	var e *event
	if n := len(k.free); n > 0 {
		e = k.free[n-1]
		k.free[n-1] = nil
		k.free = k.free[:n-1]
	} else {
		e = &event{}
	}
	e.when = t
	e.seq = k.nextSq
	k.nextSq++
	return e
}

// recycle returns a fired or cancelled event to the freelist. The
// generation bump invalidates every outstanding Handle to it.
func (k *Kernel) recycle(e *event) {
	e.gen++
	e.fn, e.afn, e.arg = nil, nil, nil
	k.free = append(k.free, e)
}

// Schedule queues fn to run at absolute time t. Scheduling in the past is
// a programming error and panics (it would silently reorder causality).
func (k *Kernel) Schedule(t Time, fn func()) Handle {
	e := k.alloc(t)
	e.fn = fn
	k.events.push(e)
	return Handle{e: e, gen: e.gen}
}

// ScheduleArg is Schedule without the per-call closure: fn is typically a
// long-lived method value shared across many events, and arg carries the
// per-event state (a pointer, so boxing it into any does not allocate).
// The network delivery path uses it to stay allocation-free in steady
// state.
func (k *Kernel) ScheduleArg(t Time, fn func(any), arg any) Handle {
	e := k.alloc(t)
	e.afn = fn
	e.arg = arg
	k.events.push(e)
	return Handle{e: e, gen: e.gen}
}

// After queues fn to run d cycles from now.
func (k *Kernel) After(d Time, fn func()) Handle {
	return k.Schedule(k.now+d, fn)
}

// Cancel removes a queued event. Cancelling an already-fired, cancelled,
// or zero handle is a no-op — the generation counter makes stale handles
// safe even though the underlying event may have been recycled for an
// unrelated schedule.
func (k *Kernel) Cancel(h Handle) {
	e := h.e
	if e == nil || e.gen != h.gen || e.index < 0 {
		return
	}
	k.events.remove(int(e.index))
	k.recycle(e)
}

// Step runs the next event. It reports false when the queue is empty.
func (k *Kernel) Step() bool {
	if len(k.events) == 0 {
		return false
	}
	e := k.events.popMin()
	k.now = e.when
	k.Stepped++
	fn, afn, arg := e.fn, e.afn, e.arg
	// Recycle before running the callback so that events it schedules
	// reuse this slot immediately (and its own Handle goes stale first).
	k.recycle(e)
	if afn != nil {
		afn(arg)
	} else {
		fn()
	}
	return true
}

// Run processes events until the queue drains or until(), when non-nil,
// returns true. It returns the number of events processed.
func (k *Kernel) Run(until func() bool) uint64 {
	start := k.Stepped
	for len(k.events) > 0 {
		if until != nil && until() {
			break
		}
		k.Step()
	}
	return k.Stepped - start
}

// RunLimit processes at most limit events; it reports whether the queue
// drained. A zero limit means no limit.
func (k *Kernel) RunLimit(limit uint64) bool {
	for n := uint64(0); len(k.events) > 0; n++ {
		if limit != 0 && n >= limit {
			return false
		}
		k.Step()
	}
	return true
}
