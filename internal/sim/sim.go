// Package sim provides the discrete-event simulation kernel used by every
// timed component in the C3 simulator: a deterministic event queue ordered
// by (time, sequence) and a simulated clock measured in core cycles.
//
// The kernel is single-threaded by design. Determinism matters twice over
// here: performance runs must be reproducible for the benchmark harness,
// and the litmus runner perturbs timing only through explicit, seeded
// jitter injected at the network layer (never through map iteration or
// scheduling races).
package sim

import "container/heap"

// Time is a simulation timestamp in cycles of the global clock.
// With the paper's 2 GHz cores, 1 cycle = 0.5 ns.
type Time uint64

// CyclesPerNS converts between the paper's nanosecond figures and cycles.
const CyclesPerNS = 2

// NS returns the Time corresponding to n nanoseconds.
func NS(n uint64) Time { return Time(n * CyclesPerNS) }

// Event is a scheduled callback. Fn runs exactly once at When.
type Event struct {
	When Time
	Fn   func()

	seq   uint64 // tie-break so equal-time events run in schedule order
	index int    // heap bookkeeping; -1 when not queued
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].When != h[j].When {
		return h[i].When < h[j].When
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Kernel is the event loop. The zero value is ready to use.
type Kernel struct {
	now    Time
	nextSq uint64
	events eventHeap
	// Stepped counts processed events; useful as a progress/limit guard.
	Stepped uint64
}

// Now reports the current simulation time.
func (k *Kernel) Now() Time { return k.now }

// Pending reports how many events are queued.
func (k *Kernel) Pending() int { return len(k.events) }

// Schedule queues fn to run at absolute time t. Scheduling in the past is
// a programming error and panics (it would silently reorder causality).
func (k *Kernel) Schedule(t Time, fn func()) *Event {
	if t < k.now {
		panic("sim: scheduling event in the past")
	}
	e := &Event{When: t, Fn: fn, seq: k.nextSq}
	k.nextSq++
	heap.Push(&k.events, e)
	return e
}

// After queues fn to run d cycles from now.
func (k *Kernel) After(d Time, fn func()) *Event {
	return k.Schedule(k.now+d, fn)
}

// Cancel removes a queued event. Cancelling an already-fired or cancelled
// event is a no-op.
func (k *Kernel) Cancel(e *Event) {
	if e == nil || e.index < 0 || e.index >= len(k.events) || k.events[e.index] != e {
		return
	}
	heap.Remove(&k.events, e.index)
}

// Step runs the next event. It reports false when the queue is empty.
func (k *Kernel) Step() bool {
	if len(k.events) == 0 {
		return false
	}
	e := heap.Pop(&k.events).(*Event)
	k.now = e.When
	k.Stepped++
	e.Fn()
	return true
}

// Run processes events until the queue drains or until(), when non-nil,
// returns true. It returns the number of events processed.
func (k *Kernel) Run(until func() bool) uint64 {
	start := k.Stepped
	for len(k.events) > 0 {
		if until != nil && until() {
			break
		}
		k.Step()
	}
	return k.Stepped - start
}

// RunLimit processes at most limit events; it reports whether the queue
// drained. A zero limit means no limit.
func (k *Kernel) RunLimit(limit uint64) bool {
	for n := uint64(0); len(k.events) > 0; n++ {
		if limit != 0 && n >= limit {
			return false
		}
		k.Step()
	}
	return true
}
