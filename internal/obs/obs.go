// Package obs is the run-level observability layer for the long-running
// commands (c3soak, c3check, c3bench): live introspection of a sweep in
// flight and a durable record of every invocation.
//
// It adds three facilities on top of internal/trace (which observes one
// simulated system from the inside):
//
//   - Tracker: a concurrency-safe progress model of a sweep — total and
//     completed item counts, in-flight item labels, failure count, ETA.
//     It implements parallel.Observer, so the worker pool feeds it
//     directly, and it is the data source for both the statusz server
//     and the stderr heartbeat.
//
//   - Server: an opt-in HTTP endpoint (-statusz :port) serving a JSON
//     snapshot of the run (/statusz), the aggregate metrics registry
//     (/metricsz), net/http/pprof, and expvar. Everything the server
//     reads while the run executes must be concurrency-safe (Tracker is;
//     registries served live must read atomics, not raw simulator
//     counters).
//
//   - Ledger: an append-only JSONL manifest, one record per invocation —
//     spec, seeds, workers, code version, wall time, final metrics dump,
//     verdict — so sweeps become replayable, diffable artifacts. The
//     record's (spec, seeds, version) triple is the key format the
//     planned campaign service's content-addressed result cache will
//     use.
//
// Nothing in this package runs on a simulator hot path: the Tracker is
// touched once per campaign, the server only on demand, the ledger once
// per process.
package obs

import (
	"runtime"
	"runtime/debug"
)

// VersionInfo identifies the code that produced a run, read from the
// binary's embedded build info (debug/buildinfo). VCS fields are empty
// when the binary was built outside a checkout (e.g. `go run` of a
// non-VCS tree or test binaries).
type VersionInfo struct {
	// Go is the toolchain version ("go1.22.x").
	Go string `json:"go"`
	// Module is the main module's version ("(devel)" for builds from a
	// working tree).
	Module string `json:"module,omitempty"`
	// Revision is the VCS commit hash, when stamped.
	Revision string `json:"revision,omitempty"`
	// Dirty reports uncommitted changes in the build's working tree.
	Dirty bool `json:"dirty,omitempty"`
}

// Version reads the running binary's build identity.
func Version() VersionInfo {
	v := VersionInfo{Go: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return v
	}
	if bi.Main.Version != "" {
		v.Module = bi.Main.Version
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			v.Revision = s.Value
		case "vcs.modified":
			v.Dirty = s.Value == "true"
		}
	}
	return v
}
