package obs

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// LedgerSchema versions the record format; bump on incompatible change.
const LedgerSchema = "c3-run/v1"

// Verdicts a record can carry. Tools map their exit conditions onto
// these so ledgers from different commands diff uniformly.
const (
	VerdictPass        = "pass"        // the run's contract held
	VerdictFail        = "fail"        // contract violated (soak FAIL, bench regression)
	VerdictViolation   = "violation"   // checker found a counterexample
	VerdictTimeout     = "timeout"     // sweep hit its wall-clock bound
	VerdictError       = "error"       // infrastructure/usage failure
	VerdictInterrupted = "interrupted" // graceful shutdown; partial results checkpointed
)

// Exit codes the long-running commands share, so scripts and CI can
// dispatch on them uniformly (see the README exit-code table).
const (
	ExitPass      = 0 // contract held
	ExitFail      = 1 // contract violated / violation found / timeout
	ExitUsage     = 2 // flag or configuration error
	ExitResumable = 3 // interrupted by SIGINT/SIGTERM; rerun with -resume
)

// Record is one invocation's ledger entry: enough to re-run the sweep
// exactly (spec + seeds + version) and to diff what it did (metrics +
// verdict + wall time). Records append as single JSON lines, so a ledger
// is greppable, jq-able, and mergeable by concatenation.
type Record struct {
	Schema string `json:"schema"`
	// Tool is the command name ("c3soak", "c3check", "c3bench").
	Tool string `json:"tool"`
	// Spec is the canonical run specification — the full flag rendering
	// a reader could paste after the tool name to reproduce the run.
	Spec string `json:"spec"`
	// Seeds lists the campaign base seeds, when the tool has them.
	Seeds []int64 `json:"seeds,omitempty"`
	// Workers is the resolved worker count (0 = GOMAXPROCS default).
	Workers int `json:"workers"`
	// Version identifies the code (go toolchain + VCS revision).
	Version VersionInfo `json:"version"`
	// Start / WallMS bound the run in wall-clock terms.
	Start  time.Time `json:"start"`
	WallMS int64     `json:"wall_ms"`
	// Verdict is one of the Verdict* constants; Exit the process's exit
	// status.
	Verdict string `json:"verdict"`
	Exit    int    `json:"exit"`
	// Metrics is the final aggregate registry dump (trace.Registry
	// RenderJSON), when the tool keeps one.
	Metrics json.RawMessage `json:"metrics,omitempty"`
	// Extra carries tool-specific results (soak row counts, checker
	// state counts, bench stats).
	Extra map[string]any `json:"extra,omitempty"`
	// RowKey marks a per-row checkpoint record: the content-addressed
	// (spec, seed, code-version) cache key of one completed sweep row,
	// appended as the row finishes so an interrupted sweep can resume by
	// skipping every key already present. Empty on whole-run records.
	RowKey string `json:"row_key,omitempty"`
	// Row is the tool-specific row payload a resume reloads verbatim
	// (c3soak stores the litmus.SoakRun). Set only with RowKey.
	Row json.RawMessage `json:"row,omitempty"`
}

// DefaultLedgerPath resolves where records go: $C3_LEDGER if set, else
// c3runs.jsonl in the working directory.
func DefaultLedgerPath() string {
	if p := os.Getenv("C3_LEDGER"); p != "" {
		return p
	}
	return "c3runs.jsonl"
}

// AppendLedger appends one record to the JSONL ledger at path, creating
// the file if needed. The write is a single O_APPEND write of one line,
// so concurrent appenders (a sharded sweep's workers, parallel CI jobs
// on a shared volume) interleave whole records, never partial ones.
func AppendLedger(path string, rec *Record) error {
	if rec.Schema == "" {
		rec.Schema = LedgerSchema
	}
	if rec.Start.IsZero() {
		rec.Start = time.Now()
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("obs: ledger marshal: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("obs: ledger open: %w", err)
	}
	if _, err := f.Write(append(line, '\n')); err != nil {
		f.Close()
		return fmt.Errorf("obs: ledger write: %w", err)
	}
	return f.Close()
}

// SpecFromFlags renders the command line's explicitly set flags as a
// canonical, pasteable spec string ("-tests=MP,SB -iters=50"), in
// lexicographic flag order with shell-unfriendly values quoted. Flags
// named in exclude are omitted — the observability knobs (-statusz,
// -heartbeat, -ledger) never change what a run computes, so two runs
// that differ only there must produce the same spec (the future result
// cache keys on it).
func SpecFromFlags(exclude ...string) string {
	return specFromSet(flag.CommandLine, exclude)
}

func specFromSet(fs *flag.FlagSet, exclude []string) string {
	skip := make(map[string]bool, len(exclude))
	for _, n := range exclude {
		skip[n] = true
	}
	var parts []string
	fs.Visit(func(f *flag.Flag) {
		if skip[f.Name] {
			return
		}
		v := f.Value.String()
		if strings.ContainsAny(v, " \t;\"'") {
			v = strconv.Quote(v)
		}
		parts = append(parts, "-"+f.Name+"="+v)
	})
	return strings.Join(parts, " ")
}

// ReadLedger parses every record in the JSONL ledger at path, failing
// on the first malformed line. Resume paths, which must survive a crash
// mid-append, use ReadLedgerLenient instead.
func ReadLedger(path string) ([]Record, error) {
	recs, _, err := readLedger(path, true)
	return recs, err
}

// LedgerStats summarizes a lenient ledger read, so callers (resume,
// coordinator journal replay) can report what the read dropped rather
// than silently acting on a subset.
type LedgerStats struct {
	// Records is how many intact records parsed.
	Records int
	// Skipped is how many torn/corrupt lines were dropped — normally 0,
	// or 1 after a SIGKILL mid-append. More than one final-line's worth
	// suggests real corruption, which callers should surface loudly.
	Skipped int
	// Warnings holds one human-readable line per skipped record.
	Warnings []string
}

// ReadLedgerLenient parses the ledger at path, skipping malformed lines
// instead of failing. A process killed mid-append (SIGKILL, power loss)
// leaves a torn final line — the O_APPEND whole-line write contract
// guarantees every *earlier* line is intact, so a resume can trust what
// parses and drop the tail. The returned stats carry the skipped-line
// count and a warning per skipped line; callers that resume or replay
// should print Skipped when it is non-zero.
func ReadLedgerLenient(path string) (recs []Record, stats LedgerStats, err error) {
	return readLedger(path, false)
}

func readLedger(path string, strict bool) ([]Record, LedgerStats, error) {
	var stats LedgerStats
	f, err := os.Open(path)
	if err != nil {
		return nil, stats, err
	}
	defer f.Close()
	var out []Record
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	for ln := 1; sc.Scan(); ln++ {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var r Record
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			if strict {
				return nil, stats, fmt.Errorf("obs: ledger %s line %d: %w", path, ln, err)
			}
			stats.Skipped++
			stats.Warnings = append(stats.Warnings,
				fmt.Sprintf("obs: ledger %s line %d: skipping torn/corrupt record: %v", path, ln, err))
			continue
		}
		out = append(out, r)
	}
	if err := sc.Err(); err != nil {
		return nil, stats, err
	}
	stats.Records = len(out)
	return out, stats, nil
}
