package obs

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Tracker is the concurrency-safe progress model of one sweep: it knows
// the job plan (item labels in pool order), which items are in flight,
// and how many completed or failed. It implements parallel.Observer, so
// passing it through parallel.WithObserver (or litmus.SoakConfig's
// Observer field) keeps it current with zero coupling to the sweep's
// own code. All methods are safe for concurrent use; none of them can
// affect the observed run.
type Tracker struct {
	mu       sync.Mutex
	labels   []string
	started  time.Time
	inflight map[int]time.Time
	done     int
	failed   int
	total    int
}

// NewTracker returns a Tracker with its clock started.
func NewTracker() *Tracker {
	return &Tracker{started: time.Now(), inflight: make(map[int]time.Time)}
}

// Plan announces the sweep's job list: one label per pool item, in item
// order ("MP/light/seed1"). It also (re)sets the total and restarts the
// ETA clock.
func (t *Tracker) Plan(labels []string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.labels = append([]string(nil), labels...)
	t.total = len(labels)
	t.started = time.Now()
}

// SetTotal sets the expected item count without labels (for sweeps whose
// items are anonymous). Like Plan, it restarts the ETA clock: the sweep
// begins when its size is announced, not when the Tracker was
// constructed, so a tracker built early must not fold setup wall time
// into ElapsedMS and the per-item ETA extrapolation.
func (t *Tracker) SetTotal(n int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.total = n
	t.started = time.Now()
}

// TaskStarted implements parallel.Observer.
func (t *Tracker) TaskStarted(i int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.inflight[i] = time.Now()
}

// TaskDone implements parallel.Observer.
func (t *Tracker) TaskDone(i int, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.inflight, i)
	t.done++
	if err != nil {
		t.failed++
	}
}

// Label renders item i's label ("item 12" when the plan is anonymous).
func (t *Tracker) label(i int) string {
	if i >= 0 && i < len(t.labels) {
		return t.labels[i]
	}
	return fmt.Sprintf("item %d", i)
}

// InFlightItem is one running item in a ProgressSnapshot.
type InFlightItem struct {
	Index int    `json:"index"`
	Label string `json:"label"`
	// RunningMS is how long the item has been executing.
	RunningMS int64 `json:"running_ms"`
}

// ProgressSnapshot is the wire form of a Tracker's state (the "progress"
// object of the /statusz snapshot).
type ProgressSnapshot struct {
	Total   int     `json:"total"`
	Done    int     `json:"done"`
	Failed  int     `json:"failed"`
	Percent float64 `json:"percent"`
	// ElapsedMS is wall time since Plan (or construction).
	ElapsedMS int64 `json:"elapsed_ms"`
	// ETAMS linearly extrapolates the remaining wall time from the
	// completed fraction (0 until the first item completes).
	ETAMS int64 `json:"eta_ms"`
	// InFlight lists the currently executing items — one per busy pool
	// worker — sorted by item index.
	InFlight []InFlightItem `json:"in_flight"`
}

// Snapshot captures the current progress state.
func (t *Tracker) Snapshot() ProgressSnapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := time.Now()
	s := ProgressSnapshot{
		Total:     t.total,
		Done:      t.done,
		Failed:    t.failed,
		ElapsedMS: now.Sub(t.started).Milliseconds(),
	}
	if t.total > 0 {
		s.Percent = 100 * float64(t.done) / float64(t.total)
	}
	if t.done > 0 && t.done < t.total {
		perItem := float64(s.ElapsedMS) / float64(t.done)
		s.ETAMS = int64(perItem * float64(t.total-t.done))
	}
	idxs := make([]int, 0, len(t.inflight))
	for i := range t.inflight {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		s.InFlight = append(s.InFlight, InFlightItem{
			Index: i, Label: t.label(i),
			RunningMS: now.Sub(t.inflight[i]).Milliseconds(),
		})
	}
	return s
}

// line renders the one-line heartbeat form of a snapshot.
func (s *ProgressSnapshot) line(tool string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d/%d done (%.1f%%)", tool, s.Done, s.Total, s.Percent)
	if s.Failed > 0 {
		fmt.Fprintf(&b, ", %d failed", s.Failed)
	}
	if s.ETAMS > 0 {
		fmt.Fprintf(&b, ", eta %s", (time.Duration(s.ETAMS) * time.Millisecond).Round(time.Second))
	}
	if len(s.InFlight) > 0 {
		lim := len(s.InFlight)
		if lim > 4 {
			lim = 4
		}
		parts := make([]string, 0, lim)
		for _, it := range s.InFlight[:lim] {
			parts = append(parts, it.Label)
		}
		fmt.Fprintf(&b, ", running: %s", strings.Join(parts, " "))
		if lim < len(s.InFlight) {
			fmt.Fprintf(&b, " +%d", len(s.InFlight)-lim)
		}
	}
	return b.String()
}

// Heartbeat emits one progress line to w every interval — the headless-CI
// counterpart of the statusz endpoint (a sweep inside a CI job is
// otherwise silent until the final report). The goroutine terminates
// when ctx is cancelled or when the returned stop function runs; both
// paths join it before returning control (no leaked goroutines on
// graceful shutdown). stop additionally emits one final line and is
// safe to call more than once, including after ctx cancellation.
func Heartbeat(ctx context.Context, w io.Writer, interval time.Duration, tool string, t *Tracker) (stop func()) {
	if interval <= 0 {
		interval = 10 * time.Second
	}
	quit := make(chan struct{})
	dead := make(chan struct{})
	go func() {
		defer close(dead)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				s := t.Snapshot()
				fmt.Fprintln(w, s.line(tool))
			case <-ctx.Done():
				return
			case <-quit:
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(quit)
			<-dead
			s := t.Snapshot()
			fmt.Fprintln(w, s.line(tool))
		})
	}
}
