package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// CompactStats reports what a CompactLedger pass did.
type CompactStats struct {
	// In / Out count intact records before and after compaction.
	In, Out int
	// DroppedRows counts superseded row-checkpoint records (older
	// records sharing a row_key with a later one).
	DroppedRows int
	// Torn counts unparseable lines dropped (a SIGKILL tail).
	Torn int
}

// CompactLedger rewrites the JSONL ledger at path keeping, for each
// row_key, only the latest checkpoint record — a long-lived ledger
// otherwise accretes one superseded row per re-run forever. Records
// without a row_key (whole-run history) are kept untouched, as are
// relative record orders: survivors appear in their original order, a
// row-key survivor at its *last* occurrence's position, so replays that
// take the last record per key read identically before and after.
// Torn/corrupt lines are dropped (counted in Torn).
//
// The rewrite is atomic: records stream to a temp file in the ledger's
// directory, which is fsynced and renamed over the original — a crash
// mid-compaction leaves either the old ledger or the new one, never a
// half-written file. Concurrent appenders can still race the rename
// itself (their record lands in the old inode and is lost), so compact
// quiescent ledgers only; the single-line records a live sweep appends
// are exactly what compaction preserves anyway.
func CompactLedger(path string) (CompactStats, error) {
	var stats CompactStats
	recs, rstats, err := ReadLedgerLenient(path)
	if err != nil {
		return stats, err
	}
	stats.In = len(recs)
	stats.Torn = rstats.Skipped

	// Keep the last record per row_key, at its last position.
	lastByKey := make(map[string]int, len(recs))
	for i, r := range recs {
		if r.RowKey != "" {
			lastByKey[r.RowKey] = i
		}
	}
	keep := recs[:0]
	for i, r := range recs {
		if r.RowKey != "" && lastByKey[r.RowKey] != i {
			stats.DroppedRows++
			continue
		}
		keep = append(keep, r)
	}
	stats.Out = len(keep)

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".compact-*")
	if err != nil {
		return stats, fmt.Errorf("obs: compact: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	for i := range keep {
		line, err := json.Marshal(&keep[i])
		if err != nil {
			tmp.Close()
			return stats, fmt.Errorf("obs: compact marshal: %w", err)
		}
		if _, err := tmp.Write(append(line, '\n')); err != nil {
			tmp.Close()
			return stats, fmt.Errorf("obs: compact write: %w", err)
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return stats, fmt.Errorf("obs: compact sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return stats, fmt.Errorf("obs: compact close: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return stats, fmt.Errorf("obs: compact rename: %w", err)
	}
	return stats, nil
}
