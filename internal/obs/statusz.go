package obs

import (
	"bytes"
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"sync"
	"time"

	"c3/internal/trace"
)

// Snapshot is the JSON document served at /statusz: everything needed to
// understand a long run from the outside, in one fetch.
type Snapshot struct {
	Tool    string      `json:"tool"`
	PID     int         `json:"pid"`
	Version VersionInfo `json:"version"`
	// Start is the server's start time; UptimeMS the wall time since.
	Start    time.Time        `json:"start"`
	UptimeMS int64            `json:"uptime_ms"`
	Progress ProgressSnapshot `json:"progress"`
	// Metrics is the aggregate registry dump (counters, gauges,
	// histograms), or null when the tool registered none.
	Metrics json.RawMessage `json:"metrics,omitempty"`
}

// Health is the JSON document served at /healthz: the cheap liveness
// answer (distinct from /statusz, which is the expensive "what is it
// doing" answer). Probes — load balancers, the campaign workers' probe
// of their coordinator, CI wait loops — poll it at high frequency, so
// it deliberately reads no locks, no registry, no progress state.
type Health struct {
	OK       bool        `json:"ok"`
	Tool     string      `json:"tool"`
	PID      int         `json:"pid"`
	UptimeMS int64       `json:"uptime_ms"`
	Version  VersionInfo `json:"version"`
}

// HealthzHandler returns the /healthz liveness handler for tool: a 200
// with the Health document. The version is captured once, at handler
// construction, so the per-probe cost is one time.Since and one small
// JSON encode. Any server that wants to be probeable (obs.Server mounts
// it; the campaign coordinator does too) should serve it at /healthz.
func HealthzHandler(tool string, start time.Time) http.HandlerFunc {
	version := Version()
	pid := os.Getpid()
	return func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(Health{ //nolint:errcheck
			OK:       true,
			Tool:     tool,
			PID:      pid,
			UptimeMS: time.Since(start).Milliseconds(),
			Version:  version,
		})
	}
}

// Server is the opt-in live-introspection endpoint behind the commands'
// -statusz flag. It serves:
//
//	/statusz      the Snapshot JSON document
//	/healthz      the Health liveness document (cheap, probe-friendly)
//	/metricsz     just the registry dump
//	/debug/pprof  net/http/pprof (heap, cpu, goroutines, ...)
//	/debug/vars   expvar
//
// The server reads only data that is safe to read while the run
// executes: the Tracker locks, and any registry installed with
// SetRegistry must be backed by atomics or other synchronized readers —
// never by raw counters a live simulator goroutine is incrementing.
// Serving is pull-only and off the simulation threads, so an armed
// server leaves reports byte-identical to an unarmed run.
type Server struct {
	tool    string
	tracker *Tracker
	start   time.Time
	ln      net.Listener
	srv     *http.Server
	served  chan struct{} // closed when the Serve goroutine exits

	mu  sync.Mutex
	reg *trace.Registry
}

// StartStatusz listens on addr (":0" picks a free port) and serves the
// introspection endpoints for tool, reading progress from t (which may
// be shared with a Heartbeat).
func StartStatusz(addr, tool string, t *Tracker) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: statusz listen %s: %w", addr, err)
	}
	s := &Server{tool: tool, tracker: t, start: time.Now(), ln: ln, served: make(chan struct{})}
	mux := http.NewServeMux()
	mux.HandleFunc("/statusz", s.handleStatusz)
	mux.HandleFunc("/healthz", HealthzHandler(tool, s.start))
	mux.HandleFunc("/metricsz", s.handleMetricsz)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	s.srv = &http.Server{Handler: mux}
	go func() {
		defer close(s.served)
		s.srv.Serve(ln) //nolint:errcheck // Serve returns on Close
	}()
	return s, nil
}

// Addr reports the bound address ("127.0.0.1:43817"), for tests and for
// echoing the endpoint to the user after a ":0" bind.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// SetRegistry installs the aggregate metrics registry served at
// /metricsz and embedded in /statusz. Every reader closure in it must be
// concurrency-safe (atomic loads); it will be called from HTTP handler
// goroutines while the run executes.
func (s *Server) SetRegistry(r *trace.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reg = r
}

// Close stops serving: it closes the listener and open connections and
// waits for the accept goroutine to exit, so a shutdown leaks nothing
// (the goroutine-audit contract graceful shutdown relies on).
func (s *Server) Close() error {
	err := s.srv.Close()
	<-s.served
	return err
}

// metricsJSON renders the installed registry, or nil.
func (s *Server) metricsJSON() json.RawMessage {
	s.mu.Lock()
	reg := s.reg
	s.mu.Unlock()
	if reg == nil {
		return nil
	}
	var b bytes.Buffer
	if err := reg.RenderJSON(&b); err != nil {
		return nil
	}
	return json.RawMessage(b.Bytes())
}

// CaptureSnapshot builds the current Snapshot (also used for the final
// ledger record's metrics field).
func (s *Server) CaptureSnapshot() Snapshot {
	return Snapshot{
		Tool:     s.tool,
		PID:      os.Getpid(),
		Version:  Version(),
		Start:    s.start,
		UptimeMS: time.Since(s.start).Milliseconds(),
		Progress: s.tracker.Snapshot(),
		Metrics:  s.metricsJSON(),
	}
}

func (s *Server) handleStatusz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s.CaptureSnapshot()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleMetricsz(w http.ResponseWriter, _ *http.Request) {
	m := s.metricsJSON()
	if m == nil {
		http.Error(w, "no registry installed", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(m) //nolint:errcheck
}
