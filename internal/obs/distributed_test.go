package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

// TestHealthzEndpoint: the statusz server answers /healthz with a cheap
// liveness document — the probe target workers use on their
// coordinator, and CI wait loops use on any tool.
func TestHealthzEndpoint(t *testing.T) {
	srv, err := StartStatusz("127.0.0.1:0", "healthtest", NewTracker())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz status = %d, want 200", resp.StatusCode)
	}
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if !h.OK || h.Tool != "healthtest" || h.PID != os.Getpid() {
		t.Fatalf("health = %+v", h)
	}
	if h.UptimeMS < 0 {
		t.Fatalf("uptime = %d, want non-negative", h.UptimeMS)
	}
}

// appendRaw simulates a separate process's appender: its own fd on the
// shared ledger file, opened exactly as AppendLedger opens it. O_APPEND
// write atomicity is a per-write, per-fd kernel property, so two fds in
// one test process exercise the same interleaving contract as two
// processes on a shared volume.
func appendRaw(t *testing.T, path string, rec *Record) {
	t.Helper()
	line, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write(append(line, '\n')); err != nil {
		t.Fatal(err)
	}
}

// dedupRows folds records into the concat-merge resume view: the last
// record per row_key wins.
func dedupRows(recs []Record) map[string]string {
	out := make(map[string]string)
	for _, r := range recs {
		if r.RowKey != "" {
			out[r.RowKey] = string(r.Row)
		}
	}
	return out
}

// TestConcurrentLedgerAppends pins the multi-writer contract the
// distributed campaign service rests on: two independent writers
// O_APPEND-interleaving whole-line records into one ledger produce a
// file with no torn or interleaved lines, and the row_key dedup of the
// merged stream is order-independent.
func TestConcurrentLedgerAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shared.jsonl")
	const perWriter = 200

	// Both writers cover the same row_key space with byte-identical rows
	// (the determinism contract: any executor of a shard produces the
	// same row), so at-least-once execution plus dedup is safe.
	row := func(k int) json.RawMessage {
		return json.RawMessage(fmt.Sprintf(`{"Test":"MP","Seed":%d,"Iters":25}`, k))
	}
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				k := i % 50 // overlap within and across writers
				appendRaw(t, path, &Record{
					Tool:   fmt.Sprintf("writer%d", w),
					RowKey: fmt.Sprintf("MP/light/seed%d|v1", k),
					Row:    row(k),
				})
			}
		}(w)
	}
	wg.Wait()

	// Strict read: every line must be a whole record — no interleaving,
	// no tearing, nothing lenient to skip.
	recs, err := ReadLedger(path)
	if err != nil {
		t.Fatalf("interleaved appends tore the ledger: %v", err)
	}
	if len(recs) != 2*perWriter {
		t.Fatalf("read %d records, want %d", len(recs), 2*perWriter)
	}

	// Order independence: dedup of the stream equals dedup of the
	// reversed stream — true here because every record for a key carries
	// the same row bytes, which is exactly what seed determinism
	// guarantees for real shards.
	fwd := dedupRows(recs)
	rev := make([]Record, len(recs))
	for i, r := range recs {
		rev[len(recs)-1-i] = r
	}
	if got := dedupRows(rev); !reflect.DeepEqual(fwd, got) {
		t.Fatalf("row_key dedup is order-dependent:\nfwd: %v\nrev: %v", fwd, got)
	}
	if len(fwd) != 50 {
		t.Fatalf("deduped to %d keys, want 50", len(fwd))
	}
	for k, r := range fwd {
		var seed struct{ Seed int }
		if err := json.Unmarshal([]byte(r), &seed); err != nil {
			t.Fatalf("key %s row corrupt: %v", k, err)
		}
	}
}

// TestCompactLedger: compaction keeps the latest record per row_key and
// every non-row record, drops torn lines, and the resume view (last
// record per key) is identical before and after.
func TestCompactLedger(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	// Whole-run history record (no row_key) — must survive.
	if err := AppendLedger(path, &Record{Tool: "c3soak", Spec: "-iters=5", Verdict: VerdictPass}); err != nil {
		t.Fatal(err)
	}
	// Two generations of the same row, then a distinct row.
	for gen := 0; gen < 2; gen++ {
		if err := AppendLedger(path, &Record{Tool: "c3soak", RowKey: "MP/light/seed1|v1",
			Row: json.RawMessage(fmt.Sprintf(`{"Test":"MP","Iters":%d}`, 5+gen)), Verdict: VerdictPass}); err != nil {
			t.Fatal(err)
		}
	}
	if err := AppendLedger(path, &Record{Tool: "c3soak", RowKey: "SB/light/seed1|v1",
		Row: json.RawMessage(`{"Test":"SB","Iters":5}`), Verdict: VerdictPass}); err != nil {
		t.Fatal(err)
	}
	// Torn tail from a SIGKILL.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"schema":"c3-run/v1","row_key":"LB/li`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	before, _, err := ReadLedgerLenient(path)
	if err != nil {
		t.Fatal(err)
	}
	wantView := dedupRows(before)

	stats, err := CompactLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	if stats.In != 4 || stats.Out != 3 || stats.DroppedRows != 1 || stats.Torn != 1 {
		t.Fatalf("stats = %+v, want In=4 Out=3 DroppedRows=1 Torn=1", stats)
	}

	// Post-compaction the ledger is fully strict-readable (the torn tail
	// is gone) and the resume view is unchanged.
	after, err := ReadLedger(path)
	if err != nil {
		t.Fatalf("compacted ledger not strict-readable: %v", err)
	}
	if len(after) != 3 {
		t.Fatalf("compacted to %d records, want 3", len(after))
	}
	if after[0].RowKey != "" || after[0].Spec != "-iters=5" {
		t.Fatalf("whole-run record lost or reordered: %+v", after[0])
	}
	if got := dedupRows(after); !reflect.DeepEqual(wantView, got) {
		t.Fatalf("resume view changed across compaction:\nwant %v\ngot  %v", wantView, got)
	}
	// The surviving MP record is the later generation.
	var mp struct{ Iters int }
	if err := json.Unmarshal([]byte(wantView["MP/light/seed1|v1"]), &mp); err != nil || mp.Iters != 6 {
		t.Fatalf("latest-wins violated: %v %+v", err, mp)
	}

	// Idempotent: compacting a compacted ledger drops nothing.
	stats2, err := CompactLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.DroppedRows != 0 || stats2.Torn != 0 || stats2.Out != 3 {
		t.Fatalf("second compaction not a no-op: %+v", stats2)
	}
}
