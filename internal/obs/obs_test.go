package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"c3/internal/trace"
)

func TestTrackerSnapshot(t *testing.T) {
	tr := NewTracker()
	tr.Plan([]string{"MP/light/seed1", "SB/noisy/seed1", "LB/stall/seed2"})
	tr.TaskStarted(0)
	tr.TaskStarted(2)
	tr.TaskDone(0, nil)

	s := tr.Snapshot()
	if s.Total != 3 || s.Done != 1 || s.Failed != 0 {
		t.Fatalf("snapshot = %d/%d done, %d failed; want 1/3, 0", s.Done, s.Total, s.Failed)
	}
	if want := 100.0 / 3; s.Percent < want-0.01 || s.Percent > want+0.01 {
		t.Errorf("percent = %v, want %v", s.Percent, want)
	}
	if len(s.InFlight) != 1 || s.InFlight[0].Index != 2 || s.InFlight[0].Label != "LB/stall/seed2" {
		t.Fatalf("in flight = %+v, want item 2 with its planned label", s.InFlight)
	}

	tr.TaskDone(2, errors.New("boom"))
	s = tr.Snapshot()
	if s.Done != 2 || s.Failed != 1 || len(s.InFlight) != 0 {
		t.Fatalf("after failure: %d done %d failed %d in flight, want 2/1/0", s.Done, s.Failed, len(s.InFlight))
	}
}

func TestTrackerAnonymousLabels(t *testing.T) {
	tr := NewTracker()
	tr.SetTotal(10)
	tr.TaskStarted(7)
	s := tr.Snapshot()
	if len(s.InFlight) != 1 || s.InFlight[0].Label != "item 7" {
		t.Fatalf("anonymous label = %+v, want \"item 7\"", s.InFlight)
	}
}

// Plan and SetTotal must both restart the ETA clock: a tracker built
// long before the sweep starts (config parsing, model builds) must not
// report that setup time as elapsed sweep time — it inflates ElapsedMS
// directly and ETAMS through the per-item extrapolation.
func TestTrackerClockRestart(t *testing.T) {
	for _, tc := range []struct {
		name     string
		announce func(tr *Tracker)
	}{
		{"Plan", func(tr *Tracker) { tr.Plan([]string{"a", "b"}) }},
		{"SetTotal", func(tr *Tracker) { tr.SetTotal(2) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tr := NewTracker()
			// Simulate a tracker constructed an hour before the sweep.
			tr.mu.Lock()
			tr.started = time.Now().Add(-time.Hour)
			tr.mu.Unlock()
			tc.announce(tr)
			tr.TaskStarted(0)
			tr.TaskDone(0, nil)
			s := tr.Snapshot()
			if s.ElapsedMS > 10_000 {
				t.Fatalf("%s did not restart the clock: ElapsedMS = %d", tc.name, s.ElapsedMS)
			}
			// One of two items done almost instantly: the linear ETA must
			// be of the same magnitude, not the backdated hour.
			if s.ETAMS > 10_000 {
				t.Fatalf("%s: ETAMS = %d, extrapolated from a stale clock", tc.name, s.ETAMS)
			}
		})
	}
}

// lockedBuf lets the heartbeat goroutine and the test share a buffer.
type lockedBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *lockedBuf) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuf) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

func TestHeartbeat(t *testing.T) {
	tr := NewTracker()
	tr.Plan([]string{"a", "b"})
	tr.TaskStarted(0)
	tr.TaskDone(0, nil)
	tr.TaskStarted(1)

	var buf lockedBuf
	stop := Heartbeat(context.Background(), &buf, time.Millisecond, "c3soak", tr)
	deadline := time.Now().Add(2 * time.Second)
	for buf.String() == "" && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	stop()
	stop() // idempotent

	out := buf.String()
	if !strings.Contains(out, "c3soak: 1/2 done (50.0%)") {
		t.Fatalf("heartbeat line missing progress:\n%s", out)
	}
	if !strings.Contains(out, "running: b") {
		t.Fatalf("heartbeat line missing in-flight label:\n%s", out)
	}
}

func TestLedgerAppendRead(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	first := &Record{Tool: "c3soak", Spec: "-iters=50", Verdict: VerdictPass, Workers: 4,
		Seeds: []int64{1, 2}, Metrics: json.RawMessage(`{"counters":{}}`)}
	if err := AppendLedger(path, first); err != nil {
		t.Fatal(err)
	}
	if err := AppendLedger(path, &Record{Tool: "c3check", Verdict: VerdictViolation, Exit: 1}); err != nil {
		t.Fatal(err)
	}

	recs, err := ReadLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("read %d records, want 2", len(recs))
	}
	if recs[0].Schema != LedgerSchema || recs[1].Schema != LedgerSchema {
		t.Errorf("schema not defaulted: %q / %q", recs[0].Schema, recs[1].Schema)
	}
	if recs[0].Start.IsZero() {
		t.Error("start not defaulted")
	}
	if recs[0].Spec != "-iters=50" || len(recs[0].Seeds) != 2 || recs[0].Workers != 4 {
		t.Errorf("record 0 fields lost: %+v", recs[0])
	}
	if recs[1].Tool != "c3check" || recs[1].Verdict != VerdictViolation || recs[1].Exit != 1 {
		t.Errorf("record 1 fields lost: %+v", recs[1])
	}
}

// TestLedgerConcurrentAppend pins the whole-line interleaving contract:
// parallel appenders (sharded CI jobs on one volume) never corrupt a
// record.
func TestLedgerConcurrentAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	const writers, per = 8, 5
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				rec := &Record{Tool: "c3soak", Spec: fmt.Sprintf("-writer=%d -i=%d", w, i), Verdict: VerdictPass}
				if err := AppendLedger(path, rec); err != nil {
					t.Error(err)
				}
			}
		}(w)
	}
	wg.Wait()
	recs, err := ReadLedger(path)
	if err != nil {
		t.Fatalf("concurrent appends corrupted the ledger: %v", err)
	}
	if len(recs) != writers*per {
		t.Fatalf("read %d records, want %d", len(recs), writers*per)
	}
}

func TestSpecFromFlags(t *testing.T) {
	fs := flag.NewFlagSet("c3soak", flag.ContinueOnError)
	fs.String("tests", "", "")
	fs.String("plans", "", "")
	fs.Int("iters", 25, "")
	fs.String("statusz", "", "")
	fs.Bool("v", false, "")
	if err := fs.Parse([]string{"-iters", "50", "-plans", "light;crash", "-tests", "MP,SB", "-statusz", ":0"}); err != nil {
		t.Fatal(err)
	}
	got := specFromSet(fs, []string{"statusz"})
	// Lexicographic flag order, quoted where shell-hostile, -statusz
	// excluded, unset -v absent.
	want := `-iters=50 -plans="light;crash" -tests=MP,SB`
	if got != want {
		t.Fatalf("spec = %q, want %q", got, want)
	}
}

// TestStatuszMidRun is the acceptance check: fetch /statusz while a
// sweep is in flight and decode it. The tracker has an item running and
// the registry counter is mid-count when the fetch happens.
func TestStatuszMidRun(t *testing.T) {
	tr := NewTracker()
	tr.Plan([]string{"MP/light/seed1", "MP/noisy/seed1"})
	tr.TaskStarted(0)
	tr.TaskDone(0, nil)
	tr.TaskStarted(1) // still running when we fetch

	var forbidden atomic.Uint64
	forbidden.Store(3)
	reg := trace.NewRegistry()
	reg.Counter("soak.forbidden", forbidden.Load)

	srv, err := StartStatusz("127.0.0.1:0", "c3soak", tr)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.SetRegistry(reg)

	var snap Snapshot
	body := fetch(t, "http://"+srv.Addr()+"/statusz")
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/statusz is not decodable JSON: %v\n%s", err, body)
	}
	if snap.Tool != "c3soak" || snap.PID == 0 {
		t.Errorf("tool/pid = %q/%d", snap.Tool, snap.PID)
	}
	if snap.Version.Go == "" {
		t.Error("version.go empty")
	}
	if snap.Progress.Total != 2 || snap.Progress.Done != 1 {
		t.Errorf("progress = %d/%d, want 1/2", snap.Progress.Done, snap.Progress.Total)
	}
	if len(snap.Progress.InFlight) != 1 || snap.Progress.InFlight[0].Label != "MP/noisy/seed1" {
		t.Errorf("in flight = %+v, want the running campaign", snap.Progress.InFlight)
	}
	var metrics struct {
		Counters map[string]uint64 `json:"counters"`
	}
	if err := json.Unmarshal(snap.Metrics, &metrics); err != nil {
		t.Fatalf("embedded metrics not decodable: %v", err)
	}
	if metrics.Counters["soak.forbidden"] != 3 {
		t.Errorf("soak.forbidden = %d, want 3", metrics.Counters["soak.forbidden"])
	}

	// /metricsz serves the bare registry; /debug/vars is expvar.
	if err := json.Unmarshal(fetch(t, "http://"+srv.Addr()+"/metricsz"), &metrics); err != nil {
		t.Fatalf("/metricsz not decodable: %v", err)
	}
	var vars map[string]any
	if err := json.Unmarshal(fetch(t, "http://"+srv.Addr()+"/debug/vars"), &vars); err != nil {
		t.Fatalf("/debug/vars not decodable: %v", err)
	}
	if _, ok := vars["memstats"]; !ok {
		t.Error("/debug/vars missing memstats")
	}
}

func fetch(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func TestVersion(t *testing.T) {
	v := Version()
	if v.Go == "" {
		t.Fatal("Version().Go empty")
	}
}
