package obs

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestLedgerTornWriteRecovery pins the crash-mid-append contract: a
// truncated final line (SIGKILL between the O_APPEND write starting and
// finishing, or a partial flush at power loss) is skipped with a
// warning by the lenient reader, while the strict reader still fails.
func TestLedgerTornWriteRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	if err := AppendLedger(path, &Record{Tool: "c3soak", RowKey: "MP/light/seed1|v1", Verdict: VerdictPass,
		Row: json.RawMessage(`{"Test":"MP"}`)}); err != nil {
		t.Fatal(err)
	}
	if err := AppendLedger(path, &Record{Tool: "c3soak", RowKey: "SB/light/seed1|v1", Verdict: VerdictPass}); err != nil {
		t.Fatal(err)
	}
	// Crash mid-append: a torn, newline-less record fragment at EOF.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"schema":"c3-run/v1","tool":"c3soak","row_key":"LB/li`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if _, err := ReadLedger(path); err == nil {
		t.Fatal("strict ReadLedger accepted a torn final line")
	}
	recs, stats, err := ReadLedgerLenient(path)
	if err != nil {
		t.Fatalf("lenient read failed on a torn final line: %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("lenient read returned %d records, want the 2 intact ones", len(recs))
	}
	if recs[0].RowKey != "MP/light/seed1|v1" || recs[1].RowKey != "SB/light/seed1|v1" {
		t.Fatalf("intact records corrupted: %+v / %+v", recs[0], recs[1])
	}
	if stats.Skipped != 1 || len(stats.Warnings) != 1 || !strings.Contains(stats.Warnings[0], "torn/corrupt") {
		t.Fatalf("stats = %+v, want one torn-record warning and Skipped=1", stats)
	}
	if stats.Records != 2 {
		t.Fatalf("stats.Records = %d, want 2", stats.Records)
	}

	// Appends after the torn line still parse: recovery does not require
	// truncating the file first (mid-file corruption is skipped too).
	if err := AppendLedger(path, &Record{Tool: "c3soak", RowKey: "R/light/seed1|v1", Verdict: VerdictPass}); err != nil {
		t.Fatal(err)
	}
	recs, stats, err = ReadLedgerLenient(path)
	if err != nil {
		t.Fatal(err)
	}
	// The torn fragment and the new record share a line (no trailing
	// newline on the fragment), so that line is skipped too — but the
	// earlier intact records always survive, which is what resume needs.
	if len(recs) < 2 || stats.Skipped == 0 {
		t.Fatalf("post-crash append: %d records, stats %+v", len(recs), stats)
	}
}

// TestRowRecordRoundTrip: per-row checkpoint records carry the key and
// an opaque row payload through the ledger intact.
func TestRowRecordRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	row := json.RawMessage(`{"Test":"MP","Plan":"light","Seed":1,"Iters":25,"Forbidden":0}`)
	rec := &Record{Tool: "c3soak", RowKey: "MP/light/seed1|go1.24/abc123", Row: row, Verdict: VerdictPass}
	if err := AppendLedger(path, rec); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadLedger(path)
	if err != nil || len(recs) != 1 {
		t.Fatalf("read: %v (%d records)", err, len(recs))
	}
	if recs[0].RowKey != rec.RowKey {
		t.Fatalf("row key = %q, want %q", recs[0].RowKey, rec.RowKey)
	}
	var got map[string]any
	if err := json.Unmarshal(recs[0].Row, &got); err != nil {
		t.Fatalf("row payload not decodable: %v", err)
	}
	if got["Test"] != "MP" || got["Plan"] != "light" {
		t.Fatalf("row payload lost fields: %v", got)
	}
}

// TestShutdownLeaksNoGoroutines is the goroutine-shutdown audit: the
// statusz server and the heartbeat must terminate on Close / context
// cancel without leaking goroutines, across repeated start/stop cycles.
func TestShutdownLeaksNoGoroutines(t *testing.T) {
	// One throwaway cycle first so lazily started runtime/http singletons
	// don't count against the baseline.
	cycle := func() {
		ctx, cancel := context.WithCancel(context.Background())
		tr := NewTracker()
		tr.Plan([]string{"a", "b"})
		srv, err := StartStatusz("127.0.0.1:0", "leaktest", tr)
		if err != nil {
			t.Fatal(err)
		}
		client := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
		resp, err := client.Get("http://" + srv.Addr() + "/statusz")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		client.CloseIdleConnections()

		stop := Heartbeat(ctx, io.Discard, time.Millisecond, "leaktest", tr)
		time.Sleep(5 * time.Millisecond) // let it tick at least once
		cancel()                         // heartbeat must die on ctx alone...
		srv.Close()                      // ...and Close must join the serve goroutine
		stop()                           // idempotent with the cancelled ctx
	}
	cycle()

	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		cycle()
	}
	// Allow transient runtime goroutines to settle before judging.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines grew from %d to %d after 5 start/stop cycles:\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
