// Reliable-delivery shim for faulty cross-cluster links.
//
// Real CXL links recover from CRC errors below the protocol layer: the
// link-layer retry state machine replays flits in order, so the protocol
// above observes a lossless, per-channel-FIFO fabric — until recovery
// fails outright, at which point the data poison / viral mechanisms
// deliver flagged data rather than hanging the coherence protocol.
//
// This file models that contract at message granularity:
//
//   - every message on a shim-protected link carries a per-link sequence
//     number (msg.Msg.Seq);
//   - the receiver acknowledges each arrival; unacked messages are
//     retransmitted on a capped-exponential-backoff timer;
//   - the receiver dedups by sequence number (duplicates and stale
//     retransmissions are suppressed) and, on ordered links (VRsp — the
//     channel the BIConflict handshake relies on), holds out-of-order
//     arrivals in a reorder buffer so delivery order equals send order,
//     exactly the property hardware flit replay preserves;
//   - a message that exhausts its retries is force-delivered with
//     Msg.Poisoned set and its line recorded in the injector's poison
//     set: the transaction completes with flagged data instead of
//     wedging the system (graceful degradation, surfaced in
//     system.Metrics as faults.poisoned).
//
// All of this state exists only when EnableFaults armed an injector;
// a perfect fabric never allocates any of it.
package network

import (
	"c3/internal/mem"
	"c3/internal/msg"
	"c3/internal/sim"
)

// ackSlack pads the retransmission timeout beyond the ideal round trip:
// receiver-side occupancy and ack scheduling are not modelled as flit
// traffic, so the RTO must not fire on an ack that is merely in flight.
const ackSlack = sim.Time(32)

// maxBackoffShift caps the exponential backoff at 16x the base RTO.
const maxBackoffShift = 4

// pendingTx is one unacknowledged message at the sender.
type pendingTx struct {
	m        *msg.Msg
	attempts int // retransmissions performed so far
	timer    sim.Handle
}

// relState is the shim state of one directed link: the sender's
// retransmission window and the receiver's dedup/reorder horizon.
type relState struct {
	// Sender side.
	nextSeq uint64
	pending map[uint64]*pendingTx

	// Receiver side. contig is the highest sequence number below which
	// everything has been accepted (and, on ordered links, delivered);
	// seen/buf track the sparse accepted set above it.
	contig uint64
	seen   map[uint64]bool     // unordered links: accepted out-of-order seqs
	buf    map[uint64]*msg.Msg // ordered links: accepted, awaiting gap fill
}

func newRelState() *relState {
	return &relState{
		pending: make(map[uint64]*pendingTx),
		seen:    make(map[uint64]bool),
		buf:     make(map[uint64]*msg.Msg),
	}
}

// accepted reports whether seq has already been taken by the receiver.
func (r *relState) accepted(seq uint64, ordered bool) bool {
	if seq <= r.contig {
		return true
	}
	if ordered {
		return r.buf[seq] != nil
	}
	return r.seen[seq]
}

// relSend stamps m with the link's next sequence number, registers it in
// the retransmission window, transmits, and arms the retry timer.
func (n *Network) relSend(l *link, m *msg.Msg) {
	r := l.rel
	r.nextSeq++
	m.Seq = r.nextSeq
	p := &pendingTx{m: m}
	r.pending[m.Seq] = p
	n.transmit(l, m)
	n.armRetry(l, p)
}

// rto computes the retransmission timeout for the given attempt: twice
// the one-way ideal (propagation + router + serialization) plus jitter
// and ack slack, doubling per retry up to 16x.
func (n *Network) rto(l *link, m *msg.Msg, attempts int) sim.Time {
	flits := sim.Time((m.Size() + l.cfg.FlitBytes - 1) / l.cfg.FlitBytes)
	base := 2*(l.cfg.Latency+l.cfg.RouterCycles+flits) + l.cfg.JitterMax + ackSlack
	shift := attempts
	if shift > maxBackoffShift {
		shift = maxBackoffShift
	}
	return base << shift
}

func (n *Network) armRetry(l *link, p *pendingTx) {
	p.timer = n.k.After(n.rto(l, p.m, p.attempts), func() { n.retry(l, p) })
}

// retry fires when an ack failed to arrive in time: retransmit with
// backoff, or — once the plan's retry budget is spent — poison the line
// and force completion so the protocol above degrades instead of hanging.
func (n *Network) retry(l *link, p *pendingTx) {
	r := l.rel
	if r.pending[p.m.Seq] != p {
		return // acked while this event was already queued
	}
	if l.down {
		// The peer's port is permanently down: retrying out the remaining
		// budget would only delay recovery (and starve the watchdog).
		// Hardware aborts link-layer replay on surprise link-down and
		// raises the isolation event; model that by escalating straight
		// to the structured peer-dead declaration, which retires every
		// pending message to this peer without per-message poison.
		delete(r.pending, p.m.Seq)
		n.declarePeerDead(l.key.dst)
		return
	}
	p.attempts++
	if p.attempts > n.inj.MaxRetries() {
		delete(r.pending, p.m.Seq)
		if r.accepted(p.m.Seq, l.ordered) {
			// Every ack died but the data made it: the receiver accepted
			// this sequence number long ago. Retiring the entry without
			// poison mirrors hardware, where replayed flits are re-acked
			// until one ack survives — poison is for lost data, and
			// flagging a message the receiver already consumed would
			// mutate it behind the protocol's back.
			return
		}
		p.m.Poisoned = true
		n.inj.RecordPoison(p.m.Addr)
		// Forced completion bypasses the faulty link: hardware poison is
		// signalled in-band on the still-working side channels. It lands
		// through the normal arrival path so dedup and (on ordered
		// links) the reorder buffer still apply.
		n.k.ScheduleArg(n.k.Now()+l.cfg.Latency+l.cfg.RouterCycles+1, n.deliverFn, p.m)
		return
	}
	n.inj.Stats.Retries++
	if n.Tracer != nil {
		// A retransmission is progress on the line: re-emitting the send
		// keeps the hang watchdog from misreading recovery as silence.
		n.Tracer.MsgSend(n.k.Now(), p.m)
	}
	n.transmit(l, p.m)
	n.armRetry(l, p)
}

// relArrive filters one physical arrival through dedup and, on ordered
// links, the reorder buffer; every arrival (fresh or duplicate) is
// acknowledged, because a duplicate usually means the previous ack died.
func (n *Network) relArrive(l *link, m *msg.Msg) {
	r := l.rel
	seq := m.Seq
	if !r.accepted(seq, l.ordered) {
		if l.ordered {
			r.buf[seq] = m
			for {
				next := r.buf[r.contig+1]
				if next == nil {
					break
				}
				delete(r.buf, r.contig+1)
				r.contig++
				n.deliverNow(next)
			}
		} else {
			r.seen[seq] = true
			n.deliverNow(m)
			for r.seen[r.contig+1] {
				delete(r.seen, r.contig+1)
				r.contig++
			}
		}
	}
	n.sendAck(l, seq)
}

// sendAck returns an ack for seq over the reverse link. Acks are control
// credits, not flits: they add no sender occupancy, but they do roll the
// reverse link's fault fate (an unreliable link loses acks too — that is
// what makes duplicate suppression necessary).
func (n *Network) sendAck(l *link, seq uint64) {
	fate := n.inj.DecideAck(l.key.dst, l.key.src, l.key.vnet, n.k.Now())
	if fate.Drop {
		return
	}
	delay := l.cfg.Latency + l.cfg.RouterCycles + 1 + fate.Delay
	n.k.After(delay, func() { n.ackArrive(l, seq) })
}

// ackArrive retires the acknowledged message from the retransmission
// window. Stale acks (already retired, or superseded by poison) are
// no-ops.
func (n *Network) ackArrive(l *link, seq uint64) {
	r := l.rel
	if p := r.pending[seq]; p != nil {
		n.k.Cancel(p.timer)
		delete(r.pending, seq)
	}
}

// PendingRetries reports whether any shim-protected link still holds an
// unacknowledged message for line a — the watchdog's "link-retry"
// classification: the line is not deadlocked, recovery is in progress.
func (n *Network) PendingRetries(a mem.LineAddr) bool {
	for _, l := range n.routes {
		if l.rel == nil {
			continue
		}
		for _, p := range l.rel.pending {
			if p.m.Addr == a {
				return true
			}
		}
	}
	return false
}
