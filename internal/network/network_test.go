package network

import (
	"math/rand/v2"
	"testing"

	"c3/internal/mem"
	"c3/internal/msg"
	"c3/internal/sim"
)

type collector struct {
	got   []*msg.Msg
	times []sim.Time
	k     *sim.Kernel
}

func (c *collector) Recv(m *msg.Msg) {
	c.got = append(c.got, m)
	c.times = append(c.times, c.k.Now())
}

func pair(t *testing.T, cfg LinkConfig) (*sim.Kernel, *Network, *collector) {
	t.Helper()
	k := &sim.Kernel{}
	n := New(k, 1)
	c := &collector{k: k}
	n.Register(0, &collector{k: k})
	n.Register(1, c)
	n.Connect(0, 1, cfg)
	return k, n, c
}

func TestDeliveryLatency(t *testing.T) {
	k, n, c := pair(t, LinkConfig{Latency: 10, FlitBytes: 72, RouterCycles: 1})
	n.Send(&msg.Msg{Type: msg.GetS, Src: 0, Dst: 1, VNet: msg.VReq})
	k.Run(nil)
	if len(c.got) != 1 {
		t.Fatalf("delivered %d msgs, want 1", len(c.got))
	}
	// 16 B header = 1 flit, + 10 latency + 1 router = 12.
	if c.times[0] != 12 {
		t.Fatalf("delivered at %d, want 12", c.times[0])
	}
}

func TestDataMessageSerialization(t *testing.T) {
	k, n, c := pair(t, LinkConfig{Latency: 10, FlitBytes: 72, RouterCycles: 1})
	var d mem.Data
	n.Send(&msg.Msg{Type: msg.DataS, Src: 0, Dst: 1, VNet: msg.VRsp, Data: &d})
	k.Run(nil)
	// 80 B payload = 2 flits of 72 B, + 10 + 1 = 13.
	if c.times[0] != 13 {
		t.Fatalf("data msg delivered at %d, want 13", c.times[0])
	}
}

func TestOrderedFIFO(t *testing.T) {
	k, n, c := pair(t, LinkConfig{Latency: 10, FlitBytes: 72, RouterCycles: 1})
	for i := 0; i < 5; i++ {
		n.Send(&msg.Msg{Type: msg.PutAck, Src: 0, Dst: 1, VNet: msg.VRsp, Acks: i})
	}
	k.Run(nil)
	for i, m := range c.got {
		if m.Acks != i {
			t.Fatalf("ordered link reordered: got %d at %d", m.Acks, i)
		}
	}
	// Serialization: departures at 1..5, arrivals 12..16.
	for i, tm := range c.times {
		if want := sim.Time(12 + i); tm != want {
			t.Fatalf("arrival[%d] = %d, want %d", i, tm, want)
		}
	}
}

func TestUnorderedCanReorder(t *testing.T) {
	// With jitter enabled on VReq, some seed must show a reordering.
	reordered := false
	for seed := int64(0); seed < 50 && !reordered; seed++ {
		k := &sim.Kernel{}
		n := New(k, seed)
		c := &collector{k: k}
		n.Register(0, &collector{k: k})
		n.Register(1, c)
		n.Connect(0, 1, LinkConfig{Latency: 10, FlitBytes: 256, RouterCycles: 1,
			Unordered: true, JitterMax: 20})
		for i := 0; i < 6; i++ {
			n.Send(&msg.Msg{Type: msg.GetS, Src: 0, Dst: 1, VNet: msg.VReq, Acks: i})
		}
		k.Run(nil)
		for i, m := range c.got {
			if m.Acks != i {
				reordered = true
			}
		}
	}
	if !reordered {
		t.Fatal("unordered link never reordered over 50 seeds")
	}
}

func TestUnorderedRspStillFIFO(t *testing.T) {
	// Even on an unordered (CXL-style) connection, the response vnet is
	// FIFO — the property the conflict handshake relies on.
	for seed := int64(0); seed < 20; seed++ {
		k := &sim.Kernel{}
		n := New(k, seed)
		c := &collector{k: k}
		n.Register(0, &collector{k: k})
		n.Register(1, c)
		n.Connect(0, 1, CrossCluster())
		for i := 0; i < 8; i++ {
			n.Send(&msg.Msg{Type: msg.CmpM, Src: 0, Dst: 1, VNet: msg.VRsp, Acks: i})
		}
		k.Run(nil)
		for i, m := range c.got {
			if m.Acks != i {
				t.Fatalf("seed %d: response channel reordered", seed)
			}
		}
	}
}

// runJittered drives one fixed traffic pattern through an unordered,
// jittered cross-cluster link and returns the delivery order (send index)
// and delivery times.
func runJittered(seed int64) ([]int, []sim.Time) {
	k := &sim.Kernel{}
	n := New(k, seed)
	c := &collector{k: k}
	n.Register(0, &collector{k: k})
	n.Register(1, c)
	n.Connect(0, 1, LinkConfig{Latency: 10, FlitBytes: 256, RouterCycles: 1,
		Unordered: true, JitterMax: 20})
	for i := 0; i < 40; i++ {
		n.Send(&msg.Msg{Type: msg.GetS, Src: 0, Dst: 1, VNet: msg.VReq, Acks: i})
	}
	k.Run(nil)
	order := make([]int, len(c.got))
	for i, m := range c.got {
		order[i] = m.Acks
	}
	return order, c.times
}

func TestUnorderedDeterministicUnderSeed(t *testing.T) {
	// Reproducibility is what makes a trace of a failing run worth
	// anything: the same seed must give byte-identical delivery schedules,
	// and a different seed must be able to give a different one.
	o1, t1 := runJittered(3)
	o2, t2 := runJittered(3)
	if len(o1) != len(o2) {
		t.Fatalf("same seed delivered %d vs %d msgs", len(o1), len(o2))
	}
	for i := range o1 {
		if o1[i] != o2[i] || t1[i] != t2[i] {
			t.Fatalf("same seed diverged at delivery %d: (%d,%d) vs (%d,%d)",
				i, o1[i], t1[i], o2[i], t2[i])
		}
	}
	for seed := int64(4); seed < 54; seed++ {
		o3, t3 := runJittered(seed)
		for i := range o1 {
			if o1[i] != o3[i] || t1[i] != t3[i] {
				return // different seed, different schedule — jitter is live
			}
		}
	}
	t.Fatal("50 different seeds all produced seed-3's schedule; jitter looks dead")
}

func TestJitterStreamPinned(t *testing.T) {
	// Pin the rand/v2 per-link PCG stream: these values are the seed-3
	// delivery schedule under the current (seed, link-key) derivation.
	// If this test fails, the jitter stream changed — every recorded
	// trace and golden report in the repo silently shifts with it, so
	// treat that as a breaking change, not a test to update casually.
	order, times := runJittered(3)
	wantOrder := []int{1, 4, 6, 8, 2, 0, 5, 9, 7, 12}
	wantTimes := []sim.Time{19, 20, 20, 20, 22, 23, 23, 23, 27, 27}
	for i := range wantOrder {
		if order[i] != wantOrder[i] || times[i] != wantTimes[i] {
			t.Fatalf("jitter stream drifted at delivery %d: got (%d, %d), pinned (%d, %d)",
				i, order[i], times[i], wantOrder[i], wantTimes[i])
		}
	}
}

func TestOrderedDeterministicAcrossSeeds(t *testing.T) {
	// The flip side: on an ordered link the seed must not matter at all.
	run := func(seed int64) []sim.Time {
		k := &sim.Kernel{}
		n := New(k, seed)
		c := &collector{k: k}
		n.Register(0, &collector{k: k})
		n.Register(1, c)
		n.Connect(0, 1, IntraCluster())
		for i := 0; i < 20; i++ {
			n.Send(&msg.Msg{Type: msg.GetS, Src: 0, Dst: 1, VNet: msg.VReq, Acks: i})
		}
		k.Run(nil)
		for i, m := range c.got {
			if m.Acks != i {
				t.Fatalf("seed %d: ordered link reordered at %d", seed, i)
			}
		}
		return c.times
	}
	base := run(1)
	for seed := int64(2); seed < 10; seed++ {
		times := run(seed)
		for i := range base {
			if times[i] != base[i] {
				t.Fatalf("seed %d: ordered delivery time[%d] = %d, want %d",
					seed, i, times[i], base[i])
			}
		}
	}
}

func TestStats(t *testing.T) {
	k, n, _ := pair(t, IntraCluster())
	var d mem.Data
	n.Send(&msg.Msg{Type: msg.GetS, Src: 0, Dst: 1, VNet: msg.VReq})
	n.Send(&msg.Msg{Type: msg.DataS, Src: 0, Dst: 1, VNet: msg.VRsp, Data: &d})
	k.Run(nil)
	if n.Stats.Msgs[msg.VReq] != 1 || n.Stats.Msgs[msg.VRsp] != 1 {
		t.Fatalf("per-vnet msg counts wrong: %+v", n.Stats.Msgs)
	}
	if n.Stats.TotalMsgs() != 2 {
		t.Fatalf("TotalMsgs = %d, want 2", n.Stats.TotalMsgs())
	}
	if n.Stats.TotalBytes() != 16+80 {
		t.Fatalf("TotalBytes = %d, want 96", n.Stats.TotalBytes())
	}
}

func TestNoRoutePanics(t *testing.T) {
	k := &sim.Kernel{}
	n := New(k, 1)
	n.Register(1, &collector{k: k})
	defer func() {
		if recover() == nil {
			t.Fatal("Send without route should panic")
		}
	}()
	n.Send(&msg.Msg{Type: msg.GetS, Src: 0, Dst: 1, VNet: msg.VReq})
}

func TestConnectDuplicatePanics(t *testing.T) {
	k := &sim.Kernel{}
	n := New(k, 1)
	n.Register(0, &collector{k: k})
	n.Register(1, &collector{k: k})
	n.Connect(0, 1, IntraCluster())
	defer func() {
		if recover() == nil {
			t.Fatal("connecting the same pair twice should panic")
		}
	}()
	n.Connect(1, 0, CrossCluster()) // same pair, either direction
}

func TestValidate(t *testing.T) {
	k := &sim.Kernel{}
	n := New(k, 1)
	n.Register(0, &collector{k: k})
	n.Register(1, &collector{k: k})
	n.Connect(0, 1, IntraCluster())
	if err := n.Validate(); err != nil {
		t.Fatalf("fully wired network: %v", err)
	}
	// A link whose endpoints were never registered must be reported, with
	// every missing node named.
	n.Connect(7, 9, CrossCluster())
	err := n.Validate()
	if err == nil {
		t.Fatal("Validate accepted links to unregistered ports")
	}
	for _, want := range []string{"7", "9"} {
		if !containsStr(err.Error(), want) {
			t.Fatalf("Validate error %q does not name missing port %s", err, want)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// BenchmarkNetworkSend pins the perfect-fabric hot path: with no fault
// plan armed, a send (including its kernel event and delivery) must stay
// at 0 allocs/op. The CI alloc gate greps this benchmark's output.
func BenchmarkNetworkSend(b *testing.B) {
	k := &sim.Kernel{}
	n := New(k, 1)
	sink := &countingPort{}
	n.Register(0, &countingPort{})
	n.Register(1, sink)
	n.Connect(0, 1, CrossCluster())
	m := &msg.Msg{Type: msg.GetS, Src: 0, Dst: 1, VNet: msg.VReq}
	// Warm the kernel freelist and the link state.
	n.Send(m)
	k.Run(nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Send(m)
		k.Run(nil)
	}
	if sink.n == 0 {
		b.Fatal("benchmark delivered nothing")
	}
}

// countingPort avoids the collector's slice appends, which would charge
// receiver bookkeeping to the send path.
type countingPort struct{ n int }

func (p *countingPort) Recv(*msg.Msg) { p.n++ }

func TestTraceHook(t *testing.T) {
	k, n, _ := pair(t, IntraCluster())
	sends, delivers := 0, 0
	n.Trace = func(m *msg.Msg, delivered bool) {
		if delivered {
			delivers++
		} else {
			sends++
		}
	}
	n.Send(&msg.Msg{Type: msg.GetS, Src: 0, Dst: 1, VNet: msg.VReq})
	k.Run(nil)
	if sends != 1 || delivers != 1 {
		t.Fatalf("trace saw %d sends, %d delivers; want 1, 1", sends, delivers)
	}
}

func TestCrossClusterLatencyBand(t *testing.T) {
	// One-way cross-cluster delivery should be >= 70ns (140 cycles).
	k, n, c := pair(t, CrossCluster())
	n.Send(&msg.Msg{Type: msg.MemRdS, Src: 0, Dst: 1, VNet: msg.VReq})
	k.Run(nil)
	if c.times[0] < sim.NS(70) {
		t.Fatalf("cross-cluster delivery at %d cycles, want >= %d", c.times[0], sim.NS(70))
	}
}

func TestPropertyPerChannelFIFO(t *testing.T) {
	// Property: under random traffic on an ordered link, per-(src,dst,
	// vnet) delivery order equals send order; with CrossVNetOrder, the
	// property strengthens to per-(src,dst) order across vnets.
	k := &sim.Kernel{}
	n := New(k, 99)
	c := &collector{k: k}
	n.Register(0, &collector{k: k})
	n.Register(1, c)
	n.Connect(0, 1, IntraCluster()) // cross-vnet ordered
	rng := rand.New(rand.NewPCG(4, 0))
	const N = 500
	for i := 0; i < N; i++ {
		m := &msg.Msg{Type: msg.GetS, Src: 0, Dst: 1,
			VNet: msg.VNet(rng.IntN(int(msg.NumVNets))), Acks: i}
		if rng.IntN(2) == 0 {
			var d mem.Data
			m.Data = &d // vary sizes so serialization differs
		}
		n.Send(m)
		if rng.IntN(3) == 0 {
			k.RunLimit(uint64(rng.IntN(5)))
		}
	}
	k.Run(nil)
	if len(c.got) != N {
		t.Fatalf("delivered %d, want %d", len(c.got), N)
	}
	for i, m := range c.got {
		if m.Acks != i {
			t.Fatalf("cross-vnet order violated at %d: got send-index %d", i, m.Acks)
		}
	}
}

func TestPropertyUnorderedRspFIFOUnderLoad(t *testing.T) {
	// Property: even with heavy mixed traffic on an unordered CXL link,
	// the response vnet alone stays FIFO.
	k := &sim.Kernel{}
	n := New(k, 7)
	c := &collector{k: k}
	n.Register(0, &collector{k: k})
	n.Register(1, c)
	n.Connect(0, 1, CrossCluster())
	rng := rand.New(rand.NewPCG(11, 0))
	rspSent := 0
	for i := 0; i < 600; i++ {
		v := msg.VNet(rng.IntN(int(msg.NumVNets)))
		m := &msg.Msg{Type: msg.CmpM, Src: 0, Dst: 1, VNet: v}
		if v == msg.VRsp {
			m.Acks = rspSent
			rspSent++
		}
		n.Send(m)
	}
	k.Run(nil)
	next := 0
	for _, m := range c.got {
		if m.VNet == msg.VRsp {
			if m.Acks != next {
				t.Fatalf("rsp FIFO violated: got %d want %d", m.Acks, next)
			}
			next++
		}
	}
	if next != rspSent {
		t.Fatalf("lost responses: %d/%d", next, rspSent)
	}
}
