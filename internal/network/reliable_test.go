package network

import (
	"testing"

	"c3/internal/faults"
	"c3/internal/mem"
	"c3/internal/msg"
	"c3/internal/sim"
)

// faultyPair builds a 0->1 cross-cluster connection with plan p armed.
func faultyPair(t *testing.T, p faults.Plan) (*sim.Kernel, *Network, *collector) {
	t.Helper()
	k := &sim.Kernel{}
	n := New(k, 1)
	c := &collector{k: k}
	n.Register(0, &collector{k: k})
	n.Register(1, c)
	n.Connect(0, 1, CrossCluster())
	n.EnableFaults(p)
	return k, n, c
}

// TestReliableExactlyOnce drives each message class through a lossy,
// duplicating, delaying cross link and checks the shim's contract: every
// message is delivered exactly once, and the response network stays FIFO.
func TestReliableExactlyOnce(t *testing.T) {
	const N = 200
	cases := []struct {
		name string
		vnet msg.VNet
		typ  msg.Type
	}{
		{"VReq", msg.VReq, msg.GetS},
		{"VSnp", msg.VSnp, msg.SnpData},
		{"VRsp", msg.VRsp, msg.CmpM},
	}
	plans := []struct {
		name string
		plan faults.Plan
	}{
		{"drop", faults.Plan{Seed: 2, Rates: faults.Rates{Drop: 0.3}}},
		{"dup", faults.Plan{Seed: 2, Rates: faults.Rates{Dup: 0.5}}},
		{"delay", faults.Plan{Seed: 2, Rates: faults.Rates{Delay: 0.5, DelayMax: 500}}},
		{"all", faults.Plan{Seed: 2, Rates: faults.Rates{Drop: 0.2, Dup: 0.2, Delay: 0.2, DelayMax: 300}}},
	}
	for _, tc := range cases {
		for _, pl := range plans {
			t.Run(tc.name+"/"+pl.name, func(t *testing.T) {
				k, n, c := faultyPair(t, pl.plan)
				for i := 0; i < N; i++ {
					n.Send(&msg.Msg{Type: tc.typ, Src: 0, Dst: 1, VNet: tc.vnet, Acks: i})
				}
				k.Run(nil)
				if len(c.got) != N {
					t.Fatalf("delivered %d msgs, want exactly %d", len(c.got), N)
				}
				seen := make(map[int]bool, N)
				for _, m := range c.got {
					if seen[m.Acks] {
						t.Fatalf("message %d delivered twice", m.Acks)
					}
					seen[m.Acks] = true
					if m.Poisoned {
						t.Fatalf("message %d poisoned under a recoverable plan", m.Acks)
					}
				}
				if tc.vnet == msg.VRsp {
					for i, m := range c.got {
						if m.Acks != i {
							t.Fatalf("VRsp order violated at %d: got send-index %d", i, m.Acks)
						}
					}
				}
			})
		}
	}
}

// TestReliableSurvivesAckLoss drops 60% of everything — including the
// shim's own acks on the reverse link — and still requires exactly-once.
func TestReliableSurvivesAckLoss(t *testing.T) {
	const N = 100
	k, n, c := faultyPair(t, faults.Plan{Seed: 4, Rates: faults.Rates{Drop: 0.6}})
	for i := 0; i < N; i++ {
		n.Send(&msg.Msg{Type: msg.CmpM, Src: 0, Dst: 1, VNet: msg.VRsp, Acks: i})
	}
	k.Run(nil)
	if len(c.got) != N {
		t.Fatalf("delivered %d msgs, want %d", len(c.got), N)
	}
	for i, m := range c.got {
		if m.Acks != i {
			t.Fatalf("order violated at %d", i)
		}
	}
	st := &n.Injector().Stats
	if st.AckDrops == 0 {
		t.Fatal("plan never dropped an ack; the scenario did not exercise ack loss")
	}
	if st.Retries == 0 {
		t.Fatal("60% drop produced no retransmissions")
	}
}

// TestReliablePoisonOnExhaustion is the acceptance scenario: a link that
// drops everything forces the shim through its whole retry budget, after
// which the message must be force-delivered poisoned — graceful
// degradation with the books to prove it, not a hang.
func TestReliablePoisonOnExhaustion(t *testing.T) {
	plan := faults.Plan{Seed: 1, Rates: faults.Rates{Drop: 1}, MaxRetries: 2}
	k, n, c := faultyPair(t, plan)
	n.Send(&msg.Msg{Type: msg.DataS, Src: 0, Dst: 1, VNet: msg.VRsp, Addr: 0x1040})
	k.Run(nil)
	if len(c.got) != 1 {
		t.Fatalf("delivered %d msgs, want the forced poisoned delivery", len(c.got))
	}
	if !c.got[0].Poisoned {
		t.Fatal("exhausted-retry message delivered without the poison flag")
	}
	st := &n.Injector().Stats
	if st.Drops != 3 { // initial attempt + 2 retries, all dropped
		t.Fatalf("Drops = %d, want 3", st.Drops)
	}
	if st.Retries != 2 {
		t.Fatalf("Retries = %d, want 2", st.Retries)
	}
	if st.Poisoned != 1 {
		t.Fatalf("Poisoned = %d, want 1", st.Poisoned)
	}
	if !n.Injector().Poisoned(mem.LineAddr(0x1040)) {
		t.Fatal("poisoned line not recorded in the injector")
	}
}

// TestReliableStallWindowRecovers loses every message inside a stall
// window shorter than the retry budget: the shim must deliver everything
// after the window closes, unpoisoned.
func TestReliableStallWindowRecovers(t *testing.T) {
	plan := faults.Plan{Seed: 1, Rates: faults.Rates{Stalls: []faults.Window{{From: 0, To: 2000}}}}
	k, n, c := faultyPair(t, plan)
	const N = 10
	for i := 0; i < N; i++ {
		n.Send(&msg.Msg{Type: msg.CmpM, Src: 0, Dst: 1, VNet: msg.VRsp, Acks: i})
	}
	k.Run(nil)
	if len(c.got) != N {
		t.Fatalf("delivered %d msgs, want %d", len(c.got), N)
	}
	for i, m := range c.got {
		if m.Acks != i || m.Poisoned {
			t.Fatalf("msg %d: acks=%d poisoned=%v", i, m.Acks, m.Poisoned)
		}
		if c.times[i] < 2000 {
			t.Fatalf("msg %d delivered at %d, inside the stall window", i, c.times[i])
		}
	}
	if n.Injector().Stats.StallDrops == 0 {
		t.Fatal("stall window never dropped anything")
	}
	if n.Injector().Stats.Poisoned != 0 {
		t.Fatal("recoverable stall poisoned a line")
	}
}

// TestReliableAckLostInStallWindow exercises the ack-loss x stall-window
// interaction: the payload is delivered just before a link-down window
// opens, its ack rolls inside the window and is lost, and every retry
// lands inside the window too. The receiver must dedup the post-window
// retry and re-ack it — exactly-once delivery, no poison, and the books
// must show both the lost ack and the stall-dropped retries.
func TestReliableAckLostInStallWindow(t *testing.T) {
	// Delivery takes ~170 cycles on a Table III cross link and the first
	// retry fires ~340 cycles after the send, so a [100, 5000) window
	// catches the ack (~170) and the first few retries (~340, ~1020,
	// ~2380) while the original send (t=0) escapes it.
	plan := faults.Plan{Seed: 1, Rates: faults.Rates{Stalls: []faults.Window{{From: 100, To: 5000}}}}
	k, n, c := faultyPair(t, plan)
	n.Send(&msg.Msg{Type: msg.CmpM, Src: 0, Dst: 1, VNet: msg.VRsp, Acks: 42})
	k.Run(nil)
	if len(c.got) != 1 {
		t.Fatalf("delivered %d msgs, want exactly 1 (dedup after the window)", len(c.got))
	}
	if c.got[0].Acks != 42 || c.got[0].Poisoned {
		t.Fatalf("delivery corrupted: %+v", c.got[0])
	}
	// The fate rolls at departure (t=0, pre-window), so the delivery is
	// the original attempt — not a post-window retry.
	if c.times[0] >= 5000 {
		t.Fatalf("payload delivered at %d: original attempt was stall-dropped", c.times[0])
	}
	st := &n.Injector().Stats
	if st.AckDrops == 0 {
		t.Fatal("the scenario never lost an ack inside the window")
	}
	if st.StallDrops == 0 {
		t.Fatal("no retry landed inside the stall window")
	}
	if st.Retries == 0 {
		t.Fatal("the lost ack never forced a retransmission")
	}
	if st.Poisoned != 0 {
		t.Fatal("a recoverable ack loss poisoned a line")
	}
}

// TestReliableDeterministic pins the recovery schedule: identical seeds
// give byte-identical delivery schedules even under heavy faults.
func TestReliableDeterministic(t *testing.T) {
	run := func() ([]int, []sim.Time) {
		k, n, c := faultyPair(t, faults.Plan{Seed: 9,
			Rates: faults.Rates{Drop: 0.3, Dup: 0.3, Delay: 0.3, DelayMax: 200}})
		for i := 0; i < 100; i++ {
			n.Send(&msg.Msg{Type: msg.GetS, Src: 0, Dst: 1, VNet: msg.VReq, Acks: i})
		}
		k.Run(nil)
		order := make([]int, len(c.got))
		for i, m := range c.got {
			order[i] = m.Acks
		}
		return order, c.times
	}
	o1, t1 := run()
	o2, t2 := run()
	if len(o1) != len(o2) {
		t.Fatalf("same plan delivered %d vs %d msgs", len(o1), len(o2))
	}
	for i := range o1 {
		if o1[i] != o2[i] || t1[i] != t2[i] {
			t.Fatalf("faulty run diverged at delivery %d", i)
		}
	}
}

// TestEnableFaultsNoopPlan: a zero plan must leave the fabric perfect —
// no injector, no shim state, no sequence numbers.
func TestEnableFaultsNoopPlan(t *testing.T) {
	k, n, c := faultyPair(t, faults.Plan{Seed: 99}) // seed only: inactive
	if n.Injector() != nil {
		t.Fatal("inactive plan armed an injector")
	}
	n.Send(&msg.Msg{Type: msg.GetS, Src: 0, Dst: 1, VNet: msg.VReq})
	k.Run(nil)
	if len(c.got) != 1 || c.got[0].Seq != 0 {
		t.Fatalf("perfect fabric stamped shim metadata: %+v", c.got)
	}
}

// TestFaultsOnlyOnCrossLinks: the injector targets the CXL tier; an
// intra-cluster link under the same network stays perfect.
func TestFaultsOnlyOnCrossLinks(t *testing.T) {
	k := &sim.Kernel{}
	n := New(k, 1)
	c := &collector{k: k}
	n.Register(0, &collector{k: k})
	n.Register(1, c)
	n.Connect(0, 1, IntraCluster())
	n.EnableFaults(faults.Plan{Seed: 1, Rates: faults.Rates{Drop: 1}})
	n.Send(&msg.Msg{Type: msg.GetS, Src: 0, Dst: 1, VNet: msg.VReq})
	k.Run(nil)
	if len(c.got) != 1 {
		t.Fatalf("intra-cluster link dropped under a cross-tier plan: got %d", len(c.got))
	}
	if c.got[0].Seq != 0 {
		t.Fatal("intra-cluster link grew shim metadata")
	}
}

// TestEnableFaultsAfterConnect: arming faults after wiring must attach
// the shim to already-connected cross links.
func TestEnableFaultsAfterConnect(t *testing.T) {
	k, n, c := faultyPair(t, faults.Plan{Seed: 1, Rates: faults.Rates{Drop: 1}, MaxRetries: 1})
	n.Send(&msg.Msg{Type: msg.GetS, Src: 0, Dst: 1, VNet: msg.VReq, Addr: 0x40})
	k.Run(nil)
	if len(c.got) != 1 || !c.got[0].Poisoned {
		t.Fatal("shim not active on pre-connected cross link")
	}
}
