// Package network models the two interconnect tiers of the simulated
// system (Table III of the paper):
//
//   - intra-cluster: point-to-point topology, 72 B flits, 1-cycle router,
//     10-cycle links;
//   - cross-cluster (the CXL fabric): star topology, 256 B flits, 1-cycle
//     router, 70 ns links.
//
// Each directed (src, dst, vnet) pair is an independent link with
// serialization (flit) delay and propagation latency. Response virtual
// networks are always FIFO — the CXL property that makes the
// BIConflict/BIConflictAck handshake meaningful — while request and snoop
// networks on the global fabric may reorder via seeded random jitter,
// modelling CXL's switched, unordered message delivery.
package network

import (
	"fmt"
	"math/rand"

	"c3/internal/msg"
	"c3/internal/sim"
	"c3/internal/trace"
)

// Port receives delivered messages.
type Port interface {
	Recv(m *msg.Msg)
}

// Fabric is the send-side interface controllers depend on. The timed
// Network implements it; the model checker substitutes its own.
type Fabric interface {
	Send(m *msg.Msg)
}

// LinkConfig describes one directed link.
type LinkConfig struct {
	// Latency is the propagation delay (cycles).
	Latency sim.Time
	// FlitBytes sets serialization granularity: a message occupies the
	// sender for ceil(size/FlitBytes) cycles.
	FlitBytes int
	// RouterCycles is added per traversal (1 in Table III).
	RouterCycles sim.Time
	// Unordered permits reordering on VReq/VSnp via jitter in
	// [0, JitterMax]. VRsp links are always ordered regardless.
	Unordered bool
	JitterMax sim.Time
	// CrossVNetOrder enforces point-to-point ordering across all three
	// virtual networks of a directed pair (a single physical on-chip
	// channel). Intra-cluster links use it so a directory grant can
	// never be overtaken by a later snoop; the CXL fabric must not (the
	// Fig. 2 races require snoops to reorder with completions).
	CrossVNetOrder bool
}

// IntraCluster returns the Table III point-to-point link configuration.
func IntraCluster() LinkConfig {
	return LinkConfig{Latency: 10, FlitBytes: 72, RouterCycles: 1, CrossVNetOrder: true}
}

// CrossCluster returns the Table III CXL star-topology configuration.
// The 70 ns link latency was calibrated by the paper to yield ~400 ns
// round-trip CXL memory access. Jitter models fabric reordering.
func CrossCluster() LinkConfig {
	return LinkConfig{Latency: sim.NS(70), FlitBytes: 256, RouterCycles: 1,
		Unordered: true, JitterMax: 24}
}

type routeKey struct {
	src, dst msg.NodeID
	vnet     msg.VNet
}

type pairOrder struct {
	lastArrival sim.Time
}

type link struct {
	cfg           LinkConfig
	lastDeparture sim.Time
	lastArrival   sim.Time
	ordered       bool
	// pair, when non-nil, carries the shared arrival horizon for
	// cross-vnet-ordered links.
	pair *pairOrder
}

// Stats aggregates traffic counters.
type Stats struct {
	Msgs  [msg.NumVNets]uint64
	Bytes [msg.NumVNets]uint64
}

// Network is the timed fabric.
type Network struct {
	k      *sim.Kernel
	rng    *rand.Rand
	ports  map[msg.NodeID]Port
	routes map[routeKey]*link
	serial uint64

	// Trace, when non-nil, observes every message at send (false) and
	// delivery (true). Retained for lightweight ad-hoc hooks (the litmus
	// runner's text trace); structured consumers use Tracer.
	Trace func(m *msg.Msg, delivered bool)

	// Tracer, when non-nil, receives protocol trace events for every
	// send and delivery. nil means tracing is off and costs one branch.
	Tracer *trace.Tracer

	Stats Stats

	// deliverFn is the single long-lived delivery callback shared by
	// every send (see Send): scheduling it through ScheduleArg keeps the
	// hot path free of per-message closures.
	deliverFn func(any)
}

// New returns an empty network on kernel k. Jitter on unordered links is
// drawn from a generator seeded with seed, so runs are reproducible.
func New(k *sim.Kernel, seed int64) *Network {
	n := &Network{
		k:      k,
		rng:    rand.New(rand.NewSource(seed)),
		ports:  make(map[msg.NodeID]Port),
		routes: make(map[routeKey]*link),
	}
	n.deliverFn = n.deliver
	return n
}

// Register attaches the receiver for node id.
func (n *Network) Register(id msg.NodeID, p Port) {
	if _, dup := n.ports[id]; dup {
		panic(fmt.Sprintf("network: duplicate port %d", id))
	}
	n.ports[id] = p
}

// Connect creates the three virtual-network links in both directions
// between a and b. VRsp is always ordered; VReq/VSnp follow cfg.Unordered.
func (n *Network) Connect(a, b msg.NodeID, cfg LinkConfig) {
	for _, p := range [2][2]msg.NodeID{{a, b}, {b, a}} {
		var shared *pairOrder
		if cfg.CrossVNetOrder {
			shared = &pairOrder{}
		}
		for v := msg.VNet(0); v < msg.NumVNets; v++ {
			n.routes[routeKey{p[0], p[1], v}] = &link{
				cfg:     cfg,
				ordered: !cfg.Unordered || v == msg.VRsp,
				pair:    shared,
			}
		}
	}
}

func (n *Network) route(m *msg.Msg) *link {
	l := n.routes[routeKey{m.Src, m.Dst, m.VNet}]
	if l == nil {
		panic(fmt.Sprintf("network: no route for %v", m))
	}
	return l
}

// Send queues m for delivery. The message must not be mutated afterwards.
func (n *Network) Send(m *msg.Msg) {
	l := n.route(m)
	if n.ports[m.Dst] == nil {
		panic(fmt.Sprintf("network: no port for dst %d (%v)", m.Dst, m))
	}
	n.serial++
	m.Serial = n.serial
	n.Stats.Msgs[m.VNet]++
	n.Stats.Bytes[m.VNet] += uint64(m.Size())
	if n.Trace != nil {
		n.Trace(m, false)
	}
	if n.Tracer != nil {
		n.Tracer.MsgSend(n.k.Now(), m)
	}

	flits := sim.Time((m.Size() + l.cfg.FlitBytes - 1) / l.cfg.FlitBytes)
	depart := n.k.Now()
	if l.lastDeparture > depart {
		depart = l.lastDeparture
	}
	depart += flits
	l.lastDeparture = depart

	arrive := depart + l.cfg.Latency + l.cfg.RouterCycles
	if l.ordered {
		if arrive < l.lastArrival {
			arrive = l.lastArrival
		}
		l.lastArrival = arrive
	} else if l.cfg.JitterMax > 0 {
		arrive += sim.Time(n.rng.Int63n(int64(l.cfg.JitterMax) + 1))
	}
	if l.pair != nil {
		// Single physical channel: later sends on any vnet of this
		// directed pair may not arrive before earlier ones.
		if arrive < l.pair.lastArrival {
			arrive = l.pair.lastArrival
		}
		l.pair.lastArrival = arrive
	}

	// Delivery is not terminal for the message itself — receivers queue
	// *Msg behind busy lines (DCOH convoys, directory pipelining), so the
	// Msg cannot be pooled here. What can be recycled is the scheduling
	// bookkeeping: the kernel event comes from the kernel's freelist and
	// the callback is the network's one shared deliverFn, so a send
	// allocates nothing in steady state.
	n.k.ScheduleArg(arrive, n.deliverFn, m)
}

// deliver completes one in-flight message (the ScheduleArg callback).
func (n *Network) deliver(a any) {
	m := a.(*msg.Msg)
	if n.Trace != nil {
		n.Trace(m, true)
	}
	if n.Tracer != nil {
		n.Tracer.MsgDeliver(n.k.Now(), m)
	}
	n.ports[m.Dst].Recv(m)
}

// TotalMsgs reports messages sent across all virtual networks.
func (s *Stats) TotalMsgs() uint64 {
	var t uint64
	for _, v := range s.Msgs {
		t += v
	}
	return t
}

// TotalBytes reports bytes sent across all virtual networks.
func (s *Stats) TotalBytes() uint64 {
	var t uint64
	for _, v := range s.Bytes {
		t += v
	}
	return t
}
