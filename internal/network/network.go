// Package network models the two interconnect tiers of the simulated
// system (Table III of the paper):
//
//   - intra-cluster: point-to-point topology, 72 B flits, 1-cycle router,
//     10-cycle links;
//   - cross-cluster (the CXL fabric): star topology, 256 B flits, 1-cycle
//     router, 70 ns links.
//
// Each directed (src, dst, vnet) pair is an independent link with
// serialization (flit) delay and propagation latency. Response virtual
// networks are always FIFO — the CXL property that makes the
// BIConflict/BIConflictAck handshake meaningful — while request and snoop
// networks on the global fabric may reorder via seeded random jitter,
// modelling CXL's switched, unordered message delivery.
//
// The fabric is perfect by default. EnableFaults arms a deterministic
// fault injector (internal/faults) on the cross-cluster links and layers
// a reliable-delivery shim (reliable.go) over them: sequence numbers,
// ack/timeout retransmission with capped exponential backoff, receiver
// dedup/reorder, and poison-on-retry-exhaustion. The no-fault hot path
// stays allocation-free: every fault hook is a nil check on fields that
// are only populated when a plan is armed (pinned by
// BenchmarkNetworkSend and the CI alloc gate).
package network

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"c3/internal/faults"
	"c3/internal/msg"
	"c3/internal/sim"
	"c3/internal/trace"
)

// Port receives delivered messages.
type Port interface {
	Recv(m *msg.Msg)
}

// Fabric is the send-side interface controllers depend on. The timed
// Network implements it; the model checker substitutes its own.
type Fabric interface {
	Send(m *msg.Msg)
}

// LinkConfig describes one directed link.
type LinkConfig struct {
	// Latency is the propagation delay (cycles).
	Latency sim.Time
	// FlitBytes sets serialization granularity: a message occupies the
	// sender for ceil(size/FlitBytes) cycles.
	FlitBytes int
	// RouterCycles is added per traversal (1 in Table III).
	RouterCycles sim.Time
	// Unordered permits reordering on VReq/VSnp via jitter in
	// [0, JitterMax]. VRsp links are always ordered regardless.
	Unordered bool
	JitterMax sim.Time
	// CrossVNetOrder enforces point-to-point ordering across all three
	// virtual networks of a directed pair (a single physical on-chip
	// channel). Intra-cluster links use it so a directory grant can
	// never be overtaken by a later snoop; the CXL fabric must not (the
	// Fig. 2 races require snoops to reorder with completions).
	CrossVNetOrder bool
	// Cross marks the link as part of the cross-cluster CXL fabric: the
	// tier the fault injector targets and the reliable shim protects.
	Cross bool
}

// IntraCluster returns the Table III point-to-point link configuration.
func IntraCluster() LinkConfig {
	return LinkConfig{Latency: 10, FlitBytes: 72, RouterCycles: 1, CrossVNetOrder: true}
}

// CrossCluster returns the Table III CXL star-topology configuration.
// The 70 ns link latency was calibrated by the paper to yield ~400 ns
// round-trip CXL memory access. Jitter models fabric reordering.
func CrossCluster() LinkConfig {
	return LinkConfig{Latency: sim.NS(70), FlitBytes: 256, RouterCycles: 1,
		Unordered: true, JitterMax: 24, Cross: true}
}

type routeKey struct {
	src, dst msg.NodeID
	vnet     msg.VNet
}

type pairOrder struct {
	lastArrival sim.Time
}

type link struct {
	key           routeKey
	cfg           LinkConfig
	lastDeparture sim.Time
	lastArrival   sim.Time
	ordered       bool
	// down marks a link whose endpoint node crashed: nothing departs,
	// nothing in flight arrives (the surprise-link-down model — flits on
	// the wire are lost, not parked).
	down bool
	// jitter, when non-nil, is this link's private reordering stream
	// (unordered links only). Per-link streams keep one link's traffic
	// from perturbing another's schedule and survive link additions.
	jitter *rand.Rand
	// pair, when non-nil, carries the shared arrival horizon for
	// cross-vnet-ordered links.
	pair *pairOrder
	// rel, when non-nil, is the reliable-delivery shim state: armed on
	// Cross links once EnableFaults has installed an injector.
	rel *relState
}

// Stats aggregates traffic counters.
type Stats struct {
	Msgs  [msg.NumVNets]uint64
	Bytes [msg.NumVNets]uint64
}

// Network is the timed fabric.
type Network struct {
	k      *sim.Kernel
	seed   int64
	ports  map[msg.NodeID]Port
	routes map[routeKey]*link
	serial uint64

	// inj, when non-nil, is the armed fault injector (EnableFaults).
	// Every fault-path branch guards on it, so a perfect fabric pays one
	// predictable nil check per send and per delivery.
	inj *faults.Injector

	// downNodes and declared track crashed endpoints. downNodes is set by
	// MarkNodeDown the moment a host dies; declared is set once per node
	// when the death escalates to a structured peer-dead declaration
	// (retry escalation or the declare-delay backstop, whichever first).
	// Both are nil until the first crash, so the healthy fabric pays the
	// usual nil checks.
	downNodes map[msg.NodeID]bool
	declared  map[msg.NodeID]bool

	// OnPeerDead, when non-nil, receives each peer-dead declaration
	// exactly once. The system layer wires it to the coherence-state
	// reclamation walk (DCOH / H-MESI directory host isolation).
	OnPeerDead func(id msg.NodeID)

	// Trace, when non-nil, observes every message at send (false) and
	// delivery (true). Retained for lightweight ad-hoc hooks (the litmus
	// runner's text trace); structured consumers use Tracer.
	Trace func(m *msg.Msg, delivered bool)

	// Tracer, when non-nil, receives protocol trace events for every
	// send and delivery. nil means tracing is off and costs one branch.
	Tracer *trace.Tracer

	Stats Stats

	// deliverFn is the single long-lived delivery callback shared by
	// every send (see Send): scheduling it through ScheduleArg keeps the
	// hot path free of per-message closures.
	deliverFn func(any)
}

// New returns an empty network on kernel k. Jitter on unordered links is
// drawn from per-link generators derived from seed, so runs are
// reproducible and links are independent.
func New(k *sim.Kernel, seed int64) *Network {
	n := &Network{
		k:      k,
		seed:   seed,
		ports:  make(map[msg.NodeID]Port),
		routes: make(map[routeKey]*link),
	}
	n.deliverFn = n.deliver
	return n
}

// EnableFaults arms the fault injector for plan p and attaches the
// reliable-delivery shim to every Cross link (already-connected and
// future ones). A plan with no active rates is a no-op: the fabric stays
// perfect and the hot path keeps its nil checks.
func (n *Network) EnableFaults(p faults.Plan) {
	if !p.Enabled() {
		return
	}
	n.inj = faults.NewInjector(p)
	for _, l := range n.routes {
		if l.cfg.Cross && l.rel == nil {
			l.rel = newRelState()
		}
	}
}

// Injector returns the armed fault injector, or nil on a perfect fabric.
func (n *Network) Injector() *faults.Injector { return n.inj }

// Register attaches the receiver for node id.
func (n *Network) Register(id msg.NodeID, p Port) {
	if _, dup := n.ports[id]; dup {
		panic(fmt.Sprintf("network: duplicate port %d", id))
	}
	n.ports[id] = p
}

// linkStream derives the per-link RNG stream id (splitmix64 finalizer,
// so adjacent node ids land in unrelated streams).
func linkStream(k routeKey) uint64 {
	x := uint64(int64(k.src))<<24 ^ uint64(int64(k.dst))<<8 ^ uint64(k.vnet)
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Connect creates the three virtual-network links in both directions
// between a and b. VRsp is always ordered; VReq/VSnp follow cfg.Unordered.
// Connecting the same pair twice is a wiring bug and panics (mirroring
// Register), rather than silently resetting the links' FIFO horizons.
func (n *Network) Connect(a, b msg.NodeID, cfg LinkConfig) {
	for _, p := range [2][2]msg.NodeID{{a, b}, {b, a}} {
		var shared *pairOrder
		if cfg.CrossVNetOrder {
			shared = &pairOrder{}
		}
		for v := msg.VNet(0); v < msg.NumVNets; v++ {
			key := routeKey{p[0], p[1], v}
			if _, dup := n.routes[key]; dup {
				panic(fmt.Sprintf("network: duplicate link %d->%d", p[0], p[1]))
			}
			l := &link{
				key:     key,
				cfg:     cfg,
				ordered: !cfg.Unordered || v == msg.VRsp,
				pair:    shared,
			}
			if !l.ordered && cfg.JitterMax > 0 {
				l.jitter = rand.New(rand.NewPCG(uint64(n.seed), linkStream(key)))
			}
			if n.inj != nil && cfg.Cross {
				l.rel = newRelState()
			}
			n.routes[key] = l
		}
	}
}

// Validate checks that every connected link endpoint has a registered
// port. system.New calls it after wiring, so a misconfigured topology
// fails at build time with a list of the unregistered nodes instead of
// panicking mid-run in Send.
func (n *Network) Validate() error {
	seen := make(map[msg.NodeID]bool)
	var missing []msg.NodeID
	for k := range n.routes {
		for _, id := range [2]msg.NodeID{k.src, k.dst} {
			if n.ports[id] == nil && !seen[id] {
				seen[id] = true
				missing = append(missing, id)
			}
		}
	}
	if len(missing) == 0 {
		return nil
	}
	sort.Slice(missing, func(i, j int) bool { return missing[i] < missing[j] })
	return fmt.Errorf("network: links reference unregistered ports %v", missing)
}

func (n *Network) route(m *msg.Msg) *link {
	l := n.routes[routeKey{m.Src, m.Dst, m.VNet}]
	if l == nil {
		panic(fmt.Sprintf("network: no route for %v", m))
	}
	return l
}

// Send queues m for delivery. The message must not be mutated afterwards
// by the sender (the network itself stamps shim metadata on faulty
// links). Port registration is checked by Validate at build time, not
// here on the hot path.
func (n *Network) Send(m *msg.Msg) {
	l := n.route(m)
	if l.down {
		// A crashed endpoint: the send is lost without shim bookkeeping
		// or trace events (a traced send on a dead link would open a
		// watchdog transaction that can never close).
		return
	}
	n.serial++
	m.Serial = n.serial
	n.Stats.Msgs[m.VNet]++
	n.Stats.Bytes[m.VNet] += uint64(m.Size())
	if n.Trace != nil {
		n.Trace(m, false)
	}
	if n.Tracer != nil {
		n.Tracer.MsgSend(n.k.Now(), m)
	}
	if l.rel != nil {
		n.relSend(l, m)
		return
	}
	n.transmit(l, m)
}

// transmit pushes one copy of m through l: sender occupancy, propagation,
// jitter and ordering clamps, and — on shim-protected links — the
// injector's fate for this traversal. Retransmissions come back through
// here and roll a fresh fate.
func (n *Network) transmit(l *link, m *msg.Msg) {
	flits := sim.Time((m.Size() + l.cfg.FlitBytes - 1) / l.cfg.FlitBytes)
	depart := n.k.Now()
	if l.lastDeparture > depart {
		depart = l.lastDeparture
	}
	depart += flits
	l.lastDeparture = depart

	var fate faults.Fate
	if l.rel != nil {
		fate = n.inj.Decide(l.key.src, l.key.dst, l.key.vnet, depart)
		if fate.Drop {
			// Lost in flight. The flit still occupied the sender (the
			// departure horizon advanced above); recovery is the retry
			// timer's job.
			return
		}
	}

	arrive := depart + l.cfg.Latency + l.cfg.RouterCycles
	if l.ordered {
		if arrive < l.lastArrival {
			arrive = l.lastArrival
		}
		l.lastArrival = arrive
	} else if l.jitter != nil {
		arrive += sim.Time(l.jitter.Uint64N(uint64(l.cfg.JitterMax) + 1))
	}
	if l.pair != nil {
		// Single physical channel: later sends on any vnet of this
		// directed pair may not arrive before earlier ones.
		if arrive < l.pair.lastArrival {
			arrive = l.pair.lastArrival
		}
		l.pair.lastArrival = arrive
	}
	arrive += fate.Delay

	// Delivery is not terminal for the message itself — receivers queue
	// *Msg behind busy lines (DCOH convoys, directory pipelining), so the
	// Msg cannot be pooled here. What can be recycled is the scheduling
	// bookkeeping: the kernel event comes from the kernel's freelist and
	// the callback is the network's one shared deliverFn, so a send
	// allocates nothing in steady state.
	n.k.ScheduleArg(arrive, n.deliverFn, m)
	if fate.Dup {
		// The duplicate trails by one flit, the shape a replayed
		// link-layer retry takes; the receiver's dedup suppresses it.
		n.k.ScheduleArg(arrive+flits+1, n.deliverFn, m)
	}
}

// deliver completes one in-flight traversal (the ScheduleArg callback).
// On shim-protected links the arrival first passes dedup/reorder/ack.
func (n *Network) deliver(a any) {
	m := a.(*msg.Msg)
	if n.downNodes != nil && (n.downNodes[m.Src] || n.downNodes[m.Dst]) {
		// The link went down while this message was in flight: the flit
		// dies on the wire (surprise link-down loses, it does not park).
		return
	}
	if n.inj != nil {
		if l := n.routes[routeKey{m.Src, m.Dst, m.VNet}]; l != nil && l.rel != nil {
			n.relArrive(l, m)
			return
		}
	}
	n.deliverNow(m)
}

// deliverNow hands m to its destination port (the single point every
// accepted message funnels through, faulty or not).
func (n *Network) deliverNow(m *msg.Msg) {
	if n.Trace != nil {
		n.Trace(m, true)
	}
	if n.Tracer != nil {
		n.Tracer.MsgDeliver(n.k.Now(), m)
	}
	n.ports[m.Dst].Recv(m)
}

// DefaultDeclareDelay is the backstop between a node going down and its
// peer-dead declaration when no in-flight retry escalates it first:
// roughly two cross-link round trips — long enough that a message sent
// at the instant of the crash has demonstrably died, short enough to
// stay far inside the watchdog's silence threshold.
const DefaultDeclareDelay = sim.Time(600)

// MarkNodeDown takes every link touching id permanently down: messages
// in flight are lost, the dead node's own retransmission window is
// discarded, and receivers drop reorder-buffer entries that can never
// have their gaps filled. If id is a cross-fabric endpoint, a peer-dead
// declaration is scheduled after DefaultDeclareDelay as a backstop; a
// surviving sender's retry usually escalates sooner.
func (n *Network) MarkNodeDown(id msg.NodeID) {
	if n.downNodes == nil {
		n.downNodes = make(map[msg.NodeID]bool)
		n.declared = make(map[msg.NodeID]bool)
	}
	if n.downNodes[id] {
		return
	}
	n.downNodes[id] = true
	cross := false
	for _, l := range n.routes {
		if l.key.src != id && l.key.dst != id {
			continue
		}
		l.down = true
		if l.cfg.Cross {
			cross = true
		}
		if l.rel != nil && l.key.src == id {
			// The dead node will never retransmit: cancel its timers so
			// the event queue drains, and drop parked arrivals whose
			// sequence gaps can now never fill.
			for seq, p := range l.rel.pending {
				n.k.Cancel(p.timer)
				delete(l.rel.pending, seq)
			}
			for seq := range l.rel.buf {
				delete(l.rel.buf, seq)
			}
		}
	}
	if cross {
		n.k.After(DefaultDeclareDelay, func() { n.declarePeerDead(id) })
	}
}

// MarkNodeUp brings a previously downed node's links back up (a crash
// rejoin window). Shim state restarts from scratch on both directions —
// the rejoined endpoint is a cold link partner, not a resumed one.
func (n *Network) MarkNodeUp(id msg.NodeID) {
	if n.downNodes == nil || !n.downNodes[id] {
		return
	}
	delete(n.downNodes, id)
	delete(n.declared, id)
	for _, l := range n.routes {
		if l.key.src != id && l.key.dst != id {
			continue
		}
		if n.downNodes[l.key.src] || n.downNodes[l.key.dst] {
			continue // the other endpoint is still dead
		}
		l.down = false
		if n.inj != nil && l.cfg.Cross {
			l.rel = newRelState()
		}
	}
}

// declarePeerDead escalates a downed node to a structured peer-dead
// declaration: all retransmission state addressed to it is retired
// without per-message poison, and OnPeerDead runs the protocol-level
// reclamation. Idempotent — retry escalation and the backstop timer
// race benignly.
func (n *Network) declarePeerDead(id msg.NodeID) {
	if n.declared[id] {
		return
	}
	n.declared[id] = true
	for _, l := range n.routes {
		if l.rel == nil || l.key.dst != id {
			continue
		}
		for seq, p := range l.rel.pending {
			n.k.Cancel(p.timer)
			delete(l.rel.pending, seq)
		}
	}
	if n.OnPeerDead != nil {
		n.OnPeerDead(id)
	}
}

// NodeDown reports whether id has been marked down.
func (n *Network) NodeDown(id msg.NodeID) bool {
	return n.downNodes != nil && n.downNodes[id]
}

// DeadPeers returns the nodes declared dead, sorted — the watchdog's
// "dead-host" classification input.
func (n *Network) DeadPeers() []msg.NodeID {
	if len(n.declared) == 0 {
		return nil
	}
	out := make([]msg.NodeID, 0, len(n.declared))
	for id := range n.declared {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TotalMsgs reports messages sent across all virtual networks.
func (s *Stats) TotalMsgs() uint64 {
	var t uint64
	for _, v := range s.Msgs {
		t += v
	}
	return t
}

// TotalBytes reports bytes sent across all virtual networks.
func (s *Stats) TotalBytes() uint64 {
	var t uint64
	for _, v := range s.Bytes {
		t += v
	}
	return t
}
