package network

import (
	"testing"

	"c3/internal/faults"
	"c3/internal/msg"
	"c3/internal/sim"
)

// crashOnlyPlan arms the shim with perfect link rates: Enabled() via the
// crash entry, so sequence numbers, acks and retries are live but nothing
// is randomly lost. (The network never schedules the crash itself — that
// is the system coordinator's job — so the entry is inert here.)
func crashOnlyPlan() faults.Plan {
	return faults.Plan{Seed: 1, Crashes: []faults.Crash{{Host: 99, At: 1}}}
}

func TestMarkNodeDownDropsTraffic(t *testing.T) {
	k, n, c := pair(t, CrossCluster())
	n.MarkNodeDown(1)
	if !n.NodeDown(1) || n.NodeDown(0) {
		t.Fatal("NodeDown bookkeeping wrong")
	}
	n.Send(&msg.Msg{Type: msg.GetS, Src: 0, Dst: 1, VNet: msg.VReq})
	n.Send(&msg.Msg{Type: msg.CmpM, Src: 1, Dst: 0, VNet: msg.VRsp})
	k.Run(nil)
	if len(c.got) != 0 {
		t.Fatalf("down link delivered %d msgs, want 0", len(c.got))
	}
	// Idempotent.
	n.MarkNodeDown(1)
	if !n.NodeDown(1) {
		t.Fatal("second MarkNodeDown cleared the state")
	}
}

// TestPeerDeadBackstopDeclare: with no traffic in flight to escalate, the
// backstop timer alone must declare the peer dead, exactly once, at
// MarkNodeDown time + DefaultDeclareDelay.
func TestPeerDeadBackstopDeclare(t *testing.T) {
	k, n, _ := pair(t, CrossCluster())
	var declaredAt []sim.Time
	n.OnPeerDead = func(id msg.NodeID) {
		if id != 1 {
			t.Fatalf("declared node %d dead, want 1", id)
		}
		declaredAt = append(declaredAt, k.Now())
	}
	k.Schedule(100, func() { n.MarkNodeDown(1) })
	k.Run(nil)
	if len(declaredAt) != 1 {
		t.Fatalf("OnPeerDead fired %d times, want 1", len(declaredAt))
	}
	if declaredAt[0] != 100+DefaultDeclareDelay {
		t.Fatalf("declared at %d, want %d", declaredAt[0], 100+DefaultDeclareDelay)
	}
	peers := n.DeadPeers()
	if len(peers) != 1 || peers[0] != 1 {
		t.Fatalf("DeadPeers = %v, want [1]", peers)
	}
}

// TestPeerDeadRetryEscalation: a surviving sender with an unacked message
// to the dead node must escalate at its first retry — well before the
// backstop — instead of burning the whole per-message retry budget.
func TestPeerDeadRetryEscalation(t *testing.T) {
	k, n, c := faultyPair(t, crashOnlyPlan())
	var declaredAt []sim.Time
	n.OnPeerDead = func(id msg.NodeID) { declaredAt = append(declaredAt, k.Now()) }
	// The message departs at t=0; the node dies while it (or its ack) is
	// in flight, so the sender's pending entry can never be acked.
	n.Send(&msg.Msg{Type: msg.GetS, Src: 0, Dst: 1, VNet: msg.VReq, Addr: 0x40})
	downAt := sim.Time(100)
	k.Schedule(downAt, func() { n.MarkNodeDown(1) })
	k.Run(nil)
	if len(c.got) != 0 {
		t.Fatalf("dead node received %d msgs", len(c.got))
	}
	if len(declaredAt) != 1 {
		t.Fatalf("OnPeerDead fired %d times, want 1", len(declaredAt))
	}
	if declaredAt[0] >= downAt+DefaultDeclareDelay {
		t.Fatalf("declared at %d: retry did not escalate before the %d backstop",
			declaredAt[0], downAt+DefaultDeclareDelay)
	}
	if n.Injector().Stats.Poisoned != 0 {
		t.Fatal("peer-dead escalation must not per-message poison")
	}
}

// TestMarkNodeUpRestoresDelivery: a rejoin clears the dead-peer
// declaration and restarts the shim cold; traffic flows again.
func TestMarkNodeUpRestoresDelivery(t *testing.T) {
	k, n, c := faultyPair(t, crashOnlyPlan())
	fired := 0
	n.OnPeerDead = func(msg.NodeID) { fired++ }
	n.MarkNodeDown(1)
	k.Run(nil) // backstop declares
	if fired != 1 || len(n.DeadPeers()) != 1 {
		t.Fatalf("declare did not happen: fired=%d peers=%v", fired, n.DeadPeers())
	}
	n.MarkNodeUp(1)
	if n.NodeDown(1) || len(n.DeadPeers()) != 0 {
		t.Fatalf("rejoin left state: down=%v peers=%v", n.NodeDown(1), n.DeadPeers())
	}
	n.Send(&msg.Msg{Type: msg.GetS, Src: 0, Dst: 1, VNet: msg.VReq, Acks: 7})
	k.Run(nil)
	if len(c.got) != 1 || c.got[0].Acks != 7 || c.got[0].Poisoned {
		t.Fatalf("post-rejoin delivery wrong: %+v", c.got)
	}
	// The rejoined partner is cold: sequence numbering restarted.
	if c.got[0].Seq != 1 {
		t.Fatalf("post-rejoin Seq = %d, want a fresh stream", c.got[0].Seq)
	}
}
