// Package faults models an unreliable CXL fabric: a seeded, deterministic
// fault plan that the network consults on every cross-cluster link
// traversal. Real CXL links are not the lossless channel the paper's
// evaluation assumes — the link layer retries on CRC error, stalls on
// credit exhaustion, and poisons data on uncorrectable failure — and the
// C3 ordering assumptions (FIFO completions, the BIConflict handshake)
// are exactly what such faults stress.
//
// A Plan describes what goes wrong (drop / duplication / delay-spike
// probabilities, link-down stall windows, per-link overrides); an
// Injector turns the plan into per-link deterministic decisions. Each
// directed (src, dst, vnet) link owns an independent PCG stream seeded
// from (Plan.Seed, link key), so one link's traffic never perturbs
// another's fault schedule and a run is reproducible for any event
// interleaving that keeps per-link send order (which the single-threaded
// kernel guarantees).
//
// Recovery from these faults — sequence numbers, ack/timeout retry, dedup
// and poison-on-exhaustion — lives in internal/network's reliable
// delivery shim; this package only decides fates and keeps the books.
package faults

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"strconv"
	"strings"

	"c3/internal/mem"
	"c3/internal/msg"
	"c3/internal/sim"
)

// Window is a half-open simulated-time interval [From, To) during which a
// link delivers nothing (the model of a link-down / credit-exhaustion
// stall: every flit in the window is lost and must be retried).
type Window struct {
	From, To sim.Time
}

func (w Window) contains(t sim.Time) bool { return t >= w.From && t < w.To }

// Rates is one set of fault probabilities. All probabilities are
// per-traversal (a retransmission rolls again).
type Rates struct {
	// Drop is the probability a message is lost in flight.
	Drop float64
	// Dup is the probability a message is delivered twice (the second
	// copy one flit later — the shape a replayed link-layer flit takes).
	Dup float64
	// Delay is the probability of an extra latency spike, drawn
	// uniformly from [1, DelayMax] cycles (DelayMax 0 -> 100).
	Delay float64
	// DelayMax bounds the delay spike.
	DelayMax sim.Time
	// Stalls lists link-down windows; inside one, every traversal drops.
	Stalls []Window
}

func (r Rates) active() bool {
	return r.Drop > 0 || r.Dup > 0 || r.Delay > 0 || len(r.Stalls) > 0
}

// LinkRates overrides the plan's default rates for one directed link
// family. msg.None wildcards an endpoint.
type LinkRates struct {
	Src, Dst msg.NodeID
	Rates
}

// Crash kills one host cluster at a fixed tick: its cores halt, every
// network port it owns goes permanently down, and — after the declare
// delay — the surviving side runs coherence-state reclamation (the CXL
// host-isolation / surprise-link-down analogue). Rejoin, when non-zero,
// is the absolute tick the cluster's links come back up (controllers
// restart cold; the crashed cores stay dead — a rejoin restores the
// fabric, not the workload).
type Crash struct {
	// Host is the cluster index to kill (cluster 0 is never crashable in
	// litmus campaigns: it homes the outcome collector).
	Host int
	// At is the crash tick.
	At sim.Time
	// Rejoin, when > At, brings the cluster's links back up at that tick.
	Rejoin sim.Time
}

// Plan is one deterministic fault schedule.
type Plan struct {
	// Seed roots every per-link PCG stream.
	Seed uint64
	// Rates apply to every faulty (cross-cluster) link unless overridden.
	Rates
	// PerLink overrides rates for specific directed links (first match
	// wins; msg.None wildcards).
	PerLink []LinkRates
	// MaxRetries caps the reliable shim's retransmissions before a
	// message poisons its line (0 -> DefaultMaxRetries).
	MaxRetries int
	// Crashes lists host-cluster crash events (deterministic: the ticks
	// are plan constants, never drawn from the fault streams).
	Crashes []Crash
}

// CrashHost appends a permanent crash of host h at tick at and returns
// the plan for chaining.
func (p *Plan) CrashHost(h int, at sim.Time) *Plan {
	p.Crashes = append(p.Crashes, Crash{Host: h, At: at})
	return p
}

// DefaultMaxRetries is the retry cap before poison (8 retransmissions
// with doubling backoff spans ~25k cycles on a Table III cross link —
// far beyond any transient, so exhaustion means the link is dead).
const DefaultMaxRetries = 8

// DefaultDelayMax is the delay-spike bound when a plan leaves it zero.
const DefaultDelayMax = sim.Time(100)

// Enabled reports whether the plan injects anything at all.
func (p *Plan) Enabled() bool {
	if p == nil {
		return false
	}
	if p.Rates.active() || len(p.Crashes) > 0 {
		return true
	}
	for _, l := range p.PerLink {
		if l.Rates.active() {
			return true
		}
	}
	return false
}

// Retries returns the effective retry cap.
func (p *Plan) Retries() int {
	if p == nil || p.MaxRetries <= 0 {
		return DefaultMaxRetries
	}
	return p.MaxRetries
}

// String renders the plan compactly ("drop=0.01,dup=0.01,stall=0:60000"),
// in ParsePlan's syntax; deterministic, for report keys.
func (p *Plan) String() string {
	if p == nil {
		return "none"
	}
	var parts []string
	add := func(k string, v float64) {
		if v > 0 {
			parts = append(parts, k+"="+strconv.FormatFloat(v, 'g', -1, 64))
		}
	}
	add("drop", p.Drop)
	add("dup", p.Dup)
	add("delay", p.Delay)
	if p.DelayMax > 0 {
		parts = append(parts, fmt.Sprintf("delaymax=%d", p.DelayMax))
	}
	for _, w := range p.Stalls {
		parts = append(parts, fmt.Sprintf("stall=%d:%d", w.From, w.To))
	}
	for _, c := range p.Crashes {
		if c.Rejoin > 0 {
			parts = append(parts, fmt.Sprintf("crash=%d@%d:%d", c.Host, c.At, c.Rejoin))
		} else {
			parts = append(parts, fmt.Sprintf("crash=%d@%d", c.Host, c.At))
		}
	}
	if p.MaxRetries > 0 {
		parts = append(parts, fmt.Sprintf("retries=%d", p.MaxRetries))
	}
	if p.Seed != 0 {
		parts = append(parts, fmt.Sprintf("seed=%d", p.Seed))
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

// ParsePlan parses the command-line plan syntax: comma-separated k=v
// pairs among drop, dup, delay (probabilities in [0,1]), delaymax
// (cycles), stall=from:to (repeatable), crash=host@at or
// crash=host@at:rejoin (repeatable), retries, seed. "none" or "" yields
// a zero plan (Enabled() == false).
func ParsePlan(s string) (Plan, error) {
	var p Plan
	s = strings.TrimSpace(s)
	if s == "" || s == "none" {
		return p, nil
	}
	for _, field := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return p, fmt.Errorf("faults: %q: want key=value", field)
		}
		switch k {
		case "drop", "dup", "delay":
			f, err := strconv.ParseFloat(v, 64)
			if err != nil || f < 0 || f > 1 {
				return p, fmt.Errorf("faults: %s=%q: want probability in [0,1]", k, v)
			}
			switch k {
			case "drop":
				p.Drop = f
			case "dup":
				p.Dup = f
			case "delay":
				p.Delay = f
			}
		case "delaymax":
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return p, fmt.Errorf("faults: delaymax=%q: want cycles", v)
			}
			p.DelayMax = sim.Time(n)
		case "stall":
			from, to, ok := strings.Cut(v, ":")
			if !ok {
				return p, fmt.Errorf("faults: stall=%q: want from:to", v)
			}
			f, err1 := strconv.ParseUint(from, 10, 64)
			t, err2 := strconv.ParseUint(to, 10, 64)
			if err1 != nil || err2 != nil || t <= f {
				return p, fmt.Errorf("faults: stall=%q: want from:to with to > from", v)
			}
			p.Stalls = append(p.Stalls, Window{sim.Time(f), sim.Time(t)})
		case "crash":
			host, when, ok := strings.Cut(v, "@")
			if !ok {
				return p, fmt.Errorf("faults: crash=%q: want host@at or host@at:rejoin", v)
			}
			h, err := strconv.Atoi(host)
			if err != nil || h < 0 {
				return p, fmt.Errorf("faults: crash=%q: want non-negative host index", v)
			}
			at, rejoin, hasRejoin := strings.Cut(when, ":")
			a, err := strconv.ParseUint(at, 10, 64)
			if err != nil || a == 0 {
				return p, fmt.Errorf("faults: crash=%q: want positive crash tick", v)
			}
			c := Crash{Host: h, At: sim.Time(a)}
			if hasRejoin {
				r, err := strconv.ParseUint(rejoin, 10, 64)
				if err != nil || sim.Time(r) <= c.At {
					return p, fmt.Errorf("faults: crash=%q: want rejoin tick > crash tick", v)
				}
				c.Rejoin = sim.Time(r)
			}
			p.Crashes = append(p.Crashes, c)
		case "retries":
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				return p, fmt.Errorf("faults: retries=%q: want positive count", v)
			}
			p.MaxRetries = n
		case "seed":
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return p, fmt.Errorf("faults: seed=%q: want uint64", v)
			}
			p.Seed = n
		default:
			return p, fmt.Errorf("faults: unknown key %q (want drop|dup|delay|delaymax|stall|crash|retries|seed)", k)
		}
	}
	return p, nil
}

// Fate is the injector's verdict on one link traversal.
type Fate struct {
	// Drop loses the message (the sender's retry shim recovers it).
	Drop bool
	// Dup delivers a second copy (the receiver's dedup suppresses it).
	Dup bool
	// Delay adds this many cycles of extra latency.
	Delay sim.Time
}

// Stats counts injected faults and the recovery work they caused. The
// injector owns the fault counters; the network's reliable shim
// increments the recovery ones (Retries, Poisoned, Acks, AckDrops).
type Stats struct {
	Decisions  uint64 // traversals consulted
	Drops      uint64 // messages lost to the rate
	Dups       uint64 // duplicate deliveries injected
	Delays     uint64 // delay spikes injected
	StallDrops uint64 // messages lost to stall windows
	Retries    uint64 // retransmissions performed by the shim
	Poisoned   uint64 // messages that exhausted retries
	Acks       uint64 // shim acks delivered
	AckDrops   uint64 // shim acks lost to the plan
}

type linkKey struct {
	src, dst msg.NodeID
	vnet     msg.VNet
}

type linkState struct {
	rng   *rand.Rand
	rates Rates
}

// Injector evaluates a Plan, one deterministic stream per directed link.
type Injector struct {
	plan  Plan
	links map[linkKey]*linkState

	Stats Stats

	poisoned map[mem.LineAddr]struct{}
}

// NewInjector compiles a plan.
func NewInjector(p Plan) *Injector {
	if p.DelayMax == 0 {
		p.DelayMax = DefaultDelayMax
	}
	return &Injector{
		plan:     p,
		links:    make(map[linkKey]*linkState),
		poisoned: make(map[mem.LineAddr]struct{}),
	}
}

// Plan returns the compiled plan.
func (in *Injector) Plan() *Plan { return &in.plan }

// MaxRetries returns the shim's retry cap under this plan.
func (in *Injector) MaxRetries() int { return in.plan.Retries() }

// splitmix64 finalizes a link key into an independent PCG stream id.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (in *Injector) link(k linkKey) *linkState {
	if ls := in.links[k]; ls != nil {
		return ls
	}
	rates := in.plan.Rates
	for _, o := range in.plan.PerLink {
		if (o.Src == msg.None || o.Src == k.src) && (o.Dst == msg.None || o.Dst == k.dst) {
			rates = o.Rates
			break
		}
	}
	if rates.DelayMax == 0 {
		rates.DelayMax = in.plan.DelayMax
	}
	stream := splitmix64(uint64(int64(k.src))<<24 ^ uint64(int64(k.dst))<<8 ^ uint64(k.vnet))
	ls := &linkState{
		rng:   rand.New(rand.NewPCG(in.plan.Seed, stream)),
		rates: rates,
	}
	in.links[k] = ls
	return ls
}

// roll draws one fate from a link's stream without touching counters.
func (ls *linkState) roll(now sim.Time) (f Fate, stalled bool) {
	for _, w := range ls.rates.Stalls {
		if w.contains(now) {
			return Fate{Drop: true}, true
		}
	}
	if ls.rates.Drop > 0 && ls.rng.Float64() < ls.rates.Drop {
		return Fate{Drop: true}, false
	}
	if ls.rates.Dup > 0 && ls.rng.Float64() < ls.rates.Dup {
		f.Dup = true
	}
	if ls.rates.Delay > 0 && ls.rng.Float64() < ls.rates.Delay {
		f.Delay = 1 + sim.Time(ls.rng.Uint64N(uint64(ls.rates.DelayMax)))
	}
	return f, false
}

// Decide rolls the fate of one message traversal of the directed link
// (src, dst, vnet) departing at time now.
func (in *Injector) Decide(src, dst msg.NodeID, vnet msg.VNet, now sim.Time) Fate {
	in.Stats.Decisions++
	f, stalled := in.link(linkKey{src, dst, vnet}).roll(now)
	switch {
	case stalled:
		in.Stats.StallDrops++
	case f.Drop:
		in.Stats.Drops++
	default:
		if f.Dup {
			in.Stats.Dups++
		}
		if f.Delay > 0 {
			in.Stats.Delays++
		}
	}
	return f
}

// DecideAck rolls the fate of a shim ack on the reverse link. Acks ride
// the same per-link stream as payload traffic; only drop and delay apply
// (a duplicated ack is harmless and not modelled).
func (in *Injector) DecideAck(src, dst msg.NodeID, vnet msg.VNet, now sim.Time) Fate {
	f, _ := in.link(linkKey{src, dst, vnet}).roll(now)
	if f.Drop {
		in.Stats.AckDrops++
	} else {
		in.Stats.Acks++
	}
	f.Dup = false
	return f
}

// RecordPoison marks a line as carrying poisoned data.
func (in *Injector) RecordPoison(a mem.LineAddr) {
	in.Stats.Poisoned++
	in.poisoned[a] = struct{}{}
}

// PoisonedLines returns the poisoned lines, sorted.
func (in *Injector) PoisonedLines() []mem.LineAddr {
	out := make([]mem.LineAddr, 0, len(in.poisoned))
	for a := range in.poisoned {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Poisoned reports whether line a carries poisoned data.
func (in *Injector) Poisoned(a mem.LineAddr) bool {
	_, ok := in.poisoned[a]
	return ok
}
