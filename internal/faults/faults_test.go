package faults

import (
	"testing"

	"c3/internal/msg"
	"c3/internal/sim"
)

func TestPlanEnabled(t *testing.T) {
	var zero Plan
	if zero.Enabled() {
		t.Fatal("zero plan must be disabled")
	}
	var nilPlan *Plan
	if nilPlan.Enabled() {
		t.Fatal("nil plan must be disabled")
	}
	cases := []Plan{
		{Rates: Rates{Drop: 0.01}},
		{Rates: Rates{Dup: 0.5}},
		{Rates: Rates{Delay: 1}},
		{Rates: Rates{Stalls: []Window{{From: 0, To: 10}}}},
		{PerLink: []LinkRates{{Src: 1, Dst: 2, Rates: Rates{Drop: 1}}}},
		{Crashes: []Crash{{Host: 1, At: 2500}}},
	}
	for i, p := range cases {
		if !p.Enabled() {
			t.Fatalf("case %d: plan %s should be enabled", i, p.String())
		}
	}
	// Seed or retries alone inject nothing.
	idle := Plan{Seed: 7, MaxRetries: 3}
	if idle.Enabled() {
		t.Fatal("seed/retries-only plan must be disabled")
	}
}

func TestCrashHostChaining(t *testing.T) {
	var p Plan
	p.CrashHost(1, 2500).CrashHost(2, 3000)
	if len(p.Crashes) != 2 {
		t.Fatalf("Crashes = %v, want 2 entries", p.Crashes)
	}
	if p.Crashes[0] != (Crash{Host: 1, At: 2500}) || p.Crashes[1] != (Crash{Host: 2, At: 3000}) {
		t.Fatalf("Crashes = %+v", p.Crashes)
	}
	if !p.Enabled() {
		t.Fatal("crash-only plan must be enabled")
	}
	if got := p.String(); got != "crash=1@2500,crash=2@3000" {
		t.Fatalf("String() = %q", got)
	}
}

func TestRetriesDefault(t *testing.T) {
	var p Plan
	if got := p.Retries(); got != DefaultMaxRetries {
		t.Fatalf("default retries = %d, want %d", got, DefaultMaxRetries)
	}
	p.MaxRetries = 3
	if got := p.Retries(); got != 3 {
		t.Fatalf("retries = %d, want 3", got)
	}
}

func TestParsePlanRoundTrip(t *testing.T) {
	specs := []string{
		"drop=0.01,dup=0.01",
		"drop=0.05,dup=0.05,delay=0.1,delaymax=200",
		"drop=1,stall=0:60000",
		"drop=0.02,stall=2000:12000,retries=4,seed=9",
		"crash=1@2500",
		"crash=1@2500:40000",
		"drop=0.02,crash=1@2500,crash=2@3000:9000",
		"none",
		"",
	}
	for _, s := range specs {
		p, err := ParsePlan(s)
		if err != nil {
			t.Fatalf("ParsePlan(%q): %v", s, err)
		}
		// String() re-renders in the same grammar; reparsing must give the
		// same plan (the report-key contract).
		p2, err := ParsePlan(p.String())
		if err != nil {
			t.Fatalf("reparse ParsePlan(%q).String()=%q: %v", s, p.String(), err)
		}
		if p.String() != p2.String() {
			t.Fatalf("round trip diverged: %q -> %q", p.String(), p2.String())
		}
	}
}

func TestParsePlanErrors(t *testing.T) {
	bad := []string{
		"drop",            // no value
		"drop=2",          // out of [0,1]
		"drop=-0.1",       // negative
		"dup=x",           // not a number
		"stall=5",         // no colon
		"stall=9:9",       // empty window
		"stall=10:5",      // inverted
		"retries=0",       // must be positive
		"retries=-1",      // negative
		"warp=0.5",        // unknown key
		"delaymax=-3",     // negative cycles
		"crash=1",         // no @tick
		"crash=x@100",     // bad host
		"crash=-1@100",    // negative host
		"crash=1@0",       // crash tick must be positive
		"crash=1@100:100", // rejoin must follow crash
		"crash=1@100:50",  // rejoin before crash
	}
	for _, s := range bad {
		if _, err := ParsePlan(s); err == nil {
			t.Fatalf("ParsePlan(%q) accepted, want error", s)
		}
	}
}

// fates drains n decisions from one directed link of a fresh injector.
func fates(p Plan, src, dst msg.NodeID, n int) []Fate {
	in := NewInjector(p)
	out := make([]Fate, n)
	for i := range out {
		out[i] = in.Decide(src, dst, msg.VReq, sim.Time(i))
	}
	return out
}

func TestDeterministicPerSeed(t *testing.T) {
	p := Plan{Seed: 42, Rates: Rates{Drop: 0.2, Dup: 0.2, Delay: 0.2}}
	a := fates(p, 1, 2, 2000)
	b := fates(p, 1, 2, 2000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at decision %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	p.Seed = 43
	c := fates(p, 1, 2, 2000)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical fate streams")
	}
}

func TestPerLinkStreamsIndependent(t *testing.T) {
	// Interleaving traffic on a second link must not perturb the first
	// link's fate stream — the property that makes campaign results
	// independent of cross-link event interleaving.
	p := Plan{Seed: 7, Rates: Rates{Drop: 0.3, Dup: 0.3}}
	solo := fates(p, 1, 2, 500)

	in := NewInjector(p)
	var mixed []Fate
	for i := 0; i < 500; i++ {
		mixed = append(mixed, in.Decide(1, 2, msg.VReq, sim.Time(i)))
		in.Decide(3, 4, msg.VReq, sim.Time(i)) // noise on another link
		in.Decide(2, 1, msg.VReq, sim.Time(i)) // and on the reverse link
	}
	for i := range solo {
		if solo[i] != mixed[i] {
			t.Fatalf("link 1->2 stream perturbed by other links at decision %d", i)
		}
	}
}

func TestDropRateBand(t *testing.T) {
	const n = 20000
	p := Plan{Seed: 1, Rates: Rates{Drop: 0.1}}
	in := NewInjector(p)
	drops := 0
	for i := 0; i < n; i++ {
		if in.Decide(1, 2, msg.VReq, sim.Time(i)).Drop {
			drops++
		}
	}
	rate := float64(drops) / n
	if rate < 0.08 || rate > 0.12 {
		t.Fatalf("drop rate %.4f outside [0.08, 0.12] band for 10%% plan", rate)
	}
	if in.Stats.Drops != uint64(drops) || in.Stats.Decisions != n {
		t.Fatalf("stats mismatch: %+v vs drops=%d n=%d", in.Stats, drops, n)
	}
}

func TestStallWindow(t *testing.T) {
	p := Plan{Seed: 1, Rates: Rates{Stalls: []Window{{From: 100, To: 200}}}}
	in := NewInjector(p)
	for _, now := range []sim.Time{100, 150, 199} {
		if f := in.Decide(1, 2, msg.VReq, now); !f.Drop {
			t.Fatalf("traversal at %d inside stall window survived", now)
		}
	}
	for _, now := range []sim.Time{0, 99, 200, 1000} {
		if f := in.Decide(1, 2, msg.VReq, now); f.Drop {
			t.Fatalf("traversal at %d outside stall window dropped", now)
		}
	}
	if in.Stats.StallDrops != 3 {
		t.Fatalf("StallDrops = %d, want 3", in.Stats.StallDrops)
	}
	if in.Stats.Drops != 0 {
		t.Fatalf("stall drops leaked into Drops: %d", in.Stats.Drops)
	}
}

func TestPerLinkOverride(t *testing.T) {
	// Only the overridden link drops; the default rates are clean.
	p := Plan{Seed: 1, PerLink: []LinkRates{{Src: 1, Dst: 2, Rates: Rates{Drop: 1}}}}
	in := NewInjector(p)
	if f := in.Decide(1, 2, msg.VReq, 0); !f.Drop {
		t.Fatal("overridden link did not drop at rate 1")
	}
	if f := in.Decide(2, 1, msg.VReq, 0); f.Drop {
		t.Fatal("reverse link inherited the override")
	}
	if f := in.Decide(3, 4, msg.VReq, 0); f.Drop {
		t.Fatal("unrelated link inherited the override")
	}

	// msg.None wildcards an endpoint.
	wp := Plan{Seed: 1, PerLink: []LinkRates{{Src: msg.None, Dst: 2, Rates: Rates{Drop: 1}}}}
	win := NewInjector(wp)
	if f := win.Decide(9, 2, msg.VReq, 0); !f.Drop {
		t.Fatal("wildcard src did not match")
	}
	if f := win.Decide(2, 9, msg.VReq, 0); f.Drop {
		t.Fatal("wildcard matched the wrong direction")
	}
}

func TestDelaySpikeBounds(t *testing.T) {
	p := Plan{Seed: 3, Rates: Rates{Delay: 1, DelayMax: 50}}
	in := NewInjector(p)
	seen := false
	for i := 0; i < 1000; i++ {
		f := in.Decide(1, 2, msg.VReq, sim.Time(i))
		if f.Delay < 1 || f.Delay > 50 {
			t.Fatalf("delay %d outside [1, 50]", f.Delay)
		}
		if f.Delay > 1 {
			seen = true
		}
	}
	if !seen {
		t.Fatal("delay spikes never varied")
	}
	if in.Stats.Delays != 1000 {
		t.Fatalf("Delays = %d, want 1000", in.Stats.Delays)
	}
}

func TestDecideAckAccounting(t *testing.T) {
	p := Plan{Seed: 5, Rates: Rates{Drop: 0.5}}
	in := NewInjector(p)
	for i := 0; i < 1000; i++ {
		f := in.DecideAck(2, 1, msg.VReq, sim.Time(i))
		if f.Dup {
			t.Fatal("acks must never duplicate")
		}
	}
	if in.Stats.Acks+in.Stats.AckDrops != 1000 {
		t.Fatalf("ack accounting leaked: acks=%d drops=%d", in.Stats.Acks, in.Stats.AckDrops)
	}
	if in.Stats.AckDrops == 0 || in.Stats.Acks == 0 {
		t.Fatalf("50%% plan produced one-sided ack stats: %+v", in.Stats)
	}
	if in.Stats.Drops != 0 || in.Stats.Decisions != 0 {
		t.Fatalf("ack rolls polluted payload counters: %+v", in.Stats)
	}
}

func TestPoisonBookkeeping(t *testing.T) {
	in := NewInjector(Plan{Rates: Rates{Drop: 1}})
	if in.Poisoned(0x40) {
		t.Fatal("fresh injector reports poison")
	}
	in.RecordPoison(0x80)
	in.RecordPoison(0x40)
	in.RecordPoison(0x40) // idempotent line set, cumulative counter
	if !in.Poisoned(0x40) || !in.Poisoned(0x80) {
		t.Fatal("recorded poison not visible")
	}
	lines := in.PoisonedLines()
	if len(lines) != 2 || lines[0] != 0x40 || lines[1] != 0x80 {
		t.Fatalf("PoisonedLines = %v, want sorted [40 80]", lines)
	}
	if in.Stats.Poisoned != 3 {
		t.Fatalf("Poisoned counter = %d, want 3", in.Stats.Poisoned)
	}
}
