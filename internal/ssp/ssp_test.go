package ssp

import (
	"strings"
	"testing"
)

func TestParseAllEmbeddedSpecs(t *testing.T) {
	for _, name := range LocalNames() {
		s, ok := Local(name)
		if !ok || s == nil {
			t.Fatalf("Local(%q) failed", name)
		}
		if s.Role != RoleLocal {
			t.Errorf("%s: role = %v, want local", name, s.Role)
		}
	}
	for _, name := range GlobalNames() {
		s, ok := Global(name)
		if !ok || s == nil {
			t.Fatalf("Global(%q) failed", name)
		}
		if s.Role != RoleGlobal {
			t.Errorf("%s: role = %v, want global", name, s.Role)
		}
	}
	if _, ok := Local("nope"); ok {
		t.Error("Local should reject unknown protocols")
	}
	if _, ok := Global("nope"); ok {
		t.Error("Global should reject unknown protocols")
	}
}

func TestMESISpecShape(t *testing.T) {
	s := MustParse(MESIText)
	if s.Name != "MESI" || len(s.Classes) != 3 {
		t.Fatalf("unexpected spec: %+v", s)
	}
	if !s.Params.GrantE {
		t.Error("MESI should grant E")
	}
	r, ok := s.ReqRule("GetM", ClsS)
	if !ok || r.Need != NeedM || r.Plan != PlanInvSharers || r.Grant != GrantM || r.Next != ClsM {
		t.Fatalf("GetM@S rule wrong: %+v ok=%v", r, ok)
	}
	sn, ok := s.SnpRule(AccLoad, ClsM)
	if !ok || sn.Plan != PlanSnpOwner || sn.Next != ClsS {
		t.Fatalf("load-snoop@M rule wrong: %+v", sn)
	}
	e, ok := s.EvtRule(ClsM)
	if !ok || e.Plan != PlanInvOwner {
		t.Fatalf("evt@M rule wrong: %+v", e)
	}
}

func TestMOESIKeepsDirtyOwner(t *testing.T) {
	s := MustParse(MOESIText)
	sn, ok := s.SnpRule(AccLoad, ClsM)
	if !ok || sn.Next != ClsO {
		t.Fatalf("MOESI load snoop on M should leave O, got %+v", sn)
	}
	if !s.Params.OwnerKeepsDirty {
		t.Error("MOESI should set owner-keeps-dirty")
	}
	r, _ := s.ReqRule("GetM", ClsO)
	if r.Plan != PlanInvAll {
		t.Errorf("GetM@O should invalidate all, got %v", r.Plan)
	}
}

func TestMESIFLoadSnoopNeedsNoHostFlow(t *testing.T) {
	s := MustParse(MESIFText)
	sn, _ := s.SnpRule(AccLoad, ClsF)
	if sn.Plan != PlanNone {
		t.Fatalf("F is clean: global load snoop should not delegate, got %v", sn.Plan)
	}
	if !s.Params.Forwarder {
		t.Error("MESIF should track a forwarder")
	}
}

func TestRCCIsUntracked(t *testing.T) {
	s := MustParse(RCCText)
	if !s.Params.SelfInvalidate {
		t.Fatal("RCC must be self-invalidating")
	}
	for _, a := range []Access{AccLoad, AccStore} {
		sn, ok := s.SnpRule(a, ClsN)
		if !ok || sn.Plan != PlanNone {
			t.Fatalf("RCC snoop %v should be plan=none, got %+v", a, sn)
		}
	}
	r, ok := s.ReqRule("WrThrough", ClsN)
	if !ok || r.Need != NeedM {
		t.Fatalf("RCC WrThrough should need global M: %+v", r)
	}
}

func TestCXLBindings(t *testing.T) {
	s := MustParse(CXLText)
	if s.AcqM["send"] != "MemRd,A" || s.AcqS["send"] != "MemRd,S" {
		t.Fatalf("CXL acq bindings wrong: %v %v", s.AcqS, s.AcqM)
	}
	if s.WB["dirty"] != "MemWr,I" {
		t.Fatalf("CXL wb binding wrong: %v", s.WB)
	}
	if s.SnpBind["BISnpInv"] != AccStore || s.SnpBind["BISnpData"] != AccLoad {
		t.Fatalf("Table I equivalences wrong: %v", s.SnpBind)
	}
	if !s.Params.ConflictHandshake {
		t.Error("CXL must use the conflict handshake")
	}
}

func TestHMESIBindings(t *testing.T) {
	s := MustParse(HMESIText)
	if s.Params.ConflictHandshake {
		t.Error("H-MESI resolves races by stalling, not handshaking")
	}
	if !s.Params.PeerData {
		t.Error("H-MESI uses peer-to-peer data")
	}
	if s.SnpBind["GFwdGetM"] != AccStore || s.SnpBind["GFwdGetS"] != AccLoad {
		t.Fatalf("H-MESI snoop bindings wrong: %v", s.SnpBind)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, text, wantErr string
	}{
		{"no name", "role local\nclasses I\nsnp load I plan=none\nsnp store I plan=none\nevt I plan=none", "missing protocol name"},
		{"no classes", "protocol X\nrole local", "no classes"},
		{"dup class", "protocol X\nrole local\nclasses I I", "duplicate class"},
		{"bad directive", "protocol X\nbogus", "unknown directive"},
		{"bad plan", "protocol X\nrole local\nclasses I\nsnp load I plan=fly", "unknown plan"},
		{"bad role", "protocol X\nrole sideways", "unknown role"},
		{"bad kv", "protocol X\nrole local\nclasses I\nreq GetS I plan", "key=value"},
		{"undeclared class", "protocol X\nrole local\nclasses I\nreq GetS Q plan=none", "undeclared class"},
		{"incomplete snoops", "protocol X\nrole local\nclasses I S\nsnp load I plan=none\nsnp store I plan=none\nevt I plan=none\nevt S plan=none", "missing snp rule"},
		{"global needs acq", "protocol X\nrole global\nclasses I\ngsnp A access=load", "needs acq"},
		{"bad access", "protocol X\nrole global\nclasses I\nacq S send=a\nacq M send=b\nwb dirty=c\ngsnp A access=jump", "access=load|store"},
		{"bad param", "protocol X\nparams zoom=true", "unknown param"},
	}
	for _, c := range cases {
		_, err := Parse(c.text)
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: err = %v, want containing %q", c.name, err, c.wantErr)
		}
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	s, err := Parse("# header\n\nprotocol T # trailing\nrole local\nclasses I\nsnp load I plan=none\nsnp store I plan=none\nevt I plan=none\n")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "T" {
		t.Fatalf("name = %q", s.Name)
	}
}

func TestMustParsePanicsOnBadSpec(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse should panic on a bad spec")
		}
	}()
	MustParse("protocol X\nbroken")
}

func TestLookupMisses(t *testing.T) {
	s := MustParse(MESIText)
	if _, ok := s.ReqRule("GetS", ClsO); ok {
		t.Error("MESI has no O class")
	}
	if _, ok := s.SnpRule(AccEvict, ClsM); ok {
		t.Error("no evict snp rules declared in MESI")
	}
	if _, ok := s.EvtRule(ClsO); ok {
		t.Error("no O evt rule in MESI")
	}
	if s.HasClass(ClsO) {
		t.Error("HasClass(O) should be false for MESI")
	}
	if !s.HasClass(ClsM) {
		t.Error("HasClass(M) should be true for MESI")
	}
}

func TestStringers(t *testing.T) {
	if PlanInvSharers.String() != "inv-sharers" || AccLoad.String() != "load" ||
		GrantM.String() != "M" || RoleLocal.String() != "local" {
		t.Error("stringer mismatch")
	}
}
