package ssp

// Embedded stable-state protocol specifications. These are the inputs the
// generator merges into C3 compound FSMs, playing the role of the paper's
// machine-readable SSP files.

// MESIText is the textbook MESI directory view: classes I/S/M, where M
// covers host E and M (silent E->M upgrades make them indistinguishable
// from the directory).
const MESIText = `
protocol MESI
role local
classes I S M
params grantE=true

req GetS I needs=S plan=none        grant=S next=S
req GetS S needs=S plan=none        grant=S next=S
req GetS M needs=S plan=snoop-owner grant=S next=S
req GetM I needs=M plan=none        grant=M next=M
req GetM S needs=M plan=inv-sharers grant=M next=M
req GetM M needs=M plan=inv-owner   grant=M next=M

snp load  I plan=none        next=I
snp load  S plan=none        next=S
snp load  M plan=snoop-owner next=S
snp store I plan=none        next=I
snp store S plan=inv-sharers next=I
snp store M plan=inv-owner   next=I

evt I plan=none
evt S plan=inv-sharers
evt M plan=inv-owner
`

// MOESIText adds the Owned class: a load snoop leaves the dirty owner in
// place (O) instead of forcing a clean downgrade — the protocol mismatch
// of Fig. 3 that C3 reconciles through delegation.
const MOESIText = `
protocol MOESI
role local
classes I S M O
params grantE=true owner-keeps-dirty=true

req GetS I needs=S plan=none        grant=S next=S
req GetS S needs=S plan=none        grant=S next=S
req GetS M needs=S plan=snoop-owner grant=S next=O
req GetS O needs=S plan=snoop-owner grant=S next=O
req GetM I needs=M plan=none        grant=M next=M
req GetM S needs=M plan=inv-sharers grant=M next=M
req GetM M needs=M plan=inv-owner   grant=M next=M
req GetM O needs=M plan=inv-all     grant=M next=M

snp load  I plan=none        next=I
snp load  S plan=none        next=S
snp load  M plan=snoop-owner next=O
snp load  O plan=snoop-owner next=O
snp store I plan=none        next=I
snp store S plan=inv-sharers next=I
snp store M plan=inv-owner   next=I
snp store O plan=inv-all     next=I

evt I plan=none
evt S plan=inv-sharers
evt M plan=inv-owner
evt O plan=inv-all
`

// MESIFText adds the Forward class: among clean sharers one is the
// designated responder; a new read joins as the forwarder. Because F is
// clean, global load snoops are satisfiable from the CXL cache without
// host involvement.
const MESIFText = `
protocol MESIF
role local
classes I S M F
params grantE=true forwarder=true

req GetS I needs=S plan=none        grant=S next=F
req GetS S needs=S plan=none        grant=S next=F
req GetS F needs=S plan=snoop-owner grant=S next=F
req GetS M needs=S plan=snoop-owner grant=S next=F
req GetM I needs=M plan=none        grant=M next=M
req GetM S needs=M plan=inv-sharers grant=M next=M
req GetM F needs=M plan=inv-sharers grant=M next=M
req GetM M needs=M plan=inv-owner   grant=M next=M

snp load  I plan=none        next=I
snp load  S plan=none        next=S
snp load  F plan=none        next=F
snp load  M plan=snoop-owner next=F
snp store I plan=none        next=I
snp store S plan=inv-sharers next=I
snp store F plan=inv-sharers next=I
snp store M plan=inv-owner   next=I

evt I plan=none
evt S plan=inv-sharers
evt F plan=inv-sharers
evt M plan=inv-owner
`

// RCCText is release-consistency coherence (GPU-style): the directory
// does not track host caches at all (class NT); hosts self-invalidate on
// acquire and write through dirty lines on release, so global snoops are
// answered directly from the CXL cache (footnote 5 of the paper).
const RCCText = `
protocol RCC
role local
classes NT
params self-invalidate=true

req GetV      NT needs=S plan=none grant=V next=NT
req WrThrough NT needs=M plan=none grant=M next=NT
req Atomic    NT needs=M plan=none grant=M next=NT

snp load  NT plan=none next=NT
snp store NT plan=none next=NT

evt NT plan=none
`

// CXLText is the CXL.mem 3.0 host-side binding (HDM-DB): Table I message
// equivalences plus the conflict handshake that resolves fabric
// reorderings (Fig. 2).
const CXLText = `
protocol CXL
role global
classes I S E M
params conflict-handshake=true silent-clean-evict=true

acq S send=MemRd,S
acq M send=MemRd,A
wb dirty=MemWr,I

gsnp BISnpInv  access=store
gsnp BISnpData access=load
`

// HMESIText is the hierarchical MESI global protocol used as the paper's
// MESI-MESI-MESI baseline: 3-hop, peer-to-peer data responses, and a
// pipelining directory (no conflict handshake; snoops stall in transient
// states instead).
const HMESIText = `
protocol HMESI
role global
classes I S E M
params peer-data=true

acq S send=GGetS
acq M send=GGetM
wb dirty=GPutM clean=GPutS

gsnp GFwdGetM access=store
gsnp GFwdGetS access=load
gsnp GInv     access=store
`

// Local returns the parsed local spec for name ("mesi", "moesi", "mesif",
// "rcc"); ok is false for unknown names.
func Local(name string) (*Spec, bool) {
	switch name {
	case "mesi", "MESI":
		return MustParse(MESIText), true
	case "moesi", "MOESI":
		return MustParse(MOESIText), true
	case "mesif", "MESIF":
		return MustParse(MESIFText), true
	case "rcc", "RCC":
		return MustParse(RCCText), true
	}
	return nil, false
}

// Global returns the parsed global spec for name ("cxl", "hmesi").
func Global(name string) (*Spec, bool) {
	switch name {
	case "cxl", "CXL":
		return MustParse(CXLText), true
	case "hmesi", "HMESI", "mesi", "MESI":
		return MustParse(HMESIText), true
	}
	return nil, false
}

// LocalNames and GlobalNames list the embedded protocols.
func LocalNames() []string { return []string{"mesi", "moesi", "mesif", "rcc"} }

// GlobalNames lists the embedded global protocols.
func GlobalNames() []string { return []string{"cxl", "hmesi"} }
