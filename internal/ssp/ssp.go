// Package ssp defines the stable-state protocol (SSP) specification
// format consumed by the C3 generator (internal/gen), mirroring the
// paper's Progen-based front end: "a generator tool that takes
// machine-readable stable state protocol (SSP) specifications for both
// host and CXL CC protocols as input, merges them, and outputs [the]
// C3-logic".
//
// A spec describes one protocol in one of two roles:
//
//   - role local: the protocol spoken inside a host cluster. The spec
//     enumerates the cluster directory's view (stable state classes such
//     as I/S/M/O/F), how each core request is served in each class, how a
//     delegated global access (a conceptual load/store/evict crossing the
//     domain boundary, Sec. IV-B of the paper) is realized with native
//     local flows, and protocol parameters (exclusive-clean grants,
//     forwarder tracking, self-invalidation).
//
//   - role global: the protocol spoken between C3 instances and the
//     global directory. The spec names the native flows for acquiring
//     shared/exclusive rights and writing back, the snoop messages and
//     the conceptual access each corresponds to (Table I of the paper),
//     and the race-resolution mechanism (CXL's conflict handshake vs.
//     hierarchical MESI's transient stalling).
//
// Specs are plain text (see the embedded *.ssp constants in specs.go)
// so that new protocols can be added without touching the generator.
package ssp

import (
	"bufio"
	"fmt"
	"strings"
)

// Role distinguishes the two domains a protocol can serve.
type Role uint8

const (
	RoleLocal Role = iota
	RoleGlobal
)

func (r Role) String() string {
	if r == RoleLocal {
		return "local"
	}
	return "global"
}

// Class is a stable-state class in the directory's (or cache's) view.
// Classes abstract over states the directory cannot distinguish: a local
// class "M" covers host E and M because of silent E->M upgrades.
type Class string

// Canonical classes used by the embedded specs.
const (
	ClsI Class = "I"  // no copy
	ClsS Class = "S"  // clean sharer(s)
	ClsE Class = "E"  // exclusive clean (global role)
	ClsM Class = "M"  // exclusive owner, possibly dirty
	ClsO Class = "O"  // dirty owner with possible sharers (MOESI)
	ClsF Class = "F"  // shared with designated forwarder (MESIF)
	ClsN Class = "NT" // untracked (RCC self-invalidation)
)

// Plan is the native local flow used to realize an access (the "Action"
// column of the paper's Table II).
type Plan uint8

const (
	PlanNone       Plan = iota // satisfiable without touching host caches
	PlanInvSharers             // invalidate all sharers
	PlanSnpOwner               // fetch data from owner, downgrade it
	PlanInvOwner               // fetch data from owner, invalidate it
	PlanInvAll                 // invalidate owner and sharers
)

var planNames = map[string]Plan{
	"none": PlanNone, "inv-sharers": PlanInvSharers,
	"snoop-owner": PlanSnpOwner, "inv-owner": PlanInvOwner, "inv-all": PlanInvAll,
}

func (p Plan) String() string {
	for s, v := range planNames {
		if v == p {
			return s
		}
	}
	return fmt.Sprintf("Plan(%d)", uint8(p))
}

// Access is the conceptual cross-domain access (the "X-Access" column of
// Table II): the universal load/store/evict vocabulary both domains
// understand.
type Access uint8

const (
	AccNone Access = iota
	AccLoad
	AccStore
	AccEvict
)

var accessNames = map[string]Access{
	"none": AccNone, "load": AccLoad, "store": AccStore, "evict": AccEvict,
}

func (a Access) String() string {
	for s, v := range accessNames {
		if v == a {
			return s
		}
	}
	return fmt.Sprintf("Access(%d)", uint8(a))
}

// Need is the minimum global right a local request requires (Rule I:
// anything that cannot be satisfied under the current global rights must
// be delegated).
type Need uint8

const (
	NeedNone Need = iota
	NeedS         // any readable right: S/E/M
	NeedM         // exclusive ownership: E/M
)

// Grant is what the directory hands the requesting cache.
type Grant uint8

const (
	GrantNone Grant = iota
	GrantS
	GrantE // exclusive clean (only when global rights permit)
	GrantM
	GrantV // RCC valid copy (no tracking)
)

var grantNames = map[string]Grant{
	"none": GrantNone, "S": GrantS, "E": GrantE, "M": GrantM, "V": GrantV,
}

func (g Grant) String() string {
	for s, v := range grantNames {
		if v == g {
			return s
		}
	}
	return fmt.Sprintf("Grant(%d)", uint8(g))
}

// ReqRule describes how a core request is served in one local class.
type ReqRule struct {
	Req   string // request mnemonic: GetS, GetM, GetV, WrThrough
	Class Class
	Need  Need
	Plan  Plan
	Grant Grant
	Next  Class
}

// SnpRule describes how a delegated global access is realized locally.
type SnpRule struct {
	Access Access
	Class  Class
	Plan   Plan
	Next   Class
}

// EvtRule describes how the CXL-cache reclaim of a line is realized for
// one local class (Fig. 7 of the paper).
type EvtRule struct {
	Class Class
	Plan  Plan
}

// Params are per-protocol knobs the generator and runtime honor.
type Params struct {
	// GrantE: a GetS with no other sharers yields exclusive-clean.
	GrantE bool
	// Forwarder: track a designated forwarder among sharers (MESIF F).
	Forwarder bool
	// OwnerKeepsDirty: a load snoop leaves a dirty owner (MOESI O).
	OwnerKeepsDirty bool
	// SelfInvalidate: RCC-style; host caches are not tracked and
	// synchronize via acquire/release.
	SelfInvalidate bool

	// Global-role knobs.
	// ConflictHandshake: races between a pending request and an incoming
	// snoop resolve via BIConflict/BIConflictAck (CXL). When false the
	// global protocol stalls snoops in transient states (H-MESI).
	ConflictHandshake bool
	// PeerData: data responses may travel peer-to-peer between caches
	// (3-hop H-MESI); CXL routes everything through the directory.
	PeerData bool
	// SilentCleanEvict: clean lines may be dropped without notifying the
	// global directory.
	SilentCleanEvict bool
}

// Spec is one parsed protocol specification.
type Spec struct {
	Name    string
	Role    Role
	Classes []Class
	Params  Params

	// Local-role rules.
	Reqs []ReqRule
	Snps []SnpRule
	Evts []EvtRule

	// Global-role message bindings (mnemonics from the msg package),
	// e.g. AcqS["send"] = "MemRd,S".
	AcqS, AcqM, WB map[string]string
	// SnpBind maps the global snoop mnemonic to its conceptual access
	// (Table I: BISnpData ~ Fwd-GetS ~ load; BISnpInv ~ Fwd-GetM ~ store).
	SnpBind map[string]Access
}

// HasClass reports whether c is declared.
func (s *Spec) HasClass(c Class) bool {
	for _, x := range s.Classes {
		if x == c {
			return true
		}
	}
	return false
}

// ReqRule finds the rule for (req, class); ok is false if undeclared.
func (s *Spec) ReqRule(req string, c Class) (ReqRule, bool) {
	for _, r := range s.Reqs {
		if r.Req == req && r.Class == c {
			return r, true
		}
	}
	return ReqRule{}, false
}

// SnpRule finds the rule for (access, class).
func (s *Spec) SnpRule(a Access, c Class) (SnpRule, bool) {
	for _, r := range s.Snps {
		if r.Access == a && r.Class == c {
			return r, true
		}
	}
	return SnpRule{}, false
}

// EvtRule finds the reclaim rule for class c.
func (s *Spec) EvtRule(c Class) (EvtRule, bool) {
	for _, r := range s.Evts {
		if r.Class == c {
			return r, true
		}
	}
	return EvtRule{}, false
}

// Parse reads a spec from its textual form.
func Parse(text string) (*Spec, error) {
	s := &Spec{
		AcqS: map[string]string{}, AcqM: map[string]string{}, WB: map[string]string{},
		SnpBind: map[string]Access{},
	}
	sc := bufio.NewScanner(strings.NewReader(text))
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		if err := s.parseLine(line); err != nil {
			return nil, fmt.Errorf("ssp: line %d: %w", lineno, err)
		}
	}
	if err := s.validate(); err != nil {
		return nil, fmt.Errorf("ssp: %s: %w", s.Name, err)
	}
	return s, nil
}

// MustParse is Parse for the embedded, test-covered specs.
func MustParse(text string) *Spec {
	s, err := Parse(text)
	if err != nil {
		panic(err)
	}
	return s
}

func kvs(fields []string) (map[string]string, error) {
	m := make(map[string]string, len(fields))
	for _, f := range fields {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			return nil, fmt.Errorf("expected key=value, got %q", f)
		}
		m[k] = v
	}
	return m, nil
}

func (s *Spec) parseLine(line string) error {
	fields := strings.Fields(line)
	switch fields[0] {
	case "protocol":
		if len(fields) != 2 {
			return fmt.Errorf("protocol wants a name")
		}
		s.Name = fields[1]
	case "role":
		switch fields[1] {
		case "local":
			s.Role = RoleLocal
		case "global":
			s.Role = RoleGlobal
		default:
			return fmt.Errorf("unknown role %q", fields[1])
		}
	case "classes":
		for _, c := range fields[1:] {
			s.Classes = append(s.Classes, Class(c))
		}
	case "params":
		m, err := kvs(fields[1:])
		if err != nil {
			return err
		}
		for k, v := range m {
			on := v == "true" || v == "yes"
			switch k {
			case "grantE":
				s.Params.GrantE = on
			case "forwarder":
				s.Params.Forwarder = on
			case "owner-keeps-dirty":
				s.Params.OwnerKeepsDirty = on
			case "self-invalidate":
				s.Params.SelfInvalidate = on
			case "conflict-handshake":
				s.Params.ConflictHandshake = on
			case "peer-data":
				s.Params.PeerData = on
			case "silent-clean-evict":
				s.Params.SilentCleanEvict = on
			default:
				return fmt.Errorf("unknown param %q", k)
			}
		}
	case "req":
		// req GetM S needs=M plan=inv-sharers grant=M next=M
		if len(fields) < 3 {
			return fmt.Errorf("req wants: req NAME CLASS k=v...")
		}
		m, err := kvs(fields[3:])
		if err != nil {
			return err
		}
		r := ReqRule{Req: fields[1], Class: Class(fields[2]), Next: Class(fields[2])}
		switch m["needs"] {
		case "", "none":
		case "S":
			r.Need = NeedS
		case "M":
			r.Need = NeedM
		default:
			return fmt.Errorf("unknown needs %q", m["needs"])
		}
		var ok bool
		if p, has := m["plan"]; has {
			if r.Plan, ok = planNames[p]; !ok {
				return fmt.Errorf("unknown plan %q", p)
			}
		}
		if g, has := m["grant"]; has {
			if r.Grant, ok = grantNames[g]; !ok {
				return fmt.Errorf("unknown grant %q", g)
			}
		}
		if n, has := m["next"]; has {
			r.Next = Class(n)
		}
		s.Reqs = append(s.Reqs, r)
	case "snp":
		// snp store M plan=inv-owner next=I
		if len(fields) < 3 {
			return fmt.Errorf("snp wants: snp ACCESS CLASS k=v...")
		}
		a, ok := accessNames[fields[1]]
		if !ok {
			return fmt.Errorf("unknown access %q", fields[1])
		}
		m, err := kvs(fields[3:])
		if err != nil {
			return err
		}
		r := SnpRule{Access: a, Class: Class(fields[2]), Next: Class(fields[2])}
		if p, has := m["plan"]; has {
			if r.Plan, ok = planNames[p]; !ok {
				return fmt.Errorf("unknown plan %q", p)
			}
		}
		if n, has := m["next"]; has {
			r.Next = Class(n)
		}
		s.Snps = append(s.Snps, r)
	case "evt":
		// evt M plan=inv-owner
		if len(fields) < 2 {
			return fmt.Errorf("evt wants: evt CLASS k=v...")
		}
		m, err := kvs(fields[2:])
		if err != nil {
			return err
		}
		r := EvtRule{Class: Class(fields[1])}
		if p, has := m["plan"]; has {
			var ok bool
			if r.Plan, ok = planNames[p]; !ok {
				return fmt.Errorf("unknown plan %q", p)
			}
		}
		s.Evts = append(s.Evts, r)
	case "acq":
		// acq S send=MemRd,S  /  acq M send=MemRd,A
		m, err := kvs(fields[2:])
		if err != nil {
			return err
		}
		switch fields[1] {
		case "S":
			for k, v := range m {
				s.AcqS[k] = v
			}
		case "M":
			for k, v := range m {
				s.AcqM[k] = v
			}
		default:
			return fmt.Errorf("acq wants S or M")
		}
	case "wb":
		m, err := kvs(fields[1:])
		if err != nil {
			return err
		}
		for k, v := range m {
			s.WB[k] = v
		}
	case "gsnp":
		// gsnp BISnpInv access=store
		m, err := kvs(fields[2:])
		if err != nil {
			return err
		}
		a, ok := accessNames[m["access"]]
		if !ok {
			return fmt.Errorf("gsnp wants access=load|store")
		}
		s.SnpBind[fields[1]] = a
	default:
		return fmt.Errorf("unknown directive %q", fields[0])
	}
	return nil
}

func (s *Spec) validate() error {
	if s.Name == "" {
		return fmt.Errorf("missing protocol name")
	}
	if len(s.Classes) == 0 {
		return fmt.Errorf("no classes declared")
	}
	seen := map[Class]bool{}
	for _, c := range s.Classes {
		if seen[c] {
			return fmt.Errorf("duplicate class %q", c)
		}
		seen[c] = true
	}
	check := func(c Class, ctx string) error {
		if !seen[c] {
			return fmt.Errorf("%s references undeclared class %q", ctx, c)
		}
		return nil
	}
	if s.Role == RoleLocal {
		for _, r := range s.Reqs {
			if err := check(r.Class, "req "+r.Req); err != nil {
				return err
			}
			if err := check(r.Next, "req "+r.Req+" next"); err != nil {
				return err
			}
		}
		for _, r := range s.Snps {
			if err := check(r.Class, "snp"); err != nil {
				return err
			}
			if err := check(r.Next, "snp next"); err != nil {
				return err
			}
		}
		// Completeness: every (load|store) access must have a rule for
		// every class, or the compound FSM would have holes.
		for _, a := range []Access{AccLoad, AccStore} {
			for _, c := range s.Classes {
				if _, ok := s.SnpRule(a, c); !ok {
					return fmt.Errorf("missing snp rule for %v in class %v", a, c)
				}
			}
		}
		for _, c := range s.Classes {
			if _, ok := s.EvtRule(c); !ok {
				return fmt.Errorf("missing evt rule for class %v", c)
			}
		}
	} else {
		if len(s.AcqS) == 0 || len(s.AcqM) == 0 || len(s.WB) == 0 {
			return fmt.Errorf("global spec needs acq S, acq M and wb bindings")
		}
		if len(s.SnpBind) == 0 {
			return fmt.Errorf("global spec declares no snoops")
		}
	}
	return nil
}
