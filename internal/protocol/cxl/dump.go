package cxl

import (
	"fmt"
	"io"
	"sort"

	"c3/internal/mem"
)

// DumpState writes a canonical rendering for model-checker hashing.
func (d *DCOH) DumpState(w io.Writer) {
	fmt.Fprint(w, "DCOH")
	var lines []mem.LineAddr
	for a := range d.lines {
		lines = append(lines, a)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	for _, a := range lines {
		l := d.lines[a]
		var sh []int
		for h := range l.sharers {
			sh = append(sh, int(h))
		}
		sort.Ints(sh)
		fmt.Fprintf(w, "%x:%d:%d:%v", uint64(a), l.state, l.owner, sh)
		if l.cur != nil {
			var pend []int
			for h := range l.cur.pending {
				pend = append(pend, int(h))
			}
			sort.Ints(pend)
			fmt.Fprintf(w, ":tx%d:%v:%v", l.cur.req.Src, pend, l.cur.dirty)
		}
		fmt.Fprintf(w, ":q%d;", len(l.queue))
	}
	fmt.Fprintln(w)
}
