package cxl

import (
	"fmt"
	"io"
	"sort"

	"c3/internal/mem"
)

// DumpState writes a canonical rendering for model-checker hashing.
// NodeSet vectors render in ascending id order, like the sorted int
// slices the pre-NodeSet code produced.
func (d *DCOH) DumpState(w io.Writer) {
	fmt.Fprint(w, "DCOH")
	var lines []mem.LineAddr
	for a := range d.lines {
		lines = append(lines, a)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	for _, a := range lines {
		l := d.lines[a]
		fmt.Fprintf(w, "%x:%d:%d:%v", uint64(a), l.state, l.owner, l.sharers)
		if l.cur != nil {
			fmt.Fprintf(w, ":tx%d:%v:%v", l.cur.req.Src, l.cur.pending, l.cur.dirty)
		}
		fmt.Fprintf(w, ":q%d;", len(l.queue))
	}
	fmt.Fprintln(w)
}
