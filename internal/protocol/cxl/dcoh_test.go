package cxl

import (
	"testing"

	"c3/internal/mem"
	"c3/internal/msg"
	"c3/internal/network"
	"c3/internal/sim"
)

// scriptHost is a minimal CXL host endpoint for driving the DCOH.
type scriptHost struct {
	id  msg.NodeID
	k   *sim.Kernel
	net *network.Network
	got []*msg.Msg
	// autoRsp answers snoops automatically when set.
	autoRsp func(h *scriptHost, m *msg.Msg)
	// onCmpWr runs when a CmpWr arrives (for staged WB-then-respond).
	onCmpWr func(h *scriptHost, m *msg.Msg)
}

func (h *scriptHost) Recv(m *msg.Msg) {
	h.got = append(h.got, m)
	if h.autoRsp != nil && (m.Type == msg.BISnpInv || m.Type == msg.BISnpData) {
		h.autoRsp(h, m)
	}
	if h.onCmpWr != nil && m.Type == msg.CmpWr {
		h.onCmpWr(h, m)
	}
}

func (h *scriptHost) send(m *msg.Msg) {
	m.Src = h.id
	h.net.Send(m)
}

func (h *scriptHost) last(t *testing.T, want msg.Type) *msg.Msg {
	t.Helper()
	if len(h.got) == 0 {
		t.Fatalf("host %d: no messages, want %v", h.id, want)
	}
	m := h.got[len(h.got)-1]
	if m.Type != want {
		t.Fatalf("host %d: last = %v, want %v", h.id, m, want)
	}
	return m
}

func setup(t *testing.T) (*sim.Kernel, *network.Network, *DCOH, *scriptHost, *scriptHost) {
	t.Helper()
	k := &sim.Kernel{}
	net := network.New(k, 7)
	dram := mem.NewDRAM(k, mem.DefaultDRAMConfig())
	d := New(100, k, net, dram)
	h1 := &scriptHost{id: 1, k: k, net: net}
	h2 := &scriptHost{id: 2, k: k, net: net}
	net.Register(100, d)
	net.Register(1, h1)
	net.Register(2, h2)
	net.Connect(1, 100, network.CrossCluster())
	net.Connect(2, 100, network.CrossCluster())
	return k, net, d, h1, h2
}

const lineA = mem.LineAddr(0x1000)

func TestColdReadGrantsExclusive(t *testing.T) {
	k, _, d, h1, _ := setup(t)
	var v mem.Data
	v.SetWord(0, 77)
	d.DRAM().Poke(lineA, v)

	h1.send(&msg.Msg{Type: msg.MemRdS, Addr: lineA, Dst: 100, VNet: msg.VReq})
	k.Run(nil)
	m := h1.last(t, msg.CmpE)
	if m.Data.Word(0) != 77 {
		t.Fatalf("CmpE data = %d, want 77", m.Data.Word(0))
	}
	st, owner, _ := d.StateOf(lineA)
	if st != "E" || owner != 1 {
		t.Fatalf("dir state = %s owner %d, want E owner 1", st, owner)
	}
}

func TestColdRdAGrantsM(t *testing.T) {
	k, _, d, h1, _ := setup(t)
	h1.send(&msg.Msg{Type: msg.MemRdA, Addr: lineA, Dst: 100, VNet: msg.VReq})
	k.Run(nil)
	h1.last(t, msg.CmpM)
	st, owner, _ := d.StateOf(lineA)
	if st != "M" || owner != 1 {
		t.Fatalf("dir state = %s owner %d, want M owner 1", st, owner)
	}
}

func TestSecondReaderSharesViaSnoop(t *testing.T) {
	k, _, d, h1, h2 := setup(t)
	// h1 takes exclusive; it answers the BISnpData with the paper's
	// 6-message dirty flow: CXL WB (MemWr,S) first, wait for CmpWr, and
	// only then send the snoop response — WB travels on the unordered
	// request channel, so responding early would race it.
	h1.autoRsp = func(h *scriptHost, m *msg.Msg) {
		var dd mem.Data
		dd.SetWord(0, 42)
		h.send(&msg.Msg{Type: msg.MemWrS, Addr: m.Addr, Dst: 100, VNet: msg.VReq,
			Data: msg.WithData(dd), Dirty: true})
	}
	h1.onCmpWr = func(h *scriptHost, m *msg.Msg) {
		h.send(&msg.Msg{Type: msg.BISnpRspS, Addr: m.Addr, Dst: 100, VNet: msg.VRsp})
	}
	h1.send(&msg.Msg{Type: msg.MemRdA, Addr: lineA, Dst: 100, VNet: msg.VReq})
	k.Run(nil)
	h1.last(t, msg.CmpM)

	h2.send(&msg.Msg{Type: msg.MemRdS, Addr: lineA, Dst: 100, VNet: msg.VReq})
	k.Run(nil)
	m := h2.last(t, msg.CmpS)
	if m.Data.Word(0) != 42 {
		t.Fatalf("reader got %d, want 42 (dirty data via CXL WB)", m.Data.Word(0))
	}
	st, _, sharers := d.StateOf(lineA)
	if st != "S" || len(sharers) != 2 {
		t.Fatalf("dir = %s %v, want S with 2 sharers", st, sharers)
	}
	if peekWord(d, lineA, 0) != 42 {
		t.Fatal("device memory not updated by CXL WB")
	}
}

func TestWriterInvalidatesSharers(t *testing.T) {
	k, _, d, h1, h2 := setup(t)
	h1.autoRsp = func(h *scriptHost, m *msg.Msg) {
		h.send(&msg.Msg{Type: msg.BISnpRspI, Addr: m.Addr, Dst: 100, VNet: msg.VRsp})
	}
	// Both hosts read (h1 first gets E, downgrades on h2's read).
	h1.send(&msg.Msg{Type: msg.MemRdS, Addr: lineA, Dst: 100, VNet: msg.VReq})
	k.Run(nil)
	h2.send(&msg.Msg{Type: msg.MemRdS, Addr: lineA, Dst: 100, VNet: msg.VReq})
	k.Run(nil)
	h2.last(t, msg.CmpS)

	// Now h2 wants ownership: h1 must be snooped.
	h2.send(&msg.Msg{Type: msg.MemRdA, Addr: lineA, Dst: 100, VNet: msg.VReq})
	k.Run(nil)
	h2.last(t, msg.CmpM)
	st, owner, _ := d.StateOf(lineA)
	if st != "M" || owner != 2 {
		t.Fatalf("dir = %s owner %d, want M owner 2", st, owner)
	}
	saw := false
	for _, m := range h1.got {
		if m.Type == msg.BISnpInv {
			saw = true
		}
	}
	if !saw {
		t.Fatal("h1 never snooped")
	}
}

func TestDirtyEvictionWriteback(t *testing.T) {
	k, _, d, h1, _ := setup(t)
	h1.send(&msg.Msg{Type: msg.MemRdA, Addr: lineA, Dst: 100, VNet: msg.VReq})
	k.Run(nil)
	var v mem.Data
	v.SetWord(3, 9)
	h1.send(&msg.Msg{Type: msg.MemWrI, Addr: lineA, Dst: 100, VNet: msg.VReq,
		Data: msg.WithData(v), Dirty: true})
	k.Run(nil)
	h1.last(t, msg.CmpWr)
	st, _, _ := d.StateOf(lineA)
	if st != "I" {
		t.Fatalf("dir = %s after MemWrI, want I", st)
	}
	if peekWord(d, lineA, 3) != 9 {
		t.Fatal("writeback data lost")
	}
}

func TestStaleWritebackDropped(t *testing.T) {
	k, _, d, h1, _ := setup(t)
	var v mem.Data
	v.SetWord(0, 5)
	d.DRAM().Poke(lineA, v)
	// h1 never owned the line; its MemWrI must be acked but ignored.
	var stale mem.Data
	stale.SetWord(0, 99)
	h1.send(&msg.Msg{Type: msg.MemWrI, Addr: lineA, Dst: 100, VNet: msg.VReq,
		Data: msg.WithData(stale), Dirty: true})
	k.Run(nil)
	h1.last(t, msg.CmpWr)
	if peekWord(d, lineA, 0) != 5 {
		t.Fatal("stale writeback clobbered memory")
	}
}

func TestConflictAckImmediateEvenWhenBusy(t *testing.T) {
	k, _, d, h1, h2 := setup(t)
	// h1 owns; h2 requests ownership; h1 withholds its snoop response so
	// the line stays busy, then sends BIConflict.
	h1.send(&msg.Msg{Type: msg.MemRdA, Addr: lineA, Dst: 100, VNet: msg.VReq})
	k.Run(nil)
	h2.send(&msg.Msg{Type: msg.MemRdA, Addr: lineA, Dst: 100, VNet: msg.VReq})
	k.Run(nil) // h1 now holds an unanswered BISnpInv; line busy
	if !d.Busy(lineA) {
		t.Fatal("line should be busy awaiting snoop response")
	}
	h1.send(&msg.Msg{Type: msg.BIConflict, Addr: lineA, Dst: 100, VNet: msg.VReq})
	k.Run(nil)
	h1.last(t, msg.BIConflictAck)
	if d.Stats.Conflicts != 1 {
		t.Fatalf("Conflicts = %d, want 1", d.Stats.Conflicts)
	}
}

func TestRequestsQueueBehindBusyLine(t *testing.T) {
	k, _, d, h1, h2 := setup(t)
	h1.autoRsp = func(h *scriptHost, m *msg.Msg) {
		// Delay the response to widen the busy window.
		h.k.After(500, func() {
			h.send(&msg.Msg{Type: msg.BISnpRspI, Addr: m.Addr, Dst: 100, VNet: msg.VRsp})
		})
	}
	h1.send(&msg.Msg{Type: msg.MemRdA, Addr: lineA, Dst: 100, VNet: msg.VReq})
	k.Run(nil)
	// Two racing requests from h2: the second queues.
	h2.send(&msg.Msg{Type: msg.MemRdA, Addr: lineA, Dst: 100, VNet: msg.VReq})
	h2.send(&msg.Msg{Type: msg.MemRdS, Addr: lineA, Dst: 100, VNet: msg.VReq})
	k.Run(nil)
	if d.Stats.Stalls == 0 {
		t.Fatal("expected at least one stalled request")
	}
	// Both must eventually complete: CmpM then CmpS/CmpE.
	var types []msg.Type
	for _, m := range h2.got {
		types = append(types, m.Type)
	}
	foundM := false
	for _, ty := range types {
		if ty == msg.CmpM {
			foundM = true
		}
	}
	if !foundM {
		t.Fatalf("h2 responses %v missing CmpM", types)
	}
}

func TestSnoopMissFallsBackToMemory(t *testing.T) {
	k, _, d, h1, h2 := setup(t)
	var v mem.Data
	v.SetWord(0, 31)
	d.DRAM().Poke(lineA, v)
	// h1 takes E then silently drops; it answers the snoop with a clean
	// miss (no data).
	h1.autoRsp = func(h *scriptHost, m *msg.Msg) {
		h.send(&msg.Msg{Type: msg.BISnpRspI, Addr: m.Addr, Dst: 100, VNet: msg.VRsp})
	}
	h1.send(&msg.Msg{Type: msg.MemRdS, Addr: lineA, Dst: 100, VNet: msg.VReq})
	k.Run(nil)
	h1.last(t, msg.CmpE)

	h2.send(&msg.Msg{Type: msg.MemRdS, Addr: lineA, Dst: 100, VNet: msg.VReq})
	k.Run(nil)
	m := h2.last(t, msg.CmpS)
	if m.Data.Word(0) != 31 {
		t.Fatalf("fallback read got %d, want 31", m.Data.Word(0))
	}
}

func peekWord(d *DCOH, a mem.LineAddr, w int) uint64 {
	v := d.DRAM().Peek(a)
	return v.Word(w)
}

// --- host-crash reclamation ---

func TestReclaimExclusiveOwnerPoisons(t *testing.T) {
	k, _, d, h1, h2 := setup(t)
	h1.send(&msg.Msg{Type: msg.MemRdA, Addr: lineA, Dst: 100, VNet: msg.VReq})
	k.Run(nil)
	h1.last(t, msg.CmpM)

	rec := d.ReclaimHost(1)
	k.Run(nil)
	if rec.Reclaimed == 0 {
		t.Fatalf("Reclaim = %+v: the M owner was not scrubbed", rec)
	}
	if rec.Poisoned != 1 || len(rec.PoisonedLines) != 1 || rec.PoisonedLines[0] != lineA {
		t.Fatalf("Reclaim = %+v: the dead owner's M line must poison", rec)
	}
	if !d.PoisonedLine(lineA) {
		t.Fatal("PoisonedLine lost the record")
	}
	if d.ReferencesHost(1) {
		t.Fatal("isolation invariant: directory still names the dead host")
	}
	st, owner, _ := d.StateOf(lineA)
	if st != "I" || owner != msg.None {
		t.Fatalf("post-reclaim state %s/%d, want I/none", st, owner)
	}

	// A surviving reader still gets a grant — flagged poisoned, with
	// whatever stale bytes device memory holds.
	h2.send(&msg.Msg{Type: msg.MemRdS, Addr: lineA, Dst: 100, VNet: msg.VReq})
	k.Run(nil)
	if m := h2.last(t, msg.CmpE); !m.Poisoned {
		t.Fatal("grant of a crash-lost line must carry the poison flag")
	}
}

func TestReclaimSharerScrubbedNoPoison(t *testing.T) {
	k, _, d, h1, h2 := setup(t)
	var v mem.Data
	v.SetWord(0, 7)
	d.DRAM().Poke(lineA, v)
	h1.send(&msg.Msg{Type: msg.MemRdS, Addr: lineA, Dst: 100, VNet: msg.VReq})
	k.Run(nil)
	// h1 holds E-clean; it answers h2's snoop by downgrading to sharer.
	h1.autoRsp = func(h *scriptHost, m *msg.Msg) {
		h.send(&msg.Msg{Type: msg.BISnpRspS, Addr: m.Addr, Dst: 100, VNet: msg.VRsp})
	}
	h2.send(&msg.Msg{Type: msg.MemRdS, Addr: lineA, Dst: 100, VNet: msg.VReq})
	k.Run(nil)
	h2.last(t, msg.CmpS)

	rec := d.ReclaimHost(1)
	k.Run(nil)
	if rec.Reclaimed == 0 || rec.Poisoned != 0 {
		t.Fatalf("Reclaim = %+v: want sharer scrub, no poison (h2 still holds a copy)", rec)
	}
	if d.ReferencesHost(1) {
		t.Fatal("isolation invariant: dead sharer still recorded")
	}
	// The surviving copy stays readable and clean.
	if d.PoisonedLine(lineA) {
		t.Fatal("a shared-clean line must not poison when one sharer dies")
	}
}

func TestReclaimUnblocksWaiterOnDeadOwner(t *testing.T) {
	k, _, d, h1, h2 := setup(t)
	h1.send(&msg.Msg{Type: msg.MemRdA, Addr: lineA, Dst: 100, VNet: msg.VReq})
	k.Run(nil)
	h1.last(t, msg.CmpM)

	// h1 never answers snoops (it is about to be declared dead); h2's
	// read wedges with a pending snoop to h1.
	h2.send(&msg.Msg{Type: msg.MemRdS, Addr: lineA, Dst: 100, VNet: msg.VReq})
	k.Run(nil)
	if !d.Busy(lineA) {
		t.Fatal("scenario broken: h2's read should be blocked on h1's snoop")
	}

	rec := d.ReclaimHost(1)
	k.Run(nil)
	if rec.Poisoned != 1 {
		t.Fatalf("Reclaim = %+v: owner died with the only copy", rec)
	}
	// The waiter must complete rather than hang — with the poison flag.
	if m := h2.last(t, msg.CmpE); !m.Poisoned {
		t.Fatal("unblocked waiter's grant must be poisoned")
	}
	if d.Busy(lineA) {
		t.Fatal("transaction still open after reclamation")
	}
	if d.ReferencesHost(1) {
		t.Fatal("isolation invariant violated after unblock")
	}
}

func TestReclaimAbortsDeadRequestor(t *testing.T) {
	k, _, d, h1, h2 := setup(t)
	var v mem.Data
	v.SetWord(0, 3)
	d.DRAM().Poke(lineA, v)
	h2.send(&msg.Msg{Type: msg.MemRdS, Addr: lineA, Dst: 100, VNet: msg.VReq})
	k.Run(nil)
	h2.last(t, msg.CmpE)

	// h1 requests the line h2 owns; h2 stays silent so the transaction is
	// in flight when h1 dies.
	h1.send(&msg.Msg{Type: msg.MemRdS, Addr: lineA, Dst: 100, VNet: msg.VReq})
	k.Run(nil)
	rec := d.ReclaimHost(1)
	// h2's snoop response arrives after the declaration.
	h2.send(&msg.Msg{Type: msg.BISnpRspS, Addr: lineA, Dst: 100, VNet: msg.VRsp})
	k.Run(nil)
	if rec.NAKed != 1 {
		t.Fatalf("Reclaim = %+v: the dead requestor's transaction must be NAKed", rec)
	}
	if d.Busy(lineA) {
		t.Fatal("aborted transaction still open")
	}
	if d.ReferencesHost(1) {
		t.Fatal("isolation invariant: aborted requestor still recorded")
	}
	// Nothing was lost: h2 kept its copy, no poison.
	if d.PoisonedLine(lineA) {
		t.Fatal("aborting a dead requestor must not poison the line")
	}
}

func TestReviveHostReadmitsCold(t *testing.T) {
	k, _, d, h1, _ := setup(t)
	h1.send(&msg.Msg{Type: msg.MemRdA, Addr: lineA, Dst: 100, VNet: msg.VReq})
	k.Run(nil)
	d.ReclaimHost(1)
	k.Run(nil)
	// Dead host's messages are dropped...
	h1.got = nil
	h1.send(&msg.Msg{Type: msg.MemRdS, Addr: lineA, Dst: 100, VNet: msg.VReq})
	k.Run(nil)
	if len(h1.got) != 0 {
		t.Fatalf("dead host got %v", h1.got)
	}
	// ...until revived; then it reads again (poison is sticky).
	d.ReviveHost(1)
	h1.send(&msg.Msg{Type: msg.MemRdS, Addr: lineA, Dst: 100, VNet: msg.VReq})
	k.Run(nil)
	if m := h1.last(t, msg.CmpE); !m.Poisoned {
		t.Fatal("revived host must still see sticky poison")
	}
}
