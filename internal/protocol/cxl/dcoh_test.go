package cxl

import (
	"testing"

	"c3/internal/mem"
	"c3/internal/msg"
	"c3/internal/network"
	"c3/internal/sim"
)

// scriptHost is a minimal CXL host endpoint for driving the DCOH.
type scriptHost struct {
	id  msg.NodeID
	k   *sim.Kernel
	net *network.Network
	got []*msg.Msg
	// autoRsp answers snoops automatically when set.
	autoRsp func(h *scriptHost, m *msg.Msg)
	// onCmpWr runs when a CmpWr arrives (for staged WB-then-respond).
	onCmpWr func(h *scriptHost, m *msg.Msg)
}

func (h *scriptHost) Recv(m *msg.Msg) {
	h.got = append(h.got, m)
	if h.autoRsp != nil && (m.Type == msg.BISnpInv || m.Type == msg.BISnpData) {
		h.autoRsp(h, m)
	}
	if h.onCmpWr != nil && m.Type == msg.CmpWr {
		h.onCmpWr(h, m)
	}
}

func (h *scriptHost) send(m *msg.Msg) {
	m.Src = h.id
	h.net.Send(m)
}

func (h *scriptHost) last(t *testing.T, want msg.Type) *msg.Msg {
	t.Helper()
	if len(h.got) == 0 {
		t.Fatalf("host %d: no messages, want %v", h.id, want)
	}
	m := h.got[len(h.got)-1]
	if m.Type != want {
		t.Fatalf("host %d: last = %v, want %v", h.id, m, want)
	}
	return m
}

func setup(t *testing.T) (*sim.Kernel, *network.Network, *DCOH, *scriptHost, *scriptHost) {
	t.Helper()
	k := &sim.Kernel{}
	net := network.New(k, 7)
	dram := mem.NewDRAM(k, mem.DefaultDRAMConfig())
	d := New(100, k, net, dram)
	h1 := &scriptHost{id: 1, k: k, net: net}
	h2 := &scriptHost{id: 2, k: k, net: net}
	net.Register(100, d)
	net.Register(1, h1)
	net.Register(2, h2)
	net.Connect(1, 100, network.CrossCluster())
	net.Connect(2, 100, network.CrossCluster())
	return k, net, d, h1, h2
}

const lineA = mem.LineAddr(0x1000)

func TestColdReadGrantsExclusive(t *testing.T) {
	k, _, d, h1, _ := setup(t)
	var v mem.Data
	v.SetWord(0, 77)
	d.DRAM().Poke(lineA, v)

	h1.send(&msg.Msg{Type: msg.MemRdS, Addr: lineA, Dst: 100, VNet: msg.VReq})
	k.Run(nil)
	m := h1.last(t, msg.CmpE)
	if m.Data.Word(0) != 77 {
		t.Fatalf("CmpE data = %d, want 77", m.Data.Word(0))
	}
	st, owner, _ := d.StateOf(lineA)
	if st != "E" || owner != 1 {
		t.Fatalf("dir state = %s owner %d, want E owner 1", st, owner)
	}
}

func TestColdRdAGrantsM(t *testing.T) {
	k, _, d, h1, _ := setup(t)
	h1.send(&msg.Msg{Type: msg.MemRdA, Addr: lineA, Dst: 100, VNet: msg.VReq})
	k.Run(nil)
	h1.last(t, msg.CmpM)
	st, owner, _ := d.StateOf(lineA)
	if st != "M" || owner != 1 {
		t.Fatalf("dir state = %s owner %d, want M owner 1", st, owner)
	}
}

func TestSecondReaderSharesViaSnoop(t *testing.T) {
	k, _, d, h1, h2 := setup(t)
	// h1 takes exclusive; it answers the BISnpData with the paper's
	// 6-message dirty flow: CXL WB (MemWr,S) first, wait for CmpWr, and
	// only then send the snoop response — WB travels on the unordered
	// request channel, so responding early would race it.
	h1.autoRsp = func(h *scriptHost, m *msg.Msg) {
		var dd mem.Data
		dd.SetWord(0, 42)
		h.send(&msg.Msg{Type: msg.MemWrS, Addr: m.Addr, Dst: 100, VNet: msg.VReq,
			Data: msg.WithData(dd), Dirty: true})
	}
	h1.onCmpWr = func(h *scriptHost, m *msg.Msg) {
		h.send(&msg.Msg{Type: msg.BISnpRspS, Addr: m.Addr, Dst: 100, VNet: msg.VRsp})
	}
	h1.send(&msg.Msg{Type: msg.MemRdA, Addr: lineA, Dst: 100, VNet: msg.VReq})
	k.Run(nil)
	h1.last(t, msg.CmpM)

	h2.send(&msg.Msg{Type: msg.MemRdS, Addr: lineA, Dst: 100, VNet: msg.VReq})
	k.Run(nil)
	m := h2.last(t, msg.CmpS)
	if m.Data.Word(0) != 42 {
		t.Fatalf("reader got %d, want 42 (dirty data via CXL WB)", m.Data.Word(0))
	}
	st, _, sharers := d.StateOf(lineA)
	if st != "S" || len(sharers) != 2 {
		t.Fatalf("dir = %s %v, want S with 2 sharers", st, sharers)
	}
	if peekWord(d, lineA, 0) != 42 {
		t.Fatal("device memory not updated by CXL WB")
	}
}

func TestWriterInvalidatesSharers(t *testing.T) {
	k, _, d, h1, h2 := setup(t)
	h1.autoRsp = func(h *scriptHost, m *msg.Msg) {
		h.send(&msg.Msg{Type: msg.BISnpRspI, Addr: m.Addr, Dst: 100, VNet: msg.VRsp})
	}
	// Both hosts read (h1 first gets E, downgrades on h2's read).
	h1.send(&msg.Msg{Type: msg.MemRdS, Addr: lineA, Dst: 100, VNet: msg.VReq})
	k.Run(nil)
	h2.send(&msg.Msg{Type: msg.MemRdS, Addr: lineA, Dst: 100, VNet: msg.VReq})
	k.Run(nil)
	h2.last(t, msg.CmpS)

	// Now h2 wants ownership: h1 must be snooped.
	h2.send(&msg.Msg{Type: msg.MemRdA, Addr: lineA, Dst: 100, VNet: msg.VReq})
	k.Run(nil)
	h2.last(t, msg.CmpM)
	st, owner, _ := d.StateOf(lineA)
	if st != "M" || owner != 2 {
		t.Fatalf("dir = %s owner %d, want M owner 2", st, owner)
	}
	saw := false
	for _, m := range h1.got {
		if m.Type == msg.BISnpInv {
			saw = true
		}
	}
	if !saw {
		t.Fatal("h1 never snooped")
	}
}

func TestDirtyEvictionWriteback(t *testing.T) {
	k, _, d, h1, _ := setup(t)
	h1.send(&msg.Msg{Type: msg.MemRdA, Addr: lineA, Dst: 100, VNet: msg.VReq})
	k.Run(nil)
	var v mem.Data
	v.SetWord(3, 9)
	h1.send(&msg.Msg{Type: msg.MemWrI, Addr: lineA, Dst: 100, VNet: msg.VReq,
		Data: msg.WithData(v), Dirty: true})
	k.Run(nil)
	h1.last(t, msg.CmpWr)
	st, _, _ := d.StateOf(lineA)
	if st != "I" {
		t.Fatalf("dir = %s after MemWrI, want I", st)
	}
	if peekWord(d, lineA, 3) != 9 {
		t.Fatal("writeback data lost")
	}
}

func TestStaleWritebackDropped(t *testing.T) {
	k, _, d, h1, _ := setup(t)
	var v mem.Data
	v.SetWord(0, 5)
	d.DRAM().Poke(lineA, v)
	// h1 never owned the line; its MemWrI must be acked but ignored.
	var stale mem.Data
	stale.SetWord(0, 99)
	h1.send(&msg.Msg{Type: msg.MemWrI, Addr: lineA, Dst: 100, VNet: msg.VReq,
		Data: msg.WithData(stale), Dirty: true})
	k.Run(nil)
	h1.last(t, msg.CmpWr)
	if peekWord(d, lineA, 0) != 5 {
		t.Fatal("stale writeback clobbered memory")
	}
}

func TestConflictAckImmediateEvenWhenBusy(t *testing.T) {
	k, _, d, h1, h2 := setup(t)
	// h1 owns; h2 requests ownership; h1 withholds its snoop response so
	// the line stays busy, then sends BIConflict.
	h1.send(&msg.Msg{Type: msg.MemRdA, Addr: lineA, Dst: 100, VNet: msg.VReq})
	k.Run(nil)
	h2.send(&msg.Msg{Type: msg.MemRdA, Addr: lineA, Dst: 100, VNet: msg.VReq})
	k.Run(nil) // h1 now holds an unanswered BISnpInv; line busy
	if !d.Busy(lineA) {
		t.Fatal("line should be busy awaiting snoop response")
	}
	h1.send(&msg.Msg{Type: msg.BIConflict, Addr: lineA, Dst: 100, VNet: msg.VReq})
	k.Run(nil)
	h1.last(t, msg.BIConflictAck)
	if d.Stats.Conflicts != 1 {
		t.Fatalf("Conflicts = %d, want 1", d.Stats.Conflicts)
	}
}

func TestRequestsQueueBehindBusyLine(t *testing.T) {
	k, _, d, h1, h2 := setup(t)
	h1.autoRsp = func(h *scriptHost, m *msg.Msg) {
		// Delay the response to widen the busy window.
		h.k.After(500, func() {
			h.send(&msg.Msg{Type: msg.BISnpRspI, Addr: m.Addr, Dst: 100, VNet: msg.VRsp})
		})
	}
	h1.send(&msg.Msg{Type: msg.MemRdA, Addr: lineA, Dst: 100, VNet: msg.VReq})
	k.Run(nil)
	// Two racing requests from h2: the second queues.
	h2.send(&msg.Msg{Type: msg.MemRdA, Addr: lineA, Dst: 100, VNet: msg.VReq})
	h2.send(&msg.Msg{Type: msg.MemRdS, Addr: lineA, Dst: 100, VNet: msg.VReq})
	k.Run(nil)
	if d.Stats.Stalls == 0 {
		t.Fatal("expected at least one stalled request")
	}
	// Both must eventually complete: CmpM then CmpS/CmpE.
	var types []msg.Type
	for _, m := range h2.got {
		types = append(types, m.Type)
	}
	foundM := false
	for _, ty := range types {
		if ty == msg.CmpM {
			foundM = true
		}
	}
	if !foundM {
		t.Fatalf("h2 responses %v missing CmpM", types)
	}
}

func TestSnoopMissFallsBackToMemory(t *testing.T) {
	k, _, d, h1, h2 := setup(t)
	var v mem.Data
	v.SetWord(0, 31)
	d.DRAM().Poke(lineA, v)
	// h1 takes E then silently drops; it answers the snoop with a clean
	// miss (no data).
	h1.autoRsp = func(h *scriptHost, m *msg.Msg) {
		h.send(&msg.Msg{Type: msg.BISnpRspI, Addr: m.Addr, Dst: 100, VNet: msg.VRsp})
	}
	h1.send(&msg.Msg{Type: msg.MemRdS, Addr: lineA, Dst: 100, VNet: msg.VReq})
	k.Run(nil)
	h1.last(t, msg.CmpE)

	h2.send(&msg.Msg{Type: msg.MemRdS, Addr: lineA, Dst: 100, VNet: msg.VReq})
	k.Run(nil)
	m := h2.last(t, msg.CmpS)
	if m.Data.Word(0) != 31 {
		t.Fatalf("fallback read got %d, want 31", m.Data.Word(0))
	}
}

func peekWord(d *DCOH, a mem.LineAddr, w int) uint64 {
	v := d.DRAM().Peek(a)
	return v.Word(w)
}
