// Package cxl implements the CXL.mem 3.0 device coherency engine (DCOH):
// the global directory that lives on the multi-headed memory device and
// keeps the C3 instances of all hosts coherent.
//
// The DCOH realizes the protocol properties the paper attributes to CXL
// and measures in Fig. 11:
//
//   - per-line *blocking* transactions: while a MemRd is being serviced
//     (including its back-invalidation snoops) all other requests to the
//     line queue — the "convoy effect";
//   - device-initiated snoops (BISnpInv/BISnpData) with the 6-message
//     dirty-owner flow: the snooped host writes back via MemWr before its
//     BISnpRsp (Fig. 2, "CXL WB"), versus 4 messages when clean;
//   - the BIConflict/BIConflictAck handshake: answered immediately and
//     unconditionally on the FIFO response channel, so a host can decode
//     the directory's serialization order from the Cmp/Ack arrival order;
//   - tolerance of silent clean evictions: a snooped host that no longer
//     holds the line answers with a clean miss and the DCOH falls back to
//     device memory.
package cxl

import (
	"fmt"
	"sort"

	"c3/internal/mem"
	"c3/internal/msg"
	"c3/internal/network"
	"c3/internal/sim"
	"c3/internal/trace"
)

// Directory states for one line.
const (
	dI = iota
	dS
	dE
	dM
)

func dname(s int) string { return [...]string{"I", "S", "E", "M"}[s] }

type tx struct {
	req     *msg.Msg    // request being serviced
	pending msg.NodeSet // hosts whose snoop responses are due
	data    mem.Data    // dirty data collected from responses
	dirty   bool
	keptS   msg.NodeSet // snooped hosts that retained a shared copy
	// aborted marks a transaction whose requestor died: outstanding snoop
	// responses are still collected (and dirty data committed), but no
	// completion is granted — the NAK half of host isolation.
	aborted bool
}

type dline struct {
	state   int
	owner   msg.NodeID
	sharers msg.NodeSet
	cur     *tx
	queue   []*msg.Msg
}

// Stats aggregates DCOH telemetry.
type Stats struct {
	Reads, Writes uint64 // MemRd*, MemWr* processed
	Snoops        uint64 // BISnp* issued
	Conflicts     uint64 // BIConflict handshakes answered
	Stalls        uint64 // requests queued behind a busy line
}

// DCOH is the device coherency engine.
type DCOH struct {
	id   msg.NodeID
	k    *sim.Kernel
	net  network.Fabric
	dram *mem.DRAM
	// Lat is the controller occupancy added to each outgoing message.
	Lat sim.Time

	lines map[mem.LineAddr]*dline

	// dead is the set of isolated (crashed) hosts; late messages from
	// them are dropped instead of panicking the FSM. poisoned marks lines
	// whose only copy died with a host — grants carry msg.Poisoned from
	// then on (sticky: a lost line stays flagged, the CXL data-poison
	// contract).
	dead     msg.NodeSet
	poisoned map[mem.LineAddr]bool

	// Tracer, when non-nil, observes directory state transitions.
	Tracer *trace.Tracer

	Stats Stats
}

// traceState emits a directory transition. Callers guard on d.Tracer.
func (d *DCOH) traceState(a mem.LineAddr, old int, note string) {
	l := d.lines[a]
	new := dI
	if l != nil {
		new = l.state
	}
	d.Tracer.State(d.k.Now(), d.id, a, dname(old), dname(new), note)
}

// New builds a DCOH with its backing device memory.
func New(id msg.NodeID, k *sim.Kernel, net network.Fabric, dram *mem.DRAM) *DCOH {
	return &DCOH{id: id, k: k, net: net, dram: dram, Lat: 4,
		lines:    make(map[mem.LineAddr]*dline),
		poisoned: make(map[mem.LineAddr]bool)}
}

// ID returns the DCOH's network id.
func (d *DCOH) ID() msg.NodeID { return d.id }

// DRAM exposes the device memory for initialization and checks.
func (d *DCOH) DRAM() *mem.DRAM { return d.dram }

func (d *DCOH) line(a mem.LineAddr) *dline {
	l := d.lines[a]
	if l == nil {
		l = &dline{state: dI, owner: msg.None}
		d.lines[a] = l
	}
	return l
}

func (d *DCOH) send(m *msg.Msg) {
	m.Src = d.id
	d.k.After(d.Lat, func() { d.net.Send(m) })
}

// Recv implements network.Port.
func (d *DCOH) Recv(m *msg.Msg) {
	if d.dead.Has(m.Src) {
		// A message from an isolated host (delivered in the same tick the
		// crash landed): host isolation already reclaimed its state, so
		// the message is stale by definition.
		return
	}
	switch m.Type {
	case msg.BIConflict:
		// Answered immediately, even for busy lines: the FIFO response
		// channel makes the ack's position meaningful.
		d.Stats.Conflicts++
		d.send(&msg.Msg{Type: msg.BIConflictAck, Addr: m.Addr, Dst: m.Src, VNet: msg.VRsp})
	case msg.MemRdA, msg.MemRdS:
		l := d.line(m.Addr)
		if l.cur != nil {
			d.Stats.Stalls++
			l.queue = append(l.queue, m)
			return
		}
		d.startRead(l, m)
	case msg.MemWrI, msg.MemWrS:
		d.Stats.Writes++
		d.handleWrite(m)
	case msg.BISnpRspI, msg.BISnpRspS:
		d.handleSnpRsp(m)
	default:
		panic(fmt.Sprintf("cxl: DCOH got unexpected %v", m))
	}
}

func (d *DCOH) startRead(l *dline, m *msg.Msg) {
	d.Stats.Reads++
	l.cur = &tx{req: m}
	want := msg.BISnpData
	if m.Type == msg.MemRdA {
		want = msg.BISnpInv
	}
	// Collect the peers that must be snooped.
	var targets []msg.NodeID
	switch l.state {
	case dE, dM:
		if l.owner != m.Src {
			targets = append(targets, l.owner)
		}
	case dS:
		if m.Type == msg.MemRdA {
			// Ascending id order: snoop issue order is deterministic.
			l.sharers.ForEach(func(h msg.NodeID) {
				if h != m.Src {
					targets = append(targets, h)
				}
			})
		}
	}
	if len(targets) == 0 {
		d.finishRead(l)
		return
	}
	for _, h := range targets {
		l.cur.pending.Add(h)
		d.Stats.Snoops++
		d.send(&msg.Msg{Type: want, Addr: m.Addr, Dst: h, VNet: msg.VSnp})
	}
}

func (d *DCOH) handleSnpRsp(m *msg.Msg) {
	l := d.lines[m.Addr]
	if l == nil || l.cur == nil || !l.cur.pending.Has(m.Src) {
		panic(fmt.Sprintf("cxl: unexpected snoop response %v", m))
	}
	l.cur.pending.Remove(m.Src)
	if m.Data != nil && m.Dirty {
		l.cur.data = *m.Data
		l.cur.dirty = true
		if m.Poisoned {
			d.poisoned[m.Addr] = true
		}
	}
	if m.Type == msg.BISnpRspS {
		l.cur.keptS.Add(m.Src)
	}
	if l.cur.pending.Empty() {
		d.settle(l)
	}
}

// handleWrite absorbs a MemWr, both the standalone owner-eviction flow
// and the nested "CXL WB" a snooped dirty host performs before its
// BISnpRsp (Fig. 2).
func (d *DCOH) handleWrite(m *msg.Msg) {
	l := d.line(m.Addr)
	if m.Data == nil {
		panic("cxl: MemWr without data")
	}
	// Only the registered owner's data is authoritative; a stale write
	// (the host was invalidated while its eviction was in flight) is
	// acknowledged and dropped.
	snoopedWB := l.cur != nil && l.cur.pending.Has(m.Src)
	if l.owner == m.Src || snoopedWB {
		d.dram.Write(m.Addr, *m.Data, nil)
		if m.Poisoned {
			// Poison follows the data home: the device memory copy is now
			// the poisoned one.
			d.poisoned[m.Addr] = true
		}
		if !snoopedWB {
			// Standalone eviction: update directory state now.
			old := l.state
			if m.Type == msg.MemWrI {
				l.state = dI
				l.owner = msg.None
			} else { // MemWrS: writeback, retain shared copy
				l.state = dS
				l.sharers.Add(m.Src)
				l.owner = msg.None
			}
			if d.Tracer != nil {
				d.traceState(m.Addr, old, m.Type.String())
			}
		}
	}
	d.send(&msg.Msg{Type: msg.CmpWr, Addr: m.Addr, Dst: m.Src, VNet: msg.VRsp})
}

// settle runs when all snoop responses are in: commit dirty data, then
// finish from device memory.
func (d *DCOH) settle(l *dline) {
	if l.cur.dirty {
		d.dram.Write(l.cur.req.Addr, l.cur.data, func() { d.finishRead(l) })
		return
	}
	d.finishRead(l)
}

// abortRead retires a transaction whose requestor died: snoop results
// are already committed (settle), so record what the snoops left behind
// and move on without granting.
func (d *DCOH) abortRead(l *dline, cur *tx) {
	oldState := l.state
	l.owner = msg.None
	l.sharers = 0
	cur.keptS.ForEach(func(s msg.NodeID) {
		if !d.dead.Has(s) {
			l.sharers.Add(s)
		}
	})
	if !l.sharers.Empty() {
		l.state = dS
	} else {
		l.state = dI
	}
	l.cur = nil
	if d.Tracer != nil {
		d.traceState(cur.req.Addr, oldState, "aborted "+cur.req.Type.String())
	}
	d.drain(l)
}

// finishRead reads device memory and grants.
func (d *DCOH) finishRead(l *dline) {
	cur := l.cur
	if cur.aborted {
		d.abortRead(l, cur)
		return
	}
	d.dram.Read(cur.req.Addr, func(data mem.Data) {
		h := cur.req.Src
		if cur.aborted || d.dead.Has(h) {
			// The requestor crashed while the memory read was in flight.
			d.abortRead(l, cur)
			return
		}
		oldState := l.state
		rsp := &msg.Msg{Addr: cur.req.Addr, Dst: h, VNet: msg.VRsp,
			Data: msg.WithData(data), Poisoned: d.poisoned[cur.req.Addr]}
		if cur.req.Type == msg.MemRdA {
			rsp.Type = msg.CmpM
			l.state = dM
			l.owner = h
			l.sharers = 0
		} else {
			// Shared read: exclusive-clean when no one else holds it.
			l.sharers.ForEach(func(s msg.NodeID) {
				if s != h {
					cur.keptS.Add(s)
				}
			})
			if l.state == dE || l.state == dM {
				// Previous owner downgraded (kept a copy iff it said so).
			}
			l.owner = msg.None
			l.sharers = cur.keptS
			l.sharers.Add(h)
			if l.sharers.Len() == 1 {
				rsp.Type = msg.CmpE
				l.state = dE
				l.owner = h
			} else {
				rsp.Type = msg.CmpS
				l.state = dS
			}
		}
		l.cur = nil
		if d.Tracer != nil {
			d.traceState(cur.req.Addr, oldState, cur.req.Type.String())
		}
		d.send(rsp)
		d.drain(l)
	})
}

// drain re-dispatches requests that queued behind the finished
// transaction.
func (d *DCOH) drain(l *dline) {
	if len(l.queue) == 0 || l.cur != nil {
		return
	}
	next := l.queue[0]
	l.queue = l.queue[1:]
	// Re-enter through the normal path on a fresh event so timing (and
	// the model checker) see a distinct step.
	d.k.After(1, func() { d.Recv(next) })
}

// StateOf reports the directory view of a line, for tests and the model
// checker's invariants.
func (d *DCOH) StateOf(a mem.LineAddr) (state string, owner msg.NodeID, sharers []msg.NodeID) {
	l := d.lines[a]
	if l == nil {
		return "I", msg.None, nil
	}
	return dname(l.state), l.owner, l.sharers.IDs()
}

// Busy reports whether a transaction is in flight for line a.
func (d *DCOH) Busy(a mem.LineAddr) bool {
	l := d.lines[a]
	return l != nil && l.cur != nil
}

// Reclaim summarizes one host-isolation walk.
type Reclaim struct {
	// Reclaimed counts directory entries (owner or sharer slots) that
	// named the dead host and were scrubbed.
	Reclaimed int
	// Poisoned counts lines whose only up-to-date copy died with the
	// host; PoisonedLines lists them (sorted).
	Poisoned      int
	PoisonedLines []mem.LineAddr
	// NAKed counts in-flight transactions from the dead host that were
	// aborted instead of granted.
	NAKed int
}

// ReclaimHost runs the CXL host-isolation walk for a crashed host: scrub
// h from every sharer vector, poison lines h held exclusively (dE is
// silently dirtiable, so it is treated like dM — data lost), release
// in-flight transactions so surviving waiters unblock, and drop h's
// queued requests. Lines are walked in address order so any messages the
// walk releases are scheduled deterministically.
func (d *DCOH) ReclaimHost(h msg.NodeID) Reclaim {
	d.dead.Add(h)
	var r Reclaim
	poison := func(a mem.LineAddr) {
		if d.poisoned[a] {
			return
		}
		d.poisoned[a] = true
		r.Poisoned++
		r.PoisonedLines = append(r.PoisonedLines, a)
	}
	addrs := make([]mem.LineAddr, 0, len(d.lines))
	for a := range d.lines {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		l := d.lines[a]
		if l.cur != nil {
			if l.cur.req.Src == h {
				// The requestor died. Keep the transaction open until the
				// surviving snoop responses land (their data still needs
				// committing), but never grant it.
				l.cur.aborted = true
				r.NAKed++
			}
			if l.cur.pending.Has(h) {
				// A snoop to the dead host will never be answered. If it
				// held the exclusive copy and no dirty data arrived, the
				// only current copy died with it.
				l.cur.pending.Remove(h)
				if (l.state == dE || l.state == dM) && l.owner == h && !l.cur.dirty {
					poison(a)
				}
				if l.cur.pending.Empty() {
					d.settle(l)
				}
			}
		}
		if l.sharers.Has(h) {
			l.sharers.Remove(h)
			r.Reclaimed++
			if l.sharers.Empty() && l.state == dS && l.cur == nil {
				l.state = dI
			}
		}
		if l.owner == h {
			r.Reclaimed++
			if l.state == dE || l.state == dM {
				poison(a)
			}
			l.owner = msg.None
			if l.cur == nil && (l.state == dE || l.state == dM) {
				l.state = dI
			}
		}
		if len(l.queue) > 0 {
			kept := l.queue[:0]
			for _, m := range l.queue {
				if m.Src == h {
					r.NAKed++
					continue
				}
				kept = append(kept, m)
			}
			l.queue = kept
		}
	}
	sort.Slice(r.PoisonedLines, func(i, j int) bool { return r.PoisonedLines[i] < r.PoisonedLines[j] })
	return r
}

// ReferencesHost reports whether any directory state still names h —
// the post-reclamation isolation invariant must find none.
func (d *DCOH) ReferencesHost(h msg.NodeID) bool {
	for _, l := range d.lines {
		if l.owner == h || l.sharers.Has(h) {
			return true
		}
		if l.cur != nil && (l.cur.pending.Has(h) || l.cur.req.Src == h) {
			return true
		}
		for _, m := range l.queue {
			if m.Src == h {
				return true
			}
		}
	}
	return false
}

// PoisonedLine reports whether a's data has been lost to a crash.
func (d *DCOH) PoisonedLine(a mem.LineAddr) bool { return d.poisoned[a] }

// ReviveHost re-admits a previously reclaimed host (crash rejoin): its
// messages are accepted again. The host must come back cold — its state
// was reclaimed at crash time and is not restored. Poison is sticky.
func (d *DCOH) ReviveHost(h msg.NodeID) { d.dead.Remove(h) }
