package cxl

import (
	"c3/internal/mem"
	"c3/internal/msg"
	"c3/internal/network"
	"c3/internal/sim"
)

// Clone returns a deep copy of the DCOH for model-checker snapshots,
// attached to kernel k, fabric net, and an already-cloned dram. All DCOH
// state is plain data (line directory, open transactions, stalled
// queues); DRAM read/write continuations live as kernel events and must
// have drained before cloning. The tracer is not carried over.
func (d *DCOH) Clone(k *sim.Kernel, net network.Fabric, dram *mem.DRAM) *DCOH {
	n := &DCOH{
		id: d.id, k: k, net: net, dram: dram, Lat: d.Lat,
		lines:    make(map[mem.LineAddr]*dline, len(d.lines)),
		dead:     cloneSharers(d.dead),
		poisoned: make(map[mem.LineAddr]bool, len(d.poisoned)),
		Stats:    d.Stats,
	}
	for a, v := range d.poisoned {
		n.poisoned[a] = v
	}
	for a, l := range d.lines {
		nl := &dline{state: l.state, owner: l.owner,
			sharers: cloneSharers(l.sharers)}
		if l.cur != nil {
			nl.cur = &tx{
				req: l.cur.req.Clone(), pending: cloneSharers(l.cur.pending),
				data: l.cur.data, dirty: l.cur.dirty, keptS: cloneSharers(l.cur.keptS),
				aborted: l.cur.aborted,
			}
		}
		for _, m := range l.queue {
			nl.queue = append(nl.queue, m.Clone())
		}
		n.lines[a] = nl
	}
	return n
}

func cloneSharers(s map[msg.NodeID]bool) map[msg.NodeID]bool {
	if s == nil {
		return nil
	}
	n := make(map[msg.NodeID]bool, len(s))
	for id, v := range s {
		n[id] = v
	}
	return n
}
