// Package hostproto implements the host-side private cache controllers —
// the "existing host hardware" C3 integrates with, which the paper keeps
// unmodified (Rule I delegation means all translation lives in C3, not
// here).
//
// Two controllers are provided:
//
//   - L1: an invalidation-based MESI-family cache, parameterized into the
//     MESI, MOESI and MESIF dialects (does a load-snooped dirty owner
//     downgrade to S or keep O; is there a designated forwarder F).
//   - RCCL1 (rcc.go): a self-invalidating release-consistency cache that
//     write-combines dirty words locally and synchronizes on
//     acquire/release, GPU style.
//
// Both implement cpu.MemPort toward the core and network.Port toward the
// cluster interconnect. Their directory is the local side of the C3
// controller (internal/core).
package hostproto

import (
	"fmt"

	"c3/internal/cache"
	"c3/internal/cpu"
	"c3/internal/mem"
	"c3/internal/msg"
	"c3/internal/network"
	"c3/internal/sim"
	"c3/internal/trace"
)

// Variant selects the MESI-family dialect.
type Variant uint8

const (
	MESI Variant = iota
	MOESI
	MESIF
)

func (v Variant) String() string {
	switch v {
	case MESI:
		return "MESI"
	case MOESI:
		return "MOESI"
	case MESIF:
		return "MESIF"
	}
	return fmt.Sprintf("Variant(%d)", uint8(v))
}

// Stable line states stored in cache.Entry.State.
const (
	stS    = iota + 1 // shared clean
	stE               // exclusive clean
	stM               // modified
	stO               // owned dirty (MOESI)
	stF               // shared, designated forwarder (MESIF)
	stPend            // frame reserved for an outstanding miss
)

func stateName(s int) string {
	return [...]string{"?", "S", "E", "M", "O", "F", "Pend"}[s]
}

// pendingOp is a core request queued on a line transaction.
type pendingOp struct {
	req   cpu.Request
	done  func(cpu.Response)
	start sim.Time
}

// reqTBE tracks an outstanding GetS/GetM.
type reqTBE struct {
	addr    mem.LineAddr
	wantM   bool // GetM outstanding (else GetS)
	ops     []pendingOp
	started sim.Time
	// stalledSnps holds owner snoops that raced ahead of our grant on
	// the snoop channel; they are served once the fill lands.
	stalledSnps []*msg.Msg
	// invalidated records an Inv that raced our DataS grant: the fill
	// may satisfy only the loads already queued (use-once, the primer's
	// ISI_D), then the line dies.
	invalidated bool
	opsAtInv    int
}

// Evict TBE states.
const (
	evSIA = iota + 1 // PutS sent
	evEIA            // PutE sent
	evMIA            // PutM sent (data in TBE)
	evOIA            // PutO sent (data in TBE)
	evIIA            // invalidated while awaiting PutAck
)

type evictTBE struct {
	addr     mem.LineAddr
	state    int
	data     mem.Data
	poisoned bool
}

// Config for an L1 instance.
type Config struct {
	Variant    Variant
	SizeBytes  int
	Ways       int
	HitLatency sim.Time
}

// DefaultConfig matches Table III: 128 KiB, 8-way, 1-cycle private cache.
func DefaultConfig(v Variant) Config {
	return Config{Variant: v, SizeBytes: 128 * 1024, Ways: 8, HitLatency: 1}
}

// L1 is one private MESI-family cache.
type L1 struct {
	id   msg.NodeID
	dir  msg.NodeID
	k    *sim.Kernel
	net  network.Fabric
	c    *cache.Cache
	cfg  Config
	reqs map[mem.LineAddr]*reqTBE
	evs  map[mem.LineAddr]*evictTBE
	// deferred holds ops stalled on set-conflict pressure (no frame and
	// no evictable victim); retried on every completion.
	deferred []pendingOp

	// Accesses/Misses drive MPKI accounting.
	Accesses, Misses uint64

	// Tracer, when non-nil, observes line state transitions.
	Tracer *trace.Tracer
}

// traceState emits a line transition. Callers guard on l.Tracer; 0 means
// the line is absent (invalid).
func (l *L1) traceState(a mem.LineAddr, old, new int, note string) {
	os, ns := "I", "I"
	if old != 0 {
		os = stateName(old)
	}
	if new != 0 {
		ns = stateName(new)
	}
	l.Tracer.State(l.k.Now(), l.id, a, os, ns, note)
}

// NewL1 builds an L1 attached to kernel k, sending through net to its
// cluster directory dir.
func NewL1(id, dir msg.NodeID, k *sim.Kernel, net network.Fabric, cfg Config) *L1 {
	if cfg.SizeBytes == 0 {
		cfg = DefaultConfig(cfg.Variant)
	}
	return &L1{
		id: id, dir: dir, k: k, net: net,
		c:    cache.New(cfg.SizeBytes, cfg.Ways),
		cfg:  cfg,
		reqs: make(map[mem.LineAddr]*reqTBE),
		evs:  make(map[mem.LineAddr]*evictTBE),
	}
}

// ID returns the cache's network id.
func (l *L1) ID() msg.NodeID { return l.id }

// Cache exposes the underlying array for tests and invariant checks.
func (l *L1) Cache() *cache.Cache { return l.c }

// NeedsSyncOps implements cpu.MemPort: MESI-family caches handle fences
// purely with core-side ordering.
func (l *L1) NeedsSyncOps() bool { return false }

func (l *L1) send(m *msg.Msg) {
	m.Src = l.id
	if m.Dst == 0 {
		m.Dst = l.dir
	}
	l.net.Send(m)
}

// Access implements cpu.MemPort.
func (l *L1) Access(req cpu.Request, done func(cpu.Response)) {
	if req.Kind == cpu.Prefetch || req.Kind == cpu.PrefetchS {
		l.prefetch(req.Addr.Line(), req.Kind == cpu.Prefetch, done)
		return
	}
	l.Accesses++
	op := pendingOp{req: req, done: done, start: l.k.Now()}
	l.start(op)
}

// prefetch warms a line for an upcoming access: ownership (wantM, the
// store-buffer RFO) or a shared copy (a speculative load). Non-binding:
// no rider op, no reply value; a later real access rides or hits the
// transaction.
func (l *L1) prefetch(line mem.LineAddr, wantM bool, done func(cpu.Response)) {
	defer done(cpu.Response{})
	if l.reqs[line] != nil || l.evs[line] != nil {
		return
	}
	ty := msg.GetS
	if wantM {
		ty = msg.GetM
	}
	if e := l.c.Probe(line); e != nil {
		if !wantM || e.State == stM || e.State == stE {
			return // already good enough
		}
		// Upgrade in place.
		t := &reqTBE{addr: line, wantM: true, started: l.k.Now()}
		l.reqs[line] = t
		l.send(&msg.Msg{Type: msg.GetM, Addr: line, VNet: msg.VReq})
		return
	}
	if !l.c.HasSpace(line) {
		v := l.c.VictimFunc(line, l.evictable)
		if v == nil {
			return // set under pressure; skip the hint
		}
		l.evictEntry(v)
	}
	f := l.c.Install(line)
	f.State = stPend
	t := &reqTBE{addr: line, wantM: wantM, started: l.k.Now()}
	l.reqs[line] = t
	l.send(&msg.Msg{Type: ty, Addr: line, VNet: msg.VReq})
}

func (l *L1) start(op pendingOp) {
	line := op.req.Addr.Line()
	if t := l.reqs[line]; t != nil {
		// A transaction is already in flight; ride it.
		if op.req.Kind.IsWrite() && !t.wantM {
			// The pending GetS cannot satisfy a write; the replay loop
			// will upgrade after the fill.
			l.Misses++
		}
		t.ops = append(t.ops, op)
		return
	}
	e := l.c.Lookup(line)
	if e != nil && e.State != stPend {
		if l.tryHit(e, op) {
			return
		}
		// Upgrade path: S/F/O + write.
		l.Misses++
		t := &reqTBE{addr: line, wantM: true, ops: []pendingOp{op}, started: l.k.Now()}
		l.reqs[line] = t
		l.send(&msg.Msg{Type: msg.GetM, Addr: line, VNet: msg.VReq})
		return
	}
	if e != nil && e.State == stPend {
		// Frame reserved by a racing evict+refill; treat as existing TBE
		// (should have been caught above) — defensive.
		panic("hostproto: pending frame without TBE")
	}
	// Miss: reserve a frame (evicting if necessary), then request.
	l.Misses++
	if !l.c.HasSpace(line) {
		v := l.c.VictimFunc(line, l.evictable)
		if v == nil {
			// Set exhausted by outstanding misses; retry later.
			l.deferred = append(l.deferred, op)
			return
		}
		l.evictEntry(v)
	}
	f := l.c.Install(line)
	f.State = stPend
	t := &reqTBE{addr: line, wantM: op.req.Kind.IsWrite(), ops: []pendingOp{op}, started: l.k.Now()}
	l.reqs[line] = t
	ty := msg.GetS
	if t.wantM {
		ty = msg.GetM
	}
	l.send(&msg.Msg{Type: ty, Addr: line, VNet: msg.VReq})
}

// tryHit services op against a stable entry; false means a transaction
// is required.
func (l *L1) tryHit(e *cache.Entry, op pendingOp) bool {
	switch op.req.Kind {
	case cpu.Load:
		l.reply(op, e.Data.Word(op.req.Addr.WordIndex()), false, e.Poisoned)
		l.c.Touch(e)
		return true
	case cpu.Store:
		if e.State == stM || e.State == stE {
			if l.Tracer != nil && e.State == stE {
				// The silent upgrade no directory can see.
				l.traceState(e.Addr, stE, stM, "store hit")
			}
			e.State = stM // silent E->M upgrade
			e.Data.SetWord(op.req.Addr.WordIndex(), op.req.Val)
			l.c.Touch(e)
			l.reply(op, 0, false, false)
			return true
		}
		return false
	case cpu.RMWAdd, cpu.RMWXchg:
		if e.State == stM || e.State == stE {
			e.State = stM
			w := op.req.Addr.WordIndex()
			old := e.Data.Word(w)
			if op.req.Kind == cpu.RMWAdd {
				e.Data.SetWord(w, old+op.req.Val)
			} else {
				e.Data.SetWord(w, op.req.Val)
			}
			l.c.Touch(e)
			l.reply(op, old, false, e.Poisoned)
			return true
		}
		return false
	}
	panic(fmt.Sprintf("hostproto: unexpected core op %v", op.req.Kind))
}

func (l *L1) reply(op pendingOp, val uint64, missed, poisoned bool) {
	lat := l.cfg.HitLatency
	r := cpu.Response{Val: val, Missed: missed, Poisoned: poisoned}
	if missed {
		r.MissLatency = l.k.Now() - op.start
	}
	l.k.After(lat, func() { op.done(r) })
}

// evictable approves replacement victims: stable lines with no request
// or eviction transaction in flight.
func (l *L1) evictable(e *cache.Entry) bool {
	return e.State != stPend && l.reqs[e.Addr] == nil && l.evs[e.Addr] == nil
}

func (l *L1) evictEntry(e *cache.Entry) {
	t := &evictTBE{addr: e.Addr, data: e.Data, poisoned: e.Poisoned}
	var ty msg.Type
	withData := false
	switch e.State {
	case stS:
		t.state, ty = evSIA, msg.PutS
	case stF:
		t.state, ty = evSIA, msg.PutS
	case stE:
		t.state, ty = evEIA, msg.PutE
	case stM:
		t.state, ty, withData = evMIA, msg.PutM, true
	case stO:
		t.state, ty, withData = evOIA, msg.PutO, true
	default:
		panic(fmt.Sprintf("hostproto: evicting entry in state %s", stateName(e.State)))
	}
	if old := l.evs[e.Addr]; old != nil {
		panic("hostproto: double eviction")
	}
	if l.Tracer != nil {
		l.traceState(e.Addr, e.State, 0, "evict "+ty.String())
	}
	l.evs[e.Addr] = t
	l.c.Remove(e)
	m := &msg.Msg{Type: ty, Addr: t.addr, VNet: msg.VReq}
	if withData {
		m.Data = msg.WithData(t.data)
		m.Dirty = true
		m.Poisoned = t.poisoned
	}
	l.send(m)
}

// Recv implements network.Port for messages from the cluster directory.
func (l *L1) Recv(m *msg.Msg) {
	switch m.Type {
	case msg.DataS, msg.DataE, msg.DataM:
		l.fill(m)
	case msg.Inv:
		l.invalidate(m)
	case msg.SnpData:
		l.snoopData(m)
	case msg.SnpInv:
		l.snoopInv(m)
	case msg.PutAck:
		if t := l.evs[m.Addr]; t != nil {
			delete(l.evs, m.Addr)
			l.retryDeferred()
		}
	default:
		panic(fmt.Sprintf("hostproto: L1 %d got unexpected %v", l.id, m))
	}
}

func (l *L1) fill(m *msg.Msg) {
	t := l.reqs[m.Addr]
	if t == nil {
		panic(fmt.Sprintf("hostproto: fill with no TBE: %v", m))
	}
	delete(l.reqs, m.Addr)

	if m.Type == msg.DataS && t.invalidated {
		// An Inv overtook this grant: the data is valid exactly at our
		// transaction's serialization point. Serve the loads that were
		// queued when the Inv arrived, drop the line, and re-request for
		// anything else.
		l.fillUseOnce(m, t)
		l.retryDeferred()
		return
	}

	e := l.c.Probe(m.Addr)
	if e == nil {
		// Frame was reclaimed by a snoop during an upgrade; re-reserve.
		if !l.c.HasSpace(m.Addr) {
			v := l.c.VictimFunc(m.Addr, l.evictable)
			if v == nil {
				panic("hostproto: no frame for fill")
			}
			l.evictEntry(v)
		}
		e = l.c.Install(m.Addr)
	}
	e.Data = *m.Data
	e.Poisoned = m.Poisoned
	old := e.State
	switch m.Type {
	case msg.DataS:
		e.State = stS
		if l.cfg.Variant == MESIF {
			e.State = stF // the newest sharer is the forwarder
		}
	case msg.DataE:
		e.State = stE
	case msg.DataM:
		e.State = stM
	}
	if l.Tracer != nil {
		l.traceState(m.Addr, old, e.State, m.Type.String())
	}
	// Our transaction's queued ops complete against the granted state
	// first; owner snoops that raced ahead are serialized after it.
	l.replay(t, e)
	for _, snp := range t.stalledSnps {
		l.Recv(snp)
	}
	l.retryDeferred()
}

// fillUseOnce implements the use-once fill after a racing invalidation.
func (l *L1) fillUseOnce(m *msg.Msg, t *reqTBE) {
	if e := l.c.Probe(m.Addr); e != nil && e.State == stPend {
		l.c.Remove(e)
	}
	n := t.opsAtInv
	if n > len(t.ops) {
		n = len(t.ops)
	}
	rest := t.ops[n:]
	for i := 0; i < n; i++ {
		op := t.ops[i]
		if op.req.Kind != cpu.Load {
			// A write cannot use a revoked shared copy; re-request it
			// and everything younger.
			rest = t.ops[i:]
			break
		}
		l.replyMiss(op, m.Data.Word(op.req.Addr.WordIndex()), m.Poisoned)
	}
	for _, op := range rest {
		l.start(op)
	}
	for _, snp := range t.stalledSnps {
		l.Recv(snp)
	}
}

// replay drains queued ops against the now-stable entry; ops that need a
// further transaction (e.g. a queued store after a GetS fill) start one.
func (l *L1) replay(t *reqTBE, e *cache.Entry) {
	for i, op := range t.ops {
		switch op.req.Kind {
		case cpu.Load:
			l.replyMiss(op, e.Data.Word(op.req.Addr.WordIndex()), e.Poisoned)
		case cpu.Store:
			if e.State == stM || e.State == stE {
				e.State = stM
				e.Data.SetWord(op.req.Addr.WordIndex(), op.req.Val)
				l.replyMiss(op, 0, false)
				continue
			}
			l.upgrade(t, e, t.ops[i:])
			return
		case cpu.RMWAdd, cpu.RMWXchg:
			if e.State == stM || e.State == stE {
				e.State = stM
				w := op.req.Addr.WordIndex()
				old := e.Data.Word(w)
				if op.req.Kind == cpu.RMWAdd {
					e.Data.SetWord(w, old+op.req.Val)
				} else {
					e.Data.SetWord(w, op.req.Val)
				}
				l.replyMiss(op, old, e.Poisoned)
				continue
			}
			l.upgrade(t, e, t.ops[i:])
			return
		}
	}
}

func (l *L1) replyMiss(op pendingOp, val uint64, poisoned bool) {
	l.reply(op, val, true, poisoned)
}

// upgrade issues a GetM for remaining ops after a shared fill.
func (l *L1) upgrade(old *reqTBE, e *cache.Entry, rest []pendingOp) {
	t := &reqTBE{addr: old.addr, wantM: true, started: l.k.Now()}
	t.ops = append(t.ops, rest...)
	l.reqs[old.addr] = t
	l.send(&msg.Msg{Type: msg.GetM, Addr: old.addr, VNet: msg.VReq})
}

func (l *L1) invalidate(m *msg.Msg) {
	if t := l.evs[m.Addr]; t != nil {
		t.state = evIIA
		l.send(&msg.Msg{Type: msg.InvAck, Addr: m.Addr, Dst: m.Src, VNet: msg.VRsp})
		return
	}
	e := l.c.Probe(m.Addr)
	if e == nil || e.State == stPend {
		// We hold no data: ack immediately so the directory's count
		// balances. If a shared grant is in flight it becomes use-once
		// (see fillUseOnce).
		if t := l.reqs[m.Addr]; t != nil && !t.invalidated {
			t.invalidated = true
			t.opsAtInv = len(t.ops)
		}
		l.send(&msg.Msg{Type: msg.InvAck, Addr: m.Addr, Dst: m.Src, VNet: msg.VRsp})
		return
	}
	switch e.State {
	case stS, stF:
		if l.Tracer != nil {
			l.traceState(m.Addr, e.State, 0, "Inv")
		}
		l.c.Remove(e)
		l.send(&msg.Msg{Type: msg.InvAck, Addr: m.Addr, Dst: m.Src, VNet: msg.VRsp})
	default:
		panic(fmt.Sprintf("hostproto: Inv of %s line %v at L1 %d", stateName(e.State), m.Addr, l.id))
	}
}

func (l *L1) snoopData(m *msg.Msg) {
	if l.stallOwnerSnoop(m) {
		return
	}
	if t := l.evs[m.Addr]; t != nil {
		dirty := t.state == evMIA || t.state == evOIA
		rsp := &msg.Msg{Type: msg.SnpRspData, Addr: m.Addr, Dst: m.Src, VNet: msg.VRsp,
			Data: msg.WithData(t.data), Dirty: dirty, Poisoned: t.poisoned}
		t.state = evSIA // now just a shared evictor
		l.send(rsp)
		return
	}
	e := l.c.Probe(m.Addr)
	if e == nil {
		// The copy disappeared while the snoop was parked (use-once
		// invalidation); answer clean so the directory falls back to its
		// own copy.
		l.send(&msg.Msg{Type: msg.SnpRspData, Addr: m.Addr, Dst: m.Src, VNet: msg.VRsp})
		return
	}
	dirty := false
	old := e.State
	switch e.State {
	case stM:
		dirty = true
		if l.cfg.Variant == MOESI {
			e.State = stO
		} else {
			e.State = stS
		}
	case stO:
		dirty = true // stays O: dirty sharer keeps responsibility
	case stE, stF:
		e.State = stS
	case stS:
		// Forward request served from a clean sharer (MESIF demotion
		// races); respond clean.
	default:
		panic(fmt.Sprintf("hostproto: SnpData in state %s", stateName(e.State)))
	}
	if l.Tracer != nil && e.State != old {
		l.traceState(m.Addr, old, e.State, "SnpData")
	}
	l.send(&msg.Msg{Type: msg.SnpRspData, Addr: m.Addr, Dst: m.Src, VNet: msg.VRsp,
		Data: msg.WithData(e.Data), Dirty: dirty, Poisoned: e.Poisoned})
}

// stallOwnerSnoop parks an owner snoop that reached us before the data
// we have been granted (intra-cluster channels are point-to-point
// ordered across vnets, so this can only happen for a frame with no
// data yet: the grant is in flight and guaranteed to arrive). A snoop
// against a stable entry is answered from it directly.
func (l *L1) stallOwnerSnoop(m *msg.Msg) bool {
	t := l.reqs[m.Addr]
	if t == nil || l.evs[m.Addr] != nil {
		return false
	}
	if e := l.c.Probe(m.Addr); e != nil && e.State != stPend {
		return false
	}
	t.stalledSnps = append(t.stalledSnps, m)
	return true
}

func (l *L1) snoopInv(m *msg.Msg) {
	if l.stallOwnerSnoop(m) {
		return
	}
	if t := l.evs[m.Addr]; t != nil {
		dirty := t.state == evMIA || t.state == evOIA
		rsp := &msg.Msg{Type: msg.SnpRspInv, Addr: m.Addr, Dst: m.Src, VNet: msg.VRsp}
		if dirty {
			rsp.Data = msg.WithData(t.data)
			rsp.Dirty = true
			rsp.Poisoned = t.poisoned
		}
		t.state = evIIA
		l.send(rsp)
		return
	}
	e := l.c.Probe(m.Addr)
	if e == nil || e.State == stPend {
		// Copy already gone; clean response keeps the flow moving.
		l.send(&msg.Msg{Type: msg.SnpRspInv, Addr: m.Addr, Dst: m.Src, VNet: msg.VRsp})
		return
	}
	rsp := &msg.Msg{Type: msg.SnpRspInv, Addr: m.Addr, Dst: m.Src, VNet: msg.VRsp, Poisoned: e.Poisoned}
	switch e.State {
	case stM, stO:
		rsp.Data = msg.WithData(e.Data)
		rsp.Dirty = true
	case stE, stS, stF:
		rsp.Data = msg.WithData(e.Data)
	}
	if l.Tracer != nil {
		l.traceState(m.Addr, e.State, 0, "SnpInv")
	}
	l.c.Remove(e)
	l.send(rsp)
}

func (l *L1) retryDeferred() {
	if len(l.deferred) == 0 {
		return
	}
	ops := l.deferred
	l.deferred = nil
	for _, op := range ops {
		l.start(op)
	}
}
