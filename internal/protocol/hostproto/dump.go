package hostproto

import (
	"fmt"
	"io"
	"sort"

	"c3/internal/cache"
	"c3/internal/mem"
	"c3/internal/msg"
)

// DumpState writes a canonical rendering of all architectural state, used
// by the model checker to hash and deduplicate global states. Map
// iteration is sorted so equal states dump identically.
func (l *L1) DumpState(w io.Writer) {
	fmt.Fprintf(w, "L1[%d]", l.id)
	dumpCache(w, l.c)
	var lines []mem.LineAddr
	for a := range l.reqs {
		lines = append(lines, a)
	}
	sortLines(lines)
	for _, a := range lines {
		t := l.reqs[a]
		fmt.Fprintf(w, "R%x:%v:%d:%v:%d:%d;", uint64(a), t.wantM, len(t.ops), t.invalidated,
			t.opsAtInv, len(t.stalledSnps))
	}
	lines = lines[:0]
	for a := range l.evs {
		lines = append(lines, a)
	}
	sortLines(lines)
	for _, a := range lines {
		t := l.evs[a]
		fmt.Fprintf(w, "E%x:%d:%v;", uint64(a), t.state, t.data)
	}
	fmt.Fprintf(w, "d%d\n", len(l.deferred))
}

// DumpCanon writes the canonical (reduction-aware) rendering of the L1
// for the model checker's canonical hash. The header carries the
// caller's canonical slot id instead of the node id, line addresses
// render through rnLine (sorted by renamed address, so symmetric
// renamings fingerprint identically), payloads of frames whose data is
// stale (!DataValid) are masked, and — when skipInvalid is set, i.e. the
// caller has proven set conflicts impossible — frames invalidated back
// to state I are dropped, merging "invalid frame present" with "frame
// absent" (the protocol treats both as a miss).
func (l *L1) DumpCanon(w io.Writer, slot msg.NodeID, rnLine func(mem.LineAddr) mem.LineAddr, skipInvalid bool) {
	fmt.Fprintf(w, "L1[%d]", slot)
	dumpCacheCanon(w, l.c, rnLine, skipInvalid)
	lines := make([]mem.LineAddr, 0, len(l.reqs))
	orig := make(map[mem.LineAddr]mem.LineAddr, len(l.reqs))
	for a := range l.reqs {
		r := rnLine(a)
		lines = append(lines, r)
		orig[r] = a
	}
	sortLines(lines)
	for _, r := range lines {
		t := l.reqs[orig[r]]
		fmt.Fprintf(w, "R%x:%v:%d:%v:%d:%d;", uint64(r), t.wantM, len(t.ops), t.invalidated,
			t.opsAtInv, len(t.stalledSnps))
	}
	lines = lines[:0]
	for a := range l.evs {
		r := rnLine(a)
		lines = append(lines, r)
		orig[r] = a
	}
	sortLines(lines)
	for _, r := range lines {
		t := l.evs[orig[r]]
		fmt.Fprintf(w, "E%x:%d:%v;", uint64(r), t.state, t.data)
	}
	fmt.Fprintf(w, "d%d\n", len(l.deferred))
}

// DumpState for RCC caches.
func (l *RCCL1) DumpState(w io.Writer) {
	fmt.Fprintf(w, "RCC[%d]", l.id)
	dumpCache(w, l.c)
	var lines []mem.LineAddr
	for a := range l.mask {
		lines = append(lines, a)
	}
	sortLines(lines)
	for _, a := range lines {
		fmt.Fprintf(w, "m%x:%x;", uint64(a), l.mask[a])
	}
	lines = lines[:0]
	for a := range l.pend {
		lines = append(lines, a)
	}
	sortLines(lines)
	for _, a := range lines {
		fmt.Fprintf(w, "p%x:%d;", uint64(a), len(l.pend[a].ops))
	}
	if l.cur != nil {
		fmt.Fprintf(w, "cur:%d:%d:%d;", l.cur.kind, l.cur.stage, l.cur.pendingAcks)
	}
	fmt.Fprintf(w, "q%d\n", len(l.seqQueue))
}

func dumpCache(w io.Writer, c *cache.Cache) {
	type ent struct {
		a mem.LineAddr
		s int
		d mem.Data
		v bool
	}
	var es []ent
	c.ForEachRO(func(e *cache.Entry) {
		es = append(es, ent{e.Addr, e.State, e.Data, e.DataValid})
	})
	sort.Slice(es, func(i, j int) bool { return es[i].a < es[j].a })
	for _, e := range es {
		fmt.Fprintf(w, "c%x:%d:%v:%v;", uint64(e.a), e.s, e.d, e.v)
	}
}

// dumpCacheCanon is dumpCache under a line renaming: entries sort by
// renamed address, stale payloads are masked, and state-I frames are
// dropped when the caller allows it.
func dumpCacheCanon(w io.Writer, c *cache.Cache, rnLine func(mem.LineAddr) mem.LineAddr, skipInvalid bool) {
	type ent struct {
		a mem.LineAddr
		s int
		d mem.Data
		v bool
	}
	var es []ent
	c.ForEachRO(func(e *cache.Entry) {
		if skipInvalid && e.State == 0 {
			return
		}
		d := e.Data
		if !e.DataValid {
			d = mem.Data{}
		}
		es = append(es, ent{rnLine(e.Addr), e.State, d, e.DataValid})
	})
	sort.Slice(es, func(i, j int) bool { return es[i].a < es[j].a })
	for _, e := range es {
		fmt.Fprintf(w, "c%x:%d:%v:%v;", uint64(e.a), e.s, e.d, e.v)
	}
}

func sortLines(ls []mem.LineAddr) {
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
}
