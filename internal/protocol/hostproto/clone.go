package hostproto

import (
	"c3/internal/cpu"
	"c3/internal/mem"
	"c3/internal/msg"
	"c3/internal/network"
	"c3/internal/sim"
)

// Clone returns a deep copy of the L1 for model-checker snapshots,
// attached to kernel k and fabric net. Pending core completions are the
// one piece of L1 state that is not plain data: each queued pendingOp
// holds a done closure over the original core. The request token (see
// cpu.Request.Token) identifies the operation, so the clone rebuilds
// every callback as a call into resume — the cloned core's Resume method
// — making the snapshot's completion path identical to the original's.
// The tracer is not carried over (checker models are untraced).
func (l *L1) Clone(k *sim.Kernel, net network.Fabric, resume func(tok uint64, r cpu.Response)) *L1 {
	n := &L1{
		id: l.id, dir: l.dir, k: k, net: net,
		c: l.c.Clone(), cfg: l.cfg,
		reqs:     make(map[mem.LineAddr]*reqTBE, len(l.reqs)),
		evs:      make(map[mem.LineAddr]*evictTBE, len(l.evs)),
		Accesses: l.Accesses, Misses: l.Misses,
	}
	redo := func(op pendingOp) pendingOp {
		if op.req.Token == 0 {
			panic("hostproto: Clone of L1 with an untracked pending op")
		}
		tok := op.req.Token
		op.done = func(r cpu.Response) { resume(tok, r) }
		return op
	}
	for a, t := range l.reqs {
		nt := &reqTBE{
			addr: t.addr, wantM: t.wantM, started: t.started,
			invalidated: t.invalidated, opsAtInv: t.opsAtInv,
		}
		for _, op := range t.ops {
			nt.ops = append(nt.ops, redo(op))
		}
		if len(t.stalledSnps) > 0 {
			// Immutable after Send (see msg.Msg): share the pointers,
			// copy only the slice header's backing.
			nt.stalledSnps = append([]*msg.Msg(nil), t.stalledSnps...)
		}
		n.reqs[a] = nt
	}
	for a, t := range l.evs {
		ct := *t
		n.evs[a] = &ct
	}
	for _, op := range l.deferred {
		n.deferred = append(n.deferred, redo(op))
	}
	return n
}
