package hostproto

import (
	"fmt"

	"c3/internal/cache"
	"c3/internal/cpu"
	"c3/internal/mem"
	"c3/internal/msg"
	"c3/internal/network"
	"c3/internal/sim"
)

// RCC line states.
const (
	rV = iota + 1 // valid clean
	rD            // valid with dirty words
)

// rccTBE tracks an outstanding GetV.
type rccTBE struct {
	ops []pendingOp
}

// seqKind classifies the serialized synchronization operations.
type seqKind uint8

const (
	seqRelease  seqKind = iota + 1 // flush dirty, then SyncRel
	seqAcquire                     // self-invalidate, then SyncAcq
	seqFence                       // release + acquire
	seqRelStore                    // release store (Fig. 8)
	seqAtomic                      // flush+inv, then AtomicAdd/Xchg at C3
)

type seqOp struct {
	kind        seqKind
	op          pendingOp
	pendingAcks int
	// seqRelStore: the store to write through after the flush.
	relLine mem.LineAddr
	stage   int
}

// RCCL1 is a self-invalidating, release-consistency private cache
// (GPU-style): loads fill without sharer tracking, stores dirty words
// locally, releases write dirty words through to the C3 CXL cache, and
// acquires self-invalidate clean lines (Sec. IV-D2, Fig. 8). It receives
// no snoops — C3 answers device snoops from the CXL cache directly.
type RCCL1 struct {
	id   msg.NodeID
	dir  msg.NodeID
	k    *sim.Kernel
	net  network.Fabric
	c    *cache.Cache
	cfg  Config
	mask map[mem.LineAddr]uint8
	pend map[mem.LineAddr]*rccTBE
	// evAcks counts outstanding eviction write-throughs per line.
	evAcks map[mem.LineAddr]int

	cur      *seqOp
	seqQueue []*seqOp

	Accesses, Misses uint64
}

// NewRCC builds an RCC private cache.
func NewRCC(id, dir msg.NodeID, k *sim.Kernel, net network.Fabric, cfg Config) *RCCL1 {
	if cfg.SizeBytes == 0 {
		cfg = DefaultConfig(cfg.Variant)
	}
	return &RCCL1{
		id: id, dir: dir, k: k, net: net,
		c:      cache.New(cfg.SizeBytes, cfg.Ways),
		cfg:    cfg,
		mask:   make(map[mem.LineAddr]uint8),
		pend:   make(map[mem.LineAddr]*rccTBE),
		evAcks: make(map[mem.LineAddr]int),
	}
}

// ID returns the cache's network id.
func (l *RCCL1) ID() msg.NodeID { return l.id }

// Cache exposes the array for tests.
func (l *RCCL1) Cache() *cache.Cache { return l.c }

// NeedsSyncOps implements cpu.MemPort: RCC caches act on fences.
func (l *RCCL1) NeedsSyncOps() bool { return true }

func (l *RCCL1) send(m *msg.Msg) {
	m.Src = l.id
	if m.Dst == 0 {
		m.Dst = l.dir
	}
	l.net.Send(m)
}

func (l *RCCL1) reply(op pendingOp, val uint64, missed, poisoned bool) {
	r := cpu.Response{Val: val, Missed: missed, Poisoned: poisoned}
	if missed {
		r.MissLatency = l.k.Now() - op.start
	}
	l.k.After(l.cfg.HitLatency, func() { op.done(r) })
}

// Access implements cpu.MemPort.
func (l *RCCL1) Access(req cpu.Request, done func(cpu.Response)) {
	l.Accesses++
	op := pendingOp{req: req, done: done, start: l.k.Now()}
	switch req.Kind {
	case cpu.Load:
		if req.Acq {
			l.enqueueSeq(&seqOp{kind: seqAcquire, op: op})
			return
		}
		l.load(op)
	case cpu.Store:
		if req.Rel {
			l.enqueueSeq(&seqOp{kind: seqRelStore, op: op, relLine: req.Addr.Line()})
			return
		}
		l.store(op)
	case cpu.RMWAdd, cpu.RMWXchg:
		l.enqueueSeq(&seqOp{kind: seqAtomic, op: op})
	case cpu.Fence:
		l.enqueueSeq(&seqOp{kind: seqFence, op: op})
	case cpu.Release:
		l.enqueueSeq(&seqOp{kind: seqRelease, op: op})
	case cpu.Acquire:
		l.enqueueSeq(&seqOp{kind: seqAcquire, op: op})
	}
}

func (l *RCCL1) load(op pendingOp) {
	line := op.req.Addr.Line()
	if t := l.pend[line]; t != nil {
		t.ops = append(t.ops, op)
		return
	}
	if e := l.c.Lookup(line); e != nil {
		l.c.Touch(e)
		l.reply(op, e.Data.Word(op.req.Addr.WordIndex()), false, e.Poisoned)
		return
	}
	l.Misses++
	l.getV(line, op)
}

func (l *RCCL1) store(op pendingOp) {
	line := op.req.Addr.Line()
	if t := l.pend[line]; t != nil {
		t.ops = append(t.ops, op)
		return
	}
	if e := l.c.Lookup(line); e != nil {
		l.writeLocal(e, op.req)
		l.c.Touch(e)
		l.reply(op, 0, false, false)
		return
	}
	// Write-allocate: fetch then write.
	l.Misses++
	l.getV(line, op)
}

func (l *RCCL1) writeLocal(e *cache.Entry, req cpu.Request) {
	w := req.Addr.WordIndex()
	e.Data.SetWord(w, req.Val)
	e.State = rD
	l.mask[e.Addr] |= 1 << w
}

func (l *RCCL1) getV(line mem.LineAddr, op pendingOp) {
	if !l.c.HasSpace(line) {
		v := l.c.VictimFunc(line, func(e *cache.Entry) bool { return l.pend[e.Addr] == nil })
		if v == nil {
			// Pathological set pressure; retry shortly.
			l.k.After(10, func() { l.Access(op.req, op.done) })
			return
		}
		l.evict(v)
	}
	f := l.c.Install(line)
	f.State = rV // placeholder until DataV; pend map guards it
	l.pend[line] = &rccTBE{ops: []pendingOp{op}}
	l.send(&msg.Msg{Type: msg.GetV, Addr: line, VNet: msg.VReq})
}

// evict drops a line, writing dirty words through first.
func (l *RCCL1) evict(e *cache.Entry) {
	if e.State == rD {
		m := l.mask[e.Addr]
		l.evAcks[e.Addr]++
		l.send(&msg.Msg{Type: msg.WrThrough, Addr: e.Addr, VNet: msg.VReq,
			Data: msg.WithData(e.Data), Mask: m, Dirty: true})
	}
	delete(l.mask, e.Addr)
	l.c.Remove(e)
}

// --- synchronization sequencing ---

func (l *RCCL1) enqueueSeq(s *seqOp) {
	if l.cur != nil {
		l.seqQueue = append(l.seqQueue, s)
		return
	}
	l.cur = s
	l.runSeq()
}

// flushDirty write-throughs every dirty line (optionally excluding one);
// it returns the number of acks now pending.
func (l *RCCL1) flushDirty(except mem.LineAddr, haveExcept bool) int {
	n := 0
	l.c.ForEach(func(e *cache.Entry) {
		if e.State != rD {
			return
		}
		if haveExcept && e.Addr == except {
			return
		}
		n++
		l.send(&msg.Msg{Type: msg.WrThrough, Addr: e.Addr, VNet: msg.VReq,
			Data: msg.WithData(e.Data), Mask: l.mask[e.Addr], Dirty: true})
		e.State = rV
		delete(l.mask, e.Addr)
	})
	return n
}

// invalidateClean drops every clean line (self-invalidation).
func (l *RCCL1) invalidateClean() {
	var drop []*cache.Entry
	l.c.ForEach(func(e *cache.Entry) {
		if e.State == rV && l.pend[e.Addr] == nil {
			drop = append(drop, e)
		}
	})
	for _, e := range drop {
		l.c.Remove(e)
	}
}

func (l *RCCL1) runSeq() {
	s := l.cur
	switch s.kind {
	case seqRelease, seqFence:
		s.stage = 1
		s.pendingAcks = l.flushDirty(0, false)
		if s.pendingAcks == 0 {
			l.seqFlushed()
		}
	case seqAcquire:
		l.invalidateClean()
		s.stage = 2
		l.send(&msg.Msg{Type: msg.SyncAcq, VNet: msg.VReq})
	case seqRelStore:
		s.stage = 1
		s.pendingAcks = l.flushDirty(s.relLine, true)
		if s.pendingAcks == 0 {
			l.seqFlushed()
		}
	case seqAtomic:
		s.stage = 1
		s.pendingAcks = l.flushDirty(0, false)
		l.invalidateClean()
		if s.pendingAcks == 0 {
			l.seqFlushed()
		}
	}
}

// seqFlushed advances a sync op once its dirty flushes are acked.
func (l *RCCL1) seqFlushed() {
	s := l.cur
	switch s.kind {
	case seqRelease:
		s.stage = 2
		l.send(&msg.Msg{Type: msg.SyncRel, VNet: msg.VReq})
	case seqFence:
		l.invalidateClean()
		s.stage = 2
		l.send(&msg.Msg{Type: msg.SyncRel, VNet: msg.VReq})
	case seqRelStore:
		// Now write the release store's line through (Fig. 8): merge the
		// local copy (if any) with the released word. The released word
		// stays marked dirty locally so a racing fill cannot clobber it
		// (the re-flush it may cause is idempotent).
		s.stage = 2
		var data mem.Data
		var mask uint8
		w := s.op.req.Addr.WordIndex()
		if e := l.c.Probe(s.relLine); e != nil {
			e.Data.SetWord(w, s.op.req.Val)
			e.State = rD
			l.mask[s.relLine] |= 1 << w
			data = e.Data
			mask = l.mask[s.relLine]
		} else {
			data.SetWord(w, s.op.req.Val)
			mask = 1 << w
		}
		l.send(&msg.Msg{Type: msg.WrThrough, Addr: s.relLine, VNet: msg.VReq,
			Data: msg.WithData(data), Mask: mask, Dirty: true, Rel: true})
	case seqAtomic:
		s.stage = 2
		ty := msg.AtomicAdd
		if s.op.req.Kind == cpu.RMWXchg {
			ty = msg.AtomicXchg
		}
		l.send(&msg.Msg{Type: ty, Addr: s.op.req.Addr.Line(), VNet: msg.VReq,
			Word: s.op.req.Addr.WordIndex(), Val: s.op.req.Val})
	}
}

func (l *RCCL1) seqDone(val uint64, poisoned bool) {
	s := l.cur
	l.cur = nil
	l.reply(s.op, val, true, poisoned)
	if len(l.seqQueue) > 0 {
		l.cur = l.seqQueue[0]
		l.seqQueue = l.seqQueue[1:]
		l.runSeq()
	}
}

// Recv implements network.Port.
func (l *RCCL1) Recv(m *msg.Msg) {
	switch m.Type {
	case msg.DataV:
		t := l.pend[m.Addr]
		if t == nil {
			panic(fmt.Sprintf("hostproto: DataV with no TBE at RCC L1 %d", l.id))
		}
		delete(l.pend, m.Addr)
		e := l.c.Probe(m.Addr)
		if e == nil {
			panic("hostproto: DataV with no frame")
		}
		// Fill, but preserve locally-dirty words (a release store may
		// have written into the in-flight frame).
		old := e.Data
		e.Data = *m.Data
		e.Poisoned = m.Poisoned
		if dm := l.mask[m.Addr]; dm != 0 {
			for w := 0; w < mem.LineWords; w++ {
				if dm&(1<<w) != 0 {
					e.Data.SetWord(w, old.Word(w))
				}
			}
			e.State = rD
		} else {
			e.State = rV
		}
		for _, op := range t.ops {
			switch op.req.Kind {
			case cpu.Load:
				l.reply(op, e.Data.Word(op.req.Addr.WordIndex()), true, e.Poisoned)
			case cpu.Store:
				l.writeLocal(e, op.req)
				l.reply(op, 0, true, false)
			default:
				panic("hostproto: odd queued RCC op")
			}
		}
	case msg.PutAck:
		// Ack for a WrThrough: eviction, sync flush, or release store.
		if n := l.evAcks[m.Addr]; n > 0 {
			if n == 1 {
				delete(l.evAcks, m.Addr)
			} else {
				l.evAcks[m.Addr] = n - 1
			}
			return
		}
		s := l.cur
		if s == nil {
			panic(fmt.Sprintf("hostproto: stray PutAck at RCC L1 %d for %v", l.id, m.Addr))
		}
		if s.stage == 1 {
			s.pendingAcks--
			if s.pendingAcks == 0 {
				l.seqFlushed()
			}
			return
		}
		if s.kind == seqRelStore && s.stage == 2 {
			l.seqDone(0, false)
			return
		}
		panic("hostproto: PutAck in odd sync stage")
	case msg.SyncAck:
		if l.cur == nil || l.cur.stage != 2 {
			panic("hostproto: stray SyncAck")
		}
		l.seqDone(0, false)
	case msg.AtomicResp:
		if l.cur == nil || l.cur.kind != seqAtomic {
			panic("hostproto: stray AtomicResp")
		}
		l.seqDone(m.Val, m.Poisoned)
	default:
		panic(fmt.Sprintf("hostproto: RCC L1 %d got unexpected %v", l.id, m))
	}
}
