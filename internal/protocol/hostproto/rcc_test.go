package hostproto

import (
	"testing"

	"c3/internal/cpu"
	"c3/internal/mem"
	"c3/internal/msg"
	"c3/internal/sim"
)

func newTestRCC(t *testing.T) (*RCCL1, *fakeDir, *sim.Kernel) {
	t.Helper()
	k := &sim.Kernel{}
	dir := &fakeDir{}
	l1 := NewRCC(l1ID, dirID, k, dir, Config{SizeBytes: 2048, Ways: 2, HitLatency: 1})
	return l1, dir, k
}

func TestRCCLoadMissGetV(t *testing.T) {
	l1, dir, k := newTestRCC(t)
	var got uint64
	l1.Access(cpu.Request{Kind: cpu.Load, Addr: addrX}, func(r cpu.Response) { got = r.Val })
	drain(k)
	dir.find(t, msg.GetV)
	l1.Recv(&msg.Msg{Type: msg.DataV, Addr: lineX, Src: dirID, Data: data(1, 21)})
	drain(k)
	if got != 21 {
		t.Fatalf("got %d", got)
	}
	// Subsequent load hits locally.
	dir.take()
	l1.Access(cpu.Request{Kind: cpu.Load, Addr: addrX}, func(r cpu.Response) { got = r.Val })
	drain(k)
	if got != 21 || len(dir.sent) != 0 {
		t.Fatal("RCC load should hit after fill")
	}
}

func TestRCCStoreStaysLocalUntilRelease(t *testing.T) {
	l1, dir, k := newTestRCC(t)
	// Fill the line, then store: no traffic (dirty word held locally).
	l1.Access(cpu.Request{Kind: cpu.Load, Addr: addrX}, func(cpu.Response) {})
	drain(k)
	l1.Recv(&msg.Msg{Type: msg.DataV, Addr: lineX, Src: dirID, Data: data(1, 0)})
	drain(k)
	dir.take()
	done := false
	l1.Access(cpu.Request{Kind: cpu.Store, Addr: addrX, Val: 5}, func(cpu.Response) { done = true })
	drain(k)
	if !done || len(dir.sent) != 0 {
		t.Fatal("RCC store must complete locally")
	}
	// A standalone release flushes the dirty word with its mask.
	relDone := false
	l1.Access(cpu.Request{Kind: cpu.Release}, func(cpu.Response) { relDone = true })
	drain(k)
	wt := dir.find(t, msg.WrThrough)
	if wt.Mask != 1<<1 || wt.Data.Word(1) != 5 {
		t.Fatalf("flush wrong: mask=%x data=%v", wt.Mask, wt.Data)
	}
	if relDone {
		t.Fatal("release must wait for the flush ack")
	}
	l1.Recv(&msg.Msg{Type: msg.PutAck, Addr: lineX, Src: dirID})
	drain(k)
	dir.find(t, msg.SyncRel)
	l1.Recv(&msg.Msg{Type: msg.SyncAck, Src: dirID})
	drain(k)
	if !relDone {
		t.Fatal("release not completed after SyncAck")
	}
}

func TestRCCAcquireSelfInvalidates(t *testing.T) {
	l1, dir, k := newTestRCC(t)
	l1.Access(cpu.Request{Kind: cpu.Load, Addr: addrX}, func(cpu.Response) {})
	drain(k)
	l1.Recv(&msg.Msg{Type: msg.DataV, Addr: lineX, Src: dirID, Data: data(1, 1)})
	drain(k)
	dir.take()
	// Acquire drops the clean copy; the next load must re-fetch.
	l1.Access(cpu.Request{Kind: cpu.Acquire}, func(cpu.Response) {})
	drain(k)
	dir.find(t, msg.SyncAcq)
	l1.Recv(&msg.Msg{Type: msg.SyncAck, Src: dirID})
	drain(k)
	if l1.Cache().Probe(lineX) != nil {
		t.Fatal("acquire must self-invalidate clean lines")
	}
	dir.take()
	l1.Access(cpu.Request{Kind: cpu.Load, Addr: addrX}, func(cpu.Response) {})
	drain(k)
	dir.find(t, msg.GetV)
}

func TestRCCAcquireKeepsDirty(t *testing.T) {
	l1, dir, k := newTestRCC(t)
	l1.Access(cpu.Request{Kind: cpu.Load, Addr: addrX}, func(cpu.Response) {})
	drain(k)
	l1.Recv(&msg.Msg{Type: msg.DataV, Addr: lineX, Src: dirID, Data: data(1, 1)})
	drain(k)
	l1.Access(cpu.Request{Kind: cpu.Store, Addr: addrX, Val: 9}, func(cpu.Response) {})
	drain(k)
	dir.take()
	l1.Access(cpu.Request{Kind: cpu.Acquire}, func(cpu.Response) {})
	drain(k)
	l1.Recv(&msg.Msg{Type: msg.SyncAck, Src: dirID})
	drain(k)
	e := l1.Cache().Probe(lineX)
	if e == nil || e.State != rD || e.Data.Word(1) != 9 {
		t.Fatal("acquire must keep the thread's own dirty words")
	}
}

func TestRCCReleaseStoreFlow(t *testing.T) {
	// Fig. 8: a release store flushes older dirty lines first, then
	// writes its own line through.
	l1, dir, k := newTestRCC(t)
	other := mem.Addr(0x5008)
	l1.Access(cpu.Request{Kind: cpu.Load, Addr: other}, func(cpu.Response) {})
	drain(k)
	l1.Recv(&msg.Msg{Type: msg.DataV, Addr: other.Line(), Src: dirID, Data: data(1, 0)})
	drain(k)
	l1.Access(cpu.Request{Kind: cpu.Store, Addr: other, Val: 7}, func(cpu.Response) {})
	drain(k)
	dir.take()

	relDone := false
	l1.Access(cpu.Request{Kind: cpu.Store, Addr: addrX, Val: 1, Rel: true},
		func(cpu.Response) { relDone = true })
	drain(k)
	// First the older dirty line flushes...
	first := dir.find(t, msg.WrThrough)
	if first.Addr != other.Line() {
		t.Fatalf("first flush to %v, want the older dirty line", first.Addr)
	}
	dir.take()
	l1.Recv(&msg.Msg{Type: msg.PutAck, Addr: other.Line(), Src: dirID})
	drain(k)
	// ...then the release line itself.
	rel := dir.find(t, msg.WrThrough)
	if rel.Addr != lineX || !rel.Rel || rel.Data.Word(1) != 1 {
		t.Fatalf("release write-through wrong: %v", rel)
	}
	if relDone {
		t.Fatal("release store must wait for its ack")
	}
	l1.Recv(&msg.Msg{Type: msg.PutAck, Addr: lineX, Src: dirID})
	drain(k)
	if !relDone {
		t.Fatal("release store unfinished")
	}
}

func TestRCCAtomicGoesToC3(t *testing.T) {
	l1, dir, k := newTestRCC(t)
	var old uint64
	l1.Access(cpu.Request{Kind: cpu.RMWAdd, Addr: addrX, Val: 2}, func(r cpu.Response) { old = r.Val })
	drain(k)
	a := dir.find(t, msg.AtomicAdd)
	if a.Word != 1 || a.Val != 2 {
		t.Fatalf("atomic op wrong: %v", a)
	}
	l1.Recv(&msg.Msg{Type: msg.AtomicResp, Addr: lineX, Src: dirID, Val: 40})
	drain(k)
	if old != 40 {
		t.Fatalf("atomic old = %d", old)
	}
}

func TestRCCEvictionFlushesDirty(t *testing.T) {
	l1, dir, k := newTestRCC(t)                                      // 32 lines, 16 sets x 2 ways
	mk := func(i int) mem.Addr { return mem.Addr(0x4000 + i*16*64) } // same set
	for i := 0; i < 3; i++ {
		i := i
		l1.Access(cpu.Request{Kind: cpu.Store, Addr: mk(i), Val: uint64(i + 1)}, func(cpu.Response) {})
		drain(k)
		if t2 := l1.pend[mk(i).Line()]; t2 != nil {
			l1.Recv(&msg.Msg{Type: msg.DataV, Addr: mk(i).Line(), Src: dirID, Data: data(0, 0)})
			drain(k)
		}
	}
	// The third install evicted one dirty line: a WrThrough must have
	// been sent for it.
	found := false
	for _, m := range dir.sent {
		if m.Type == msg.WrThrough {
			found = true
		}
	}
	if !found {
		t.Fatal("dirty eviction must write through")
	}
}

func TestRCCNeedsSyncOps(t *testing.T) {
	l1, _, _ := newTestRCC(t)
	if !l1.NeedsSyncOps() {
		t.Fatal("RCC caches act on sync ops")
	}
	if l1.ID() != l1ID {
		t.Fatal("ID accessor")
	}
}
