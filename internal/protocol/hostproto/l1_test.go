package hostproto

import (
	"testing"

	"c3/internal/cpu"
	"c3/internal/mem"
	"c3/internal/msg"
	"c3/internal/sim"
)

// fakeDir records messages sent by the L1 and lets tests reply.
type fakeDir struct {
	sent []*msg.Msg
}

func (f *fakeDir) Send(m *msg.Msg) { f.sent = append(f.sent, m) }

func (f *fakeDir) take() []*msg.Msg {
	s := f.sent
	f.sent = nil
	return s
}

func (f *fakeDir) find(t *testing.T, ty msg.Type) *msg.Msg {
	t.Helper()
	for _, m := range f.sent {
		if m.Type == ty {
			return m
		}
	}
	t.Fatalf("no %v among %v", ty, f.sent)
	return nil
}

const (
	dirID = msg.NodeID(1)
	l1ID  = msg.NodeID(10)
	lineX = mem.LineAddr(0x4000)
	addrX = mem.Addr(0x4008) // word 1 of lineX
)

func newTestL1(t *testing.T, v Variant) (*L1, *fakeDir, *sim.Kernel) {
	t.Helper()
	k := &sim.Kernel{}
	dir := &fakeDir{}
	l1 := NewL1(l1ID, dirID, k, dir, Config{Variant: v, SizeBytes: 2048, Ways: 2, HitLatency: 1})
	return l1, dir, k
}

func data(w int, v uint64) *mem.Data {
	var d mem.Data
	d.SetWord(w, v)
	return &d
}

func drain(k *sim.Kernel) { k.RunLimit(100_000) }

func TestLoadMissFillHit(t *testing.T) {
	l1, dir, k := newTestL1(t, MESI)
	var got uint64
	var missed bool
	l1.Access(cpu.Request{Kind: cpu.Load, Addr: addrX}, func(r cpu.Response) {
		got, missed = r.Val, r.Missed
	})
	drain(k)
	dir.find(t, msg.GetS)
	l1.Recv(&msg.Msg{Type: msg.DataS, Addr: lineX, Src: dirID, Data: data(1, 42)})
	drain(k)
	if got != 42 || !missed {
		t.Fatalf("fill load got %d missed=%v", got, missed)
	}
	// Second load hits.
	missed = true
	l1.Access(cpu.Request{Kind: cpu.Load, Addr: addrX}, func(r cpu.Response) {
		got, missed = r.Val, r.Missed
	})
	drain(k)
	if got != 42 || missed {
		t.Fatalf("hit load got %d missed=%v", got, missed)
	}
	if l1.Accesses != 2 || l1.Misses != 1 {
		t.Fatalf("stats %d/%d", l1.Accesses, l1.Misses)
	}
}

func TestSilentEtoMUpgrade(t *testing.T) {
	l1, dir, k := newTestL1(t, MESI)
	l1.Access(cpu.Request{Kind: cpu.Load, Addr: addrX}, func(cpu.Response) {})
	drain(k)
	l1.Recv(&msg.Msg{Type: msg.DataE, Addr: lineX, Src: dirID, Data: data(1, 1)})
	drain(k)
	dir.take()
	// Store hits E silently: no GetM.
	done := false
	l1.Access(cpu.Request{Kind: cpu.Store, Addr: addrX, Val: 9}, func(cpu.Response) { done = true })
	drain(k)
	if !done {
		t.Fatal("store on E should complete locally")
	}
	if len(dir.sent) != 0 {
		t.Fatalf("unexpected traffic: %v", dir.sent)
	}
	// The dirty data is surrendered on SnpInv.
	l1.Recv(&msg.Msg{Type: msg.SnpInv, Addr: lineX, Src: dirID})
	drain(k)
	rsp := dir.find(t, msg.SnpRspInv)
	if !rsp.Dirty || rsp.Data.Word(1) != 9 {
		t.Fatalf("snoop response wrong: %v", rsp)
	}
	if l1.Cache().Probe(lineX) != nil {
		t.Fatal("line should be invalidated")
	}
}

func TestUpgradeFromShared(t *testing.T) {
	l1, dir, k := newTestL1(t, MESI)
	l1.Access(cpu.Request{Kind: cpu.Load, Addr: addrX}, func(cpu.Response) {})
	drain(k)
	l1.Recv(&msg.Msg{Type: msg.DataS, Addr: lineX, Src: dirID, Data: data(1, 1)})
	drain(k)
	dir.take()
	var stDone bool
	l1.Access(cpu.Request{Kind: cpu.Store, Addr: addrX, Val: 2}, func(cpu.Response) { stDone = true })
	drain(k)
	dir.find(t, msg.GetM)
	if stDone {
		t.Fatal("store completed without ownership")
	}
	l1.Recv(&msg.Msg{Type: msg.DataM, Addr: lineX, Src: dirID, Data: data(1, 1)})
	drain(k)
	if !stDone {
		t.Fatal("store not completed after DataM")
	}
	if e := l1.Cache().Probe(lineX); e == nil || e.State != stM || e.Data.Word(1) != 2 {
		t.Fatalf("post-upgrade entry: %+v", e)
	}
}

func TestQueuedOpsRideOneTransaction(t *testing.T) {
	l1, dir, k := newTestL1(t, MESI)
	vals := map[int]uint64{}
	for i := 0; i < 3; i++ {
		i := i
		a := lineX.Addr() + mem.Addr(i*8)
		l1.Access(cpu.Request{Kind: cpu.Load, Addr: a}, func(r cpu.Response) { vals[i] = r.Val })
	}
	drain(k)
	if n := len(dir.take()); n != 1 {
		t.Fatalf("%d requests sent, want 1 (coalesced)", n)
	}
	var d mem.Data
	d.SetWord(0, 10)
	d.SetWord(1, 11)
	d.SetWord(2, 12)
	l1.Recv(&msg.Msg{Type: msg.DataS, Addr: lineX, Src: dirID, Data: &d})
	drain(k)
	if vals[0] != 10 || vals[1] != 11 || vals[2] != 12 {
		t.Fatalf("queued loads: %v", vals)
	}
}

func TestEvictionWritesBackDirty(t *testing.T) {
	l1, dir, k := newTestL1(t, MESI) // 2048 B = 32 lines, 16 sets x 2 ways
	// Fill two ways of one set dirty, then force a third line in.
	mk := func(i int) mem.LineAddr { return mem.LineAddr(0x4000 + i*16*64) } // same set
	for i := 0; i < 2; i++ {
		l1.Access(cpu.Request{Kind: cpu.Store, Addr: mk(i).Addr(), Val: uint64(i)}, func(cpu.Response) {})
		drain(k)
		l1.Recv(&msg.Msg{Type: msg.DataM, Addr: mk(i), Src: dirID, Data: data(0, 0)})
		drain(k)
	}
	dir.take()
	l1.Access(cpu.Request{Kind: cpu.Load, Addr: mk(2).Addr()}, func(cpu.Response) {})
	drain(k)
	put := dir.find(t, msg.PutM)
	if put.Data == nil {
		t.Fatal("PutM must carry data")
	}
	dir.find(t, msg.GetS)
	// PutAck retires the evict TBE.
	l1.Recv(&msg.Msg{Type: msg.PutAck, Addr: put.Addr, Src: dirID})
	drain(k)
	if l1.evs[put.Addr] != nil {
		t.Fatal("evict TBE not retired")
	}
}

func TestMOESIOwnerKeepsDirtyOnSnpData(t *testing.T) {
	l1, dir, k := newTestL1(t, MOESI)
	l1.Access(cpu.Request{Kind: cpu.Store, Addr: addrX, Val: 5}, func(cpu.Response) {})
	drain(k)
	l1.Recv(&msg.Msg{Type: msg.DataM, Addr: lineX, Src: dirID, Data: data(1, 0)})
	drain(k)
	dir.take()
	l1.Recv(&msg.Msg{Type: msg.SnpData, Addr: lineX, Src: dirID})
	drain(k)
	rsp := dir.find(t, msg.SnpRspData)
	if !rsp.Dirty || rsp.Data.Word(1) != 5 {
		t.Fatalf("MOESI snoop response: %v", rsp)
	}
	if e := l1.Cache().Probe(lineX); e == nil || e.State != stO {
		t.Fatalf("MOESI owner should hold O, got %+v", e)
	}
	// Eviction of O uses PutO with data.
	dir.take()
	l1.evictEntry(l1.Cache().Probe(lineX))
	drain(k)
	put := dir.find(t, msg.PutO)
	if put.Data.Word(1) != 5 {
		t.Fatal("PutO lost data")
	}
}

func TestMESIFillBecomesForwarder(t *testing.T) {
	l1, dir, k := newTestL1(t, MESIF)
	l1.Access(cpu.Request{Kind: cpu.Load, Addr: addrX}, func(cpu.Response) {})
	drain(k)
	l1.Recv(&msg.Msg{Type: msg.DataS, Addr: lineX, Src: dirID, Data: data(1, 7)})
	drain(k)
	if e := l1.Cache().Probe(lineX); e == nil || e.State != stF {
		t.Fatalf("MESIF shared fill should land in F, got %+v", e)
	}
	// The forwarder answers SnpData clean and demotes to S.
	dir.take()
	l1.Recv(&msg.Msg{Type: msg.SnpData, Addr: lineX, Src: dirID})
	drain(k)
	rsp := dir.find(t, msg.SnpRspData)
	if rsp.Dirty || rsp.Data.Word(1) != 7 {
		t.Fatalf("forwarder response: %v", rsp)
	}
	if e := l1.Cache().Probe(lineX); e.State != stS {
		t.Fatalf("forwarder should demote to S, got %s", stateName(e.State))
	}
}

func TestRMWNeedsOwnership(t *testing.T) {
	l1, dir, k := newTestL1(t, MESI)
	var old uint64
	l1.Access(cpu.Request{Kind: cpu.RMWAdd, Addr: addrX, Val: 3}, func(r cpu.Response) { old = r.Val })
	drain(k)
	dir.find(t, msg.GetM)
	l1.Recv(&msg.Msg{Type: msg.DataM, Addr: lineX, Src: dirID, Data: data(1, 10)})
	drain(k)
	if old != 10 {
		t.Fatalf("RMW old = %d, want 10", old)
	}
	if e := l1.Cache().Probe(lineX); e.Data.Word(1) != 13 {
		t.Fatalf("RMW result = %d, want 13", e.Data.Word(1))
	}
}

func TestInvDuringFillIsUseOnce(t *testing.T) {
	l1, dir, k := newTestL1(t, MESI)
	var got uint64
	l1.Access(cpu.Request{Kind: cpu.Load, Addr: addrX}, func(r cpu.Response) { got = r.Val })
	drain(k)
	dir.take()
	// The Inv overtakes the grant: ack immediately, then the fill serves
	// the queued load once and dies.
	l1.Recv(&msg.Msg{Type: msg.Inv, Addr: lineX, Src: dirID})
	drain(k)
	dir.find(t, msg.InvAck)
	l1.Recv(&msg.Msg{Type: msg.DataS, Addr: lineX, Src: dirID, Data: data(1, 33)})
	drain(k)
	if got != 33 {
		t.Fatalf("use-once load got %d", got)
	}
	if l1.Cache().Probe(lineX) != nil {
		t.Fatal("use-once fill must not install")
	}
}

func TestPrefetchWarmsOwnership(t *testing.T) {
	l1, dir, k := newTestL1(t, MESI)
	l1.Access(cpu.Request{Kind: cpu.Prefetch, Addr: addrX}, func(cpu.Response) {})
	drain(k)
	dir.find(t, msg.GetM)
	l1.Recv(&msg.Msg{Type: msg.DataM, Addr: lineX, Src: dirID, Data: data(1, 0)})
	drain(k)
	dir.take()
	done := false
	l1.Access(cpu.Request{Kind: cpu.Store, Addr: addrX, Val: 1}, func(cpu.Response) { done = true })
	drain(k)
	if !done || len(dir.sent) != 0 {
		t.Fatal("store after prefetch should hit locally")
	}
	// Prefetches don't pollute access stats.
	if l1.Accesses != 1 {
		t.Fatalf("Accesses = %d, want 1", l1.Accesses)
	}
}

func TestVariantString(t *testing.T) {
	if MESI.String() != "MESI" || MOESI.String() != "MOESI" || MESIF.String() != "MESIF" {
		t.Fatal("variant stringers")
	}
}

func TestSnpInvDuringEviction(t *testing.T) {
	// The evict TBE answers snoops that cross its Put in flight.
	l1, dir, k := newTestL1(t, MESI)
	l1.Access(cpu.Request{Kind: cpu.Store, Addr: addrX, Val: 4}, func(cpu.Response) {})
	drain(k)
	l1.Recv(&msg.Msg{Type: msg.DataM, Addr: lineX, Src: dirID, Data: data(1, 0)})
	drain(k)
	dir.take()
	l1.evictEntry(l1.Cache().Probe(lineX))
	drain(k)
	dir.find(t, msg.PutM)
	dir.take()
	// The directory's SnpInv crosses the PutM.
	l1.Recv(&msg.Msg{Type: msg.SnpInv, Addr: lineX, Src: dirID})
	drain(k)
	rsp := dir.find(t, msg.SnpRspInv)
	if !rsp.Dirty || rsp.Data.Word(1) != 4 {
		t.Fatalf("evict TBE snoop response: %v", rsp)
	}
	// The stale PutAck still retires the TBE.
	l1.Recv(&msg.Msg{Type: msg.PutAck, Addr: lineX, Src: dirID})
	drain(k)
	if l1.evs[lineX] != nil {
		t.Fatal("evict TBE leaked")
	}
}

func TestSnpDataDuringEvictionDemotes(t *testing.T) {
	l1, dir, k := newTestL1(t, MESI)
	l1.Access(cpu.Request{Kind: cpu.Store, Addr: addrX, Val: 4}, func(cpu.Response) {})
	drain(k)
	l1.Recv(&msg.Msg{Type: msg.DataM, Addr: lineX, Src: dirID, Data: data(1, 0)})
	drain(k)
	dir.take()
	l1.evictEntry(l1.Cache().Probe(lineX))
	drain(k)
	dir.take()
	l1.Recv(&msg.Msg{Type: msg.SnpData, Addr: lineX, Src: dirID})
	drain(k)
	rsp := dir.find(t, msg.SnpRspData)
	if !rsp.Dirty || rsp.Data.Word(1) != 4 {
		t.Fatalf("evict TBE SnpData response: %v", rsp)
	}
	// A later Inv (now a "shared" evictor) gets a plain ack.
	dir.take()
	l1.Recv(&msg.Msg{Type: msg.Inv, Addr: lineX, Src: dirID})
	drain(k)
	dir.find(t, msg.InvAck)
}

func TestOwnerSnoopStalledUntilGrant(t *testing.T) {
	// A SnpInv that overtakes our DataM grant parks until the fill, then
	// answers from the granted state.
	l1, dir, k := newTestL1(t, MESI)
	var stDone bool
	l1.Access(cpu.Request{Kind: cpu.Store, Addr: addrX, Val: 6}, func(cpu.Response) { stDone = true })
	drain(k)
	dir.take()
	l1.Recv(&msg.Msg{Type: msg.SnpInv, Addr: lineX, Src: dirID})
	drain(k)
	if len(dir.sent) != 0 {
		t.Fatalf("snoop answered before the grant: %v", dir.sent)
	}
	l1.Recv(&msg.Msg{Type: msg.DataM, Addr: lineX, Src: dirID, Data: data(1, 0)})
	drain(k)
	if !stDone {
		t.Fatal("rider store unfinished")
	}
	rsp := dir.find(t, msg.SnpRspInv)
	if !rsp.Dirty || rsp.Data.Word(1) != 6 {
		t.Fatalf("post-grant snoop response: %v", rsp)
	}
	if l1.Cache().Probe(lineX) != nil {
		t.Fatal("line should be gone after the parked snoop")
	}
}
