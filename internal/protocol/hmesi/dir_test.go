package hmesi

import (
	"testing"

	"c3/internal/mem"
	"c3/internal/msg"
	"c3/internal/network"
	"c3/internal/sim"
)

type host struct {
	id  msg.NodeID
	net *network.Network
	got []*msg.Msg
	// auto answers forwards like a well-behaved C3 global cache.
	auto func(h *host, m *msg.Msg)
}

func (h *host) Recv(m *msg.Msg) {
	h.got = append(h.got, m)
	if h.auto != nil {
		h.auto(h, m)
	}
}

func (h *host) send(m *msg.Msg) {
	m.Src = h.id
	h.net.Send(m)
}

func (h *host) last(t *testing.T, want msg.Type) *msg.Msg {
	t.Helper()
	for i := len(h.got) - 1; i >= 0; i-- {
		if h.got[i].Type == want {
			return h.got[i]
		}
	}
	t.Fatalf("host %d: no %v in %v", h.id, want, h.got)
	return nil
}

const lineA = mem.LineAddr(0x2000)

func setup(t *testing.T) (*sim.Kernel, *Dir, *host, *host) {
	t.Helper()
	k := &sim.Kernel{}
	net := network.New(k, 3)
	dram := mem.NewDRAM(k, mem.DefaultDRAMConfig())
	d := New(100, k, net, dram)
	h1 := &host{id: 1, net: net}
	h2 := &host{id: 2, net: net}
	net.Register(100, d)
	net.Register(1, h1)
	net.Register(2, h2)
	net.Connect(1, 100, network.CrossCluster())
	net.Connect(2, 100, network.CrossCluster())
	net.Connect(1, 2, network.CrossCluster())
	return k, d, h1, h2
}

func TestColdGetSGrantsExclusive(t *testing.T) {
	k, d, h1, _ := setup(t)
	var v mem.Data
	v.SetWord(0, 5)
	d.DRAM().Poke(lineA, v)
	h1.send(&msg.Msg{Type: msg.GGetS, Addr: lineA, Dst: 100, VNet: msg.VReq})
	k.Run(nil)
	m := h1.last(t, msg.GDataE)
	if m.Data.Word(0) != 5 {
		t.Fatalf("GDataE data %d", m.Data.Word(0))
	}
	st, owner, _ := d.StateOf(lineA)
	if st != "E" || owner != 1 {
		t.Fatalf("dir %s/%d", st, owner)
	}
}

func TestGetMPipelinesOwnershipHandoff(t *testing.T) {
	k, d, h1, h2 := setup(t)
	// h1 takes M; when forwarded, it supplies data peer-to-peer.
	h1.auto = func(h *host, m *msg.Msg) {
		if m.Type == msg.GFwdGetM {
			var dd mem.Data
			dd.SetWord(0, 9)
			h.send(&msg.Msg{Type: msg.GDataM, Addr: m.Addr, Dst: m.Req, VNet: msg.VRsp,
				Data: msg.WithData(dd)})
		}
	}
	h1.send(&msg.Msg{Type: msg.GGetM, Addr: lineA, Dst: 100, VNet: msg.VReq})
	k.Run(nil)
	h1.last(t, msg.GDataM)

	h2.send(&msg.Msg{Type: msg.GGetM, Addr: lineA, Dst: 100, VNet: msg.VReq})
	k.Run(nil)
	m := h2.last(t, msg.GDataM)
	if m.Src != 1 || m.Data.Word(0) != 9 {
		t.Fatalf("peer data transfer wrong: %v", m)
	}
	st, owner, _ := d.StateOf(lineA)
	if st != "M" || owner != 2 {
		t.Fatalf("dir %s/%d, want M/2", st, owner)
	}
	if d.Stats.Fwds != 1 {
		t.Fatalf("Fwds = %d", d.Stats.Fwds)
	}
}

func TestGetSFromOwnerTriggersCopyBack(t *testing.T) {
	k, d, h1, h2 := setup(t)
	h1.auto = func(h *host, m *msg.Msg) {
		if m.Type == msg.GFwdGetS {
			var dd mem.Data
			dd.SetWord(1, 4)
			h.send(&msg.Msg{Type: msg.GDataS, Addr: m.Addr, Dst: m.Req, VNet: msg.VRsp,
				Data: msg.WithData(dd)})
			h.send(&msg.Msg{Type: msg.GCopyBack, Addr: m.Addr, Dst: 100, VNet: msg.VReq,
				Data: msg.WithData(dd)})
		}
	}
	h1.send(&msg.Msg{Type: msg.GGetM, Addr: lineA, Dst: 100, VNet: msg.VReq})
	k.Run(nil)
	h2.send(&msg.Msg{Type: msg.GGetS, Addr: lineA, Dst: 100, VNet: msg.VReq})
	k.Run(nil)
	if h2.last(t, msg.GDataS).Data.Word(1) != 4 {
		t.Fatal("reader missed forwarded data")
	}
	st, _, sharers := d.StateOf(lineA)
	if st != "S" || len(sharers) != 2 {
		t.Fatalf("dir %s %v after copy-back", st, sharers)
	}
	if pw := d.DRAM().Peek(lineA); pw.Word(1) != 4 {
		t.Fatal("copy-back did not update memory")
	}
}

func TestGetMInvalidatesSharersWithAcksToRequestor(t *testing.T) {
	k, d, h1, h2 := setup(t)
	ackSharer := func(h *host, m *msg.Msg) {
		if m.Type == msg.GInv {
			h.send(&msg.Msg{Type: msg.GInvAck, Addr: m.Addr, Dst: m.Req, VNet: msg.VRsp})
		}
	}
	h1.auto = ackSharer
	h2.auto = ackSharer
	// Both read (h1 E, then downgrade path via fwd is exercised elsewhere;
	// simpler: h1 reads, h2 reads -> S with two sharers).
	h1.auto = func(h *host, m *msg.Msg) {
		ackSharer(h, m)
		if m.Type == msg.GFwdGetS {
			h.send(&msg.Msg{Type: msg.GDataS, Addr: m.Addr, Dst: m.Req, VNet: msg.VRsp,
				Data: msg.WithData(mem.Data{})})
			h.send(&msg.Msg{Type: msg.GCopyBack, Addr: m.Addr, Dst: 100, VNet: msg.VReq,
				Data: msg.WithData(mem.Data{})})
		}
	}
	h1.send(&msg.Msg{Type: msg.GGetS, Addr: lineA, Dst: 100, VNet: msg.VReq})
	k.Run(nil)
	h2.send(&msg.Msg{Type: msg.GGetS, Addr: lineA, Dst: 100, VNet: msg.VReq})
	k.Run(nil)

	// h2 upgrades: h1 must be GInv'd, acking to h2; dir grants with the
	// ack count.
	h2.send(&msg.Msg{Type: msg.GGetM, Addr: lineA, Dst: 100, VNet: msg.VReq})
	k.Run(nil)
	grant := h2.last(t, msg.GDataM)
	if grant.Acks != 1 {
		t.Fatalf("acks = %d, want 1", grant.Acks)
	}
	h2.last(t, msg.GInvAck)
	st, owner, _ := d.StateOf(lineA)
	if st != "M" || owner != 2 {
		t.Fatalf("dir %s/%d", st, owner)
	}
}

func TestPutMWritesBack(t *testing.T) {
	k, d, h1, _ := setup(t)
	h1.send(&msg.Msg{Type: msg.GGetM, Addr: lineA, Dst: 100, VNet: msg.VReq})
	k.Run(nil)
	var v mem.Data
	v.SetWord(0, 8)
	h1.send(&msg.Msg{Type: msg.GPutM, Addr: lineA, Dst: 100, VNet: msg.VReq,
		Data: msg.WithData(v), Dirty: true})
	k.Run(nil)
	h1.last(t, msg.GPutAck)
	st, _, _ := d.StateOf(lineA)
	if st != "I" {
		t.Fatalf("dir %s after PutM", st)
	}
	if pw := d.DRAM().Peek(lineA); pw.Word(0) != 8 {
		t.Fatal("writeback lost")
	}
}

func TestStalePutAcked(t *testing.T) {
	k, d, h1, h2 := setup(t)
	h1.auto = func(h *host, m *msg.Msg) {
		if m.Type == msg.GFwdGetM {
			h.send(&msg.Msg{Type: msg.GDataM, Addr: m.Addr, Dst: m.Req, VNet: msg.VRsp,
				Data: msg.WithData(mem.Data{})})
		}
	}
	h1.send(&msg.Msg{Type: msg.GGetM, Addr: lineA, Dst: 100, VNet: msg.VReq})
	k.Run(nil)
	h2.send(&msg.Msg{Type: msg.GGetM, Addr: lineA, Dst: 100, VNet: msg.VReq})
	k.Run(nil)
	// h1's eviction is now stale (ownership moved to h2): ack, ignore.
	var v mem.Data
	v.SetWord(0, 123)
	d.DRAM().Poke(lineA, mem.Data{})
	h1.send(&msg.Msg{Type: msg.GPutM, Addr: lineA, Dst: 100, VNet: msg.VReq,
		Data: msg.WithData(v), Dirty: true})
	k.Run(nil)
	h1.last(t, msg.GPutAck)
	st, owner, _ := d.StateOf(lineA)
	if st != "M" || owner != 2 {
		t.Fatalf("stale put changed dir: %s/%d", st, owner)
	}
	if pw := d.DRAM().Peek(lineA); pw.Word(0) == 123 {
		t.Fatal("stale put data absorbed")
	}
}

func TestPutSLeavesSharing(t *testing.T) {
	k, d, h1, h2 := setup(t)
	h1.auto = func(h *host, m *msg.Msg) {
		if m.Type == msg.GFwdGetS {
			h.send(&msg.Msg{Type: msg.GDataS, Addr: m.Addr, Dst: m.Req, VNet: msg.VRsp,
				Data: msg.WithData(mem.Data{})})
			h.send(&msg.Msg{Type: msg.GCopyBack, Addr: m.Addr, Dst: 100, VNet: msg.VReq,
				Data: msg.WithData(mem.Data{})})
		}
	}
	h1.send(&msg.Msg{Type: msg.GGetS, Addr: lineA, Dst: 100, VNet: msg.VReq})
	k.Run(nil)
	h2.send(&msg.Msg{Type: msg.GGetS, Addr: lineA, Dst: 100, VNet: msg.VReq})
	k.Run(nil)
	h1.send(&msg.Msg{Type: msg.GPutS, Addr: lineA, Dst: 100, VNet: msg.VReq})
	k.Run(nil)
	h1.last(t, msg.GPutAck)
	st, _, sharers := d.StateOf(lineA)
	if st != "S" || len(sharers) != 1 || sharers[0] != 2 {
		t.Fatalf("dir %s %v after PutS", st, sharers)
	}
	h2.send(&msg.Msg{Type: msg.GPutS, Addr: lineA, Dst: 100, VNet: msg.VReq})
	k.Run(nil)
	st, _, _ = d.StateOf(lineA)
	if st != "I" {
		t.Fatalf("dir %s after last PutS", st)
	}
}

func TestEvictionCrossingForward(t *testing.T) {
	// The owner's GPutM doubles as the copy-back when it crosses a
	// GFwdGetS (the putM-while-busy path).
	k, d, h1, h2 := setup(t)
	var sawFwd bool
	h1.auto = func(h *host, m *msg.Msg) {
		if m.Type == msg.GFwdGetS {
			sawFwd = true
			// Evicting owner: answer the requestor from the eviction
			// buffer; the in-flight GPutM serves as the copy-back.
			var dd mem.Data
			dd.SetWord(0, 6)
			h.send(&msg.Msg{Type: msg.GDataS, Addr: m.Addr, Dst: m.Req, VNet: msg.VRsp,
				Data: msg.WithData(dd)})
		}
	}
	h1.send(&msg.Msg{Type: msg.GGetM, Addr: lineA, Dst: 100, VNet: msg.VReq})
	k.Run(nil)
	// Deliver GGetS first so the dir blocks awaiting a copy-back, then
	// the crossing GPutM.
	h2.send(&msg.Msg{Type: msg.GGetS, Addr: lineA, Dst: 100, VNet: msg.VReq})
	k.Run(nil)
	if !sawFwd {
		t.Fatal("no forward issued")
	}
	var v mem.Data
	v.SetWord(0, 6)
	h1.send(&msg.Msg{Type: msg.GPutM, Addr: lineA, Dst: 100, VNet: msg.VReq,
		Data: msg.WithData(v), Dirty: true})
	k.Run(nil)
	h1.last(t, msg.GPutAck)
	st, _, sharers := d.StateOf(lineA)
	if st != "S" || len(sharers) != 1 || sharers[0] != 2 {
		t.Fatalf("dir %s %v after crossing eviction", st, sharers)
	}
	if pw := d.DRAM().Peek(lineA); pw.Word(0) != 6 {
		t.Fatal("crossing put data lost")
	}
}

// --- host-crash reclamation ---

func TestReclaimDeadOwnerPoisons(t *testing.T) {
	k, d, h1, h2 := setup(t)
	h1.send(&msg.Msg{Type: msg.GGetM, Addr: lineA, Dst: 100, VNet: msg.VReq})
	k.Run(nil)
	h1.last(t, msg.GDataM)

	rec := d.ReclaimHost(1)
	k.Run(nil)
	if rec.Reclaimed == 0 || rec.Poisoned != 1 || rec.PoisonedLines[0] != lineA {
		t.Fatalf("Reclaim = %+v", rec)
	}
	if d.ReferencesHost(1) {
		t.Fatal("isolation invariant: dead owner still recorded")
	}
	st, owner, _ := d.StateOf(lineA)
	if st != "I" || owner != msg.None {
		t.Fatalf("post-reclaim state %s/%d", st, owner)
	}
	// A survivor's read completes, flagged poisoned.
	h2.send(&msg.Msg{Type: msg.GGetS, Addr: lineA, Dst: 100, VNet: msg.VReq})
	k.Run(nil)
	if m := h2.last(t, msg.GDataE); !m.Poisoned {
		t.Fatal("grant of a crash-lost line must carry the poison flag")
	}
}

func TestReclaimUnblocksCopyBackWaiter(t *testing.T) {
	k, d, h1, h2 := setup(t)
	h1.send(&msg.Msg{Type: msg.GGetM, Addr: lineA, Dst: 100, VNet: msg.VReq})
	k.Run(nil)
	h1.last(t, msg.GDataM)

	// h1 never answers the GFwdGetS, so h2's read blocks in the
	// copy-back flow — exactly the wedge a crashed owner causes.
	h2.send(&msg.Msg{Type: msg.GGetS, Addr: lineA, Dst: 100, VNet: msg.VReq})
	k.Run(nil)

	rec := d.ReclaimHost(1)
	k.Run(nil)
	if rec.Poisoned != 1 || rec.NAKed == 0 {
		t.Fatalf("Reclaim = %+v: want poison + synthesized grant", rec)
	}
	if m := h2.last(t, msg.GData); !m.Poisoned {
		t.Fatal("synthesized completion must be poisoned")
	}
	if d.ReferencesHost(1) {
		t.Fatal("isolation invariant violated after unblock")
	}
}

func TestReclaimCoversPipelinedHandoff(t *testing.T) {
	k, d, h1, h2 := setup(t)
	h1.send(&msg.Msg{Type: msg.GGetM, Addr: lineA, Dst: 100, VNet: msg.VReq})
	k.Run(nil)
	h1.last(t, msg.GDataM)

	// Pipelined hand-off: the directory re-points ownership to h2 the
	// moment it forwards, trusting h1 to send GDataM peer-to-peer. h1
	// dies without sending it.
	h2.send(&msg.Msg{Type: msg.GGetM, Addr: lineA, Dst: 100, VNet: msg.VReq})
	k.Run(nil)

	rec := d.ReclaimHost(1)
	k.Run(nil)
	if rec.NAKed == 0 || rec.Poisoned != 1 {
		t.Fatalf("Reclaim = %+v: lost hand-off must synthesize a poisoned GDataM", rec)
	}
	if m := h2.last(t, msg.GDataM); !m.Poisoned {
		t.Fatal("synthesized ownership grant must be poisoned")
	}
	if d.ReferencesHost(1) {
		t.Fatal("isolation invariant: lastFwdFrom still names the dead host")
	}
	// h2 really owns the line now.
	st, owner, _ := d.StateOf(lineA)
	if st != "M" || owner != 2 {
		t.Fatalf("post-handoff state %s/%d, want M/2", st, owner)
	}
}

func TestDirReviveHostReadmitsCold(t *testing.T) {
	k, d, h1, _ := setup(t)
	h1.send(&msg.Msg{Type: msg.GGetM, Addr: lineA, Dst: 100, VNet: msg.VReq})
	k.Run(nil)
	d.ReclaimHost(1)
	k.Run(nil)
	h1.got = nil
	h1.send(&msg.Msg{Type: msg.GGetS, Addr: lineA, Dst: 100, VNet: msg.VReq})
	k.Run(nil)
	if len(h1.got) != 0 {
		t.Fatalf("dead host got %v", h1.got)
	}
	d.ReviveHost(1)
	h1.send(&msg.Msg{Type: msg.GGetS, Addr: lineA, Dst: 100, VNet: msg.VReq})
	k.Run(nil)
	if m := h1.last(t, msg.GDataE); !m.Poisoned {
		t.Fatal("revived host must still see sticky poison")
	}
}
