package hmesi

import (
	"c3/internal/mem"
	"c3/internal/msg"
	"c3/internal/network"
	"c3/internal/sim"
)

// Clone returns a deep copy of the directory for model-checker
// snapshots, attached to kernel k, fabric net, and an already-cloned
// dram. All directory state is plain data; memory-access continuations
// live as kernel events and must have drained before cloning. The
// tracer is not carried over.
func (d *Dir) Clone(k *sim.Kernel, net network.Fabric, dram *mem.DRAM) *Dir {
	n := &Dir{
		id: d.id, k: k, net: net, dram: dram, Lat: d.Lat,
		lines:    make(map[mem.LineAddr]*hline, len(d.lines)),
		dead:     make(map[msg.NodeID]bool, len(d.dead)),
		poisoned: make(map[mem.LineAddr]bool, len(d.poisoned)),
		Stats:    d.Stats,
	}
	for id, v := range d.dead {
		n.dead[id] = v
	}
	for a, v := range d.poisoned {
		n.poisoned[a] = v
	}
	for a, l := range d.lines {
		nl := &hline{
			state: l.state, owner: l.owner, busy: l.busy,
			copyBackFrom: l.copyBackFrom, pendingReq: l.pendingReq,
			lastFwdFrom: l.lastFwdFrom,
			sharers:     make(map[msg.NodeID]bool, len(l.sharers)),
		}
		for id, v := range l.sharers {
			nl.sharers[id] = v
		}
		for _, m := range l.queue {
			nl.queue = append(nl.queue, m.Clone())
		}
		n.lines[a] = nl
	}
	return n
}
