package hmesi

import (
	"c3/internal/mem"
	"c3/internal/msg"
	"c3/internal/network"
	"c3/internal/sim"
)

// Clone returns a deep copy of the directory for model-checker
// snapshots, attached to kernel k, fabric net, and an already-cloned
// dram. All directory state is plain data; memory-access continuations
// live as kernel events and must have drained before cloning. The
// tracer is not carried over.
//
// Messages are immutable after Send (see msg.Msg), so queued *msg.Msg
// pointers are shared with the original rather than deep-copied; queue
// slice headers are still private, so post-clone appends never touch
// the original's backing array. Directory records are allocated as one
// slab, and sharer/dead vectors are NodeSet values that copy with their
// struct — a clone costs O(lines) flat copies, not O(lines) maps.
func (d *Dir) Clone(k *sim.Kernel, net network.Fabric, dram *mem.DRAM) *Dir {
	n := &Dir{
		id: d.id, k: k, net: net, dram: dram, Lat: d.Lat,
		lines:    make(map[mem.LineAddr]*hline, len(d.lines)),
		dead:     d.dead,
		poisoned: make(map[mem.LineAddr]bool, len(d.poisoned)),
		Stats:    d.Stats,
	}
	for a, v := range d.poisoned {
		n.poisoned[a] = v
	}
	slab := make([]hline, len(d.lines))
	i := 0
	for a, l := range d.lines {
		nl := &slab[i]
		i++
		*nl = *l
		if len(l.queue) > 0 {
			nl.queue = append([]*msg.Msg(nil), l.queue...)
		}
		n.lines[a] = nl
	}
	return n
}
