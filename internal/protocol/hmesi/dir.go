// Package hmesi implements the hierarchical MESI global directory used
// as the paper's MESI-MESI-MESI baseline: a textbook 3-hop directory
// where data travels peer-to-peer between C3 instances and ownership
// transfers are pipelined (the directory updates its owner pointer when
// it forwards, without waiting for any response) — the property that
// makes the baseline faster than CXL under write contention (Sec. VI-C).
//
// The directory blocks a line only while reading device memory or while
// awaiting the data copy-back that accompanies an owner downgrade
// (GFwdGetS -> GCopyBack); GetM chains pipeline freely.
package hmesi

import (
	"fmt"

	"c3/internal/mem"
	"c3/internal/msg"
	"c3/internal/network"
	"c3/internal/sim"
	"c3/internal/trace"
)

const (
	hI = iota
	hS
	hE
	hM
)

func hname(s int) string { return [...]string{"I", "S", "E", "M"}[s] }

type hline struct {
	state   int
	owner   msg.NodeID
	sharers map[msg.NodeID]bool
	// busy is set while reading memory or awaiting a GCopyBack.
	busy bool
	// copyBackFrom/pendingReq track the in-flight owner downgrade.
	copyBackFrom msg.NodeID
	pendingReq   msg.NodeID
	queue        []*msg.Msg
}

// Stats aggregates directory telemetry.
type Stats struct {
	Reads, Writes, Fwds, Invs, Stalls uint64
}

// Dir is the global MESI directory co-located with device memory.
type Dir struct {
	id   msg.NodeID
	k    *sim.Kernel
	net  network.Fabric
	dram *mem.DRAM
	// Lat is the controller occupancy added to outgoing messages.
	Lat sim.Time

	lines map[mem.LineAddr]*hline

	// Tracer, when non-nil, observes directory state transitions.
	Tracer *trace.Tracer

	Stats Stats
}

// traceState emits a directory transition. Callers guard on d.Tracer.
func (d *Dir) traceState(a mem.LineAddr, old int, note string) {
	l := d.lines[a]
	new := hI
	if l != nil {
		new = l.state
	}
	d.Tracer.State(d.k.Now(), d.id, a, hname(old), hname(new), note)
}

// New builds the directory with its backing memory.
func New(id msg.NodeID, k *sim.Kernel, net network.Fabric, dram *mem.DRAM) *Dir {
	return &Dir{id: id, k: k, net: net, dram: dram, Lat: 4,
		lines: make(map[mem.LineAddr]*hline)}
}

// ID returns the directory's network id.
func (d *Dir) ID() msg.NodeID { return d.id }

// DRAM exposes the backing memory.
func (d *Dir) DRAM() *mem.DRAM { return d.dram }

func (d *Dir) line(a mem.LineAddr) *hline {
	l := d.lines[a]
	if l == nil {
		l = &hline{owner: msg.None, copyBackFrom: msg.None, pendingReq: msg.None,
			sharers: make(map[msg.NodeID]bool)}
		d.lines[a] = l
	}
	return l
}

func (d *Dir) send(m *msg.Msg) {
	m.Src = d.id
	d.k.After(d.Lat, func() { d.net.Send(m) })
}

// Recv implements network.Port.
func (d *Dir) Recv(m *msg.Msg) {
	switch m.Type {
	case msg.GGetS:
		d.getS(m)
	case msg.GGetM:
		d.getM(m)
	case msg.GPutM:
		d.putM(m)
	case msg.GPutS:
		d.putS(m)
	case msg.GCopyBack:
		d.copyBack(m)
	default:
		panic(fmt.Sprintf("hmesi: dir got unexpected %v", m))
	}
}

func (d *Dir) getS(m *msg.Msg) {
	l := d.line(m.Addr)
	if l.busy {
		d.Stats.Stalls++
		l.queue = append(l.queue, m)
		return
	}
	d.Stats.Reads++
	switch l.state {
	case hI:
		l.busy = true
		d.dram.Read(m.Addr, func(data mem.Data) {
			// Sole reader: grant exclusive-clean, MESI style.
			l.state = hE
			l.owner = m.Src
			l.busy = false
			if d.Tracer != nil {
				d.traceState(m.Addr, hI, "GGetS")
			}
			d.send(&msg.Msg{Type: msg.GDataE, Addr: m.Addr, Dst: m.Src, VNet: msg.VRsp,
				Data: msg.WithData(data)})
			d.drain(m.Addr, l)
		})
	case hS:
		l.busy = true
		d.dram.Read(m.Addr, func(data mem.Data) {
			l.sharers[m.Src] = true
			l.busy = false
			d.send(&msg.Msg{Type: msg.GData, Addr: m.Addr, Dst: m.Src, VNet: msg.VRsp,
				Data: msg.WithData(data)})
			d.drain(m.Addr, l)
		})
	case hE, hM:
		if l.owner == m.Src {
			panic(fmt.Sprintf("hmesi: owner %d re-requests S for %v", m.Src, m.Addr))
		}
		// 3-hop: owner sends GDataS to the requestor and a GCopyBack
		// here; the line blocks until the copy-back lands.
		d.Stats.Fwds++
		l.busy = true
		l.copyBackFrom = l.owner
		l.pendingReq = m.Src
		d.send(&msg.Msg{Type: msg.GFwdGetS, Addr: m.Addr, Dst: l.owner, Req: m.Src,
			VNet: msg.VSnp})
	}
}

func (d *Dir) getM(m *msg.Msg) {
	l := d.line(m.Addr)
	if l.busy {
		d.Stats.Stalls++
		l.queue = append(l.queue, m)
		return
	}
	d.Stats.Reads++
	switch l.state {
	case hI:
		l.busy = true
		d.dram.Read(m.Addr, func(data mem.Data) {
			l.state = hM
			l.owner = m.Src
			l.busy = false
			if d.Tracer != nil {
				d.traceState(m.Addr, hI, "GGetM")
			}
			d.send(&msg.Msg{Type: msg.GDataM, Addr: m.Addr, Dst: m.Src, VNet: msg.VRsp,
				Data: msg.WithData(data)})
			d.drain(m.Addr, l)
		})
	case hS:
		// Invalidate other sharers; they ack to the requestor.
		n := 0
		for h := range l.sharers {
			if h == m.Src {
				continue
			}
			n++
			d.Stats.Invs++
			d.send(&msg.Msg{Type: msg.GInv, Addr: m.Addr, Dst: h, Req: m.Src, VNet: msg.VSnp})
		}
		wasSharer := l.sharers[m.Src]
		l.state = hM
		l.owner = m.Src
		l.sharers = make(map[msg.NodeID]bool)
		if d.Tracer != nil {
			d.traceState(m.Addr, hS, "GGetM")
		}
		if wasSharer {
			// Requestor holds valid data: grant permission only. The
			// directory pipelines: it is immediately ready for the next
			// request.
			d.send(&msg.Msg{Type: msg.GDataM, Addr: m.Addr, Dst: m.Src, Acks: n, VNet: msg.VRsp})
			return
		}
		acks := n
		l.busy = true
		d.dram.Read(m.Addr, func(data mem.Data) {
			l.busy = false
			d.send(&msg.Msg{Type: msg.GDataM, Addr: m.Addr, Dst: m.Src, Acks: acks,
				VNet: msg.VRsp, Data: msg.WithData(data)})
			d.drain(m.Addr, l)
		})
	case hE, hM:
		if l.owner == m.Src {
			panic(fmt.Sprintf("hmesi: owner %d re-requests M for %v", m.Src, m.Addr))
		}
		// Pipelined ownership hand-off: forward and move on. The old
		// owner sends GDataM peer-to-peer; the new owner stalls any
		// forwards it sees until its data arrives.
		d.Stats.Fwds++
		d.send(&msg.Msg{Type: msg.GFwdGetM, Addr: m.Addr, Dst: l.owner, Req: m.Src,
			VNet: msg.VSnp})
		old := l.state
		l.state = hM
		l.owner = m.Src
		if d.Tracer != nil {
			// Same stable state, new owner: the handoff is the event.
			d.traceState(m.Addr, old, "GFwdGetM")
		}
	}
}

func (d *Dir) putM(m *msg.Msg) {
	l := d.line(m.Addr)
	d.Stats.Writes++
	if l.busy && l.copyBackFrom == m.Src {
		// The owner's eviction crossed our GFwdGetS: its PutM doubles as
		// the copy-back; the evicting owner has answered the requestor
		// peer-to-peer and drops its copy.
		d.dram.Write(m.Addr, *m.Data, nil)
		old := l.state
		l.state = hS
		l.owner = msg.None
		l.sharers = map[msg.NodeID]bool{l.pendingReq: true}
		l.copyBackFrom, l.pendingReq = msg.None, msg.None
		l.busy = false
		if d.Tracer != nil {
			d.traceState(m.Addr, old, "GPutM (crossed fwd)")
		}
		d.send(&msg.Msg{Type: msg.GPutAck, Addr: m.Addr, Dst: m.Src, VNet: msg.VRsp})
		d.drain(m.Addr, l)
		return
	}
	if !l.busy && (l.state == hM || l.state == hE) && l.owner == m.Src {
		d.dram.Write(m.Addr, *m.Data, nil)
		old := l.state
		l.state = hI
		l.owner = msg.None
		if d.Tracer != nil {
			d.traceState(m.Addr, old, "GPutM")
		}
	}
	// Otherwise stale (ownership already handed to someone else via a
	// pipelined GFwdGetM): ack and drop.
	d.send(&msg.Msg{Type: msg.GPutAck, Addr: m.Addr, Dst: m.Src, VNet: msg.VRsp})
}

func (d *Dir) putS(m *msg.Msg) {
	l := d.line(m.Addr)
	d.Stats.Writes++
	if l.busy && l.copyBackFrom == m.Src {
		// Clean owner eviction crossing a GFwdGetS: memory is already
		// current (the owner was E); complete the pending read.
		old := l.state
		l.state = hS
		l.owner = msg.None
		l.sharers = map[msg.NodeID]bool{l.pendingReq: true}
		l.copyBackFrom, l.pendingReq = msg.None, msg.None
		l.busy = false
		if d.Tracer != nil {
			d.traceState(m.Addr, old, "GPutS (crossed fwd)")
		}
		d.send(&msg.Msg{Type: msg.GPutAck, Addr: m.Addr, Dst: m.Src, VNet: msg.VRsp})
		d.drain(m.Addr, l)
		return
	}
	old := l.state
	switch {
	case l.state == hS && l.sharers[m.Src]:
		delete(l.sharers, m.Src)
		if len(l.sharers) == 0 {
			l.state = hI
		}
	case (l.state == hE || l.state == hM) && l.owner == m.Src && !l.busy:
		// Clean-exclusive eviction.
		l.state = hI
		l.owner = msg.None
	}
	if d.Tracer != nil && l.state != old {
		d.traceState(m.Addr, old, "GPutS")
	}
	d.send(&msg.Msg{Type: msg.GPutAck, Addr: m.Addr, Dst: m.Src, VNet: msg.VRsp})
}

func (d *Dir) copyBack(m *msg.Msg) {
	l := d.line(m.Addr)
	if !l.busy || l.copyBackFrom != m.Src {
		// The matching eviction already satisfied the downgrade; the
		// duplicate copy carries identical bytes.
		if m.Data != nil {
			d.dram.Write(m.Addr, *m.Data, nil)
		}
		return
	}
	d.dram.Write(m.Addr, *m.Data, nil)
	old := l.state
	l.state = hS
	l.sharers = map[msg.NodeID]bool{l.copyBackFrom: true, l.pendingReq: true}
	l.owner = msg.None
	l.copyBackFrom, l.pendingReq = msg.None, msg.None
	l.busy = false
	if d.Tracer != nil {
		d.traceState(m.Addr, old, "GCopyBack")
	}
	d.drain(m.Addr, l)
}

func (d *Dir) drain(a mem.LineAddr, l *hline) {
	if l.busy || len(l.queue) == 0 {
		return
	}
	next := l.queue[0]
	l.queue = l.queue[1:]
	d.k.After(1, func() { d.Recv(next) })
}

// StateOf reports the directory view for tests and invariants.
func (d *Dir) StateOf(a mem.LineAddr) (state string, owner msg.NodeID, sharers []msg.NodeID) {
	l := d.lines[a]
	if l == nil {
		return "I", msg.None, nil
	}
	for h := range l.sharers {
		sharers = append(sharers, h)
	}
	return hname(l.state), l.owner, sharers
}
