// Package hmesi implements the hierarchical MESI global directory used
// as the paper's MESI-MESI-MESI baseline: a textbook 3-hop directory
// where data travels peer-to-peer between C3 instances and ownership
// transfers are pipelined (the directory updates its owner pointer when
// it forwards, without waiting for any response) — the property that
// makes the baseline faster than CXL under write contention (Sec. VI-C).
//
// The directory blocks a line only while reading device memory or while
// awaiting the data copy-back that accompanies an owner downgrade
// (GFwdGetS -> GCopyBack); GetM chains pipeline freely.
package hmesi

import (
	"fmt"
	"sort"

	"c3/internal/mem"
	"c3/internal/msg"
	"c3/internal/network"
	"c3/internal/sim"
	"c3/internal/trace"
)

const (
	hI = iota
	hS
	hE
	hM
)

func hname(s int) string { return [...]string{"I", "S", "E", "M"}[s] }

type hline struct {
	state   int
	owner   msg.NodeID
	sharers msg.NodeSet
	// busy is set while reading memory or awaiting a GCopyBack.
	busy bool
	// copyBackFrom/pendingReq track the in-flight owner downgrade.
	copyBackFrom msg.NodeID
	pendingReq   msg.NodeID
	// lastFwdFrom remembers the source of the most recent pipelined
	// GFwdGetM hand-off. The directory normally never learns whether the
	// peer-to-peer GDataM arrived; this breadcrumb is what lets host
	// isolation synthesize a poisoned grant when the hand-off source
	// crashes with the transfer possibly in flight. Cleared when the
	// directory sees proof the target received data (its GPutM or
	// GCopyBack).
	lastFwdFrom msg.NodeID
	queue       []*msg.Msg
}

// Stats aggregates directory telemetry.
type Stats struct {
	Reads, Writes, Fwds, Invs, Stalls uint64
}

// Dir is the global MESI directory co-located with device memory.
type Dir struct {
	id   msg.NodeID
	k    *sim.Kernel
	net  network.Fabric
	dram *mem.DRAM
	// Lat is the controller occupancy added to outgoing messages.
	Lat sim.Time

	lines map[mem.LineAddr]*hline

	// dead is the set of isolated (crashed) hosts; poisoned marks lines
	// whose only current copy died with one (sticky — see the DCOH's
	// equivalent).
	dead     msg.NodeSet
	poisoned map[mem.LineAddr]bool

	// Tracer, when non-nil, observes directory state transitions.
	Tracer *trace.Tracer

	Stats Stats
}

// traceState emits a directory transition. Callers guard on d.Tracer.
func (d *Dir) traceState(a mem.LineAddr, old int, note string) {
	l := d.lines[a]
	new := hI
	if l != nil {
		new = l.state
	}
	d.Tracer.State(d.k.Now(), d.id, a, hname(old), hname(new), note)
}

// New builds the directory with its backing memory.
func New(id msg.NodeID, k *sim.Kernel, net network.Fabric, dram *mem.DRAM) *Dir {
	return &Dir{id: id, k: k, net: net, dram: dram, Lat: 4,
		lines:    make(map[mem.LineAddr]*hline),
		poisoned: make(map[mem.LineAddr]bool)}
}

// ID returns the directory's network id.
func (d *Dir) ID() msg.NodeID { return d.id }

// DRAM exposes the backing memory.
func (d *Dir) DRAM() *mem.DRAM { return d.dram }

func (d *Dir) line(a mem.LineAddr) *hline {
	l := d.lines[a]
	if l == nil {
		l = &hline{owner: msg.None, copyBackFrom: msg.None, pendingReq: msg.None,
			lastFwdFrom: msg.None}
		d.lines[a] = l
	}
	return l
}

func (d *Dir) send(m *msg.Msg) {
	m.Src = d.id
	d.k.After(d.Lat, func() { d.net.Send(m) })
}

// Recv implements network.Port.
func (d *Dir) Recv(m *msg.Msg) {
	if d.dead.Has(m.Src) {
		// Stale message from an isolated host; its state was reclaimed.
		return
	}
	switch m.Type {
	case msg.GGetS:
		d.getS(m)
	case msg.GGetM:
		d.getM(m)
	case msg.GPutM:
		d.putM(m)
	case msg.GPutS:
		d.putS(m)
	case msg.GCopyBack:
		d.copyBack(m)
	default:
		panic(fmt.Sprintf("hmesi: dir got unexpected %v", m))
	}
}

func (d *Dir) getS(m *msg.Msg) {
	l := d.line(m.Addr)
	if l.busy {
		d.Stats.Stalls++
		l.queue = append(l.queue, m)
		return
	}
	d.Stats.Reads++
	switch l.state {
	case hI:
		l.busy = true
		d.dram.Read(m.Addr, func(data mem.Data) {
			l.busy = false
			if d.dead.Has(m.Src) {
				// The requestor crashed while memory was read: do not
				// install it as owner.
				d.drain(m.Addr, l)
				return
			}
			// Sole reader: grant exclusive-clean, MESI style.
			l.state = hE
			l.owner = m.Src
			if d.Tracer != nil {
				d.traceState(m.Addr, hI, "GGetS")
			}
			d.send(&msg.Msg{Type: msg.GDataE, Addr: m.Addr, Dst: m.Src, VNet: msg.VRsp,
				Data: msg.WithData(data), Poisoned: d.poisoned[m.Addr]})
			d.drain(m.Addr, l)
		})
	case hS:
		l.busy = true
		d.dram.Read(m.Addr, func(data mem.Data) {
			l.busy = false
			if d.dead.Has(m.Src) {
				d.drain(m.Addr, l)
				return
			}
			l.sharers.Add(m.Src)
			d.send(&msg.Msg{Type: msg.GData, Addr: m.Addr, Dst: m.Src, VNet: msg.VRsp,
				Data: msg.WithData(data), Poisoned: d.poisoned[m.Addr]})
			d.drain(m.Addr, l)
		})
	case hE, hM:
		if l.owner == m.Src {
			panic(fmt.Sprintf("hmesi: owner %d re-requests S for %v", m.Src, m.Addr))
		}
		// 3-hop: owner sends GDataS to the requestor and a GCopyBack
		// here; the line blocks until the copy-back lands.
		d.Stats.Fwds++
		l.busy = true
		l.copyBackFrom = l.owner
		l.pendingReq = m.Src
		d.send(&msg.Msg{Type: msg.GFwdGetS, Addr: m.Addr, Dst: l.owner, Req: m.Src,
			VNet: msg.VSnp})
	}
}

func (d *Dir) getM(m *msg.Msg) {
	l := d.line(m.Addr)
	if l.busy {
		d.Stats.Stalls++
		l.queue = append(l.queue, m)
		return
	}
	d.Stats.Reads++
	switch l.state {
	case hI:
		l.busy = true
		d.dram.Read(m.Addr, func(data mem.Data) {
			l.busy = false
			if d.dead.Has(m.Src) {
				d.drain(m.Addr, l)
				return
			}
			l.state = hM
			l.owner = m.Src
			if d.Tracer != nil {
				d.traceState(m.Addr, hI, "GGetM")
			}
			d.send(&msg.Msg{Type: msg.GDataM, Addr: m.Addr, Dst: m.Src, VNet: msg.VRsp,
				Data: msg.WithData(data), Poisoned: d.poisoned[m.Addr]})
			d.drain(m.Addr, l)
		})
	case hS:
		// Invalidate other sharers (ascending id order, deterministic);
		// they ack to the requestor.
		n := 0
		l.sharers.ForEach(func(h msg.NodeID) {
			if h == m.Src {
				return
			}
			n++
			d.Stats.Invs++
			d.send(&msg.Msg{Type: msg.GInv, Addr: m.Addr, Dst: h, Req: m.Src, VNet: msg.VSnp})
		})
		wasSharer := l.sharers.Has(m.Src)
		l.state = hM
		l.owner = m.Src
		l.sharers = 0
		if d.Tracer != nil {
			d.traceState(m.Addr, hS, "GGetM")
		}
		if wasSharer {
			// Requestor holds valid data: grant permission only. The
			// directory pipelines: it is immediately ready for the next
			// request.
			d.send(&msg.Msg{Type: msg.GDataM, Addr: m.Addr, Dst: m.Src, Acks: n, VNet: msg.VRsp})
			return
		}
		acks := n
		l.busy = true
		d.dram.Read(m.Addr, func(data mem.Data) {
			l.busy = false
			d.send(&msg.Msg{Type: msg.GDataM, Addr: m.Addr, Dst: m.Src, Acks: acks,
				VNet: msg.VRsp, Data: msg.WithData(data), Poisoned: d.poisoned[m.Addr]})
			d.drain(m.Addr, l)
		})
	case hE, hM:
		if l.owner == m.Src {
			panic(fmt.Sprintf("hmesi: owner %d re-requests M for %v", m.Src, m.Addr))
		}
		// Pipelined ownership hand-off: forward and move on. The old
		// owner sends GDataM peer-to-peer; the new owner stalls any
		// forwards it sees until its data arrives.
		d.Stats.Fwds++
		d.send(&msg.Msg{Type: msg.GFwdGetM, Addr: m.Addr, Dst: l.owner, Req: m.Src,
			VNet: msg.VSnp})
		old := l.state
		l.lastFwdFrom = l.owner
		l.state = hM
		l.owner = m.Src
		if d.Tracer != nil {
			// Same stable state, new owner: the handoff is the event.
			d.traceState(m.Addr, old, "GFwdGetM")
		}
	}
}

func (d *Dir) putM(m *msg.Msg) {
	l := d.line(m.Addr)
	d.Stats.Writes++
	if m.Poisoned && m.Data != nil {
		// Poison follows the writeback home: memory's copy is now the
		// poisoned one.
		d.poisoned[m.Addr] = true
	}
	if l.owner == m.Src {
		// An eviction from the current owner proves it holds data: the
		// hand-off that delivered to it completed.
		l.lastFwdFrom = msg.None
	}
	if l.busy && l.copyBackFrom == m.Src {
		// The owner's eviction crossed our GFwdGetS: its PutM doubles as
		// the copy-back; the evicting owner has answered the requestor
		// peer-to-peer and drops its copy.
		d.dram.Write(m.Addr, *m.Data, nil)
		old := l.state
		l.owner = msg.None
		l.sharers = d.liveSharers(l.pendingReq)
		l.state = hS
		if l.sharers.Empty() {
			l.state = hI
		}
		l.copyBackFrom, l.pendingReq = msg.None, msg.None
		l.busy = false
		if d.Tracer != nil {
			d.traceState(m.Addr, old, "GPutM (crossed fwd)")
		}
		d.send(&msg.Msg{Type: msg.GPutAck, Addr: m.Addr, Dst: m.Src, VNet: msg.VRsp})
		d.drain(m.Addr, l)
		return
	}
	if !l.busy && (l.state == hM || l.state == hE) && l.owner == m.Src {
		d.dram.Write(m.Addr, *m.Data, nil)
		old := l.state
		l.state = hI
		l.owner = msg.None
		if d.Tracer != nil {
			d.traceState(m.Addr, old, "GPutM")
		}
	}
	// Otherwise stale (ownership already handed to someone else via a
	// pipelined GFwdGetM): ack and drop.
	d.send(&msg.Msg{Type: msg.GPutAck, Addr: m.Addr, Dst: m.Src, VNet: msg.VRsp})
}

func (d *Dir) putS(m *msg.Msg) {
	l := d.line(m.Addr)
	d.Stats.Writes++
	if l.busy && l.copyBackFrom == m.Src {
		// Clean owner eviction crossing a GFwdGetS: memory is already
		// current (the owner was E); complete the pending read.
		old := l.state
		l.owner = msg.None
		l.sharers = d.liveSharers(l.pendingReq)
		l.state = hS
		if l.sharers.Empty() {
			l.state = hI
		}
		l.copyBackFrom, l.pendingReq = msg.None, msg.None
		l.busy = false
		if d.Tracer != nil {
			d.traceState(m.Addr, old, "GPutS (crossed fwd)")
		}
		d.send(&msg.Msg{Type: msg.GPutAck, Addr: m.Addr, Dst: m.Src, VNet: msg.VRsp})
		d.drain(m.Addr, l)
		return
	}
	old := l.state
	switch {
	case l.state == hS && l.sharers.Has(m.Src):
		l.sharers.Remove(m.Src)
		if l.sharers.Empty() {
			l.state = hI
		}
	case (l.state == hE || l.state == hM) && l.owner == m.Src && !l.busy:
		// Clean-exclusive eviction.
		l.state = hI
		l.owner = msg.None
	}
	if d.Tracer != nil && l.state != old {
		d.traceState(m.Addr, old, "GPutS")
	}
	d.send(&msg.Msg{Type: msg.GPutAck, Addr: m.Addr, Dst: m.Src, VNet: msg.VRsp})
}

func (d *Dir) copyBack(m *msg.Msg) {
	l := d.line(m.Addr)
	if m.Poisoned && m.Data != nil {
		d.poisoned[m.Addr] = true
	}
	if l.lastFwdFrom != msg.None && (l.owner == m.Src || l.copyBackFrom == m.Src) {
		// The downgrading owner demonstrably holds data.
		l.lastFwdFrom = msg.None
	}
	if !l.busy || l.copyBackFrom != m.Src {
		// The matching eviction already satisfied the downgrade; the
		// duplicate copy carries identical bytes.
		if m.Data != nil {
			d.dram.Write(m.Addr, *m.Data, nil)
		}
		return
	}
	d.dram.Write(m.Addr, *m.Data, nil)
	old := l.state
	l.sharers = d.liveSharers(l.copyBackFrom, l.pendingReq)
	l.state = hS
	if l.sharers.Empty() {
		l.state = hI
	}
	l.owner = msg.None
	l.copyBackFrom, l.pendingReq = msg.None, msg.None
	l.busy = false
	if d.Tracer != nil {
		d.traceState(m.Addr, old, "GCopyBack")
	}
	d.drain(m.Addr, l)
}

func (d *Dir) drain(a mem.LineAddr, l *hline) {
	if l.busy || len(l.queue) == 0 {
		return
	}
	next := l.queue[0]
	l.queue = l.queue[1:]
	d.k.After(1, func() { d.Recv(next) })
}

// liveSharers builds a sharer set from ids, skipping unset or dead ones
// (a crashed host must never be re-registered by a crossed flow that was
// in flight when it died).
func (d *Dir) liveSharers(ids ...msg.NodeID) msg.NodeSet {
	var m msg.NodeSet
	for _, id := range ids {
		if id != msg.None && !d.dead.Has(id) {
			m.Add(id)
		}
	}
	return m
}

// Reclaim summarizes one host-isolation walk (same shape as the DCOH's).
type Reclaim struct {
	Reclaimed     int
	Poisoned      int
	PoisonedLines []mem.LineAddr
	NAKed         int
}

// ReclaimHost runs the host-isolation walk for a crashed host h: scrub h
// from every sharer vector and owner pointer (poisoning lines whose only
// copy died with it), complete in-flight flows that waited on h with
// synthesized poisoned grants so surviving requestors unblock, and drop
// h's queued requests. Lines are walked in address order so synthesized
// messages are scheduled deterministically.
//
// Known limitation, documented in DESIGN.md §10: the directory tracks
// only the most recent pipelined GFwdGetM hand-off per line, so a chain
// of two in-flight hand-offs where the *earlier* source crashes can
// leave the middle host waiting (the watchdog's dead-host class catches
// it). Real back-invalidation has the same window; CXL closes it with
// timeouts at the requestor, which the C3 layer's PeerDead pass models.
func (d *Dir) ReclaimHost(h msg.NodeID) Reclaim {
	d.dead.Add(h)
	var r Reclaim
	poison := func(a mem.LineAddr) {
		if d.poisoned[a] {
			return
		}
		d.poisoned[a] = true
		r.Poisoned++
		r.PoisonedLines = append(r.PoisonedLines, a)
	}
	addrs := make([]mem.LineAddr, 0, len(d.lines))
	for a := range d.lines {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		l := d.lines[a]
		if l.busy && l.copyBackFrom == h {
			// The downgrading owner died owing GDataS to the requestor and
			// GCopyBack to us: data lost. Synthesize a poisoned grant from
			// memory so the requestor's acquire completes.
			r.Reclaimed++
			req := l.pendingReq
			old := l.state
			l.owner = msg.None
			l.copyBackFrom, l.pendingReq = msg.None, msg.None
			l.busy = false
			l.sharers = d.liveSharers(req)
			l.state = hS
			if l.sharers.Empty() {
				l.state = hI
			}
			poison(a)
			if req != msg.None && !d.dead.Has(req) {
				r.NAKed++
				d.synthGrant(msg.GData, a, req)
			}
			if d.Tracer != nil {
				d.traceState(a, old, "reclaim (copy-back owner died)")
			}
			d.drain(a, l)
		} else if l.busy && l.pendingReq == h {
			// The requestor of an owner downgrade died; the surviving
			// owner's GCopyBack still completes the flow, it just must not
			// re-register the dead host (liveSharers handles that).
			l.pendingReq = msg.None
			r.NAKed++
		}
		if l.lastFwdFrom == h {
			// A pipelined M hand-off from the dead host may still be in
			// flight (or lost on the downed link). Synthesize a poisoned
			// ownership grant to the recorded target; if the real GDataM
			// already arrived, the target has no open transaction and
			// drops the duplicate.
			l.lastFwdFrom = msg.None
			if l.owner != msg.None && l.owner != h && !d.dead.Has(l.owner) {
				poison(a)
				r.NAKed++
				d.synthGrant(msg.GDataM, a, l.owner)
			}
		}
		if l.sharers.Has(h) {
			l.sharers.Remove(h)
			r.Reclaimed++
			if l.sharers.Empty() && l.state == hS && !l.busy {
				old := l.state
				l.state = hI
				if d.Tracer != nil {
					d.traceState(a, old, "reclaim (last sharer died)")
				}
			}
		}
		if l.owner == h {
			r.Reclaimed++
			old := l.state
			if l.state == hE || l.state == hM {
				poison(a)
			}
			l.owner = msg.None
			l.state = hI
			if d.Tracer != nil {
				d.traceState(a, old, "reclaim (owner died)")
			}
		}
		if len(l.queue) > 0 {
			kept := l.queue[:0]
			for _, m := range l.queue {
				if m.Src == h {
					r.NAKed++
					continue
				}
				kept = append(kept, m)
			}
			l.queue = kept
		}
	}
	sort.Slice(r.PoisonedLines, func(i, j int) bool { return r.PoisonedLines[i] < r.PoisonedLines[j] })
	return r
}

// synthGrant reads memory and delivers a poisoned grant on the response
// channel — the NAK/poison completion that unblocks a surviving waiter
// after its data source died.
func (d *Dir) synthGrant(t msg.Type, a mem.LineAddr, dst msg.NodeID) {
	d.dram.Read(a, func(data mem.Data) {
		d.send(&msg.Msg{Type: t, Addr: a, Dst: dst, VNet: msg.VRsp,
			Data: msg.WithData(data), Poisoned: true})
	})
}

// ReferencesHost reports whether any directory state still names h.
func (d *Dir) ReferencesHost(h msg.NodeID) bool {
	for _, l := range d.lines {
		if l.owner == h || l.sharers.Has(h) || l.copyBackFrom == h ||
			l.pendingReq == h || l.lastFwdFrom == h {
			return true
		}
		for _, m := range l.queue {
			if m.Src == h {
				return true
			}
		}
	}
	return false
}

// PoisonedLine reports whether a's data has been lost to a crash.
func (d *Dir) PoisonedLine(a mem.LineAddr) bool { return d.poisoned[a] }

// ReviveHost re-admits a previously reclaimed host (crash rejoin): its
// messages are accepted again. The host must come back cold — its state
// was reclaimed at crash time and is not restored. Poison is sticky.
func (d *Dir) ReviveHost(h msg.NodeID) { d.dead.Remove(h) }

// StateOf reports the directory view for tests and invariants.
func (d *Dir) StateOf(a mem.LineAddr) (state string, owner msg.NodeID, sharers []msg.NodeID) {
	l := d.lines[a]
	if l == nil {
		return "I", msg.None, nil
	}
	return hname(l.state), l.owner, l.sharers.IDs()
}
