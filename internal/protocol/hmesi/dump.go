package hmesi

import (
	"fmt"
	"io"
	"sort"

	"c3/internal/mem"
)

// DumpState writes a canonical rendering for model-checker hashing.
// NodeSet vectors render in ascending id order, like the sorted int
// slices the pre-NodeSet code produced.
func (d *Dir) DumpState(w io.Writer) {
	fmt.Fprint(w, "HDIR")
	var lines []mem.LineAddr
	for a := range d.lines {
		lines = append(lines, a)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	for _, a := range lines {
		l := d.lines[a]
		fmt.Fprintf(w, "%x:%d:%d:%v:%v:%d:%d:q%d;", uint64(a), l.state, l.owner,
			l.sharers, l.busy, l.copyBackFrom, l.pendingReq, len(l.queue))
	}
	fmt.Fprintln(w)
}
