package hmesi

import (
	"fmt"
	"io"
	"sort"

	"c3/internal/mem"
)

// DumpState writes a canonical rendering for model-checker hashing.
func (d *Dir) DumpState(w io.Writer) {
	fmt.Fprint(w, "HDIR")
	var lines []mem.LineAddr
	for a := range d.lines {
		lines = append(lines, a)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	for _, a := range lines {
		l := d.lines[a]
		var sh []int
		for h := range l.sharers {
			sh = append(sh, int(h))
		}
		sort.Ints(sh)
		fmt.Fprintf(w, "%x:%d:%d:%v:%v:%d:%d:q%d;", uint64(a), l.state, l.owner, sh,
			l.busy, l.copyBackFrom, l.pendingReq, len(l.queue))
	}
	fmt.Fprintln(w)
}
