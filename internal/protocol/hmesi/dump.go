package hmesi

import (
	"fmt"
	"io"
	"sort"

	"c3/internal/mem"
	"c3/internal/msg"
)

// DumpState writes a canonical rendering for model-checker hashing.
// NodeSet vectors render in ascending id order, like the sorted int
// slices the pre-NodeSet code produced.
func (d *Dir) DumpState(w io.Writer) {
	fmt.Fprint(w, "HDIR")
	var lines []mem.LineAddr
	for a := range d.lines {
		lines = append(lines, a)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	for _, a := range lines {
		l := d.lines[a]
		fmt.Fprintf(w, "%x:%d:%d:%v:%v:%d:%d:q%d;", uint64(a), l.state, l.owner,
			l.sharers, l.busy, l.copyBackFrom, l.pendingReq, len(l.queue))
	}
	fmt.Fprintln(w)
}

// DumpCanon writes the canonical (reduction-aware) rendering for the
// model checker's canonical hash: line addresses render through rnLine
// and host ids through rnNode (entries re-sorted by renamed address so
// symmetric renamings fingerprint identically), and untouched default
// lines are dropped so "never referenced" and "referenced then fully
// released" merge. lastFwdFrom stays excluded, matching DumpState: it is
// a crash-recovery breadcrumb, not protocol-visible state.
func (d *Dir) DumpCanon(w io.Writer, rnLine func(mem.LineAddr) mem.LineAddr, rnNode func(msg.NodeID) msg.NodeID) {
	fmt.Fprint(w, "HDIR")
	lines := make([]mem.LineAddr, 0, len(d.lines))
	orig := make(map[mem.LineAddr]mem.LineAddr, len(d.lines))
	for a, l := range d.lines {
		if l.state == hI && l.owner == msg.None && l.sharers.Empty() && !l.busy &&
			l.copyBackFrom == msg.None && l.pendingReq == msg.None && len(l.queue) == 0 {
			continue
		}
		r := rnLine(a)
		lines = append(lines, r)
		orig[r] = a
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	for _, r := range lines {
		l := d.lines[orig[r]]
		fmt.Fprintf(w, "%x:%d:%d:%v:%v:%d:%d:q%d;", uint64(r), l.state, rnNode(l.owner),
			l.sharers.Rename(rnNode), l.busy, rnNode(l.copyBackFrom),
			rnNode(l.pendingReq), len(l.queue))
	}
	fmt.Fprintln(w)
}
