package perf

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestMedianInt64(t *testing.T) {
	cases := []struct {
		in   []int64
		want int64
	}{
		{[]int64{5}, 5},
		{[]int64{3, 1, 2}, 2},
		{[]int64{10, 1000, 20}, 20}, // one noisy sample does not move the median
		{[]int64{4, 1, 3, 2}, 2},    // even count: lower middle
	}
	for _, c := range cases {
		if got := medianInt64(c.in); got != c.want {
			t.Errorf("median(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestAggregate(t *testing.T) {
	got := aggregate([]Stat{
		{NsOp: 100, AllocsOp: 7, BytesOp: 640, Ops: 10},
		{NsOp: 900, AllocsOp: 5, BytesOp: 320, Ops: 10}, // GC-assist noise run: slow, but min allocs
		{NsOp: 120, AllocsOp: 6, BytesOp: 400, Ops: 10},
	})
	if got.NsOp != 120 {
		t.Errorf("NsOp = %d, want median 120", got.NsOp)
	}
	if got.AllocsOp != 5 || got.BytesOp != 320 {
		t.Errorf("allocs/bytes = %d/%d, want min 5/320", got.AllocsOp, got.BytesOp)
	}
	if got.Ops != 10 {
		t.Errorf("Ops = %d, want 10", got.Ops)
	}
}

// TestMeasure smoke-tests the harness itself on a synthetic benchmark:
// op count reaches the loop, per-op division happens, and a loop that
// allocates per op is charged about one alloc per op.
func TestMeasure(t *testing.T) {
	var sink []*int
	b := Benchmark{
		Name: "synthetic", Ops: 1000,
		Setup: func(ops int) func() {
			sink = make([]*int, ops)
			return func() {
				for i := 0; i < ops; i++ {
					sink[i] = new(int)
				}
			}
		},
	}
	s := Measure(b)
	if s.Ops != 1000 {
		t.Fatalf("Ops = %d, want 1000", s.Ops)
	}
	if s.AllocsOp < 1 || s.AllocsOp > 2 {
		t.Errorf("AllocsOp = %d, want ~1 for one new(int) per op", s.AllocsOp)
	}
	if s.NsOp < 0 {
		t.Errorf("NsOp = %d, want non-negative", s.NsOp)
	}
}

func TestCompare(t *testing.T) {
	base := &Baseline{Schema: BaselineSchema, Benchmarks: map[string]Stat{
		"kernel":  {NsOp: 100, AllocsOp: 0},
		"checker": {NsOp: 1000, AllocsOp: 50},
	}}

	// Within budget: 20% slower wall, equal allocs.
	ok := map[string]Stat{
		"kernel":  {NsOp: 120, AllocsOp: 0},
		"checker": {NsOp: 900, AllocsOp: 50},
	}
	if bad := Compare(base, ok, 0.25); len(bad) != 0 {
		t.Fatalf("in-budget run flagged: %v", bad)
	}

	// Wall regression past 25% on one, alloc regression on the other.
	bad := Compare(base, map[string]Stat{
		"kernel":  {NsOp: 130, AllocsOp: 0},
		"checker": {NsOp: 1000, AllocsOp: 51},
	}, 0.25)
	if len(bad) != 2 {
		t.Fatalf("violations = %v, want wall + alloc", bad)
	}
	joined := strings.Join(bad, "\n")
	if !strings.Contains(joined, "kernel: wall regression") || !strings.Contains(joined, "checker: alloc regression") {
		t.Fatalf("violations = %v", bad)
	}

	// Coverage both ways: missing measurement and unknown benchmark.
	bad = Compare(base, map[string]Stat{
		"kernel": {NsOp: 100},
		"new-bm": {NsOp: 1},
	}, 0.25)
	var missing, unknown bool
	for _, line := range bad {
		missing = missing || strings.Contains(line, "checker: in baseline but not measured")
		unknown = unknown || strings.Contains(line, "new-bm: measured but not in baseline")
	}
	if !missing || !unknown {
		t.Fatalf("coverage violations = %v", bad)
	}

	// Alloc slack: an alloc-heavy benchmark tolerates 0.5% jitter but a
	// zero-alloc baseline is exact.
	slackBase := &Baseline{Schema: BaselineSchema, Benchmarks: map[string]Stat{
		"kernel": {NsOp: 100, AllocsOp: 0},
		"heavy":  {NsOp: 100, AllocsOp: 100_000},
	}}
	if bad := Compare(slackBase, map[string]Stat{
		"kernel": {NsOp: 100, AllocsOp: 0},
		"heavy":  {NsOp: 100, AllocsOp: 100_400},
	}, 0.25); len(bad) != 0 {
		t.Fatalf("within-slack alloc jitter flagged: %v", bad)
	}
	bad = Compare(slackBase, map[string]Stat{
		"kernel": {NsOp: 100, AllocsOp: 1}, // one alloc on a zero-alloc path
		"heavy":  {NsOp: 100, AllocsOp: 100_600},
	}, 0.25)
	if len(bad) != 2 {
		t.Fatalf("alloc violations = %v, want exact-zero + over-slack", bad)
	}

	// Faster is never a violation.
	if bad := Compare(base, map[string]Stat{
		"kernel":  {NsOp: 10, AllocsOp: 0},
		"checker": {NsOp: 10, AllocsOp: 0},
	}, 0.25); len(bad) != 0 {
		t.Fatalf("speedup flagged: %v", bad)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_c3.json")
	b := NewBaseline(map[string]Stat{
		"kernel": {NsOp: 42, AllocsOp: 0, BytesOp: 0, Ops: 2_000_000},
	})
	if err := SaveBaseline(path, b); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != BaselineSchema || got.Benchmarks["kernel"] != b.Benchmarks["kernel"] {
		t.Fatalf("round trip lost data: %+v", got)
	}

	// A schema mismatch is an error, not a silent zero-benchmark compare.
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := SaveBaseline(bad, &Baseline{Schema: "c3-bench/v999"}); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBaseline(bad); err == nil {
		t.Fatal("LoadBaseline accepted an unknown schema")
	}
}

func TestSummaryRender(t *testing.T) {
	base := &Baseline{Schema: BaselineSchema, Benchmarks: map[string]Stat{
		"kernel": {NsOp: 100, AllocsOp: 0},
	}}
	out := Summary(base, map[string]Stat{
		"kernel": {NsOp: 110, AllocsOp: 0},
		"extra":  {NsOp: 5, AllocsOp: 1},
	})
	for _, want := range []string{"kernel", "+10.0%", "extra", "NEW"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

// TestBenchmarksWellFormed pins the suite shape the committed baseline
// covers, without paying for a full measurement in unit tests.
func TestBenchmarksWellFormed(t *testing.T) {
	want := map[string]bool{"kernel": true, "network-send": true, "checker-expand": true, "checker-reduced": true, "clone-snapshot": true, "soak-inner-loop": true}
	for _, b := range Benchmarks() {
		if !want[b.Name] {
			t.Errorf("unexpected benchmark %q (update BENCH_c3.json and this test together)", b.Name)
		}
		delete(want, b.Name)
		if b.Ops < 1 || b.Setup == nil {
			t.Errorf("%s: ops=%d setup=%v", b.Name, b.Ops, b.Setup == nil)
		}
	}
	for name := range want {
		t.Errorf("missing benchmark %q", name)
	}
}
