// Package perf is the self-contained micro-benchmark harness behind the
// checked-in perf-trajectory baseline (BENCH_c3.json): it re-runs the
// repo's four load-bearing hot paths — the event kernel, the checker's
// snapshot expansion, the network send path, and the soak inner loop —
// from a normal binary (c3bench -exp micro) rather than `go test
// -bench`, measures wall time and allocation cost per op, and compares
// the result against a committed baseline so every PR sees its perf
// trajectory.
//
// The harness deliberately avoids the testing package's auto-scaling:
// each benchmark runs a fixed op count chosen to finish in well under a
// second, so a full 3-run sweep stays cheap in CI and op counts never
// drift between baseline and candidate.
package perf

import (
	"fmt"
	"runtime"
	"time"

	"c3/internal/cpu"
	"c3/internal/faults"
	"c3/internal/litmus"
	"c3/internal/msg"
	"c3/internal/network"
	"c3/internal/sim"
	"c3/internal/verif"
)

// Stat is one benchmark's measurement, in `go test -bench` units.
type Stat struct {
	NsOp     int64  `json:"ns_per_op"`
	AllocsOp uint64 `json:"allocs_per_op"`
	BytesOp  uint64 `json:"bytes_per_op"`
	// Ops is the op count the run amortized over (fixed per benchmark).
	Ops int `json:"ops"`
}

// Benchmark is one entry of the micro suite.
type Benchmark struct {
	// Name keys the baseline file ("kernel", "checker-expand", ...).
	Name string
	// Ops is the per-run op count; ns/op and allocs/op divide by it.
	Ops int
	// ZeroAlloc pins the steady state at 0 allocs/op (the CI alloc gates
	// for the kernel and the fault-free network send path).
	ZeroAlloc bool
	// Setup builds run state once per measurement (excluded from the
	// timed region) and returns the op loop.
	Setup func(ops int) (run func())
}

// Benchmarks returns the micro suite in baseline order.
func Benchmarks() []Benchmark {
	return []Benchmark{
		{
			// The event-kernel schedule+fire round trip (mirrors
			// internal/sim BenchmarkKernelSchedule): the inner loop under
			// every simulated cycle. Steady state is allocation-free.
			Name: "kernel", Ops: 2_000_000, ZeroAlloc: true,
			Setup: func(ops int) func() {
				k := &sim.Kernel{}
				fn := func() {}
				for i := 0; i < 64; i++ {
					k.Schedule(sim.Time(i), fn)
				}
				k.RunLimit(0)
				return func() {
					for i := 0; i < ops; i++ {
						k.Schedule(k.Now()+1, fn)
						k.Step()
					}
				}
			},
		},
		{
			// The perfect-fabric send+deliver path (mirrors
			// internal/network BenchmarkNetworkSend): one cross-cluster
			// message end to end, allocation-free with faults disabled.
			Name: "network-send", Ops: 500_000, ZeroAlloc: true,
			Setup: func(ops int) func() {
				k := &sim.Kernel{}
				n := network.New(k, 1)
				n.Register(0, nopPort{})
				n.Register(1, nopPort{})
				n.Connect(0, 1, network.CrossCluster())
				m := &msg.Msg{Type: msg.GetS, Src: 0, Dst: 1, VNet: msg.VReq}
				n.Send(m)
				k.Run(nil)
				return func() {
					for i := 0; i < ops; i++ {
						n.Send(m)
						k.Run(nil)
					}
				}
			},
		},
		{
			// One bounded exhaustive exploration of the CXL MP shape by
			// snapshot cloning (mirrors internal/verif
			// BenchmarkCheckerExpand at a smaller state budget). Both
			// reductions are pinned off so the measurement tracks the raw
			// expansion engine across baselines — the reduced path has its
			// own micro below.
			Name: "checker-expand", Ops: 1,
			Setup: func(int) func() {
				mcfg := mpModel()
				return func() {
					if _, err := verif.Check(mcfg, verif.CheckerConfig{
						MaxStates: 20_000, Workers: 1, CanonOff: true, POROff: true,
					}); err != nil {
						panic(fmt.Sprintf("perf: checker-expand: %v", err))
					}
				}
			},
		},
		{
			// The same exploration with the reduction layer on — canonical
			// hashing, symmetry, and partial-order reduction — over the
			// MP+3W shape, whose interchangeable writer threads and
			// independent store lines give the reductions real structure.
			// Wall time pins the net win: the reduced run visits ~2k of the
			// shape's ~22k raw states despite hashing every state up to
			// |group| times.
			Name: "checker-reduced", Ops: 1,
			Setup: func(int) func() {
				mcfg := mpModel()
				tc, ok := litmus.ByName("MP+3W")
				if !ok {
					panic("perf: no MP+3W litmus test")
				}
				mcfg.Test = tc
				return func() {
					if _, err := verif.Check(mcfg, verif.CheckerConfig{
						MaxStates: 20_000, Workers: 1,
					}); err != nil {
						panic(fmt.Sprintf("perf: checker-reduced: %v", err))
					}
				}
			},
		},
		{
			// The snapshot primitive the checker's expansion multiplies
			// (mirrors internal/verif BenchmarkCloneSnapshot): COW-clone a
			// mid-protocol model, deliver one message to the copy, recycle
			// it. Clone is O(dirty), so the steady state allocates only the
			// component graph and whatever the single step touches — the
			// multi-KiB cache arrays and the DRAM store stay shared.
			Name: "clone-snapshot", Ops: 20_000,
			Setup: func(ops int) func() {
				m, err := verif.Build(mpModel())
				if err != nil {
					panic(fmt.Sprintf("perf: clone-snapshot: %v", err))
				}
				m.Start()
				// Step a few deliveries in so clones carry populated
				// caches, open transactions, and in-flight messages.
				for i := 0; i < 6; i++ {
					acts := m.Fabric.Enabled()
					if len(acts) == 0 {
						break
					}
					m.Step(acts[0])
				}
				return func() {
					for i := 0; i < ops; i++ {
						c := m.Clone()
						if acts := c.Fabric.Enabled(); len(acts) > 0 {
							c.Step(acts[0])
						}
						c.Release()
					}
				}
			},
		},
		{
			// The soak harness's inner loop: one full MP campaign
			// iteration on a faulty fabric with the hang watchdog armed —
			// the unit of work a million-run campaign multiplies.
			Name: "soak-inner-loop", Ops: 8,
			Setup: func(ops int) func() {
				tc, ok := litmus.ByName("MP")
				if !ok {
					panic("perf: no MP litmus test")
				}
				plan := faults.Plan{Rates: faults.Rates{Drop: 0.01, Dup: 0.01}}
				return func() {
					p := plan
					res, err := litmus.Run(tc, litmus.RunnerConfig{
						Locals: [2]string{"mesi", "mesi"}, Global: "cxl",
						MCMs:  [2]cpu.MCM{cpu.WMO, cpu.WMO},
						Iters: ops, Sync: litmus.SyncFull, BaseSeed: 1,
						Workers: 1, Faults: &p, HangWatch: true,
					})
					if err != nil {
						panic(fmt.Sprintf("perf: soak-inner-loop: %v", err))
					}
					if res.Forbidden != 0 {
						panic("perf: soak-inner-loop saw a forbidden outcome")
					}
				}
			},
		},
	}
}

// nopPort swallows deliveries without bookkeeping, so receiver cost is
// not charged to the send path.
type nopPort struct{}

func (nopPort) Recv(*msg.Msg) {}

func mpModel() verif.ModelConfig {
	tc, ok := litmus.ByName("MP")
	if !ok {
		panic("perf: no MP litmus test")
	}
	return verif.ModelConfig{
		Test:   tc,
		Locals: [2]string{"mesi", "mesi"},
		Global: "cxl",
		MCMs:   [2]cpu.MCM{cpu.WMO, cpu.WMO},
		Sync:   litmus.SyncFull,
	}
}

// Measure runs b once (after its setup) and reports per-op wall time and
// allocation cost. Allocation counts come from runtime.MemStats deltas
// around the timed region; a GC is forced first so the delta reflects
// the benchmark, not a previous phase's garbage.
func Measure(b Benchmark) Stat {
	run := b.Setup(b.Ops)
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	run()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return Stat{
		NsOp:     elapsed.Nanoseconds() / int64(b.Ops),
		AllocsOp: (after.Mallocs - before.Mallocs) / uint64(b.Ops),
		BytesOp:  (after.TotalAlloc - before.TotalAlloc) / uint64(b.Ops),
		Ops:      b.Ops,
	}
}

// MeasureAll runs every benchmark `runs` times (>=1) and aggregates:
// median ns/op (damping runner noise) and minimum allocs/op and bytes/op
// (allocation noise — a background GC assist, a resized map — is purely
// additive, so the minimum is the true cost). Keys are benchmark names.
func MeasureAll(runs int) map[string]Stat {
	if runs < 1 {
		runs = 1
	}
	benches := Benchmarks()
	samples := make(map[string][]Stat, len(benches))
	// Interleave runs (1st run of all benches, then 2nd, ...) so a
	// transient machine-load spike hits one sample of each benchmark
	// instead of every sample of one.
	for r := 0; r < runs; r++ {
		for _, b := range benches {
			samples[b.Name] = append(samples[b.Name], Measure(b))
		}
	}
	out := make(map[string]Stat, len(benches))
	for _, b := range benches {
		out[b.Name] = aggregate(samples[b.Name])
	}
	return out
}

// aggregate folds repeated samples: median wall time, min allocation.
func aggregate(ss []Stat) Stat {
	ns := make([]int64, len(ss))
	agg := ss[0]
	for i, s := range ss {
		ns[i] = s.NsOp
		if s.AllocsOp < agg.AllocsOp {
			agg.AllocsOp = s.AllocsOp
		}
		if s.BytesOp < agg.BytesOp {
			agg.BytesOp = s.BytesOp
		}
	}
	agg.NsOp = medianInt64(ns)
	return agg
}

// medianInt64 returns the middle sample (lower-middle for even counts).
func medianInt64(v []int64) int64 {
	s := append([]int64(nil), v...)
	for i := 1; i < len(s); i++ { // insertion sort; n is tiny
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[(len(s)-1)/2]
}
