package perf

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// BaselineSchema versions the BENCH_c3.json format.
const BaselineSchema = "c3-bench/v1"

// DefaultWallTolerance is the committed regression budget: a benchmark
// may be up to 25% slower than its baseline before the compare step
// fails (runner-to-runner noise lives inside this; the 3-run median
// damps the rest).
const DefaultWallTolerance = 0.25

// allocSlack absorbs the runtime's background allocation jitter on
// alloc-heavy benchmarks (±a few mallocs in ~100k from timers and
// scheduler internals, even after the min-of-runs damping): a 0.5%
// relative ceiling. A zero-alloc baseline gets zero slack, so the
// kernel and network-send gates stay exact — any new allocation on
// those paths fails.
const allocSlack = 0.005

// Baseline is the committed perf-trajectory file (BENCH_c3.json).
type Baseline struct {
	Schema string `json:"schema"`
	// Note records provenance (how to regenerate).
	Note       string          `json:"note,omitempty"`
	Benchmarks map[string]Stat `json:"benchmarks"`
}

// NewBaseline wraps current measurements as a committable baseline.
func NewBaseline(stats map[string]Stat) *Baseline {
	return &Baseline{
		Schema:     BaselineSchema,
		Note:       "regenerate with: go run ./cmd/c3bench -exp micro -runs 3 -write-baseline BENCH_c3.json",
		Benchmarks: stats,
	}
}

// SaveBaseline writes b as stable, indented JSON (map keys sort, so the
// file diffs cleanly across PRs).
func SaveBaseline(path string, b *Baseline) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadBaseline reads a baseline file.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("perf: baseline %s: %w", path, err)
	}
	if b.Schema != BaselineSchema {
		return nil, fmt.Errorf("perf: baseline %s: schema %q, want %q", path, b.Schema, BaselineSchema)
	}
	return &b, nil
}

// Compare checks current measurements against a baseline and returns
// one violation line per failure (empty = no regression):
//
//   - wall time: cur must be <= base * (1 + wallTol);
//   - allocations: cur must be <= base * (1 + allocSlack) — exactly
//     <= base for zero-alloc baselines;
//   - coverage: every baseline benchmark must be measured and every
//     measured benchmark must be in the baseline (a new benchmark means
//     the committed file needs regenerating).
func Compare(base *Baseline, cur map[string]Stat, wallTol float64) []string {
	if wallTol <= 0 {
		wallTol = DefaultWallTolerance
	}
	var bad []string
	for _, name := range sortedNames(base.Benchmarks) {
		b := base.Benchmarks[name]
		c, ok := cur[name]
		if !ok {
			bad = append(bad, fmt.Sprintf("%s: in baseline but not measured", name))
			continue
		}
		if limit := float64(b.NsOp) * (1 + wallTol); float64(c.NsOp) > limit {
			bad = append(bad, fmt.Sprintf("%s: wall regression: %d ns/op > %.0f ns/op (baseline %d +%.0f%%)",
				name, c.NsOp, limit, b.NsOp, 100*wallTol))
		}
		if allocLimit := b.AllocsOp + uint64(float64(b.AllocsOp)*allocSlack); c.AllocsOp > allocLimit {
			bad = append(bad, fmt.Sprintf("%s: alloc regression: %d allocs/op > %d (baseline %d +%.1f%%)",
				name, c.AllocsOp, allocLimit, b.AllocsOp, 100*allocSlack))
		}
	}
	for _, name := range sortedNames(cur) {
		if _, ok := base.Benchmarks[name]; !ok {
			bad = append(bad, fmt.Sprintf("%s: measured but not in baseline (regenerate BENCH_c3.json)", name))
		}
	}
	return bad
}

// Summary renders a baseline-vs-current table for CI logs.
func Summary(base *Baseline, cur map[string]Stat) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %14s %14s %8s %12s %12s\n",
		"benchmark", "base ns/op", "cur ns/op", "delta", "base allocs", "cur allocs")
	names := sortedNames(base.Benchmarks)
	for _, name := range sortedNames(cur) {
		if _, ok := base.Benchmarks[name]; !ok {
			names = append(names, name)
		}
	}
	for _, name := range names {
		bs, inBase := base.Benchmarks[name]
		cs, inCur := cur[name]
		switch {
		case !inCur:
			fmt.Fprintf(&b, "%-18s %14d %14s\n", name, bs.NsOp, "MISSING")
		case !inBase:
			fmt.Fprintf(&b, "%-18s %14s %14d %8s %12s %12d\n", name, "NEW", cs.NsOp, "", "", cs.AllocsOp)
		default:
			delta := 100 * (float64(cs.NsOp)/float64(bs.NsOp) - 1)
			fmt.Fprintf(&b, "%-18s %14d %14d %+7.1f%% %12d %12d\n",
				name, bs.NsOp, cs.NsOp, delta, bs.AllocsOp, cs.AllocsOp)
		}
	}
	return b.String()
}

func sortedNames(m map[string]Stat) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
