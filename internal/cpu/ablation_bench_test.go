package cpu

import (
	"fmt"
	"testing"

	"c3/internal/mem"
	"c3/internal/sim"
)

// BenchmarkAblationSBDrain sweeps store-buffer drain parallelism on a
// store-miss stream (the weak model's second throughput lever).
func BenchmarkAblationSBDrain(b *testing.B) {
	for _, ways := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("ways=%d", ways), func(b *testing.B) {
			var cycles sim.Time
			for i := 0; i < b.N; i++ {
				k := &sim.Kernel{}
				fm := newFakeMem(k, 200)
				var prog []Instr
				for j := 0; j < 128; j++ {
					prog = append(prog, Instr{Kind: Store, Addr: mem.Addr(0x1000 + j*64), Val: 1})
				}
				cfg := DefaultConfig(WMO)
				cfg.SBDrainWays = ways
				c := New(0, k, cfg, fm, NewSliceSource(prog), nil)
				c.Start()
				k.RunLimit(0)
				cycles = c.FinishedAt
			}
			b.ReportMetric(float64(cycles), "cycles")
		})
	}
}
