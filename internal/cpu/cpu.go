// Package cpu models the processor cores of each cluster: a simplified
// out-of-order engine with a memory-operation window and a store buffer,
// parameterized by memory consistency model (MCM).
//
// The paper simulates MCM heterogeneity with gem5's needsTSO flag rather
// than distinct ISAs, "to isolate performance differences attributable to
// the MCM". This package does the same isolation directly: an ordering
// matrix decides when an operation may issue or retire relative to older
// operations in the window, and the store buffer decides how stores drain:
//
//   - SC: every operation waits for all older operations.
//   - TSO (x86): load-load, load-store and store-store order are enforced;
//     store-load is relaxed through the FIFO store buffer, with
//     store-to-load forwarding. RMWs and fences drain the buffer.
//   - WMO (Arm-like weak): everything may reorder except same-address
//     program order, explicit fences, and acquire/release annotations;
//     the store buffer drains out of order with multiple misses in flight.
//
// Cores talk to their private L1 through the MemPort interface; the L1
// protocol controllers in internal/protocol implement it.
package cpu

import (
	"fmt"
	"math/rand/v2"

	"c3/internal/mem"
	"c3/internal/sim"
)

// MCM selects the memory consistency model a core enforces.
type MCM uint8

const (
	// WMO is the weakly ordered model (Arm-like); the paper's default.
	WMO MCM = iota
	// TSO is total store order (x86; gem5's needsTSO).
	TSO
	// SC is sequential consistency, for reference/ablation runs.
	SC
)

func (m MCM) String() string {
	switch m {
	case WMO:
		return "ARM"
	case TSO:
		return "TSO"
	case SC:
		return "SC"
	}
	return fmt.Sprintf("MCM(%d)", uint8(m))
}

// ParseMCM converts a config string ("arm"/"weak", "tso", "sc").
func ParseMCM(s string) (MCM, error) {
	switch s {
	case "arm", "ARM", "weak", "wmo", "WMO":
		return WMO, nil
	case "tso", "TSO", "x86":
		return TSO, nil
	case "sc", "SC":
		return SC, nil
	}
	return 0, fmt.Errorf("cpu: unknown MCM %q (want arm|tso|sc)", s)
}

// Kind is a memory operation type.
type Kind uint8

const (
	Load Kind = iota
	Store
	RMWAdd    // atomic fetch-and-add, returns old value
	RMWXchg   // atomic exchange, returns old value
	Fence     // full barrier
	Acquire   // standalone acquire barrier (RCC load-acquire side)
	Release   // standalone release barrier (RCC store-release side)
	Prefetch  // non-binding request for ownership (store-buffer RFO)
	PrefetchS // non-binding request for a shared copy (speculative load)
)

func (k Kind) String() string {
	switch k {
	case Load:
		return "LD"
	case Store:
		return "ST"
	case RMWAdd:
		return "RMW+"
	case RMWXchg:
		return "XCHG"
	case Fence:
		return "FENCE"
	case Acquire:
		return "ACQ"
	case Release:
		return "REL"
	case Prefetch:
		return "PF"
	case PrefetchS:
		return "PFS"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// IsMem reports whether k accesses memory (vs. a pure ordering op).
func (k Kind) IsMem() bool { return k <= RMWXchg }

// IsWrite reports whether k writes memory.
func (k Kind) IsWrite() bool { return k == Store || k == RMWAdd || k == RMWXchg }

// IsRMW reports whether k is an atomic read-modify-write.
func (k Kind) IsRMW() bool { return k == RMWAdd || k == RMWXchg }

// Instr is one instruction delivered by a Source.
type Instr struct {
	Kind Kind
	Addr mem.Addr
	Val  uint64 // store value / RMW operand
	Reg  int    // destination register for loads/RMWs (Source bookkeeping)
	Acq  bool   // acquire annotation on a load
	Rel  bool   // release annotation on a store
	// CtrlDep stops fetch until this instruction completes (a conditional
	// branch depends on it; used for spin loops and litmus dependency
	// variants).
	CtrlDep bool
}

// Source feeds a core its instruction stream. Next is called when the
// core has fetch room; Complete reports results (loads and RMWs) so the
// source can implement spins and dependent control flow.
type Source interface {
	Next() (Instr, bool)
	Complete(in Instr, loaded uint64)
}

// Request is a memory access the core sends to its L1.
type Request struct {
	Kind Kind
	Addr mem.Addr
	Val  uint64
	// Acq/Rel annotate acquire loads and release stores, which
	// self-invalidating (RCC) caches act on directly.
	Acq, Rel bool
	// Token identifies the in-flight operation to the issuing core, so a
	// cache snapshot (model-checker Clone) can rebuild its pending
	// completion callbacks: the clone hands the token back through
	// Core.Resume instead of holding a closure over the original core.
	// 0 means untracked (non-binding prefetches, which complete inline).
	Token uint64
}

// Response reports a finished L1 access.
type Response struct {
	Val uint64
	// Missed is true when the access left the L1 (any coherence traffic).
	Missed bool
	// MissLatency is the L1 occupancy time of the access when Missed.
	MissLatency sim.Time
	// Poisoned marks a load whose data came from a poisoned line (link
	// retry exhaustion, or the only copy was lost with a crashed host).
	Poisoned bool
}

// MemPort is the core's view of its private cache. Implementations must
// invoke done exactly once, at a simulated time >= the call time, and
// must preserve per-address request order from a single core.
type MemPort interface {
	Access(req Request, done func(Response))
	// NeedsSyncOps reports whether Fence/Acquire/Release must be sent to
	// the cache (RCC self-invalidate/flush) rather than handled purely by
	// core-side ordering.
	NeedsSyncOps() bool
}

// Config sizes the core.
type Config struct {
	MCM        MCM
	WindowSize int // max in-flight memory ops tracked by the core
	SBSize     int // store buffer entries
	// SBDrainWays is how many store-buffer entries may be draining to the
	// L1 at once. TSO forces 1 (FIFO); WMO/default uses this value.
	SBDrainWays int
	// IssueJitter/DrainJitter add a random delay of up to the given
	// number of cycles before an already-permitted load issue or store
	// drain. Ordering constraints are enforced before the delay, so
	// jitter only widens legal interleavings — the litmus runner uses it
	// to explore relaxed behaviours; performance runs leave it at 0.
	IssueJitter int
	DrainJitter int
	// Seed makes the jitter reproducible.
	Seed int64
	// SpecDepth bounds speculative load warming for in-order-binding
	// models (TSO/SC): at most this many loads may be in flight
	// (issued or warmed) at once. Models the limited speculation window
	// that makes TSO measurably slower than weak ordering on miss-heavy
	// code. 0 -> 4. WMO ignores it (loads issue freely).
	SpecDepth int
}

// DefaultConfig returns a reasonable 8-wide-OoO-like configuration
// (192-entry ROB scaled to memory ops).
func DefaultConfig(m MCM) Config {
	return Config{MCM: m, WindowSize: 24, SBSize: 12, SBDrainWays: 8, SpecDepth: 10}
}

// OpStats records completed-operation telemetry the stats package
// aggregates into the Fig. 11 breakdowns.
type OpStats struct {
	Kind     Kind
	Addr     mem.Addr
	Missed   bool
	Latency  sim.Time // miss latency when Missed
	Poisoned bool     // data consumed from a poisoned line
}

// Core is one simulated hardware thread.
type Core struct {
	ID  int
	cfg Config
	k   *sim.Kernel
	l1  MemPort
	src Source

	window  []*uop
	sb      []*sbEntry
	fetchOK bool // false while a CtrlDep op is outstanding
	srcDone bool
	halted  bool

	nextSeq uint64
	pumpEvt bool // an evaluate() is already scheduled

	// Observe, when non-nil, sees every completed memory operation.
	Observe func(OpStats)

	rng *rand.Rand

	// Retired counts completed instructions (for MPKI).
	Retired     uint64
	FinishedAt  sim.Time
	finished    bool
	onFinish    func()
	outstanding int // ops currently issued to L1 (loads/RMW/sync)
}

type uop struct {
	in       Instr
	seq      uint64
	issued   bool
	done     bool
	val      uint64
	forwards bool // load satisfied by store forwarding
	warmed   bool // speculative prefetch issued while ordering blocks us
}

type sbEntry struct {
	addr     mem.Addr
	val      uint64
	rel      bool
	draining bool
	seq      uint64
}

// New creates a core. onFinish (may be nil) runs once when the source is
// exhausted and all operations have drained.
func New(id int, k *sim.Kernel, cfg Config, l1 MemPort, src Source, onFinish func()) *Core {
	if cfg.WindowSize <= 0 {
		cfg.WindowSize = 24
	}
	if cfg.SBSize <= 0 {
		cfg.SBSize = 12
	}
	if cfg.SBDrainWays <= 0 {
		cfg.SBDrainWays = 8
	}
	if cfg.MCM != WMO {
		// TSO and SC drain the store buffer in order, one at a time.
		cfg.SBDrainWays = 1
	}
	if cfg.SpecDepth <= 0 {
		cfg.SpecDepth = 10
	}
	c := &Core{ID: id, cfg: cfg, k: k, l1: l1, src: src, fetchOK: true, onFinish: onFinish}
	if cfg.IssueJitter > 0 || cfg.DrainJitter > 0 {
		c.rng = rand.New(rand.NewPCG(uint64(cfg.Seed)^0x7f, uint64(id+1)*0x9e3779b97f4a7c15))
	}
	return c
}

func (c *Core) jitter(n int) sim.Time {
	if n <= 0 || c.rng == nil {
		return 0
	}
	return sim.Time(c.rng.IntN(n))
}

// Start begins execution.
func (c *Core) Start() { c.pump() }

// Finished reports whether the core has drained entirely.
func (c *Core) Finished() bool { return c.finished }

func (c *Core) pump() {
	if c.pumpEvt || c.halted {
		return
	}
	c.pumpEvt = true
	c.k.After(1, func() {
		c.pumpEvt = false
		c.evaluate()
	})
}

// evaluate advances fetch, issue, and store-buffer drain.
func (c *Core) evaluate() {
	c.fetch()
	c.issue()
	c.drainSB()
	c.checkFinished()
}

func (c *Core) fetch() {
	for !c.srcDone && c.fetchOK && len(c.window) < c.cfg.WindowSize {
		in, ok := c.src.Next()
		if !ok {
			c.srcDone = true
			break
		}
		u := &uop{in: in, seq: c.nextSeq}
		c.nextSeq++
		c.window = append(c.window, u)
		if in.CtrlDep {
			c.fetchOK = false
		}
	}
}

// olderBlocks reports whether older (incomplete) op o must complete
// before younger op y may proceed, per the core's MCM.
func (c *Core) olderBlocks(o, y *uop) bool {
	if o.done {
		return false
	}
	ok, yk := o.in.Kind, y.in.Kind
	// Ordering ops block everything younger, on every model. RMWs are
	// full fences (x86 semantics; lock primitives on Arm).
	if ok == Fence || ok == Acquire || ok == Release || ok.IsRMW() {
		return true
	}
	// Same-address program order is sacred on all models (coherence).
	if ok.IsMem() && yk.IsMem() && o.in.Addr.Line() == y.in.Addr.Line() {
		return true
	}
	// An acquire load blocks all younger operations.
	if o.in.Acq && ok == Load {
		return true
	}
	switch c.cfg.MCM {
	case SC:
		return true
	case TSO:
		// Loads and RMWs enforce order against younger loads and stores
		// (LL, LS). Stores do not block younger loads (SL relaxed via the
		// store buffer); store-store order is preserved by FIFO drain.
		if ok == Load || ok.IsRMW() {
			return true
		}
		return false
	default: // WMO
		return false
	}
}

func (c *Core) ready(u *uop) bool {
	for _, o := range c.window {
		if o.seq >= u.seq {
			break
		}
		if c.olderBlocks(o, u) {
			return false
		}
	}
	return true
}

// forwardFrom returns the youngest older store (in window or SB) to the
// same address, for store-to-load forwarding.
func (c *Core) forwardFrom(u *uop) (uint64, bool) {
	var val uint64
	found := false
	for _, o := range c.window {
		if o.seq >= u.seq {
			break
		}
		if o.in.Kind == Store && o.in.Addr == u.in.Addr {
			val, found = o.in.Val, true
		}
	}
	if found {
		return val, true
	}
	for _, s := range c.sb {
		if s.addr == u.in.Addr {
			val, found = s.val, true
		}
	}
	return val, found
}

// sbHasLine reports whether the store buffer holds an entry for the line
// of addr (loads to a line with a pending non-same-address store still
// forward conservatively at line granularity? No: forwarding is exact-
// address; but same-line SB entries do not block loads).
func (c *Core) olderUndrainedRelease() bool {
	for _, s := range c.sb {
		if s.rel {
			return true
		}
	}
	return false
}

func (c *Core) issue() {
	// Speculation budget for in-order-binding loads (TSO/SC).
	specLeft := c.cfg.SpecDepth
	for _, u := range c.window {
		if u.in.Kind == Load && !u.done && (u.issued || u.warmed) {
			specLeft--
		}
	}
	for _, u := range c.window {
		if u.issued || u.done {
			continue
		}
		if !c.ready(u) {
			// TSO/SC loads wait for older loads to complete (in-order
			// binding), but hardware still brings the line in
			// speculatively; warm the cache so the binding access hits.
			// Non-binding, so legal across any ordering constraint.
			if u.in.Kind == Load && !u.warmed && specLeft > 0 && c.cfg.MCM != WMO && !c.l1.NeedsSyncOps() {
				u.warmed = true
				specLeft--
				c.l1.Access(Request{Kind: PrefetchS, Addr: u.in.Addr}, func(Response) {})
			}
			continue
		}
		switch u.in.Kind {
		case Load:
			// SC: a load may not bypass buffered stores; wait for drain
			// unless the value forwards.
			if c.cfg.MCM == SC && len(c.sb) > 0 {
				if v, fwd := c.forwardFrom(u); fwd {
					u.issued = true
					u.forwards = true
					c.completeLocal(u, v)
				}
				continue
			}
			if v, ok := c.forwardFrom(u); ok {
				u.issued = true
				u.forwards = true
				c.completeLocal(u, v)
				continue
			}
			u.issued = true
			c.issueToL1(u, Request{Kind: Load, Addr: u.in.Addr, Acq: u.in.Acq})
		case Store:
			// A store retires into the store buffer once ordering allows;
			// it completes from the window's perspective immediately.
			if len(c.sb) >= c.cfg.SBSize {
				continue // SB full; retry on next pump
			}
			// A release store may not enter the SB ahead of undrained
			// older (release-ordered) state: modelled by requiring the
			// whole SB to drain first, plus a sync op for RCC caches.
			if u.in.Rel && (len(c.sb) > 0 || c.anyOlderIncomplete(u)) {
				continue
			}
			u.issued = true
			c.sb = append(c.sb, &sbEntry{addr: u.in.Addr, val: u.in.Val, rel: u.in.Rel, seq: u.seq})
			if c.cfg.MCM != WMO && !c.l1.NeedsSyncOps() {
				// FIFO-draining models issue a non-binding ownership
				// prefetch so store misses overlap (hardware RFO
				// prefetching); the drain itself stays in order.
				c.l1.Access(Request{Kind: Prefetch, Addr: u.in.Addr}, func(Response) {})
			}
			c.completeLocal(u, 0)
		case RMWAdd, RMWXchg:
			// Atomics are full fences: all older ops complete and the
			// store buffer drains before they issue.
			if len(c.sb) > 0 || c.anyOlderIncomplete(u) {
				continue
			}
			u.issued = true
			c.issueToL1(u, Request{Kind: u.in.Kind, Addr: u.in.Addr, Val: u.in.Val})
		case Fence, Acquire, Release:
			// Ordering ops wait for every older op and an empty SB.
			if c.anyOlderIncomplete(u) || len(c.sb) > 0 {
				continue
			}
			u.issued = true
			if c.l1.NeedsSyncOps() {
				c.issueToL1(u, Request{Kind: u.in.Kind})
			} else {
				c.completeLocal(u, 0)
			}
		}
	}
}

func (c *Core) anyOlderIncomplete(u *uop) bool {
	for _, o := range c.window {
		if o.seq >= u.seq {
			break
		}
		if !o.done {
			return true
		}
	}
	return false
}

func (c *Core) issueToL1(u *uop, req Request) {
	c.outstanding++
	if j := c.jitter(c.cfg.IssueJitter); j > 0 && req.Kind.IsMem() {
		c.k.After(j, func() { c.accessL1(u, req) })
		return
	}
	c.accessL1(u, req)
}

// Tokens encode which structure an in-flight L1 access resumes into:
// odd tokens resume a window uop, even tokens a draining store-buffer
// entry. The two share a seq namespace (a store's uop and its SB entry
// carry the same seq), so the low bit keeps them unambiguous.
func windowToken(seq uint64) uint64 { return seq<<1 + 1 }
func drainToken(seq uint64) uint64  { return seq<<1 + 2 }

func (c *Core) accessL1(u *uop, req Request) {
	req.Token = windowToken(u.seq)
	tok := req.Token
	c.l1.Access(req, func(r Response) { c.Resume(tok, r) })
}

// Resume finishes the in-flight operation identified by tok with the L1's
// response. It is the single completion path for every tracked access —
// the L1's callback merely forwards the token here — which is what lets a
// cloned cache rebind its pending completions to a cloned core: the token
// is data, not a closure. A token that matches nothing is a protocol bug.
func (c *Core) Resume(tok uint64, r Response) {
	if tok == 0 {
		return // untracked (prefetch)
	}
	if c.halted {
		// A killed core's window and store buffer are gone; completions
		// from accesses still in flight at the kill are dropped rather
		// than treated as protocol bugs.
		return
	}
	if tok&1 == 1 { // window op (load/RMW/sync)
		seq := tok >> 1
		for _, u := range c.window {
			if u.seq == seq {
				c.outstanding--
				if c.Observe != nil {
					c.Observe(OpStats{Kind: u.in.Kind, Addr: u.in.Addr, Missed: r.Missed, Latency: r.MissLatency, Poisoned: r.Poisoned})
				}
				c.complete(u, r.Val)
				return
			}
		}
		panic(fmt.Sprintf("cpu: core %d resume token %d: no window op with seq %d", c.ID, tok, seq))
	}
	seq := (tok - 2) >> 1
	for _, s := range c.sb {
		if s.seq == seq {
			c.outstanding--
			if c.Observe != nil {
				c.Observe(OpStats{Kind: Store, Addr: s.addr, Missed: r.Missed, Latency: r.MissLatency})
			}
			c.removeSB(s)
			c.pump()
			return
		}
	}
	panic(fmt.Sprintf("cpu: core %d resume token %d: no draining store with seq %d", c.ID, tok, seq))
}

// completeLocal finishes ops that never left the core (SB retire,
// forwarded loads, local fences) after a 1-cycle pipeline delay.
func (c *Core) completeLocal(u *uop, val uint64) {
	c.k.After(1, func() {
		// Stores are observed when they drain from the SB, not here, to
		// avoid double counting; forwarded loads count as hits.
		if c.Observe != nil && u.in.Kind == Load {
			c.Observe(OpStats{Kind: Load, Addr: u.in.Addr})
		}
		c.complete(u, val)
	})
}

func (c *Core) complete(u *uop, val uint64) {
	u.done = true
	u.val = val
	c.Retired++
	c.src.Complete(u.in, val)
	if u.in.CtrlDep {
		c.fetchOK = true
	}
	c.retire()
	c.pump()
}

// retire removes completed ops from the head of the window.
func (c *Core) retire() {
	i := 0
	for i < len(c.window) && c.window[i].done {
		i++
	}
	if i > 0 {
		c.window = append(c.window[:0], c.window[i:]...)
	}
}

func (c *Core) drainSB() {
	draining := 0
	for _, s := range c.sb {
		if s.draining {
			draining++
		}
	}
	for _, s := range c.sb {
		if draining >= c.cfg.SBDrainWays {
			break
		}
		if s.draining {
			if c.cfg.MCM != WMO {
				break // FIFO: only the head may drain
			}
			continue
		}
		// WMO may drain any entry; but same-address entries must drain in
		// order, so skip if an older undrained/draining same-address entry
		// exists earlier in the buffer.
		if c.cfg.MCM == WMO && c.olderSameLine(s) {
			continue
		}
		s.draining = true
		draining++
		entry := s
		c.outstanding++
		tok := drainToken(entry.seq)
		drain := func() {
			c.l1.Access(Request{Kind: Store, Addr: entry.addr, Val: entry.val, Rel: entry.rel, Token: tok},
				func(r Response) { c.Resume(tok, r) })
		}
		if j := c.jitter(c.cfg.DrainJitter); j > 0 {
			c.k.After(j, drain)
		} else {
			drain()
		}
		if c.cfg.MCM != WMO {
			break
		}
	}
}

func (c *Core) olderSameLine(s *sbEntry) bool {
	for _, o := range c.sb {
		if o == s {
			return false
		}
		if o.addr.Line() == s.addr.Line() {
			return true
		}
	}
	return false
}

func (c *Core) removeSB(e *sbEntry) {
	for i, s := range c.sb {
		if s == e {
			c.sb = append(c.sb[:i], c.sb[i+1:]...)
			return
		}
	}
}

// Clone returns a deep copy of the core for model-checker snapshots,
// attached to kernel k and instruction source src (the caller clones the
// source). The L1 port is left nil — call BindL1 once the matching cache
// clone exists; the cache resumes this core's in-flight accesses by
// token (see Resume). Cores with jitter enabled cannot be cloned (the
// checker explores orderings exhaustively and never uses jitter), nor
// can cores with a pending pump event (non-quiescent).
func (c *Core) Clone(k *sim.Kernel, src Source) *Core {
	if c.rng != nil {
		panic("cpu: Clone of core with timing jitter enabled")
	}
	if c.pumpEvt {
		panic("cpu: Clone of core with a pending pump event")
	}
	if c.onFinish != nil {
		panic("cpu: Clone of core with an onFinish callback")
	}
	n := &Core{
		ID: c.ID, cfg: c.cfg, k: k, src: src,
		fetchOK: c.fetchOK, srcDone: c.srcDone, halted: c.halted,
		nextSeq: c.nextSeq, Observe: c.Observe,
		Retired: c.Retired, FinishedAt: c.FinishedAt, finished: c.finished,
		outstanding: c.outstanding,
	}
	// Window and store-buffer records are value slabs: one allocation
	// each instead of one per uop/entry. Identity comparisons elsewhere
	// (e.g. removeSB) work on the slab pointers.
	if len(c.window) > 0 {
		us := make([]uop, len(c.window))
		n.window = make([]*uop, len(c.window))
		for i, u := range c.window {
			us[i] = *u
			n.window[i] = &us[i]
		}
	}
	if len(c.sb) > 0 {
		ss := make([]sbEntry, len(c.sb))
		n.sb = make([]*sbEntry, len(c.sb))
		for i, e := range c.sb {
			ss[i] = *e
			n.sb[i] = &ss[i]
		}
	}
	return n
}

// BindL1 attaches the core's memory port; used when cloning, where the
// core and its cache must be created before they can reference each
// other.
func (c *Core) BindL1(l1 MemPort) { c.l1 = l1 }

// Kill halts the core immediately, modelling a host crash: all in-flight
// and unfetched work is abandoned (never observed, never retired). The
// core counts as finished so run loops waiting on completion unblock;
// L1 completions still in flight are dropped by Resume's halted guard.
func (c *Core) Kill() {
	if c.halted {
		return
	}
	c.halted = true
	c.srcDone = true
	c.fetchOK = false
	c.window = nil
	c.sb = nil
	c.outstanding = 0
	if !c.finished {
		c.finished = true
		c.FinishedAt = c.k.Now()
		if c.onFinish != nil {
			c.onFinish()
		}
	}
}

// Halted reports whether the core was killed by a crash.
func (c *Core) Halted() bool { return c.halted }

func (c *Core) checkFinished() {
	if c.finished || !c.srcDone {
		return
	}
	if len(c.window) == 0 && len(c.sb) == 0 && c.outstanding == 0 {
		c.finished = true
		c.FinishedAt = c.k.Now()
		if c.onFinish != nil {
			c.onFinish()
		}
	}
}
