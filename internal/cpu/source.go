package cpu

import "c3/internal/mem"

// SliceSource is a Source over a fixed program, recording loaded values
// into a register file. It is the execution vehicle for litmus threads.
type SliceSource struct {
	Prog []Instr
	Regs map[int]uint64
	pos  int
}

// NewSliceSource wraps prog.
func NewSliceSource(prog []Instr) *SliceSource {
	return &SliceSource{Prog: prog, Regs: make(map[int]uint64)}
}

// Next implements Source.
func (s *SliceSource) Next() (Instr, bool) {
	if s.pos >= len(s.Prog) {
		return Instr{}, false
	}
	in := s.Prog[s.pos]
	s.pos++
	return in, true
}

// Complete implements Source.
func (s *SliceSource) Complete(in Instr, loaded uint64) {
	if in.Kind == Load || in.Kind.IsRMW() {
		s.Regs[in.Reg] = loaded
	}
}

// Pos reports how many instructions have been fetched. The model
// checker's canonical hash includes it (together with Regs) so states
// that differ only in unfetched program tail never merge.
func (s *SliceSource) Pos() int { return s.pos }

// FutureLines visits the line address of every not-yet-fetched memory
// instruction (the complement of Core.FutureLines, which covers fetched
// in-flight state).
func (s *SliceSource) FutureLines(visit func(mem.LineAddr)) {
	for _, in := range s.Prog[s.pos:] {
		if in.Kind.IsMem() {
			visit(in.Addr.Line())
		}
	}
}

// Clone returns a deep copy for model-checker snapshots. The program is
// immutable and shared; the register file and position are copied.
func (s *SliceSource) Clone() *SliceSource {
	n := &SliceSource{Prog: s.Prog, Regs: make(map[int]uint64, len(s.Regs)), pos: s.pos}
	for r, v := range s.Regs {
		n.Regs[r] = v
	}
	return n
}

// FuncSource adapts closures to Source, for workload generators that
// react to loaded values (spin loops, pointer chasing).
type FuncSource struct {
	NextFn     func() (Instr, bool)
	CompleteFn func(in Instr, loaded uint64)
}

// Next implements Source.
func (f *FuncSource) Next() (Instr, bool) { return f.NextFn() }

// Complete implements Source.
func (f *FuncSource) Complete(in Instr, loaded uint64) {
	if f.CompleteFn != nil {
		f.CompleteFn(in, loaded)
	}
}
