package cpu

import (
	"fmt"
	"io"
)

// DumpState writes a canonical rendering of the core's microarchitectural
// state for model-checker hashing.
func (c *Core) DumpState(w io.Writer) {
	fmt.Fprintf(w, "CPU[%d]f%v:s%v:fin%v|", c.ID, c.fetchOK, c.srcDone, c.finished)
	for _, u := range c.window {
		fmt.Fprintf(w, "w%d:%x:%d:%v:%v:%d;", u.in.Kind, uint64(u.in.Addr), u.in.Val,
			u.issued, u.done, u.val)
	}
	for _, s := range c.sb {
		fmt.Fprintf(w, "b%x:%d:%v:%v;", uint64(s.addr), s.val, s.rel, s.draining)
	}
	fmt.Fprintf(w, "o%d\n", c.outstanding)
}
