package cpu

import (
	"fmt"
	"io"

	"c3/internal/mem"
)

// DumpState writes a canonical rendering of the core's microarchitectural
// state for model-checker hashing.
func (c *Core) DumpState(w io.Writer) {
	fmt.Fprintf(w, "CPU[%d]f%v:s%v:fin%v|", c.ID, c.fetchOK, c.srcDone, c.finished)
	for _, u := range c.window {
		fmt.Fprintf(w, "w%d:%x:%d:%v:%v:%d;", u.in.Kind, uint64(u.in.Addr), u.in.Val,
			u.issued, u.done, u.val)
	}
	for _, s := range c.sb {
		fmt.Fprintf(w, "b%x:%d:%v:%v;", uint64(s.addr), s.val, s.rel, s.draining)
	}
	fmt.Fprintf(w, "o%d\n", c.outstanding)
}

// DumpCanon writes the canonical (reduction-aware) rendering of the core
// for the model checker's canonical hash: the header carries the
// canonical slot instead of the core id, and every line address renders
// through rnAddr, so symmetric threads and addresses fingerprint
// identically. It is strictly finer than DumpState on real state — the
// destination register, annotations, and issue breadcrumbs (forwards,
// warmed) are included, since they steer future behavior — while
// sequence numbers and cost counters stay excluded as pure bookkeeping.
func (c *Core) DumpCanon(w io.Writer, slot int, rnAddr func(mem.Addr) mem.Addr) {
	fmt.Fprintf(w, "CPU[%d]f%v:s%v:fin%v|", slot, c.fetchOK, c.srcDone, c.finished)
	for _, u := range c.window {
		a := u.in.Addr
		if u.in.Kind.IsMem() {
			a = rnAddr(a)
		}
		fmt.Fprintf(w, "w%d:%x:%d:%d:%v%v%v:%v:%v:%d:%v%v;", u.in.Kind, uint64(a), u.in.Val,
			u.in.Reg, u.in.Acq, u.in.Rel, u.in.CtrlDep, u.issued, u.done, u.val,
			u.forwards, u.warmed)
	}
	for _, s := range c.sb {
		fmt.Fprintf(w, "b%x:%d:%v:%v;", uint64(rnAddr(s.addr)), s.val, s.rel, s.draining)
	}
	fmt.Fprintf(w, "o%d\n", c.outstanding)
}

// FutureLines visits the line address of every memory operation the core
// may still perform from in-flight state: window entries (issued or not
// — an issued op can still complete and unblock younger ones) and
// store-buffer entries awaiting drain. Instructions not yet fetched from
// the source are the caller's to account (see SliceSource.FutureLines).
// The model checker's partial-order reduction uses the union to decide
// whether delivering a message can ripple onto other lines.
func (c *Core) FutureLines(visit func(mem.LineAddr)) {
	for _, u := range c.window {
		if u.in.Kind.IsMem() {
			visit(u.in.Addr.Line())
		}
	}
	for _, s := range c.sb {
		visit(s.addr.Line())
	}
}
