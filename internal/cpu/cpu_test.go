package cpu

import (
	"testing"

	"c3/internal/mem"
	"c3/internal/sim"
)

// fakeMem is a MemPort backed by a flat map with per-access fixed latency
// and an optional per-address latency override. It records the order in
// which accesses reach "memory", which is what the MCM tests assert on.
type fakeMem struct {
	k       *sim.Kernel
	store   map[mem.Addr]uint64
	lat     sim.Time
	latFor  map[mem.Addr]sim.Time
	arrived []Request
	sync    bool
}

func newFakeMem(k *sim.Kernel, lat sim.Time) *fakeMem {
	return &fakeMem{k: k, store: make(map[mem.Addr]uint64), lat: lat,
		latFor: make(map[mem.Addr]sim.Time)}
}

func (f *fakeMem) NeedsSyncOps() bool { return f.sync }

func (f *fakeMem) Access(req Request, done func(Response)) {
	if req.Kind == Prefetch || req.Kind == PrefetchS {
		// Warming hint: no architectural effect in the fake.
		done(Response{})
		return
	}
	lat := f.lat
	if l, ok := f.latFor[req.Addr]; ok {
		lat = l
	}
	f.k.After(lat, func() {
		f.arrived = append(f.arrived, req)
		var v uint64
		switch req.Kind {
		case Load:
			v = f.store[req.Addr]
		case Store:
			f.store[req.Addr] = req.Val
		case RMWAdd:
			v = f.store[req.Addr]
			f.store[req.Addr] = v + req.Val
		case RMWXchg:
			v = f.store[req.Addr]
			f.store[req.Addr] = req.Val
		}
		done(Response{Val: v, Missed: lat > 2, MissLatency: lat})
	})
}

func run(t *testing.T, k *sim.Kernel, cores ...*Core) {
	t.Helper()
	for _, c := range cores {
		c.Start()
	}
	k.RunLimit(4_000_000)
	for _, c := range cores {
		if !c.Finished() {
			t.Fatalf("core %d did not finish", c.ID)
		}
	}
}

func TestSingleCoreSequence(t *testing.T) {
	k := &sim.Kernel{}
	fm := newFakeMem(k, 10)
	src := NewSliceSource([]Instr{
		{Kind: Store, Addr: 0x100, Val: 7},
		{Kind: Load, Addr: 0x100, Reg: 1},
	})
	c := New(0, k, DefaultConfig(TSO), fm, src, nil)
	run(t, k, c)
	if src.Regs[1] != 7 {
		t.Fatalf("load after store to same addr read %d, want 7 (forwarding)", src.Regs[1])
	}
	if c.Retired != 2 {
		t.Fatalf("Retired = %d, want 2", c.Retired)
	}
}

func TestStoreForwardingFromSB(t *testing.T) {
	k := &sim.Kernel{}
	fm := newFakeMem(k, 200) // slow memory: store lingers in SB
	src := NewSliceSource([]Instr{
		{Kind: Store, Addr: 0x100, Val: 9},
		{Kind: Load, Addr: 0x100, Reg: 1},
	})
	c := New(0, k, DefaultConfig(TSO), fm, src, nil)
	run(t, k, c)
	if src.Regs[1] != 9 {
		t.Fatalf("SB forwarding returned %d, want 9", src.Regs[1])
	}
}

func TestTSOStoreDrainFIFO(t *testing.T) {
	k := &sim.Kernel{}
	fm := newFakeMem(k, 5)
	// Make the first store slow: under TSO the second must still arrive
	// after it.
	fm.latFor[0x100] = 100
	src := NewSliceSource([]Instr{
		{Kind: Store, Addr: 0x100, Val: 1},
		{Kind: Store, Addr: 0x200, Val: 2},
	})
	c := New(0, k, DefaultConfig(TSO), fm, src, nil)
	run(t, k, c)
	if len(fm.arrived) != 2 || fm.arrived[0].Addr != 0x100 {
		t.Fatalf("TSO store order violated: %+v", fm.arrived)
	}
}

func TestWMOStoreDrainCanReorder(t *testing.T) {
	k := &sim.Kernel{}
	fm := newFakeMem(k, 5)
	fm.latFor[0x100] = 100
	src := NewSliceSource([]Instr{
		{Kind: Store, Addr: 0x100, Val: 1},
		{Kind: Store, Addr: 0x200, Val: 2},
	})
	c := New(0, k, DefaultConfig(WMO), fm, src, nil)
	run(t, k, c)
	if fm.arrived[0].Addr != 0x200 {
		t.Fatalf("WMO should let the fast store drain first: %+v", fm.arrived)
	}
}

func TestWMOReleaseOrdersStores(t *testing.T) {
	k := &sim.Kernel{}
	fm := newFakeMem(k, 5)
	fm.latFor[0x100] = 100
	src := NewSliceSource([]Instr{
		{Kind: Store, Addr: 0x100, Val: 1},
		{Kind: Store, Addr: 0x200, Val: 2, Rel: true},
	})
	c := New(0, k, DefaultConfig(WMO), fm, src, nil)
	run(t, k, c)
	if fm.arrived[0].Addr != 0x100 {
		t.Fatalf("release store drained before older store: %+v", fm.arrived)
	}
}

func TestFenceOrdersStores(t *testing.T) {
	k := &sim.Kernel{}
	fm := newFakeMem(k, 5)
	fm.latFor[0x100] = 100
	src := NewSliceSource([]Instr{
		{Kind: Store, Addr: 0x100, Val: 1},
		{Kind: Fence},
		{Kind: Store, Addr: 0x200, Val: 2},
	})
	c := New(0, k, DefaultConfig(WMO), fm, src, nil)
	run(t, k, c)
	if fm.arrived[0].Addr != 0x100 {
		t.Fatalf("fence failed to order stores: %+v", fm.arrived)
	}
}

func TestTSOLoadsInOrder(t *testing.T) {
	k := &sim.Kernel{}
	fm := newFakeMem(k, 5)
	fm.latFor[0x100] = 100 // first load slow
	src := NewSliceSource([]Instr{
		{Kind: Load, Addr: 0x100, Reg: 1},
		{Kind: Load, Addr: 0x200, Reg: 2},
	})
	c := New(0, k, DefaultConfig(TSO), fm, src, nil)
	run(t, k, c)
	if fm.arrived[0].Addr != 0x100 {
		t.Fatalf("TSO load-load order violated: %+v", fm.arrived)
	}
}

func TestWMOLoadsReorder(t *testing.T) {
	k := &sim.Kernel{}
	fm := newFakeMem(k, 5)
	fm.latFor[0x100] = 100
	src := NewSliceSource([]Instr{
		{Kind: Load, Addr: 0x100, Reg: 1},
		{Kind: Load, Addr: 0x200, Reg: 2},
	})
	c := New(0, k, DefaultConfig(WMO), fm, src, nil)
	run(t, k, c)
	if fm.arrived[0].Addr != 0x200 {
		t.Fatalf("WMO loads should issue out of order: %+v", fm.arrived)
	}
}

func TestAcquireBlocksYoungerLoads(t *testing.T) {
	k := &sim.Kernel{}
	fm := newFakeMem(k, 5)
	fm.latFor[0x100] = 100
	src := NewSliceSource([]Instr{
		{Kind: Load, Addr: 0x100, Reg: 1, Acq: true},
		{Kind: Load, Addr: 0x200, Reg: 2},
	})
	c := New(0, k, DefaultConfig(WMO), fm, src, nil)
	run(t, k, c)
	if fm.arrived[0].Addr != 0x100 {
		t.Fatalf("acquire load failed to order younger load: %+v", fm.arrived)
	}
}

func TestTSOStoreLoadRelaxed(t *testing.T) {
	// The signature TSO relaxation: a younger load to a different address
	// may complete while an older store sits in the store buffer.
	k := &sim.Kernel{}
	fm := newFakeMem(k, 5)
	fm.latFor[0x100] = 200 // slow store
	src := NewSliceSource([]Instr{
		{Kind: Store, Addr: 0x100, Val: 1},
		{Kind: Load, Addr: 0x200, Reg: 1},
	})
	c := New(0, k, DefaultConfig(TSO), fm, src, nil)
	run(t, k, c)
	if fm.arrived[0].Kind != Load {
		t.Fatalf("TSO should let the load bypass the buffered store: %+v", fm.arrived)
	}
}

func TestSCStoreLoadOrdered(t *testing.T) {
	k := &sim.Kernel{}
	fm := newFakeMem(k, 5)
	fm.latFor[0x100] = 200
	src := NewSliceSource([]Instr{
		{Kind: Store, Addr: 0x100, Val: 1},
		{Kind: Load, Addr: 0x200, Reg: 1},
	})
	c := New(0, k, DefaultConfig(SC), fm, src, nil)
	run(t, k, c)
	if fm.arrived[0].Kind != Store {
		t.Fatalf("SC must not reorder store->load: %+v", fm.arrived)
	}
}

func TestRMWDrainsSBAndBlocks(t *testing.T) {
	k := &sim.Kernel{}
	fm := newFakeMem(k, 5)
	fm.latFor[0x100] = 100
	src := NewSliceSource([]Instr{
		{Kind: Store, Addr: 0x100, Val: 1},
		{Kind: RMWAdd, Addr: 0x200, Val: 5, Reg: 1},
		{Kind: Load, Addr: 0x300, Reg: 2},
	})
	c := New(0, k, DefaultConfig(WMO), fm, src, nil)
	run(t, k, c)
	if fm.arrived[0].Addr != 0x100 || fm.arrived[1].Kind != RMWAdd || fm.arrived[2].Addr != 0x300 {
		t.Fatalf("RMW fencing violated: %+v", fm.arrived)
	}
	if src.Regs[1] != 0 {
		t.Fatalf("RMWAdd returned %d, want old value 0", src.Regs[1])
	}
	if fm.store[0x200] != 5 {
		t.Fatalf("RMWAdd stored %d, want 5", fm.store[0x200])
	}
}

func TestRMWXchg(t *testing.T) {
	k := &sim.Kernel{}
	fm := newFakeMem(k, 5)
	fm.store[0x200] = 3
	src := NewSliceSource([]Instr{{Kind: RMWXchg, Addr: 0x200, Val: 9, Reg: 1}})
	c := New(0, k, DefaultConfig(TSO), fm, src, nil)
	run(t, k, c)
	if src.Regs[1] != 3 || fm.store[0x200] != 9 {
		t.Fatalf("xchg got %d/mem %d, want 3/9", src.Regs[1], fm.store[0x200])
	}
}

func TestCtrlDepBlocksFetch(t *testing.T) {
	k := &sim.Kernel{}
	fm := newFakeMem(k, 50)
	seen := 0
	spin := 0
	src := &FuncSource{
		NextFn: func() (Instr, bool) {
			seen++
			switch {
			case spin < 3:
				return Instr{Kind: Load, Addr: 0x100, Reg: 1, CtrlDep: true}, true
			case seen <= 10:
				return Instr{Kind: Store, Addr: 0x200, Val: 1}, true
			}
			return Instr{}, false
		},
		CompleteFn: func(in Instr, _ uint64) {
			if in.Kind == Load {
				spin++
			}
		},
	}
	c := New(0, k, DefaultConfig(WMO), fm, src, nil)
	run(t, k, c)
	// The three spin loads must have been fetched one at a time: the
	// store can only arrive after all three loads.
	var loads, firstStore int
	for i, r := range fm.arrived {
		if r.Kind == Load {
			loads++
		} else if firstStore == 0 {
			firstStore = i
		}
	}
	if loads != 3 || firstStore < 3 {
		t.Fatalf("ctrl-dep spin violated: %+v", fm.arrived)
	}
}

func TestSyncOpsSentToRCCCache(t *testing.T) {
	k := &sim.Kernel{}
	fm := newFakeMem(k, 5)
	fm.sync = true
	src := NewSliceSource([]Instr{
		{Kind: Store, Addr: 0x100, Val: 1},
		{Kind: Release},
		{Kind: Acquire},
	})
	c := New(0, k, DefaultConfig(WMO), fm, src, nil)
	run(t, k, c)
	var kinds []Kind
	for _, r := range fm.arrived {
		kinds = append(kinds, r.Kind)
	}
	want := []Kind{Store, Release, Acquire}
	if len(kinds) != 3 || kinds[0] != want[0] || kinds[1] != want[1] || kinds[2] != want[2] {
		t.Fatalf("sync ops not forwarded to cache: %v", kinds)
	}
}

func TestObserveCountsStoresOnce(t *testing.T) {
	k := &sim.Kernel{}
	fm := newFakeMem(k, 5)
	src := NewSliceSource([]Instr{
		{Kind: Store, Addr: 0x100, Val: 1},
		{Kind: Load, Addr: 0x200, Reg: 1},
	})
	c := New(0, k, DefaultConfig(TSO), fm, src, nil)
	counts := map[Kind]int{}
	c.Observe = func(s OpStats) { counts[s.Kind]++ }
	run(t, k, c)
	if counts[Store] != 1 || counts[Load] != 1 {
		t.Fatalf("observed %v, want 1 store and 1 load", counts)
	}
}

func TestFinishCallback(t *testing.T) {
	k := &sim.Kernel{}
	fm := newFakeMem(k, 5)
	done := false
	src := NewSliceSource([]Instr{{Kind: Store, Addr: 0x100, Val: 1}})
	c := New(0, k, DefaultConfig(TSO), fm, src, func() { done = true })
	run(t, k, c)
	if !done || c.FinishedAt == 0 {
		t.Fatal("finish callback not invoked or time unset")
	}
}

func TestMCMParsingAndStrings(t *testing.T) {
	for _, c := range []struct {
		in   string
		want MCM
	}{{"arm", WMO}, {"tso", TSO}, {"sc", SC}, {"weak", WMO}} {
		got, err := ParseMCM(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseMCM(%q) = %v, %v", c.in, got, err)
		}
	}
	if _, err := ParseMCM("bogus"); err == nil {
		t.Error("ParseMCM should reject unknown names")
	}
	if WMO.String() != "ARM" || TSO.String() != "TSO" {
		t.Error("MCM String() mismatch")
	}
}

func TestWindowFillsWithoutDeadlock(t *testing.T) {
	// Saturate the window and SB with many independent ops.
	k := &sim.Kernel{}
	fm := newFakeMem(k, 30)
	var prog []Instr
	for i := 0; i < 200; i++ {
		if i%3 == 0 {
			prog = append(prog, Instr{Kind: Store, Addr: mem.Addr(0x1000 + i*64), Val: uint64(i)})
		} else {
			prog = append(prog, Instr{Kind: Load, Addr: mem.Addr(0x1000 + i*64), Reg: i})
		}
	}
	for _, m := range []MCM{SC, TSO, WMO} {
		k := &sim.Kernel{}
		fm = newFakeMem(k, 30)
		c := New(0, k, DefaultConfig(m), fm, NewSliceSource(prog), nil)
		run(t, k, c)
		if c.Retired != 200 {
			t.Fatalf("%v: retired %d, want 200", m, c.Retired)
		}
	}
}

func TestWMOFasterThanSC(t *testing.T) {
	mk := func(m MCM) sim.Time {
		k := &sim.Kernel{}
		fm := newFakeMem(k, 100)
		var prog []Instr
		for i := 0; i < 64; i++ {
			prog = append(prog, Instr{Kind: Load, Addr: mem.Addr(0x1000 + i*64), Reg: i})
		}
		c := New(0, k, DefaultConfig(m), fm, NewSliceSource(prog), nil)
		c.Start()
		k.RunLimit(0)
		return c.FinishedAt
	}
	wmo, tso, sc := mk(WMO), mk(TSO), mk(SC)
	if !(wmo < tso && tso <= sc) {
		t.Fatalf("expected WMO < TSO <= SC on a load-miss stream, got %d / %d / %d", wmo, tso, sc)
	}
}

func TestJitterDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) sim.Time {
		k := &sim.Kernel{}
		fm := newFakeMem(k, 40)
		var prog []Instr
		for i := 0; i < 40; i++ {
			prog = append(prog, Instr{Kind: Load, Addr: mem.Addr(0x1000 + i*64), Reg: i})
		}
		cfg := DefaultConfig(WMO)
		cfg.IssueJitter, cfg.DrainJitter, cfg.Seed = 300, 300, seed
		c := New(0, k, cfg, fm, NewSliceSource(prog), nil)
		c.Start()
		k.RunLimit(0)
		return c.FinishedAt
	}
	if run(5) != run(5) {
		t.Fatal("same seed must reproduce timing exactly")
	}
	same := true
	for s := int64(1); s < 6; s++ {
		if run(s) != run(s+100) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds never changed timing — jitter inert?")
	}
}

func TestPrefetchSkippedForSyncCaches(t *testing.T) {
	// RCC-style caches (NeedsSyncOps) must not receive RFO prefetches:
	// their stores are local writes, not ownership acquisitions.
	k := &sim.Kernel{}
	fm := newFakeMem(k, 5)
	fm.sync = true
	src := NewSliceSource([]Instr{{Kind: Store, Addr: 0x100, Val: 1}})
	c := New(0, k, DefaultConfig(TSO), fm, src, nil)
	run(t, k, c)
	for _, r := range fm.arrived {
		if r.Kind == Prefetch || r.Kind == PrefetchS {
			t.Fatalf("prefetch sent to a sync cache: %v", r)
		}
	}
}
