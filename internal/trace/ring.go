package trace

import (
	"fmt"
	"io"

	"c3/internal/mem"
	"c3/internal/msg"
)

// RingSink keeps the most recent events in a fixed-capacity circular
// buffer for post-mortem inspection: cheap enough to leave on for long
// runs, and the history source for watchdog hang reports.
type RingSink struct {
	buf  []Event
	next int
	full bool
	// dropped counts events overwritten after the ring filled — history
	// a post-mortem reader silently lost. Surfaced in the metrics
	// registry as trace.dropped_events (see Tracer.DroppedEvents), so an
	// undersized ring is visible instead of quietly truncating reports.
	dropped uint64
}

// NewRing builds a ring holding the last capacity events.
func NewRing(capacity int) *RingSink {
	if capacity <= 0 {
		capacity = 4096
	}
	return &RingSink{buf: make([]Event, capacity)}
}

// Emit implements Sink.
func (r *RingSink) Emit(ev Event) {
	if r.full {
		r.dropped++
	}
	r.buf[r.next] = ev
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

// Dropped reports how many events have been overwritten since creation.
func (r *RingSink) Dropped() uint64 { return r.dropped }

// Len reports how many events are retained.
func (r *RingSink) Len() int {
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// Events returns the retained events in chronological order.
func (r *RingSink) Events() []Event {
	out := make([]Event, 0, r.Len())
	if r.full {
		out = append(out, r.buf[r.next:]...)
	}
	out = append(out, r.buf[:r.next]...)
	return out
}

// History returns the retained events touching line addr, in order.
func (r *RingSink) History(addr mem.LineAddr) []Event {
	var out []Event
	for _, ev := range r.Events() {
		if ev.Addr == addr {
			out = append(out, ev)
		}
	}
	return out
}

// Dump writes the retained events, one per line. label may be nil.
func (r *RingSink) Dump(w io.Writer, label func(msg.NodeID) string) {
	for _, ev := range r.Events() {
		writeEvent(w, ev, label)
	}
}

// writeEvent renders one event in the ring/report format.
func writeEvent(w io.Writer, ev Event, label func(msg.NodeID) string) {
	lbl := func(id msg.NodeID) string {
		if label != nil {
			return label(id)
		}
		return itoa(int64(id))
	}
	switch ev.Kind {
	case KSend, KDeliver:
		fmt.Fprintf(w, "%10d  %-7s %-13s %s  %s -> %s  [%s] #%d\n",
			ev.Time, ev.Kind, ev.MsgType, ev.Addr,
			lbl(ev.Src), lbl(ev.Dst), ev.VNet, ev.Serial)
	case KState:
		fmt.Fprintf(w, "%10d  %-7s %-13s %s  %s: %s -> %s\n",
			ev.Time, ev.Kind, ev.Note, ev.Addr, lbl(ev.Node), ev.Old, ev.New)
	case KRetire:
		fmt.Fprintf(w, "%10d  %-7s %-13s %s  %s\n",
			ev.Time, ev.Kind, ev.Note, ev.Addr, lbl(ev.Node))
	}
}
