// Package trace is the simulator's observability layer: a protocol-level
// event trace, a unified metrics registry, and hang diagnostics.
//
// Design constraints, in order:
//
//  1. Zero cost when disabled. Every hook site in the timed stack guards
//     with a plain nil check ("if x.Tracer != nil { ... }"); event
//     construction happens behind the guard, so a run without tracing
//     performs no allocation and no call on the hot path. The guard is
//     pinned by TestTraceDisabledZeroAlloc and BenchmarkTraceDisabled.
//
//  2. One event vocabulary for every consumer. The same Event stream
//     feeds the post-mortem ring buffer (RingSink), the Chrome
//     trace-event / Perfetto exporter (ChromeSink), and the transaction
//     watchdog — so a hang report, a perfetto track, and a unit test all
//     describe a coherence flow in identical terms.
//
//  3. Storage stays where it is. The metrics Registry does not own any
//     counters: it holds named readers over the existing Stats structs
//     (core.Stats, cxl.Stats, hmesi.Stats, network.Stats), so hot-path
//     increments remain branch-free field increments.
package trace

import (
	"c3/internal/mem"
	"c3/internal/msg"
	"c3/internal/sim"
)

// Kind classifies a trace event.
type Kind uint8

const (
	// KSend: a message entered the fabric (Node = sender).
	KSend Kind = iota
	// KDeliver: a message reached its destination port (Node = receiver).
	KDeliver
	// KState: a controller committed a state transition for a line.
	KState
	// KRetire: a core retired a memory operation.
	KRetire
)

func (k Kind) String() string {
	switch k {
	case KSend:
		return "send"
	case KDeliver:
		return "deliver"
	case KState:
		return "state"
	case KRetire:
		return "retire"
	}
	return "?"
}

// Event is one protocol-level observation. It is passed by value and
// contains no pointers into simulator state, so sinks may retain it.
type Event struct {
	Kind Kind
	Time sim.Time
	// Node is the acting endpoint: sender for KSend, receiver for
	// KDeliver, the controller for KState, the core's trace node for
	// KRetire.
	Node msg.NodeID
	Addr mem.LineAddr

	// Message fields (KSend/KDeliver).
	MsgType  msg.Type
	VNet     msg.VNet
	Src, Dst msg.NodeID
	Serial   uint64

	// Transition fields (KState): the controller's before/after state
	// rendering, e.g. "S/I" -> "M/M" for a C3 compound state.
	Old, New string

	// Note carries free-form context: the triggering opcode for KState,
	// the op kind ("LD miss 240cyc") for KRetire.
	Note string
}

// Sink consumes events. Emit runs synchronously on the simulator thread;
// sinks must not call back into the simulation.
type Sink interface {
	Emit(ev Event)
}

// Tracer fans events out to its sinks and, when armed, to the hang
// watchdog. A nil *Tracer is the disabled state; hook sites must guard
// with a nil check rather than calling methods on nil.
type Tracer struct {
	sinks []Sink
	watch *Watchdog
	names map[msg.NodeID]string
}

// New builds a tracer over the given sinks.
func New(sinks ...Sink) *Tracer {
	return &Tracer{sinks: sinks, names: make(map[msg.NodeID]string)}
}

// AddSink attaches another sink.
func (t *Tracer) AddSink(s Sink) { t.sinks = append(t.sinks, s) }

// SetWatchdog arms hang detection; every subsequent event feeds the
// transaction table.
func (t *Tracer) SetWatchdog(w *Watchdog) {
	t.watch = w
	w.names = t.Label
}

// Watchdog returns the armed watchdog, if any.
func (t *Tracer) Watchdog() *Watchdog { return t.watch }

// DroppedEvents sums the events every attached ring (sinks plus the
// watchdog's history ring) has overwritten: the amount of trace history
// this run lost. system.Metrics registers it as trace.dropped_events.
func (t *Tracer) DroppedEvents() uint64 {
	var n uint64
	for _, s := range t.sinks {
		if r, ok := s.(*RingSink); ok {
			n += r.Dropped()
		}
	}
	if t.watch != nil && t.watch.ring != nil {
		n += t.watch.ring.Dropped()
	}
	return n
}

// Name registers a human-readable label for a trace node ("C3[0]",
// "L1[5]", "DCOH", "core 1.2"). Labels appear as Perfetto track names
// and in watchdog reports.
func (t *Tracer) Name(id msg.NodeID, label string) { t.names[id] = label }

// Label renders a node id, using its registered name when known.
func (t *Tracer) Label(id msg.NodeID) string {
	if n, ok := t.names[id]; ok {
		return n
	}
	if id == msg.None {
		return "-"
	}
	return "node " + itoa(int64(id))
}

// Emit dispatches one event.
func (t *Tracer) Emit(ev Event) {
	for _, s := range t.sinks {
		s.Emit(ev)
	}
	if t.watch != nil {
		t.watch.observe(ev)
	}
}

// MsgSend records a message entering the fabric.
func (t *Tracer) MsgSend(now sim.Time, m *msg.Msg) {
	t.Emit(Event{Kind: KSend, Time: now, Node: m.Src, Addr: m.Addr,
		MsgType: m.Type, VNet: m.VNet, Src: m.Src, Dst: m.Dst, Serial: m.Serial})
}

// MsgDeliver records a message reaching its destination.
func (t *Tracer) MsgDeliver(now sim.Time, m *msg.Msg) {
	t.Emit(Event{Kind: KDeliver, Time: now, Node: m.Dst, Addr: m.Addr,
		MsgType: m.Type, VNet: m.VNet, Src: m.Src, Dst: m.Dst, Serial: m.Serial})
}

// State records a controller state transition.
func (t *Tracer) State(now sim.Time, node msg.NodeID, addr mem.LineAddr, old, new, note string) {
	t.Emit(Event{Kind: KState, Time: now, Node: node, Addr: addr,
		Old: old, New: new, Note: note})
}

// Retire records a completed core memory operation.
func (t *Tracer) Retire(now sim.Time, node msg.NodeID, addr mem.LineAddr, note string) {
	t.Emit(Event{Kind: KRetire, Time: now, Node: node, Addr: addr, Note: note})
}

// itoa is a minimal integer formatter (avoids strconv on report paths
// shared with label rendering; not hot).
func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var b [24]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}

// opens reports whether a message opens a tracked transaction at its
// sender: the initiator requests of each protocol level. Snoops and
// forwards are deliberately untracked — they complete inside the
// envelope of the request that caused them, and their ack routing (e.g.
// GInvAck to the requestor, not the directory) would unbalance a naive
// pairing. The outermost request/grant pair is always precise.
func opens(t msg.Type) bool {
	switch t {
	case msg.GetS, msg.GetM, msg.GetV, msg.WrThrough,
		msg.AtomicAdd, msg.AtomicXchg, msg.SyncRel, msg.SyncAcq,
		msg.PutS, msg.PutE, msg.PutM, msg.PutO,
		msg.MemRdA, msg.MemRdS, msg.MemWrI, msg.MemWrS,
		msg.GGetS, msg.GGetM, msg.GPutS, msg.GPutM, msg.GPutE:
		return true
	}
	return false
}

// closes reports whether a delivered message terminates a tracked
// transaction at its destination: the grants and completions.
func closes(t msg.Type) bool {
	switch t {
	case msg.DataS, msg.DataE, msg.DataM, msg.DataV,
		msg.PutAck, msg.SyncAck, msg.AtomicResp,
		msg.CmpS, msg.CmpE, msg.CmpM, msg.CmpWr,
		msg.GData, msg.GDataE, msg.GDataM, msg.GDataS, msg.GPutAck:
		return true
	}
	return false
}
