package trace_test

import (
	"encoding/json"
	"strings"
	"testing"

	"c3/internal/mem"
	"c3/internal/sim"
	"c3/internal/trace"
)

// TestRingDropped pins the overwrite counter: a ring loses nothing until
// it fills, then counts every evicted event.
func TestRingDropped(t *testing.T) {
	r := trace.NewRing(4)
	for i := 0; i < 4; i++ {
		r.Emit(trace.Event{Kind: trace.KState, Time: sim.Time(i)})
	}
	if d := r.Dropped(); d != 0 {
		t.Fatalf("Dropped = %d before overflow, want 0", d)
	}
	for i := 4; i < 7; i++ {
		r.Emit(trace.Event{Kind: trace.KState, Time: sim.Time(i)})
	}
	if d := r.Dropped(); d != 3 {
		t.Fatalf("Dropped = %d after 7 emits into cap 4, want 3", d)
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4 (dropping must not shrink retention)", r.Len())
	}
}

// TestTracerDroppedEvents pins the aggregate: DroppedEvents sums every
// attached ring sink plus the watchdog's history ring, and the count is
// what the metrics registry surfaces as trace.dropped_events.
func TestTracerDroppedEvents(t *testing.T) {
	k := &sim.Kernel{}
	ring := trace.NewRing(2)
	tr := trace.New(ring)
	w := trace.NewWatchdog(k, 100, 3)
	tr.SetWatchdog(w)

	// KState events feed every ring but open no transactions, so nothing
	// arms the watchdog timer.
	for i := 0; i < 5; i++ {
		tr.State(sim.Time(i), 1, mem.LineAddr(0x40), "I", "S", "fill")
	}
	// sink ring (cap 2) dropped 3, watchdog ring (cap 3) dropped 2.
	if got := tr.DroppedEvents(); got != 5 {
		t.Fatalf("DroppedEvents = %d, want 5 (3 from sink ring + 2 from watchdog ring)", got)
	}

	reg := trace.NewRegistry()
	reg.Counter("trace.dropped_events", tr.DroppedEvents)
	var b strings.Builder
	reg.RenderText(&b)
	if !strings.Contains(b.String(), "trace.dropped_events") || !strings.Contains(b.String(), "5") {
		t.Errorf("registry render missing the dropped counter:\n%s", b.String())
	}
}

// TestRegistryJSONGolden pins the RenderJSON byte format: keys sorted by
// name regardless of registration order, stable layout. The ledger and
// the statusz endpoint both embed this rendering, so its bytes are an
// interface — a format change must show up here as a conscious diff.
func TestRegistryJSONGolden(t *testing.T) {
	r := trace.NewRegistry()
	// Register out of order: the render must sort.
	r.Counter("z.last", func() uint64 { return 3 })
	r.Counter("a.first", func() uint64 { return 1 })
	r.Counter("m.middle", func() uint64 { return 2 })
	r.Gauge("run.ratio", func() float64 { return 0.25 })
	h := trace.NewLatencyHist([]uint64{100, 200})
	h.Observe(sim.NS(50))
	h.Observe(sim.NS(500))
	r.Histogram("lat", h)

	const golden = `{
  "counters": {
    "a.first": 1,
    "m.middle": 2,
    "z.last": 3
  },
  "gauges": {
    "run.ratio": 0.25
  },
  "histograms": {
    "lat": {"unit": "ns", "bounds": [100, 200], "counts": [1, 0, 1], "count": 2, "sum": 550}
  }
}
`
	var b strings.Builder
	if err := r.RenderJSON(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != golden {
		t.Fatalf("RenderJSON drifted from golden.\ngot:\n%s\nwant:\n%s", b.String(), golden)
	}

	// Renders are idempotent: same registry, same bytes.
	var again strings.Builder
	if err := r.RenderJSON(&again); err != nil {
		t.Fatal(err)
	}
	if again.String() != b.String() {
		t.Fatal("two renders of the same registry differ")
	}
}

// TestRegistryJSONRoundTrip: the hand-rendered JSON must survive a trip
// through encoding/json with no value loss — that is what every ledger
// consumer (jq, the diff recipe in EXPERIMENTS.md) relies on.
func TestRegistryJSONRoundTrip(t *testing.T) {
	r := trace.NewRegistry()
	r.Counter("soak.forbidden", func() uint64 { return 0 })
	r.Counter("trace.dropped_events", func() uint64 { return 18446744073709551615 }) // max uint64 survives
	r.Gauge("check.frontier", func() float64 { return 1234.5 })

	var b strings.Builder
	if err := r.RenderJSON(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Counters map[string]uint64  `json:"counters"`
		Gauges   map[string]float64 `json:"gauges"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("render is not decodable JSON: %v\n%s", err, b.String())
	}
	if doc.Counters["trace.dropped_events"] != 18446744073709551615 {
		t.Errorf("max-uint64 counter lost precision: %d", doc.Counters["trace.dropped_events"])
	}
	if doc.Gauges["check.frontier"] != 1234.5 {
		t.Errorf("gauge = %v, want 1234.5", doc.Gauges["check.frontier"])
	}
	reencoded, err := json.Marshal(doc.Counters)
	if err != nil {
		t.Fatal(err)
	}
	var back map[string]uint64
	if err := json.Unmarshal(reencoded, &back); err != nil {
		t.Fatal(err)
	}
	if back["trace.dropped_events"] != doc.Counters["trace.dropped_events"] {
		t.Error("encoding/json round trip changed a counter value")
	}
}
