package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"c3/internal/mem"
	"c3/internal/msg"
	"c3/internal/sim"
)

// DefaultHangAgeNS is the default watchdog threshold: 10x the simulated
// cross-cluster round trip (Table III: two 70 ns link traversals plus
// flit serialization and controller occupancy, ~150 ns end to end).
// Any well-formed transaction completes well inside one round trip per
// protocol level; ten round trips of silence on an open transaction is
// a hang, not a queue.
const DefaultHangAgeNS = 1500

// DefaultHangAge is DefaultHangAgeNS in cycles.
const DefaultHangAge = sim.Time(DefaultHangAgeNS * sim.CyclesPerNS)

// Dumper is implemented by every controller that can render its state
// (the model checker's DumpState); the watchdog reuses it for hang
// reports.
type Dumper interface {
	DumpState(w io.Writer)
}

// atxn tracks the open transactions of one line.
type atxn struct {
	opens, closes int
	// oldestOpen is when the current unbroken run of open transactions
	// began; reset whenever the line goes idle (closes == opens).
	oldestOpen sim.Time
	last       sim.Time
	// bySrc attributes open transactions to their requestor (the Src of
	// the opening send; the Dst of the closing delivery), so a host crash
	// can cancel exactly the dead host's transactions (DropNodes).
	bySrc map[msg.NodeID]int
}

// Watchdog maintains the in-flight transaction table and turns protocol
// hangs into reports. It observes the same event stream as every other
// sink: request sends open a per-line transaction, grant/completion
// deliveries close one. When a line with open transactions has seen no
// traffic at all for longer than MaxAge, the watchdog dumps the line's
// event history (from its ring) and every registered controller's
// DumpState, then reports through OnHang (default: panic, so silent
// deadlocks cannot pass unnoticed). The criterion is silence, not age:
// a hot line under sustained contention can stay open indefinitely
// while making progress, and must not trip the watchdog.
//
// The check is event-driven, not polled: a kernel timer is armed only
// while transactions are open and cancelled when the system goes idle,
// so an armed watchdog never keeps the event queue alive after a run
// completes.
type Watchdog struct {
	k      *sim.Kernel
	MaxAge sim.Time
	// OnHang, when non-nil, receives the report instead of panicking.
	OnHang func(report string)
	// OnHangReport, when non-nil, receives the structured report and
	// takes precedence over OnHang. The soak harness uses it to classify
	// hangs (link stall vs. poisoned line vs. protocol deadlock) instead
	// of crashing the campaign.
	OnHangReport func(HangReport)
	// Classify, when non-nil, labels the hung line for the report. The
	// system wires it to the fault injector's view: a line with pending
	// retransmissions classifies as "link-retry", a poisoned line as
	// "poisoned-line"; everything else is a "protocol-hang".
	Classify func(line mem.LineAddr) string

	ring  *RingSink
	open  map[mem.LineAddr]*atxn
	timer sim.Handle
	armed bool
	fired bool
	rep   string

	dumpers []namedDumper
	names   func(msg.NodeID) string
}

type namedDumper struct {
	name string
	d    Dumper
}

// NewWatchdog builds a watchdog on kernel k. maxAge <= 0 selects
// DefaultHangAge; historyCap sizes the per-report event ring (<= 0 for
// the default).
func NewWatchdog(k *sim.Kernel, maxAge sim.Time, historyCap int) *Watchdog {
	if maxAge <= 0 {
		maxAge = DefaultHangAge
	}
	return &Watchdog{
		k: k, MaxAge: maxAge,
		ring: NewRing(historyCap),
		open: make(map[mem.LineAddr]*atxn),
	}
}

// AddDumper registers a controller whose DumpState appears in reports.
func (w *Watchdog) AddDumper(name string, d Dumper) {
	w.dumpers = append(w.dumpers, namedDumper{name, d})
}

// Fired reports whether a hang has been detected.
func (w *Watchdog) Fired() bool { return w.fired }

// Report returns the hang report, or "" if none fired.
func (w *Watchdog) Report() string { return w.rep }

// observe feeds one trace event into the transaction table.
func (w *Watchdog) observe(ev Event) {
	if w.fired {
		return
	}
	w.ring.Emit(ev)
	switch ev.Kind {
	case KSend:
		t := w.open[ev.Addr]
		if t != nil {
			t.last = ev.Time // any traffic on an open line is progress
		}
		if !opens(ev.MsgType) {
			return
		}
		if t == nil {
			t = &atxn{bySrc: make(map[msg.NodeID]int)}
			w.open[ev.Addr] = t
		}
		if t.opens == t.closes {
			t.oldestOpen = ev.Time
		}
		t.opens++
		t.bySrc[ev.Src]++
		t.last = ev.Time
		w.arm()
	case KDeliver:
		t := w.open[ev.Addr]
		if t != nil {
			t.last = ev.Time
			if closes(ev.MsgType) && t.closes < t.opens {
				t.closes++
				if t.bySrc[ev.Dst] > 0 {
					t.bySrc[ev.Dst]--
				}
				if t.closes == t.opens {
					delete(w.open, ev.Addr)
					if len(w.open) == 0 {
						w.disarm()
					}
				}
			}
		}
	}
}

// arm schedules the hang check if it is not already pending.
func (w *Watchdog) arm() {
	if w.armed || w.fired {
		return
	}
	w.timer = w.k.After(w.MaxAge+1, w.check)
	w.armed = true
}

func (w *Watchdog) disarm() {
	if w.armed {
		w.k.Cancel(w.timer)
		w.timer = sim.Handle{}
		w.armed = false
	}
}

// check fires the report for any silent open line, or re-arms for the
// least recently active one.
func (w *Watchdog) check() {
	w.armed = false
	if w.fired || len(w.open) == 0 {
		return
	}
	now := w.k.Now()
	var stalest sim.Time
	first := true
	for addr, t := range w.open {
		if now-t.last > w.MaxAge {
			w.fire(addr, t)
			return
		}
		if first || t.last < stalest {
			stalest = t.last
			first = false
		}
	}
	w.timer = w.k.Schedule(stalest+w.MaxAge+1, w.check)
	w.armed = true
}

// DropNodes cancels the open transactions attributed to the given nodes
// (a crashed host's requests will never see their completions — they are
// abandoned, not hung). Lines whose remaining opens are all balanced are
// closed out; the watchdog disarms when nothing is left in flight.
func (w *Watchdog) DropNodes(ids ...msg.NodeID) {
	if w.fired {
		return
	}
	for addr, t := range w.open {
		for _, id := range ids {
			if n := t.bySrc[id]; n > 0 {
				t.opens -= n
				delete(t.bySrc, id)
			}
		}
		if t.closes >= t.opens {
			delete(w.open, addr)
		}
	}
	if len(w.open) == 0 {
		w.disarm()
	}
}

// HangReport is the structured form of a watchdog hang: what line stuck,
// its transaction bookkeeping, a classification, and the rendered text
// report (event history + controller dumps).
type HangReport struct {
	Line          mem.LineAddr
	Opens, Closes int
	OldestOpen    sim.Time
	LastActivity  sim.Time
	At            sim.Time
	// Class is "protocol-hang" unless a Classify hook refines it (e.g.
	// "link-retry", "poisoned-line").
	Class string
	// Text is the full human-readable report.
	Text string
}

// fire builds and delivers the hang report.
func (w *Watchdog) fire(addr mem.LineAddr, t *atxn) {
	w.fired = true
	w.disarm()

	class := "protocol-hang"
	if w.Classify != nil {
		if c := w.Classify(addr); c != "" {
			class = c
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "trace: watchdog: transaction hang on line %s at t=%d [%s]\n", addr, w.k.Now(), class)
	fmt.Fprintf(&b, "  open=%d closed=%d oldest-open=%d last-activity=%d max-age=%d\n",
		t.opens, t.closes, t.oldestOpen, t.last, w.MaxAge)

	// Other lines still in flight, for context.
	var others []mem.LineAddr
	for a := range w.open {
		if a != addr {
			others = append(others, a)
		}
	}
	if len(others) > 0 {
		sort.Slice(others, func(i, j int) bool { return others[i] < others[j] })
		fmt.Fprintf(&b, "  other open lines: %v\n", others)
	}

	b.WriteString("\nmessage history of the hung line:\n")
	hist := w.ring.History(addr)
	if len(hist) == 0 {
		b.WriteString("  (event ring no longer holds this line's history; enlarge historyCap)\n")
	}
	for _, ev := range hist {
		writeEvent(&b, ev, w.names)
	}

	b.WriteString("\ncontroller state:\n")
	for _, nd := range w.dumpers {
		fmt.Fprintf(&b, "-- %s --\n", nd.name)
		nd.d.DumpState(&b)
	}

	w.rep = b.String()
	if w.OnHangReport != nil {
		w.OnHangReport(HangReport{
			Line: addr, Opens: t.opens, Closes: t.closes,
			OldestOpen: t.oldestOpen, LastActivity: t.last, At: w.k.Now(),
			Class: class, Text: w.rep,
		})
		return
	}
	if w.OnHang != nil {
		w.OnHang(w.rep)
		return
	}
	panic(w.rep)
}
