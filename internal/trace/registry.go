package trace

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"c3/internal/sim"
)

// Registry is the unified metrics surface: named counters and latency
// histograms with uniform text and JSON renderers. It owns no storage —
// counters are read lazily through closures over the components' own
// Stats fields, so registering a metric adds nothing to the hot path.
type Registry struct {
	counters map[string]func() uint64
	histos   map[string]*LatencyHist
	gauges   map[string]func() float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]func() uint64),
		histos:   make(map[string]*LatencyHist),
		gauges:   make(map[string]func() float64),
	}
}

// Counter registers a named monotonic counter reader.
func (r *Registry) Counter(name string, read func() uint64) {
	if _, dup := r.counters[name]; dup {
		panic("trace: duplicate counter " + name)
	}
	r.counters[name] = read
}

// Gauge registers a named float reader (ratios, MPKI, geomeans).
func (r *Registry) Gauge(name string, read func() float64) {
	if _, dup := r.gauges[name]; dup {
		panic("trace: duplicate gauge " + name)
	}
	r.gauges[name] = read
}

// Histogram registers a latency histogram.
func (r *Registry) Histogram(name string, h *LatencyHist) {
	if _, dup := r.histos[name]; dup {
		panic("trace: duplicate histogram " + name)
	}
	r.histos[name] = h
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// RenderText writes a human-readable metrics listing, sorted by name.
func (r *Registry) RenderText(w io.Writer) {
	for _, name := range sortedKeys(r.counters) {
		fmt.Fprintf(w, "%-34s %12d\n", name, r.counters[name]())
	}
	for _, name := range sortedKeys(r.gauges) {
		fmt.Fprintf(w, "%-34s %12.3f\n", name, r.gauges[name]())
	}
	for _, name := range sortedKeys(r.histos) {
		h := r.histos[name]
		fmt.Fprintf(w, "%s: n=%d mean=%.0fns p50=%dns p99=%dns\n",
			name, h.N, h.MeanNS(), h.QuantileNS(0.50), h.QuantileNS(0.99))
		for i, c := range h.Counts {
			if c == 0 {
				continue
			}
			fmt.Fprintf(w, "  %-10s %12d\n", h.bucketLabel(i), c)
		}
	}
}

// RenderJSON writes the registry as one JSON object:
//
//	{"counters": {name: value, ...},
//	 "gauges":   {name: value, ...},
//	 "histograms": {name: {"unit":"ns","bounds":[...],"counts":[...],
//	                       "count":N,"sum":S}, ...}}
//
// Rendered by hand to keep key order deterministic (sorted by name).
func (r *Registry) RenderJSON(w io.Writer) error {
	var b strings.Builder
	b.WriteString("{\n  \"counters\": {")
	for i, name := range sortedKeys(r.counters) {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, "\n    %q: %d", name, r.counters[name]())
	}
	b.WriteString("\n  },\n  \"gauges\": {")
	for i, name := range sortedKeys(r.gauges) {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, "\n    %q: %g", name, r.gauges[name]())
	}
	b.WriteString("\n  },\n  \"histograms\": {")
	for i, name := range sortedKeys(r.histos) {
		if i > 0 {
			b.WriteString(",")
		}
		h := r.histos[name]
		fmt.Fprintf(&b, "\n    %q: {\"unit\": \"ns\", \"bounds\": [", name)
		for j, ub := range h.Bounds {
			if j > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%d", uint64(ub)/sim.CyclesPerNS)
		}
		b.WriteString("], \"counts\": [")
		for j, c := range h.Counts {
			if j > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%d", c)
		}
		fmt.Fprintf(&b, "], \"count\": %d, \"sum\": %d}", h.N, uint64(h.Sum)/sim.CyclesPerNS)
	}
	b.WriteString("\n  }\n}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// LatencyHist is a fixed-bound latency histogram. Bounds are inclusive
// upper bounds in cycles; Counts has one extra overflow bucket. Observe
// is branch-light and allocation-free, safe to call from hot paths.
type LatencyHist struct {
	Bounds []sim.Time
	Counts []uint64
	N      uint64
	Sum    sim.Time
}

// DefaultMissBounds are the default miss-latency bucket boundaries in
// ns, chosen to straddle the Fig. 11 bands (75 ns intra-cluster,
// 300 ns cross-cluster; see stats.Band).
var DefaultMissBounds = []uint64{25, 50, 75, 100, 150, 200, 300, 400, 600, 1000, 2000}

// NewLatencyHist builds a histogram with the given upper bounds in ns
// (nil -> DefaultMissBounds).
func NewLatencyHist(boundsNS []uint64) *LatencyHist {
	if boundsNS == nil {
		boundsNS = DefaultMissBounds
	}
	h := &LatencyHist{
		Bounds: make([]sim.Time, len(boundsNS)),
		Counts: make([]uint64, len(boundsNS)+1),
	}
	for i, ns := range boundsNS {
		h.Bounds[i] = sim.NS(ns)
		if i > 0 && h.Bounds[i] <= h.Bounds[i-1] {
			panic("trace: histogram bounds not increasing")
		}
	}
	return h
}

// Observe records one latency sample.
func (h *LatencyHist) Observe(lat sim.Time) {
	h.N++
	h.Sum += lat
	for i, ub := range h.Bounds {
		if lat <= ub {
			h.Counts[i]++
			return
		}
	}
	h.Counts[len(h.Bounds)]++
}

// MeanNS reports the mean sample in ns.
func (h *LatencyHist) MeanNS() float64 {
	if h.N == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.N) / sim.CyclesPerNS
}

// QuantileNS reports the upper bound (ns) of the bucket containing the
// q-quantile sample; the overflow bucket reports the last bound.
func (h *LatencyHist) QuantileNS(q float64) uint64 {
	if h.N == 0 {
		return 0
	}
	// Rank of the quantile sample, rounding up: the p99 of 11 samples is
	// the 11th, not the 10th.
	target := uint64(math.Ceil(q * float64(h.N)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= target {
			if i < len(h.Bounds) {
				return uint64(h.Bounds[i]) / sim.CyclesPerNS
			}
			break
		}
	}
	return uint64(h.Bounds[len(h.Bounds)-1]) / sim.CyclesPerNS
}

func (h *LatencyHist) bucketLabel(i int) string {
	if i < len(h.Bounds) {
		return fmt.Sprintf("<=%dns", uint64(h.Bounds[i])/sim.CyclesPerNS)
	}
	return fmt.Sprintf(">%dns", uint64(h.Bounds[len(h.Bounds)-1])/sim.CyclesPerNS)
}
