package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"c3/internal/msg"
	"c3/internal/sim"
)

// ChromeSink streams events as Chrome trace-event JSON (the "JSON Array
// Format"), directly loadable in ui.perfetto.dev or chrome://tracing.
//
// Mapping:
//
//   - one track (tid) per network endpoint, all under pid 1 ("fabric");
//     track names come from the tracer's node labels;
//   - each message becomes one complete event (ph "X") on the
//     *destination* track, spanning send to delivery, so in-flight time
//     is visible as span length; the vnet is the category;
//   - state transitions and retirements are instant events (ph "i") on
//     the acting node's track, with old/new state in args.
//
// Timestamps are microseconds (the format's unit); at the simulator's
// 2 GHz clock, 1 us = 2000 cycles.
type ChromeSink struct {
	w     io.Writer
	err   error
	wrote bool
	// Namer supplies track names; defaults to "node <id>".
	Namer func(msg.NodeID) string

	pending map[uint64]Event // serial -> send event awaiting delivery
	named   map[msg.NodeID]bool
}

// NewChrome starts a Chrome trace stream on w. Call Close to terminate
// the JSON array.
func NewChrome(w io.Writer) *ChromeSink {
	return &ChromeSink{w: w,
		pending: make(map[uint64]Event),
		named:   make(map[msg.NodeID]bool)}
}

// usPerCycle converts a sim.Time to trace microseconds.
func us(t sim.Time) float64 { return float64(t) / (1000 * sim.CyclesPerNS) }

// record is one trace-event JSON object.
type record struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int64          `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

func (c *ChromeSink) write(r record) {
	if c.err != nil {
		return
	}
	b, err := json.Marshal(r)
	if err != nil {
		c.err = err
		return
	}
	sep := ",\n"
	if !c.wrote {
		sep = "[\n"
		c.wrote = true
	}
	if _, err := fmt.Fprintf(c.w, "%s%s", sep, b); err != nil {
		c.err = err
	}
}

// track lazily emits the thread_name metadata for a node's track.
func (c *ChromeSink) track(id msg.NodeID) int64 {
	if !c.named[id] {
		c.named[id] = true
		name := "node " + itoa(int64(id))
		if c.Namer != nil {
			name = c.Namer(id)
		}
		c.write(record{Name: "thread_name", Ph: "M", Pid: 1, Tid: int64(id),
			Args: map[string]any{"name": name}})
	}
	return int64(id)
}

// Emit implements Sink.
func (c *ChromeSink) Emit(ev Event) {
	switch ev.Kind {
	case KSend:
		// Held until delivery so the span's duration is known. A message
		// sent but never delivered simply never appears; the watchdog is
		// the tool for those.
		c.pending[ev.Serial] = ev
	case KDeliver:
		send, ok := c.pending[ev.Serial]
		if !ok {
			// Delivery without a recorded send (sink attached mid-flight):
			// render a zero-length span at delivery time.
			send = ev
		}
		delete(c.pending, ev.Serial)
		d := us(ev.Time - send.Time)
		c.write(record{
			Name: fmt.Sprintf("%s %s", ev.MsgType, ev.Addr),
			Cat:  ev.VNet.String(),
			Ph:   "X", Ts: us(send.Time), Dur: &d,
			Pid: 1, Tid: c.track(ev.Dst),
			Args: map[string]any{
				"src": int64(ev.Src), "dst": int64(ev.Dst), "serial": ev.Serial,
			},
		})
	case KState:
		c.write(record{
			Name: fmt.Sprintf("%s %s", ev.Note, ev.Addr),
			Cat:  "state",
			Ph:   "i", Ts: us(ev.Time), S: "t",
			Pid: 1, Tid: c.track(ev.Node),
			Args: map[string]any{"old": ev.Old, "new": ev.New},
		})
	case KRetire:
		c.write(record{
			Name: fmt.Sprintf("%s %s", ev.Note, ev.Addr),
			Cat:  "retire",
			Ph:   "i", Ts: us(ev.Time), S: "t",
			Pid: 1, Tid: c.track(ev.Node),
		})
	}
}

// Close terminates the JSON array and reports any streaming error.
func (c *ChromeSink) Close() error {
	if c.err != nil {
		return c.err
	}
	if !c.wrote {
		_, c.err = io.WriteString(c.w, "[]")
		return c.err
	}
	_, c.err = io.WriteString(c.w, "\n]\n")
	return c.err
}
