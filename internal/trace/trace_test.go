package trace_test

import (
	"encoding/json"
	"io"
	"strings"
	"testing"

	"c3/internal/mem"
	"c3/internal/msg"
	"c3/internal/sim"
	"c3/internal/trace"
)

func sendEv(t sim.Time, ty msg.Type, addr mem.LineAddr, src, dst msg.NodeID, serial uint64) trace.Event {
	return trace.Event{Kind: trace.KSend, Time: t, Node: src, Addr: addr,
		MsgType: ty, VNet: msg.VReq, Src: src, Dst: dst, Serial: serial}
}

func deliverEv(t sim.Time, ty msg.Type, addr mem.LineAddr, src, dst msg.NodeID, serial uint64) trace.Event {
	return trace.Event{Kind: trace.KDeliver, Time: t, Node: dst, Addr: addr,
		MsgType: ty, VNet: msg.VRsp, Src: src, Dst: dst, Serial: serial}
}

func TestRingOverflow(t *testing.T) {
	r := trace.NewRing(4)
	for i := 0; i < 7; i++ {
		r.Emit(trace.Event{Kind: trace.KState, Time: sim.Time(i), Addr: mem.LineAddr(i * 64)})
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	evs := r.Events()
	for i, ev := range evs {
		if want := sim.Time(3 + i); ev.Time != want {
			t.Errorf("event %d at t=%d, want %d (oldest evicted first)", i, ev.Time, want)
		}
	}
}

func TestRingHistory(t *testing.T) {
	r := trace.NewRing(16)
	r.Emit(sendEv(1, msg.GetS, 0x40, 3, 2, 1))
	r.Emit(sendEv(2, msg.GetM, 0x80, 4, 2, 2))
	r.Emit(deliverEv(9, msg.DataS, 0x40, 2, 3, 3))
	hist := r.History(0x40)
	if len(hist) != 2 {
		t.Fatalf("History(0x40) = %d events, want 2", len(hist))
	}
	if hist[0].MsgType != msg.GetS || hist[1].MsgType != msg.DataS {
		t.Errorf("history = %v/%v, want GetS/DataS", hist[0].MsgType, hist[1].MsgType)
	}

	var b strings.Builder
	r.Dump(&b, nil)
	if !strings.Contains(b.String(), "GetM") || !strings.Contains(b.String(), "0x80") {
		t.Errorf("Dump missing expected lines:\n%s", b.String())
	}
}

// TestChromeJSON checks that the streamed output is valid Chrome
// trace-event JSON: parseable, one thread_name metadata record per
// node, and message spans carrying send->deliver flight time.
func TestChromeJSON(t *testing.T) {
	var buf strings.Builder
	c := trace.NewChrome(&buf)
	tr := trace.New(c)
	tr.Name(2, "C3[0]")
	tr.Name(3, "L1[0.0]")
	c.Namer = tr.Label

	tr.Emit(sendEv(0, msg.GetS, 0x40, 3, 2, 1))
	tr.Emit(deliverEv(4000, msg.GetS, 0x40, 3, 2, 1)) // 2 us flight
	tr.State(4100, 2, 0x40, "I/I", "S/S", "grant DataS")
	tr.State(4150, 3, 0x40, "Pend", "S", "DataS")
	tr.Retire(4200, 3, 0x40, "LD miss")
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	var recs []map[string]any
	if err := json.Unmarshal([]byte(buf.String()), &recs); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}

	names := map[float64]string{}
	var span map[string]any
	instants := 0
	for _, r := range recs {
		switch r["ph"] {
		case "M":
			args := r["args"].(map[string]any)
			names[r["tid"].(float64)] = args["name"].(string)
		case "X":
			span = r
		case "i":
			instants++
		}
	}
	if names[2] != "C3[0]" || names[3] != "L1[0.0]" {
		t.Errorf("track names = %v, want registered labels", names)
	}
	if span == nil {
		t.Fatal("no complete (X) event for the delivered message")
	}
	if ts := span["ts"].(float64); ts != 0 {
		t.Errorf("span ts = %v, want 0 (send time)", ts)
	}
	if dur := span["dur"].(float64); dur != 2.0 {
		t.Errorf("span dur = %v us, want 2.0 (4000 cycles at 2 GHz)", dur)
	}
	if tid := span["tid"].(float64); tid != 2 {
		t.Errorf("span on track %v, want destination track 2", tid)
	}
	if instants != 3 {
		t.Errorf("instant events = %d, want 3 (two states + retire)", instants)
	}
}

func TestChromeEmpty(t *testing.T) {
	var buf strings.Builder
	c := trace.NewChrome(&buf)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	var recs []any
	if err := json.Unmarshal([]byte(buf.String()), &recs); err != nil {
		t.Fatalf("empty trace is not valid JSON: %v", err)
	}
	if len(recs) != 0 {
		t.Errorf("empty trace has %d records", len(recs))
	}
}

func TestRegistryRender(t *testing.T) {
	r := trace.NewRegistry()
	var reqs uint64 = 41
	r.Counter("c3.0.local_reqs", func() uint64 { return reqs })
	r.Gauge("run.mpki", func() float64 { return 1.5 })
	h := trace.NewLatencyHist([]uint64{100, 200})
	h.Observe(sim.NS(50))
	h.Observe(sim.NS(150))
	h.Observe(sim.NS(500))
	r.Histogram("miss_latency", h)

	var text strings.Builder
	r.RenderText(&text)
	for _, want := range []string{"c3.0.local_reqs", "41", "run.mpki", "miss_latency", "<=100ns"} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("RenderText missing %q:\n%s", want, text.String())
		}
	}

	var js strings.Builder
	if err := r.RenderJSON(&js); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Counters map[string]uint64  `json:"counters"`
		Gauges   map[string]float64 `json:"gauges"`
		Histos   map[string]struct {
			Unit   string   `json:"unit"`
			Bounds []uint64 `json:"bounds"`
			Counts []uint64 `json:"counts"`
			Count  uint64   `json:"count"`
			Sum    uint64   `json:"sum"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal([]byte(js.String()), &doc); err != nil {
		t.Fatalf("RenderJSON is not valid JSON: %v\n%s", err, js.String())
	}
	if doc.Counters["c3.0.local_reqs"] != 41 {
		t.Errorf("counter = %d, want 41", doc.Counters["c3.0.local_reqs"])
	}
	if doc.Gauges["run.mpki"] != 1.5 {
		t.Errorf("gauge = %v, want 1.5", doc.Gauges["run.mpki"])
	}
	mh := doc.Histos["miss_latency"]
	if mh.Count != 3 || mh.Sum != 700 {
		t.Errorf("histogram count/sum = %d/%d, want 3/700 ns", mh.Count, mh.Sum)
	}
	if len(mh.Counts) != 3 || mh.Counts[0] != 1 || mh.Counts[1] != 1 || mh.Counts[2] != 1 {
		t.Errorf("histogram counts = %v, want [1 1 1]", mh.Counts)
	}

	// Counters are read lazily: a render after the fact sees new values.
	reqs = 42
	var again strings.Builder
	r.RenderText(&again)
	if !strings.Contains(again.String(), "42") {
		t.Errorf("second render did not re-read the counter:\n%s", again.String())
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := trace.NewRegistry()
	r.Counter("x", func() uint64 { return 0 })
	defer func() {
		if recover() == nil {
			t.Error("duplicate Counter did not panic")
		}
	}()
	r.Counter("x", func() uint64 { return 0 })
}

func TestLatencyHist(t *testing.T) {
	h := trace.NewLatencyHist(nil) // DefaultMissBounds
	for i := 0; i < 10; i++ {
		h.Observe(sim.NS(60)) // <=75ns bucket
	}
	h.Observe(sim.NS(350)) // <=400ns bucket
	if h.N != 11 {
		t.Fatalf("N = %d, want 11", h.N)
	}
	if q := h.QuantileNS(0.5); q != 75 {
		t.Errorf("p50 = %d, want 75", q)
	}
	if q := h.QuantileNS(0.99); q != 400 {
		t.Errorf("p99 = %d, want 400", q)
	}
	wantMean := (10*60.0 + 350.0) / 11
	if m := h.MeanNS(); m < wantMean-0.01 || m > wantMean+0.01 {
		t.Errorf("mean = %v, want %v", m, wantMean)
	}
}

type fakeDumper string

func (f fakeDumper) DumpState(w io.Writer) { io.WriteString(w, string(f)+"\n") }

// TestWatchdogFires pins the hang-report contract: a request with no
// matching grant trips the watchdog after MaxAge, and the report carries
// the line's message history plus every registered controller dump.
func TestWatchdogFires(t *testing.T) {
	k := &sim.Kernel{}
	tr := trace.New()
	w := trace.NewWatchdog(k, 100, 0)
	tr.SetWatchdog(w)
	var report string
	w.OnHang = func(r string) { report = r }
	w.AddDumper("fakeCtl", fakeDumper("fake-internal-state"))
	tr.Name(3, "L1[hung]")

	m := &msg.Msg{Type: msg.GetM, Addr: 0x80, Src: 3, Dst: 2, VNet: msg.VReq, Serial: 7}
	tr.MsgSend(k.Now(), m)
	k.Run(nil)

	if !w.Fired() {
		t.Fatal("watchdog did not fire on an unanswered GetM")
	}
	if report != w.Report() {
		t.Error("OnHang report differs from Report()")
	}
	for _, want := range []string{"0x80", "GetM", "L1[hung]", "fakeCtl", "fake-internal-state"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
}

// TestWatchdogDisarms pins the no-false-positive contract: a completed
// transaction cancels the timer, so the kernel drains and nothing fires.
func TestWatchdogDisarms(t *testing.T) {
	k := &sim.Kernel{}
	tr := trace.New()
	w := trace.NewWatchdog(k, 100, 0)
	tr.SetWatchdog(w)
	w.OnHang = func(r string) { t.Errorf("unexpected hang:\n%s", r) }

	req := &msg.Msg{Type: msg.GetM, Addr: 0x80, Src: 3, Dst: 2, VNet: msg.VReq, Serial: 1}
	rsp := &msg.Msg{Type: msg.DataM, Addr: 0x80, Src: 2, Dst: 3, VNet: msg.VRsp, Serial: 2}
	tr.MsgSend(k.Now(), req)
	k.Schedule(40, func() { tr.MsgDeliver(k.Now(), rsp) })
	k.Run(nil)

	if w.Fired() {
		t.Fatal("watchdog fired on a completed transaction")
	}
	if k.Pending() != 0 {
		t.Errorf("%d events still queued: the watchdog timer kept the kernel alive", k.Pending())
	}
}

// TestWatchdogNestedOpens: two outstanding requests to one line need two
// completions before the line is considered idle.
func TestWatchdogNestedOpens(t *testing.T) {
	k := &sim.Kernel{}
	tr := trace.New()
	w := trace.NewWatchdog(k, 100, 0)
	tr.SetWatchdog(w)
	var fired bool
	w.OnHang = func(string) { fired = true }

	send := func(serial uint64) {
		tr.MsgSend(k.Now(), &msg.Msg{Type: msg.GetS, Addr: 0x40, Src: 3, Dst: 2, VNet: msg.VReq, Serial: serial})
	}
	close := func(serial uint64) {
		tr.MsgDeliver(k.Now(), &msg.Msg{Type: msg.DataS, Addr: 0x40, Src: 2, Dst: 3, VNet: msg.VRsp, Serial: serial})
	}
	send(1)
	k.Schedule(10, func() { send(2) })
	k.Schedule(50, func() { close(3) })
	// Only one of two transactions closed: the line must still be
	// tracked, and the watchdog must fire at 0+MaxAge.
	k.Run(nil)
	if !fired {
		t.Fatal("watchdog missed the second (still-open) transaction")
	}

	// Same shape, both closed: no fire.
	k2 := &sim.Kernel{}
	tr2 := trace.New()
	w2 := trace.NewWatchdog(k2, 100, 0)
	tr2.SetWatchdog(w2)
	w2.OnHang = func(r string) { t.Errorf("unexpected hang:\n%s", r) }
	tr2.MsgSend(k2.Now(), &msg.Msg{Type: msg.GetS, Addr: 0x40, Src: 3, Dst: 2, VNet: msg.VReq, Serial: 1})
	k2.Schedule(10, func() {
		tr2.MsgSend(k2.Now(), &msg.Msg{Type: msg.GetS, Addr: 0x40, Src: 4, Dst: 2, VNet: msg.VReq, Serial: 2})
	})
	k2.Schedule(50, func() {
		tr2.MsgDeliver(k2.Now(), &msg.Msg{Type: msg.DataS, Addr: 0x40, Src: 2, Dst: 3, VNet: msg.VRsp, Serial: 3})
	})
	k2.Schedule(60, func() {
		tr2.MsgDeliver(k2.Now(), &msg.Msg{Type: msg.DataS, Addr: 0x40, Src: 2, Dst: 4, VNet: msg.VRsp, Serial: 4})
	})
	k2.Run(nil)
	if w2.Fired() {
		t.Fatal("watchdog fired after both transactions completed")
	}
}

// TestWatchdogStructuredReport pins the classify-and-report path the
// soak harness depends on: OnHangReport receives the structured report
// (taking precedence over OnHang and the panic default), and a Classify
// hook refines the class from the "protocol-hang" fallback.
func TestWatchdogStructuredReport(t *testing.T) {
	k := &sim.Kernel{}
	tr := trace.New()
	w := trace.NewWatchdog(k, 100, 0)
	tr.SetWatchdog(w)

	var got trace.HangReport
	w.OnHangReport = func(r trace.HangReport) { got = r }
	w.OnHang = func(string) { t.Error("OnHang called despite OnHangReport being set") }
	w.Classify = func(line mem.LineAddr) string {
		if line == 0x80 {
			return "link-retry"
		}
		return ""
	}

	tr.MsgSend(k.Now(), &msg.Msg{Type: msg.GetM, Addr: 0x80, Src: 3, Dst: 2, VNet: msg.VReq, Serial: 1})
	k.Run(nil)

	if !w.Fired() {
		t.Fatal("watchdog did not fire")
	}
	if got.Line != 0x80 || got.Opens != 1 || got.Closes != 0 {
		t.Fatalf("report bookkeeping wrong: %+v", got)
	}
	if got.Class != "link-retry" {
		t.Fatalf("Class = %q, want link-retry from the Classify hook", got.Class)
	}
	if got.Text != w.Report() || !strings.Contains(got.Text, "[link-retry]") {
		t.Fatalf("report text missing or unclassified:\n%s", got.Text)
	}

	// An empty Classify answer falls back to the default class.
	k2 := &sim.Kernel{}
	tr2 := trace.New()
	w2 := trace.NewWatchdog(k2, 100, 0)
	tr2.SetWatchdog(w2)
	var got2 trace.HangReport
	w2.OnHangReport = func(r trace.HangReport) { got2 = r }
	w2.Classify = func(mem.LineAddr) string { return "" }
	tr2.MsgSend(k2.Now(), &msg.Msg{Type: msg.GetM, Addr: 0x40, Src: 3, Dst: 2, VNet: msg.VReq, Serial: 1})
	k2.Run(nil)
	if got2.Class != "protocol-hang" {
		t.Fatalf("Class = %q, want protocol-hang fallback", got2.Class)
	}
}

// disabledTracer is package-level so the compiler cannot fold the nil
// checks away: this is exactly the shape of every hook site.
var disabledTracer *trace.Tracer

// TestTraceDisabledZeroAlloc pins design constraint #1: the disabled
// path — the nil-guarded hook every controller carries — performs zero
// allocations.
func TestTraceDisabledZeroAlloc(t *testing.T) {
	m := &msg.Msg{Type: msg.GetS, Addr: 0x40, Src: 1, Dst: 2, VNet: msg.VReq}
	allocs := testing.AllocsPerRun(1000, func() {
		if disabledTracer != nil {
			disabledTracer.MsgSend(0, m)
		}
		if disabledTracer != nil {
			disabledTracer.State(0, 1, m.Addr, "I", "M", "grant")
		}
		if disabledTracer != nil {
			disabledTracer.Retire(0, -1, m.Addr, "LD")
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled trace hooks allocate %.1f times per op, want 0", allocs)
	}
}

// BenchmarkTraceDisabled measures the disabled hook path (run with
// -benchtime 1x in CI just to assert 0 allocs/op; longer runs measure
// the branch cost, which is what the <2% end-to-end budget rests on).
func BenchmarkTraceDisabled(b *testing.B) {
	m := &msg.Msg{Type: msg.GetS, Addr: 0x40, Src: 1, Dst: 2, VNet: msg.VReq}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if disabledTracer != nil {
			disabledTracer.MsgSend(sim.Time(i), m)
		}
		if disabledTracer != nil {
			disabledTracer.State(sim.Time(i), 1, m.Addr, "I", "M", "grant")
		}
	}
}

// BenchmarkTraceRing is the enabled-path contrast: every event through
// the tracer into a ring buffer.
func BenchmarkTraceRing(b *testing.B) {
	tr := trace.New(trace.NewRing(4096))
	m := &msg.Msg{Type: msg.GetS, Addr: 0x40, Src: 1, Dst: 2, VNet: msg.VReq}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.MsgSend(sim.Time(i), m)
	}
}
