package litmus

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"time"

	"c3/internal/cpu"
	"c3/internal/faults"
	"c3/internal/mem"
	"c3/internal/msg"
	"c3/internal/parallel"
	"c3/internal/sim"
	"c3/internal/system"
	"c3/internal/trace"
)

// Abort classifications for campaigns cut off from the outside. Both
// are wrapped (errors.Is) into the error Run returns, so harnesses can
// tell a retryable wall-clock cut (ErrTaskDeadline) or a graceful
// shutdown (ErrInterrupted) from a deterministic wedge.
var (
	ErrTaskDeadline = errors.New("task deadline exceeded")
	ErrInterrupted  = errors.New("interrupted")
)

// pollStride is how many kernel steps an iteration executes between
// deadline/interrupt polls. Polling costs one time.Now() (and one
// non-blocking channel read) per stride; at 4096 steps that is noise,
// while still bounding abort latency to well under a millisecond of
// simulated work.
const pollStride = 4096

// RunnerConfig describes one litmus campaign: a two-cluster system, an
// MCM per cluster, and how synchronization is treated.
type RunnerConfig struct {
	// Locals are the two clusters' coherence protocols ("mesi", ...).
	Locals [2]string
	// Global is "cxl" or "hmesi".
	Global string
	// MCMs are the clusters' consistency models.
	MCMs [2]cpu.MCM
	// Iters is the number of randomized executions.
	Iters int
	Sync  SyncMode
	// BaseSeed perturbs fabric jitter and start offsets per iteration.
	BaseSeed int64
	// IssueJitter/DrainJitter override the cores' timing randomization
	// (0 -> defaults of 1200/900 cycles).
	IssueJitter, DrainJitter int
	// Workers shards Iters across that many goroutines (0 = GOMAXPROCS,
	// 1 = serial). Every iteration owns a private kernel and system, and
	// all randomness is derived per iteration from BaseSeed, so a
	// campaign's Result is byte-identical for every worker count.
	Workers int
	// TraceTo, when non-nil, receives the full coherence-message trace
	// of the first iteration (one line per delivery).
	TraceTo io.Writer
	// Tracer, when non-nil, observes the first iteration's full protocol
	// event stream (structured counterpart of TraceTo; feed it a
	// ChromeSink to open the iteration in Perfetto).
	Tracer *trace.Tracer
	// Faults, when non-nil and enabled, runs every iteration on an
	// unreliable cross-cluster fabric under this plan. The plan seed is
	// re-derived per iteration (like fabric jitter), so campaigns remain
	// byte-identical for any worker count.
	Faults *faults.Plan
	// HangWatch arms a hang watchdog on every iteration (not just the
	// traced one); firings are classified and counted in Result.Hangs /
	// Result.HangClasses instead of panicking.
	HangWatch bool
	// Deadline, when non-zero, bounds the campaign's wall clock: the
	// iteration step loops poll it every pollStride kernel steps and the
	// campaign aborts with an error wrapping ErrTaskDeadline. The cut
	// discards only in-flight work — every completed computation is
	// deterministic — so a retried campaign reproduces a first-try run
	// byte for byte.
	Deadline time.Time
	// Interrupt, when non-nil, aborts the campaign at the next poll once
	// the channel is closed (the graceful-shutdown path); the returned
	// error wraps ErrInterrupted.
	Interrupt <-chan struct{}
}

// pollAbort checks the campaign's external cut conditions; it is called
// from iteration step loops every pollStride steps.
func pollAbort(t Test, cfg *RunnerConfig, it int) error {
	if cfg.Interrupt != nil {
		select {
		case <-cfg.Interrupt:
			return fmt.Errorf("litmus %s: iteration %d: %w", t.Name, it, ErrInterrupted)
		default:
		}
	}
	if !cfg.Deadline.IsZero() && time.Now().After(cfg.Deadline) {
		return fmt.Errorf("litmus %s: iteration %d: %w", t.Name, it, ErrTaskDeadline)
	}
	return nil
}

// Result aggregates a campaign.
type Result struct {
	Test     string
	Iters    int
	Outcomes map[string]int
	// Forbidden counts forbidden outcomes among clean (non-poisoned)
	// iterations — the silent coherence violations. An iteration that
	// reported a poisoned line is tallied under Poisoned instead: its
	// data is flagged untrustworthy, which is the detected-degradation
	// contract, not a silent wrong value.
	Forbidden int
	// ForbiddenExample is one offending outcome, for diagnostics.
	ForbiddenExample string
	// Poisoned counts iterations that completed with at least one
	// poisoned line (retry exhaustion on the faulty fabric, or a host
	// crash that lost the line's only copy).
	Poisoned int
	// Crashed counts iterations in which a crash plan took a host down.
	// Crashed iterations are excluded from Forbidden evaluation: the dead
	// threads' truncated programs produce register states no consistency
	// model constrains. Convergence and poison detection still apply.
	Crashed int
	// PoisonedVars histograms, per variable, the iterations whose
	// collector read of that variable consumed poisoned data (the
	// deterministic "line lost with the crash" signal).
	PoisonedVars map[string]int
	// Hangs counts watchdog firings across iterations (HangWatch mode);
	// HangClasses histograms their classifications.
	Hangs       int
	HangClasses map[string]int
}

// Distinct reports how many distinct outcomes appeared.
func (r *Result) Distinct() int { return len(r.Outcomes) }

// assignment: threads are distributed equally across the two clusters
// (Sec. VI-A), round-robin.
func clusterOf(thread int) int { return thread % 2 }

// ThreadMCMs returns the MCM each thread of t runs under in cfg.
func ThreadMCMs(t Test, cfg RunnerConfig) []cpu.MCM {
	out := make([]cpu.MCM, len(t.Threads))
	for i := range t.Threads {
		out[i] = cfg.MCMs[clusterOf(i)]
	}
	return out
}

func toProgram(t Test, th Thread) []cpu.Instr {
	prog := make([]cpu.Instr, 0, len(th))
	for _, op := range th {
		in := cpu.Instr{Kind: op.Kind, Val: op.Val, Reg: op.Reg, Acq: op.Acq, Rel: op.Rel}
		if op.Kind.IsMem() {
			in.Addr = varAddr(t.Vars, op.V)
		}
		prog = append(prog, in)
	}
	return prog
}

// Run executes one litmus campaign, sharding iterations across
// cfg.Workers goroutines. Iteration seeds are BaseSeed + it*7919 exactly
// as in a serial run, start offsets come from one shared stream drawn up
// front in iteration order, and shard results merge in iteration order —
// so the Result is identical for any worker count.
func Run(t Test, cfg RunnerConfig) (*Result, error) {
	if cfg.Iters <= 0 {
		cfg.Iters = 100
	}
	res := &Result{Test: t.Name, Iters: cfg.Iters, Outcomes: make(map[string]int),
		PoisonedVars: make(map[string]int), HangClasses: make(map[string]int)}

	// Staggered start offsets widen the interleaving space. They are
	// drawn from a single BaseSeed-derived stream in iteration order
	// (the stream a serial campaign consumes), then indexed per
	// iteration by the shards.
	nt := len(t.Threads)
	rng := rand.New(rand.NewPCG(uint64(cfg.BaseSeed)^0x5eed, 0xc3c3))
	offsets := make([]sim.Time, cfg.Iters*nt)
	for i := range offsets {
		offsets[i] = sim.Time(rng.IntN(800))
	}

	workers := parallel.Workers(cfg.Workers)
	if workers > cfg.Iters {
		workers = cfg.Iters
	}
	type shard struct {
		outcomes     map[string]int
		forbidden    int
		example      string
		poisoned     int
		crashed      int
		poisonedVars map[string]int
		hangs        int
		hangClasses  map[string]int
	}
	// Contiguous shards: shard s owns [s*Iters/w, (s+1)*Iters/w), so
	// iteration 0 — the only one that traces — always lands in shard 0,
	// and the first shard reporting a forbidden outcome holds the first
	// forbidden iteration overall.
	shards, err := parallel.Map(context.Background(), workers, workers, func(s int) (shard, error) {
		lo, hi := s*cfg.Iters/workers, (s+1)*cfg.Iters/workers
		sr := shard{outcomes: make(map[string]int), poisonedVars: make(map[string]int),
			hangClasses: make(map[string]int)}
		for it := lo; it < hi; it++ {
			// Iteration-boundary poll: catches sweeps of many fast
			// iterations between the step-loop polls inside each one.
			if err := pollAbort(t, &cfg, it); err != nil {
				return sr, err
			}
			o, info, err := runIteration(t, &cfg, it, offsets[it*nt:(it+1)*nt])
			if err != nil {
				return sr, err
			}
			key := o.String()
			sr.outcomes[key]++
			if info.poisoned {
				sr.poisoned++
			}
			if info.crashed {
				sr.crashed++
			}
			for _, v := range info.poisonedVars {
				sr.poisonedVars[v]++
			}
			if info.hangClass != "" {
				sr.hangs++
				sr.hangClasses[info.hangClass]++
			}
			if t.Forbidden(o) && !info.poisoned && !info.crashed {
				sr.forbidden++
				if sr.example == "" {
					sr.example = key
				}
			}
		}
		return sr, nil
	})
	if err != nil {
		return nil, err
	}
	for _, sr := range shards {
		for k, v := range sr.outcomes {
			res.Outcomes[k] += v
		}
		res.Forbidden += sr.forbidden
		if res.ForbiddenExample == "" && sr.example != "" {
			res.ForbiddenExample = sr.example
		}
		res.Poisoned += sr.poisoned
		res.Crashed += sr.crashed
		for k, v := range sr.poisonedVars {
			res.PoisonedVars[k] += v
		}
		res.Hangs += sr.hangs
		for k, v := range sr.hangClasses {
			res.HangClasses[k] += v
		}
	}
	return res, nil
}

// iterInfo carries an iteration's robustness observations alongside its
// outcome.
type iterInfo struct {
	// poisoned: the iteration completed with >= 1 poisoned line.
	poisoned bool
	// crashed: a crash plan took a host down during the iteration.
	crashed bool
	// poisonedVars lists the test variables whose collector read consumed
	// poisoned data.
	poisonedVars []string
	// hangClass is the watchdog's classification if it fired ("" if not).
	hangClass string
}

// runIteration executes one randomized execution on a private system and
// returns its outcome. starts carries the per-thread staggered start
// offsets for this iteration.
func runIteration(t Test, cfg *RunnerConfig, it int, starts []sim.Time) (Outcome, iterInfo, error) {
	seed := cfg.BaseSeed + int64(it)*7919
	mkCore := func(m cpu.MCM) cpu.Config {
		cc := cpu.DefaultConfig(m)
		// Jitter widens the explored interleavings (the role gem5's
		// intrinsic timing variation plays for the paper's runs).
		cc.IssueJitter, cc.DrainJitter, cc.Seed = 1200, 900, seed
		if cfg.IssueJitter > 0 {
			cc.IssueJitter = cfg.IssueJitter
		}
		if cfg.DrainJitter > 0 {
			cc.DrainJitter = cfg.DrainJitter
		}
		return cc
	}

	perCluster := [2]int{0, 0}
	for i := range t.Threads {
		perCluster[clusterOf(i)]++
	}
	perCluster[0]++ // collector slot

	// Tracing is first-iteration-only and therefore confined to the
	// shard that runs iteration 0. HangWatch mode additionally arms a
	// sink-less tracer on every other iteration, purely to feed the
	// watchdog's transaction table.
	var tr *trace.Tracer
	if it == 0 {
		tr = cfg.Tracer
	}
	var wdAge sim.Time
	if cfg.HangWatch {
		if tr == nil {
			tr = trace.New()
		}
		wdAge = trace.DefaultHangAge
	}
	// The fault plan's seed is re-derived per iteration, exactly like
	// fabric jitter, so the fault schedule varies across iterations yet
	// stays identical for any worker count.
	var fplan *faults.Plan
	if cfg.Faults.Enabled() {
		p := *cfg.Faults
		p.Seed ^= uint64(seed) * 0x9e3779b97f4a7c15
		fplan = &p
	}
	sys, err := system.New(system.Config{
		Global:      cfg.Global,
		Seed:        seed,
		Tracer:      tr,
		WatchdogAge: wdAge,
		Faults:      fplan,
		Clusters: []system.ClusterConfig{
			{Protocol: cfg.Locals[0], MCM: cfg.MCMs[0], Cores: perCluster[0], Core: mkCore(cfg.MCMs[0])},
			{Protocol: cfg.Locals[1], MCM: cfg.MCMs[1], Cores: perCluster[1], Core: mkCore(cfg.MCMs[1])},
		},
	})
	if err != nil {
		return nil, iterInfo{}, err
	}
	var info iterInfo
	if tr != nil {
		if dog := tr.Watchdog(); dog != nil {
			dog.OnHangReport = func(r trace.HangReport) { info.hangClass = r.Class }
		}
	}
	if cfg.TraceTo != nil && it == 0 {
		w := cfg.TraceTo
		sys.Net.Trace = func(m *msg.Msg, delivered bool) {
			if delivered {
				fmt.Fprintf(w, "%8d  %v\n", sys.K.Now(), m)
			}
		}
	}

	slot := [2]int{0, 0}
	srcs := make([]*cpu.SliceSource, len(t.Threads))
	cores := make([]*cpu.Core, len(t.Threads))
	for i, th := range t.Threads {
		eff := th
		switch cfg.Sync {
		case SyncFull:
			eff = Refine(th, cfg.MCMs[clusterOf(i)])
		case SyncNone:
			eff = Strip(th)
		}
		srcs[i] = cpu.NewSliceSource(toProgram(t, eff))
		cl := clusterOf(i)
		cores[i] = sys.AttachSource(cl, slot[cl], srcs[i])
		slot[cl]++
	}
	for i, c := range cores {
		c := c
		sys.K.Schedule(starts[i], func() { c.Start() })
	}
	limit := sys.K.Stepped + 3_000_000
	countdown := pollStride
	for !allDone(cores) {
		if countdown--; countdown <= 0 {
			countdown = pollStride
			if err := pollAbort(t, cfg, it); err != nil {
				return nil, info, err
			}
		}
		if sys.K.Stepped >= limit || !sys.K.Step() {
			return nil, info, fmt.Errorf("litmus %s: iteration %d wedged", t.Name, it)
		}
	}

	// Collector: read final variable values through the coherent
	// system (cluster 0's spare core).
	var colProg []cpu.Instr
	colProg = append(colProg, cpu.Instr{Kind: cpu.Fence})
	for vi, v := range t.Vars {
		colProg = append(colProg, cpu.Instr{Kind: cpu.Load, Addr: varAddr(t.Vars, v), Reg: vi, Acq: vi == 0})
	}
	col := cpu.NewSliceSource(colProg)
	cc := sys.AttachSource(0, perCluster[0]-1, col)
	// The collector's loads carry the poison flag end to end: record
	// which variables came back flagged (line lost with a crashed host).
	varByAddr := make(map[mem.Addr]string, len(t.Vars))
	for _, v := range t.Vars {
		varByAddr[varAddr(t.Vars, v)] = string(v)
	}
	cc.Observe = func(st cpu.OpStats) {
		if st.Kind == cpu.Load && st.Poisoned {
			if v, ok := varByAddr[st.Addr]; ok {
				info.poisonedVars = append(info.poisonedVars, v)
			}
		}
	}
	cc.Start()
	limit = sys.K.Stepped + 1_000_000
	countdown = pollStride
	for !cc.Finished() {
		if countdown--; countdown <= 0 {
			countdown = pollStride
			if err := pollAbort(t, cfg, it); err != nil {
				return nil, info, err
			}
		}
		if sys.K.Stepped >= limit || !sys.K.Step() {
			return nil, info, fmt.Errorf("litmus %s: collector wedged", t.Name)
		}
	}

	o := Outcome{}
	for i, src := range srcs {
		for reg, val := range src.Regs {
			o[Key(i, reg)] = val
		}
	}
	for vi, v := range t.Vars {
		o[string(v)] = col.Regs[vi]
	}
	info.poisoned = len(sys.PoisonedLines()) > 0
	info.crashed = sys.Recovery.HostsCrashed > 0
	if info.crashed {
		// Post-reclamation isolation invariant: nothing at the home may
		// still name the dead host.
		if v := sys.DeadHostIsolationViolations(); len(v) > 0 {
			return nil, info, fmt.Errorf("litmus %s: iteration %d: dead-host isolation violated: %v",
				t.Name, it, v)
		}
	}
	// All outcome and poison reads are complete: recycle the private
	// system's cache slabs for the next iteration. Error paths skip this
	// (their systems are simply garbage collected).
	sys.Release()
	return o, info, nil
}

func allDone(cores []*cpu.Core) bool {
	for _, c := range cores {
		if !c.Finished() {
			return false
		}
	}
	return true
}
