package litmus

import (
	"testing"

	"c3/internal/faults"
)

// TestFaultRecoveryConverges is the headline acceptance scenario: with
// >= 1% drop + duplication on the cross-cluster links, the full Table IV
// suite must still pass — the retry shim absorbs every fault, no
// forbidden outcome, no poison, no wedge.
func TestFaultRecoveryConverges(t *testing.T) {
	iters := 30
	if testing.Short() {
		iters = 8
	}
	plan := faults.Plan{Rates: faults.Rates{Drop: 0.01, Dup: 0.01}}
	for _, name := range TableIVNames() {
		tc, _ := ByName(name)
		t.Run(name, func(t *testing.T) {
			p := plan
			res, err := Run(tc, RunnerConfig{
				Locals: [2]string{"mesi", "mesi"}, Global: "cxl",
				Iters: iters, Sync: SyncFull, BaseSeed: 7,
				Faults: &p, HangWatch: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Forbidden != 0 {
				t.Fatalf("forbidden outcome under 1%% faults (%d/%d): %s",
					res.Forbidden, res.Iters, res.ForbiddenExample)
			}
			if res.Poisoned != 0 {
				t.Fatalf("%d iterations poisoned under a recoverable plan", res.Poisoned)
			}
		})
	}
}

// TestPerMessageClassFaults drops, duplicates and delays each message
// class in isolation (via per-link rates targeting the hub direction) on
// a 2-host litmus run and requires convergence.
func TestPerMessageClassFaults(t *testing.T) {
	iters := 20
	if testing.Short() {
		iters = 6
	}
	tc, _ := ByName("MP")
	cases := []struct {
		name  string
		rates faults.Rates
	}{
		{"drop", faults.Rates{Drop: 0.05}},
		{"dup", faults.Rates{Dup: 0.1}},
		{"delay", faults.Rates{Delay: 0.2, DelayMax: 400}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := faults.Plan{Rates: c.rates}
			res, err := Run(tc, RunnerConfig{
				Locals: [2]string{"mesi", "mesi"}, Global: "cxl",
				Iters: iters, Sync: SyncFull, BaseSeed: 11,
				Faults: &p, HangWatch: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Forbidden != 0 || res.Poisoned != 0 {
				t.Fatalf("forbidden=%d poisoned=%d under %s faults",
					res.Forbidden, res.Poisoned, c.name)
			}
		})
	}
}

// TestBlackoutPoisons is the degradation acceptance scenario: a 100%-drop
// stall window longer than the whole retry budget must produce poisoned
// iterations — detected, reported, never a silent wrong value or a hang.
func TestBlackoutPoisons(t *testing.T) {
	tc, _ := ByName("MP")
	p, ok := PlanByName("blackout")
	if !ok {
		t.Fatal("blackout preset missing")
	}
	plan := p.Plan
	res, err := Run(tc, RunnerConfig{
		Locals: [2]string{"mesi", "mesi"}, Global: "cxl",
		Iters: 5, Sync: SyncFull, BaseSeed: 3,
		Faults: &plan, HangWatch: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Poisoned == 0 {
		t.Fatal("blackout produced no poisoned iterations")
	}
	if res.Forbidden != 0 {
		t.Fatalf("blackout produced a silent forbidden outcome: %s", res.ForbiddenExample)
	}
	if res.Hangs == 0 || res.HangClasses["link-retry"] == 0 {
		t.Fatalf("blackout hangs unclassified: hangs=%d classes=%v", res.Hangs, res.HangClasses)
	}
}

// TestSoakReportIdenticalForAnyWorkerCount: the c3soak contract — the
// rendered report is byte-identical for every -j. Run under -race in CI.
func TestSoakReportIdenticalForAnyWorkerCount(t *testing.T) {
	iters := 6
	if testing.Short() {
		iters = 3
	}
	cfg := SoakConfig{
		Tests: []string{"MP", "SB"},
		Plans: []NamedPlan{
			{Name: "light", Plan: faults.Plan{Rates: faults.Rates{Drop: 0.01, Dup: 0.01}}},
			{Name: "blackout", Plan: faults.Plan{Rates: faults.Rates{Stalls: []faults.Window{{From: 0, To: 60_000}}}}},
		},
		Seeds: []int64{1, 2},
		Iters: iters,
	}
	var base string
	for _, workers := range []int{1, 2, 7} {
		cfg.Workers = workers
		rep, err := RunSoak(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := rep.Render()
		if base == "" {
			base = got
			continue
		}
		if got != base {
			t.Fatalf("workers=%d report differs:\n--- serial ---\n%s--- j=%d ---\n%s",
				workers, base, workers, got)
		}
	}
	// The sweep includes blackout rows, so the verdict must be "degraded
	// but detected", and OK() must still hold.
	rep, _ := RunSoak(cfg)
	if !rep.OK() {
		t.Fatalf("soak contract failed:\n%s", rep.Render())
	}
	foundDegraded := false
	for _, r := range rep.Runs {
		if r.Plan == "blackout" && r.Poisoned > 0 {
			foundDegraded = true
		}
	}
	if !foundDegraded {
		t.Fatalf("blackout rows show no detected degradation:\n%s", rep.Render())
	}
}

// TestSoakUnknownTest: configuration mistakes are errors, not report rows.
func TestSoakUnknownTest(t *testing.T) {
	if _, err := RunSoak(SoakConfig{Tests: []string{"nope"}, Iters: 1}); err == nil {
		t.Fatal("unknown test accepted")
	}
}
