package litmus

import (
	"reflect"
	"testing"

	"c3/internal/cpu"
)

func TestCorpusShape(t *testing.T) {
	tests := Tests()
	if len(tests) < 12 {
		t.Fatalf("corpus has %d tests, want >= 12", len(tests))
	}
	for _, name := range TableIVNames() {
		if _, ok := ByName(name); !ok {
			t.Errorf("Table IV test %q missing", name)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName should miss unknown tests")
	}
	for _, tc := range tests {
		if tc.Forbidden == nil || tc.Observable == nil || len(tc.Threads) == 0 {
			t.Errorf("%s: incomplete test definition", tc.Name)
		}
	}
}

func TestRefineTSO(t *testing.T) {
	// SB keeps its store->load fence under TSO; MP's release/acquire
	// annotations drop entirely.
	sb, _ := ByName("SB")
	r := Refine(sb.Threads[0], cpu.TSO)
	fences := 0
	for _, op := range r {
		if op.Kind == cpu.Fence {
			fences++
		}
	}
	if fences != 1 {
		t.Fatalf("SB refined for TSO has %d fences, want 1 (store->load)", fences)
	}

	mp, _ := ByName("MP")
	r = Refine(mp.Threads[0], cpu.TSO)
	for _, op := range r {
		if op.Kind == cpu.Fence || op.Rel || op.Acq {
			t.Fatalf("MP refined for TSO still has sync: %+v", r)
		}
	}
	// LB's fences (load->store) are free on TSO.
	lb, _ := ByName("LB")
	r = Refine(lb.Threads[0], cpu.TSO)
	for _, op := range r {
		if op.Kind == cpu.Fence {
			t.Fatalf("LB refined for TSO should drop its fence: %+v", r)
		}
	}
	// WMO refinement is the identity.
	r = Refine(sb.Threads[0], cpu.WMO)
	if len(r) != len(sb.Threads[0]) {
		t.Fatal("WMO refinement must keep everything")
	}
	// SC drops all fences.
	r = Refine(sb.Threads[0], cpu.SC)
	for _, op := range r {
		if op.Kind == cpu.Fence {
			t.Fatal("SC refinement should drop fences")
		}
	}
}

func TestStrip(t *testing.T) {
	mp, _ := ByName("MP")
	s := Strip(mp.Threads[1])
	for _, op := range s {
		if op.Acq || op.Rel || op.Kind == cpu.Fence {
			t.Fatalf("Strip left sync behind: %+v", s)
		}
	}
	if len(s) != 2 {
		t.Fatalf("Strip changed op count: %d", len(s))
	}
}

// TestTableIVFast is the in-tree slice of Table IV: every protocol and
// MCM combination, fewer iterations than the paper's 100k (the full
// sweep runs via cmd/c3litmus / BenchmarkTableIV).
func TestTableIVFast(t *testing.T) {
	mcmCombos := []struct {
		name string
		mcms [2]cpu.MCM
	}{
		{"Arm-Arm", [2]cpu.MCM{cpu.WMO, cpu.WMO}},
		{"TSO-Arm", [2]cpu.MCM{cpu.TSO, cpu.WMO}},
		{"TSO-TSO", [2]cpu.MCM{cpu.TSO, cpu.TSO}},
	}
	protoCombos := []struct {
		name   string
		locals [2]string
	}{
		{"MESI-CXL-MESI", [2]string{"mesi", "mesi"}},
		{"MESI-CXL-MOESI", [2]string{"mesi", "moesi"}},
	}
	iters := 40
	if testing.Short() {
		iters = 10
	}
	for _, pc := range protoCombos {
		for _, mc := range mcmCombos {
			for _, name := range TableIVNames() {
				tc, _ := ByName(name)
				t.Run(pc.name+"/"+mc.name+"/"+name, func(t *testing.T) {
					res, err := Run(tc, RunnerConfig{
						Locals: pc.locals, Global: "cxl", MCMs: mc.mcms,
						Iters: iters, Sync: SyncFull, BaseSeed: 1234,
					})
					if err != nil {
						t.Fatal(err)
					}
					if res.Forbidden != 0 {
						t.Fatalf("forbidden outcome observed (%d/%d): %s",
							res.Forbidden, res.Iters, res.ForbiddenExample)
					}
				})
			}
		}
	}
}

// TestRunParallelMatchesSerial: a campaign must produce an identical
// Result — outcome histogram, forbidden count, forbidden example — for
// every worker count, because seeds and start offsets are derived per
// iteration and shards merge in iteration order.
func TestRunParallelMatchesSerial(t *testing.T) {
	iters := 60
	if testing.Short() {
		iters = 15
	}
	for _, name := range []string{"SB", "MP"} {
		tc, _ := ByName(name)
		cfg := RunnerConfig{
			Locals: [2]string{"mesi", "moesi"}, Global: "cxl",
			MCMs:  [2]cpu.MCM{cpu.WMO, cpu.TSO},
			Iters: iters, Sync: SyncNone, BaseSeed: 4242,
		}
		serial := cfg
		serial.Workers = 1
		want, err := Run(tc, serial)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 7, 8} {
			par := cfg
			par.Workers = workers
			got, err := Run(tc, par)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.Outcomes, want.Outcomes) {
				t.Fatalf("%s workers=%d: outcome maps differ\nserial: %v\nparallel: %v",
					name, workers, want.Outcomes, got.Outcomes)
			}
			if got.Forbidden != want.Forbidden || got.ForbiddenExample != want.ForbiddenExample {
				t.Fatalf("%s workers=%d: forbidden %d/%q, serial %d/%q",
					name, workers, got.Forbidden, got.ForbiddenExample,
					want.Forbidden, want.ForbiddenExample)
			}
		}
	}
}

// TestControlsShowForbiddenOutcomes is the paper's vacuity control:
// with synchronization stripped, the relaxed outcome must actually
// appear wherever the participating MCMs permit it.
func TestControlsShowForbiddenOutcomes(t *testing.T) {
	if testing.Short() {
		t.Skip("control search needs iterations")
	}
	cases := []struct {
		test string
		mcms [2]cpu.MCM
	}{
		{"SB", [2]cpu.MCM{cpu.TSO, cpu.TSO}},
		{"SB", [2]cpu.MCM{cpu.WMO, cpu.WMO}},
		{"MP", [2]cpu.MCM{cpu.WMO, cpu.WMO}},
		{"LB", [2]cpu.MCM{cpu.WMO, cpu.WMO}},
		{"R", [2]cpu.MCM{cpu.WMO, cpu.WMO}},
		{"S", [2]cpu.MCM{cpu.WMO, cpu.WMO}},
		{"2_2W", [2]cpu.MCM{cpu.WMO, cpu.WMO}},
		{"IRIW", [2]cpu.MCM{cpu.WMO, cpu.WMO}},
	}
	for _, c := range cases {
		tc, _ := ByName(c.test)
		if !RelaxedObservable(tc, ThreadMCMs(tc, RunnerConfig{MCMs: c.mcms})) {
			t.Fatalf("%s: test setup claims unobservable under %v", c.test, c.mcms)
		}
		t.Run(c.test, func(t *testing.T) {
			res, err := Run(tc, RunnerConfig{
				Locals: [2]string{"mesi", "mesi"}, Global: "cxl", MCMs: c.mcms,
				Iters: 400, Sync: SyncNone, BaseSeed: 99,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Forbidden == 0 {
				t.Fatalf("relaxed outcome never appeared in %d unsynced runs (outcomes: %d distinct)",
					res.Iters, res.Distinct())
			}
		})
	}
}

// TestCoherenceHoldsUnsynced: CoRR must never fail, synchronization or
// not — it is pure cache coherence.
func TestCoherenceHoldsUnsynced(t *testing.T) {
	tc, _ := ByName("CoRR")
	for _, mcms := range [][2]cpu.MCM{{cpu.WMO, cpu.WMO}, {cpu.TSO, cpu.WMO}} {
		res, err := Run(tc, RunnerConfig{
			Locals: [2]string{"mesi", "moesi"}, Global: "cxl", MCMs: mcms,
			Iters: 60, Sync: SyncNone, BaseSeed: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Forbidden != 0 {
			t.Fatalf("coherence violation: %s", res.ForbiddenExample)
		}
	}
}

// TestTSOWriterNeedsNoStoreStoreFence reproduces the paper's selective
// fence-removal experiment: in MP, with thread 0 on a TSO core and its
// release annotation dropped (plain stores — TSO orders them), no
// forbidden outcome may appear as long as the ARM reader keeps its
// acquire. Removing the reader's acquire instead must expose reordering.
func TestTSOWriterNeedsNoStoreStoreFence(t *testing.T) {
	if testing.Short() {
		t.Skip("needs iterations")
	}
	mp, _ := ByName("MP")

	// Variant A: writer stripped (runs on TSO), reader fully synced.
	a := mp
	a.Threads = []Thread{Strip(mp.Threads[0]), mp.Threads[1]}
	resA, err := Run(a, RunnerConfig{
		Locals: [2]string{"mesi", "mesi"}, Global: "cxl",
		MCMs:  [2]cpu.MCM{cpu.TSO, cpu.WMO},
		Iters: 300, Sync: SyncFull, BaseSeed: 21, IssueJitter: 4000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resA.Forbidden != 0 {
		t.Fatalf("TSO store-store order violated: %s", resA.ForbiddenExample)
	}

	// Variant B: reader's acquire removed (ARM core) — forbidden
	// outcome becomes observable even though the TSO writer is ordered.
	b := mp
	b.Threads = []Thread{mp.Threads[0], Strip(mp.Threads[1])}
	resB, err := Run(b, RunnerConfig{
		Locals: [2]string{"mesi", "mesi"}, Global: "cxl",
		MCMs:  [2]cpu.MCM{cpu.TSO, cpu.WMO},
		Iters: 300, Sync: SyncFull, BaseSeed: 22, IssueJitter: 4000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resB.Forbidden == 0 {
		t.Fatal("dropping the ARM acquire should expose load reordering")
	}
}

// TestAllowedOutcomesObserved: the synced runs should still show several
// legal interleavings (the paper: "all allowed outcomes were observed").
func TestAllowedOutcomesObserved(t *testing.T) {
	tc, _ := ByName("SB")
	res, err := Run(tc, RunnerConfig{
		Locals: [2]string{"mesi", "mesi"}, Global: "cxl",
		MCMs:  [2]cpu.MCM{cpu.WMO, cpu.WMO},
		Iters: 120, Sync: SyncFull, BaseSeed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Distinct() < 2 {
		t.Fatalf("only %d distinct outcomes; races not exercised", res.Distinct())
	}
}

// TestHMESIGlobalLitmus: the baseline hierarchical-MESI global protocol
// must preserve the same guarantees.
func TestHMESIGlobalLitmus(t *testing.T) {
	for _, name := range []string{"MP", "SB", "IRIW"} {
		tc, _ := ByName(name)
		res, err := Run(tc, RunnerConfig{
			Locals: [2]string{"mesi", "mesi"}, Global: "hmesi",
			MCMs:  [2]cpu.MCM{cpu.WMO, cpu.TSO},
			Iters: 40, Sync: SyncFull, BaseSeed: 31,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Forbidden != 0 {
			t.Fatalf("%s under hmesi: %s", name, res.ForbiddenExample)
		}
	}
}

// TestExtendedCorpusSynced: the non-Table-IV shapes (WRC, RWC, WWC,
// WRW+2W) also hold when fully synchronized.
func TestExtendedCorpusSynced(t *testing.T) {
	for _, name := range []string{"WRC", "RWC", "WWC", "WRW+2W"} {
		tc, _ := ByName(name)
		res, err := Run(tc, RunnerConfig{
			Locals: [2]string{"moesi", "mesif"}, Global: "cxl",
			MCMs:  [2]cpu.MCM{cpu.WMO, cpu.WMO},
			Iters: 40, Sync: SyncFull, BaseSeed: 13,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Forbidden != 0 {
			t.Fatalf("%s: %s", name, res.ForbiddenExample)
		}
	}
}

// TestRCCClusterLitmus: litmus tests with a release-consistency (RCC)
// cluster on one side — the acquire/release flows of Sec. IV-D2 must
// still forbid the forbidden outcomes.
func TestRCCClusterLitmus(t *testing.T) {
	for _, name := range []string{"MP", "SB", "S"} {
		tc, _ := ByName(name)
		res, err := Run(tc, RunnerConfig{
			Locals: [2]string{"rcc", "mesi"}, Global: "cxl",
			MCMs:  [2]cpu.MCM{cpu.WMO, cpu.TSO},
			Iters: 60, Sync: SyncFull, BaseSeed: 17,
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Forbidden != 0 {
			t.Fatalf("%s on RCC-CXL-MESI: %s", name, res.ForbiddenExample)
		}
	}
}

// TestRCCStaleReadWithoutAcquire is the RCC-specific vacuity control:
// a reader that cached x earlier and omits the acquire on the flag load
// can read the *stale* x after seeing the flag — self-invalidation is
// what acquire buys (footnote 5 of the paper). With the acquire in
// place, the outcome is forbidden and never appears.
func TestRCCStaleReadWithoutAcquire(t *testing.T) {
	if testing.Short() {
		t.Skip("control search")
	}
	base := Test{
		Name: "MP-rcc-stale",
		Vars: []Var{"x", "y"},
		Threads: []Thread{
			// Writer on the MESI/TSO side keeps full synchronization.
			{St("x", 1), StRel("y", 1)},
			// RCC reader: warm x into the cache, then flag + data reads.
			{Ld("x", 9), LdAcq("y", 0), Ld("x", 1)},
		},
		Forbidden: func(o Outcome) bool {
			return o[Key(1, 0)] == 1 && o[Key(1, 1)] == 0
		},
		Observable: func(m []cpu.MCM) bool { return true },
	}
	cfg := RunnerConfig{
		// Thread 1 (odd) lands on cluster 1: make that the RCC cluster.
		Locals: [2]string{"mesi", "rcc"}, Global: "cxl",
		MCMs:  [2]cpu.MCM{cpu.TSO, cpu.WMO},
		Iters: 300, BaseSeed: 23,
	}

	// Synced: the acquire self-invalidates the stale copy — clean.
	res, err := Run(base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Forbidden != 0 {
		t.Fatalf("acquire failed to invalidate stale data: %s", res.ForbiddenExample)
	}

	// Acquire dropped (writer stays synced): the stale cached x shows.
	noAcq := base
	noAcq.Threads = []Thread{base.Threads[0], Strip(base.Threads[1])}
	res, err = Run(noAcq, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Forbidden == 0 {
		t.Fatal("dropping the RCC acquire should expose the stale cached read")
	}
}

// TestCoherenceOnlyShapes: CoRR2 and CoWW hold with or without
// synchronization — they are cache coherence, not consistency.
func TestCoherenceOnlyShapes(t *testing.T) {
	for _, name := range []string{"CoRR2", "CoWW"} {
		for _, sync := range []SyncMode{SyncFull, SyncNone} {
			tc, _ := ByName(name)
			res, err := Run(tc, RunnerConfig{
				Locals: [2]string{"mesi", "moesi"}, Global: "cxl",
				MCMs:  [2]cpu.MCM{cpu.WMO, cpu.WMO},
				Iters: 50, Sync: sync, BaseSeed: 29,
			})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if res.Forbidden != 0 {
				t.Fatalf("%s (sync=%d): coherence violation %s", name, sync, res.ForbiddenExample)
			}
		}
	}
}
