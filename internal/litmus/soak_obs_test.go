package litmus

import (
	"strings"
	"sync"
	"testing"
	"time"

	"c3/internal/faults"
)

// recordingObserver implements SoakObserver + SoakRowObserver and
// records everything it sees (events arrive concurrently from pool
// workers).
type recordingObserver struct {
	mu      sync.Mutex
	labels  []string
	started int
	done    int
	failed  int
	rows    []SoakRun
}

func (o *recordingObserver) Plan(labels []string) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.labels = append([]string(nil), labels...)
}

func (o *recordingObserver) TaskStarted(int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.started++
}

func (o *recordingObserver) TaskDone(_ int, err error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.done++
	if err != nil {
		o.failed++
	}
}

func (o *recordingObserver) CampaignDone(_ int, row SoakRun) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.rows = append(o.rows, row)
}

// TestSoakObserverSeesSweep: the observer gets the labeled plan, one
// start/done pair per campaign, and every completed row — and the
// report's bytes are identical to an unobserved run at any worker count.
func TestSoakObserverSeesSweep(t *testing.T) {
	cfg := SoakConfig{
		Tests: []string{"MP", "SB"},
		Plans: []NamedPlan{{Name: "light", Plan: faults.Plan{Rates: faults.Rates{Drop: 0.01}}}},
		Seeds: []int64{1, 2},
		Iters: 2,
	}
	baseRep, err := RunSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := baseRep.Render()

	for _, workers := range []int{1, 3} {
		obs := &recordingObserver{}
		cfg.Workers = workers
		cfg.Observer = obs
		rep, err := RunSoak(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := rep.Render(); got != base {
			t.Fatalf("workers=%d: observer changed the report:\n--- unobserved ---\n%s--- observed ---\n%s",
				workers, base, got)
		}
		obs.mu.Lock()
		if want := []string{"MP/light/seed1", "MP/light/seed2", "SB/light/seed1", "SB/light/seed2"}; len(obs.labels) != len(want) {
			t.Fatalf("workers=%d: plan = %v, want %v", workers, obs.labels, want)
		} else {
			for i, l := range want {
				if obs.labels[i] != l {
					t.Errorf("workers=%d: label[%d] = %q, want %q", workers, i, obs.labels[i], l)
				}
			}
		}
		if obs.started != 4 || obs.done != 4 || obs.failed != 0 {
			t.Errorf("workers=%d: started/done/failed = %d/%d/%d, want 4/4/0",
				workers, obs.started, obs.done, obs.failed)
		}
		if len(obs.rows) != 4 {
			t.Errorf("workers=%d: observer saw %d rows, want 4", workers, len(obs.rows))
		}
		obs.mu.Unlock()
	}
	cfg.Observer = nil
}

// TestSoakTimeoutFlushesPartialReport pins the -timeout abort path: an
// already-expired bound yields a full-length report whose rows are all
// flagged TimedOut, the verdict is "timeout", and the render names the
// cutoff — the ledger and a reader can both tell a timeout from a
// protocol failure.
func TestSoakTimeoutFlushesPartialReport(t *testing.T) {
	cfg := SoakConfig{
		Tests:   []string{"MP"},
		Plans:   []NamedPlan{{Name: "light", Plan: faults.Plan{Rates: faults.Rates{Drop: 0.01}}}},
		Seeds:   []int64{1, 2},
		Iters:   2,
		Timeout: time.Nanosecond, // expires before any campaign starts
	}
	rep, err := RunSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) != 2 {
		t.Fatalf("%d rows, want 2 (timeout rows are rows, not missing entries)", len(rep.Runs))
	}
	for i := range rep.Runs {
		if !rep.Runs[i].TimedOut || rep.Runs[i].Err == "" {
			t.Fatalf("row %d not flagged: %+v", i, rep.Runs[i])
		}
	}
	if !rep.TimedOut() || rep.OK() {
		t.Fatalf("TimedOut()=%v OK()=%v, want true/false", rep.TimedOut(), rep.OK())
	}
	if v := rep.Verdict(); v != "timeout" {
		t.Fatalf("verdict = %q, want timeout", v)
	}
	out := rep.Render()
	if !strings.Contains(out, "TIMEOUT: timeout: sweep exceeded") || !strings.Contains(out, "SOAK TIMEOUT") {
		t.Fatalf("render missing timeout markers:\n%s", out)
	}
}

// TestSoakVerdictPrecedence: a real failure outranks a timeout; clean
// rows pass.
func TestSoakVerdictPrecedence(t *testing.T) {
	pass := &SoakReport{Runs: []SoakRun{{Test: "MP"}}}
	if v := pass.Verdict(); v != "pass" {
		t.Errorf("clean verdict = %q, want pass", v)
	}
	mixed := &SoakReport{Runs: []SoakRun{
		{Test: "MP", TimedOut: true, Err: "timeout"},
		{Test: "SB", Forbidden: 1},
	}}
	if v := mixed.Verdict(); v != "fail" {
		t.Errorf("mixed verdict = %q, want fail (forbidden beats timeout)", v)
	}
}
