package litmus

import (
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"c3/internal/faults"
)

// resilienceSoakConfig is the small, fast sweep shared by the resilience
// tests: 2 tests x 1 plan x 2 seeds = 4 campaigns.
func resilienceSoakConfig() SoakConfig {
	return SoakConfig{
		Tests: []string{"MP", "SB"},
		Plans: []NamedPlan{
			{Name: "light", Plan: faults.Plan{Rates: faults.Rates{Drop: 0.01, Dup: 0.01}}},
		},
		Seeds: []int64{1, 2},
		Iters: 4,
	}
}

// TestSoakRetryDeterminism pins the retry contract: a campaign that times
// out once and succeeds on retry produces the same report bytes as a
// first-try success, at any worker count. Every attempt is a fresh,
// seed-determined campaign, so retries cannot leak state into the row.
func TestSoakRetryDeterminism(t *testing.T) {
	base, err := RunSoak(resilienceSoakConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := base.Render()

	for _, workers := range []int{1, 8} {
		cfg := resilienceSoakConfig()
		cfg.Workers = workers
		cfg.Retries = 2
		cfg.retryBackoff = time.Millisecond
		// Every campaign's first attempt is cut by a (simulated) deadline;
		// the second attempt runs clean.
		cfg.failAttempt = func(label string, attempt int) error {
			if attempt == 1 {
				return ErrTaskDeadline
			}
			return nil
		}
		rep, err := RunSoak(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := rep.Render(); got != want {
			t.Fatalf("workers=%d: retried report differs from first-try report:\n--- first-try ---\n%s--- retried ---\n%s",
				workers, want, got)
		}
		for _, r := range rep.Runs {
			if r.Attempts != 2 {
				t.Fatalf("row %s/%s/seed%d executed %d attempts, want 2", r.Test, r.Plan, r.Seed, r.Attempts)
			}
		}
	}
}

// TestSoakRetryExhaustion: once Retries attempts are burned the row is
// recorded as TIMEOUT — the sweep completes, OK() fails, verdict is
// "timeout".
func TestSoakRetryExhaustion(t *testing.T) {
	cfg := resilienceSoakConfig()
	cfg.Retries = 1
	cfg.retryBackoff = time.Millisecond
	cfg.failAttempt = func(label string, attempt int) error { return ErrTaskDeadline }
	rep, err := RunSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Runs {
		if !r.TimedOut || r.Attempts != 2 {
			t.Fatalf("row %s/%s/seed%d: TimedOut=%v Attempts=%d, want timeout after 2 attempts",
				r.Test, r.Plan, r.Seed, r.TimedOut, r.Attempts)
		}
	}
	if rep.OK() {
		t.Fatal("OK() true with every row timed out")
	}
	if v := rep.Verdict(); v != "timeout" {
		t.Fatalf("verdict = %q, want timeout", v)
	}
	if out := rep.Render(); !strings.Contains(out, "TIMEOUT") {
		t.Fatalf("render missing TIMEOUT status:\n%s", out)
	}
}

// TestSoakPanicRetry: a panicking attempt is retryable, just like a
// deadline cut — transient conditions deserve a second try before the
// row goes down as an error.
func TestSoakPanicRetry(t *testing.T) {
	base, err := RunSoak(resilienceSoakConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := resilienceSoakConfig()
	cfg.Retries = 1
	cfg.retryBackoff = time.Millisecond
	cfg.failAttempt = func(label string, attempt int) error {
		if attempt == 1 && label == "MP/light/seed1" {
			return errCampaignPanic
		}
		return nil
	}
	rep, err := RunSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := rep.Render(), base.Render(); got != want {
		t.Fatalf("panic-retried report differs:\n--- base ---\n%s--- retried ---\n%s", want, got)
	}
}

// TestSoakTaskTimeout: a real (not injected) per-attempt deadline in the
// past cuts every campaign via the runner's poll, and with no retries
// the rows surface as TIMEOUT.
func TestSoakTaskTimeout(t *testing.T) {
	cfg := resilienceSoakConfig()
	cfg.TaskTimeout = time.Nanosecond
	rep, err := RunSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Runs {
		if !r.TimedOut {
			t.Fatalf("row %s/%s/seed%d not timed out under a 1ns attempt budget: %+v",
				r.Test, r.Plan, r.Seed, r)
		}
		if !strings.Contains(r.Err, "deadline") {
			t.Fatalf("row error does not name the deadline: %q", r.Err)
		}
	}
	if v := rep.Verdict(); v != "timeout" {
		t.Fatalf("verdict = %q, want timeout", v)
	}
}

// TestSoakResumeSkipsCompleted pins the checkpoint/resume contract: rows
// checkpointed by a previous run (JSON round-tripped, as the ledger
// stores them) are injected verbatim — no campaign executes — and the
// resumed report renders byte-identical to the uninterrupted one.
func TestSoakResumeSkipsCompleted(t *testing.T) {
	base, err := RunSoak(resilienceSoakConfig())
	if err != nil {
		t.Fatal(err)
	}
	completed := make(map[string]SoakRun, len(base.Runs))
	for _, r := range base.Runs {
		raw, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		var rt SoakRun
		if err := json.Unmarshal(raw, &rt); err != nil {
			t.Fatal(err)
		}
		completed[RowLabel(r.Test, r.Plan, r.Seed)] = rt
	}

	cfg := resilienceSoakConfig()
	cfg.Completed = completed
	var mu sync.Mutex
	var executed []string
	cfg.failAttempt = func(label string, attempt int) error {
		mu.Lock()
		executed = append(executed, label)
		mu.Unlock()
		return nil
	}
	rep, err := RunSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(executed) != 0 {
		t.Fatalf("resume re-executed checkpointed campaigns: %v", executed)
	}
	for _, r := range rep.Runs {
		if !r.Resumed {
			t.Fatalf("row %s/%s/seed%d not marked Resumed", r.Test, r.Plan, r.Seed)
		}
	}
	if got, want := rep.Render(), base.Render(); got != want {
		t.Fatalf("resumed report differs from uninterrupted report:\n--- uninterrupted ---\n%s--- resumed ---\n%s",
			want, got)
	}

	// Partial resume: only half the rows checkpointed — the rest execute,
	// and the merged report still matches.
	partial := make(map[string]SoakRun)
	for label, r := range completed {
		if r.Test == "MP" {
			partial[label] = r
		}
	}
	cfg2 := resilienceSoakConfig()
	cfg2.Completed = partial
	rep2, err := RunSoak(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := rep2.Render(), base.Render(); got != want {
		t.Fatalf("partially resumed report differs:\n--- uninterrupted ---\n%s--- resumed ---\n%s", want, got)
	}
	resumed := 0
	for _, r := range rep2.Runs {
		if r.Resumed {
			resumed++
		}
	}
	if resumed != len(partial) {
		t.Fatalf("%d rows marked Resumed, want %d", resumed, len(partial))
	}
}

// TestSoakInterrupt: a closed Interrupt channel turns every not-yet-run
// campaign into an INTERRUPTED row instead of executing it; the report
// verdict is "interrupted" and Interrupted() is true.
func TestSoakInterrupt(t *testing.T) {
	cfg := resilienceSoakConfig()
	stop := make(chan struct{})
	close(stop)
	cfg.Interrupt = stop
	rep, err := RunSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) != 4 {
		t.Fatalf("%d rows, want 4 (interrupted sweeps still report every row)", len(rep.Runs))
	}
	for _, r := range rep.Runs {
		if !r.Interrupted {
			t.Fatalf("row %s/%s/seed%d executed despite pre-closed interrupt: %+v",
				r.Test, r.Plan, r.Seed, r)
		}
	}
	if !rep.Interrupted() {
		t.Fatal("report.Interrupted() false")
	}
	if v := rep.Verdict(); v != "interrupted" {
		t.Fatalf("verdict = %q, want interrupted", v)
	}
	out := rep.Render()
	if !strings.Contains(out, "INTERRUPTED") || !strings.Contains(out, "-resume") {
		t.Fatalf("render missing interrupt guidance:\n%s", out)
	}
}

// TestSoakInterruptPrecedence: a forbidden-outcome row outranks
// interrupted rows in the verdict — shutdown must never mask a violation
// that was already found.
func TestSoakInterruptPrecedence(t *testing.T) {
	rep := &SoakReport{Runs: []SoakRun{
		{Test: "MP", Plan: "light", Seed: 1, Iters: 4, Forbidden: 1},
		{Test: "SB", Plan: "light", Seed: 1, Interrupted: true, Err: "interrupted"},
	}}
	if v := rep.Verdict(); v != "fail" {
		t.Fatalf("verdict = %q, want fail (violation outranks interrupt)", v)
	}
	rep2 := &SoakReport{Runs: []SoakRun{
		{Test: "MP", Plan: "light", Seed: 1, TimedOut: true, Err: "deadline"},
		{Test: "SB", Plan: "light", Seed: 1, Interrupted: true, Err: "interrupted"},
	}}
	if v := rep2.Verdict(); v != "interrupted" {
		t.Fatalf("verdict = %q, want interrupted (interrupt outranks timeout)", v)
	}
}

// TestSoakFailFast: with -fail-fast semantics an error row cancels the
// sweep and RunSoak surfaces the error instead of a report.
func TestSoakFailFast(t *testing.T) {
	cfg := resilienceSoakConfig()
	cfg.FailFast = true
	boom := errors.New("boom")
	cfg.failAttempt = func(label string, attempt int) error { return boom }
	if _, err := RunSoak(cfg); err == nil {
		t.Fatal("fail-fast sweep with erroring campaigns returned no error")
	}
	// Without FailFast the same failure isolates: every row reports.
	cfg.FailFast = false
	rep, err := RunSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) != 4 {
		t.Fatalf("%d rows, want 4 in isolation mode", len(rep.Runs))
	}
	for _, r := range rep.Runs {
		if r.Err == "" {
			t.Fatalf("row %s/%s/seed%d lost its error", r.Test, r.Plan, r.Seed)
		}
	}
}

// TestRunnerDeadline exercises the runner-level deadline poll directly:
// a deadline in the past aborts Run with ErrTaskDeadline before any
// meaningful work.
func TestRunnerDeadline(t *testing.T) {
	tc, _ := ByName("MP")
	_, err := Run(tc, RunnerConfig{
		Locals: [2]string{"mesi", "mesi"}, Global: "cxl",
		Iters: 50, Sync: SyncFull, BaseSeed: 1,
		Deadline: time.Now().Add(-time.Second),
	})
	if !errors.Is(err, ErrTaskDeadline) {
		t.Fatalf("err = %v, want ErrTaskDeadline", err)
	}
}

// TestRunnerInterrupt: a closed interrupt channel aborts Run with
// ErrInterrupted at the next poll.
func TestRunnerInterrupt(t *testing.T) {
	tc, _ := ByName("MP")
	stop := make(chan struct{})
	close(stop)
	_, err := Run(tc, RunnerConfig{
		Locals: [2]string{"mesi", "mesi"}, Global: "cxl",
		Iters: 50, Sync: SyncFull, BaseSeed: 1,
		Interrupt: stop,
	})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
}
