package litmus

import (
	"testing"

	"c3/internal/faults"
	"c3/internal/sim"
)

func crashPlan(at int64) faults.Plan {
	var p faults.Plan
	p.CrashHost(1, sim.Time(at))
	return p
}

// TestCrashLitmusConverges is the acceptance scenario: a litmus campaign
// with a mid-run host crash terminates without the watchdog firing, the
// surviving host converges, crashed iterations are excluded from
// forbidden-outcome checks, and lines the dead host solely owned surface
// as deterministic poisoned reads at the collector.
func TestCrashLitmusConverges(t *testing.T) {
	for _, global := range []string{"cxl", "hmesi"} {
		t.Run(global, func(t *testing.T) {
			tc, _ := ByName("MP")
			plan := crashPlan(2500)
			res, err := Run(tc, RunnerConfig{
				Locals: [2]string{"mesi", "mesi"}, Global: global,
				Iters: 20, Sync: SyncFull, BaseSeed: 1,
				Faults: &plan, HangWatch: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Crashed == 0 {
				t.Fatal("crash tick 2500 never landed mid-run")
			}
			if res.Forbidden != 0 {
				t.Fatalf("crashed campaign reported forbidden outcomes: %s", res.ForbiddenExample)
			}
			if res.Hangs != 0 {
				t.Fatalf("watchdog fired %d times (%v); reclamation must unblock every waiter",
					res.Hangs, res.HangClasses)
			}
			if res.Poisoned == 0 {
				t.Fatal("no iteration recorded a crash-poisoned line")
			}
			if len(res.PoisonedVars) == 0 {
				t.Fatal("the collector never read a poisoned litmus variable")
			}
		})
	}
}

// TestCrashRejoinLitmusConverges: the same campaign with a rejoin window
// must also converge; the rejoined host comes back cold and idle.
func TestCrashRejoinLitmusConverges(t *testing.T) {
	tc, _ := ByName("SB")
	plan := crashPlan(2500)
	plan.Crashes[0].Rejoin = 40_000
	res, err := Run(tc, RunnerConfig{
		Locals: [2]string{"mesi", "mesi"}, Global: "cxl",
		Iters: 10, Sync: SyncFull, BaseSeed: 1,
		Faults: &plan, HangWatch: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashed == 0 || res.Forbidden != 0 || res.Hangs != 0 {
		t.Fatalf("crashed=%d forbidden=%d hangs=%d", res.Crashed, res.Forbidden, res.Hangs)
	}
}

// TestCrashCampaignDeterministic: the crash plan's poisoned-variable
// histogram and outcome set are identical across worker counts — the
// reclamation walk's sorted order keeps grants deterministic.
func TestCrashCampaignDeterministic(t *testing.T) {
	run := func(workers int) *Result {
		tc, _ := ByName("MP")
		plan := crashPlan(2500)
		res, err := Run(tc, RunnerConfig{
			Locals: [2]string{"mesi", "mesi"}, Global: "cxl",
			Iters: 12, Sync: SyncFull, BaseSeed: 1, Workers: workers,
			Faults: &plan, HangWatch: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(1)
	for _, w := range []int{2, 8} {
		got := run(w)
		if got.Crashed != base.Crashed || got.Poisoned != base.Poisoned {
			t.Fatalf("workers=%d: crashed/poisoned %d/%d, serial %d/%d",
				w, got.Crashed, got.Poisoned, base.Crashed, base.Poisoned)
		}
		if len(got.Outcomes) != len(base.Outcomes) {
			t.Fatalf("workers=%d: %d outcomes, serial %d", w, len(got.Outcomes), len(base.Outcomes))
		}
		for k, v := range base.Outcomes {
			if got.Outcomes[k] != v {
				t.Fatalf("workers=%d: outcome %q = %d, serial %d", w, k, got.Outcomes[k], v)
			}
		}
		for k, v := range base.PoisonedVars {
			if got.PoisonedVars[k] != v {
				t.Fatalf("workers=%d: poisoned var %q = %d, serial %d", w, k, got.PoisonedVars[k], v)
			}
		}
	}
}

// TestCrashSoakPresets: the crash presets resolve by name, sweep cleanly,
// and render byte-identically for any worker count (the c3soak contract
// extended to host crashes).
func TestCrashSoakPresets(t *testing.T) {
	for _, name := range []string{"crash", "crash-rejoin", "crash-noisy"} {
		if _, ok := PlanByName(name); !ok {
			t.Fatalf("crash preset %q missing", name)
		}
	}
	cfg := SoakConfig{
		Tests: []string{"MP"},
		Plans: CrashPlans(),
		Seeds: []int64{1},
		Iters: 5,
	}
	var base string
	for _, workers := range []int{1, 4} {
		cfg.Workers = workers
		rep, err := RunSoak(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !rep.OK() {
			t.Fatalf("crash soak broke the contract:\n%s", rep.Render())
		}
		got := rep.Render()
		if base == "" {
			base = got
		} else if got != base {
			t.Fatalf("crash soak report differs by worker count:\n--- j=1 ---\n%s--- j=%d ---\n%s",
				base, workers, got)
		}
	}
	// Every row must actually have crashed iterations.
	rep, _ := RunSoak(cfg)
	for _, r := range rep.Runs {
		if r.Crashed == 0 {
			t.Fatalf("row %s/%s saw no crashes:\n%s", r.Test, r.Plan, rep.Render())
		}
	}
}
