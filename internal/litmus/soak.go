package litmus

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"c3/internal/cpu"
	"c3/internal/faults"
	"c3/internal/parallel"
	"c3/internal/sim"
)

// NamedPlan pairs a fault plan with a stable display name for reports.
type NamedPlan struct {
	Name string
	Plan faults.Plan
}

// DefaultPlans is the standard soak sweep: from light line noise up to a
// full link blackout window. The blackout window (100% drop for the
// first 60k cycles) outlives the shim's entire retry budget on a
// Table III cross link (~25k cycles), so early transactions must poison;
// traffic after the window recovers normally.
func DefaultPlans() []NamedPlan {
	return []NamedPlan{
		{Name: "light", Plan: faults.Plan{Rates: faults.Rates{Drop: 0.01, Dup: 0.01}}},
		{Name: "noisy", Plan: faults.Plan{Rates: faults.Rates{Drop: 0.05, Dup: 0.05, Delay: 0.10, DelayMax: 200}}},
		{Name: "stall", Plan: faults.Plan{Rates: faults.Rates{Drop: 0.02, Stalls: []faults.Window{{From: 2000, To: 12000}}}}},
		{Name: "blackout", Plan: faults.Plan{Rates: faults.Rates{Stalls: []faults.Window{{From: 0, To: 60_000}}}}},
	}
}

// CrashPlans is the host-crash sweep: a clean fabric with a mid-run
// host-1 crash, the same crash with a later rejoin window, and a crash
// layered over line noise (reclamation must still converge when the
// peer-dead declaration itself rides a lossy fabric). Crash ticks are
// plan constants, so the sweep stays deterministic.
func CrashPlans() []NamedPlan {
	crash := func(at, rejoin int64) faults.Plan {
		var p faults.Plan
		p.CrashHost(1, sim.Time(at))
		if rejoin != 0 {
			p.Crashes[0].Rejoin = sim.Time(rejoin)
		}
		return p
	}
	noisyCrash := crash(2500, 0)
	noisyCrash.Rates = faults.Rates{Drop: 0.02, Dup: 0.02}
	return []NamedPlan{
		{Name: "crash", Plan: crash(2500, 0)},
		{Name: "crash-rejoin", Plan: crash(2500, 40_000)},
		{Name: "crash-noisy", Plan: noisyCrash},
	}
}

// PlanByName finds one of the default or crash plans.
func PlanByName(name string) (NamedPlan, bool) {
	for _, p := range DefaultPlans() {
		if p.Name == name {
			return p, true
		}
	}
	for _, p := range CrashPlans() {
		if p.Name == name {
			return p, true
		}
	}
	return NamedPlan{}, false
}

// SoakConfig describes one soak campaign: the cross product of litmus
// tests x fault plans x base seeds, each run as a full (synced) campaign
// on the unreliable fabric with per-iteration hang watchdogs armed.
type SoakConfig struct {
	// Tests to run (default: the Table IV set).
	Tests []string
	// Plans to sweep (default: DefaultPlans).
	Plans []NamedPlan
	// Seeds are the campaign base seeds (default: {1}).
	Seeds []int64
	// Iters per campaign (default 25; soak cost is Tests x Plans x
	// Seeds x Iters full system runs).
	Iters int
	// Locals / Global / MCMs mirror RunnerConfig (defaults mesi/mesi,
	// cxl, weak/weak).
	Locals [2]string
	Global string
	MCMs   [2]cpu.MCM
	// Workers fans campaigns across goroutines (0 = GOMAXPROCS,
	// 1 = serial). Reports are byte-identical for every worker count.
	Workers int
	// Timeout bounds the sweep's wall clock (0 = none). Campaigns that
	// have not started when it expires become "timeout" error rows; the
	// cut point depends on the host machine, so reports are only
	// byte-identical across worker counts when the sweep finishes in
	// time — the timeout is a failure path, not a schedule. The report
	// is still produced in full (completed rows plus timeout rows) and
	// SoakReport.TimedOut flags the abort, so callers can flush the
	// partial result and record a "timeout" verdict instead of exiting
	// silently.
	Timeout time.Duration
	// Observer, when non-nil, receives the campaign plan and per-campaign
	// lifecycle events for live introspection (c3soak -statusz). Start/
	// done events arrive concurrently from pool workers (see
	// parallel.Observer); the observer can never affect the report.
	Observer SoakObserver
}

// SoakObserver observes a soak sweep from the outside: Plan announces
// the campaign labels ("test/plan/seed") in pool-item order before the
// sweep starts, then the pool's parallel.Observer callbacks track each
// campaign. obs.Tracker implements it.
type SoakObserver interface {
	parallel.Observer
	Plan(labels []string)
}

// SoakRowObserver is optionally implemented by a SoakObserver to
// additionally receive each completed row (concurrently, from pool
// workers) — the feed for live hang/poison/forbidden tallies.
type SoakRowObserver interface {
	CampaignDone(i int, row SoakRun)
}

// SoakRun is one campaign's row in the report.
type SoakRun struct {
	Test string
	Plan string
	Seed int64

	Iters     int
	Distinct  int
	Forbidden int // silent coherence violations among clean iterations
	Poisoned  int // iterations degraded to a detected poisoned line
	Crashed   int // iterations that lost a host to a crash plan
	Hangs     int // watchdog firings (classified, not fatal)
	Classes   string
	Err       string // campaign abort (wedge or captured panic)
	// TimedOut marks a campaign the sweep's wall-clock bound cut off
	// before it started (Err carries the detail).
	TimedOut bool
}

// ok reports whether the run upheld the robustness contract: it finished
// and every iteration either passed coherence checks or flagged its
// degradation — no silent wrong value, no panic.
func (r *SoakRun) ok() bool { return r.Err == "" && r.Forbidden == 0 }

// SoakReport aggregates a soak campaign.
type SoakReport struct {
	Runs []SoakRun
}

// OK reports whether every run upheld the contract.
func (r *SoakReport) OK() bool {
	for i := range r.Runs {
		if !r.Runs[i].ok() {
			return false
		}
	}
	return true
}

// TimedOut reports whether the sweep's wall-clock bound cut off any
// campaign.
func (r *SoakReport) TimedOut() bool {
	for i := range r.Runs {
		if r.Runs[i].TimedOut {
			return true
		}
	}
	return false
}

// Verdict maps the report onto the run-ledger verdict vocabulary:
// "fail" on a silent violation or an aborted (non-timeout) campaign,
// "timeout" when the only failures are wall-clock cutoffs (the partial
// report is still rendered), "pass" otherwise.
func (r *SoakReport) Verdict() string {
	verdict := "pass"
	for i := range r.Runs {
		run := &r.Runs[i]
		if run.ok() {
			continue
		}
		if !run.TimedOut {
			return "fail"
		}
		verdict = "timeout"
	}
	return verdict
}

// Render produces the deterministic report table.
func (r *SoakReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-12s %6s %7s %9s %9s %9s %8s %6s  %s\n",
		"test", "plan", "seed", "iters", "distinct", "forbidden", "poisoned", "crashed", "hangs", "status")
	for i := range r.Runs {
		run := &r.Runs[i]
		status := "ok"
		switch {
		case run.TimedOut:
			status = "TIMEOUT: " + run.Err
		case run.Err != "":
			status = "ERROR: " + run.Err
		case run.Forbidden > 0:
			status = "FORBIDDEN"
		case run.Poisoned > 0:
			status = "degraded"
		case run.Crashed > 0:
			status = "survived"
		}
		if run.Classes != "" {
			status += " [" + run.Classes + "]"
		}
		fmt.Fprintf(&b, "%-8s %-12s %6d %7d %9d %9d %9d %8d %6d  %s\n",
			run.Test, run.Plan, run.Seed, run.Iters, run.Distinct,
			run.Forbidden, run.Poisoned, run.Crashed, run.Hangs, status)
	}
	switch r.Verdict() {
	case "pass":
		b.WriteString("SOAK PASS: every run passed coherence checks or reported detected degradation\n")
	case "timeout":
		b.WriteString("SOAK TIMEOUT: wall-clock bound cut the sweep short; completed rows above are valid\n")
	default:
		b.WriteString("SOAK FAIL: silent coherence violation or aborted campaign above\n")
	}
	return b.String()
}

// classesString renders a hang-class histogram deterministically.
func classesString(m map[string]int) string {
	if len(m) == 0 {
		return ""
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%d", k, m[k]))
	}
	return strings.Join(parts, " ")
}

// RunSoak executes the soak sweep. Campaign-level failures (wedges,
// captured panics) become report rows, never process crashes; the
// returned error is reserved for configuration mistakes (unknown test
// names).
func RunSoak(cfg SoakConfig) (*SoakReport, error) {
	if len(cfg.Tests) == 0 {
		cfg.Tests = TableIVNames()
	}
	if len(cfg.Plans) == 0 {
		cfg.Plans = DefaultPlans()
	}
	if len(cfg.Seeds) == 0 {
		cfg.Seeds = []int64{1}
	}
	if cfg.Iters <= 0 {
		cfg.Iters = 25
	}
	if cfg.Locals[0] == "" {
		cfg.Locals = [2]string{"mesi", "mesi"}
	}
	if cfg.Global == "" {
		cfg.Global = "cxl"
	}

	type campaign struct {
		test Test
		plan NamedPlan
		seed int64
	}
	var jobs []campaign
	for _, name := range cfg.Tests {
		t, ok := ByName(name)
		if !ok {
			return nil, fmt.Errorf("soak: unknown litmus test %q", name)
		}
		for _, p := range cfg.Plans {
			for _, s := range cfg.Seeds {
				jobs = append(jobs, campaign{test: t, plan: p, seed: s})
			}
		}
	}

	var deadline time.Time
	if cfg.Timeout > 0 {
		deadline = time.Now().Add(cfg.Timeout)
	}

	// Live introspection: announce the plan and attach the observer to
	// the pool's context. The observer sees scheduling, never results.
	ctx := context.Background()
	var rowObs SoakRowObserver
	if cfg.Observer != nil {
		labels := make([]string, len(jobs))
		for i, j := range jobs {
			labels[i] = fmt.Sprintf("%s/%s/seed%d", j.test.Name, j.plan.Name, j.seed)
		}
		cfg.Observer.Plan(labels)
		ctx = parallel.WithObserver(ctx, cfg.Observer)
		rowObs, _ = cfg.Observer.(SoakRowObserver)
	}
	report := func(i int, row SoakRun) SoakRun {
		if rowObs != nil {
			rowObs.CampaignDone(i, row)
		}
		return row
	}

	// Parallelism lives at the campaign level; each campaign runs its
	// iterations serially (Workers: 1) so the worker budget is not
	// oversubscribed and every row is independent of scheduling.
	runs, err := parallel.Map(ctx, parallel.Workers(cfg.Workers), len(jobs),
		func(i int) (SoakRun, error) {
			job := jobs[i]
			row := SoakRun{Test: job.test.Name, Plan: job.plan.Name, Seed: job.seed}
			if !deadline.IsZero() && time.Now().After(deadline) {
				row.TimedOut = true
				row.Err = fmt.Sprintf("timeout: sweep exceeded %v before campaign started", cfg.Timeout)
				return report(i, row), nil
			}
			plan := job.plan.Plan
			res, err := runSoakCampaign(job.test, RunnerConfig{
				Locals:    cfg.Locals,
				Global:    cfg.Global,
				MCMs:      cfg.MCMs,
				Iters:     cfg.Iters,
				Sync:      SyncFull,
				BaseSeed:  job.seed,
				Workers:   1,
				Faults:    &plan,
				HangWatch: true,
			})
			if err != nil {
				row.Err = err.Error()
				return report(i, row), nil
			}
			row.Iters = res.Iters
			row.Distinct = res.Distinct()
			row.Forbidden = res.Forbidden
			row.Poisoned = res.Poisoned
			row.Crashed = res.Crashed
			row.Hangs = res.Hangs
			row.Classes = classesString(res.HangClasses)
			return report(i, row), nil
		})
	if err != nil {
		return nil, err
	}
	return &SoakReport{Runs: runs}, nil
}

// runSoakCampaign shields a campaign behind a recover so one poisoned
// code path can never take down the whole sweep: a panic becomes that
// row's error, which Render reports and OK() fails.
func runSoakCampaign(t Test, cfg RunnerConfig) (res *Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			res, err = nil, fmt.Errorf("panic: %v", p)
		}
	}()
	return Run(t, cfg)
}
