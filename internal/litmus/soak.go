package litmus

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"c3/internal/cpu"
	"c3/internal/faults"
	"c3/internal/parallel"
	"c3/internal/sim"
)

// NamedPlan pairs a fault plan with a stable display name for reports.
type NamedPlan struct {
	Name string
	Plan faults.Plan
}

// DefaultPlans is the standard soak sweep: from light line noise up to a
// full link blackout window. The blackout window (100% drop for the
// first 60k cycles) outlives the shim's entire retry budget on a
// Table III cross link (~25k cycles), so early transactions must poison;
// traffic after the window recovers normally.
func DefaultPlans() []NamedPlan {
	return []NamedPlan{
		{Name: "light", Plan: faults.Plan{Rates: faults.Rates{Drop: 0.01, Dup: 0.01}}},
		{Name: "noisy", Plan: faults.Plan{Rates: faults.Rates{Drop: 0.05, Dup: 0.05, Delay: 0.10, DelayMax: 200}}},
		{Name: "stall", Plan: faults.Plan{Rates: faults.Rates{Drop: 0.02, Stalls: []faults.Window{{From: 2000, To: 12000}}}}},
		{Name: "blackout", Plan: faults.Plan{Rates: faults.Rates{Stalls: []faults.Window{{From: 0, To: 60_000}}}}},
	}
}

// CrashPlans is the host-crash sweep: a clean fabric with a mid-run
// host-1 crash, the same crash with a later rejoin window, and a crash
// layered over line noise (reclamation must still converge when the
// peer-dead declaration itself rides a lossy fabric). Crash ticks are
// plan constants, so the sweep stays deterministic.
func CrashPlans() []NamedPlan {
	crash := func(at, rejoin int64) faults.Plan {
		var p faults.Plan
		p.CrashHost(1, sim.Time(at))
		if rejoin != 0 {
			p.Crashes[0].Rejoin = sim.Time(rejoin)
		}
		return p
	}
	noisyCrash := crash(2500, 0)
	noisyCrash.Rates = faults.Rates{Drop: 0.02, Dup: 0.02}
	return []NamedPlan{
		{Name: "crash", Plan: crash(2500, 0)},
		{Name: "crash-rejoin", Plan: crash(2500, 40_000)},
		{Name: "crash-noisy", Plan: noisyCrash},
	}
}

// PlanByName finds one of the default or crash plans.
func PlanByName(name string) (NamedPlan, bool) {
	for _, p := range DefaultPlans() {
		if p.Name == name {
			return p, true
		}
	}
	for _, p := range CrashPlans() {
		if p.Name == name {
			return p, true
		}
	}
	return NamedPlan{}, false
}

// SoakConfig describes one soak campaign: the cross product of litmus
// tests x fault plans x base seeds, each run as a full (synced) campaign
// on the unreliable fabric with per-iteration hang watchdogs armed.
type SoakConfig struct {
	// Tests to run (default: the Table IV set).
	Tests []string
	// Plans to sweep (default: DefaultPlans).
	Plans []NamedPlan
	// Seeds are the campaign base seeds (default: {1}).
	Seeds []int64
	// Iters per campaign (default 25; soak cost is Tests x Plans x
	// Seeds x Iters full system runs).
	Iters int
	// Locals / Global / MCMs mirror RunnerConfig (defaults mesi/mesi,
	// cxl, weak/weak).
	Locals [2]string
	Global string
	MCMs   [2]cpu.MCM
	// Workers fans campaigns across goroutines (0 = GOMAXPROCS,
	// 1 = serial). Reports are byte-identical for every worker count.
	Workers int
	// Timeout bounds the sweep's wall clock (0 = none). Campaigns that
	// have not started when it expires become "timeout" error rows; the
	// cut point depends on the host machine, so reports are only
	// byte-identical across worker counts when the sweep finishes in
	// time — the timeout is a failure path, not a schedule. The report
	// is still produced in full (completed rows plus timeout rows) and
	// SoakReport.TimedOut flags the abort, so callers can flush the
	// partial result and record a "timeout" verdict instead of exiting
	// silently.
	Timeout time.Duration
	// TaskTimeout bounds each campaign attempt's wall clock (0 = none):
	// a single wedged seed then burns its own budget, not the sweep's.
	// Expired attempts are retried (see Retries) and finally recorded as
	// TIMEOUT rows.
	TaskTimeout time.Duration
	// Retries is how many extra attempts a timed-out or panicked
	// campaign gets before its row is recorded as TIMEOUT/ERROR, with
	// capped exponential backoff between attempts. Deterministic
	// failures (wedges, silent violations) are never retried — rerunning
	// the same seeds reproduces them exactly. Default 0.
	Retries int
	// FailFast restores first-error-cancel pool semantics: the first
	// campaign abort (non-timeout error row) cancels unstarted siblings
	// and RunSoak returns the error. The default (false) is isolation
	// mode — a failing campaign becomes a report row and every sibling
	// still runs.
	FailFast bool
	// Interrupt, when non-nil, requests graceful shutdown once closed:
	// in-flight campaigns stop at their next poll, unstarted ones never
	// run, and both become INTERRUPTED rows in the flushed partial
	// report (which callers can checkpoint and later resume).
	Interrupt <-chan struct{}
	// Completed seeds the sweep with rows checkpointed by a previous run
	// (keyed by RowLabel): matching campaigns are not executed — the
	// cached row lands in the report verbatim, marked Resumed. This is
	// the -resume path; with every row cached the report is
	// byte-identical to an uninterrupted run.
	Completed map[string]SoakRun
	// Observer, when non-nil, receives the campaign plan and per-campaign
	// lifecycle events for live introspection (c3soak -statusz). Start/
	// done events arrive concurrently from pool workers (see
	// parallel.Observer); the observer can never affect the report.
	Observer SoakObserver

	// retryBackoff overrides the inter-attempt backoff base (tests; 0 =
	// retryBackoffBase).
	retryBackoff time.Duration
	// failAttempt, when non-nil, injects an abort into campaign attempts
	// before they execute — the deterministic stand-in for a wall-clock
	// cut in retry tests. Attempts are numbered from 1.
	failAttempt func(label string, attempt int) error
}

// Retry backoff: base * 2^(attempt-1), capped. The backoff only delays
// the retry (timing is not part of any result), so the cap can be
// generous without risking determinism.
const (
	retryBackoffBase = 100 * time.Millisecond
	retryBackoffCap  = 5 * time.Second
)

// RowLabel renders the stable identity of one campaign row within a
// sweep ("MP/light/seed1") — the key the observer plan, the report,
// and checkpoint resume all share.
func RowLabel(test, plan string, seed int64) string {
	return fmt.Sprintf("%s/%s/seed%d", test, plan, seed)
}

// SoakObserver observes a soak sweep from the outside: Plan announces
// the campaign labels ("test/plan/seed") in pool-item order before the
// sweep starts, then the pool's parallel.Observer callbacks track each
// campaign. obs.Tracker implements it.
type SoakObserver interface {
	parallel.Observer
	Plan(labels []string)
}

// SoakRowObserver is optionally implemented by a SoakObserver to
// additionally receive each completed row (concurrently, from pool
// workers) — the feed for live hang/poison/forbidden tallies.
type SoakRowObserver interface {
	CampaignDone(i int, row SoakRun)
}

// SoakRun is one campaign's row in the report.
type SoakRun struct {
	Test string
	Plan string
	Seed int64

	Iters     int
	Distinct  int
	Forbidden int // silent coherence violations among clean iterations
	Poisoned  int // iterations degraded to a detected poisoned line
	Crashed   int // iterations that lost a host to a crash plan
	Hangs     int // watchdog firings (classified, not fatal)
	Classes   string
	Err       string // campaign abort (wedge or captured panic)
	// TimedOut marks a campaign a wall-clock bound cut off — either the
	// sweep's Timeout before it started, or its own TaskTimeout after
	// exhausting Retries (Err carries the detail).
	TimedOut bool
	// Interrupted marks a row a graceful shutdown cut off before it
	// completed. The row was not executed to a verdict, so checkpoint
	// writers skip it and -resume re-runs it.
	Interrupted bool
	// Attempts counts executions of the campaign (1 = first try
	// produced the verdict; >1 = the retry path ran). Deliberately
	// absent from Render so a retried row reads byte-identical to a
	// first-try row.
	Attempts int
	// Resumed marks a row injected from a previous run's checkpoint
	// (SoakConfig.Completed) rather than executed; checkpoint writers
	// must not re-ledger it. Never rendered.
	Resumed bool `json:",omitempty"`
}

// ok reports whether the run upheld the robustness contract: it finished
// and every iteration either passed coherence checks or flagged its
// degradation — no silent wrong value, no panic.
func (r *SoakRun) ok() bool { return r.Err == "" && r.Forbidden == 0 }

// SoakReport aggregates a soak campaign.
type SoakReport struct {
	Runs []SoakRun
}

// OK reports whether every run upheld the contract.
func (r *SoakReport) OK() bool {
	for i := range r.Runs {
		if !r.Runs[i].ok() {
			return false
		}
	}
	return true
}

// TimedOut reports whether the sweep's wall-clock bound cut off any
// campaign.
func (r *SoakReport) TimedOut() bool {
	for i := range r.Runs {
		if r.Runs[i].TimedOut {
			return true
		}
	}
	return false
}

// Interrupted reports whether a graceful shutdown cut off any campaign
// (the report is a resumable partial).
func (r *SoakReport) Interrupted() bool {
	for i := range r.Runs {
		if r.Runs[i].Interrupted {
			return true
		}
	}
	return false
}

// Verdict maps the report onto the run-ledger verdict vocabulary:
// "fail" on a silent violation or an aborted (non-timeout) campaign,
// "interrupted" when a graceful shutdown flushed a resumable partial,
// "timeout" when the only failures are wall-clock cutoffs (the partial
// report is still rendered), "pass" otherwise.
func (r *SoakReport) Verdict() string {
	verdict := "pass"
	for i := range r.Runs {
		run := &r.Runs[i]
		switch {
		case run.ok():
		case run.Interrupted:
			verdict = "interrupted"
		case !run.TimedOut:
			return "fail"
		case verdict == "pass":
			verdict = "timeout"
		}
	}
	return verdict
}

// Render produces the deterministic report table.
func (r *SoakReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-12s %6s %7s %9s %9s %9s %8s %6s  %s\n",
		"test", "plan", "seed", "iters", "distinct", "forbidden", "poisoned", "crashed", "hangs", "status")
	for i := range r.Runs {
		run := &r.Runs[i]
		status := "ok"
		switch {
		case run.Interrupted:
			status = "INTERRUPTED: " + run.Err
		case run.TimedOut:
			status = "TIMEOUT: " + run.Err
		case run.Err != "":
			status = "ERROR: " + run.Err
		case run.Forbidden > 0:
			status = "FORBIDDEN"
		case run.Poisoned > 0:
			status = "degraded"
		case run.Crashed > 0:
			status = "survived"
		}
		if run.Classes != "" {
			status += " [" + run.Classes + "]"
		}
		fmt.Fprintf(&b, "%-8s %-12s %6d %7d %9d %9d %9d %8d %6d  %s\n",
			run.Test, run.Plan, run.Seed, run.Iters, run.Distinct,
			run.Forbidden, run.Poisoned, run.Crashed, run.Hangs, status)
	}
	switch r.Verdict() {
	case "pass":
		b.WriteString("SOAK PASS: every run passed coherence checks or reported detected degradation\n")
	case "timeout":
		b.WriteString("SOAK TIMEOUT: wall-clock bound cut the sweep short; completed rows above are valid\n")
	case "interrupted":
		b.WriteString("SOAK INTERRUPTED: graceful shutdown flushed this partial report; completed rows are checkpointed — rerun with -resume to finish\n")
	default:
		b.WriteString("SOAK FAIL: silent coherence violation or aborted campaign above\n")
	}
	return b.String()
}

// classesString renders a hang-class histogram deterministically.
func classesString(m map[string]int) string {
	if len(m) == 0 {
		return ""
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%d", k, m[k]))
	}
	return strings.Join(parts, " ")
}

// WithDefaults returns cfg with the sweep-shape defaults applied (Table
// IV tests, all default plans, seed 1, 25 iterations, mesi/mesi under
// cxl). Both RunSoak and the distributed coordinator normalize through
// it, so "the default sweep" means the same job list everywhere.
func (cfg SoakConfig) WithDefaults() SoakConfig {
	if len(cfg.Tests) == 0 {
		cfg.Tests = TableIVNames()
	}
	if len(cfg.Plans) == 0 {
		cfg.Plans = DefaultPlans()
	}
	if len(cfg.Seeds) == 0 {
		cfg.Seeds = []int64{1}
	}
	if cfg.Iters <= 0 {
		cfg.Iters = 25
	}
	if cfg.Locals[0] == "" {
		cfg.Locals = [2]string{"mesi", "mesi"}
	}
	if cfg.Global == "" {
		cfg.Global = "cxl"
	}
	return cfg
}

// Campaign identifies one shard of a soak sweep: a (test, plan, seed)
// cell, the unit the worker pool — and the distributed campaign
// service's job queue — schedules.
type Campaign struct {
	Test Test
	Plan NamedPlan
	Seed int64
}

// Label renders the shard's stable identity ("MP/light/seed1").
func (c Campaign) Label() string { return RowLabel(c.Test.Name, c.Plan.Name, c.Seed) }

// Campaigns expands a (defaults-applied) config into the sweep's job
// list in canonical report order: tests outermost, then plans, then
// seeds. Every consumer of the sweep — the in-process pool, the
// distributed coordinator's queue, the report merge — must share this
// order; it is what makes a merged distributed report byte-identical to
// a single-process run.
func Campaigns(cfg SoakConfig) ([]Campaign, error) {
	cfg = cfg.WithDefaults()
	var jobs []Campaign
	for _, name := range cfg.Tests {
		t, ok := ByName(name)
		if !ok {
			return nil, fmt.Errorf("soak: unknown litmus test %q", name)
		}
		for _, p := range cfg.Plans {
			for _, s := range cfg.Seeds {
				jobs = append(jobs, Campaign{Test: t, Plan: p, Seed: s})
			}
		}
	}
	return jobs, nil
}

// RunSoak executes the soak sweep. Campaign-level failures (wedges,
// captured panics) become report rows, never process crashes; the
// returned error is reserved for configuration mistakes (unknown test
// names).
func RunSoak(cfg SoakConfig) (*SoakReport, error) {
	cfg = cfg.WithDefaults()
	jobs, err := Campaigns(cfg)
	if err != nil {
		return nil, err
	}

	var deadline time.Time
	if cfg.Timeout > 0 {
		deadline = time.Now().Add(cfg.Timeout)
	}

	// Live introspection: announce the plan and attach the observer to
	// the pool's context. The observer sees scheduling, never results.
	ctx := context.Background()
	var rowObs SoakRowObserver
	if cfg.Observer != nil {
		labels := make([]string, len(jobs))
		for i, j := range jobs {
			labels[i] = RowLabel(j.Test.Name, j.Plan.Name, j.Seed)
		}
		cfg.Observer.Plan(labels)
		ctx = parallel.WithObserver(ctx, cfg.Observer)
		rowObs, _ = cfg.Observer.(SoakRowObserver)
	}
	report := func(i int, row SoakRun) SoakRun {
		if rowObs != nil {
			rowObs.CampaignDone(i, row)
		}
		return row
	}

	// Graceful shutdown: the interrupt channel cancels the pool context
	// so unstarted campaigns are skipped instantly; in-flight campaigns
	// see the same channel through RunnerConfig.Interrupt and stop at
	// their next step-loop poll. The watcher goroutine is joined by the
	// deferred close, never leaked.
	if cfg.Interrupt != nil {
		var cancel context.CancelFunc
		ctx, cancel = context.WithCancel(ctx)
		stopc := make(chan struct{})
		defer close(stopc)
		go func() {
			select {
			case <-cfg.Interrupt:
				cancel()
			case <-stopc:
				cancel()
			}
		}()
	}

	interrupted := func() bool {
		if cfg.Interrupt == nil {
			return false
		}
		select {
		case <-cfg.Interrupt:
			return true
		default:
			return false
		}
	}

	backoffBase := cfg.retryBackoff
	if backoffBase <= 0 {
		backoffBase = retryBackoffBase
	}

	// runCampaign produces one row, retrying wall-clock and panic aborts
	// with capped exponential backoff. Every attempt is a full, fresh,
	// deterministic campaign, so a success on attempt k is byte-identical
	// to a first-try success.
	runCampaign := func(i int) SoakRun {
		job := jobs[i]
		label := RowLabel(job.Test.Name, job.Plan.Name, job.Seed)
		row := SoakRun{Test: job.Test.Name, Plan: job.Plan.Name, Seed: job.Seed}
		if cached, ok := cfg.Completed[label]; ok {
			// Checkpointed by a previous run: the ledger row is the
			// verdict; nothing executes.
			cached.Resumed = true
			return cached
		}
		if interrupted() {
			row.Interrupted = true
			row.Err = "interrupted before campaign started"
			return row
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			row.TimedOut = true
			row.Err = fmt.Sprintf("timeout: sweep exceeded %v before campaign started", cfg.Timeout)
			return row
		}
		for attempt := 1; ; attempt++ {
			row.Attempts = attempt
			var res *Result
			err := error(nil)
			if cfg.failAttempt != nil {
				err = cfg.failAttempt(label, attempt)
			}
			if err == nil {
				rcfg := RunnerConfig{
					Locals:    cfg.Locals,
					Global:    cfg.Global,
					MCMs:      cfg.MCMs,
					Iters:     cfg.Iters,
					Sync:      SyncFull,
					BaseSeed:  job.Seed,
					Workers:   1,
					Faults:    &job.Plan.Plan,
					HangWatch: true,
					Interrupt: cfg.Interrupt,
				}
				if cfg.TaskTimeout > 0 {
					rcfg.Deadline = time.Now().Add(cfg.TaskTimeout)
				}
				res, err = runSoakCampaign(job.Test, rcfg)
			}
			if err == nil {
				row.Iters = res.Iters
				row.Distinct = res.Distinct()
				row.Forbidden = res.Forbidden
				row.Poisoned = res.Poisoned
				row.Crashed = res.Crashed
				row.Hangs = res.Hangs
				row.Classes = classesString(res.HangClasses)
				return row
			}
			if errors.Is(err, ErrInterrupted) {
				row.Interrupted = true
				row.Err = err.Error()
				return row
			}
			// Only nondeterministic aborts retry: a wall-clock cut or a
			// panic. Wedges and violations are reproduced exactly by the
			// same seeds, so rerunning them is pure waste.
			retryable := errors.Is(err, ErrTaskDeadline) || errors.Is(err, errCampaignPanic)
			if !retryable || attempt > cfg.Retries {
				if errors.Is(err, ErrTaskDeadline) {
					row.TimedOut = true
					row.Err = fmt.Sprintf("%v (attempt %d of %d)", err, attempt, cfg.Retries+1)
				} else {
					row.Err = err.Error()
				}
				return row
			}
			backoff := backoffBase << (attempt - 1)
			if backoff > retryBackoffCap {
				backoff = retryBackoffCap
			}
			timer := time.NewTimer(backoff)
			if cfg.Interrupt != nil {
				select {
				case <-timer.C:
				case <-cfg.Interrupt:
					timer.Stop()
					row.Interrupted = true
					row.Err = "interrupted during retry backoff"
					return row
				}
			} else {
				<-timer.C
			}
		}
	}

	// Parallelism lives at the campaign level; each campaign runs its
	// iterations serially (Workers: 1) so the worker budget is not
	// oversubscribed and every row is independent of scheduling.
	workers := parallel.Workers(cfg.Workers)
	var runs []SoakRun
	if cfg.FailFast {
		// First-error-cancel: a campaign abort (error row) fails the
		// pool, unstarted siblings never run, and RunSoak surfaces the
		// lowest-index error.
		var err error
		runs, err = parallel.Map(ctx, workers, len(jobs), func(i int) (SoakRun, error) {
			row := runCampaign(i)
			if row.Err != "" && !row.Interrupted {
				return row, fmt.Errorf("soak %s/%s/seed%d: %s", row.Test, row.Plan, row.Seed, row.Err)
			}
			return report(i, row), nil
		})
		if err != nil {
			return nil, err
		}
	} else {
		// Isolation mode (default): every campaign runs no matter what
		// its siblings do; pool-level failures (panics escaping the
		// campaign recover, context cancellation) become rows.
		results, errs := parallel.MapAll(ctx, workers, len(jobs), func(i int) (SoakRun, error) {
			return report(i, runCampaign(i)), nil
		})
		runs = results
		for i, err := range errs {
			if err == nil {
				continue
			}
			job := jobs[i]
			row := SoakRun{Test: job.Test.Name, Plan: job.Plan.Name, Seed: job.Seed}
			if errors.Is(err, context.Canceled) {
				row.Interrupted = true
				row.Err = "interrupted before campaign started"
			} else {
				row.Err = err.Error()
			}
			runs[i] = report(i, row)
		}
	}
	return &SoakReport{Runs: runs}, nil
}

// errCampaignPanic classifies a panic captured inside a campaign; it is
// retryable (panics can stem from transient conditions) unlike a
// deterministic wedge.
var errCampaignPanic = errors.New("campaign panicked")

// runSoakCampaign shields a campaign behind a recover so one poisoned
// code path can never take down the whole sweep: a panic becomes that
// row's error, which Render reports and OK() fails.
func runSoakCampaign(t Test, cfg RunnerConfig) (res *Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			res, err = nil, fmt.Errorf("%w: %v", errCampaignPanic, p)
		}
	}()
	return Run(t, cfg)
}
