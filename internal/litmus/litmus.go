// Package litmus provides the litmus-test corpus and runner used for the
// paper's empirical correctness evaluation (Sec. VI-A, Table IV).
//
// Tests are written against named variables (distinct cache lines, as
// herd7 lays them out) with full synchronization. The runner can:
//
//   - refine fences per thread MCM, ArMOR-style: a TSO thread keeps only
//     the store->load fences TSO does not already provide, and drops
//     acquire/release annotations (Sec. VI-A: "litmus tests for the
//     weaker MCM are refined by using ArMOR to remove fences that are no
//     longer required when combining with the stronger MCM");
//   - strip all synchronization, the paper's control: the relaxed
//     outcome must then be observable (on architectures weak enough to
//     produce it), proving the tests do not pass vacuously.
//
// Each iteration runs on a freshly assembled two-cluster system with a
// different fabric-jitter seed and randomized thread start offsets, then
// a collector core reads back final memory values.
package litmus

import (
	"fmt"
	"sort"
	"strings"

	"c3/internal/cpu"
	"c3/internal/mem"
)

// Var names a litmus variable; each maps to its own cache line.
type Var string

// Op is one litmus thread instruction.
type Op struct {
	Kind cpu.Kind
	V    Var
	Val  uint64
	Reg  int
	Acq  bool // acquire annotation (loads)
	Rel  bool // release annotation (stores)
}

// Thread is one litmus thread program.
type Thread []Op

// Outcome maps "<thread>:r<reg>" and final variable names to values.
type Outcome map[string]uint64

// Key builds a register key.
func Key(thread, reg int) string { return fmt.Sprintf("%d:r%d", thread, reg) }

func (o Outcome) String() string {
	keys := make([]string, 0, len(o))
	for k := range o {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%d", k, o[k]))
	}
	return strings.Join(parts, " ")
}

// Test is one litmus shape.
type Test struct {
	Name    string
	Threads []Thread
	Vars    []Var
	// Forbidden reports whether an outcome violates the compound MCM
	// when the test runs with full synchronization.
	Forbidden func(Outcome) bool
	// Observable reports whether, with all synchronization stripped, the
	// forbidden outcome can be produced when thread i runs under
	// mcms[i]. Encodes which thread's relaxation matters (e.g. SB needs
	// store->load relaxation on both threads, so TSO suffices; MP needs
	// a weakly ordered thread on either side).
	Observable func(mcms []cpu.MCM) bool
}

func weak(m cpu.MCM) bool  { return m == cpu.WMO }
func tsoOK(m cpu.MCM) bool { return m == cpu.TSO || m == cpu.WMO }

// varAddr assigns each variable its own line, away from address zero.
func varAddr(vars []Var, v Var) mem.Addr {
	for i, x := range vars {
		if x == v {
			return mem.Addr(0x40000 + i*mem.LineBytes)
		}
	}
	panic(fmt.Sprintf("litmus: unknown var %q", v))
}

// Fence is a convenience full-barrier op.
func Fence() Op { return Op{Kind: cpu.Fence} }

// St / Ld / StRel / LdAcq build ops tersely.
func St(v Var, val uint64) Op    { return Op{Kind: cpu.Store, V: v, Val: val} }
func StRel(v Var, val uint64) Op { return Op{Kind: cpu.Store, V: v, Val: val, Rel: true} }
func Ld(v Var, reg int) Op       { return Op{Kind: cpu.Load, V: v, Reg: reg} }
func LdAcq(v Var, reg int) Op    { return Op{Kind: cpu.Load, V: v, Reg: reg, Acq: true} }

// Tests returns the full corpus. The first seven are Table IV's set.
func Tests() []Test {
	return []Test{
		{
			// Message passing: the flag must publish the data.
			Name: "MP",
			Vars: []Var{"x", "y"},
			Threads: []Thread{
				{St("x", 1), StRel("y", 1)},
				{LdAcq("y", 0), Ld("x", 1)},
			},
			Forbidden: func(o Outcome) bool {
				return o[Key(1, 0)] == 1 && o[Key(1, 1)] == 0
			},
			Observable: func(m []cpu.MCM) bool { return weak(m[0]) || weak(m[1]) },
		},
		{
			// Store buffering: the one reordering TSO allows.
			Name: "SB",
			Vars: []Var{"x", "y"},
			Threads: []Thread{
				{St("x", 1), Fence(), Ld("y", 0)},
				{St("y", 1), Fence(), Ld("x", 0)},
			},
			Forbidden: func(o Outcome) bool {
				return o[Key(0, 0)] == 0 && o[Key(1, 0)] == 0
			},
			Observable: func(m []cpu.MCM) bool { return tsoOK(m[0]) && tsoOK(m[1]) },
		},
		{
			// Load buffering.
			Name: "LB",
			Vars: []Var{"x", "y"},
			Threads: []Thread{
				{Ld("x", 0), Fence(), St("y", 1)},
				{Ld("y", 0), Fence(), St("x", 1)},
			},
			Forbidden: func(o Outcome) bool {
				return o[Key(0, 0)] == 1 && o[Key(1, 0)] == 1
			},
			Observable: func(m []cpu.MCM) bool { return weak(m[0]) || weak(m[1]) },
		},
		{
			// R: write-write order against a racing write + read.
			Name: "R",
			Vars: []Var{"x", "y"},
			Threads: []Thread{
				{St("x", 1), Fence(), St("y", 1)},
				{St("y", 2), Fence(), Ld("x", 0)},
			},
			Forbidden: func(o Outcome) bool {
				return o[Key(1, 0)] == 0 && o["y"] == 2
			},
			Observable: func(m []cpu.MCM) bool { return tsoOK(m[1]) },
		},
		{
			// S: a read ordering a racing write.
			Name: "S",
			Vars: []Var{"x", "y"},
			Threads: []Thread{
				{St("x", 2), StRel("y", 1)},
				{LdAcq("y", 0), St("x", 1)},
			},
			Forbidden: func(o Outcome) bool {
				return o[Key(1, 0)] == 1 && o["x"] == 2
			},
			Observable: func(m []cpu.MCM) bool { return weak(m[0]) || weak(m[1]) },
		},
		{
			// 2+2W: write-order cycle.
			Name: "2_2W",
			Vars: []Var{"x", "y"},
			Threads: []Thread{
				{St("x", 1), Fence(), St("y", 2)},
				{St("y", 1), Fence(), St("x", 2)},
			},
			Forbidden: func(o Outcome) bool {
				return o["x"] == 1 && o["y"] == 1
			},
			Observable: func(m []cpu.MCM) bool { return weak(m[0]) || weak(m[1]) },
		},
		{
			// IRIW: independent readers must agree on the write order
			// (multi-copy atomicity).
			Name: "IRIW",
			Vars: []Var{"x", "y"},
			Threads: []Thread{
				{St("x", 1)},
				{St("y", 1)},
				{LdAcq("x", 0), Ld("y", 1)},
				{LdAcq("y", 0), Ld("x", 1)},
			},
			Forbidden: func(o Outcome) bool {
				return o[Key(2, 0)] == 1 && o[Key(2, 1)] == 0 &&
					o[Key(3, 0)] == 1 && o[Key(3, 1)] == 0
			},
			Observable: func(m []cpu.MCM) bool { return weak(m[2]) || weak(m[3]) },
		},
		{
			// CoRR: same-location reads never go backwards — pure
			// coherence; must hold even with no synchronization.
			Name: "CoRR",
			Vars: []Var{"x"},
			Threads: []Thread{
				{St("x", 1)},
				{Ld("x", 0), Ld("x", 1)},
			},
			Forbidden: func(o Outcome) bool {
				return o[Key(1, 0)] == 1 && o[Key(1, 1)] == 0
			},
			Observable: func(m []cpu.MCM) bool { return false },
		},
		{
			// CoRR2: two readers must agree on the order of same-location
			// writes — pure coherence, like CoRR.
			Name: "CoRR2",
			Vars: []Var{"x"},
			Threads: []Thread{
				{St("x", 1)},
				{St("x", 2)},
				{Ld("x", 0), Ld("x", 1)},
				{Ld("x", 0), Ld("x", 1)},
			},
			Forbidden: func(o Outcome) bool {
				// Reader 2 sees 1 then 2; reader 3 sees 2 then 1: the
				// coherence order of x is contradicted.
				return o[Key(2, 0)] == 1 && o[Key(2, 1)] == 2 &&
					o[Key(3, 0)] == 2 && o[Key(3, 1)] == 1
			},
			Observable: func(m []cpu.MCM) bool { return false },
		},
		{
			// CoWW: same-location stores retire in program order — the
			// final value must be the later store's, on every model.
			Name: "CoWW",
			Vars: []Var{"x"},
			Threads: []Thread{
				{St("x", 1), St("x", 2)},
			},
			Forbidden:  func(o Outcome) bool { return o["x"] != 2 },
			Observable: func(m []cpu.MCM) bool { return false },
		},
		{
			// WRC: write-to-read causality across three threads.
			Name: "WRC",
			Vars: []Var{"x", "y"},
			Threads: []Thread{
				{St("x", 1)},
				{LdAcq("x", 0), StRel("y", 1)},
				{LdAcq("y", 0), Ld("x", 1)},
			},
			Forbidden: func(o Outcome) bool {
				return o[Key(1, 0)] == 1 && o[Key(2, 0)] == 1 && o[Key(2, 1)] == 0
			},
			Observable: func(m []cpu.MCM) bool { return weak(m[1]) || weak(m[2]) },
		},
		{
			// RWC: read-to-write causality.
			Name: "RWC",
			Vars: []Var{"x", "y"},
			Threads: []Thread{
				{St("x", 1)},
				{Ld("x", 0), Fence(), Ld("y", 1)},
				{St("y", 1), Fence(), Ld("x", 0)},
			},
			Forbidden: func(o Outcome) bool {
				return o[Key(1, 0)] == 1 && o[Key(1, 1)] == 0 && o[Key(2, 0)] == 0
			},
			Observable: func(m []cpu.MCM) bool { return weak(m[1]) || tsoOK(m[2]) },
		},
		{
			// WWC: write-to-write causality.
			Name: "WWC",
			Vars: []Var{"x", "y"},
			Threads: []Thread{
				{St("x", 2)},
				{Ld("x", 0), Fence(), St("y", 1)},
				{Ld("y", 0), Fence(), St("x", 1)},
			},
			Forbidden: func(o Outcome) bool {
				return o[Key(1, 0)] == 2 && o[Key(2, 0)] == 1 && o["x"] == 2
			},
			Observable: func(m []cpu.MCM) bool { return weak(m[1]) || weak(m[2]) },
		},
		{
			// WRW+2W.
			Name: "WRW+2W",
			Vars: []Var{"x", "y"},
			Threads: []Thread{
				{St("x", 1)},
				{Ld("x", 0), Fence(), St("y", 1)},
				{St("y", 2), Fence(), St("x", 2)},
			},
			Forbidden: func(o Outcome) bool {
				// Cycle: x=1 ->rf r(x) ->fence y=1 ->co y=2 ->fence
				// x=2 ->co x=1 (final x==1, final y==2).
				return o[Key(1, 0)] == 1 && o["y"] == 2 && o["x"] == 1
			},
			Observable: func(m []cpu.MCM) bool { return weak(m[1]) || weak(m[2]) },
		},
		{
			// MP+3W: message passing surrounded by three independent
			// single-store writers on fresh variables. The MP core (t0,
			// t1) is unchanged; t2/t4 write z from cluster 0 and t3
			// writes w from cluster 1, so the checker's reduction layer
			// has real structure to exploit — t2 and t4 are
			// interchangeable (same cluster, same program), and the
			// extra stores commute with everything outside their own
			// line. Unreduced, the interleaving space is far beyond the
			// Table IV shapes; it is the model checker's reduction
			// acceptance test, not part of Table IV.
			Name: "MP+3W",
			Vars: []Var{"x", "y", "z", "w"},
			Threads: []Thread{
				{St("x", 1), StRel("y", 1)},
				{LdAcq("y", 0), Ld("x", 1)},
				{St("z", 1)},
				{St("w", 1)},
				{St("z", 1)},
			},
			Forbidden: func(o Outcome) bool {
				return o[Key(1, 0)] == 1 && o[Key(1, 1)] == 0
			},
			Observable: func(m []cpu.MCM) bool { return weak(m[0]) || weak(m[1]) },
		},
	}
}

// ByName finds a test.
func ByName(name string) (Test, bool) {
	for _, t := range Tests() {
		if t.Name == name {
			return t, true
		}
	}
	return Test{}, false
}

// TableIVNames lists the seven tests of Table IV.
func TableIVNames() []string {
	return []string{"2_2W", "IRIW", "LB", "MP", "R", "S", "SB"}
}

// SyncMode selects how much synchronization survives in a run.
type SyncMode uint8

const (
	// SyncFull keeps all fences and annotations (refined per MCM).
	SyncFull SyncMode = iota
	// SyncNone strips everything — the paper's control runs.
	SyncNone
)

// Refine adapts a thread's synchronization to the MCM of the core it
// runs on (ArMOR-style): TSO already provides load-load, load-store and
// store-store order plus acquire/release semantics, so only fences
// separating a store from a later load survive; SC needs nothing.
func Refine(th Thread, m cpu.MCM) Thread {
	if m == cpu.WMO {
		return th
	}
	out := make(Thread, 0, len(th))
	for i, op := range th {
		switch {
		case op.Kind == cpu.Fence:
			if m == cpu.SC {
				continue
			}
			// TSO: keep only store->load fences.
			var prevStore, nextLoad bool
			for j := i - 1; j >= 0; j-- {
				if th[j].Kind.IsMem() {
					prevStore = th[j].Kind.IsWrite()
					break
				}
			}
			for j := i + 1; j < len(th); j++ {
				if th[j].Kind.IsMem() {
					nextLoad = th[j].Kind == cpu.Load
					break
				}
			}
			if prevStore && nextLoad {
				out = append(out, op)
			}
		default:
			op.Acq, op.Rel = false, false // implicit under TSO/SC
			out = append(out, op)
		}
	}
	return out
}

// Strip removes all synchronization.
func Strip(th Thread) Thread {
	out := make(Thread, 0, len(th))
	for _, op := range th {
		if op.Kind == cpu.Fence || op.Kind == cpu.Acquire || op.Kind == cpu.Release {
			continue
		}
		op.Acq, op.Rel = false, false
		out = append(out, op)
	}
	return out
}

// RelaxedObservable reports whether the forbidden outcome of t can be
// produced once synchronization is stripped, given the MCM of the core
// each thread runs on.
func RelaxedObservable(t Test, mcms []cpu.MCM) bool {
	return t.Observable(mcms)
}
