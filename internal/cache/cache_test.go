package cache

import (
	"testing"
	"testing/quick"

	"c3/internal/mem"
)

func line(i int) mem.LineAddr { return mem.LineAddr(uint64(i) * mem.LineBytes) }

func TestGeometry(t *testing.T) {
	c := New(8*1024, 4) // 128 lines, 32 sets x 4 ways
	if c.Sets() != 32 || c.Ways() != 4 {
		t.Fatalf("geometry %dx%d, want 32x4", c.Sets(), c.Ways())
	}
}

func TestBadGeometryPanics(t *testing.T) {
	for _, f := range []func(){
		func() { New(0, 4) },
		func() { New(64*3, 2) },   // 3 lines not divisible by 2 ways... actually 3%2 != 0
		func() { New(64*4*3, 4) }, // 3 sets: not a power of two
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad geometry should panic")
				}
			}()
			f()
		}()
	}
}

func TestInstallLookup(t *testing.T) {
	c := New(4096, 4)
	e := c.Install(line(1))
	e.State = 7
	e.Data.SetWord(0, 42)
	got := c.Lookup(line(1))
	if got == nil || got.State != 7 || got.Data.Word(0) != 42 {
		t.Fatalf("lookup after install: %+v", got)
	}
	if c.Lookup(line(2)) != nil {
		t.Fatal("lookup of absent line should miss")
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Fatalf("stats hits=%d misses=%d, want 1/1", c.Hits, c.Misses)
	}
}

func TestDoubleInstallPanics(t *testing.T) {
	c := New(4096, 4)
	c.Install(line(1))
	defer func() {
		if recover() == nil {
			t.Fatal("double install should panic")
		}
	}()
	c.Install(line(1))
}

func TestVictimLRU(t *testing.T) {
	c := New(2*mem.LineBytes, 2) // 1 set, 2 ways
	a, b := line(0), line(1)
	c.Install(a)
	c.Install(b)
	if c.HasSpace(line(2)) {
		t.Fatal("full set should have no space")
	}
	// Touch a so b is LRU.
	c.Touch(c.Probe(a))
	v := c.Victim(line(2))
	if v == nil || v.Addr != b {
		t.Fatalf("victim = %+v, want line b", v)
	}
	c.Remove(v)
	if !c.HasSpace(line(2)) {
		t.Fatal("space should exist after Remove")
	}
	e := c.Install(line(2))
	if e.Addr != line(2) || c.Count() != 2 {
		t.Fatalf("install after eviction failed: %+v count=%d", e, c.Count())
	}
}

func TestVictimNilWhenFree(t *testing.T) {
	c := New(4096, 4)
	c.Install(line(0))
	if v := c.Victim(line(0)); v != nil {
		t.Fatalf("Victim with free ways = %+v, want nil", v)
	}
}

func TestForEachAndCount(t *testing.T) {
	c := New(4096, 4)
	for i := 0; i < 10; i++ {
		c.Install(line(i))
	}
	if c.Count() != 10 {
		t.Fatalf("Count = %d, want 10", c.Count())
	}
	seen := map[mem.LineAddr]bool{}
	c.ForEach(func(e *Entry) { seen[e.Addr] = true })
	if len(seen) != 10 {
		t.Fatalf("ForEach visited %d entries, want 10", len(seen))
	}
}

func TestSetMapping(t *testing.T) {
	c := New(4096, 4) // 16 sets
	// Lines 0 and 16 map to the same set; 0 and 1 to different sets.
	e0 := c.Install(line(0))
	e16 := c.Install(line(16))
	e1 := c.Install(line(1))
	if e0.set != e16.set {
		t.Fatal("lines 0 and 16 should share a set in a 16-set cache")
	}
	if e0.set == e1.set {
		t.Fatal("lines 0 and 1 should map to different sets")
	}
}

func TestPropertyNeverExceedsWays(t *testing.T) {
	// Property: under arbitrary install/evict traffic, no set overflows
	// and lookups return what was installed.
	f := func(addrs []uint16) bool {
		c := New(2048, 2) // 16 sets x 2 ways
		installed := map[mem.LineAddr]bool{}
		for _, a := range addrs {
			la := mem.LineAddr(uint64(a) * mem.LineBytes)
			if installed[la] {
				continue
			}
			if !c.HasSpace(la) {
				v := c.Victim(la)
				delete(installed, v.Addr)
				c.Remove(v)
			}
			c.Install(la)
			installed[la] = true
		}
		if c.Count() != len(installed) {
			return false
		}
		for la := range installed {
			if c.Probe(la) == nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
