// Package cache provides the set-associative storage arrays used by the
// private L1 caches and by the C3 controller's CXL cache (the LLC slice
// holding copies of remote-memory lines).
//
// The array stores tags, per-line protocol state (an opaque int owned by
// the controller), and real line data. Replacement is LRU. Multi-step
// evictions (e.g. the C3 cross-domain eviction of Fig. 7) are driven by
// the owning controller: Victim nominates a line, the controller runs its
// eviction transaction, then Remove + Install complete the replacement.
package cache

import (
	"fmt"

	"c3/internal/mem"
)

// Entry is one cache line frame.
type Entry struct {
	Addr  mem.LineAddr
	Valid bool
	// State is protocol-specific; controllers define their own encoding.
	State int
	Data  mem.Data
	// DataValid distinguishes frames whose payload is current from frames
	// tracked for state only (e.g. C3 lines whose dirty data lives in an
	// L1 owner).
	DataValid bool
	// Poisoned marks a payload delivered with msg.Poisoned set (retry
	// exhaustion or a host crash that lost the only copy): the frame is
	// usable for coherence but its data is untrustworthy, and loads that
	// consume it surface the flag in their results.
	Poisoned bool

	lru uint64
	set int
}

// Cache is a set-associative array. Create with New.
type Cache struct {
	sets    [][]Entry
	setMask uint64
	ways    int
	tick    uint64

	// Hits/Misses count Lookup outcomes, for MPKI accounting.
	Hits, Misses uint64
}

// New builds a cache of the given total size in bytes and associativity.
// Size must be a multiple of ways*64 and the set count a power of two.
func New(sizeBytes, ways int) *Cache {
	if sizeBytes <= 0 || ways <= 0 {
		panic("cache: size and ways must be positive")
	}
	lines := sizeBytes / mem.LineBytes
	if lines%ways != 0 {
		panic("cache: size not divisible by ways")
	}
	nsets := lines / ways
	if nsets&(nsets-1) != 0 {
		panic(fmt.Sprintf("cache: set count %d not a power of two", nsets))
	}
	c := &Cache{sets: make([][]Entry, nsets), setMask: uint64(nsets - 1), ways: ways}
	for i := range c.sets {
		c.sets[i] = make([]Entry, ways)
		for w := range c.sets[i] {
			c.sets[i][w].set = i
		}
	}
	return c
}

// Clone returns a deep copy of the array, including LRU ordering and
// hit/miss counters, for model-checker state snapshots. Entries are
// values, so copying the sets copies everything.
func (c *Cache) Clone() *Cache {
	n := &Cache{
		sets: make([][]Entry, len(c.sets)), setMask: c.setMask, ways: c.ways,
		tick: c.tick, Hits: c.Hits, Misses: c.Misses,
	}
	for i := range c.sets {
		n.sets[i] = append([]Entry(nil), c.sets[i]...)
	}
	return n
}

// Sets and Ways report geometry.
func (c *Cache) Sets() int { return len(c.sets) }

// Ways reports the associativity.
func (c *Cache) Ways() int { return c.ways }

func (c *Cache) setOf(addr mem.LineAddr) []Entry {
	return c.sets[(uint64(addr)>>6)&c.setMask]
}

// Lookup returns the entry for addr, or nil on miss. It counts hit/miss
// statistics but does not touch LRU state; call Touch on use.
func (c *Cache) Lookup(addr mem.LineAddr) *Entry {
	set := c.setOf(addr)
	for i := range set {
		if set[i].Valid && set[i].Addr == addr {
			c.Hits++
			return &set[i]
		}
	}
	c.Misses++
	return nil
}

// Probe is Lookup without statistics, for inspection paths.
func (c *Cache) Probe(addr mem.LineAddr) *Entry {
	set := c.setOf(addr)
	for i := range set {
		if set[i].Valid && set[i].Addr == addr {
			return &set[i]
		}
	}
	return nil
}

// Touch marks e most recently used.
func (c *Cache) Touch(e *Entry) {
	c.tick++
	e.lru = c.tick
}

// HasSpace reports whether addr can be installed without eviction.
func (c *Cache) HasSpace(addr mem.LineAddr) bool {
	set := c.setOf(addr)
	for i := range set {
		if !set[i].Valid {
			return true
		}
	}
	return false
}

// Victim returns the LRU valid entry of addr's set if the set is full,
// or nil if a free way exists. The caller evicts it (protocol flow),
// then calls Remove.
func (c *Cache) Victim(addr mem.LineAddr) *Entry {
	set := c.setOf(addr)
	var victim *Entry
	for i := range set {
		if !set[i].Valid {
			return nil
		}
		if victim == nil || set[i].lru < victim.lru {
			victim = &set[i]
		}
	}
	return victim
}

// VictimFunc is Victim restricted to entries ok approves (e.g. lines
// with no transaction in flight). It returns nil either when a free way
// exists or when no eligible victim exists; use HasSpace to distinguish.
func (c *Cache) VictimFunc(addr mem.LineAddr, ok func(*Entry) bool) *Entry {
	set := c.setOf(addr)
	var victim *Entry
	for i := range set {
		if !set[i].Valid {
			return nil
		}
	}
	for i := range set {
		if !ok(&set[i]) {
			continue
		}
		if victim == nil || set[i].lru < victim.lru {
			victim = &set[i]
		}
	}
	return victim
}

// Install claims a free frame for addr and returns it. It panics if the
// set is full (the controller must have evicted first) or if addr is
// already present.
func (c *Cache) Install(addr mem.LineAddr) *Entry {
	set := c.setOf(addr)
	for i := range set {
		if set[i].Valid && set[i].Addr == addr {
			panic(fmt.Sprintf("cache: double install of %v", addr))
		}
	}
	for i := range set {
		if !set[i].Valid {
			e := &set[i]
			*e = Entry{Addr: addr, Valid: true, set: e.set}
			c.Touch(e)
			return e
		}
	}
	panic(fmt.Sprintf("cache: install of %v into full set", addr))
}

// Remove frees e's frame.
func (c *Cache) Remove(e *Entry) {
	set := e.set
	*e = Entry{set: set}
}

// ForEach visits every valid entry. The callback must not install or
// remove entries.
func (c *Cache) ForEach(fn func(*Entry)) {
	for s := range c.sets {
		for w := range c.sets[s] {
			if c.sets[s][w].Valid {
				fn(&c.sets[s][w])
			}
		}
	}
}

// Count returns the number of valid entries.
func (c *Cache) Count() int {
	n := 0
	c.ForEach(func(*Entry) { n++ })
	return n
}
