// Package cache provides the set-associative storage arrays used by the
// private L1 caches and by the C3 controller's CXL cache (the LLC slice
// holding copies of remote-memory lines).
//
// The array stores tags, per-line protocol state (an opaque int owned by
// the controller), and real line data. Replacement is LRU. Multi-step
// evictions (e.g. the C3 cross-domain eviction of Fig. 7) are driven by
// the owning controller: Victim nominates a line, the controller runs its
// eviction transaction, then Remove + Install complete the replacement.
//
// # Storage layout and copy-on-write
//
// All frames live in one flat []Entry slab (set s occupies
// entries[s*ways : (s+1)*ways]), so building a cache is a single
// allocation and cloning one is a single copy. The slab sits behind an
// atomic reference count and is shared copy-on-write between a cache and
// its Clones: Clone bumps the count and shares the slab; the first
// mutating access on either side materializes a private copy. Every
// accessor that hands out an *Entry the caller may write through
// (Lookup, Probe, Victim, VictimFunc, Install, ForEach) materializes
// first; the RO variants (ProbeRO, ForEachRO) read the shared slab
// without copying and exist for hash/dump/invariant paths that must stay
// O(0) on freshly cloned snapshots. Pointers obtained from either kind
// of accessor are invalidated by the next cache call and must not be
// retained across calls.
//
// Retired slabs are recycled through per-geometry sync.Pools (Release);
// under the model checker's clone churn the steady state allocates
// almost nothing.
package cache

import (
	"fmt"
	"sync"
	"sync/atomic"

	"c3/internal/mem"
)

// Entry is one cache line frame.
type Entry struct {
	Addr  mem.LineAddr
	Valid bool
	// State is protocol-specific; controllers define their own encoding.
	State int
	Data  mem.Data
	// DataValid distinguishes frames whose payload is current from frames
	// tracked for state only (e.g. C3 lines whose dirty data lives in an
	// L1 owner).
	DataValid bool
	// Poisoned marks a payload delivered with msg.Poisoned set (retry
	// exhaustion or a host crash that lost the only copy): the frame is
	// usable for coherence but its data is untrustworthy, and loads that
	// consume it surface the flag in their results.
	Poisoned bool

	lru uint64
	set int
}

// slab is the refcounted backing store shared copy-on-write between a
// cache and its clones. refs counts the Cache instances referencing it;
// writers may touch entries only when refs == 1 (sole owner) — otherwise
// they copy first (materialize). refs is the only cross-goroutine state:
// concurrent Clones of one parent share it via atomic increments while
// each resulting model stays single-goroutine-owned.
type slab struct {
	refs    atomic.Int32
	entries []Entry
}

// slabPools recycles retired slabs per entry count (sync.Map of
// nlines -> *sync.Pool). Different cache geometries never mix.
var slabPools sync.Map

func getSlab(nlines int) *slab {
	pi, ok := slabPools.Load(nlines)
	if !ok {
		pi, _ = slabPools.LoadOrStore(nlines, &sync.Pool{})
	}
	s, _ := pi.(*sync.Pool).Get().(*slab)
	if s == nil {
		s = &slab{entries: make([]Entry, nlines)}
	}
	s.refs.Store(1)
	return s
}

func putSlab(s *slab) {
	if pi, ok := slabPools.Load(len(s.entries)); ok {
		pi.(*sync.Pool).Put(s)
	}
}

// Cache is a set-associative array. Create with New.
type Cache struct {
	s       *slab
	setMask uint64
	ways    int
	tick    uint64

	// Hits/Misses count Lookup outcomes, for MPKI accounting.
	Hits, Misses uint64
}

// New builds a cache of the given total size in bytes and associativity.
// Size must be a multiple of ways*mem.LineBytes and the set count a
// power of two. The frame array is one pooled slab, so construction
// costs at most one allocation.
func New(sizeBytes, ways int) *Cache {
	if sizeBytes <= 0 || ways <= 0 {
		panic("cache: size and ways must be positive")
	}
	lines := sizeBytes / mem.LineBytes
	if lines%ways != 0 {
		panic("cache: size not divisible by ways")
	}
	nsets := lines / ways
	if nsets&(nsets-1) != 0 {
		panic(fmt.Sprintf("cache: set count %d not a power of two", nsets))
	}
	c := &Cache{s: getSlab(lines), setMask: uint64(nsets - 1), ways: ways}
	for i := range c.s.entries {
		c.s.entries[i] = Entry{set: i / ways}
	}
	return c
}

// Clone returns a copy of the array, including LRU ordering and hit/miss
// counters, for model-checker state snapshots. The frame slab is shared
// copy-on-write: the clone costs O(1) and the first mutating access on
// either side materializes a private copy.
func (c *Cache) Clone() *Cache {
	c.s.refs.Add(1)
	n := *c
	return &n
}

// Release drops the cache's reference to its slab, recycling it through
// the pool once no clone references it. The cache must not be used
// afterwards. Calling Release is optional (an unreleased slab is simply
// garbage collected); the model checker releases retired snapshots to
// keep the clone hot path allocation-free.
func (c *Cache) Release() {
	if c.s == nil {
		return
	}
	if c.s.refs.Add(-1) == 0 {
		putSlab(c.s)
	}
	c.s = nil
}

// materialize gives the cache a private slab before a write. With a sole
// reference the slab is already private and writes happen in place — the
// no-clone fast path (litmus/soak) pays one atomic load. Shared slabs
// are copied; the reference drop may race another clone's release, so
// the loser of the decrement recycles.
func (c *Cache) materialize() {
	s := c.s
	if s.refs.Load() == 1 {
		return
	}
	ns := getSlab(len(s.entries))
	copy(ns.entries, s.entries)
	c.s = ns
	if s.refs.Add(-1) == 0 {
		putSlab(s)
	}
}

// Materialize forces a private copy of the frame slab now, as if a write
// occurred. The checker's deep-copy cross-check mode uses it to turn a
// COW clone into an eager one.
func (c *Cache) Materialize() { c.materialize() }

// Shared reports whether the frame slab is currently shared with a clone
// (ie. a write would copy). For tests.
func (c *Cache) Shared() bool { return c.s.refs.Load() > 1 }

// Sets reports the set count.
func (c *Cache) Sets() int { return len(c.s.entries) / c.ways }

// Ways reports the associativity.
func (c *Cache) Ways() int { return c.ways }

// setIndex derives the set of addr from the line index, with the line
// shift taken from mem so the two constants cannot drift.
func (c *Cache) setIndex(addr mem.LineAddr) int {
	return int((uint64(addr) >> mem.LineShift) & c.setMask)
}

func (c *Cache) setOf(addr mem.LineAddr) []Entry {
	si := c.setIndex(addr)
	return c.s.entries[si*c.ways : (si+1)*c.ways]
}

// Lookup returns the entry for addr, or nil on miss. It counts hit/miss
// statistics but does not touch LRU state; call Touch on use. The caller
// may write through the returned pointer.
func (c *Cache) Lookup(addr mem.LineAddr) *Entry {
	c.materialize()
	set := c.setOf(addr)
	for i := range set {
		if set[i].Valid && set[i].Addr == addr {
			c.Hits++
			return &set[i]
		}
	}
	c.Misses++
	return nil
}

// Probe is Lookup without statistics. The caller may write through the
// returned pointer; use ProbeRO on read-only paths that must not
// materialize a shared snapshot.
func (c *Cache) Probe(addr mem.LineAddr) *Entry {
	c.materialize()
	return c.probe(addr)
}

// ProbeRO is Probe for read-only inspection (hashing, dumps, invariant
// checks): it never copies a shared slab. The caller must not write
// through the returned pointer.
func (c *Cache) ProbeRO(addr mem.LineAddr) *Entry {
	return c.probe(addr)
}

func (c *Cache) probe(addr mem.LineAddr) *Entry {
	set := c.setOf(addr)
	for i := range set {
		if set[i].Valid && set[i].Addr == addr {
			return &set[i]
		}
	}
	return nil
}

// Touch marks e most recently used. e must come from an accessor that
// materializes (Lookup/Probe/Install), so the write lands in a private
// slab.
func (c *Cache) Touch(e *Entry) {
	c.tick++
	e.lru = c.tick
}

// HasSpace reports whether addr can be installed without eviction.
func (c *Cache) HasSpace(addr mem.LineAddr) bool {
	set := c.setOf(addr)
	for i := range set {
		if !set[i].Valid {
			return true
		}
	}
	return false
}

// Victim returns the LRU valid entry of addr's set if the set is full,
// or nil if a free way exists. The caller evicts it (protocol flow),
// then calls Remove.
func (c *Cache) Victim(addr mem.LineAddr) *Entry {
	c.materialize()
	set := c.setOf(addr)
	var victim *Entry
	for i := range set {
		if !set[i].Valid {
			return nil
		}
		if victim == nil || set[i].lru < victim.lru {
			victim = &set[i]
		}
	}
	return victim
}

// VictimFunc is Victim restricted to entries ok approves (e.g. lines
// with no transaction in flight). It returns nil either when a free way
// exists or when no eligible victim exists; use HasSpace to distinguish.
func (c *Cache) VictimFunc(addr mem.LineAddr, ok func(*Entry) bool) *Entry {
	c.materialize()
	set := c.setOf(addr)
	var victim *Entry
	for i := range set {
		if !set[i].Valid {
			return nil
		}
	}
	for i := range set {
		if !ok(&set[i]) {
			continue
		}
		if victim == nil || set[i].lru < victim.lru {
			victim = &set[i]
		}
	}
	return victim
}

// Install claims a free frame for addr and returns it. It panics if the
// set is full (the controller must have evicted first) or if addr is
// already present.
func (c *Cache) Install(addr mem.LineAddr) *Entry {
	c.materialize()
	set := c.setOf(addr)
	for i := range set {
		if set[i].Valid && set[i].Addr == addr {
			panic(fmt.Sprintf("cache: double install of %v", addr))
		}
	}
	for i := range set {
		if !set[i].Valid {
			e := &set[i]
			*e = Entry{Addr: addr, Valid: true, set: e.set}
			c.Touch(e)
			return e
		}
	}
	panic(fmt.Sprintf("cache: install of %v into full set", addr))
}

// Remove frees e's frame. e must come from an accessor that materializes.
func (c *Cache) Remove(e *Entry) {
	set := e.set
	*e = Entry{set: set}
}

// ForEach visits every valid entry; the caller may write through the
// pointer. The callback must not install or remove entries. Use
// ForEachRO on read-only paths.
func (c *Cache) ForEach(fn func(*Entry)) {
	c.materialize()
	c.forEach(fn)
}

// ForEachRO visits every valid entry without materializing a shared
// slab. The callback must not write through the pointer nor install or
// remove entries.
func (c *Cache) ForEachRO(fn func(*Entry)) {
	c.forEach(fn)
}

func (c *Cache) forEach(fn func(*Entry)) {
	es := c.s.entries
	for i := range es {
		if es[i].Valid {
			fn(&es[i])
		}
	}
}

// Count returns the number of valid entries.
func (c *Cache) Count() int {
	n := 0
	c.ForEachRO(func(*Entry) { n++ })
	return n
}
