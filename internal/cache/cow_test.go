package cache

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"c3/internal/mem"
)

// dumpAll renders every frame (valid or not) plus LRU order, so two
// caches compare equal only when fully identical.
func dumpAll(c *Cache) string {
	var b strings.Builder
	for i := range c.s.entries {
		e := &c.s.entries[i]
		fmt.Fprintf(&b, "%d:%v:%v:%d:%v:%v:%d;", i, e.Addr, e.Valid, e.State,
			e.Data, e.DataValid, e.lru)
	}
	return b.String()
}

func addr(i int) mem.LineAddr { return mem.LineAddr(mem.Addr(i * mem.LineBytes).Line()) }

// TestCOWCloneIsolation drives random interleaved mutations on a parent
// and its clone and checks full isolation: after the clone, no mutation
// on one side is ever visible on the other.
func TestCOWCloneIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 50; round++ {
		p := New(8*mem.LineBytes, 2) // 4 sets x 2 ways
		// Random warmup on the parent.
		for i := 0; i < 6; i++ {
			a := addr(rng.Intn(8))
			if p.Probe(a) == nil && p.HasSpace(a) {
				e := p.Install(a)
				e.State = rng.Intn(5)
				e.Data.SetWord(0, uint64(rng.Intn(100)))
				e.DataValid = true
			}
		}
		c := p.Clone()
		if !p.Shared() || !c.Shared() {
			t.Fatal("slab not shared right after Clone")
		}
		if dumpAll(p) != dumpAll(c) {
			t.Fatal("clone differs from parent before any mutation")
		}
		pRef, cRef := dumpAll(p), dumpAll(c)
		// Interleave random mutations; after each, the other side must
		// still render exactly as before it.
		for step := 0; step < 20; step++ {
			m, other, otherRef := p, c, cRef
			if rng.Intn(2) == 1 {
				m, other, otherRef = c, p, pRef
			}
			a := addr(rng.Intn(8))
			switch rng.Intn(4) {
			case 0:
				if e := m.Probe(a); e != nil {
					e.State = rng.Intn(5)
					e.Data.SetWord(1, uint64(step))
				}
			case 1:
				if m.Probe(a) == nil && m.HasSpace(a) {
					m.Install(a).State = rng.Intn(5)
				}
			case 2:
				if e := m.Probe(a); e != nil {
					m.Touch(e)
				}
			case 3:
				if e := m.Probe(a); e != nil {
					m.Remove(e)
				}
			}
			if got := dumpAll(other); got != otherRef {
				t.Fatalf("round %d step %d: mutation leaked to the other cache", round, step)
			}
			pRef, cRef = dumpAll(p), dumpAll(c)
		}
	}
}

// TestCOWReadOnlyAccessorsDoNotMaterialize: probing, iterating, and
// counting through the RO accessors must leave a fresh clone's slab
// shared; a single mutating access must unshare it.
func TestCOWReadOnlyAccessorsDoNotMaterialize(t *testing.T) {
	p := New(8*mem.LineBytes, 2)
	p.Install(addr(1)).State = 3
	p.Install(addr(2)).State = 1
	c := p.Clone()

	c.ProbeRO(addr(1))
	c.ForEachRO(func(*Entry) {})
	_ = c.Count()
	_ = c.HasSpace(addr(3))
	if !c.Shared() {
		t.Fatal("read-only access materialized the slab")
	}
	if e := c.Probe(addr(1)); e == nil {
		t.Fatal("line lost")
	}
	if c.Shared() || p.Shared() {
		t.Fatal("mutating access left the slab shared")
	}
}

// TestCOWReleaseRecycles: a released slab returns to the pool and the
// next New of the same geometry reuses it fully reset.
func TestCOWReleaseRecycles(t *testing.T) {
	p := New(8*mem.LineBytes, 2)
	p.Install(addr(1)).State = 3
	c := p.Clone()
	c.Release() // parent still holds a ref: slab must NOT recycle
	if e := p.Probe(addr(1)); e == nil || e.State != 3 {
		t.Fatal("release of a clone corrupted the parent")
	}
	p.Release()
	n := New(8*mem.LineBytes, 2) // may reuse the pooled slab
	if n.Count() != 0 {
		t.Fatal("pooled slab not reset by New")
	}
	for i := range n.s.entries {
		e := &n.s.entries[i]
		if e.Valid || e.lru != 0 || e.set != i/2 {
			t.Fatalf("frame %d not reset: %+v", i, *e)
		}
	}
}

// TestCOWCloneOfCloneChain: grandchildren stay isolated through a chain
// of clones with mutations at each level.
func TestCOWCloneOfCloneChain(t *testing.T) {
	a := New(8*mem.LineBytes, 2)
	a.Install(addr(1)).State = 1
	b := a.Clone()
	b.Probe(addr(1)).State = 2
	c := b.Clone()
	c.Probe(addr(1)).State = 3
	if a.Probe(addr(1)).State != 1 || b.Probe(addr(1)).State != 2 || c.Probe(addr(1)).State != 3 {
		t.Fatal("clone chain lost isolation")
	}
}
