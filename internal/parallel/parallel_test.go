package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersResolution(t *testing.T) {
	if Workers(4) != 4 {
		t.Fatalf("Workers(4) = %d", Workers(4))
	}
	if Workers(0) != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS", Workers(0))
	}
	if Workers(-3) != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS", Workers(-3))
	}
}

func TestMapOrderedResults(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 32} {
		got, err := Map(context.Background(), workers, 100, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(context.Background(), 4, 0, func(i int) (int, error) { return 0, nil })
	if err != nil || got != nil {
		t.Fatalf("empty Map: %v, %v", got, err)
	}
}

func TestMapWorkerBound(t *testing.T) {
	var cur, peak atomic.Int64
	_, err := Map(context.Background(), 3, 64, func(i int) (int, error) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 3 {
		t.Fatalf("concurrency peaked at %d, want <= 3", p)
	}
}

// TestMapLowestIndexError: the reported error must be the lowest-index
// failure regardless of completion order, because items below it are
// always claimed first and run to completion.
func TestMapLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		_, err := Map(context.Background(), workers, 50, func(i int) (int, error) {
			if i == 7 || i == 30 {
				return 0, fmt.Errorf("boom %d", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "boom 7" {
			t.Fatalf("workers=%d: err = %v, want boom 7", workers, err)
		}
	}
}

func TestMapErrorCancelsUnstarted(t *testing.T) {
	var ran atomic.Int64
	boom := errors.New("boom")
	_, err := Map(context.Background(), 2, 10_000, func(i int) (int, error) {
		ran.Add(1)
		if i == 0 {
			return 0, boom
		}
		time.Sleep(100 * time.Microsecond)
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if n := ran.Load(); n == 10_000 {
		t.Fatal("error did not cancel remaining items")
	}
}

func TestMapPanicCapture(t *testing.T) {
	for _, workers := range []int{1, 4} {
		_, err := Map(context.Background(), workers, 10, func(i int) (int, error) {
			if i == 3 {
				panic("kaboom")
			}
			return i, nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want PanicError", workers, err)
		}
		if pe.Item != 3 || pe.Value != "kaboom" || len(pe.Stack) == 0 {
			t.Fatalf("PanicError = {Item:%d Value:%v stack:%d bytes}", pe.Item, pe.Value, len(pe.Stack))
		}
	}
}

// TestMapOrderedDoneInOrder: the done callback must fire exactly once per
// item, in item order, serialized, for every worker count.
func TestMapOrderedDoneInOrder(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		var mu sync.Mutex
		var seen []int
		_, err := MapOrdered(context.Background(), workers, 200,
			func(i int) (int, error) {
				if i%5 == 0 {
					time.Sleep(time.Duration(i%7) * 10 * time.Microsecond)
				}
				return i, nil
			},
			func(i int, v int) {
				mu.Lock()
				seen = append(seen, i)
				mu.Unlock()
			})
		if err != nil {
			t.Fatal(err)
		}
		if len(seen) != 200 {
			t.Fatalf("workers=%d: done fired %d times, want 200", workers, len(seen))
		}
		for i, v := range seen {
			if v != i {
				t.Fatalf("workers=%d: done order broken at %d: %v...", workers, i, seen[:i+1])
			}
		}
	}
}

// TestMapOrderedDoneStopsAtError: done must never fire for items at or
// past the first failure.
func TestMapOrderedDoneStopsAtError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var mu sync.Mutex
		var seen []int
		_, err := MapOrdered(context.Background(), workers, 40,
			func(i int) (int, error) {
				if i == 11 {
					return 0, errors.New("stop")
				}
				return i, nil
			},
			func(i int, v int) {
				mu.Lock()
				seen = append(seen, i)
				mu.Unlock()
			})
		if err == nil {
			t.Fatal("expected error")
		}
		for _, v := range seen {
			if v >= 11 {
				t.Fatalf("workers=%d: done fired for item %d past the failure", workers, v)
			}
		}
	}
}

func TestMapContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	go func() {
		for ran.Load() == 0 {
			time.Sleep(10 * time.Microsecond)
		}
		cancel()
	}()
	_, err := Map(ctx, 2, 1_000_000, func(i int) (int, error) {
		ran.Add(1)
		time.Sleep(10 * time.Microsecond)
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() == 1_000_000 {
		t.Fatal("cancel did not stop the pool")
	}
}

func TestForEach(t *testing.T) {
	var sum atomic.Int64
	if err := ForEach(context.Background(), 4, 100, func(i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 4950 {
		t.Fatalf("sum = %d, want 4950", sum.Load())
	}
	if err := ForEach(context.Background(), 4, 10, func(i int) error {
		if i == 2 {
			return errors.New("nope")
		}
		return nil
	}); err == nil || err.Error() != "nope" {
		t.Fatalf("err = %v, want nope", err)
	}
}
