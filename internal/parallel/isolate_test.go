package parallel

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

// TestMapAllIsolation: failing items never cancel siblings — every item
// runs, results and errors land at their own index.
func TestMapAllIsolation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var ran atomic.Int64
		results, errs := MapAll(context.Background(), workers, 10, func(i int) (int, error) {
			ran.Add(1)
			if i%3 == 0 {
				return 0, fmt.Errorf("item %d failed", i)
			}
			return i * i, nil
		})
		if ran.Load() != 10 {
			t.Fatalf("workers=%d: ran %d items, want all 10", workers, ran.Load())
		}
		for i := 0; i < 10; i++ {
			if i%3 == 0 {
				if errs[i] == nil {
					t.Fatalf("workers=%d: item %d error lost", workers, i)
				}
				continue
			}
			if errs[i] != nil || results[i] != i*i {
				t.Fatalf("workers=%d: item %d = (%d, %v), want (%d, nil)", workers, i, results[i], errs[i], i*i)
			}
		}
	}
}

// TestMapAllPanicIsolation: a panicking item becomes its own PanicError
// and the other items still run to completion.
func TestMapAllPanicIsolation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		results, errs := MapAll(context.Background(), workers, 6, func(i int) (int, error) {
			if i == 2 {
				panic("boom")
			}
			return i, nil
		})
		var pe *PanicError
		if !errors.As(errs[2], &pe) || pe.Item != 2 {
			t.Fatalf("workers=%d: item 2 error = %v, want PanicError{Item:2}", workers, errs[2])
		}
		for i := 0; i < 6; i++ {
			if i == 2 {
				continue
			}
			if errs[i] != nil || results[i] != i {
				t.Fatalf("workers=%d: sibling %d = (%d, %v), want (%d, nil)", workers, i, results[i], errs[i], i)
			}
		}
	}
}

// TestMapAllCtxCancel: cancellation stops claiming; items that never ran
// report ctx.Err() while completed items keep their results.
func TestMapAllCtxCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	results, errs := MapAll(ctx, 1, 8, func(i int) (int, error) {
		ran.Add(1)
		if i == 2 {
			cancel() // items 3..7 must never start
		}
		return i + 100, nil
	})
	if got := ran.Load(); got != 3 {
		t.Fatalf("ran %d items, want 3 (0,1,2 before cancel)", got)
	}
	for i := 0; i < 3; i++ {
		if errs[i] != nil || results[i] != i+100 {
			t.Fatalf("completed item %d = (%d, %v)", i, results[i], errs[i])
		}
	}
	for i := 3; i < 8; i++ {
		if !errors.Is(errs[i], context.Canceled) {
			t.Fatalf("unclaimed item %d error = %v, want context.Canceled", i, errs[i])
		}
	}
}

// TestMapAllObserver: lifecycle events fire for executed items only.
func TestMapAllObserver(t *testing.T) {
	obs := &countObserver{}
	ctx := WithObserver(context.Background(), obs)
	_, errs := MapAll(ctx, 4, 12, func(i int) (int, error) {
		if i%2 == 0 {
			return 0, errors.New("even")
		}
		return i, nil
	})
	if obs.started.Load() != 12 || obs.done.Load() != 12 {
		t.Fatalf("observer saw %d started / %d done, want 12/12", obs.started.Load(), obs.done.Load())
	}
	if obs.failed.Load() != 6 {
		t.Fatalf("observer saw %d failures, want 6", obs.failed.Load())
	}
	for i, err := range errs {
		if (err != nil) != (i%2 == 0) {
			t.Fatalf("item %d err = %v", i, err)
		}
	}
}

type countObserver struct {
	started, done, failed atomic.Int64
}

func (o *countObserver) TaskStarted(int) { o.started.Add(1) }
func (o *countObserver) TaskDone(_ int, err error) {
	o.done.Add(1)
	if err != nil {
		o.failed.Add(1)
	}
}
