// Package parallel is the run-level execution engine behind the
// experiment harness: a bounded worker pool with an ordered-results API.
//
// The simulator's evaluation is embarrassingly parallel — Table IV is
// 7 litmus tests x 2 protocol combos x 3 MCM combos of independent
// campaigns, and the figure sweeps are hundreds of independent workload
// runs — and every run owns a private sim.Kernel and system.System, so
// fan-out is safe by construction. What the pool adds on top of naked
// goroutines is determinism discipline:
//
//   - results come back indexed by item, never by completion order;
//   - the error returned is always the lowest-index failure (items are
//     claimed in index order, so every item below the first failure runs
//     to completion and the selection is reproducible);
//   - an optional done callback fires in item order as the completed
//     prefix grows, for live progress output that is byte-identical from
//     run to run and worker count to worker count;
//   - worker panics are captured and surfaced as errors identifying the
//     item, instead of killing the process from a nameless goroutine.
//
// Workers <= 0 defaults to GOMAXPROCS; Workers == 1 runs inline on the
// caller's goroutine (no pool, no locks), which is also the degenerate
// case the determinism tests compare against.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count knob: values > 0 are used as given,
// anything else defaults to GOMAXPROCS.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Observer receives item lifecycle callbacks from the pool, for live
// introspection (obs.Tracker feeds the -statusz endpoint through this).
// Callbacks fire concurrently from worker goroutines in claim order, not
// completion order, so implementations must be concurrency-safe. An
// observer never influences scheduling, results, or errors: reports from
// an observed run are byte-identical to an unobserved one.
type Observer interface {
	// TaskStarted fires when a worker claims item i, before fn runs.
	TaskStarted(i int)
	// TaskDone fires when item i's fn returns (err non-nil on failure,
	// including captured panics).
	TaskDone(i int, err error)
}

// observerKey carries an Observer through a context.
type observerKey struct{}

// WithObserver returns a context that makes every Map/MapOrdered/ForEach
// call under it report item lifecycle events to o.
func WithObserver(ctx context.Context, o Observer) context.Context {
	return context.WithValue(ctx, observerKey{}, o)
}

// observerFrom extracts the context's observer, if any.
func observerFrom(ctx context.Context) Observer {
	o, _ := ctx.Value(observerKey{}).(Observer)
	return o
}

// PanicError wraps a panic captured from a pool item.
type PanicError struct {
	Item  int
	Value any
	Stack []byte
}

func (p *PanicError) Error() string {
	return fmt.Sprintf("parallel: item %d panicked: %v\n%s", p.Item, p.Value, p.Stack)
}

// item states for the ordered-progress frontier.
const (
	statePending = iota
	stateDone
	stateFailed
)

// Map runs fn(i) for every i in [0, n) on up to workers goroutines and
// returns the results indexed by i. The first error (by item index)
// cancels the pool: items not yet claimed never start, in-flight items
// finish, and the lowest-index error is returned. ctx cancellation stops
// claiming new items and is returned if no item failed first.
func Map[T any](ctx context.Context, workers, n int, fn func(i int) (T, error)) ([]T, error) {
	return MapOrdered(ctx, workers, n, fn, nil)
}

// MapOrdered is Map plus a done callback invoked in item order as the
// contiguous prefix of completed items grows (never concurrently, never
// out of order, and never past the first failed item). It exists so
// progress output stays live under parallel execution without becoming
// nondeterministic.
func MapOrdered[T any](ctx context.Context, workers, n int, fn func(i int) (T, error), done func(i int, v T)) ([]T, error) {
	if n <= 0 {
		return nil, ctx.Err()
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	results := make([]T, n)
	errs := make([]error, n)
	obs := observerFrom(ctx)
	call := func(i int) (err error) {
		if obs != nil {
			obs.TaskStarted(i)
			defer func() { obs.TaskDone(i, err) }()
		}
		defer func() {
			if r := recover(); r != nil {
				err = &PanicError{Item: i, Value: r, Stack: debug.Stack()}
			}
		}()
		v, err := fn(i)
		if err == nil {
			results[i] = v
		}
		return err
	}

	if workers == 1 {
		// Inline serial path: no goroutines, no locks. This is the
		// reference behavior the parallel path must reproduce.
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if err := call(i); err != nil {
				return nil, err
			}
			if done != nil {
				done(i, results[i])
			}
		}
		return results, nil
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		mu      sync.Mutex
		state   = make([]uint8, n)
		flushed int
	)
	finish := func(i int, err error) {
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			state[i] = stateFailed
		} else {
			state[i] = stateDone
		}
		for flushed < n && state[flushed] != statePending {
			if state[flushed] == stateFailed {
				flushed = n
				break
			}
			if done != nil {
				done(flushed, results[flushed])
			}
			flushed++
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if cctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				err := call(i)
				if err != nil {
					errs[i] = err
					cancel()
				}
				finish(i, err)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// ForEach runs fn(i) for every i in [0, n) with Map's claiming, error,
// and panic semantics, for callers that need no result values.
func ForEach(ctx context.Context, workers, n int, fn func(i int) error) error {
	_, err := Map(ctx, workers, n, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}

// MapAll is Map's isolation mode: a failing (or panicking) item never
// cancels its siblings. Every item runs to completion and per-item
// errors come back in a slice parallel to the results — errs[i] is nil
// iff results[i] is valid. The only thing that stops the pool early is
// ctx cancellation, which stops claiming new items; items it prevented
// from starting report ctx.Err() (their fn never ran, and no observer
// events fire for them). Long campaign sweeps use this so one wedged or
// panicking row becomes a report row instead of killing the sweep;
// first-error-cancel semantics stay available through Map.
func MapAll[T any](ctx context.Context, workers, n int, fn func(i int) (T, error)) ([]T, []error) {
	if n <= 0 {
		return nil, nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	results := make([]T, n)
	errs := make([]error, n)
	obs := observerFrom(ctx)
	call := func(i int) (err error) {
		if obs != nil {
			obs.TaskStarted(i)
			defer func() { obs.TaskDone(i, err) }()
		}
		defer func() {
			if r := recover(); r != nil {
				err = &PanicError{Item: i, Value: r, Stack: debug.Stack()}
			}
		}()
		v, err := fn(i)
		if err == nil {
			results[i] = v
		}
		return err
	}

	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				errs[i] = err
				continue
			}
			errs[i] = call(i)
		}
		return results, errs
	}

	var (
		next atomic.Int64
		wg   sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				// A cancelled context drains the remaining indexes without
				// running them, so every item is accounted for in errs.
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				errs[i] = call(i)
			}
		}()
	}
	wg.Wait()
	return results, errs
}
