package parallel

import (
	"context"
	"errors"
	"sync"
	"testing"
)

type countingObserver struct {
	mu      sync.Mutex
	started map[int]int
	done    map[int]int
	errs    map[int]error
}

func newCountingObserver() *countingObserver {
	return &countingObserver{started: map[int]int{}, done: map[int]int{}, errs: map[int]error{}}
}

func (o *countingObserver) TaskStarted(i int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.started[i]++
}

func (o *countingObserver) TaskDone(i int, err error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.done[i]++
	o.errs[i] = err
}

// TestObserverSeesEveryTask: each executed task produces exactly one
// started and one done event, results are untouched, and a context
// without an observer behaves as before.
func TestObserverSeesEveryTask(t *testing.T) {
	obs := newCountingObserver()
	ctx := WithObserver(context.Background(), obs)
	got, err := Map(ctx, 4, 50, func(i int) (int, error) { return i * 2, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*2 {
			t.Fatalf("result[%d] = %d (observer corrupted results)", i, v)
		}
	}
	obs.mu.Lock()
	defer obs.mu.Unlock()
	for i := 0; i < 50; i++ {
		if obs.started[i] != 1 || obs.done[i] != 1 {
			t.Fatalf("task %d: started %d done %d, want 1/1", i, obs.started[i], obs.done[i])
		}
		if obs.errs[i] != nil {
			t.Fatalf("task %d: unexpected error %v", i, obs.errs[i])
		}
	}
}

// TestObserverSeesErrorsAndPanics: TaskDone carries the task's error,
// including one synthesized from a captured panic.
func TestObserverSeesErrorsAndPanics(t *testing.T) {
	boom := errors.New("boom")
	obs := newCountingObserver()
	ctx := WithObserver(context.Background(), obs)
	_, err := Map(ctx, 1, 3, func(i int) (int, error) {
		switch i {
		case 1:
			return 0, boom
		case 2:
			panic("kaboom")
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Map error = %v, want boom (lowest failing index)", err)
	}
	obs.mu.Lock()
	defer obs.mu.Unlock()
	if obs.errs[0] != nil {
		t.Errorf("task 0 err = %v, want nil", obs.errs[0])
	}
	if !errors.Is(obs.errs[1], boom) {
		t.Errorf("task 1 err = %v, want boom", obs.errs[1])
	}
	// With 1 worker, task 2 may or may not run after task 1's error; if
	// it ran, the observer must have seen the panic as an error.
	if obs.done[2] > 0 {
		var pe *PanicError
		if !errors.As(obs.errs[2], &pe) {
			t.Errorf("task 2 err = %v, want PanicError", obs.errs[2])
		}
	}
}

func TestObserverAbsent(t *testing.T) {
	if observerFrom(context.Background()) != nil {
		t.Fatal("observerFrom on a bare context is non-nil")
	}
}
