package msg

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestNodeSetMatchesMap cross-checks NodeSet against a reference
// map[NodeID]bool under random operations, including the rendering
// format the model checker hashes (ascending ids, like the sorted int
// slices the pre-NodeSet code produced).
func TestNodeSetMatchesMap(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var s NodeSet
	ref := map[NodeID]bool{}
	for step := 0; step < 2000; step++ {
		id := NodeID(rng.Intn(nodeSetWidth))
		switch rng.Intn(3) {
		case 0:
			s.Add(id)
			ref[id] = true
		case 1:
			s.Remove(id)
			delete(ref, id)
		case 2:
			if s.Has(id) != ref[id] {
				t.Fatalf("step %d: Has(%d) = %v, ref %v", step, id, s.Has(id), ref[id])
			}
		}
		if s.Len() != len(ref) {
			t.Fatalf("step %d: Len = %d, ref %d", step, s.Len(), len(ref))
		}
		if s.Empty() != (len(ref) == 0) {
			t.Fatalf("step %d: Empty mismatch", step)
		}
	}
	// Rendering matches %v of the sorted id slice.
	var ids []int
	for _, id := range s.IDs() {
		ids = append(ids, int(id))
	}
	if got, want := s.String(), fmt.Sprintf("%v", ids); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

// TestNodeSetForEachAscending: iteration order is ascending id — the
// property that makes snoop/invalidate issue order deterministic.
func TestNodeSetForEachAscending(t *testing.T) {
	var s NodeSet
	for _, id := range []NodeID{5, 2, 63, 0, 17} {
		s.Add(id)
	}
	var got []NodeID
	s.ForEach(func(id NodeID) { got = append(got, id) })
	want := []NodeID{0, 2, 5, 17, 63}
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach visited %v, want %v", got, want)
		}
	}
}

// TestNodeSetBounds: None and out-of-range ids never appear as members;
// Add panics rather than silently dropping a sharer.
func TestNodeSetBounds(t *testing.T) {
	var s NodeSet
	if s.Has(None) || s.Has(NodeID(nodeSetWidth)) {
		t.Fatal("out-of-range id reported as member")
	}
	s.Remove(None) // no-op, must not panic
	defer func() {
		if recover() == nil {
			t.Fatal("Add(out-of-range) did not panic")
		}
	}()
	s.Add(NodeID(nodeSetWidth))
}

// TestNodeSetEmptyString: the empty set renders like an empty slice.
func TestNodeSetEmptyString(t *testing.T) {
	var s NodeSet
	if s.String() != "[]" {
		t.Fatalf("empty String() = %q, want %q", s.String(), "[]")
	}
	if s.IDs() != nil {
		t.Fatalf("empty IDs() = %v, want nil", s.IDs())
	}
}
