// Package msg defines the coherence message vocabulary exchanged by every
// controller in the system, across both protocol domains:
//
//   - the cluster-local domain (core caches <-> the C3 controller), spoken
//     in one of the MESI-family dialects or RCC, and
//   - the global domain (C3 <-> the CXL device coherency engine, or C3 <->
//     the hierarchical-MESI directory used as the paper's baseline).
//
// A single opcode space keeps tracing, the model checker, and the
// generator's translation tables simple; which controller legally receives
// which opcodes is enforced by the per-controller FSMs.
package msg

import (
	"fmt"

	"c3/internal/mem"
)

// NodeID identifies a network endpoint (an L1, a C3 instance, the global
// directory). Cores are not network endpoints; they talk to their L1
// directly.
type NodeID int

// None is the zero NodeID used when a field is unused.
const None NodeID = -1

// Type is a coherence message opcode.
type Type uint8

// Cluster-local request/response opcodes (L1 <-> C3 local side).
// The hub-style flows route data through the C3 LLC slice; see DESIGN.md.
const (
	TInvalid Type = iota

	// L1 -> local directory (C3) requests.
	GetS       // read, acquire shareable copy
	GetM       // write, acquire exclusive ownership
	GetV       // RCC: fetch a valid copy, no sharer tracking
	PutS       // evict shared copy
	PutE       // evict exclusive clean copy
	PutM       // evict modified copy (carries data)
	PutO       // MOESI: evict owned dirty copy (carries data)
	WrThrough  // RCC: flush one dirty line at a release (carries data)
	SyncRel    // RCC: store-release marker after dirty flushes
	SyncAcq    // RCC: load-acquire marker after self-invalidation
	AtomicAdd  // RCC: fetch-and-add performed at the shared cache (Val)
	AtomicXchg // RCC: exchange performed at the shared cache (Val)

	// Local directory (C3) -> L1.
	DataS      // grant shared (carries data)
	DataE      // grant exclusive clean (carries data)
	DataM      // grant modified/ownership (carries data)
	DataV      // RCC: valid copy (carries data)
	Inv        // invalidate your copy
	SnpData    // send data, downgrade (conceptual load into the cluster)
	SnpInv     // send data if dirty, invalidate (conceptual store)
	PutAck     // eviction acknowledged
	SyncAck    // RCC: release/acquire globally complete
	AtomicResp // RCC: atomic result (Val carries the old value)

	// L1 -> local directory responses.
	InvAck     // invalidation done (had no dirty data)
	SnpRspData // snoop response carrying data (Dirty flag says if modified)
	SnpRspInv  // snoop-invalidate response (Data non-nil if was dirty)

	// Global domain, CXL.mem (C3 <-> DCOH). M2S = master(host)-to-subordinate.
	MemRdA     // M2S: read + acquire exclusive ownership (MESI GetM)
	MemRdS     // M2S: read + acquire shareable copy     (MESI GetS)
	MemWrI     // M2S: writeback, do not retain copy     (carries data)
	MemWrS     // M2S: writeback, retain current copy    (carries data)
	BIConflict // M2S: conflict-resolution handshake request

	// S2M messages (DCOH -> C3).
	CmpS          // completion: shareable copy granted (carries data)
	CmpE          // completion: exclusive clean granted (carries data)
	CmpM          // completion: exclusive ownership granted (carries data)
	CmpWr         // completion of a MemWr*
	BISnpInv      // device-initiated: give up your copy (Fwd-GetM equivalent)
	BISnpData     // device-initiated: share your copy   (Fwd-GetS equivalent)
	BIConflictAck // handshake reply; FIFO with Cmp* on the response channel

	// C3 -> DCOH snoop responses.
	BISnpRspI // invalidated; Data non-nil if the line was dirty
	BISnpRspS // downgraded to shared; Data non-nil if the line was dirty

	// Global domain, hierarchical MESI baseline (C3 <-> HMESI directory).
	// 3-hop flows with peer-to-peer data transfer between C3 instances;
	// the directory pipelines same-line requests (non-blocking).
	GGetS     // request shared
	GGetM     // request ownership
	GPutS     // evict shared
	GPutM     // evict modified (carries data)
	GPutE     // evict exclusive clean
	GFwdGetS  // dir -> owner: send data to Req, downgrade
	GFwdGetM  // dir -> owner: send data to Req, invalidate
	GInv      // dir -> sharer: invalidate, ack to Req
	GInvAck   // sharer -> requestor
	GData     // dir -> requestor: data from memory (Acks = #invals to await)
	GDataE    // dir -> requestor: data, exclusive clean
	GDataM    // owner/dir -> requestor: data with ownership
	GDataS    // owner -> requestor: data, shared (owner kept a copy)
	GPutAck   // dir -> evictor
	GCopyBack // owner -> dir: data copy accompanying a GFwdGetS downgrade

	numTypes
)

var typeNames = [...]string{
	TInvalid: "Invalid",
	GetS:     "GetS", GetM: "GetM", GetV: "GetV",
	PutS: "PutS", PutE: "PutE", PutM: "PutM", PutO: "PutO",
	WrThrough: "WrThrough", SyncRel: "SyncRel", SyncAcq: "SyncAcq",
	AtomicAdd: "AtomicAdd", AtomicXchg: "AtomicXchg",
	DataS: "DataS", DataE: "DataE", DataM: "DataM", DataV: "DataV",
	Inv: "Inv", SnpData: "SnpData", SnpInv: "SnpInv",
	PutAck: "PutAck", SyncAck: "SyncAck", AtomicResp: "AtomicResp",
	InvAck: "InvAck", SnpRspData: "SnpRspData", SnpRspInv: "SnpRspInv",
	MemRdA: "MemRd,A", MemRdS: "MemRd,S", MemWrI: "MemWr,I", MemWrS: "MemWr,S",
	BIConflict: "BIConflict",
	CmpS:       "Cmp-S", CmpE: "Cmp-E", CmpM: "Cmp-M", CmpWr: "Cmp-Wr",
	BISnpInv: "BISnpInv", BISnpData: "BISnpData", BIConflictAck: "BIConflictAck",
	BISnpRspI: "BISnpRsp-I", BISnpRspS: "BISnpRsp-S",
	GGetS: "GGetS", GGetM: "GGetM", GPutS: "GPutS", GPutM: "GPutM", GPutE: "GPutE",
	GFwdGetS: "GFwdGetS", GFwdGetM: "GFwdGetM", GInv: "GInv", GInvAck: "GInvAck",
	GData: "GData", GDataE: "GDataE", GDataM: "GDataM", GDataS: "GDataS",
	GPutAck: "GPutAck", GCopyBack: "GCopyBack",
}

func (t Type) String() string {
	if int(t) < len(typeNames) && typeNames[t] != "" {
		return typeNames[t]
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// NumTypes is the number of defined opcodes (for table sizing).
const NumTypes = int(numTypes)

// VNet is a virtual network. Separating requests, responses, and snoops
// avoids protocol deadlock; it also carries the CXL ordering rule that
// matters for the conflict handshake: the response channel is FIFO, so
// BIConflictAck can never be reordered with a completion, while request
// and snoop channels may reorder (they model CXL's switched fabric).
type VNet uint8

const (
	VReq VNet = iota // requests (may reorder on the global fabric)
	VRsp             // responses/completions (always ordered)
	VSnp             // snoops/forwards (may reorder on the global fabric)
	NumVNets
)

func (v VNet) String() string {
	switch v {
	case VReq:
		return "req"
	case VRsp:
		return "rsp"
	case VSnp:
		return "snp"
	}
	return fmt.Sprintf("VNet(%d)", uint8(v))
}

// Msg is one coherence message. Msgs are passed by pointer and must not
// be mutated after Send; Data points at an immutable snapshot.
type Msg struct {
	Type Type
	Addr mem.LineAddr
	Src  NodeID
	Dst  NodeID
	VNet VNet

	// Data carries a line payload for data-bearing opcodes; nil otherwise.
	Data  *mem.Data
	Dirty bool // the payload is modified relative to memory

	// Req is the original requestor for 3-hop forwards (GFwd*, GInv).
	Req NodeID
	// Acks is the number of GInvAcks the requestor must collect (GData),
	// or similar small counts.
	Acks int
	// Val carries a scalar for atomics (operand / old value).
	Val uint64
	// Word is the line word index an atomic operates on.
	Word int
	// Mask flags the dirty words of a WrThrough payload (RCC merges at
	// word granularity so concurrent writers to distinct words of a line
	// do not lose updates).
	Mask uint8
	// Acq/Rel mark acquire loads and release stores for self-invalidating
	// (RCC) caches.
	Acq, Rel bool

	// Serial is a unique id assigned at send time, for tracing.
	Serial uint64

	// Seq is the link-layer sequence number stamped by the network's
	// reliable-delivery shim on faulty cross-cluster links (0 when the
	// link is perfect). Receivers dedup and reorder by it; it is not
	// protocol-visible.
	Seq uint64
	// Poisoned marks data delivered by forced completion after the shim
	// exhausted its retries — the CXL poison analogue: the transaction
	// completes rather than hangs, but the payload is untrustworthy and
	// the line is recorded in the injector's poison set.
	Poisoned bool
}

// WithData returns a copy of d suitable for attaching to a message.
func WithData(d mem.Data) *mem.Data { return &d }

// Clone returns a deep copy of the message, including a private copy of
// the data payload, for model-checker state snapshots (a queued message
// must not share its payload with the snapshot it was cloned from).
func (m *Msg) Clone() *Msg {
	n := *m
	if m.Data != nil {
		d := *m.Data
		n.Data = &d
	}
	return &n
}

// ControlBytes and header sizes approximate CXL flit accounting: a
// data-bearing message is a header plus the 64 B line.
const (
	HeaderBytes = 16
)

// Size returns the message size in bytes for bandwidth modelling.
func (m *Msg) Size() int {
	if m.Data != nil {
		return HeaderBytes + mem.LineBytes
	}
	return HeaderBytes
}

func (m *Msg) String() string {
	s := fmt.Sprintf("%s %s %d->%d [%s]", m.Type, m.Addr, m.Src, m.Dst, m.VNet)
	if m.Data != nil {
		s += fmt.Sprintf(" data=%v dirty=%v", *m.Data, m.Dirty)
	}
	if m.Req != 0 && m.Req != None {
		s += fmt.Sprintf(" req=%d", m.Req)
	}
	if m.Acks != 0 {
		s += fmt.Sprintf(" acks=%d", m.Acks)
	}
	if m.Poisoned {
		s += " POISONED"
	}
	return s
}
