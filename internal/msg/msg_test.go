package msg

import (
	"strings"
	"testing"

	"c3/internal/mem"
)

func TestTypeStrings(t *testing.T) {
	// Every defined opcode must have a name (catches enum/name drift).
	for ty := Type(1); int(ty) < NumTypes; ty++ {
		s := ty.String()
		if strings.HasPrefix(s, "Type(") {
			t.Errorf("opcode %d has no name", ty)
		}
	}
	// Table I mnemonics.
	if MemRdA.String() != "MemRd,A" || MemRdS.String() != "MemRd,S" ||
		BISnpInv.String() != "BISnpInv" || BIConflictAck.String() != "BIConflictAck" {
		t.Fatal("CXL mnemonic drift")
	}
	if Type(200).String() != "Type(200)" {
		t.Fatal("unknown opcode formatting")
	}
}

func TestVNetStrings(t *testing.T) {
	if VReq.String() != "req" || VRsp.String() != "rsp" || VSnp.String() != "snp" {
		t.Fatal("vnet names")
	}
	if VNet(9).String() != "VNet(9)" {
		t.Fatal("unknown vnet formatting")
	}
}

func TestSize(t *testing.T) {
	m := &Msg{Type: GetS}
	if m.Size() != HeaderBytes {
		t.Fatalf("control size %d", m.Size())
	}
	var d mem.Data
	m.Data = &d
	if m.Size() != HeaderBytes+mem.LineBytes {
		t.Fatalf("data size %d", m.Size())
	}
}

func TestString(t *testing.T) {
	var d mem.Data
	d.SetWord(0, 7)
	m := &Msg{Type: GDataM, Addr: 0x1000, Src: 2, Dst: 3, VNet: VRsp,
		Data: &d, Dirty: true, Req: 9, Acks: 2}
	s := m.String()
	for _, want := range []string{"GDataM", "0x1000", "2->3", "rsp", "dirty=true", "req=9", "acks=2"} {
		if !strings.Contains(s, want) {
			t.Errorf("String missing %q: %s", want, s)
		}
	}
}

func TestWithData(t *testing.T) {
	var d mem.Data
	d.SetWord(1, 4)
	p := WithData(d)
	d.SetWord(1, 9) // the snapshot must not alias
	if p.Word(1) != 4 {
		t.Fatal("WithData must copy")
	}
}
