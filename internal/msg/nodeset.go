package msg

import (
	"fmt"
	"math/bits"
	"strings"
)

// NodeSet is a dense set of NodeIDs, packed as a 64-bit mask. It replaces
// the map[NodeID]bool sharer/pending vectors in the hot protocol state:
// a set is one word, so cloning a directory entry is a plain struct copy
// and membership tests drop the map-hash cost. NodeIDs are small by
// construction (an L1, a C3 instance, or a directory per cluster), so 64
// slots bound every realistic topology; Add panics past the width rather
// than silently dropping a sharer.
//
// The zero value is the empty set. NodeSet is a value type: assignment
// copies, so snapshots need no deep-copy helper.
type NodeSet uint64

// nodeSetWidth is the number of representable NodeIDs.
const nodeSetWidth = 64

// Has reports membership. IDs outside [0, 64) — including None — are
// never members.
func (s NodeSet) Has(id NodeID) bool {
	if id < 0 || id >= nodeSetWidth {
		return false
	}
	return s&(1<<uint(id)) != 0
}

// Add inserts id. It panics on ids the mask cannot represent (None or
// >= 64): losing a sharer silently would corrupt coherence.
func (s *NodeSet) Add(id NodeID) {
	if id < 0 || id >= nodeSetWidth {
		panic(fmt.Sprintf("msg: NodeSet.Add(%d) out of range", id))
	}
	*s |= 1 << uint(id)
}

// Remove deletes id; removing a non-member (or an out-of-range id) is a
// no-op, mirroring map delete semantics.
func (s *NodeSet) Remove(id NodeID) {
	if id < 0 || id >= nodeSetWidth {
		return
	}
	*s &^= 1 << uint(id)
}

// Len returns the member count.
func (s NodeSet) Len() int { return bits.OnesCount64(uint64(s)) }

// Empty reports whether the set has no members.
func (s NodeSet) Empty() bool { return s == 0 }

// ForEach visits members in ascending id order (deterministic, unlike
// map iteration — dump/hash paths rely on this).
func (s NodeSet) ForEach(fn func(NodeID)) {
	for m := uint64(s); m != 0; m &= m - 1 {
		fn(NodeID(bits.TrailingZeros64(m)))
	}
}

// IDs returns the members in ascending order.
func (s NodeSet) IDs() []NodeID {
	if s == 0 {
		return nil
	}
	out := make([]NodeID, 0, s.Len())
	s.ForEach(func(id NodeID) { out = append(out, id) })
	return out
}

// Rename returns the set with every member id replaced by rn(id). The
// model checker's symmetry reduction uses it to fingerprint sharer
// vectors under a canonical host renaming; rn must be injective on the
// members (a permutation), or sharers would silently merge.
func (s NodeSet) Rename(rn func(NodeID) NodeID) NodeSet {
	var out NodeSet
	s.ForEach(func(id NodeID) { out.Add(rn(id)) })
	return out
}

// String renders like a sorted int slice ("[2 5]"), matching what the
// pre-NodeSet dump code produced from sorted map keys.
func (s NodeSet) String() string {
	var b strings.Builder
	b.WriteByte('[')
	first := true
	s.ForEach(func(id NodeID) {
		if !first {
			b.WriteByte(' ')
		}
		first = false
		fmt.Fprintf(&b, "%d", id)
	})
	b.WriteByte(']')
	return b.String()
}
